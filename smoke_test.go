package repro_test

import (
	"testing"
	"time"

	"repro/mpmd"
)

// counterClass is a minimal processor-object class for the smoke tests.
func counterClass() *mpmd.Class {
	type counter struct{ n int64 }
	return &mpmd.Class{
		Name: "Counter",
		New:  func() any { return &counter{} },
		Methods: []*mpmd.Method{
			{
				Name: "bump",
				Fn: func(t *mpmd.Thread, self any, args []mpmd.Arg, ret mpmd.Arg) {
					self.(*counter).n++
				},
			},
			{
				Name:   "value",
				NewRet: func() mpmd.Arg { return &mpmd.I64{} },
				Fn: func(t *mpmd.Thread, self any, args []mpmd.Arg, ret mpmd.Arg) {
					ret.(*mpmd.I64).V = self.(*counter).n
				},
			},
		},
	}
}

// smokeProgram drives a small RMI + par workload through the public API and
// returns the remotely read counter value.
func smokeProgram(t *testing.T, m *mpmd.Machine) {
	t.Helper()
	rt := mpmd.NewRuntime(m)
	rt.RegisterClass(counterClass())
	gp := rt.CreateObject(1, "Counter")
	var got int64
	rt.OnNode(0, func(th *mpmd.Thread) {
		mpmd.ParFor(th, 4, func(t2 *mpmd.Thread, i int) {
			rt.Call(t2, gp, "bump", nil, nil)
		})
		var v mpmd.I64
		rt.Call(th, gp, "value", nil, &v)
		got = v.V
	})
	if err := rt.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got != 4 {
		t.Fatalf("remote counter read %d, want 4", got)
	}
}

// TestSmokeSim guards the public-API wiring on the default calibrated
// simulator backend: machine, runtime, RMI, parfor, and virtual time.
func TestSmokeSim(t *testing.T) {
	m := mpmd.NewMachine(mpmd.SPConfig(), 2)
	smokeProgram(t, m)
	if m.Now() == 0 {
		t.Fatal("virtual clock did not advance")
	}
}

// TestSmokeLive runs the identical program on the live backend (real
// goroutines, wall-clock).
func TestSmokeLive(t *testing.T) {
	m := mpmd.NewMachineWithBackend(mpmd.SPConfig(), 2,
		mpmd.NewLiveBackend(2, mpmd.LiveOptions{Watchdog: 20 * time.Second}))
	smokeProgram(t, m)
}

// collectiveProgram drives the data-parallel surface — world team, typed
// AllReduce, Dist round-trip with typed futures — through the public API.
func collectiveProgram(t *testing.T, m *mpmd.Machine) {
	t.Helper()
	const n = 3
	rt := mpmd.NewRuntime(m)
	tm, err := mpmd.WorldTeam(rt)
	if err != nil {
		t.Fatal(err)
	}
	d, err := mpmd.NewDist[int64](tm, 7, mpmd.LayoutCyclic)
	if err != nil {
		t.Fatal(err)
	}
	sums := make([]int64, n)
	totals := make([]int64, n)
	for i := 0; i < n; i++ {
		i := i
		rt.OnNode(i, func(th *mpmd.Thread) {
			s, err := mpmd.AllReduce(th, tm, int64(i+1), mpmd.Sum[int64])
			if err != nil {
				t.Error(err)
				return
			}
			sums[i] = s
			// Everyone writes one element it does not own, split-phase.
			f, err := d.PutAsync(th, (i+1)%7, int64(10*(i+1)))
			if err != nil {
				t.Error(err)
				return
			}
			f.Wait(th)
			if err := tm.Barrier(th); err != nil {
				t.Error(err)
				return
			}
			var total int64
			for e := 0; e < d.Len(); e++ {
				v, err := d.Get(th, e)
				if err != nil {
					t.Error(err)
					return
				}
				total += v
			}
			totals[i] = total
		})
	}
	if err := rt.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < n; i++ {
		if sums[i] != 6 {
			t.Errorf("node %d: AllReduce sum %d, want 6", i, sums[i])
		}
		if totals[i] != 10+20+30 {
			t.Errorf("node %d: Dist total %d, want 60", i, totals[i])
		}
	}
}

// TestSmokeCollectivesSim guards the team/Dist surface on the simulator.
func TestSmokeCollectivesSim(t *testing.T) {
	collectiveProgram(t, mpmd.NewMachine(mpmd.SPConfig(), 3))
}

// TestSmokeCollectivesLive runs the identical program on real goroutines.
func TestSmokeCollectivesLive(t *testing.T) {
	m := mpmd.NewMachineWithBackend(mpmd.SPConfig(), 3,
		mpmd.NewLiveBackend(3, mpmd.LiveOptions{Watchdog: 20 * time.Second}))
	collectiveProgram(t, m)
}
