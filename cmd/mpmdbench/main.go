// Command mpmdbench regenerates the tables and figures of Chang et al.,
// "Evaluating the Performance Limitations of MPMD Communication" (SC 1997)
// on the calibrated IBM SP machine model.
//
// Usage:
//
//	mpmdbench [-quick] [experiment ...]
//
// Experiments: table1, table4, fig5, fig6-water, fig6-lu, nexus, ablate,
// irregular, all (default).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "run the reduced-size configuration")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mpmdbench [-quick] [table1|table4|fig5|fig6-water|fig6-lu|nexus|ablate|irregular|all ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	scale := bench.Full()
	if *quick {
		scale = bench.Quick()
	}
	cfg := bench.Cfg()

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"all"}
	}
	want := map[string]bool{}
	for _, a := range args {
		want[a] = true
	}
	all := want["all"]
	ran := 0

	run := func(name string, fn func()) {
		if !all && !want[name] {
			return
		}
		ran++
		start := time.Now()
		fn()
		fmt.Printf("[%s finished in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	fmt.Printf("MPMD communication study reproduction — profile %q, scale %q\n\n", cfg.Name, scale.Name)

	run("table1", func() {
		fmt.Print(bench.FormatCodeSize(bench.RunCodeSize()))
	})
	run("table4", func() {
		rows := bench.RunMicro(cfg, scale)
		mpl := bench.MPLReferenceRTT(cfg, scale.MicroIters)
		fmt.Print(bench.FormatMicro(rows, mpl))
	})
	run("fig5", func() {
		fmt.Print(bench.FormatEM3D(bench.RunEM3D(cfg, scale)))
	})
	run("fig6-water", func() {
		fmt.Print(bench.FormatWater(bench.RunWater(cfg, scale)))
	})
	run("fig6-lu", func() {
		fmt.Print(bench.FormatLU(bench.RunLU(cfg, scale)))
	})
	run("nexus", func() {
		fmt.Print(bench.FormatNexus(bench.RunNexusCompare(cfg, scale)))
	})
	run("ablate", func() {
		fmt.Print(bench.FormatAblations(bench.RunAblations(cfg, scale)))
	})
	run("irregular", func() {
		fmt.Print(bench.FormatIrregular(bench.RunIrregular(cfg, scale)))
	})

	if ran == 0 {
		flag.Usage()
		os.Exit(2)
	}
}
