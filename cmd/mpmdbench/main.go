// Command mpmdbench regenerates the tables and figures of Chang et al.,
// "Evaluating the Performance Limitations of MPMD Communication" (SC 1997)
// on the calibrated IBM SP machine model, and — with -backend=live — runs
// the same runtime stack on real goroutines with wall-clock timing.
//
// Usage:
//
//	mpmdbench [-quick] [-json] [-backend=sim|live] [experiment ...]
//
// Experiments on the sim backend: table1, table4, fig5, fig6-water,
// fig6-lu, nexus, ablate, irregular, coll, throughput, all (default). The
// live backend runs the live microbenchmark suite (RMI round-trips, bulk
// bandwidth, barrier) plus the collective-operations table and the
// sustained-throughput experiment (warm RMI/s and bulk MB/s per node count).
//
// -json replaces the text tables with one machine-readable report on
// stdout (schema mpmdbench/v3; duration fields in nanoseconds), so runs can
// be accumulated into a performance trajectory:
//
//	mpmdbench -quick -json table4 > BENCH_table4.json
//	mpmdbench -quick -json -backend=live > BENCH_live.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "run the reduced-size configuration")
	asJSON := flag.Bool("json", false, "emit one machine-readable JSON report on stdout instead of text tables")
	backend := flag.String("backend", "sim",
		"execution backend: sim (calibrated discrete-event model), live (real goroutines, wall-clock), or net (nodes sharded across OS processes over sockets)")
	netNodes := flag.Int("net-nodes", 0, "net backend: machine size (default 4, or 8 at full scale)")
	netNPS := flag.Int("nodes-per-shard", 0, "net backend: nodes per OS process (default half the nodes: clients in the parent, servers in the worker)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mpmdbench [-quick] [-json] [-backend=sim|live|net] [table1|table4|fig5|fig6-water|fig6-lu|nexus|ablate|irregular|coll|throughput|all ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	scale := bench.Full()
	if *quick {
		scale = bench.Quick()
	}
	cfg := bench.Cfg()

	report := bench.NewReport(*backend, cfg.Name, scale.Name)
	emit := func() {
		b, err := report.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpmdbench: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(b)
	}

	switch *backend {
	case "sim":
	case "net":
		if len(flag.Args()) > 0 {
			fmt.Fprintf(os.Stderr, "mpmdbench: note: experiment names %v select sim-backend tables; the net backend runs its sharded throughput experiment\n", flag.Args())
		}
		// One net machine per process: the experiment re-execs this whole
		// program for the worker shards, so exactly one sharded machine is
		// built per run, carrying both the rmi and the bulk phase.
		nodes := *netNodes
		if nodes == 0 {
			nodes = 4
			if !*quick {
				nodes = 8
			}
		}
		nps := *netNPS
		if nps == 0 {
			nps = nodes / 2
		}
		start := time.Now()
		rows, worker, err := bench.RunThroughputNet(cfg, scale, nodes, nps)
		if worker {
			// A re-exec'd worker shard: the parent owns the report.
			if err != nil {
				fmt.Fprintf(os.Stderr, "mpmdbench: worker shard: %v\n", err)
				os.Exit(1)
			}
			os.Exit(0)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpmdbench: %v\n", err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		if *asJSON {
			report.Add("throughput", elapsed, rows)
			emit()
			return
		}
		fmt.Printf("MPMD runtime on the net backend — %d nodes, %d per shard, scale %q\n\n", nodes, nps, scale.Name)
		fmt.Print(bench.FormatThroughput(rows, "net"))
		fmt.Printf("[throughput finished in %v]\n", elapsed.Round(time.Millisecond))
		return
	case "live":
		if len(flag.Args()) > 0 {
			// Stderr so -json redirection still sees it: a report file named
			// for a sim table must not silently fill with live-micro rows.
			fmt.Fprintf(os.Stderr, "mpmdbench: note: experiment names %v select sim-backend tables; the live backend runs its microbenchmark suite\n", flag.Args())
		}
		if !*asJSON {
			fmt.Printf("MPMD runtime on the live backend — scale %q\n\n", scale.Name)
		}
		start := time.Now()
		rows := bench.RunLiveMicro(cfg, scale)
		micro := time.Since(start)
		start = time.Now()
		collRows := bench.RunCollBench(cfg, scale, "live")
		collDur := time.Since(start)
		start = time.Now()
		tputRows := bench.RunThroughput(cfg, scale, "live")
		tputDur := time.Since(start)
		if *asJSON {
			report.Add("live-micro", micro, rows)
			report.Add("coll", collDur, collRows)
			report.Add("throughput", tputDur, tputRows)
			emit()
			return
		}
		fmt.Print(bench.FormatLiveMicro(rows))
		fmt.Printf("[live micro finished in %v]\n\n", micro.Round(time.Millisecond))
		fmt.Print(bench.FormatColl(collRows, "live"))
		fmt.Printf("[coll finished in %v]\n\n", collDur.Round(time.Millisecond))
		fmt.Print(bench.FormatThroughput(tputRows, "live"))
		fmt.Printf("[throughput finished in %v]\n", tputDur.Round(time.Millisecond))
		return
	default:
		fmt.Fprintf(os.Stderr, "mpmdbench: unknown backend %q (want sim, live, or net)\n", *backend)
		os.Exit(2)
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"all"}
	}
	want := map[string]bool{}
	for _, a := range args {
		want[a] = true
	}
	all := want["all"]
	ran := 0

	// Each experiment returns its row data (for the JSON report) and a
	// deferred text renderer, run only in text mode.
	run := func(name string, fn func() (any, func() string)) {
		if !all && !want[name] {
			return
		}
		ran++
		start := time.Now()
		rows, text := fn()
		elapsed := time.Since(start)
		if *asJSON {
			report.Add(name, elapsed, rows)
			return
		}
		fmt.Print(text())
		fmt.Printf("[%s finished in %v]\n\n", name, elapsed.Round(time.Millisecond))
	}

	if !*asJSON {
		fmt.Printf("MPMD communication study reproduction — profile %q, scale %q\n\n", cfg.Name, scale.Name)
	}

	run("table1", func() (any, func() string) {
		rows := bench.RunCodeSize()
		return rows, func() string { return bench.FormatCodeSize(rows) }
	})
	run("table4", func() (any, func() string) {
		rows := bench.RunMicro(cfg, scale)
		mpl := bench.MPLReferenceRTT(cfg, scale.MicroIters)
		return bench.MicroReport{Rows: rows, MPLReferenceRTT: mpl}, func() string { return bench.FormatMicro(rows, mpl) }
	})
	run("fig5", func() (any, func() string) {
		rows := bench.RunEM3D(cfg, scale)
		return rows, func() string { return bench.FormatEM3D(rows) }
	})
	run("fig6-water", func() (any, func() string) {
		rows := bench.RunWater(cfg, scale)
		return rows, func() string { return bench.FormatWater(rows) }
	})
	run("fig6-lu", func() (any, func() string) {
		row := bench.RunLU(cfg, scale)
		// Rows is an array for every experiment, even single-row ones.
		return []bench.LURow{row}, func() string { return bench.FormatLU(row) }
	})
	run("nexus", func() (any, func() string) {
		rows := bench.RunNexusCompare(cfg, scale)
		return rows, func() string { return bench.FormatNexus(rows) }
	})
	run("ablate", func() (any, func() string) {
		rows := bench.RunAblations(cfg, scale)
		return rows, func() string { return bench.FormatAblations(rows) }
	})
	run("irregular", func() (any, func() string) {
		rows := bench.RunIrregular(cfg, scale)
		return rows, func() string { return bench.FormatIrregular(rows) }
	})
	run("coll", func() (any, func() string) {
		rows := bench.RunCollBench(cfg, scale, "sim")
		return rows, func() string { return bench.FormatColl(rows, "sim") }
	})
	run("throughput", func() (any, func() string) {
		rows := bench.RunThroughput(cfg, scale, "sim")
		return rows, func() string { return bench.FormatThroughput(rows, "sim") }
	})

	if ran == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *asJSON {
		emit()
	}
}
