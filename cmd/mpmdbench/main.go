// Command mpmdbench regenerates the tables and figures of Chang et al.,
// "Evaluating the Performance Limitations of MPMD Communication" (SC 1997)
// on the calibrated IBM SP machine model, and — with -backend=live — runs
// the same runtime stack on real goroutines with wall-clock timing.
//
// Usage:
//
//	mpmdbench [-quick] [-json] [-backend=sim|live] [experiment ...]
//
// Experiments on the sim backend: table1, table4, fig5, fig6-water,
// fig6-lu, nexus, ablate, irregular, coll, throughput, all (default). The
// live backend runs the live microbenchmark suite (RMI round-trips, bulk
// bandwidth, barrier) plus the collective-operations table and the
// sustained-throughput experiment (warm RMI/s and bulk MB/s per node count).
//
// -json replaces the text tables with one machine-readable report on
// stdout (schema mpmdbench/v5; duration fields in nanoseconds), so runs can
// be accumulated into a performance trajectory:
//
//	mpmdbench -quick -json table4 > BENCH_table4.json
//	mpmdbench -quick -json -backend=live > BENCH_live.json
//
// Observability flags: -trace=FILE writes the stats experiment's machine as
// a Chrome trace-event JSON loadable in Perfetto; -debug-addr=ADDR serves
// expvar (including live "mpmd.stats") and net/http/pprof for long runs;
// -cpuprofile/-memprofile write pprof profiles of the whole run.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/bench"
	"repro/internal/trace"
	"repro/internal/transport/netlive"
)

// writeTrace exports tl as Chrome trace-event JSON (Perfetto-loadable).
func writeTrace(path string, tl *trace.Log) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := trace.WritePerfetto(f, tl); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mpmdbench: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	quick := flag.Bool("quick", false, "run the reduced-size configuration")
	asJSON := flag.Bool("json", false, "emit one machine-readable JSON report on stdout instead of text tables")
	backend := flag.String("backend", "sim",
		"execution backend: sim (calibrated discrete-event model), live (real goroutines, wall-clock), or net (nodes sharded across OS processes over sockets)")
	netNodes := flag.Int("net-nodes", 0, "net backend: machine size (default 16: eight client/server pairs)")
	netNPS := flag.Int("nodes-per-shard", 0, "net backend: nodes per OS process (default half the nodes: clients in the parent, servers in the worker)")
	traceOut := flag.String("trace", "", "write the stats experiment's event trace to this file as Chrome trace-event JSON (open in https://ui.perfetto.dev)")
	debugAddr := flag.String("debug-addr", "", "serve expvar (/debug/vars, incl. live mpmd.stats) and net/http/pprof on this address for the duration of the run")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (taken at exit) to this file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mpmdbench [-quick] [-json] [-backend=sim|live|net] [-trace=FILE] [-debug-addr=ADDR] [table1|table4|fig5|fig6-water|fig6-lu|nexus|ablate|irregular|coll|throughput|stats|all ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	scale := bench.Full()
	if *quick {
		scale = bench.Quick()
	}
	cfg := bench.Cfg()

	// A re-exec'd netlive worker runs with the parent's argument vector:
	// observability outputs (profiles, traces, debug server) belong to the
	// parent alone, or the worker would clobber its files and ports.
	worker := os.Getenv(netlive.EnvShard) != ""

	var tl *trace.Log
	if *traceOut != "" && !worker {
		tl = trace.New(0)
	}
	if *debugAddr != "" && !worker {
		// DefaultServeMux carries /debug/vars (expvar, imported by bench) and
		// /debug/pprof (the blank net/http/pprof import above).
		bench.PublishDebugVars()
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "mpmdbench: debug server: %v\n", err)
			}
		}()
	}
	if *cpuProfile != "" && !worker {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" && !worker {
		mp := *memProfile
		defer func() {
			f, err := os.Create(mp)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mpmdbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "mpmdbench: memprofile: %v\n", err)
			}
		}()
	}
	if tl != nil {
		out := *traceOut
		defer func() {
			if err := writeTrace(out, tl); err != nil {
				fmt.Fprintf(os.Stderr, "mpmdbench: trace: %v\n", err)
			}
		}()
	}

	report := bench.NewReport(*backend, cfg.Name, scale.Name)
	emit := func() {
		b, err := report.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpmdbench: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(b)
	}

	switch *backend {
	case "sim":
	case "net":
		if len(flag.Args()) > 0 {
			fmt.Fprintf(os.Stderr, "mpmdbench: note: experiment names %v select sim-backend tables; the net backend runs its sharded throughput experiment\n", flag.Args())
		}
		// One net machine per process per wave: the experiment re-execs this
		// whole program for the worker shards, so exactly one sharded machine
		// is built per run, carrying both the rmi and the bulk phase. The
		// parent runs two waves — shared-memory rings, then the socket path —
		// so the report carries both transports over the identical workload.
		// A re-exec'd worker only ever sees the first call: it inherits its
		// wave's transport through the environment and exits after reporting.
		// Default to 8 client/server pairs: sustained throughput is what the
		// experiment measures, and fewer pairs under-fill the rings — the
		// per-switch batch is what amortizes the process hand-off cost.
		nodes := *netNodes
		if nodes == 0 {
			nodes = 16
		}
		nps := *netNPS
		if nps == 0 {
			nps = nodes / 2
		}
		start := time.Now()
		rows, statsRows, isWorker, err := bench.RunThroughputNet(cfg, scale, nodes, nps, tl, false)
		if isWorker {
			// A re-exec'd worker shard: the parent owns the report.
			if err != nil {
				fmt.Fprintf(os.Stderr, "mpmdbench: worker shard: %v\n", err)
				os.Exit(1)
			}
			os.Exit(0)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpmdbench: %v\n", err)
			os.Exit(1)
		}
		sockRows, _, _, err := bench.RunThroughputNet(cfg, scale, nodes, nps, nil, true)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpmdbench: socket wave: %v\n", err)
			os.Exit(1)
		}
		rows = append(rows, sockRows...)
		elapsed := time.Since(start)
		if *asJSON {
			report.Add("throughput", elapsed, rows)
			report.Add("stats", 0, statsRows)
			emit()
			return
		}
		fmt.Printf("MPMD runtime on the net backend — %d nodes, %d per shard, scale %q\n\n", nodes, nps, scale.Name)
		fmt.Print(bench.FormatThroughput(rows, "net"))
		fmt.Printf("[throughput finished in %v]\n\n", elapsed.Round(time.Millisecond))
		fmt.Print(bench.FormatStats(statsRows, "net"))
		return
	case "live":
		if len(flag.Args()) > 0 {
			// Stderr so -json redirection still sees it: a report file named
			// for a sim table must not silently fill with live-micro rows.
			fmt.Fprintf(os.Stderr, "mpmdbench: note: experiment names %v select sim-backend tables; the live backend runs its microbenchmark suite\n", flag.Args())
		}
		if !*asJSON {
			fmt.Printf("MPMD runtime on the live backend — scale %q\n\n", scale.Name)
		}
		start := time.Now()
		rows := bench.RunLiveMicro(cfg, scale)
		micro := time.Since(start)
		start = time.Now()
		collRows := bench.RunCollBench(cfg, scale, "live")
		collDur := time.Since(start)
		start = time.Now()
		tputRows := bench.RunThroughput(cfg, scale, "live")
		tputDur := time.Since(start)
		start = time.Now()
		statsRows, err := bench.RunStats(cfg, scale, "live", tl)
		if err != nil {
			fatalf("%v", err)
		}
		statsDur := time.Since(start)
		if *asJSON {
			report.Add("live-micro", micro, rows)
			report.Add("coll", collDur, collRows)
			report.Add("throughput", tputDur, tputRows)
			report.Add("stats", statsDur, statsRows)
			emit()
			return
		}
		fmt.Print(bench.FormatLiveMicro(rows))
		fmt.Printf("[live micro finished in %v]\n\n", micro.Round(time.Millisecond))
		fmt.Print(bench.FormatColl(collRows, "live"))
		fmt.Printf("[coll finished in %v]\n\n", collDur.Round(time.Millisecond))
		fmt.Print(bench.FormatThroughput(tputRows, "live"))
		fmt.Printf("[throughput finished in %v]\n\n", tputDur.Round(time.Millisecond))
		fmt.Print(bench.FormatStats(statsRows, "live"))
		fmt.Printf("[stats finished in %v]\n", statsDur.Round(time.Millisecond))
		return
	default:
		fmt.Fprintf(os.Stderr, "mpmdbench: unknown backend %q (want sim, live, or net)\n", *backend)
		os.Exit(2)
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"all"}
	}
	want := map[string]bool{}
	for _, a := range args {
		want[a] = true
	}
	all := want["all"]
	ran := 0

	// Each experiment returns its row data (for the JSON report) and a
	// deferred text renderer, run only in text mode.
	run := func(name string, fn func() (any, func() string)) {
		if !all && !want[name] {
			return
		}
		ran++
		start := time.Now()
		rows, text := fn()
		elapsed := time.Since(start)
		if *asJSON {
			report.Add(name, elapsed, rows)
			return
		}
		fmt.Print(text())
		fmt.Printf("[%s finished in %v]\n\n", name, elapsed.Round(time.Millisecond))
	}

	if !*asJSON {
		fmt.Printf("MPMD communication study reproduction — profile %q, scale %q\n\n", cfg.Name, scale.Name)
	}

	run("table1", func() (any, func() string) {
		rows := bench.RunCodeSize()
		return rows, func() string { return bench.FormatCodeSize(rows) }
	})
	run("table4", func() (any, func() string) {
		rows := bench.RunMicro(cfg, scale)
		mpl := bench.MPLReferenceRTT(cfg, scale.MicroIters)
		return bench.MicroReport{Rows: rows, MPLReferenceRTT: mpl}, func() string { return bench.FormatMicro(rows, mpl) }
	})
	run("fig5", func() (any, func() string) {
		rows := bench.RunEM3D(cfg, scale)
		return rows, func() string { return bench.FormatEM3D(rows) }
	})
	run("fig6-water", func() (any, func() string) {
		rows := bench.RunWater(cfg, scale)
		return rows, func() string { return bench.FormatWater(rows) }
	})
	run("fig6-lu", func() (any, func() string) {
		row := bench.RunLU(cfg, scale)
		// Rows is an array for every experiment, even single-row ones.
		return []bench.LURow{row}, func() string { return bench.FormatLU(row) }
	})
	run("nexus", func() (any, func() string) {
		rows := bench.RunNexusCompare(cfg, scale)
		return rows, func() string { return bench.FormatNexus(rows) }
	})
	run("ablate", func() (any, func() string) {
		rows := bench.RunAblations(cfg, scale)
		return rows, func() string { return bench.FormatAblations(rows) }
	})
	run("irregular", func() (any, func() string) {
		rows := bench.RunIrregular(cfg, scale)
		return rows, func() string { return bench.FormatIrregular(rows) }
	})
	run("coll", func() (any, func() string) {
		rows := bench.RunCollBench(cfg, scale, "sim")
		return rows, func() string { return bench.FormatColl(rows, "sim") }
	})
	run("throughput", func() (any, func() string) {
		rows := bench.RunThroughput(cfg, scale, "sim")
		return rows, func() string { return bench.FormatThroughput(rows, "sim") }
	})
	run("stats", func() (any, func() string) {
		rows, err := bench.RunStats(cfg, scale, "sim", tl)
		if err != nil {
			fatalf("stats: %v", err)
		}
		return rows, func() string { return bench.FormatStats(rows, "sim") }
	})

	if ran == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *asJSON {
		emit()
	}
}
