// Command mpmdbench regenerates the tables and figures of Chang et al.,
// "Evaluating the Performance Limitations of MPMD Communication" (SC 1997)
// on the calibrated IBM SP machine model, and — with -backend=live — runs
// the same runtime stack on real goroutines with wall-clock timing.
//
// Usage:
//
//	mpmdbench [-quick] [-backend=sim|live] [experiment ...]
//
// Experiments on the sim backend: table1, table4, fig5, fig6-water,
// fig6-lu, nexus, ablate, irregular, all (default). The live backend runs
// the live microbenchmark suite (RMI round-trips, bulk bandwidth, barrier).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "run the reduced-size configuration")
	backend := flag.String("backend", "sim",
		"execution backend: sim (calibrated discrete-event model) or live (real goroutines, wall-clock)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mpmdbench [-quick] [-backend=sim|live] [table1|table4|fig5|fig6-water|fig6-lu|nexus|ablate|irregular|all ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	scale := bench.Full()
	if *quick {
		scale = bench.Quick()
	}
	cfg := bench.Cfg()

	switch *backend {
	case "sim":
	case "live":
		fmt.Printf("MPMD runtime on the live backend — scale %q\n\n", scale.Name)
		if len(flag.Args()) > 0 {
			fmt.Printf("(note: experiment names %v select sim-backend tables; the live backend runs its microbenchmark suite)\n\n", flag.Args())
		}
		start := time.Now()
		fmt.Print(bench.FormatLiveMicro(bench.RunLiveMicro(cfg, scale)))
		fmt.Printf("[live micro finished in %v]\n", time.Since(start).Round(time.Millisecond))
		return
	default:
		fmt.Fprintf(os.Stderr, "mpmdbench: unknown backend %q (want sim or live)\n", *backend)
		os.Exit(2)
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"all"}
	}
	want := map[string]bool{}
	for _, a := range args {
		want[a] = true
	}
	all := want["all"]
	ran := 0

	run := func(name string, fn func()) {
		if !all && !want[name] {
			return
		}
		ran++
		start := time.Now()
		fn()
		fmt.Printf("[%s finished in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	fmt.Printf("MPMD communication study reproduction — profile %q, scale %q\n\n", cfg.Name, scale.Name)

	run("table1", func() {
		fmt.Print(bench.FormatCodeSize(bench.RunCodeSize()))
	})
	run("table4", func() {
		rows := bench.RunMicro(cfg, scale)
		mpl := bench.MPLReferenceRTT(cfg, scale.MicroIters)
		fmt.Print(bench.FormatMicro(rows, mpl))
	})
	run("fig5", func() {
		fmt.Print(bench.FormatEM3D(bench.RunEM3D(cfg, scale)))
	})
	run("fig6-water", func() {
		fmt.Print(bench.FormatWater(bench.RunWater(cfg, scale)))
	})
	run("fig6-lu", func() {
		fmt.Print(bench.FormatLU(bench.RunLU(cfg, scale)))
	})
	run("nexus", func() {
		fmt.Print(bench.FormatNexus(bench.RunNexusCompare(cfg, scale)))
	})
	run("ablate", func() {
		fmt.Print(bench.FormatAblations(bench.RunAblations(cfg, scale)))
	})
	run("irregular", func() {
		fmt.Print(bench.FormatIrregular(bench.RunIrregular(cfg, scale)))
	})

	if ran == 0 {
		flag.Usage()
		os.Exit(2)
	}
}
