// Command mpmdvet statically enforces the runtime's hand-shaken invariants:
// wire.Buf ownership flow (bufown), nil-gated metrics record sites (nilgate),
// allocation-free //mpmd:hotpath functions (hotpath), word-resolvable wire
// structs (wirewords), fenced accounting cells (acctdirect), lock-guarded
// fields and //mpmdvet:requires call-site contracts (lockguard), a cycle-free
// lock acquisition order (lockorder), no mixed atomic/plain access
// (atomicmix), no blocking under a //mpmd:cpu mutex (blockhold), exhaustive
// switches over //mpmdvet:exhaustive constants (framekind), and sync/atomic
// access to //mpmdvet:shared cross-process shm fields (shmatomic).
//
// The allocation, blocking, lock-effect, and buffer-ownership checks are
// whole-program: a call-graph summary layer (internal/analysis/callgraph)
// propagates facts bottom-up over SCCs, through method values and
// CHA-bounded interface calls, and violations print the witness chain to the
// leaf operation. //mpmd:coldpath marks a function as allocating by design
// and cuts the chain there.
//
// Two modes share the same passes:
//
//	go run ./cmd/mpmdvet ./...                 standalone, whole-tree
//	go vet -vettool=$(which mpmdvet) ./...     toolchain-driven, cached
//
// Standalone mode prints diagnostics plus a one-line summary counting
// //mpmdvet:ignore suppressions per pass; -summary=<file> also writes the
// machine-readable JSON CI uploads next to BENCH_live.json, and
// -baseline=<file> ratchets the suppression ledger: every pragma needs a
// reason, and the per-pass counts must match the committed baseline exactly.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/analysis/suite"
)

func main() {
	analyzers := suite.Analyzers()

	// `go vet -vettool` invocations (-flags / -V=full / <unit>.cfg) are
	// dispatched before flag parsing: the protocol owns those argument forms.
	if analysis.UnitcheckerMain(os.Args[1:], analyzers) {
		return
	}

	summaryPath := flag.String("summary", "", "write a JSON run summary to this file")
	baselinePath := flag.String("baseline", "", "check suppressions against this committed baseline file")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: mpmdvet [-summary=file.json] [-baseline=file.json] [package patterns]\n\npasses:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpmdvet:", err)
		os.Exit(1)
	}
	sum, clean, err := analysis.Run(os.Stdout, dir, analyzers, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpmdvet:", err)
		os.Exit(1)
	}
	fmt.Println(sum.Line())
	if *summaryPath != "" {
		if err := analysis.WriteSummary(*summaryPath, sum); err != nil {
			fmt.Fprintln(os.Stderr, "mpmdvet: writing summary:", err)
			os.Exit(1)
		}
	}
	if *baselinePath != "" {
		// A relative baseline path resolves against the module root, not the
		// cwd, so `mpmdvet -baseline=mpmdvet_baseline.json` works from any
		// directory inside the module.
		path := *baselinePath
		if !filepath.IsAbs(path) {
			root, err := analysis.ModuleRoot(dir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mpmdvet:", err)
				os.Exit(1)
			}
			path = filepath.Join(root, path)
		}
		base, err := analysis.LoadBaseline(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpmdvet:", err)
			os.Exit(1)
		}
		if drift := sum.DiffBaseline(base); len(drift) > 0 {
			for _, msg := range drift {
				fmt.Fprintln(os.Stderr, "mpmdvet:", msg)
			}
			clean = false
		}
	}
	if !clean {
		os.Exit(2)
	}
}
