// EM3D: run the paper's electromagnetic-wave application in both languages
// and all three program variants on one graph, printing the per-edge cost
// breakdown — a miniature of the paper's Figure 5 driven through the public
// API.
//
// Run with: go run ./examples/em3d [-remote 100] [-nodes 800] [-degree 20] [-iters 5]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro/internal/apps/em3d"
	"repro/mpmd"
)

func main() {
	remote := flag.Int("remote", 100, "percentage of edges crossing processor boundaries")
	nodes := flag.Int("nodes", 800, "graph nodes")
	degree := flag.Int("degree", 20, "edges per node")
	iters := flag.Int("iters", 5, "update steps")
	flag.Parse()

	p := em3d.Params{
		GraphNodes: *nodes, Degree: *degree, Procs: 4,
		RemotePct: *remote, Iters: *iters, Seed: 1,
	}
	base := em3d.Build(p)
	serial := base.Clone()
	em3d.RunSerial(serial)
	want := serial.Checksum()

	fmt.Printf("EM3D: %d nodes, degree %d, %d%% remote edges, %d iterations, 4 processors\n\n",
		p.GraphNodes, p.Degree, p.RemotePct, p.Iters)
	fmt.Printf("%-18s %12s %10s  %s\n", "version", "per edge", "vs sc", "breakdown (net/cpu/mgmt/sync/rt)")

	for _, variant := range em3d.Variants() {
		g := base.Clone()
		sc, err := em3d.RunSplitC(mpmd.SPConfig(), g, variant)
		if err != nil {
			log.Fatal(err)
		}
		check(sc.Checksum, want, "split-c/"+string(variant))

		g = base.Clone()
		cc, err := em3d.RunCCXX(mpmd.SPConfig(), g, variant, nil)
		if err != nil {
			log.Fatal(err)
		}
		check(cc.Checksum, want, "cc++/"+string(variant))

		fmt.Printf("%-18s %12v %10s  —\n", sc.Name(), sc.PerUnit, "1.00")
		fmt.Printf("%-18s %12v %10.2f  %.2f/%.2f/%.2f/%.2f/%.2f\n",
			cc.Name(), cc.PerUnit, cc.Ratio(sc),
			cc.Fraction(mpmd.CatNet), cc.Fraction(mpmd.CatCPU),
			cc.Fraction(mpmd.CatThreadMgmt), cc.Fraction(mpmd.CatThreadSync),
			cc.Fraction(mpmd.CatRuntime))
	}
	fmt.Println("\nall six distributed runs matched the serial reference bit-for-bit")
}

func check(got, want float64, name string) {
	if math.Abs(got-want) > 1e-9*math.Abs(want) {
		log.Fatalf("%s: checksum %v, want %v", name, got, want)
	}
}
