// EM3D on the typed v2 + collectives surface: the paper's electromagnetic
// wave kernel — a bipartite E/H dependency graph updated in alternating
// phases — written against mpmd.Dist and mpmd.Team instead of hand-rolled
// message code, and runnable on either backend.
//
// Two program variants mirror the paper's Figure 5 axis:
//
//   - base:  every dependency is fetched with a split-phase Dist.GetAsync
//     each phase (remote traffic proportional to edges);
//   - ghost: each member prefetches every distinct remote dependency once
//     per phase into a ghost cache, then updates locally (the paper's
//     ghost-node optimization, here a dozen lines over the same API).
//
// Phases are separated by Team.Barrier (log-depth dissemination), and the
// final checksum is an AllReduce — both collectives from the new surface.
// The calibrated Figure 5 regeneration lives in cmd/mpmdbench fig5; this
// example shows the same application shape on the modern API.
//
// Run with: go run ./examples/em3d [-backend=sim|live] [-remote 100]
// [-nodes 128] [-degree 4] [-iters 3]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"repro/mpmd"
)

const procs = 4

// graph is the shared dependency structure: for each element of one array,
// the indices and weights of its dependencies in the other array. Built
// identically everywhere at setup (one OS process hosts all nodes, as with
// the machine model itself); only the values live in the Dist arrays.
type graph struct {
	n       int
	deps    [][]int // per element: dependency indices in the other array
	weights [][]float64
}

func buildGraph(n, degree, remotePct int, rng *rand.Rand, owner func(i int) int) *graph {
	g := &graph{n: n, deps: make([][]int, n), weights: make([][]float64, n)}
	for i := 0; i < n; i++ {
		for d := 0; d < degree; d++ {
			var j int
			if rng.Intn(100) < remotePct {
				j = rng.Intn(n) // anywhere (usually another member)
			} else {
				// A dependency owned by the same member as element i.
				for j = rng.Intn(n); owner(j) != owner(i); j = rng.Intn(n) {
				}
			}
			g.deps[i] = append(g.deps[i], j)
			g.weights[i] = append(g.weights[i], rng.Float64()-0.5)
		}
	}
	return g
}

// update applies one phase to dst[i] from src values: the EM3D kernel
// dst[i] -= sum_j w_ij * src[dep_ij].
func (g *graph) update(i int, cur float64, src func(j int) float64) float64 {
	for d, j := range g.deps[i] {
		cur -= g.weights[i][d] * src(j)
	}
	return cur
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

type result struct {
	perEdge  time.Duration
	checksum float64
}

// runDistributed runs the kernel over Dist arrays on a fresh machine.
// ghost=true prefetches distinct remote dependencies once per phase.
func runDistributed(backend string, eg, hg *graph, iters int, ghost bool) result {
	var m *mpmd.Machine
	switch backend {
	case "sim":
		m = mpmd.NewMachine(mpmd.SPConfig(), procs)
	case "live":
		m = mpmd.NewLiveMachine(mpmd.SPConfig(), procs)
	default:
		log.Fatalf("unknown backend %q (want sim or live)", backend)
	}
	rt := mpmd.NewRuntime(m)
	tm, err := mpmd.WorldTeam(rt)
	must(err)
	eD, err := mpmd.NewDist[float64](tm, eg.n, mpmd.LayoutBlock)
	must(err)
	hD, err := mpmd.NewDist[float64](tm, hg.n, mpmd.LayoutBlock)
	must(err)

	edges := 0
	for _, d := range eg.deps {
		edges += len(d)
	}
	for _, d := range hg.deps {
		edges += len(d)
	}

	var out result
	for p := 0; p < procs; p++ {
		p := p
		rt.OnNode(p, func(t *mpmd.Thread) {
			// Initial values: element i of E starts at i, of H at 2i.
			must(eD.ForEachLocal(t, func(i int, v *float64) { *v = float64(i) }))
			must(hD.ForEachLocal(t, func(i int, v *float64) { *v = 2 * float64(i) }))
			must(tm.Barrier(t))

			phase := func(dst *mpmd.Dist[float64], g *graph, src *mpmd.Dist[float64]) {
				var lookup func(j int) float64
				if ghost {
					// Prefetch each distinct dependency once, split-phase.
					cache := map[int]float64{}
					futs := map[int]*mpmd.Future[float64]{}
					must(dst.ForEachLocal(t, func(i int, v *float64) {
						for _, j := range g.deps[i] {
							if _, seen := futs[j]; !seen {
								f, err := src.GetAsync(t, j)
								must(err)
								futs[j] = f
							}
						}
					}))
					for j, f := range futs {
						cache[j] = f.Wait(t)
					}
					lookup = func(j int) float64 { return cache[j] }
				} else {
					lookup = func(j int) float64 {
						v, err := src.Get(t, j)
						must(err)
						return v
					}
				}
				must(dst.ForEachLocal(t, func(i int, v *float64) {
					*v = g.update(i, *v, lookup)
				}))
				must(tm.Barrier(t))
			}

			start := t.Now()
			for it := 0; it < iters; it++ {
				phase(eD, eg, hD)
				phase(hD, hg, eD)
			}
			elapsed := time.Duration(t.Now() - start)

			// Checksum: AllReduce over local partial sums.
			local := 0.0
			must(eD.ForEachLocal(t, func(i int, v *float64) { local += *v }))
			must(hD.ForEachLocal(t, func(i int, v *float64) { local += *v }))
			sum, err := mpmd.AllReduce(t, tm, local, mpmd.Sum[float64])
			must(err)
			if p == 0 {
				out.perEdge = elapsed / time.Duration(edges*iters)
				out.checksum = sum
			}
		})
	}
	must(rt.Run())
	return out
}

// runSerial computes the reference result in-process.
func runSerial(eg, hg *graph, iters int) float64 {
	e := make([]float64, eg.n)
	h := make([]float64, hg.n)
	for i := range e {
		e[i] = float64(i)
	}
	for i := range h {
		h[i] = 2 * float64(i)
	}
	for it := 0; it < iters; it++ {
		for i := range e {
			e[i] = eg.update(i, e[i], func(j int) float64 { return h[j] })
		}
		for i := range h {
			h[i] = hg.update(i, h[i], func(j int) float64 { return e[j] })
		}
	}
	sum := 0.0
	for _, v := range e {
		sum += v
	}
	for _, v := range h {
		sum += v
	}
	return sum
}

func main() {
	backend := flag.String("backend", "sim", "execution backend: sim (calibrated virtual time) or live (real goroutines, wall-clock)")
	remote := flag.Int("remote", 100, "percentage of edges allowed to cross member boundaries")
	nodes := flag.Int("nodes", 128, "graph nodes per array")
	degree := flag.Int("degree", 4, "dependencies per node")
	iters := flag.Int("iters", 3, "update steps")
	flag.Parse()
	if *nodes < 1 || *degree < 1 || *iters < 1 {
		log.Fatalf("need -nodes, -degree, and -iters >= 1 (got %d, %d, %d)", *nodes, *degree, *iters)
	}
	if *remote < 0 || *remote > 100 {
		log.Fatalf("-remote is a percentage, got %d", *remote)
	}

	// The block layout assigns ceil(n/p)-sized contiguous chunks.
	block := (*nodes + procs - 1) / procs
	owner := func(i int) int { return i / block }
	rng := rand.New(rand.NewSource(1))
	eg := buildGraph(*nodes, *degree, *remote, rng, owner)
	hg := buildGraph(*nodes, *degree, *remote, rng, owner)
	want := runSerial(eg, hg, *iters)

	fmt.Printf("EM3D on Dist[float64] + Team collectives (%s backend): %d+%d nodes, degree %d, %d%% remote, %d iterations, %d members\n\n",
		*backend, *nodes, *nodes, *degree, *remote, *iters, procs)
	fmt.Printf("%-28s %14s\n", "variant", "per edge")
	for _, v := range []struct {
		name  string
		ghost bool
	}{{"base (get per dependency)", false}, {"ghost (prefetch distinct)", true}} {
		r := runDistributed(*backend, eg, hg, *iters, v.ghost)
		if math.Abs(r.checksum-want) > 1e-6*math.Abs(want)+1e-9 {
			log.Fatalf("%s: checksum %v, want %v", v.name, r.checksum, want)
		}
		fmt.Printf("%-28s %14v\n", v.name, r.perEdge)
	}
	fmt.Println("\nboth distributed variants matched the serial reference checksum")
}
