// Latency hiding: the paper's Prefetch micro-benchmark as a runnable
// comparison of three ways to read 20 remote doubles —
//
//  1. CC++ blocking global-pointer reads (no overlap),
//  2. CC++ parfor prefetching (overlap bought with a thread per element),
//  3. Split-C split-phase gets (overlap nearly for free).
//
// The output shows why the paper concludes that "the overhead of thread
// management reduces the effectiveness of latency hiding substantially" in
// the MPMD runtime, while Split-C's single-threaded split-phase accesses
// pipeline the same traffic at a third of the cost.
//
// Run with: go run ./examples/latencyhiding
package main

import (
	"fmt"
	"log"
	"time"

	"repro/mpmd"
)

const n = 20

func main() {
	fmt.Printf("reading %d remote doubles on the modelled SP (wire RTT %v)\n\n",
		n, mpmd.SPConfig().ShortRTT())

	blocking, seqSum := ccBlocking()
	parfor, pfSum := ccParFor()
	splitPhase, scSum := scSplitPhase()

	fmt.Printf("%-34s %10s %14s\n", "strategy", "total", "per element")
	fmt.Printf("%-34s %10v %14v\n", "cc++ blocking GP reads", blocking, blocking/n)
	fmt.Printf("%-34s %10v %14v\n", "cc++ parfor prefetch", parfor, parfor/n)
	fmt.Printf("%-34s %10v %14v\n", "split-c split-phase gets", splitPhase, splitPhase/n)
	fmt.Printf("\nspeedup from overlap: cc++ %.1fx, split-c %.1fx over blocking\n",
		float64(blocking)/float64(parfor), float64(blocking)/float64(splitPhase))
	if seqSum != pfSum || pfSum != scSum {
		log.Fatalf("checksum mismatch: %v %v %v", seqSum, pfSum, scSum)
	}
	fmt.Printf("(all three strategies fetched identical data: checksum %.3f)\n", scSum)
}

// remoteData builds the array owned by node 1.
func remoteData() []float64 {
	d := make([]float64, n)
	for i := range d {
		d[i] = float64(i) * 1.5
	}
	return d
}

func ccBlocking() (time.Duration, float64) {
	m := mpmd.NewMachine(mpmd.SPConfig(), 2)
	rt := mpmd.NewRuntime(m)
	remote := remoteData()
	var elapsed time.Duration
	sum := 0.0
	rt.OnNode(0, func(t *mpmd.Thread) {
		start := t.Now()
		for i := 0; i < n; i++ {
			sum += rt.ReadF64(t, mpmd.NewGPF64(1, &remote[i]))
		}
		elapsed = time.Duration(t.Now() - start)
	})
	if err := rt.Run(); err != nil {
		log.Fatal(err)
	}
	return elapsed, sum
}

func ccParFor() (time.Duration, float64) {
	m := mpmd.NewMachine(mpmd.SPConfig(), 2)
	rt := mpmd.NewRuntime(m)
	remote := remoteData()
	local := make([]float64, n)
	var elapsed time.Duration
	rt.OnNode(0, func(t *mpmd.Thread) {
		start := t.Now()
		// One thread per iteration: each read still blocks, but the reads
		// of different iterations overlap on the wire.
		mpmd.ParFor(t, n, func(t2 *mpmd.Thread, i int) {
			local[i] = rt.ReadF64(t2, mpmd.NewGPF64(1, &remote[i]))
		})
		elapsed = time.Duration(t.Now() - start)
	})
	if err := rt.Run(); err != nil {
		log.Fatal(err)
	}
	sum := 0.0
	for _, v := range local {
		sum += v
	}
	return elapsed, sum
}

func scSplitPhase() (time.Duration, float64) {
	m := mpmd.NewMachine(mpmd.SPConfig(), 2)
	w := mpmd.NewSplitC(m)
	remote := remoteData()
	local := make([]float64, n)
	var elapsed time.Duration
	err := w.Run(func(p *mpmd.SplitCProc) {
		if p.MyPC() == 0 {
			start := p.T.Now()
			for i := 0; i < n; i++ {
				p.Get(&local[i], mpmd.SCPtr{PC: 1, P: &remote[i]})
			}
			p.Sync()
			elapsed = time.Duration(p.T.Now() - start)
		}
		p.Barrier()
	})
	if err != nil {
		log.Fatal(err)
	}
	sum := 0.0
	for _, v := range local {
		sum += v
	}
	return elapsed, sum
}
