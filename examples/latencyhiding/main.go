// Latency hiding: the paper's Prefetch micro-benchmark as a runnable
// comparison of four ways to read 20 remote doubles, now written on the
// typed v2 + collectives surface —
//
//  1. blocking Dist.Get reads (no overlap),
//  2. parfor prefetching over Dist.Get (overlap bought with a thread per
//     element — the paper's CC++ strategy),
//  3. split-phase Dist.GetAsync with typed futures (overlap without the
//     thread-per-element tax),
//  4. Split-C split-phase gets (the SPMD baseline).
//
// The output shows why the paper concludes that "the overhead of thread
// management reduces the effectiveness of latency hiding substantially" in
// the MPMD runtime — and how split-phase access, now first-class and typed
// on the MPMD side too (Dist.GetAsync), pipelines the same traffic without
// spawning threads.
//
// Run with: go run ./examples/latencyhiding [-backend=sim|live]
// (sim compares calibrated virtual times; live compares wall-clock)
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/mpmd"
)

const n = 20

var backend string

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func newMachine(nodes int) *mpmd.Machine {
	switch backend {
	case "sim":
		return mpmd.NewMachine(mpmd.SPConfig(), nodes)
	case "live":
		return mpmd.NewLiveMachine(mpmd.SPConfig(), nodes)
	default:
		log.Fatalf("unknown backend %q (want sim or live)", backend)
		return nil
	}
}

// distRig builds a 2-node machine with a cyclic Dist whose odd elements —
// all the ones node 0 reads — live on node 1, pre-filled by the owner.
func distRig() (*mpmd.Machine, *mpmd.Runtime, *mpmd.Dist[float64]) {
	m := newMachine(2)
	rt := mpmd.NewRuntime(m)
	tm, err := mpmd.WorldTeam(rt)
	must(err)
	d, err := mpmd.NewDist[float64](tm, 2*n, mpmd.LayoutCyclic)
	must(err)
	rt.OnNode(1, func(t *mpmd.Thread) {
		must(d.ForEachLocal(t, func(i int, v *float64) { *v = float64(i) * 1.5 }))
		must(tm.Barrier(t))
		must(tm.Barrier(t)) // reader signals completion
	})
	return m, rt, d
}

// measure runs body on node 0 between the data-ready and done barriers and
// returns its elapsed time plus the checksum of what it read.
func measure(body func(t *mpmd.Thread, d *mpmd.Dist[float64], local []float64)) (time.Duration, float64) {
	_, rt, d := distRig()
	local := make([]float64, n)
	var elapsed time.Duration
	rt.OnNode(0, func(t *mpmd.Thread) {
		tm := d.Team()
		must(tm.Barrier(t)) // owner has filled the array
		start := t.Now()
		body(t, d, local)
		elapsed = time.Duration(t.Now() - start)
		must(tm.Barrier(t))
	})
	must(rt.Run())
	sum := 0.0
	for _, v := range local {
		sum += v
	}
	return elapsed, sum
}

// remoteIdx maps the k-th read to a node-1-owned element (odd indices).
func remoteIdx(k int) int { return 2*k + 1 }

func blocking() (time.Duration, float64) {
	return measure(func(t *mpmd.Thread, d *mpmd.Dist[float64], local []float64) {
		for k := 0; k < n; k++ {
			v, err := d.Get(t, remoteIdx(k))
			must(err)
			local[k] = v
		}
	})
}

func parforPrefetch() (time.Duration, float64) {
	return measure(func(t *mpmd.Thread, d *mpmd.Dist[float64], local []float64) {
		// One thread per iteration: each read still blocks, but the reads of
		// different iterations overlap on the wire.
		mpmd.ParFor(t, n, func(t2 *mpmd.Thread, k int) {
			v, err := d.Get(t2, remoteIdx(k))
			must(err)
			local[k] = v
		})
	})
}

func splitPhaseFutures() (time.Duration, float64) {
	return measure(func(t *mpmd.Thread, d *mpmd.Dist[float64], local []float64) {
		// All gets in flight at once; typed futures join them — no threads
		// spawned, no type assertions.
		futs := make([]*mpmd.Future[float64], n)
		for k := 0; k < n; k++ {
			f, err := d.GetAsync(t, remoteIdx(k))
			must(err)
			futs[k] = f
		}
		for k, f := range futs {
			local[k] = f.Wait(t)
		}
	})
}

func scSplitPhase() (time.Duration, float64) {
	m := newMachine(2)
	w := mpmd.NewSplitC(m)
	remote := make([]float64, n)
	for i := range remote {
		remote[i] = float64(remoteIdx(i)) * 1.5
	}
	local := make([]float64, n)
	var elapsed time.Duration
	err := w.Run(func(p *mpmd.SplitCProc) {
		if p.MyPC() == 0 {
			start := p.T.Now()
			for i := 0; i < n; i++ {
				p.Get(&local[i], mpmd.SCPtr{PC: 1, P: &remote[i]})
			}
			p.Sync()
			elapsed = time.Duration(p.T.Now() - start)
		}
		p.Barrier()
	})
	must(err)
	sum := 0.0
	for _, v := range local {
		sum += v
	}
	return elapsed, sum
}

func main() {
	flag.StringVar(&backend, "backend", "sim", "execution backend: sim (calibrated virtual time) or live (real goroutines, wall-clock)")
	flag.Parse()

	unit := "modelled SP virtual time"
	if backend == "live" {
		unit = "host wall-clock"
	}
	fmt.Printf("reading %d remote doubles (%s backend, %s; wire RTT %v modelled)\n\n",
		n, backend, unit, mpmd.SPConfig().ShortRTT())

	block, sum1 := blocking()
	parfor, sum2 := parforPrefetch()
	futures, sum3 := splitPhaseFutures()
	sc, sum4 := scSplitPhase()

	fmt.Printf("%-38s %10s %14s\n", "strategy", "total", "per element")
	fmt.Printf("%-38s %10v %14v\n", "blocking Dist.Get", block, block/n)
	fmt.Printf("%-38s %10v %14v\n", "parfor prefetch (thread per elem)", parfor, parfor/n)
	fmt.Printf("%-38s %10v %14v\n", "split-phase Dist.GetAsync futures", futures, futures/n)
	fmt.Printf("%-38s %10v %14v\n", "split-c split-phase gets", sc, sc/n)
	fmt.Printf("\nspeedup over blocking: parfor %.1fx, typed futures %.1fx, split-c %.1fx\n",
		float64(block)/float64(parfor), float64(block)/float64(futures), float64(block)/float64(sc))
	if sum1 != sum2 || sum2 != sum3 || sum3 != sum4 {
		log.Fatalf("checksum mismatch: %v %v %v %v", sum1, sum2, sum3, sum4)
	}
	fmt.Printf("(all four strategies fetched identical data: checksum %.3f)\n", sum1)
}
