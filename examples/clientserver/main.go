// Client-server: the MPMD pattern the paper's introduction motivates and
// SPMD systems cannot express — different programs on different nodes,
// dynamic task creation, and communication at arbitrary points in time —
// written against the typed v2 API.
//
// Node 0 runs a client that *dynamically* creates Worker objects on the
// three server nodes (a real RMI to each node's system object), then farms
// out work with asynchronous typed RMIs, harvesting results through typed
// futures and a final reduction. The servers run no program: their polling
// threads service whatever arrives.
//
// Run with: go run ./examples/clientserver [-backend=sim|live]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/mpmd"
)

// Worker computes partial dot products server-side. RegisterClass derives
// its RMI interface from the methods below.
type Worker struct {
	done int64
}

// DotArgs is Dot's argument struct; each field marshals like the
// corresponding low-level Arg (two arrays of doubles).
type DotArgs struct {
	A, B []float64
}

// Dot computes sum(A[i]*B[i]) — a bulk-argument, threaded RMI.
func (w *Worker) Dot(t *mpmd.Thread, args DotArgs) float64 {
	s := 0.0
	for i := range args.A {
		s += args.A[i] * args.B[i]
	}
	t.ChargeFlops(2 * len(args.A))
	w.done++
	return s
}

// Stats reports how many tasks this worker handled.
func (w *Worker) Stats(t *mpmd.Thread) int64 { return w.done }

// RMIOptions marks Dot threaded (it may block in the scheduler and runs
// concurrently with other invocations at the server).
func (w *Worker) RMIOptions() map[string]mpmd.MethodOpts {
	return map[string]mpmd.MethodOpts{"Dot": {Threaded: true}}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func main() {
	backend := flag.String("backend", "sim", "execution backend: sim (calibrated virtual time) or live (real goroutines, wall-clock)")
	flag.Parse()

	const (
		servers = 3
		vecLen  = 240
		chunks  = 12
	)
	var m *mpmd.Machine
	switch *backend {
	case "sim":
		m = mpmd.NewMachine(mpmd.SPConfig(), servers+1)
	case "live":
		m = mpmd.NewLiveMachine(mpmd.SPConfig(), servers+1)
	default:
		log.Fatalf("unknown backend %q (want sim or live)", *backend)
	}
	rt := mpmd.NewRuntime(m)
	must(mpmd.RegisterClass[Worker](rt))

	rt.OnNode(0, func(t *mpmd.Thread) {
		// Dynamically create one worker per server node — remote object
		// creation is itself an RMI to the node's system object.
		workers := make([]mpmd.Ref[Worker], servers)
		for i := 0; i < servers; i++ {
			w, err := mpmd.NewObjectOn[Worker](t, rt, i+1)
			must(err)
			workers[i] = w
			fmt.Printf("client: created worker on node %d\n", w.NodeID())
		}

		// Build the input and farm out chunks round-robin with async RMIs —
		// all transfers in flight concurrently.
		a := make([]float64, vecLen)
		b := make([]float64, vecLen)
		for i := range a {
			a[i] = float64(i)
			b[i] = 1.0 / float64(i+1)
		}
		per := vecLen / chunks
		futures := make([]*mpmd.Future[float64], chunks)
		start := t.Now()
		for c := 0; c < chunks; c++ {
			w := workers[c%servers]
			lo, hi := c*per, (c+1)*per
			f, err := mpmd.InvokeAsync[DotArgs, float64](t, w, "Dot", DotArgs{A: a[lo:hi], B: b[lo:hi]})
			must(err)
			futures[c] = f
		}
		total := 0.0
		for c := 0; c < chunks; c++ {
			total += futures[c].Wait(t)
		}
		elapsed := t.Now() - start

		// Sanity: compare against the local dot product.
		want := 0.0
		for i := range a {
			want += a[i] * b[i]
		}
		fmt.Printf("client: distributed dot = %.6f (local %.6f) in %v\n", total, want, elapsed)

		for i, w := range workers {
			n, err := mpmd.Invoke[mpmd.Void, int64](t, w, "Stats", mpmd.Void{})
			must(err)
			fmt.Printf("client: server %d handled %d tasks\n", i+1, n)
		}
	})

	must(rt.Run())
}
