// Client-server: the MPMD pattern the paper's introduction motivates and
// SPMD systems cannot express — different programs on different nodes,
// dynamic task creation, and communication at arbitrary points in time.
//
// Node 0 runs a client that *dynamically* creates worker objects on the
// three server nodes (a real RMI to each node's system object), then farms
// out work with asynchronous RMIs, harvesting results through futures and a
// final reduction. The servers run no program: their polling threads service
// whatever arrives.
//
// Run with: go run ./examples/clientserver
package main

import (
	"fmt"
	"log"

	"repro/mpmd"
)

// Worker computes partial dot products server-side.
type Worker struct {
	done int64
}

func workerClass() *mpmd.Class {
	return &mpmd.Class{
		Name: "Worker",
		New:  func() any { return &Worker{} },
		Methods: []*mpmd.Method{
			{
				// dot(a, b) -> sum(a[i]*b[i]): a bulk-argument, threaded RMI.
				Name:     "dot",
				Threaded: true,
				NewArgs:  func() []mpmd.Arg { return []mpmd.Arg{&mpmd.F64Slice{}, &mpmd.F64Slice{}} },
				NewRet:   func() mpmd.Arg { return &mpmd.F64{} },
				Fn: func(t *mpmd.Thread, self any, args []mpmd.Arg, ret mpmd.Arg) {
					a := args[0].(*mpmd.F64Slice).V
					b := args[1].(*mpmd.F64Slice).V
					s := 0.0
					for i := range a {
						s += a[i] * b[i]
					}
					t.ChargeFlops(2 * len(a))
					ret.(*mpmd.F64).V = s
					self.(*Worker).done++
				},
			},
			{
				Name:   "stats",
				NewRet: func() mpmd.Arg { return &mpmd.I64{} },
				Fn: func(t *mpmd.Thread, self any, args []mpmd.Arg, ret mpmd.Arg) {
					ret.(*mpmd.I64).V = self.(*Worker).done
				},
			},
		},
	}
}

func main() {
	const (
		servers = 3
		vecLen  = 240
		chunks  = 12
	)
	m := mpmd.NewMachine(mpmd.SPConfig(), servers+1)
	rt := mpmd.NewRuntime(m)
	rt.RegisterClass(workerClass())

	rt.OnNode(0, func(t *mpmd.Thread) {
		// Dynamically create one worker per server node — remote object
		// creation is itself an RMI to the node's system object.
		workers := make([]mpmd.GPtr, servers)
		for i := 0; i < servers; i++ {
			workers[i] = rt.NewObjOn(t, i+1, "Worker")
			fmt.Printf("client: created worker on node %d\n", workers[i].NodeID())
		}

		// Build the input and farm out chunks round-robin with async RMIs —
		// all transfers in flight concurrently.
		a := make([]float64, vecLen)
		b := make([]float64, vecLen)
		for i := range a {
			a[i] = float64(i)
			b[i] = 1.0 / float64(i+1)
		}
		per := vecLen / chunks
		rets := make([]mpmd.F64, chunks)
		futures := make([]*mpmd.Future, chunks)
		start := t.Now()
		for c := 0; c < chunks; c++ {
			w := workers[c%servers]
			lo, hi := c*per, (c+1)*per
			futures[c] = rt.CallAsync(t, w, "dot", []mpmd.Arg{
				&mpmd.F64Slice{V: a[lo:hi]},
				&mpmd.F64Slice{V: b[lo:hi]},
			}, &rets[c])
		}
		total := 0.0
		for c := 0; c < chunks; c++ {
			futures[c].Wait(t)
			total += rets[c].V
		}
		elapsed := t.Now() - start

		// Sanity: compare against the local dot product.
		want := 0.0
		for i := range a {
			want += a[i] * b[i]
		}
		fmt.Printf("client: distributed dot = %.6f (local %.6f) in %v virtual\n", total, want, elapsed)

		for i, w := range workers {
			var n mpmd.I64
			rt.Call(t, w, "stats", nil, &n)
			fmt.Printf("client: server %d handled %d tasks\n", i+1, n.V)
		}
	})

	if err := rt.Run(); err != nil {
		log.Fatal(err)
	}
}
