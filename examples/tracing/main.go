// Tracing: watch where the microseconds of an RMI go.
//
// Runs a short CC++ exchange — a blocking RMI burst from node 0 to a worker
// object on node 1 — with the simulator's tracer attached, then prints the
// chronological event listing of the first round trip, per-node utilization
// strips, and the event summary. The listing makes the paper's §3 cost
// anatomy visible event by event: marshal, send, poll, spawn, dispatch,
// reply, complete.
//
// Run with: go run ./examples/tracing
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/trace"
	"repro/mpmd"
)

func main() {
	m := mpmd.NewMachine(mpmd.SPConfig(), 2)
	tl := trace.New(0)
	trace.Attach(m, tl)

	rt := mpmd.NewRuntime(m)
	rt.RegisterClass(&mpmd.Class{
		Name: "Worker",
		New:  func() any { return &struct{}{} },
		Methods: []*mpmd.Method{{
			Name:     "work",
			Threaded: true,
			NewArgs:  func() []mpmd.Arg { return []mpmd.Arg{&mpmd.I64{}} },
			Fn: func(t *mpmd.Thread, self any, args []mpmd.Arg, ret mpmd.Arg) {
				t.Compute(30 * time.Microsecond)
			},
		}},
	})
	gp := rt.CreateObject(1, "Worker")

	var end time.Duration
	rt.OnNode(0, func(t *mpmd.Thread) {
		for i := 0; i < 8; i++ {
			rt.Call(t, gp, "work", []mpmd.Arg{&mpmd.I64{V: int64(i)}}, nil)
		}
		end = time.Duration(t.Now())
	})
	if err := rt.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("first events of the run (cold RMI: name resolution, buffers, dispatch):")
	fmt.Print(tl.Listing(28))
	fmt.Println()
	fmt.Print(tl.Utilization(2, 0, end, 72))
	fmt.Println()
	fmt.Print(tl.Summary(2))
}
