// Tracing: watch where the microseconds of an RMI go.
//
// Runs a short CC++ exchange — a blocking RMI burst from node 0 to a Worker
// processor object on node 1 — with the machine's tracer attached, then
// prints the chronological event listing of the first round trip, per-node
// utilization strips, and the event summary. The listing makes the paper's
// §3 cost anatomy visible event by event: marshal, send, poll, spawn,
// dispatch, reply, complete.
//
// The Worker is an ordinary Go struct on the typed v2 API (RegisterClass
// derives the method table; RMIOptions flags Work threaded). On the default
// sim backend the timestamps are calibrated virtual microseconds; with
// -backend=live the identical program traces real goroutines against the
// wall clock.
//
// Run with: go run ./examples/tracing [-backend=sim|live]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/trace"
	"repro/mpmd"
)

// Worker burns a fixed slice of CPU per invocation, so the trace shows a
// clean compute phase between dispatch and reply.
type Worker struct{}

// Work is the traced RMI: one word of argument, 30 µs of modelled compute.
func (w *Worker) Work(t *mpmd.Thread, i int64) {
	t.Compute(30 * time.Microsecond)
}

// RMIOptions marks Work threaded — the paper's standard dispatch path,
// whose spawn event the listing shows.
func (w *Worker) RMIOptions() map[string]mpmd.MethodOpts {
	return map[string]mpmd.MethodOpts{"Work": {Threaded: true}}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func main() {
	backend := flag.String("backend", "sim", "execution backend: sim (calibrated virtual time) or live (real goroutines, wall-clock)")
	flag.Parse()

	var m *mpmd.Machine
	switch *backend {
	case "sim":
		m = mpmd.NewMachine(mpmd.SPConfig(), 2)
	case "live":
		m = mpmd.NewLiveMachine(mpmd.SPConfig(), 2)
	default:
		log.Fatalf("unknown backend %q (want sim or live)", *backend)
	}
	tl := trace.New(0)
	trace.Attach(m, tl)

	rt := mpmd.NewRuntime(m)
	must(mpmd.RegisterClass[Worker](rt))
	w, err := mpmd.NewObject[Worker](rt, 1)
	must(err)

	var end time.Duration
	rt.OnNode(0, func(t *mpmd.Thread) {
		for i := 0; i < 8; i++ {
			_, err := mpmd.Invoke[int64, mpmd.Void](t, w, "Work", int64(i))
			must(err)
		}
		end = time.Duration(t.Now())
	})
	must(rt.Run())

	fmt.Printf("first events of the run on the %s backend (cold RMI: name resolution, buffers, dispatch):\n", *backend)
	fmt.Print(tl.Listing(28))
	fmt.Println()
	fmt.Print(tl.Utilization(2, 0, end, 72))
	fmt.Println()
	fmt.Print(tl.Summary(2))
}
