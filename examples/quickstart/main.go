// Quickstart: a two-node MPMD program on the simulated IBM SP.
//
// Node 1 hosts a Counter processor object; node 0 invokes its methods
// through an opaque global pointer — null RMIs, RMIs with arguments, and an
// RMI with a return value — and prints the virtual-time cost of each, so the
// output can be compared directly with Table 4 of the paper.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/mpmd"
)

// Counter is an ordinary struct elevated to a processor object by
// registering a class for it — the library's stand-in for CC++'s `global`
// class extension.
type Counter struct{ n int64 }

func counterClass() *mpmd.Class {
	return &mpmd.Class{
		Name: "Counter",
		New:  func() any { return &Counter{} },
		Methods: []*mpmd.Method{
			{
				// A null method: the RMI round trip measured by the paper's
				// "0-Word" micro-benchmarks.
				Name: "nop",
				Fn:   func(t *mpmd.Thread, self any, args []mpmd.Arg, ret mpmd.Arg) {},
			},
			{
				Name:    "add",
				NewArgs: func() []mpmd.Arg { return []mpmd.Arg{&mpmd.I64{}} },
				Fn: func(t *mpmd.Thread, self any, args []mpmd.Arg, ret mpmd.Arg) {
					self.(*Counter).n += args[0].(*mpmd.I64).V
				},
			},
			{
				Name:   "get",
				NewRet: func() mpmd.Arg { return &mpmd.I64{} },
				Fn: func(t *mpmd.Thread, self any, args []mpmd.Arg, ret mpmd.Arg) {
					ret.(*mpmd.I64).V = self.(*Counter).n
				},
			},
		},
	}
}

func main() {
	m := mpmd.NewMachine(mpmd.SPConfig(), 2)
	rt := mpmd.NewRuntime(m)
	rt.RegisterClass(counterClass())

	// Place a Counter on node 1. Node 1 runs no program of its own — the
	// runtime's polling thread services incoming invocations, the MPMD
	// "server" configuration.
	gp := rt.CreateObject(1, "Counter")

	rt.OnNode(0, func(t *mpmd.Thread) {
		timeit := func(label string, fn func()) {
			start := t.Now()
			fn()
			fmt.Printf("  %-34s %8.1f µs\n", label,
				float64(time.Duration(t.Now()-start).Nanoseconds())/1000)
		}

		fmt.Println("quickstart: RMIs from node 0 to a Counter on node 1")
		timeit("cold null RMI (resolves stub)", func() { rt.Call(t, gp, "nop", nil, nil) })
		timeit("warm null RMI", func() { rt.Call(t, gp, "nop", nil, nil) })
		timeit("warm null RMI, spin sender", func() { rt.CallSimple(t, gp, "nop", nil, nil) })
		timeit("add(21) with one word argument", func() {
			rt.Call(t, gp, "add", []mpmd.Arg{&mpmd.I64{V: 21}}, nil)
		})
		timeit("add(21) again", func() {
			rt.Call(t, gp, "add", []mpmd.Arg{&mpmd.I64{V: 21}}, nil)
		})

		var ret mpmd.I64
		timeit("get() with return value", func() { rt.Call(t, gp, "get", nil, &ret) })
		fmt.Printf("  counter value: %d (want 42)\n", ret.V)

		hits, misses := rt.StubCacheStats()
		fmt.Printf("  stub cache: %d hits, %d misses\n", hits, misses)
	})

	if err := rt.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("virtual time elapsed: %v\n", m.Eng.Now())
}
