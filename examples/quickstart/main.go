// Quickstart: a two-node MPMD program on the typed v2 API.
//
// Node 1 hosts a Counter processor object; node 0 invokes its methods
// through a typed ref — null RMIs, RMIs with arguments, and an RMI with a
// return value — and prints the cost of each. On the default sim backend the
// times are virtual (calibrated to the paper's IBM SP; compare with Table 4);
// with -backend=live the identical program runs on real goroutines and the
// times are wall-clock.
//
// The Counter below is an ordinary Go struct: RegisterClass derives the
// processor-object class from its methods, so there are no Class/Method
// tables and no Arg type assertions — compare with the low-level version
// this file used before the typed API (git history), which needed both.
//
// Run with: go run ./examples/quickstart [-backend=sim|live]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/mpmd"
)

// Counter is elevated to a processor object by mpmd.RegisterClass[Counter]:
// every exported method taking a *mpmd.Thread first becomes RMI-callable.
type Counter struct{ n int64 }

// Nop is a null method: the RMI round trip measured by the paper's "0-Word"
// micro-benchmarks.
func (c *Counter) Nop(t *mpmd.Thread) {}

// Add takes one word of argument (the paper's "1-Word" shape).
func (c *Counter) Add(t *mpmd.Thread, n int64) { c.n += n }

// Get returns one word.
func (c *Counter) Get(t *mpmd.Thread) int64 { return c.n }

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func main() {
	backend := flag.String("backend", "sim", "execution backend: sim (calibrated virtual time) or live (real goroutines, wall-clock)")
	flag.Parse()

	var m *mpmd.Machine
	switch *backend {
	case "sim":
		m = mpmd.NewMachine(mpmd.SPConfig(), 2)
	case "live":
		m = mpmd.NewLiveMachine(mpmd.SPConfig(), 2)
	default:
		log.Fatalf("unknown backend %q (want sim or live)", *backend)
	}

	rt := mpmd.NewRuntime(m)
	must(mpmd.RegisterClass[Counter](rt))

	// Place a Counter on node 1. Node 1 runs no program of its own — the
	// runtime's polling thread services incoming invocations, the MPMD
	// "server" configuration.
	ctr, err := mpmd.NewObject[Counter](rt, 1)
	must(err)

	rt.OnNode(0, func(t *mpmd.Thread) {
		timeit := func(label string, fn func()) {
			start := t.Now()
			fn()
			fmt.Printf("  %-34s %8.1f µs\n", label,
				float64(time.Duration(t.Now()-start).Nanoseconds())/1000)
		}

		fmt.Printf("quickstart (%s backend): RMIs from node 0 to a Counter on node 1\n", *backend)
		timeit("cold null RMI (resolves stub)", func() {
			_, err := mpmd.Invoke[mpmd.Void, mpmd.Void](t, ctr, "Nop", mpmd.Void{})
			must(err)
		})
		timeit("warm null RMI", func() {
			_, err := mpmd.Invoke[mpmd.Void, mpmd.Void](t, ctr, "Nop", mpmd.Void{})
			must(err)
		})
		// The spin-sender variant lives on the documented low-level layer;
		// typed refs drop down to it through GPtr().
		timeit("warm null RMI, spin sender", func() { rt.CallSimple(t, ctr.GPtr(), "Nop", nil, nil) })
		timeit("add(21) with one word argument", func() {
			_, err := mpmd.Invoke[int64, mpmd.Void](t, ctr, "Add", 21)
			must(err)
		})
		timeit("add(21) again", func() {
			_, err := mpmd.Invoke[int64, mpmd.Void](t, ctr, "Add", 21)
			must(err)
		})

		var v int64
		timeit("get() with return value", func() {
			var err error
			v, err = mpmd.Invoke[mpmd.Void, int64](t, ctr, "Get", mpmd.Void{})
			must(err)
		})
		fmt.Printf("  counter value: %d (want 42)\n", v)

		hits, misses := rt.StubCacheStats()
		fmt.Printf("  stub cache: %d hits, %d misses\n", hits, misses)
	})

	must(rt.Run())
	if m.Eng != nil {
		fmt.Printf("virtual time elapsed: %v\n", m.Eng.Now())
	}
}
