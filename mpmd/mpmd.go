// Package mpmd is the public API of the MPMD-communication study
// reproduction (Chang, Czajkowski, von Eicken, Kesselman: "Evaluating the
// Performance Limitations of MPMD Communication", SC 1997).
//
// # Typed API (v2) — the recommended surface
//
// A processor object is an ordinary Go struct; RegisterClass derives its
// remotely invocable interface from methods whose first parameter is a
// *Thread, and Invoke/InvokeAsync/InvokeOneWay make compile-time-checked
// RMIs through typed Refs:
//
//	type Counter struct{ n int64 }
//
//	func (c *Counter) Add(t *mpmd.Thread, n int64) { c.n += n }
//	func (c *Counter) Get(t *mpmd.Thread) int64    { return c.n }
//
//	m := mpmd.NewMachine(mpmd.SPConfig(), 2)   // or NewLiveMachine
//	rt := mpmd.NewRuntime(m)
//	if err := mpmd.RegisterClass[Counter](rt); err != nil { ... }
//	ctr, err := mpmd.NewObject[Counter](rt, 1) // typed ref to node 1's object
//	rt.OnNode(0, func(t *mpmd.Thread) {
//		mpmd.Invoke[int64, mpmd.Void](t, ctr, "Add", 21)
//		v, _ := mpmd.Invoke[mpmd.Void, int64](t, ctr, "Get", mpmd.Void{})
//		_ = v
//	})
//	if err := rt.Run(); err != nil { ... }
//
// Argument and return types are int, int64, float64, string, []byte,
// []float64, or structs of those; the optional RMIOptions method flags
// methods Threaded or Atomic. Misuse — unregistered types, unknown
// methods, type mismatches, invoking outside a running program — returns
// descriptive errors at bind time. The typed layer lowers onto the untyped
// wire path with zero added modelled cost (see typed.go and the parity
// test), so the paper's calibrated numbers are identical on either surface.
//
// # Teams, collectives, and distributed arrays
//
// The data-parallel surface (team.go, dist.go) scopes group operations to a
// Team — a communicator over a node subset. WorldTeam returns the all-nodes
// team; Team.Split partitions it MPI-style. The typed collectives
// Broadcast, Reduce/AllReduce (Sum/Max/Min or any user combiner),
// Scatter/Gather/AllGather, and Team.Barrier run log-depth
// binomial/dissemination trees whose every message is an ordinary RMI with
// the full modelled cost. Dist[T] is a typed distributed array (block or
// cyclic layout) with Get/Put, split-phase GetAsync/PutAsync returning
// typed Future[T] handles, and ForEachLocal for owner-computes loops — the
// generalization of Split-C's float64-only spread arrays, usable from CC++
// programs on either backend.
//
// # Low-level (untyped) API
//
// The 1997-shaped layer the typed façade compiles down to remains exported
// for benchmarks, ablations, and code that needs explicit control of the
// wire format: hand-written Class/Method tables with NewArgs/NewRet
// factories, opaque GPtrs, []Arg marshalling, and Runtime.Call and
// friends. Ref.GPtr() bridges from typed refs down to it.
//
// # Everything else
//
// The package also re-exports the stable surface of the internal packages:
//
//   - a deterministic simulated multicomputer calibrated to the paper's
//     IBM RS/6000 SP measurements (NewMachine, SPConfig), plus pluggable
//     execution backends: the same machine, runtimes, and programs run on
//     real goroutines with wall-clock timing via NewLiveMachine, or sharded
//     across OS processes connected by sockets via NewNetMachine (see the
//     transport packages);
//   - the paper's contribution, a lean CC++ runtime over Active Messages
//     ("CC++/ThAM"): processor objects, remote method invocation with stub
//     caching and persistent buffers, global pointers, par/parfor, sync
//     variables (NewRuntime and the CC* aliases);
//   - the Split-C SPMD baseline runtime (NewSplitC; the SC* spread-array
//     and reduction aliases are deprecated in favor of Dist and the typed
//     collectives, but remain the measured baseline surface);
//   - the Nexus/TCP transport used for the paper's §6 comparison
//     (NewNexusTransport);
//   - the experiment harness regenerating every table and figure
//     (the Run*/Format* re-exports).
//
// See examples/ for runnable programs and DESIGN.md for the system map.
package mpmd

import (
	"io"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/nexus"
	"repro/internal/splitc"
	"repro/internal/threads"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/transport/live"
)

// --- machine model -----------------------------------------------------------

// Machine is the simulated multicomputer.
type Machine = machine.Machine

// Config holds the machine's primitive costs.
type Config = machine.Config

// Category labels a time-breakdown bucket (net/cpu/thread-mgmt/thread-sync/
// runtime).
type Category = machine.Category

// Breakdown categories, mirroring the bars of the paper's Figures 5 and 6.
const (
	CatCPU        = machine.CatCPU
	CatNet        = machine.CatNet
	CatThreadMgmt = machine.CatThreadMgmt
	CatThreadSync = machine.CatThreadSync
	CatRuntime    = machine.CatRuntime
)

// SPConfig returns the calibrated IBM SP (AIX 3.2.5) cost profile the paper
// measured on.
func SPConfig() Config { return machine.SP1997() }

// NewMachine builds a simulated multicomputer with n nodes.
func NewMachine(cfg Config, n int) *Machine { return machine.New(cfg, n) }

// --- execution backends ------------------------------------------------------

// Backend is the execution substrate a Machine runs on: the calibrated
// discrete-event simulator (the NewMachine default) or real goroutines with
// wall-clock timing (NewLiveMachine). Both run the identical runtime stack.
type Backend = transport.Backend

// LiveOptions tunes the live backend (OS-thread pinning, run watchdog,
// delivery batching); the zero value is ready to use.
type LiveOptions = live.Options

// NewLiveBackend builds a real-concurrency backend for n nodes.
func NewLiveBackend(n int, opts LiveOptions) Backend { return live.New(n, opts) }

// NewLiveMachine builds a multicomputer whose nodes are real goroutines:
// the cost model's latencies are ignored, programs run as fast as the
// hardware allows, and clocks read wall time.
func NewLiveMachine(cfg Config, n int) *Machine {
	return NewMachineWithBackend(cfg, n, live.New(n, LiveOptions{}))
}

// NewMachineWithBackend builds a multicomputer over an explicit backend.
func NewMachineWithBackend(cfg Config, n int, be Backend) *Machine {
	return machine.NewWithBackend(cfg, n, be)
}

// --- threads ------------------------------------------------------------------

// Thread is a cooperative thread on a simulated node; every runtime entry
// point takes the calling thread.
type Thread = threads.Thread

// Mutex, Cond, SyncVar and WaitGroup are the thread-synchronization objects
// of the simulated non-preemptive threads package.
type (
	Mutex     = threads.Mutex
	Cond      = threads.Cond
	SyncVar   = threads.SyncVar
	WaitGroup = threads.WaitGroup
)

// --- CC++ runtime (the paper's contribution) -----------------------------------

// Runtime is the CC++/ThAM runtime.
type Runtime = core.Runtime

// Options configure a Runtime (ablation switches, transport override).
type Options = core.Options

// Class describes a processor-object class; Method one invocable method.
// These are the low-level registration tables; application code normally
// uses RegisterClass[T] (typed.go), which derives them.
type (
	Class  = core.Class
	Method = core.Method
)

// GPtr is an opaque global pointer to a processor object (the low-level
// form of Ref[T]); GPF64 a global pointer to a double with the optimized
// small-message access path.
type (
	GPtr  = core.GPtr
	GPF64 = core.GPF64
)

// Arg is a marshallable RMI argument; F64, I64, F64Slice, Bytes and Str are
// the provided implementations.
type (
	Arg      = core.Arg
	F64      = core.F64
	I64      = core.I64
	F64Slice = core.F64Slice
	Bytes    = core.Bytes
	Str      = core.Str
)

// UntypedFuture joins an asynchronous low-level RMI (Runtime.CallAsync);
// the typed surface returns Future[R] instead. Barrier is RMI-built global
// synchronization over a central counter; Team.Barrier is the log-depth
// alternative.
type (
	UntypedFuture = core.Future
	Barrier       = core.Barrier
)

// Transport abstracts the message layer under the CC++ runtime.
type Transport = core.Transport

// NewRuntime builds a CC++/ThAM runtime over m.
func NewRuntime(m *Machine) *Runtime { return core.NewRuntime(m) }

// NewRuntimeOpts builds a CC++ runtime with explicit options.
func NewRuntimeOpts(m *Machine, opts Options) *Runtime { return core.NewRuntimeOpts(m, opts) }

// NewNexusTransport builds the Nexus/TCP message layer of the original CC++
// implementation; pass it in Options.Transport for the §6 comparison.
func NewNexusTransport(m *Machine) Transport { return nexus.New(m) }

// NewGPF64 builds a global pointer to a double owned by the given node.
func NewGPF64(node int, ptr *float64) GPF64 { return core.NewGPF64(node, ptr) }

// Par runs blocks concurrently and joins (CC++ par).
func Par(t *Thread, blocks ...func(*Thread)) { core.Par(t, blocks...) }

// ParFor runs n iterations concurrently, one thread each (CC++ parfor).
func ParFor(t *Thread, n int, body func(*Thread, int)) { core.ParFor(t, n, body) }

// Spawn launches fn without joining (CC++ spawn), returning a completion
// sync variable.
func Spawn(t *Thread, name string, fn func(*Thread)) *SyncVar { return core.Spawn(t, name, fn) }

// --- Split-C baseline -----------------------------------------------------------

// SplitCWorld is an SPMD program instance; SplitCProc the per-node context.
type (
	SplitCWorld = splitc.World
	SplitCProc  = splitc.Proc
)

// SCPtr is a Split-C global pointer to a double; SCVec to a vector.
type (
	SCPtr = splitc.GPF
	SCVec = splitc.GVF
)

// SCSpread is a Split-C spread array of doubles (cyclic layout).
//
// Deprecated: new code should use the typed, layout-flexible Dist[T]
// (NewDist), which works from CC++ programs and on both backends. SCSpread
// remains for the calibrated Split-C baseline measurements.
type SCSpread = splitc.SpreadF64

// SCReduceOp selects the Split-C AllReduce combiner.
//
// Deprecated: new code should use the typed AllReduce with Sum/Max/Min (or
// any combiner) over a Team, which runs log-depth trees instead of the
// central O(n) plan. SCReduceOp remains for the calibrated baseline.
type SCReduceOp = splitc.ReduceOp

// Split-C reduction operators.
//
// Deprecated: use Sum, Max, and Min with the typed AllReduce/Reduce.
const (
	SCOpSum = splitc.OpSum
	SCOpMax = splitc.OpMax
	SCOpMin = splitc.OpMin
)

// NewSCSpread allocates a spread array of n doubles over procs processors.
//
// Deprecated: use NewDist[float64] with LayoutCyclic for the same layout
// with typed elements, async accessors, and team scoping. NewSCSpread
// remains for the calibrated Split-C baseline measurements.
func NewSCSpread(procs, n int) *SCSpread { return splitc.NewSpreadF64(procs, n) }

// NewSplitC builds a Split-C world over m.
func NewSplitC(m *Machine) *SplitCWorld { return splitc.New(m) }

// --- tracing ---------------------------------------------------------------------

// TraceLog records simulation timelines (sends, receives, spawns, switches,
// charges) for the renderers in the trace package.
type TraceLog = trace.Log

// NewTraceLog creates an event log holding at most limit events (0 = default).
func NewTraceLog(limit int) *TraceLog { return trace.New(limit) }

// AttachTrace installs the log as m's tracer; call before running.
func AttachTrace(m *Machine, l *TraceLog) { trace.Attach(m, l) }

// WriteTrace renders the log as Chrome trace-event JSON, loadable in Perfetto
// (ui.perfetto.dev) or chrome://tracing; returns the number of events written.
func WriteTrace(w io.Writer, l *TraceLog) (int, error) { return trace.WritePerfetto(w, l) }

// --- observability ---------------------------------------------------------------

// AcctSnapshot is a point-in-time copy of one scope's accounting: charged
// time per category plus the event counters. Since Machine is an alias,
// Machine.LocalStats, Machine.ClusterStats, Machine.Metrics and
// Machine.RequestStats are the public stats surface.
type AcctSnapshot = machine.Snapshot

// MergeAcct sums accounting snapshots, e.g. per-node into machine-wide.
func MergeAcct(snaps ...AcctSnapshot) AcctSnapshot { return machine.MergeSnapshots(snaps...) }

// ShardStats is one address space's contribution to the machine-wide stats
// report — on the net backend, the payload workers ship to the parent at
// quiesce.
type ShardStats = machine.ShardStats

// ClusterStats is the machine-wide stats report: every shard's contribution
// plus the merged totals (Machine.ClusterStats assembles it on the parent).
type ClusterStats = machine.ClusterStats

// MetricsSnapshot is a merged view of the wall-clock metrics registries:
// message-plane counters, queue-depth gauges, and log-bucketed latency
// histograms with p50/p99/p999. Live backends only; the simulator has no
// wall-clock story.
type MetricsSnapshot = metrics.Snapshot

// Accounting counter indices into AcctSnapshot.Counters, for asserting on
// merged totals without string matching.
const (
	CntMsgShort    = machine.CntMsgShort
	CntMsgBulk     = machine.CntMsgBulk
	CntHandlersRun = machine.CntHandlersRun
	CntRMI         = machine.CntRMI
)

// --- experiment harness ----------------------------------------------------------

// Scale sizes the experiments; FullScale is the paper's configuration and
// QuickScale a CI-sized one.
type Scale = bench.Scale

// FullScale returns the paper's experiment sizes.
func FullScale() Scale { return bench.Full() }

// QuickScale returns reduced experiment sizes.
func QuickScale() Scale { return bench.Quick() }

// LiveMicroRow is one row of the live-backend microbenchmark table.
type LiveMicroRow = bench.LiveRow

// RunLiveMicro measures RMI round-trips, bulk bandwidth, and barriers on the
// live backend (wall-clock, machine-dependent).
func RunLiveMicro(sc Scale) []LiveMicroRow { return bench.RunLiveMicro(bench.Cfg(), sc) }

// FormatLiveMicro renders the live-backend microbenchmark table.
func FormatLiveMicro(rows []LiveMicroRow) string { return bench.FormatLiveMicro(rows) }
