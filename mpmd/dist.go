package mpmd

import (
	"fmt"

	"repro/internal/coll"
	"repro/internal/rmigen"
)

// Dist is a typed distributed array over a team: the generalization of
// Split-C's spread arrays (splitc.SpreadF64) beyond float64 and beyond the
// SPMD runtime — usable from CC++/typed-v2 programs on either backend, with
// a choice of layout. Elements live in per-member local parts; remote
// accesses are RMIs to the owner's collective mailbox object, so they pay
// the ordinary modelled RMI costs, and split-phase accessors return typed
// futures.

// Layout selects how Dist elements map to team ranks.
type Layout int

const (
	// LayoutBlock gives rank r the contiguous elements
	// [r*ceil(n/p), (r+1)*ceil(n/p)).
	LayoutBlock Layout = iota
	// LayoutCyclic gives rank r elements r, r+p, r+2p, … — Split-C's spread
	// layout.
	LayoutCyclic
)

// String names the layout.
func (l Layout) String() string {
	switch l {
	case LayoutBlock:
		return "block"
	case LayoutCyclic:
		return "cyclic"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// Dist is a typed distributed array of n elements of T spread over a team.
// Create it at setup time with NewDist; access it from member threads once
// the program runs.
type Dist[T any] struct {
	tm     *Team
	id     string
	n      int
	layout Layout
	codec  *rmigen.Codec
	parts  [][]T
}

// NewDist allocates a distributed array of n elements of T over the team's
// nodes in the given layout. Setup-time only (like NewObject): it installs
// the owner-side accessors into every member node's mailbox object. T must
// be a marshallable RMI value type.
func NewDist[T any](tm *Team, n int, layout Layout) (*Dist[T], error) {
	if tm == nil || tm.tm == nil {
		return nil, fmt.Errorf("NewDist on a nil Team")
	}
	c := tm.tm.Comm()
	if c.Runtime().Started() {
		return nil, fmt.Errorf("NewDist after Run has started: distributed arrays are placed at setup time")
	}
	if n < 0 {
		return nil, fmt.Errorf("NewDist: negative length %d", n)
	}
	if layout != LayoutBlock && layout != LayoutCyclic {
		return nil, fmt.Errorf("NewDist: unknown layout %v", layout)
	}
	codec, err := codecOf[T]("NewDist")
	if err != nil {
		return nil, err
	}
	d := &Dist[T]{tm: tm, id: c.NextDistID(), n: n, layout: layout, codec: codec}
	p := tm.Size()
	d.parts = make([][]T, p)
	for r := 0; r < p; r++ {
		d.parts[r] = make([]T, d.partLen(r))
		part := d.parts[r]
		c.InstallDist(tm.Node(r), d.id, coll.DistHooks{
			Get: func(off int) []byte { return encode(d.codec, part[off]) },
			Put: func(off int, b []byte) { part[off] = decode[T](d.codec, b) },
		})
	}
	return d, nil
}

// Len returns the global element count.
func (d *Dist[T]) Len() int { return d.n }

// Team returns the team the array is spread over.
func (d *Dist[T]) Team() *Team { return d.tm }

// Layout returns the element-to-rank mapping.
func (d *Dist[T]) Layout() Layout { return d.layout }

// blockSize returns the per-rank block length of the block layout.
func (d *Dist[T]) blockSize() int {
	p := d.tm.Size()
	return (d.n + p - 1) / p
}

// owner maps a global index to (owning rank, owner-local offset).
func (d *Dist[T]) owner(i int) (rank, off int) {
	if d.layout == LayoutCyclic {
		p := d.tm.Size()
		return i % p, i / p
	}
	b := d.blockSize()
	return i / b, i % b
}

// partLen returns how many elements rank r owns.
func (d *Dist[T]) partLen(r int) int {
	p := d.tm.Size()
	if d.layout == LayoutCyclic {
		if d.n <= r {
			return 0
		}
		return (d.n - r + p - 1) / p
	}
	b := d.blockSize()
	sz := d.n - r*b
	if sz < 0 {
		return 0
	}
	if sz > b {
		return b
	}
	return sz
}

// globalIndex maps (rank, owner-local offset) back to the global index.
func (d *Dist[T]) globalIndex(r, off int) int {
	if d.layout == LayoutCyclic {
		return r + off*d.tm.Size()
	}
	return r*d.blockSize() + off
}

// OwnerRank returns the team rank owning global index i.
func (d *Dist[T]) OwnerRank(i int) int { r, _ := d.owner(i); return r }

// OwnerNode returns the node ID owning global index i.
func (d *Dist[T]) OwnerNode(i int) int { return d.tm.Node(d.OwnerRank(i)) }

// check validates one access: member thread, running program, index range.
func (d *Dist[T]) check(t *Thread, op string, i int) (rank, off int, local bool, err error) {
	if d == nil {
		return 0, 0, false, fmt.Errorf("%s on a nil Dist", op)
	}
	if _, err := d.tm.check(t, op); err != nil {
		return 0, 0, false, err
	}
	if i < 0 || i >= d.n {
		return 0, 0, false, fmt.Errorf("%s: index %d out of range [0,%d)", op, i, d.n)
	}
	rank, off = d.owner(i)
	return rank, off, d.tm.Node(rank) == t.Node().ID, nil
}

// Get reads element i: a direct dereference when the caller owns it, a
// synchronous RMI to the owner otherwise.
func (d *Dist[T]) Get(t *Thread, i int) (T, error) {
	rank, off, local, err := d.check(t, "Dist.Get", i)
	if err != nil {
		var zero T
		return zero, err
	}
	if local {
		coll.LocalDeref(t)
		return d.parts[rank][off], nil
	}
	c := d.tm.tm.Comm()
	return decode[T](d.codec, c.DistGet(t, d.tm.Node(rank), d.id, off)), nil
}

// Put writes element i, returning once the owner has applied it.
func (d *Dist[T]) Put(t *Thread, i int, v T) error {
	rank, off, local, err := d.check(t, "Dist.Put", i)
	if err != nil {
		return err
	}
	if local {
		coll.LocalDeref(t)
		d.parts[rank][off] = v
		return nil
	}
	d.tm.tm.Comm().DistPut(t, d.tm.Node(rank), d.id, off, encode(d.codec, v))
	return nil
}

// GetAsync starts a split-phase read of element i; the returned future
// yields the typed value (Split-C's get, with a typed handle instead of a
// sync counter).
func (d *Dist[T]) GetAsync(t *Thread, i int) (*Future[T], error) {
	rank, off, _, err := d.check(t, "Dist.GetAsync", i)
	if err != nil {
		return nil, err
	}
	f, ret := d.tm.tm.Comm().DistGetAsync(t, d.tm.Node(rank), d.id, off)
	return &Future[T]{f: f, load: func() T { return decode[T](d.codec, ret.V) }}, nil
}

// PutAsync starts a split-phase write of element i; the returned future
// completes when the owner's acknowledgement lands.
func (d *Dist[T]) PutAsync(t *Thread, i int, v T) (*Future[Void], error) {
	rank, off, _, err := d.check(t, "Dist.PutAsync", i)
	if err != nil {
		return nil, err
	}
	f := d.tm.tm.Comm().DistPutAsync(t, d.tm.Node(rank), d.id, off, encode(d.codec, v))
	return &Future[Void]{f: f}, nil
}

// Local returns the calling member's own part (indexed by owner-local
// offset; see ForEachLocal for global indices). The slice is live storage.
func (d *Dist[T]) Local(t *Thread) ([]T, error) {
	if d == nil {
		return nil, fmt.Errorf("Dist.Local on a nil Dist")
	}
	r, err := d.tm.check(t, "Dist.Local")
	if err != nil {
		return nil, err
	}
	return d.parts[r], nil
}

// ForEachLocal visits every element the calling member owns, in global
// index order, passing a live pointer — the owner-computes idiom
// (Split-C's &A[MYPROC] loops) for any layout.
func (d *Dist[T]) ForEachLocal(t *Thread, fn func(i int, v *T)) error {
	if d == nil {
		return fmt.Errorf("Dist.ForEachLocal on a nil Dist")
	}
	r, err := d.tm.check(t, "Dist.ForEachLocal")
	if err != nil {
		return err
	}
	part := d.parts[r]
	for off := range part {
		fn(d.globalIndex(r, off), &part[off])
	}
	return nil
}
