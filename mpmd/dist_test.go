package mpmd_test

import (
	"testing"

	"repro/mpmd"
)

// TestDistRoundTrip writes and reads a typed distributed array through
// every access path (local/remote, sync/async) in both layouts, on both
// backends.
func TestDistRoundTrip(t *testing.T) {
	type cell struct {
		V    float64
		Tag  string
		Hits int64
	}
	onBackends(t, func(t *testing.T, live bool) {
		for _, layout := range []mpmd.Layout{mpmd.LayoutBlock, mpmd.LayoutCyclic} {
			const n, elems = 4, 11
			m := teamMachine(n, live)
			rt := mpmd.NewRuntime(m)
			tm, err := mpmd.WorldTeam(rt)
			if err != nil {
				t.Fatal(err)
			}
			d, err := mpmd.NewDist[cell](tm, elems, layout)
			if err != nil {
				t.Fatal(err)
			}
			if d.Len() != elems {
				t.Fatalf("Len = %d", d.Len())
			}
			for i := 0; i < n; i++ {
				i := i
				rt.OnNode(i, func(th *mpmd.Thread) {
					check := func(err error) {
						if err != nil {
							t.Error(err)
						}
					}
					// Each member writes the elements owned by its right
					// neighbour (every element has exactly one writer).
					next := (tm.Rank(th) + 1) % n
					for e := 0; e < elems; e++ {
						if d.OwnerRank(e) == next {
							check(d.Put(th, e, cell{V: float64(e) * 2, Tag: "w", Hits: int64(i)}))
						}
					}
					check(tm.Barrier(th))
					// Everyone reads every element back synchronously…
					for e := 0; e < elems; e++ {
						got, err := d.Get(th, e)
						check(err)
						if got.V != float64(e)*2 || got.Tag != "w" {
							t.Errorf("layout %v member %d: element %d = %+v", layout, i, e, got)
						}
					}
					// …then split-phase, all gets in flight at once.
					futs := make([]*mpmd.Future[cell], elems)
					for e := 0; e < elems; e++ {
						f, err := d.GetAsync(th, e)
						check(err)
						futs[e] = f
					}
					for e, f := range futs {
						if got := f.Wait(th); got.V != float64(e)*2 {
							t.Errorf("layout %v member %d: async element %d = %+v", layout, i, e, got)
						}
					}
					check(tm.Barrier(th))
					// Split-phase writes with typed ack futures.
					var acks []*mpmd.Future[mpmd.Void]
					for e := 0; e < elems; e++ {
						if d.OwnerRank(e) == next {
							f, err := d.PutAsync(th, e, cell{V: -float64(e), Tag: "x"})
							check(err)
							acks = append(acks, f)
						}
					}
					for _, f := range acks {
						f.Wait(th)
					}
					check(tm.Barrier(th))
					// Owner-computes over the local part, checking the global
					// index mapping.
					check(d.ForEachLocal(th, func(e int, v *cell) {
						if d.OwnerNode(e) != th.Node().ID {
							t.Errorf("ForEachLocal visited foreign element %d", e)
						}
						if v.V != -float64(e) || v.Tag != "x" {
							t.Errorf("layout %v element %d after async writes: %+v", layout, e, *v)
						}
						v.Hits++
					}))
					check(tm.Barrier(th))
					// The Hits bump must be visible globally, exactly once.
					for e := 0; e < elems; e++ {
						got, err := d.Get(th, e)
						check(err)
						if got.Hits != 1 {
							t.Errorf("layout %v element %d hits = %d, want 1", layout, e, got.Hits)
						}
					}
				})
			}
			if err := rt.Run(); err != nil {
				t.Fatal(err)
			}
		}
	})
}

// TestDistLayouts checks the index maps directly: coverage, ownership, and
// local part sizes for awkward (non-dividing) lengths.
func TestDistLayouts(t *testing.T) {
	m := mpmd.NewMachine(mpmd.SPConfig(), 3)
	rt := mpmd.NewRuntime(m)
	tm, err := mpmd.WorldTeam(rt)
	if err != nil {
		t.Fatal(err)
	}
	dBlock, err := mpmd.NewDist[int64](tm, 8, mpmd.LayoutBlock)
	if err != nil {
		t.Fatal(err)
	}
	dCyc, err := mpmd.NewDist[int64](tm, 8, mpmd.LayoutCyclic)
	if err != nil {
		t.Fatal(err)
	}
	// Block of 8 over 3: ceil(8/3)=3 -> ranks own [0,3) [3,6) [6,8).
	wantBlock := []int{0, 0, 0, 1, 1, 1, 2, 2}
	// Cyclic: i%3.
	for i := 0; i < 8; i++ {
		if got := dBlock.OwnerRank(i); got != wantBlock[i] {
			t.Errorf("block owner(%d) = %d, want %d", i, got, wantBlock[i])
		}
		if got := dCyc.OwnerRank(i); got != i%3 {
			t.Errorf("cyclic owner(%d) = %d, want %d", i, got, i%3)
		}
	}
	seen := map[int]int{}
	for i := 0; i < 3; i++ {
		i := i
		rt.OnNode(i, func(th *mpmd.Thread) {
			_ = dBlock.ForEachLocal(th, func(e int, v *int64) { seen[e]++ })
			_ = dCyc.ForEachLocal(th, func(e int, v *int64) { seen[e]++ })
		})
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if seen[i] != 2 {
			t.Errorf("element %d visited %d times across members, want 2 (once per array)", i, seen[i])
		}
	}
}

// TestDistMisuse: creation and access error paths.
func TestDistMisuse(t *testing.T) {
	m := mpmd.NewMachine(mpmd.SPConfig(), 2)
	rt := mpmd.NewRuntime(m)
	tm, err := mpmd.WorldTeam(rt)
	if err != nil {
		t.Fatal(err)
	}
	type bad struct{ F func() }
	if _, err := mpmd.NewDist[bad](tm, 4, mpmd.LayoutBlock); err == nil {
		t.Error("NewDist of unmarshallable type did not error")
	}
	if _, err := mpmd.NewDist[int64](nil, 4, mpmd.LayoutBlock); err == nil {
		t.Error("NewDist on nil team did not error")
	}
	if _, err := mpmd.NewDist[int64](tm, 4, mpmd.Layout(9)); err == nil {
		t.Error("NewDist with bogus layout did not error")
	}
	d, err := mpmd.NewDist[int64](tm, 4, mpmd.LayoutBlock)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get(nil, 0); err == nil {
		t.Error("Get outside a running program did not error")
	}
	rt.OnNode(0, func(th *mpmd.Thread) {
		if _, err := d.Get(th, 4); err == nil {
			t.Error("Get out of range did not error")
		}
		if err := d.Put(th, -1, 0); err == nil {
			t.Error("Put out of range did not error")
		}
		if _, err := mpmd.NewDist[int64](tm, 4, mpmd.LayoutBlock); err == nil {
			t.Error("NewDist after Run started did not error")
		}
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
}
