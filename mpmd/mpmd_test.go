package mpmd_test

import (
	"testing"
	"time"

	"repro/mpmd"
)

// ping is a processor-object class defined purely through the public API.
type ping struct{ hits int64 }

func pingClass() *mpmd.Class {
	return &mpmd.Class{
		Name: "Ping",
		New:  func() any { return &ping{} },
		Methods: []*mpmd.Method{
			{
				Name: "hit",
				Fn: func(t *mpmd.Thread, self any, args []mpmd.Arg, ret mpmd.Arg) {
					self.(*ping).hits++
				},
			},
			{
				Name:   "hits",
				NewRet: func() mpmd.Arg { return &mpmd.I64{} },
				Fn: func(t *mpmd.Thread, self any, args []mpmd.Arg, ret mpmd.Arg) {
					ret.(*mpmd.I64).V = self.(*ping).hits
				},
			},
		},
	}
}

func TestPublicAPIEndToEnd(t *testing.T) {
	m := mpmd.NewMachine(mpmd.SPConfig(), 3)
	rt := mpmd.NewRuntime(m)
	rt.RegisterClass(pingClass())
	gp := rt.CreateObject(2, "Ping")
	bar := rt.NewBarrier(0, 2)

	var got int64
	for node := 0; node < 2; node++ {
		node := node
		rt.OnNode(node, func(th *mpmd.Thread) {
			for i := 0; i < 5; i++ {
				rt.Call(th, gp, "hit", nil, nil)
			}
			bar.Arrive(th)
			if node == 0 {
				var ret mpmd.I64
				rt.Call(th, gp, "hits", nil, &ret)
				got = ret.V
			}
		})
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Fatalf("hits = %d, want 10", got)
	}
}

func TestPublicAPISplitC(t *testing.T) {
	m := mpmd.NewMachine(mpmd.SPConfig(), 2)
	w := mpmd.NewSplitC(m)
	x := 1.5
	var got float64
	err := w.Run(func(p *mpmd.SplitCProc) {
		if p.MyPC() == 0 {
			got = p.Read(mpmd.SCPtr{PC: 1, P: &x})
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1.5 {
		t.Fatalf("read %v", got)
	}
}

func TestPublicAPINexusTransport(t *testing.T) {
	m := mpmd.NewMachine(mpmd.SPConfig(), 2)
	rt := mpmd.NewRuntimeOpts(m, mpmd.Options{Transport: mpmd.NewNexusTransport(m)})
	rt.RegisterClass(pingClass())
	gp := rt.CreateObject(1, "Ping")
	var elapsed time.Duration
	rt.OnNode(0, func(th *mpmd.Thread) {
		start := th.Now()
		rt.Call(th, gp, "hit", nil, nil)
		elapsed = time.Duration(th.Now() - start)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed < 500*time.Microsecond {
		t.Fatalf("Nexus RMI took only %v; surcharges missing", elapsed)
	}
}

func TestPublicAPIParForAndGPF64(t *testing.T) {
	m := mpmd.NewMachine(mpmd.SPConfig(), 2)
	rt := mpmd.NewRuntime(m)
	rt.RegisterClass(pingClass())
	remote := []float64{1, 2, 3, 4}
	local := make([]float64, 4)
	rt.OnNode(0, func(th *mpmd.Thread) {
		mpmd.ParFor(th, 4, func(t2 *mpmd.Thread, i int) {
			local[i] = rt.ReadF64(t2, mpmd.NewGPF64(1, &remote[i]))
		})
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range local {
		if local[i] != remote[i] {
			t.Fatalf("local[%d] = %v", i, local[i])
		}
	}
}

func TestScalesDiffer(t *testing.T) {
	full, quick := mpmd.FullScale(), mpmd.QuickScale()
	if full.LUN <= quick.LUN || full.EM3DNodes <= quick.EM3DNodes {
		t.Fatal("full scale not larger than quick scale")
	}
	if full.LUN != 512 || full.LUB != 16 || full.EM3DNodes != 800 {
		t.Fatalf("full scale drifted from the paper: %+v", full)
	}
}
