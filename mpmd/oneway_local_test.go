package mpmd_test

import (
	"testing"

	"repro/mpmd"
)

// onewayAccum is a processor object whose Deposit is Threaded: a node-local
// one-way invocation only spawns the body, which reads its wire arguments
// after InvokeOneWay has returned.
type onewayAccum struct {
	got []int64
}

func (a *onewayAccum) Deposit(t *mpmd.Thread, v int64) { a.got = append(a.got, v) }

func (a *onewayAccum) RMIOptions() map[string]mpmd.MethodOpts {
	return map[string]mpmd.MethodOpts{"Deposit": {Threaded: true}}
}

// TestLocalOneWayThreadedArgs pins the call-frame escape rule: a local
// one-way RMI to a Threaded method defers the body to a spawned thread, so
// the pooled typed call frame must not recycle at return — a recycled frame
// would let the next invocation overwrite the arguments the pending bodies
// read (the bug showed every deposit arriving with the last value).
func TestLocalOneWayThreadedArgs(t *testing.T) {
	m := mpmd.NewMachine(mpmd.SPConfig(), 1)
	rt := mpmd.NewRuntime(m)
	if err := mpmd.RegisterClass[onewayAccum](rt); err != nil {
		t.Fatal(err)
	}
	ref, err := mpmd.NewObject[onewayAccum](rt, 0)
	if err != nil {
		t.Fatal(err)
	}
	const k = 5
	rt.OnNode(0, func(th *mpmd.Thread) {
		for i := 1; i <= k; i++ {
			if err := mpmd.InvokeOneWay(th, ref, "Deposit", int64(i)); err != nil {
				panic(err)
			}
		}
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	got := rt.Object(ref.GPtr()).(*onewayAccum).got
	if len(got) != k {
		t.Fatalf("object saw %d deposits, want %d (%v)", len(got), k, got)
	}
	seen := map[int64]bool{}
	for _, v := range got {
		seen[v] = true
	}
	for i := int64(1); i <= k; i++ {
		if !seen[i] {
			t.Fatalf("deposit %d lost; object saw %v (recycled frame overwrote pending args)", i, got)
		}
	}
}
