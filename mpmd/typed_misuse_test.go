package mpmd_test

import (
	"strings"
	"testing"

	"repro/mpmd"
)

// Typed-API misuse must surface as errors with actionable messages — at
// setup time where possible, and as returned errors (never silent
// misbehaviour) from invocation helpers. Each case runs on both backends.

// badSig has a thread-first method with an unsupported argument type:
// deriving it must fail at registration.
type badSig struct{}

func (b *badSig) Frob(t *mpmd.Thread, ch chan int) {}

// notRegistered is a valid processor object that the tests deliberately
// never register.
type notRegistered struct{ X int64 }

func (n *notRegistered) Poke(t *mpmd.Thread) {}

func forEachBackend(t *testing.T, nodes int, fn func(t *testing.T, m *mpmd.Machine)) {
	t.Helper()
	t.Run("sim", func(t *testing.T) { fn(t, mpmd.NewMachine(mpmd.SPConfig(), nodes)) })
	t.Run("live", func(t *testing.T) { fn(t, mpmd.NewLiveMachine(mpmd.SPConfig(), nodes)) })
}

func wantErr(t *testing.T, err error, frag string) {
	t.Helper()
	if err == nil {
		t.Errorf("expected error containing %q, got nil", frag)
		return
	}
	if !strings.Contains(err.Error(), frag) {
		t.Errorf("error %q does not contain %q", err, frag)
	}
}

func TestTypedRegisterBadSignature(t *testing.T) {
	forEachBackend(t, 1, func(t *testing.T, m *mpmd.Machine) {
		rt := mpmd.NewRuntime(m)
		wantErr(t, mpmd.RegisterClass[badSig](rt), "unsupported")
	})
}

func TestTypedRegisterDuplicate(t *testing.T) {
	forEachBackend(t, 1, func(t *testing.T, m *mpmd.Machine) {
		rt := mpmd.NewRuntime(m)
		if err := mpmd.RegisterClass[parityCounter](rt); err != nil {
			t.Fatal(err)
		}
		wantErr(t, mpmd.RegisterClass[parityCounter](rt), "already registered")
	})
}

func TestTypedUnregisteredStruct(t *testing.T) {
	forEachBackend(t, 2, func(t *testing.T, m *mpmd.Machine) {
		rt := mpmd.NewRuntime(m)
		_, err := mpmd.NewObject[notRegistered](rt, 1)
		wantErr(t, err, "not registered")
	})
}

func TestTypedInvokeBeforeRun(t *testing.T) {
	forEachBackend(t, 2, func(t *testing.T, m *mpmd.Machine) {
		rt := mpmd.NewRuntime(m)
		if err := mpmd.RegisterClass[parityCounter](rt); err != nil {
			t.Fatal(err)
		}
		ctr, err := mpmd.NewObject[parityCounter](rt, 1)
		if err != nil {
			t.Fatal(err)
		}
		_, err = mpmd.Invoke[mpmd.Void, mpmd.Void](nil, ctr, "Nop", mpmd.Void{})
		wantErr(t, err, "outside a running program")
	})
}

func TestTypedNewObjectOnBeforeRun(t *testing.T) {
	forEachBackend(t, 2, func(t *testing.T, m *mpmd.Machine) {
		rt := mpmd.NewRuntime(m)
		if err := mpmd.RegisterClass[parityCounter](rt); err != nil {
			t.Fatal(err)
		}
		_, err := mpmd.NewObjectOn[parityCounter](nil, rt, 1)
		wantErr(t, err, "outside a running program")
	})
}

func TestTypedInvokeZeroRef(t *testing.T) {
	forEachBackend(t, 2, func(t *testing.T, m *mpmd.Machine) {
		rt := mpmd.NewRuntime(m)
		if err := mpmd.RegisterClass[parityCounter](rt); err != nil {
			t.Fatal(err)
		}
		var zero mpmd.Ref[parityCounter]
		var invokeErr error
		rt.OnNode(0, func(th *mpmd.Thread) {
			_, invokeErr = mpmd.Invoke[mpmd.Void, mpmd.Void](th, zero, "Nop", mpmd.Void{})
		})
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		wantErr(t, invokeErr, "zero Ref")
	})
}

// TestTypedInvokeMisuseInProgram drives every in-program misuse through a
// running node program on both backends: unknown method name, wrong
// argument type, wrong result type, and a one-way call to a
// value-returning method.
func TestTypedInvokeMisuseInProgram(t *testing.T) {
	forEachBackend(t, 2, func(t *testing.T, m *mpmd.Machine) {
		rt := mpmd.NewRuntime(m)
		if err := mpmd.RegisterClass[parityCounter](rt); err != nil {
			t.Fatal(err)
		}
		ctr, err := mpmd.NewObject[parityCounter](rt, 1)
		if err != nil {
			t.Fatal(err)
		}
		errs := make(map[string]error)
		rt.OnNode(0, func(th *mpmd.Thread) {
			_, errs["unknown"] = mpmd.Invoke[mpmd.Void, mpmd.Void](th, ctr, "Sub", mpmd.Void{})
			_, errs["badArg"] = mpmd.Invoke[string, mpmd.Void](th, ctr, "Add", "nope")
			_, errs["badRet"] = mpmd.Invoke[mpmd.Void, float64](th, ctr, "Get", mpmd.Void{})
			_, errs["retForVoid"] = mpmd.Invoke[int64, int64](th, ctr, "Add", 1)
			errs["oneWayRet"] = mpmd.InvokeOneWay[mpmd.Void](th, ctr, "Get", mpmd.Void{})
			// A valid call afterwards still works: failed binds sent nothing.
			if _, err := mpmd.Invoke[int64, mpmd.Void](th, ctr, "Add", 2); err != nil {
				t.Errorf("valid call after misuse failed: %v", err)
			}
		})
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		wantErr(t, errs["unknown"], `no RMI method "Sub"`)
		wantErr(t, errs["unknown"], "Add, Get, Nop") // lists what exists
		wantErr(t, errs["badArg"], "argument type mismatch")
		wantErr(t, errs["badRet"], "result type mismatch")
		wantErr(t, errs["retForVoid"], "returns nothing")
		wantErr(t, errs["oneWayRet"], "one-way")
	})
}

func TestTypedRefOfValidatesClass(t *testing.T) {
	forEachBackend(t, 2, func(t *testing.T, m *mpmd.Machine) {
		rt := mpmd.NewRuntime(m)
		if err := mpmd.RegisterClass[parityCounter](rt); err != nil {
			t.Fatal(err)
		}
		rt.RegisterClass(&mpmd.Class{
			Name:    "Other",
			New:     func() any { return &struct{}{} },
			Methods: []*mpmd.Method{{Name: "x", Fn: func(t *mpmd.Thread, self any, a []mpmd.Arg, r mpmd.Arg) {}}},
		})
		other := rt.CreateObject(1, "Other")
		_, err := mpmd.RefOf[parityCounter](rt, other)
		wantErr(t, err, `class "Other"`)

		// A same-named class from a different runtime is a distinct
		// registration: lifting its pointers here must fail by identity.
		rt2 := mpmd.NewRuntime(mpmd.NewMachine(mpmd.SPConfig(), 2))
		if err := mpmd.RegisterClass[parityCounter](rt2); err != nil {
			t.Fatal(err)
		}
		foreign, err := mpmd.NewObject[parityCounter](rt2, 1)
		if err != nil {
			t.Fatal(err)
		}
		_, err = mpmd.RefOf[parityCounter](rt, foreign.GPtr())
		wantErr(t, err, "different runtime")

		// Lifting the right class succeeds and the ref works.
		gp := rt.CreateObject(1, "parityCounter")
		ref, err := mpmd.RefOf[parityCounter](rt, gp)
		if err != nil {
			t.Fatal(err)
		}
		var got int64
		rt.OnNode(0, func(th *mpmd.Thread) {
			if _, err := mpmd.Invoke[int64, mpmd.Void](th, ref, "Add", 5); err != nil {
				t.Error(err)
				return
			}
			got, err = mpmd.Invoke[mpmd.Void, int64](th, ref, "Get", mpmd.Void{})
			if err != nil {
				t.Error(err)
			}
		})
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		if got != 5 {
			t.Fatalf("counter through lifted ref = %d, want 5", got)
		}
	})
}

func TestTypedRegisterAfterRun(t *testing.T) {
	forEachBackend(t, 1, func(t *testing.T, m *mpmd.Machine) {
		rt := mpmd.NewRuntime(m)
		if err := mpmd.RegisterClass[parityCounter](rt); err != nil {
			t.Fatal(err)
		}
		rt.OnNode(0, func(th *mpmd.Thread) {})
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		wantErr(t, mpmd.RegisterClass[notRegistered](rt), "already running")
	})
}

func TestTypedNewObjectAfterRun(t *testing.T) {
	forEachBackend(t, 2, func(t *testing.T, m *mpmd.Machine) {
		rt := mpmd.NewRuntime(m)
		if err := mpmd.RegisterClass[parityCounter](rt); err != nil {
			t.Fatal(err)
		}
		var newErr error
		rt.OnNode(0, func(th *mpmd.Thread) {
			_, newErr = mpmd.NewObject[parityCounter](rt, 1)
		})
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		wantErr(t, newErr, "after Run has started")
	})
}
