package mpmd

import (
	"fmt"
	"reflect"

	"repro/internal/coll"
	"repro/internal/rmigen"
)

// This file is the typed data-parallel surface over internal/coll: teams
// (communicators over node subsets) and the collectives scoped to them.
// One API serves both programming models and both backends: CC++/typed-v2
// programs get the group operations Split-C's library always had, with
// log-depth tree implementations lowering onto the ordinary RMI wire path
// (so modelled costs, stub caches, and persistent buffers behave exactly as
// for application RMIs).

// Team is a communicator: an ordered set of member nodes all collectives
// are scoped to. Ranks are dense indices into the member list. Every
// collective must be called by one thread on every member node, in the same
// order everywhere — the usual collective contract. WorldTeam returns the
// all-nodes team; Split partitions an existing team.
type Team struct {
	tm *coll.Team
}

// WorldTeam returns the team of all machine nodes, installing the
// collective engine (a per-node mailbox processor object) on first use.
// Like class registration, this is a setup-time operation: call it before
// Run.
func WorldTeam(rt *Runtime) (*Team, error) {
	if rt == nil {
		return nil, fmt.Errorf("WorldTeam(nil runtime)")
	}
	if rt.Started() {
		return nil, fmt.Errorf("WorldTeam after Run has started: the collective engine registers a class and places objects, which is setup-time work")
	}
	return &Team{tm: coll.For(rt).World()}, nil
}

// nilSafe reports whether the team is usable; every accessor tolerates the
// nil team Split hands to opted-out members (negative color).
func (tm *Team) nilSafe() bool { return tm != nil && tm.tm != nil }

// Size returns the member count (0 for a nil team).
func (tm *Team) Size() int {
	if !tm.nilSafe() {
		return 0
	}
	return tm.tm.Size()
}

// Nodes returns the member node IDs in rank order (nil for a nil team).
func (tm *Team) Nodes() []int {
	if !tm.nilSafe() {
		return nil
	}
	out := make([]int, tm.tm.Size())
	copy(out, tm.tm.Nodes())
	return out
}

// Node returns the node ID of the given rank, or -1 if the team is nil or
// the rank out of range.
func (tm *Team) Node(rank int) int {
	if !tm.nilSafe() || rank < 0 || rank >= tm.tm.Size() {
		return -1
	}
	return tm.tm.Node(rank)
}

// RankOfNode returns the rank of a node ID, or -1 if it is not a member.
func (tm *Team) RankOfNode(node int) int {
	if !tm.nilSafe() {
		return -1
	}
	return tm.tm.RankOfNode(node)
}

// Rank returns the calling thread's rank in the team, or -1 if its node is
// not a member.
func (tm *Team) Rank(t *Thread) int {
	if !tm.nilSafe() || t == nil {
		return -1
	}
	return tm.tm.Rank(t)
}

// String formats the team for debugging.
func (tm *Team) String() string {
	if !tm.nilSafe() {
		return "team <nil>"
	}
	return fmt.Sprintf("team %s %v", tm.tm.ID(), tm.tm.Nodes())
}

// check validates one collective call: live team, running program, member
// thread. Returns the caller's rank.
func (tm *Team) check(t *Thread, op string) (int, error) {
	if tm == nil || tm.tm == nil {
		return -1, fmt.Errorf("%s on a nil Team (create teams with WorldTeam/Split)", op)
	}
	if t == nil || !tm.tm.Comm().Runtime().Started() {
		return -1, fmt.Errorf("%s outside a running program: collectives must be called from a node program thread after Run has started", op)
	}
	r := tm.tm.Rank(t)
	if r < 0 {
		return -1, fmt.Errorf("%s from node %d, which is not a member of %s", op, t.Node().ID, tm)
	}
	return r, nil
}

// Barrier blocks until every team member has entered it — a dissemination
// barrier, ceil(log2 n) communication rounds with one message per member
// per round (the hand-rolled alternatives, Runtime.NewBarrier's central
// counter and Split-C's barrier(), are O(n) at the coordinator).
func (tm *Team) Barrier(t *Thread) error {
	if _, err := tm.check(t, "Team.Barrier"); err != nil {
		return err
	}
	tm.tm.Barrier(t)
	return nil
}

// Split partitions the team (MPI_Comm_split): members calling with the same
// color form a new team, ranked by (key, parent rank). A negative color
// opts out and returns a nil team. Split is itself a collective — every
// member must call it — and costs one AllGather over the parent team.
func (tm *Team) Split(t *Thread, color, key int) (*Team, error) {
	if _, err := tm.check(t, "Team.Split"); err != nil {
		return nil, err
	}
	sub := tm.tm.Split(t, color, key)
	if sub == nil {
		return nil, nil
	}
	return &Team{tm: sub}, nil
}

// --- typed collectives -------------------------------------------------------

// Number constrains the built-in reduction combiners.
type Number interface {
	~int | ~int64 | ~float64
}

// Sum is the addition combiner for Reduce/AllReduce.
func Sum[T Number](a, b T) T { return a + b }

// Max is the maximum combiner for Reduce/AllReduce.
func Max[T Number](a, b T) T {
	if b > a {
		return b
	}
	return a
}

// Min is the minimum combiner for Reduce/AllReduce.
func Min[T Number](a, b T) T {
	if b < a {
		return b
	}
	return a
}

// codecOf compiles (or fetches) the wire codec for T — the same value types
// the RMI surface accepts: int, int64, float64, string, []byte, []float64,
// or structs of those.
func codecOf[T any](op string) (*rmigen.Codec, error) {
	c, err := rmigen.CodecFor(typeOf[T]())
	if err != nil {
		return nil, fmt.Errorf("%s: %w", op, err)
	}
	return c, nil
}

// encode marshals through the codec's append/frame-reuse path: &v makes the
// value addressable, so the compiled store plan writes field-by-field with
// no reflect.New temporary and the argument frame recycles in the codec's
// pool — the collective hot path allocates only the payload it must hand to
// the wire.
func encode[T any](c *rmigen.Codec, v T) []byte { return c.AppendTo(reflect.ValueOf(&v).Elem(), nil) }

func decode[T any](c *rmigen.Codec, b []byte) T {
	var out T
	c.Decode(b, reflect.ValueOf(&out).Elem())
	return out
}

// wrapCombiner lifts a typed combiner onto the byte-level payloads the tree
// algorithms move. The decode/combine/encode runs in wall time only; the
// modelled cost of a collective is its wire traffic.
func wrapCombiner[T any](c *rmigen.Codec, op func(T, T) T) coll.Combiner {
	return func(a, b []byte) []byte {
		return encode(c, op(decode[T](c, a), decode[T](c, b)))
	}
}

// Broadcast distributes root's value to every member over a binomial tree
// and returns it on every member. Only the root's v is significant.
func Broadcast[T any](t *Thread, tm *Team, root int, v T) (T, error) {
	var zero T
	r, err := tm.check(t, "Broadcast")
	if err != nil {
		return zero, err
	}
	if root < 0 || root >= tm.Size() {
		return zero, fmt.Errorf("Broadcast: root rank %d out of range [0,%d)", root, tm.Size())
	}
	c, err := codecOf[T]("Broadcast")
	if err != nil {
		return zero, err
	}
	var data []byte
	if r == root {
		data = encode(c, v)
	}
	return decode[T](c, tm.tm.Bcast(t, root, data)), nil
}

// Reduce combines every member's value with op along a binomial tree rooted
// at rank root. The combined value lands at the root (atRoot=true); other
// members get the zero T. op must be associative; like MPI, the grouping is
// unspecified, so floating-point results may differ from a sequential fold
// in the last bits.
func Reduce[T any](t *Thread, tm *Team, root int, v T, op func(T, T) T) (res T, atRoot bool, err error) {
	var zero T
	_, err = tm.check(t, "Reduce")
	if err != nil {
		return zero, false, err
	}
	if root < 0 || root >= tm.Size() {
		return zero, false, fmt.Errorf("Reduce: root rank %d out of range [0,%d)", root, tm.Size())
	}
	c, err := codecOf[T]("Reduce")
	if err != nil {
		return zero, false, err
	}
	b, isRoot := tm.tm.Reduce(t, root, encode(c, v), wrapCombiner(c, op))
	if !isRoot {
		return zero, false, nil
	}
	return decode[T](c, b), true, nil
}

// AllReduce combines every member's value with op and returns the result on
// every member: binomial reduce plus broadcast, 2·ceil(log2 n) rounds.
func AllReduce[T any](t *Thread, tm *Team, v T, op func(T, T) T) (T, error) {
	var zero T
	if _, err := tm.check(t, "AllReduce"); err != nil {
		return zero, err
	}
	c, err := codecOf[T]("AllReduce")
	if err != nil {
		return zero, err
	}
	return decode[T](c, tm.tm.AllReduce(t, encode(c, v), wrapCombiner(c, op))), nil
}

// Scatter distributes all[rank] to each member from the root (whose all
// slice must have one entry per rank; other members may pass nil) and
// returns the member's own entry. Subtree entries travel packed, so the
// depth is ceil(log2 n) rounds.
//
// A root whose all slice has the wrong length panics rather than returning
// an error: only the root can see the mistake, the other members are
// already blocked in the collective, and returning asymmetrically would
// leave them hung with the team's operation sequence desynchronized.
// Failing fast is the only recoverable report.
func Scatter[T any](t *Thread, tm *Team, root int, all []T) (T, error) {
	var zero T
	r, err := tm.check(t, "Scatter")
	if err != nil {
		return zero, err
	}
	if root < 0 || root >= tm.Size() {
		return zero, fmt.Errorf("Scatter: root rank %d out of range [0,%d)", root, tm.Size())
	}
	c, err := codecOf[T]("Scatter")
	if err != nil {
		return zero, err
	}
	var parts [][]byte
	if r == root {
		if len(all) != tm.Size() {
			panic(fmt.Sprintf("mpmd.Scatter: root has %d values for a %d-member team (the other members are already blocked in the collective, so this cannot be reported as an error)", len(all), tm.Size()))
		}
		parts = make([][]byte, len(all))
		for i, v := range all {
			parts[i] = encode(c, v)
		}
	}
	return decode[T](c, tm.tm.Scatter(t, root, parts)), nil
}

// Gather collects every member's value at the root, rank-indexed. The root
// gets the full slice (atRoot=true); other members get nil.
func Gather[T any](t *Thread, tm *Team, root int, v T) (all []T, atRoot bool, err error) {
	_, err = tm.check(t, "Gather")
	if err != nil {
		return nil, false, err
	}
	if root < 0 || root >= tm.Size() {
		return nil, false, fmt.Errorf("Gather: root rank %d out of range [0,%d)", root, tm.Size())
	}
	c, err := codecOf[T]("Gather")
	if err != nil {
		return nil, false, err
	}
	parts, isRoot := tm.tm.Gather(t, root, encode(c, v))
	if !isRoot {
		return nil, false, nil
	}
	out := make([]T, len(parts))
	for i, b := range parts {
		out[i] = decode[T](c, b)
	}
	return out, true, nil
}

// AllGather collects every member's value on every member, rank-indexed:
// binomial gather plus broadcast of the packed vector.
func AllGather[T any](t *Thread, tm *Team, v T) ([]T, error) {
	if _, err := tm.check(t, "AllGather"); err != nil {
		return nil, err
	}
	c, err := codecOf[T]("AllGather")
	if err != nil {
		return nil, err
	}
	parts := tm.tm.AllGather(t, encode(c, v))
	out := make([]T, len(parts))
	for i, b := range parts {
		out[i] = decode[T](c, b)
	}
	return out, nil
}
