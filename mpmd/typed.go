package mpmd

import (
	"fmt"
	"reflect"
	"unsafe"

	"repro/internal/core"
	"repro/internal/rmigen"
	"repro/internal/threads"
)

// This file is the v2 typed API: compile-time-checked remote method
// invocation derived from ordinary Go structs, layered strictly on top of
// the untyped Class/Method/Arg path. The typed layer adds zero modelled
// cost — it lowers every call onto exactly the []Arg slices and wire bytes
// a hand-written registration would produce (see the parity test), so the
// paper's calibrated tables are unaffected by which surface a program uses.

// Void is the empty value type standing in for "no arguments" or "no return
// value" in Invoke's type parameters.
type Void = rmigen.Void

// MethodOpts flags a method as Threaded (runs on a fresh thread at the
// receiver; required whenever it may block) and/or Atomic (holds the target
// object's lock; implies threaded, as in the paper).
type MethodOpts = rmigen.MethodOpts

// OptionsProvider is optionally implemented by processor-object structs to
// attach MethodOpts to methods by Go method name.
type OptionsProvider = rmigen.OptionsProvider

// Ref is a typed global pointer to a processor object of type T — the v2
// surface over the opaque GPtr. Refs are forgeable only through the runtime
// (NewObject, NewObjectOn, RefOf), like CC++ global pointers.
type Ref[T any] struct {
	rt *core.Runtime
	gp core.GPtr
}

// GPtr drops down to the untyped global pointer (for mixing with the
// low-level API).
func (r Ref[T]) GPtr() GPtr { return r.gp }

// Nil reports whether the ref is the zero/nil reference.
func (r Ref[T]) Nil() bool { return r.rt == nil || r.gp.Nil() }

// NodeID reports which node owns the object.
func (r Ref[T]) NodeID() int { return r.gp.NodeID() }

// String formats the ref for debugging.
func (r Ref[T]) String() string { return r.gp.String() }

func typeOf[T any]() reflect.Type { return reflect.TypeOf((*T)(nil)).Elem() }

// RegisterClass derives a processor-object class from T and registers it
// with the runtime. Every exported method of *T with signature
//
//	func (x *T) Name(t *mpmd.Thread[, args A]) [R]
//
// becomes RMI-callable; A and R must be int, int64, float64, string,
// []byte, []float64, or structs of those. Exported methods without a
// *mpmd.Thread first parameter are ordinary helpers and are ignored.
// Invalid signatures, duplicate registrations, and name collisions are
// reported here, at setup time. Must be called before Run, identically on
// every program image (as with the untyped API, registration order defines
// the machine-wide stub IDs).
func RegisterClass[T any](rt *Runtime) error {
	_, err := rmigen.Register(rt, reflect.TypeOf((*T)(nil)))
	return err
}

// NewObject instantiates a registered T on the given node at setup time (no
// virtual cost) and returns a typed ref. For creation from inside a running
// program, use NewObjectOn, which performs a real RMI.
func NewObject[T any](rt *Runtime, node int) (Ref[T], error) {
	cls, err := rmigen.Lookup(rt, reflect.TypeOf((*T)(nil)))
	if err != nil {
		return Ref[T]{}, err
	}
	if rt.Started() {
		return Ref[T]{}, fmt.Errorf("NewObject[%s] after Run has started: setup-time placement is over; use NewObjectOn from a node program (it performs a real RMI)", cls.Name)
	}
	return Ref[T]{rt: rt, gp: rt.CreateObject(node, cls.Name)}, nil
}

// NewObjectOn creates a T on a remote node from inside a running program —
// a real RMI to the node's system object, CC++'s dynamic processor-object
// creation — and returns a typed ref. For setup-time placement (before
// Run), use NewObject.
func NewObjectOn[T any](t *Thread, rt *Runtime, node int) (Ref[T], error) {
	cls, err := rmigen.Lookup(rt, reflect.TypeOf((*T)(nil)))
	if err != nil {
		return Ref[T]{}, err
	}
	if t == nil || !rt.Started() {
		return Ref[T]{}, fmt.Errorf("NewObjectOn[%s] outside a running program: it performs a real RMI and must be called from a node program thread (use NewObject for setup-time placement)", cls.Name)
	}
	return Ref[T]{rt: rt, gp: rt.NewObjOn(t, node, cls.Name)}, nil
}

// RefOf lifts an untyped global pointer into a typed ref, validating that
// the pointed-to object is a registered T of this runtime (class identity,
// not just name — a pointer from a different runtime is rejected).
func RefOf[T any](rt *Runtime, gp GPtr) (Ref[T], error) {
	cls, err := rmigen.Lookup(rt, reflect.TypeOf((*T)(nil)))
	if err != nil {
		return Ref[T]{}, err
	}
	if !gp.IsClass(cls.Core) {
		if gp.ClassName() == cls.Name {
			return Ref[T]{}, fmt.Errorf("global pointer is to class %q of a different runtime", cls.Name)
		}
		return Ref[T]{}, fmt.Errorf("global pointer is to class %q, not %s", gp.ClassName(), cls.Name)
	}
	return Ref[T]{rt: rt, gp: gp}, nil
}

// bind validates one typed invocation end to end — live ref, running
// program, known method, matching argument/return types — and returns the
// derived method. Everything here is wall-time-only bookkeeping; the
// virtual-time cost of the call itself is charged by the untyped core path.
func bind[T any](t *Thread, r Ref[T], method string, argsT, retT reflect.Type, oneWay bool) (*rmigen.Method, error) {
	if r.rt == nil {
		return nil, fmt.Errorf("typed RMI %q through a zero Ref (create refs with NewObject/NewObjectOn/RefOf)", method)
	}
	if r.gp.Nil() {
		return nil, fmt.Errorf("typed RMI %q through a nil global pointer", method)
	}
	if t == nil || !r.rt.Started() {
		return nil, fmt.Errorf("typed RMI %q outside a running program: Invoke must be called from a node program thread after Run has started", method)
	}
	cls, err := rmigen.Lookup(r.rt, reflect.TypeOf((*T)(nil)))
	if err != nil {
		return nil, err
	}
	return cls.Bind(method, argsT, retT, oneWay)
}

// Invoke performs a synchronous typed RMI: marshal args, transfer, run the
// method remotely, and return its result. A and R must match the method's
// declared argument and return types (use Void for "none"); mismatches,
// unknown methods, and unregistered types come back as errors before
// anything is sent. The call lowers onto Runtime.Call — same messages, same
// modelled costs as the untyped API.
func Invoke[A, R, T any](t *Thread, r Ref[T], method string, args A) (R, error) {
	var out R
	m, err := bind(t, r, method, typeOf[A](), typeOf[R](), false)
	if err != nil {
		return out, err
	}
	// Synchronous calls run on a pooled call frame: the wire Args recycle
	// across invocations and the argument/result values move through the
	// compiled offset-based plans — no per-call reflection, no per-call
	// allocation in this layer.
	frame := m.AcquireFrame()
	if m.HasArgs() {
		m.StoreArgs(unsafe.Pointer(&args), frame.Args)
	}
	r.rt.Call(t, r.gp, method, frame.Args, frame.Ret)
	if m.HasRet() {
		m.LoadRetPtr(frame.Ret, unsafe.Pointer(&out))
	}
	m.ReleaseFrame(frame)
	return out, nil
}

// InvokeAsync starts a typed RMI and returns immediately; Future.Wait joins
// and yields the result. Lowers onto Runtime.CallAsync.
func InvokeAsync[A, R, T any](t *Thread, r Ref[T], method string, args A) (*Future[R], error) {
	m, err := bind(t, r, method, typeOf[A](), typeOf[R](), false)
	if err != nil {
		return nil, err
	}
	wire := m.WireArgs(reflect.ValueOf(args))
	var load func() R
	var ret core.Arg
	if m.HasRet() {
		ret = m.NewRetArg()
		load = func() R {
			var out R
			m.LoadRet(ret, reflect.ValueOf(&out).Elem())
			return out
		}
	}
	return &Future[R]{f: r.rt.CallAsync(t, r.gp, method, wire, ret), load: load}, nil
}

// InvokeOneWay starts a fire-and-forget typed RMI (no reply message at
// all). The method must not return a value. Lowers onto Runtime.CallOneWay.
func InvokeOneWay[A, T any](t *Thread, r Ref[T], method string, args A) error {
	m, err := bind(t, r, method, typeOf[A](), nil, true)
	if err != nil {
		return err
	}
	// Remote one-way sends marshal the arguments onto the wire inside
	// CallOneWay, and local non-threaded bodies run inline — in both cases
	// the frame is consumed before the call returns and can recycle. A
	// *local* one-way to a Threaded/Atomic method only spawns the body,
	// which reads the wire Args after we return: that frame must escape.
	frame := m.AcquireFrame()
	if m.HasArgs() {
		m.StoreArgs(unsafe.Pointer(&args), frame.Args)
	}
	r.rt.CallOneWay(t, r.gp, method, frame.Args)
	if r.gp.NodeID() != t.Node().ID || !m.DefersLocally() {
		m.ReleaseFrame(frame)
	}
	return nil
}

// Future is the typed join handle of a split-phase operation: an
// asynchronous RMI (InvokeAsync) or a Dist array access (Dist.GetAsync,
// Dist.PutAsync). Wait returns the typed result directly — no manual type
// assertions, closing the last untyped hole in the v2 surface. The
// low-level core.Future remains available as UntypedFuture.
type Future[R any] struct {
	f *core.Future
	// load decodes the landed result (wall-time-only bookkeeping); nil for
	// void results.
	load func() R
}

// Wait blocks until the operation has completed and returns the result (the
// zero R for void operations).
func (fu *Future[R]) Wait(t *threads.Thread) R {
	fu.f.Wait(t)
	if fu.load == nil {
		var zero R
		return zero
	}
	return fu.load()
}

// Done reports (without blocking) whether the operation has completed.
func (fu *Future[R]) Done() bool { return fu.f.Done() }

// Async is the former name of Future.
//
// Deprecated: use Future. InvokeAsync and the Dist accessors return the
// same typed handle under its new name.
type Async[R any] = Future[R]
