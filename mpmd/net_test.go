package mpmd_test

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/mpmd"
)

// NetCounter is the processor object of the multi-process smoke test.
type NetCounter struct{ n int64 }

// Add accumulates; exercised cross-shard through serialized frames.
func (c *NetCounter) Add(t *mpmd.Thread, v int64) { c.n += v }

// Get returns the accumulated value.
func (c *NetCounter) Get(t *mpmd.Thread) int64 { return c.n }

// Fill is the bulk-path probe: a payload travels out, a derived payload back.
func (c *NetCounter) Fill(t *mpmd.Thread, b []byte) []byte {
	out := make([]byte, len(b))
	for i, v := range b {
		out[i] = v + 1
	}
	return out
}

// TestNetMachineMultiProcess is the true multi-process smoke: a 4-node
// machine sharded 2×2, the peer shard a re-exec of this test binary (the
// parent sets the worker environment; the worker re-enters this very test
// function and builds the identical machine). Node 0 drives typed RMIs at
// every other node — nodes 2 and 3 live in the other OS process, so those
// invocations cross real sockets, cold resolution, persistent-buffer
// updates, replies and all — and every node joins a world AllReduce.
func TestNetMachineMultiProcess(t *testing.T) {
	const (
		n   = 4
		nps = 2
	)
	m, info, err := mpmd.NewNetMachine(mpmd.SPConfig(), n, mpmd.NetOptions{
		NodesPerShard: nps,
		Live:          mpmd.LiveOptions{Watchdog: 30 * time.Second},
		// Re-enter exactly this test in the worker process.
		ChildArgs: []string{"-test.run=^TestNetMachineMultiProcess$", "-test.count=1"},
	})
	if err != nil {
		t.Fatalf("NewNetMachine: %v", err)
	}
	if !info.Worker && info.Shards != 2 {
		t.Fatalf("expected 2 shards, got %d", info.Shards)
	}

	rt := mpmd.NewRuntime(m)
	if err := mpmd.RegisterClass[NetCounter](rt); err != nil {
		t.Fatalf("RegisterClass: %v", err)
	}
	// Identical setup in every process: one counter per node, same order.
	ctrs := make([]mpmd.Ref[NetCounter], n)
	for i := 0; i < n; i++ {
		ctrs[i], err = mpmd.NewObject[NetCounter](rt, i)
		if err != nil {
			t.Fatalf("NewObject(%d): %v", i, err)
		}
	}
	world, err := mpmd.WorldTeam(rt)
	if err != nil {
		t.Fatalf("WorldTeam: %v", err)
	}

	var failures atomic.Int32
	check := func(ok bool, msg string) {
		if !ok {
			failures.Add(1)
			t.Errorf("%s (shard %d)", msg, info.Shard)
		}
	}

	for i := 0; i < n; i++ {
		i := i
		rt.OnNode(i, func(th *mpmd.Thread) {
			if i == 0 {
				// Drive every peer: same-shard (node 1) and cross-shard
				// (nodes 2, 3), twice each so both the cold and the warm
				// (persistent-buffer) paths cross the wire.
				for round := 0; round < 2; round++ {
					for peer := 1; peer < n; peer++ {
						if _, err := mpmd.Invoke[int64, mpmd.Void](th, ctrs[peer], "Add", int64(10*peer)); err != nil {
							t.Errorf("Add(node %d): %v", peer, err)
						}
					}
				}
				for peer := 1; peer < n; peer++ {
					got, err := mpmd.Invoke[mpmd.Void, int64](th, ctrs[peer], "Get", mpmd.Void{})
					check(err == nil && got == int64(20*peer), "cross-shard Get mismatch")
				}
				// Bulk payload across the shard boundary.
				in := make([]byte, 2048)
				for j := range in {
					in[j] = byte(j)
				}
				out, err := mpmd.Invoke[[]byte, []byte](th, ctrs[3], "Fill", in)
				check(err == nil && len(out) == len(in), "bulk Fill failed")
				for j := range out {
					if out[j] != byte(j)+1 {
						check(false, "bulk payload corrupted across shards")
						break
					}
				}
			}
			// Every member contributes its node ID; the collective runs over
			// the same serialized wire path.
			sum, err := mpmd.AllReduce(th, world, i, mpmd.Sum)
			check(err == nil && sum == 0+1+2+3, "world AllReduce wrong")
		})
	}

	runErr := rt.Run()
	if info.Worker {
		// A worker that failed its checks (or its run) must exit non-zero so
		// the parent's child-reaping surfaces it as a Run error.
		if failures.Load() > 0 || runErr != nil {
			info.ExitIfWorker(errors.New("worker shard failed"))
		}
		info.ExitIfWorker(nil)
	}
	if runErr != nil {
		t.Fatalf("Run: %v", runErr)
	}

	// Cross-process accounting merge: the worker shard shipped its stats over
	// the real socket at quiesce; the parent's machine-wide report must carry
	// them. This is the only place the full re-exec stats path is observable.
	cs, err := m.ClusterStats()
	if err != nil {
		t.Fatalf("ClusterStats: %v", err)
	}
	if len(cs.Shards) != 2 {
		t.Fatalf("cluster report covers %d shards, want 2", len(cs.Shards))
	}
	sum := mpmd.MergeAcct(cs.Shards[0].Acct, cs.Shards[1].Acct)
	if cs.Acct != sum {
		t.Fatalf("merged counters != sum of per-shard counters:\n got %v\nwant %v", cs.Acct, sum)
	}
	// Nodes 2 and 3 ran their handlers in the other OS process: the worker's
	// contribution must be visible in its shard row and push the merged total
	// strictly past what this process observed locally.
	if cs.Shards[1].Acct.Counters[mpmd.CntHandlersRun] == 0 {
		t.Fatal("worker shard reported zero handler runs across the re-exec boundary")
	}
	local := m.LocalStats().Acct.Counters[mpmd.CntHandlersRun]
	if merged := cs.Acct.Counters[mpmd.CntHandlersRun]; merged <= local {
		t.Fatalf("merged handler count %d <= parent-local %d: worker contribution missing", merged, local)
	}
	if cs.Acct.Counters[mpmd.CntRMI] == 0 || cs.Acct.Counters[mpmd.CntMsgBulk] == 0 {
		t.Fatal("merged report missing RMI or bulk traffic the test provably drove")
	}
}
