package mpmd_test

import (
	"testing"
	"time"

	"repro/mpmd"
)

// The typed v2 API must add zero modelled cost: it lowers onto exactly the
// []Arg slices and wire bytes a hand-written registration produces. These
// tests run the quickstart call sequence twice — once through hand-written
// Class/Method tables, once through the derived typed API — and require the
// virtual-time cost of every step, the total virtual time, and the
// stub-cache and persistent-buffer counters to be identical.

// parityCounter is the typed quickstart object.
type parityCounter struct{ n int64 }

func (c *parityCounter) Nop(t *mpmd.Thread) {}

func (c *parityCounter) Add(t *mpmd.Thread, n int64) { c.n += n }

func (c *parityCounter) Get(t *mpmd.Thread) int64 { return c.n }

// untypedParityClass is the hand-written equivalent. Method names match the
// derived ones so the cold-path payloads (which carry the qualified name)
// have identical lengths.
func untypedParityClass() *mpmd.Class {
	return &mpmd.Class{
		Name: "parityCounter",
		New:  func() any { return &parityCounter{} },
		Methods: []*mpmd.Method{
			{Name: "Nop", Fn: func(t *mpmd.Thread, self any, args []mpmd.Arg, ret mpmd.Arg) {}},
			{
				Name:    "Add",
				NewArgs: func() []mpmd.Arg { return []mpmd.Arg{&mpmd.I64{}} },
				Fn: func(t *mpmd.Thread, self any, args []mpmd.Arg, ret mpmd.Arg) {
					self.(*parityCounter).n += args[0].(*mpmd.I64).V
				},
			},
			{
				Name:   "Get",
				NewRet: func() mpmd.Arg { return &mpmd.I64{} },
				Fn: func(t *mpmd.Thread, self any, args []mpmd.Arg, ret mpmd.Arg) {
					ret.(*mpmd.I64).V = self.(*parityCounter).n
				},
			},
		},
	}
}

// parityRun is one full quickstart-shaped run: cold RMI, warm RMIs with and
// without arguments, a return value, an async call, and a one-way call.
type parityRun struct {
	steps   []time.Duration // virtual cost per call
	total   time.Duration   // machine virtual time at completion
	value   int64           // final counter value read back
	hits    int64           // stub-cache hits
	misses  int64           // stub-cache misses
	allocs  int64           // persistent-buffer allocations
	reuses  int64           // persistent-buffer reuses
	elapsed time.Duration   // node-program virtual elapsed
}

func runUntypedParity(t *testing.T) parityRun {
	t.Helper()
	m := mpmd.NewMachine(mpmd.SPConfig(), 2)
	rt := mpmd.NewRuntime(m)
	rt.RegisterClass(untypedParityClass())
	gp := rt.CreateObject(1, "parityCounter")

	var out parityRun
	rt.OnNode(0, func(th *mpmd.Thread) {
		begin := th.Now()
		step := func(fn func()) {
			start := th.Now()
			fn()
			out.steps = append(out.steps, time.Duration(th.Now()-start))
		}
		step(func() { rt.Call(th, gp, "Nop", nil, nil) }) // cold
		step(func() { rt.Call(th, gp, "Nop", nil, nil) }) // warm
		step(func() { rt.Call(th, gp, "Add", []mpmd.Arg{&mpmd.I64{V: 21}}, nil) })
		step(func() { rt.Call(th, gp, "Add", []mpmd.Arg{&mpmd.I64{V: 21}}, nil) })
		var ret mpmd.I64
		step(func() { rt.Call(th, gp, "Get", nil, &ret) })
		step(func() {
			f := rt.CallAsync(th, gp, "Add", []mpmd.Arg{&mpmd.I64{V: 1}}, nil)
			f.Wait(th)
		})
		step(func() { rt.CallOneWay(th, gp, "Add", []mpmd.Arg{&mpmd.I64{V: 1}}) })
		// Read back after the one-way has drained.
		var fin mpmd.I64
		step(func() { rt.Call(th, gp, "Get", nil, &fin) })
		out.value = fin.V
		out.elapsed = time.Duration(th.Now() - begin)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	out.total = m.Eng.Now()
	out.hits, out.misses = rt.StubCacheStats()
	out.allocs, out.reuses = rt.BufStats()
	return out
}

func runTypedParity(t *testing.T) parityRun {
	t.Helper()
	m := mpmd.NewMachine(mpmd.SPConfig(), 2)
	rt := mpmd.NewRuntime(m)
	if err := mpmd.RegisterClass[parityCounter](rt); err != nil {
		t.Fatal(err)
	}
	ctr, err := mpmd.NewObject[parityCounter](rt, 1)
	if err != nil {
		t.Fatal(err)
	}

	var out parityRun
	rt.OnNode(0, func(th *mpmd.Thread) {
		begin := th.Now()
		step := func(fn func() error) {
			start := th.Now()
			if err := fn(); err != nil {
				t.Error(err)
			}
			out.steps = append(out.steps, time.Duration(th.Now()-start))
		}
		nop := func() error {
			_, err := mpmd.Invoke[mpmd.Void, mpmd.Void](th, ctr, "Nop", mpmd.Void{})
			return err
		}
		add := func(n int64) func() error {
			return func() error {
				_, err := mpmd.Invoke[int64, mpmd.Void](th, ctr, "Add", n)
				return err
			}
		}
		step(nop) // cold
		step(nop) // warm
		step(add(21))
		step(add(21))
		step(func() error {
			_, err := mpmd.Invoke[mpmd.Void, int64](th, ctr, "Get", mpmd.Void{})
			return err
		})
		step(func() error {
			f, err := mpmd.InvokeAsync[int64, mpmd.Void](th, ctr, "Add", 1)
			if err != nil {
				return err
			}
			f.Wait(th)
			return nil
		})
		step(func() error { return mpmd.InvokeOneWay[int64](th, ctr, "Add", 1) })
		step(func() error {
			v, err := mpmd.Invoke[mpmd.Void, int64](th, ctr, "Get", mpmd.Void{})
			out.value = v
			return err
		})
		out.elapsed = time.Duration(th.Now() - begin)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	out.total = m.Eng.Now()
	out.hits, out.misses = rt.StubCacheStats()
	out.allocs, out.reuses = rt.BufStats()
	return out
}

func TestTypedUntypedParity(t *testing.T) {
	ut := runUntypedParity(t)
	ty := runTypedParity(t)

	if len(ut.steps) != len(ty.steps) {
		t.Fatalf("step counts differ: untyped %d, typed %d", len(ut.steps), len(ty.steps))
	}
	names := []string{"cold Nop", "warm Nop", "Add", "Add", "Get", "async Add", "one-way Add", "Get"}
	for i := range ut.steps {
		if ut.steps[i] != ty.steps[i] {
			t.Errorf("step %d (%s): untyped %v, typed %v", i, names[i], ut.steps[i], ty.steps[i])
		}
	}
	if ut.elapsed != ty.elapsed {
		t.Errorf("program virtual elapsed: untyped %v, typed %v", ut.elapsed, ty.elapsed)
	}
	if ut.total != ty.total {
		t.Errorf("machine virtual time: untyped %v, typed %v", ut.total, ty.total)
	}
	if ut.hits != ty.hits || ut.misses != ty.misses {
		t.Errorf("stub cache: untyped %d/%d hits/misses, typed %d/%d", ut.hits, ut.misses, ty.hits, ty.misses)
	}
	if ut.allocs != ty.allocs || ut.reuses != ty.reuses {
		t.Errorf("buffers: untyped %d/%d allocs/reuses, typed %d/%d", ut.allocs, ut.reuses, ty.allocs, ty.reuses)
	}
	if ut.value != ty.value || ty.value != 44 {
		t.Errorf("final counter: untyped %d, typed %d, want 44", ut.value, ty.value)
	}
	// The sequence exercises both cache paths: the cold call misses, warm
	// calls hit.
	if ty.misses == 0 || ty.hits == 0 {
		t.Errorf("expected both stub-cache hits and misses, got %d/%d", ty.hits, ty.misses)
	}
}

// TestTypedLocalAsync joins futures on same-node objects — the local
// dispatch short-circuit must hand back a real completion (both for
// inline and threaded methods), on both backends.
func TestTypedLocalAsync(t *testing.T) {
	run := func(t *testing.T, m *mpmd.Machine) {
		rt := mpmd.NewRuntime(m)
		if err := mpmd.RegisterClass[parityCounter](rt); err != nil {
			t.Fatal(err)
		}
		ctr, err := mpmd.NewObject[parityCounter](rt, 0) // same node as the caller
		if err != nil {
			t.Fatal(err)
		}
		var got int64
		rt.OnNode(0, func(th *mpmd.Thread) {
			f, err := mpmd.InvokeAsync[int64, mpmd.Void](th, ctr, "Add", 21)
			if err != nil {
				t.Error(err)
				return
			}
			f.Wait(th)
			g, err := mpmd.InvokeAsync[mpmd.Void, int64](th, ctr, "Get", mpmd.Void{})
			if err != nil {
				t.Error(err)
				return
			}
			got = g.Wait(th)
		})
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		if got != 21 {
			t.Fatalf("local async counter = %d, want 21", got)
		}
	}
	t.Run("sim", func(t *testing.T) { run(t, mpmd.NewMachine(mpmd.SPConfig(), 2)) })
	t.Run("live", func(t *testing.T) { run(t, mpmd.NewLiveMachine(mpmd.SPConfig(), 2)) })
}

// TestTypedLiveBackend runs the typed quickstart workload on real
// goroutines; under -race this doubles as the typed layer's race check.
func TestTypedLiveBackend(t *testing.T) {
	m := mpmd.NewLiveMachine(mpmd.SPConfig(), 2)
	rt := mpmd.NewRuntime(m)
	if err := mpmd.RegisterClass[parityCounter](rt); err != nil {
		t.Fatal(err)
	}
	ctr, err := mpmd.NewObject[parityCounter](rt, 1)
	if err != nil {
		t.Fatal(err)
	}
	var got int64
	rt.OnNode(0, func(th *mpmd.Thread) {
		for i := 0; i < 10; i++ {
			if _, err := mpmd.Invoke[int64, mpmd.Void](th, ctr, "Add", 1); err != nil {
				t.Error(err)
				return
			}
		}
		f, err := mpmd.InvokeAsync[int64, mpmd.Void](th, ctr, "Add", 32)
		if err != nil {
			t.Error(err)
			return
		}
		f.Wait(th)
		v, err := mpmd.Invoke[mpmd.Void, int64](th, ctr, "Get", mpmd.Void{})
		if err != nil {
			t.Error(err)
			return
		}
		got = v
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
}
