package mpmd

import (
	"os"

	"repro/internal/machine"
	"repro/internal/transport/netlive"
)

// NetOptions tune the sharded multi-process backend (see NewNetMachine).
// The zero value runs every node in this process (loopback).
type NetOptions struct {
	// NodesPerShard is how many consecutive nodes share one OS process.
	// Zero (or >= n) keeps everything in-process.
	NodesPerShard int
	// Live tunes in-shard execution (watchdog, OS-thread pinning, batching).
	Live LiveOptions
	// NoSpawn stops the parent from re-exec'ing worker processes; workers
	// are then launched externally with MPMD_NETLIVE_SHARD/_DIR set.
	NoSpawn bool
	// ChildArgs overrides the re-exec argument vector (default: this
	// process's own arguments — the SPMD launch model).
	ChildArgs []string
}

// NetInfo describes this process's place in a sharded machine.
type NetInfo struct {
	// Shards is the number of OS processes the machine spans.
	Shards int
	// Shard is this process's index; 0 is the parent.
	Shard int
	// Worker reports whether this process is a re-exec'd (or externally
	// launched) peer shard rather than the parent.
	Worker bool
	// LocalNodes are the machine nodes executing in this process.
	LocalNodes []int
}

// ExitIfWorker terminates a worker process once its shard's Run has
// completed, so the code after Run — report printing, result collection —
// executes only in the parent. err (normally the value returned by Run)
// selects the exit status. No-op in the parent.
func (i *NetInfo) ExitIfWorker(err error) {
	if !i.Worker {
		return
	}
	if err != nil {
		os.Exit(1)
	}
	os.Exit(0)
}

// NewNetMachine builds a multicomputer whose n nodes are sharded across OS
// processes connected by Unix-domain sockets — the live backend's semantics
// per shard, real serialized Active-Messages frames between shards.
//
// Every process must execute the identical program up to Run (register the
// same classes, create the same objects, install the same node programs):
// the parent re-execs its own binary for the worker shards, and each process
// runs only its local nodes' programs while serving remote invocations.
// After Run, call NetInfo.ExitIfWorker so workers do not fall through into
// parent-only reporting code.
func NewNetMachine(cfg Config, n int, o NetOptions) (*Machine, *NetInfo, error) {
	be, err := netlive.New(n, netlive.Options{
		NodesPerShard: o.NodesPerShard,
		Live:          o.Live,
		NoSpawn:       o.NoSpawn,
		ChildArgs:     o.ChildArgs,
	})
	if err != nil {
		return nil, nil, err
	}
	info := &NetInfo{
		Shards:     be.NumShards(),
		Shard:      be.Shard(),
		Worker:     be.Shard() != 0,
		LocalNodes: be.LocalNodes(),
	}
	return machine.NewWithBackend(cfg, n, be), info, nil
}

// NetWorkerEnv reports whether this process was launched as a netlive worker
// (the re-exec environment is set) — useful before any machine exists.
func NetWorkerEnv() bool { return os.Getenv(netlive.EnvShard) != "" }
