package mpmd_test

import (
	"testing"
	"time"

	"repro/internal/machine"
	"repro/mpmd"
)

// TestPinnedTypedSequence pins the full modelled accounting of one
// end-to-end typed program to golden values captured before the
// zero-allocation wire-path refactor (pooled buffers, compiled codecs, ring
// inboxes). The refactor's invariant is that it moves no modelled cost: the
// machine's total virtual time, every counter the paper's tables are built
// from, and the stub-cache/persistent-buffer statistics must stay exactly
// where the calibrated implementation put them.
//
// The sequence exercises every warm/cold wire path the typed surface has:
// cold and warm null RMIs, warm argument marshalling, return values, an
// async call, and a one-way call, across three nodes.
func TestPinnedTypedSequence(t *testing.T) {
	const (
		wantTotal = 2714300 * time.Nanosecond
		wantValue = 130
	)
	wantCounters := map[machine.Cnt]int64{
		machine.CntRMI:          23,
		machine.CntRMICold:      4,
		machine.CntStubHit:      19,
		machine.CntStubMiss:     4,
		machine.CntBufAlloc:     4,
		machine.CntBufReuse:     19,
		machine.CntMsgShort:     34,
		machine.CntMsgBulk:      15,
		machine.CntBytesSent:    2520,
		machine.CntHandlersRun:  49,
		machine.CntThreadCreate: 0,
	}

	m := mpmd.NewMachine(mpmd.SPConfig(), 3)
	rt := mpmd.NewRuntime(m)
	if err := mpmd.RegisterClass[parityCounter](rt); err != nil {
		t.Fatal(err)
	}
	c1, err := mpmd.NewObject[parityCounter](rt, 1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := mpmd.NewObject[parityCounter](rt, 2)
	if err != nil {
		t.Fatal(err)
	}
	var got int64
	rt.OnNode(0, func(th *mpmd.Thread) {
		// Cold then warm null RMIs to two distinct nodes.
		for i := 0; i < 5; i++ {
			if _, err := mpmd.Invoke[mpmd.Void, mpmd.Void](th, c1, "Nop", mpmd.Void{}); err != nil {
				panic(err)
			}
			if _, err := mpmd.Invoke[mpmd.Void, mpmd.Void](th, c2, "Nop", mpmd.Void{}); err != nil {
				panic(err)
			}
		}
		// Warm argument marshalling (bulk path) and a one-way store.
		for i := 0; i < 10; i++ {
			if _, err := mpmd.Invoke[int64, mpmd.Void](th, c1, "Add", int64(i)); err != nil {
				panic(err)
			}
		}
		if err := mpmd.InvokeOneWay(th, c1, "Add", int64(85)); err != nil {
			panic(err)
		}
		// An async call joined later, then the synchronous read-back.
		fu, err := mpmd.InvokeAsync[mpmd.Void, mpmd.Void](th, c1, "Nop", mpmd.Void{})
		if err != nil {
			panic(err)
		}
		fu.Wait(th)
		v, err := mpmd.Invoke[mpmd.Void, int64](th, c1, "Get", mpmd.Void{})
		if err != nil {
			panic(err)
		}
		got = v
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got != wantValue {
		t.Errorf("counter value %d, want %d", got, wantValue)
	}
	if total := m.Eng.Now(); total != wantTotal {
		t.Errorf("machine virtual total %v, want %v (wire-path refactor moved modelled cost)", total, wantTotal)
	}
	snap := m.Snapshot()
	for name, want := range wantCounters {
		if gotC := snap.Counters[name]; gotC != want {
			t.Errorf("counter %s = %d, want %d", name, gotC, want)
		}
	}
	hits, misses := rt.StubCacheStats()
	if hits != wantCounters[machine.CntStubHit] || misses != wantCounters[machine.CntStubMiss] {
		t.Errorf("stub cache hits/misses %d/%d, want %d/%d",
			hits, misses, wantCounters[machine.CntStubHit], wantCounters[machine.CntStubMiss])
	}
	allocs, reuses := rt.BufStats()
	if allocs != wantCounters[machine.CntBufAlloc] || reuses != wantCounters[machine.CntBufReuse] {
		t.Errorf("persistent buffers alloc/reuse %d/%d, want %d/%d",
			allocs, reuses, wantCounters[machine.CntBufAlloc], wantCounters[machine.CntBufReuse])
	}
}
