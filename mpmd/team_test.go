package mpmd_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/mpmd"
)

// teamMachine builds an n-node machine on the requested backend.
func teamMachine(n int, live bool) *mpmd.Machine {
	if live {
		return mpmd.NewMachineWithBackend(mpmd.SPConfig(), n,
			mpmd.NewLiveBackend(n, mpmd.LiveOptions{Watchdog: 30 * time.Second}))
	}
	return mpmd.NewMachine(mpmd.SPConfig(), n)
}

// runWorld runs prog on every node of a fresh world team.
func runWorld(t *testing.T, n int, live bool, prog func(tm *mpmd.Team, th *mpmd.Thread, me int)) {
	t.Helper()
	m := teamMachine(n, live)
	rt := mpmd.NewRuntime(m)
	tm, err := mpmd.WorldTeam(rt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		i := i
		rt.OnNode(i, func(th *mpmd.Thread) { prog(tm, th, i) })
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
}

func onBackends(t *testing.T, fn func(t *testing.T, live bool)) {
	t.Run("sim", func(t *testing.T) { fn(t, false) })
	t.Run("live", func(t *testing.T) { fn(t, true) })
}

// TestTeamCollectivesTyped drives every typed collective through the public
// surface on both backends, on a non-power-of-two team.
func TestTeamCollectivesTyped(t *testing.T) {
	onBackends(t, func(t *testing.T, live bool) {
		const n = 5
		type stats struct {
			Sum   int64
			Label string
		}
		bcasts := make([]stats, n)
		sums := make([]int64, n)
		maxs := make([]float64, n)
		gathered := make([][]string, n)
		scattered := make([]int64, n)
		runWorld(t, n, live, func(tm *mpmd.Team, th *mpmd.Thread, me int) {
			check := func(err error) {
				if err != nil {
					t.Error(err)
				}
			}
			// Struct broadcast from rank 2.
			v, err := mpmd.Broadcast(th, tm, 2, stats{Sum: int64(me * 100), Label: "from-2"})
			check(err)
			bcasts[me] = v
			// Integer all-reduce (exact), float max.
			s, err := mpmd.AllReduce(th, tm, int64(me+1), mpmd.Sum[int64])
			check(err)
			sums[me] = s
			mx, err := mpmd.AllReduce(th, tm, float64(me)*1.5, mpmd.Max[float64])
			check(err)
			maxs[me] = mx
			// String all-gather.
			g, err := mpmd.AllGather(th, tm, string(rune('a'+me)))
			check(err)
			gathered[me] = g
			// Scatter from the last rank.
			var all []int64
			if tm.Rank(th) == n-1 {
				all = make([]int64, n)
				for i := range all {
					all[i] = int64(10 * (i + 1))
				}
			}
			sc, err := mpmd.Scatter(th, tm, n-1, all)
			check(err)
			scattered[me] = sc
			check(tm.Barrier(th))
		})
		for me := 0; me < n; me++ {
			if bcasts[me] != (stats{Sum: 200, Label: "from-2"}) {
				t.Errorf("member %d: broadcast got %+v", me, bcasts[me])
			}
			if sums[me] != n*(n+1)/2 {
				t.Errorf("member %d: sum %d, want %d", me, sums[me], n*(n+1)/2)
			}
			if maxs[me] != float64(n-1)*1.5 {
				t.Errorf("member %d: max %v, want %v", me, maxs[me], float64(n-1)*1.5)
			}
			for r, s := range gathered[me] {
				if s != string(rune('a'+r)) {
					t.Errorf("member %d: allgather[%d]=%q", me, r, s)
				}
			}
			if scattered[me] != int64(10*(me+1)) {
				t.Errorf("member %d: scattered %d, want %d", me, scattered[me], 10*(me+1))
			}
		}
	})
}

// TestTeamSplitTyped checks sub-team isolation through the public surface.
func TestTeamSplitTyped(t *testing.T) {
	onBackends(t, func(t *testing.T, live bool) {
		const n = 6
		subSums := make([]int64, n)
		worldSums := make([]int64, n)
		runWorld(t, n, live, func(tm *mpmd.Team, th *mpmd.Thread, me int) {
			sub, err := tm.Split(th, me%3, me)
			if err != nil {
				t.Error(err)
				return
			}
			s, err := mpmd.AllReduce(th, sub, int64(me), mpmd.Sum[int64])
			if err != nil {
				t.Error(err)
				return
			}
			subSums[me] = s
			w, err := mpmd.AllReduce(th, tm, int64(1), mpmd.Sum[int64])
			if err != nil {
				t.Error(err)
				return
			}
			worldSums[me] = w
		})
		for me := 0; me < n; me++ {
			want := int64(me%3 + me%3 + 3) // the two members with this color
			if subSums[me] != want {
				t.Errorf("member %d: subteam sum %d, want %d", me, subSums[me], want)
			}
			if worldSums[me] != n {
				t.Errorf("member %d: world sum %d, want %d", me, worldSums[me], n)
			}
		}
	})
}

// TestCollectiveMisuse exercises the error paths: non-member calls, bad
// roots, pre-run calls, unmarshallable types.
func TestCollectiveMisuse(t *testing.T) {
	m := mpmd.NewMachine(mpmd.SPConfig(), 3)
	rt := mpmd.NewRuntime(m)
	tm, err := mpmd.WorldTeam(rt)
	if err != nil {
		t.Fatal(err)
	}
	if err := tm.Barrier(nil); err == nil {
		t.Error("Barrier outside a running program did not error")
	}
	errs := make(chan error, 8)
	rt.OnNode(0, func(th *mpmd.Thread) {
		sub, err := tm.Split(th, 0, 0)
		if err != nil {
			errs <- err
			return
		}
		_ = sub
		if _, err := mpmd.Broadcast(th, tm, 7, 1.0); err == nil {
			t.Error("Broadcast with out-of-range root did not error")
		}
		type bad struct{ Ch chan int }
		if _, err := mpmd.AllReduce(th, tm, bad{}, func(a, b bad) bad { return a }); err == nil {
			t.Error("AllReduce of unmarshallable type did not error")
		}
		var nilTeam *mpmd.Team
		if err := nilTeam.Barrier(th); err == nil {
			t.Error("Barrier on nil team did not error")
		}
		// Make the remaining members' Split complete.
		errs <- nil
	})
	for i := 1; i < 3; i++ {
		i := i
		rt.OnNode(i, func(th *mpmd.Thread) {
			if _, err := tm.Split(th, 0, i); err != nil {
				errs <- err
			}
			// A non-member thread cannot use a foreign subteam; checked via
			// Rank below (worlds include everyone, so build a subteam of
			// nodes 1,2 and let node 0's misuse be caught above).
		})
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	close(errs)
	for e := range errs {
		if e != nil {
			t.Error(e)
		}
	}
}

// TestNonMemberCollective: a thread on a node outside the team gets an
// error, not a hang.
func TestNonMemberCollective(t *testing.T) {
	const n = 4
	m := mpmd.NewMachine(mpmd.SPConfig(), n)
	rt := mpmd.NewRuntime(m)
	world, err := mpmd.WorldTeam(rt)
	if err != nil {
		t.Fatal(err)
	}
	var subErr error
	for i := 0; i < n; i++ {
		i := i
		rt.OnNode(i, func(th *mpmd.Thread) {
			color := 0
			if i == 3 {
				color = 1
			}
			sub, err := world.Split(th, color, i)
			if err != nil {
				t.Error(err)
				return
			}
			if i == 3 {
				// Node 3's team is {3}; using the 0-2 team must fail. It
				// cannot have a reference to it in this program shape, so
				// check the rank query contract instead.
				if sub.Size() != 1 || sub.Rank(th) != 0 {
					t.Errorf("singleton team wrong: size %d rank %d", sub.Size(), sub.Rank(th))
				}
				if world.RankOfNode(99) != -1 {
					t.Error("RankOfNode(99) != -1")
				}
				return
			}
			if got := sub.RankOfNode(3); got != -1 {
				subErr = err
				t.Errorf("node 3 has rank %d in the 0-2 subteam", got)
			}
		})
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if subErr != nil {
		t.Error(subErr)
	}
}

// TestCollectivePropertyRoundTrips is the randomized acceptance property:
// tree Reduce/AllReduce match a sequential fold, and Scatter+Gather
// round-trip the identity, on random inputs and team sizes including
// non-powers of two.
func TestCollectivePropertyRoundTrips(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8) // team sizes 2..9
		root := rng.Intn(n)
		ints := make([]int64, n)
		floats := make([]float64, n)
		var wantSum int64
		wantMin := math.Inf(1)
		for i := range ints {
			ints[i] = int64(rng.Intn(2000) - 1000)
			wantSum += ints[i]
			floats[i] = rng.NormFloat64()
			if floats[i] < wantMin {
				wantMin = floats[i]
			}
		}
		scatterIn := make([]int64, n)
		for i := range scatterIn {
			scatterIn[i] = rng.Int63()
		}

		m := mpmd.NewMachine(mpmd.SPConfig(), n)
		rt := mpmd.NewRuntime(m)
		tm, err := mpmd.WorldTeam(rt)
		if err != nil {
			return false
		}
		ok := true
		fail := func() { ok = false }
		for i := 0; i < n; i++ {
			i := i
			rt.OnNode(i, func(th *mpmd.Thread) {
				// Reduce to a random root: exact integer fold.
				red, atRoot, err := mpmd.Reduce(th, tm, root, ints[i], mpmd.Sum[int64])
				if err != nil || atRoot != (i == tm.Node(root)) {
					fail()
					return
				}
				if atRoot && red != wantSum {
					fail()
				}
				// AllReduce min: exact (min is order-independent).
				mn, err := mpmd.AllReduce(th, tm, floats[i], mpmd.Min[float64])
				if err != nil || mn != wantMin {
					fail()
				}
				// Scatter then Gather must round-trip the identity.
				var all []int64
				if tm.Rank(th) == root {
					all = scatterIn
				}
				mine, err := mpmd.Scatter(th, tm, root, all)
				if err != nil {
					fail()
					return
				}
				back, atRoot2, err := mpmd.Gather(th, tm, root, mine)
				if err != nil {
					fail()
					return
				}
				if atRoot2 {
					for r := range back {
						if back[r] != scatterIn[r] {
							fail()
						}
					}
				}
			})
		}
		if err := rt.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
