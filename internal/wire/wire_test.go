package wire

import (
	"testing"
)

func TestGetSizesAndClasses(t *testing.T) {
	for _, n := range []int{0, 1, 255, 256, 257, 1024, 70000, 1 << 20} {
		b := Get(n)
		if b.Len() != n {
			t.Fatalf("Get(%d).Len() = %d", n, b.Len())
		}
		if len(b.Bytes()) != n {
			t.Fatalf("Get(%d) Bytes length %d", n, len(b.Bytes()))
		}
		b.Release()
	}
}

func TestCopy(t *testing.T) {
	src := []byte("hello wire path")
	b := Copy(src)
	src[0] = 'X'
	if string(b.Bytes()) != "hello wire path" {
		t.Fatalf("Copy aliases the source: %q", b.Bytes())
	}
	b.Release()
}

func TestRefcountLifecycle(t *testing.T) {
	b := Get(64)
	b.Retain()
	b.Release()
	b.Release() // recycles
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("over-release did not panic")
			}
		}()
		b.Release()
	}()
}

func TestRecycleReuse(t *testing.T) {
	b := Get(100)
	p := &b.data[0]
	b.Release()
	c := Get(200) // same class (256)
	if &c.data[0] != p {
		t.Skip("pool did not hand back the same buffer (GC or scheduling); nothing to assert")
	}
	if c.Len() != 200 {
		t.Fatalf("recycled buffer Len %d, want 200", c.Len())
	}
	c.Release()
}

func TestRingFIFO(t *testing.T) {
	var r Ring[int]
	if _, ok := r.Pop(); ok {
		t.Fatal("Pop on empty ring reported ok")
	}
	// Interleave pushes and pops so the ring wraps repeatedly.
	next, want := 0, 0
	for round := 0; round < 50; round++ {
		for i := 0; i < round%7+1; i++ {
			r.Push(next)
			next++
		}
		for r.Len() > round%3 {
			v, ok := r.Pop()
			if !ok {
				t.Fatal("Pop failed with elements queued")
			}
			if v != want {
				t.Fatalf("popped %d, want %d (FIFO violated)", v, want)
			}
			want++
		}
	}
	for {
		v, ok := r.Pop()
		if !ok {
			break
		}
		if v != want {
			t.Fatalf("drain popped %d, want %d", v, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("drained %d elements, pushed %d", want, next)
	}
}

func TestRingPopZeroesSlot(t *testing.T) {
	var r Ring[*int]
	x := 7
	r.Push(&x)
	if v, ok := r.Pop(); !ok || *v != 7 {
		t.Fatal("bad pop")
	}
	if r.buf[0] != nil {
		t.Fatal("popped slot not zeroed; payload leaks through backing array")
	}
}

// TestRingShrinksOnDrain: a burst grows the backing array; sustained low
// traffic afterwards releases the capacity instead of pinning the burst's
// peak memory for the life of the queue. (A single fill/drain cycle keeps
// its capacity — that is the anti-thrash hysteresis, also asserted here.)
func TestRingShrinksOnDrain(t *testing.T) {
	var r Ring[int]
	const burst = 4096
	for i := 0; i < burst; i++ {
		r.Push(i)
	}
	peak := r.Cap()
	if peak < burst {
		t.Fatalf("cap %d after %d pushes", peak, burst)
	}
	for i := 0; i < burst; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d: got %d,%v", i, v, ok)
		}
	}
	// One deep drain alone must not thrash the capacity away...
	if c := r.Cap(); c < peak/2 {
		t.Fatalf("cap collapsed to %d during a single drain (peak %d): shrink too eager", c, peak)
	}
	// ...but steady low-occupancy traffic walks it back down to the floor.
	seq := burst
	for i := 0; i < 16*peak; i++ {
		r.Push(seq)
		if v, ok := r.Pop(); !ok || v != seq {
			t.Fatalf("cycle %d: got %d,%v want %d", i, v, ok, seq)
		}
		seq++
		if r.Cap() == minRingCap {
			break
		}
	}
	if c := r.Cap(); c != minRingCap {
		t.Fatalf("cap still %d after sustained low occupancy (peak %d): burst memory pinned", c, peak)
	}
	// The queue must remain fully usable after shrinking.
	for i := 0; i < 100; i++ {
		r.Push(i)
	}
	for i := 0; i < 100; i++ {
		if v, ok := r.Pop(); !ok || v != i {
			t.Fatalf("post-shrink pop %d: got %d,%v", i, v, ok)
		}
	}
}

// TestRingShrinkPreservesOrderAcrossWrap: shrink with a wrapped head keeps
// FIFO order intact.
func TestRingShrinkPreservesOrderAcrossWrap(t *testing.T) {
	var r Ring[int]
	seq := 0
	// Wrap the head: push/pop cycles leave head mid-array.
	for i := 0; i < 3*minRingCap/2; i++ {
		r.Push(i)
	}
	for i := 0; i < minRingCap; i++ {
		v, _ := r.Pop()
		if v != seq {
			t.Fatalf("got %d want %d", v, seq)
		}
		seq++
	}
	// Grow big, then drain and check order the whole way down.
	base := 3 * minRingCap / 2
	for i := 0; i < 2048; i++ {
		r.Push(base + i)
	}
	for {
		v, ok := r.Pop()
		if !ok {
			break
		}
		if v != seq {
			t.Fatalf("got %d want %d (cap %d)", v, seq, r.Cap())
		}
		seq++
	}
}

// TestSlotBindLifecycle: a slot-backed Buf aliases the bound memory (writes
// through Bytes land in the caller's region), Release severs the alias, and
// the same Buf rebinds cleanly for the next frame.
func TestSlotBindLifecycle(t *testing.T) {
	region := make([]byte, 32)
	b := NewSlot()
	b.Bind(region[:16])
	if b.Len() != 16 {
		t.Fatalf("bound Len = %d, want 16", b.Len())
	}
	copy(b.Bytes(), "slot-backed frame")
	if string(region[:11]) != "slot-backed" {
		t.Fatalf("write did not land in the bound region: %q", region[:11])
	}
	b.Release()
	if b.data != nil || b.n != 0 {
		t.Fatal("Release left the alias intact; stale use would read a reused ring slot")
	}
	b.Bind(region[16:])
	if b.Len() != 16 || &b.Bytes()[0] != &region[16] {
		t.Fatal("rebind after Release did not alias the new region")
	}
	b.Release()
}

// TestSlotRetainPanics: ring slot memory cannot outlive its frame, so
// Retain on a slot-backed Buf must fail loudly instead of handing out a
// reference the producer will overwrite.
func TestSlotRetainPanics(t *testing.T) {
	b := NewSlot()
	b.Bind(make([]byte, 8))
	defer func() {
		if recover() == nil {
			t.Fatal("Retain on a slot-backed buffer did not panic")
		}
	}()
	b.Retain()
}

// TestSlotBindOnPooledPanics: Bind is slot-only; pointing a pooled buffer at
// foreign memory would leak the pooled backing store and recycle the
// foreign bytes.
func TestSlotBindOnPooledPanics(t *testing.T) {
	b := Get(8)
	defer b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("Bind on a pooled buffer did not panic")
		}
	}()
	b.Bind(make([]byte, 8))
}
