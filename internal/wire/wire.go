// Package wire owns the allocation-free plumbing of the message path:
// pooled, reference-counted payload buffers and the ring queues the machine
// and live-transport layers build their inboxes from.
//
// # Ownership discipline
//
// A Buf is acquired with Get (reference count 1) and travels the wire path
// by ownership transfer: whoever holds the last reference calls Release,
// which recycles the buffer into a size-classed sync.Pool. The contract each
// layer follows (documented in DESIGN.md's "wire-path ownership discipline"
// section):
//
//   - The sender marshals into a fresh Buf and transfers it to the message
//     layer; after the send call returns, the sender must not touch it.
//   - The receiving handler may read the payload only during its
//     run-to-completion execution. The message layer releases the buffer
//     when the handler returns.
//   - A handler that needs the bytes after returning (for example to hand
//     them to a freshly spawned thread) must Retain the buffer and Release
//     it when done — or copy the bytes out.
//
// Violations are observable: a recycled buffer is handed to a later sender,
// so a stale reader races with the new writer and the race detector (or the
// conformance suite's payload-recycling case) reports it.
package wire

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// classSizes are the pooled buffer capacities. Payloads above the largest
// class are allocated directly and not recycled (rare: the static buffer
// area itself is only 64 KiB).
var classSizes = [...]int{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10}

var pools [len(classSizes)]sync.Pool

// Buf is a pooled, reference-counted payload buffer.
type Buf struct {
	data  []byte // full-capacity backing store
	n     int    // current payload length
	class int8   // pool index; -1 oversize (not recycled), -2 slot-backed
	refs  atomic.Int32
}

// classSlot marks a slot-backed Buf: the data slice aliases externally
// owned memory (a shared-memory ring slot) bound with Bind. Never pooled —
// Release only severs the alias.
const classSlot = -2

// Get returns a buffer holding n payload bytes (contents undefined) with a
// reference count of one.
//
//mpmd:coldpath allocates only on a pool miss; the steady state recycles pooled buffers
func Get(n int) *Buf {
	for i, size := range classSizes {
		if n <= size {
			b, _ := pools[i].Get().(*Buf)
			if b == nil {
				b = &Buf{data: make([]byte, size), class: int8(i)}
			}
			b.n = n
			b.refs.Store(1)
			return b
		}
	}
	b := &Buf{data: make([]byte, n), class: -1}
	b.n = n
	b.refs.Store(1)
	return b
}

// NewSlot returns an unbound slot-backed buffer. Unlike Get, the returned
// Buf owns no memory of its own: Bind points it at an externally owned byte
// region (a shared-memory ring slot), giving the same Buf the transport
// layers marshal into, but with the frame bytes landing directly in the
// slot. The intended lifecycle is one Bind/marshal/Release per frame, with
// the same slot Buf reused across frames — a slot-backed send allocates
// nothing after the one-time NewSlot.
func NewSlot() *Buf {
	return &Buf{class: classSlot}
}

// Bind points a slot-backed buffer (NewSlot) at p with a reference count of
// one. The caller owns p's memory and must guarantee it stays valid — and
// unreused — until the matching final Release; for a ring slot that is the
// producer-side publish protocol's job.
func (b *Buf) Bind(p []byte) {
	if b.class != classSlot {
		panic("wire: Bind on a pooled buffer (only NewSlot buffers bind external memory)")
	}
	b.data = p
	b.n = len(p)
	b.refs.Store(1)
}

// Copy returns a buffer initialized to a copy of p.
func Copy(p []byte) *Buf {
	b := Get(len(p))
	copy(b.data, p)
	return b
}

// Bytes returns the payload as a slice of length Len. The slice is valid
// only while the caller holds a reference.
func (b *Buf) Bytes() []byte { return b.data[:b.n] }

// Len returns the payload length.
func (b *Buf) Len() int { return b.n }

// Retain adds a reference. Slot-backed buffers cannot be retained: their
// bytes live in a ring slot the producer reuses as soon as the cursor
// advances, so a reference held past the send would alias a later frame —
// callers that need the bytes must copy them out.
func (b *Buf) Retain() {
	if b.class == classSlot {
		panic("wire: Retain of slot-backed buffer (ring slot memory cannot outlive its frame; copy instead)")
	}
	if b.refs.Add(1) <= 1 {
		panic("wire: Retain of released buffer")
	}
}

// Release drops a reference; the last release recycles the buffer. Using
// the buffer after the final Release is a use-after-free on the pooled
// backing store.
func (b *Buf) Release() {
	switch r := b.refs.Add(-1); {
	case r > 0:
		return
	case r < 0:
		panic(fmt.Sprintf("wire: buffer over-released (refs %d)", r))
	}
	if b.class >= 0 {
		pools[b.class].Put(b)
	} else if b.class == classSlot {
		// Sever the alias so a stale use after Release fails loudly (nil
		// backing store) instead of silently reading a reused ring slot.
		b.data = nil
		b.n = 0
	}
}

// Ring is an unbounded FIFO queue over a circular slice: push appends, pop
// removes from the front, both O(1) with amortized growth — the head-index
// replacement for the shift-on-pop queues the inbox and notify paths used
// to run (O(n²) to drain, one slide per pop). The zero value is ready to
// use. Not safe for concurrent use; callers hold their own locks.
type Ring[T any] struct {
	buf  []T
	head int
	n    int
	// low counts consecutive pops that observed occupancy below a quarter
	// of the backing array — the shrink hysteresis (see Pop).
	low int
}

// Len reports the number of queued elements.
func (r *Ring[T]) Len() int { return r.n }

// Push appends v at the tail, growing the backing slice when full.
func (r *Ring[T]) Push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
}

// Pop removes and returns the head element; ok is false when empty. The
// vacated slot is zeroed so popped payloads do not leak through the backing
// array.
//
// Shrink policy: one burst must not pin its peak memory for the life of the
// queue, but a fill/drain cycle must not thrash either (halving eagerly at
// ¼ occupancy made every deep drain pay reallocation and copy — a measured
// 2× regression in the inbox drain benchmark). So the backing array halves
// only after *sustained* low occupancy: a full capacity's worth of
// consecutive pops all observing the queue below a quarter full. A single
// deep drain never trips it; steady low traffic over an oversized ring
// walks the capacity back down to the floor, one cheap halving at a time.
func (r *Ring[T]) Pop() (v T, ok bool) {
	if r.n == 0 {
		return v, false
	}
	v = r.buf[r.head]
	var zero T
	r.buf[r.head] = zero
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	if len(r.buf) > minRingCap {
		if r.n < len(r.buf)/4 {
			if r.low++; r.low > len(r.buf) {
				r.resize(len(r.buf) / 2)
				r.low = 0
			}
		} else {
			r.low = 0
		}
	}
	return v, true
}

// Cap reports the backing array's capacity (tests; shrink observability).
func (r *Ring[T]) Cap() int { return len(r.buf) }

// minRingCap is the smallest backing array the shrink path keeps (and the
// smallest growth target), so a queue oscillating around a few elements
// never reallocates in either direction.
const minRingCap = 64

func (r *Ring[T]) grow() {
	r.resize(max(minRingCap, 2*len(r.buf)))
	r.low = 0
}

// resize moves the queued elements into a backing array of the given size
// (which must hold them) with the head rewound to 0.
//
//mpmd:coldpath amortized capacity change; the steady state stays within the backing array
func (r *Ring[T]) resize(size int) {
	next := make([]T, size)
	for i := 0; i < r.n; i++ {
		next[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = next
	r.head = 0
}
