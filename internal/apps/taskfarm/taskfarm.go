// Package taskfarm is an extension experiment beyond the paper's evaluation,
// testing the claim its introduction only asserts: that the MPMD model "is
// well suited for applications that exhibit irregular or unknown
// communication patterns, or that can benefit from a 'client-server' type of
// setting", even though its per-message costs are higher.
//
// The workload is a bag of independent tasks with a heavily skewed,
// unpredictable cost distribution (a deterministic pseudo-random pareto-like
// mix). Two scheduling disciplines compete:
//
//   - Split-C (SPMD): tasks are partitioned statically and processors meet
//     at a barrier — the natural expression in a model where "a fixed number
//     of identical programs … communicate with one another at well defined
//     points in time". Skew shows up as idle time at the barrier.
//   - CC++ (MPMD): a master object hands out tasks on demand via RMI
//     ("client-server"); workers pull whenever they run dry. Each pull costs
//     a full RMI round trip, but no processor waits on another's tail task.
//
// With enough skew the dynamic schedule wins despite MPMD's per-message
// premium — quantifying the software-structure argument the paper makes
// qualitatively.
package taskfarm

import (
	"math/rand"
	"time"

	"repro/internal/apps/appstat"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/splitc"
	"repro/internal/threads"
)

// Params configures a task-farm run.
type Params struct {
	// Tasks is the number of independent tasks.
	Tasks int
	// Procs is the number of processors (workers; the CC++ master shares
	// node 0 with a worker).
	Procs int
	// MeanCost is the average task compute time.
	MeanCost time.Duration
	// Skew shapes the distribution: 0 = uniform costs; larger values
	// concentrate total work in fewer, heavier tasks.
	Skew float64
	// Seed makes the workload deterministic.
	Seed int64
}

// Workload is the realized task list (costs and payload values).
type Workload struct {
	P     Params
	Costs []time.Duration
	Vals  []float64
}

// Build realizes the task list. Task costs are *spatially correlated*, as in
// adaptive codes where refinement concentrates work in one region of the
// domain: a fraction (1-Skew) of the total work is spread uniformly, and the
// remaining Skew fraction sits in a bump around 70% of the index space. A
// block-partitioned SPMD schedule assigns the bump to one unlucky processor;
// a dynamic scheduler packs around it.
func Build(p Params) *Workload {
	rng := rand.New(rand.NewSource(p.Seed))
	w := &Workload{P: p}
	base := float64(p.MeanCost) * (1 - p.Skew)
	const center, width = 0.7, 0.06
	// Normalize the bump so its integral over the task indices is 1.
	norm := 0.0
	for i := 0; i < p.Tasks; i++ {
		norm += bump(float64(i)/float64(p.Tasks), center, width)
	}
	for i := 0; i < p.Tasks; i++ {
		x := float64(i) / float64(p.Tasks)
		cost := base * (0.5 + rng.Float64()) // uniform part, jittered
		cost += float64(p.MeanCost) * p.Skew * float64(p.Tasks) * bump(x, center, width) / norm
		w.Costs = append(w.Costs, time.Duration(cost))
		w.Vals = append(w.Vals, rng.Float64())
	}
	return w
}

// bump is an unnormalized smooth peak at c with the given width.
func bump(x, c, width float64) float64 {
	d := (x - c) / width
	return 1 / (1 + d*d*d*d)
}

// TotalWork sums the task costs.
func (w *Workload) TotalWork() time.Duration {
	var t time.Duration
	for _, c := range w.Costs {
		t += c
	}
	return t
}

// result of processing one task: a deterministic function of its value, so
// both schedulers must produce the same reduction.
func process(v float64) float64 { return v*v + 1 }

// Checksum is the reduction over all task results.
func (w *Workload) Checksum() float64 {
	s := 0.0
	for _, v := range w.Vals {
		s += process(v)
	}
	return s
}

// RunSplitC executes the static-partition SPMD schedule: processor p takes
// the contiguous block of tasks [p*T/P, (p+1)*T/P) — the natural
// locality-preserving SPMD decomposition — everyone meets at a barrier, and
// partial sums are combined with atomic adds.
func RunSplitC(cfg machine.Config, w *Workload) (*appstat.Result, error) {
	m := machine.New(cfg, w.P.Procs)
	world := splitc.New(m)
	res := &appstat.Result{Lang: "split-c", Variant: "static", Work: int64(w.P.Tasks)}
	var starts []machine.Snapshot
	var startT time.Duration
	sum := 0.0

	err := world.Run(func(p *splitc.Proc) {
		me := p.MyPC()
		p.Barrier()
		if me == 0 {
			startT = time.Duration(p.T.Now())
			starts = starts[:0]
			for _, nd := range m.Nodes() {
				starts = append(starts, nd.Acct.Snapshot())
			}
		}
		p.Barrier()

		partial := 0.0
		lo := me * w.P.Tasks / w.P.Procs
		hi := (me + 1) * w.P.Tasks / w.P.Procs
		for i := lo; i < hi; i++ {
			p.T.Compute(w.Costs[i])
			partial += process(w.Vals[i])
		}
		if me == 0 {
			sum += partial
		} else {
			p.AtomicAdd(splitc.GPF{PC: 0, P: &sum}, partial)
			p.Sync()
		}
		p.Barrier()

		if me == 0 {
			var deltas []machine.Snapshot
			for i, nd := range m.Nodes() {
				deltas = append(deltas, nd.Acct.Delta(starts[i]))
			}
			res.Measure(startT, time.Duration(p.T.Now()), deltas)
			res.Checksum = sum
		}
	})
	return res, err
}

// master is the CC++ processor object that owns the bag of tasks and the
// running total.
type master struct {
	w    *Workload
	next int
	sum  float64
	done int
}

func masterClass() *core.Class {
	return &core.Class{
		Name: "Master",
		New:  func() any { return &master{} },
		Methods: []*core.Method{
			{
				// take(n) hands out up to n task indices ([first,count]);
				// count 0 means the bag is empty.
				Name:     "take",
				Threaded: true,
				Atomic:   true,
				NewArgs:  func() []core.Arg { return []core.Arg{&core.I64{}} },
				NewRet:   func() core.Arg { return &core.F64Slice{} },
				Fn: func(t *threads.Thread, self any, args []core.Arg, ret core.Arg) {
					mst := self.(*master)
					n := int(args[0].(*core.I64).V)
					remain := mst.w.P.Tasks - mst.next
					if n > remain {
						n = remain
					}
					ret.(*core.F64Slice).V = []float64{float64(mst.next), float64(n)}
					mst.next += n
				},
			},
			{
				// report(partial, count) folds a worker's contribution in.
				Name:     "report",
				Threaded: true,
				Atomic:   true,
				NewArgs:  func() []core.Arg { return []core.Arg{&core.F64{}, &core.I64{}} },
				Fn: func(t *threads.Thread, self any, args []core.Arg, ret core.Arg) {
					mst := self.(*master)
					mst.sum += args[0].(*core.F64).V
					mst.done += int(args[1].(*core.I64).V)
				},
			},
		},
	}
}

// RunCCXX executes the dynamic MPMD schedule: node 0 is dedicated to the
// master object (in a polling, non-preemptive runtime a compute-bound node
// cannot serve scheduling requests promptly, so the master must not compute
// — itself an MPMD-style asymmetry no SPMD program can express), and nodes
// 1..P-1 run worker loops pulling task batches until the bag is empty. The
// dynamic schedule therefore starts a full worker down on the static one and
// pays an RMI per batch; it wins only when imbalance costs the static
// schedule more.
func RunCCXX(cfg machine.Config, w *Workload, batch int) (*appstat.Result, error) {
	if batch < 1 {
		batch = 1
	}
	m := machine.New(cfg, w.P.Procs)
	rt := core.NewRuntimeOpts(m, core.Options{})
	rt.RegisterClass(masterClass())
	gp := rt.CreateObject(0, "Master")
	mst := rt.Object(gp).(*master)
	mst.w = w
	bar := rt.NewBarrier(0, w.P.Procs)

	res := &appstat.Result{Lang: "cc++", Variant: "dynamic", Transport: rt.TransportName(), Work: int64(w.P.Tasks)}
	var starts []machine.Snapshot
	var startT time.Duration

	for pc := 0; pc < w.P.Procs; pc++ {
		me := pc
		rt.OnNode(me, func(t *threads.Thread) {
			bar.Arrive(t)
			if me == 0 {
				startT = time.Duration(t.Now())
				starts = starts[:0]
				for _, nd := range m.Nodes() {
					starts = append(starts, nd.Acct.Snapshot())
				}
			}
			bar.Arrive(t)

			if me != 0 {
				// Worker loop: pull, compute, repeat.
				partial := 0.0
				count := 0
				for {
					var grant core.F64Slice
					rt.Call(t, gp, "take", []core.Arg{&core.I64{V: int64(batch)}}, &grant)
					first, n := int(grant.V[0]), int(grant.V[1])
					if n == 0 {
						break
					}
					for i := first; i < first+n; i++ {
						t.Compute(w.Costs[i])
						partial += process(w.Vals[i])
						count++
					}
				}
				rt.Call(t, gp, "report", []core.Arg{&core.F64{V: partial}, &core.I64{V: int64(count)}}, nil)
			}
			bar.Arrive(t)

			if me == 0 {
				var deltas []machine.Snapshot
				for i, nd := range m.Nodes() {
					deltas = append(deltas, nd.Acct.Delta(starts[i]))
				}
				res.Measure(startT, time.Duration(t.Now()), deltas)
				res.Checksum = mst.sum
			}
		})
	}
	if err := rt.Run(); err != nil {
		return nil, err
	}
	return res, nil
}
