package taskfarm

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/machine"
)

func params(skew float64) Params {
	return Params{Tasks: 200, Procs: 4, MeanCost: 200 * time.Microsecond, Skew: skew, Seed: 9}
}

func TestWorkloadDeterministicAndConserved(t *testing.T) {
	a, b := Build(params(0.8)), Build(params(0.8))
	for i := range a.Costs {
		if a.Costs[i] != b.Costs[i] {
			t.Fatal("workload not deterministic")
		}
	}
	// Total work is within 2x of Tasks*MeanCost regardless of skew (the
	// tail redistributes mass, it should not mint much of it).
	for _, skew := range []float64{0, 0.4, 0.8, 0.95} {
		w := Build(params(skew))
		total := w.TotalWork()
		nominal := time.Duration(w.P.Tasks) * w.P.MeanCost
		if total < nominal/2 || total > nominal*2 {
			t.Errorf("skew %.2f: total work %v vs nominal %v", skew, total, nominal)
		}
	}
}

func TestSkewConcentratesWork(t *testing.T) {
	// At skew 0.9 the hot region (around 70% of the index space) must hold
	// most of the total work.
	w := Build(params(0.9))
	var region, sum time.Duration
	for i, c := range w.Costs {
		sum += c
		x := float64(i) / float64(len(w.Costs))
		if x > 0.5 && x < 0.9 {
			region += c
		}
	}
	if float64(region) < 0.6*float64(sum) {
		t.Fatalf("hot region holds only %.1f%% of the work", 100*float64(region)/float64(sum))
	}
	// Unskewed tasks stay within the uniform jitter band.
	flat := Build(params(0))
	for i, c := range flat.Costs {
		if c < flat.P.MeanCost/2 || c > flat.P.MeanCost*3/2 {
			t.Fatalf("unskewed task %d cost %v outside jitter band", i, c)
		}
	}
}

func TestBothSchedulesComputeSameResult(t *testing.T) {
	w := Build(params(0.8))
	want := w.Checksum()
	sc, err := RunSplitC(machine.SP1997(), w)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := RunCCXX(machine.SP1997(), w, 4)
	if err != nil {
		t.Fatal(err)
	}
	for name, got := range map[string]float64{"split-c": sc.Checksum, "cc++": cc.Checksum} {
		if math.Abs(got-want) > 1e-9*math.Abs(want) {
			t.Errorf("%s checksum %v, want %v", name, got, want)
		}
	}
}

func TestDynamicWinsUnderSkew(t *testing.T) {
	// The extension experiment's headline: with a skewed bag, the MPMD
	// dynamic schedule beats the SPMD static partition despite paying an
	// RMI round trip per batch.
	w := Build(params(0.9))
	sc, err := RunSplitC(machine.SP1997(), w)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := RunCCXX(machine.SP1997(), w, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cc.Elapsed >= sc.Elapsed {
		t.Fatalf("dynamic (%v) not faster than static (%v) at skew 0.9", cc.Elapsed, sc.Elapsed)
	}
}

func TestStaticWinsWhenUniform(t *testing.T) {
	// And the flip side: with uniform tasks the static schedule's zero
	// scheduling traffic wins — MPMD's premium only pays off under
	// irregularity, which is exactly the paper's framing.
	w := Build(params(0))
	sc, err := RunSplitC(machine.SP1997(), w)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := RunCCXX(machine.SP1997(), w, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Elapsed >= cc.Elapsed {
		t.Fatalf("static (%v) not faster than dynamic (%v) on uniform tasks", sc.Elapsed, cc.Elapsed)
	}
}

func TestBatchSizeTradeoff(t *testing.T) {
	// Larger batches amortize RMI cost but re-introduce imbalance; both
	// extremes must still compute correctly.
	w := Build(params(0.9))
	want := w.Checksum()
	var prev time.Duration
	for _, batch := range []int{1, 4, 16, 64} {
		cc, err := RunCCXX(machine.SP1997(), w, batch)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(cc.Checksum-want) > 1e-9*math.Abs(want) {
			t.Fatalf("batch %d: wrong result", batch)
		}
		if cc.Elapsed <= 0 {
			t.Fatalf("batch %d: no time elapsed", batch)
		}
		prev = cc.Elapsed
	}
	_ = prev
}

// Property: checksums agree between schedules for random skews and seeds.
func TestSchedulesAgreeProperty(t *testing.T) {
	f := func(seed int64, skewRaw uint8) bool {
		p := Params{Tasks: 60, Procs: 4, MeanCost: 100 * time.Microsecond,
			Skew: float64(skewRaw%90) / 100, Seed: seed}
		w := Build(p)
		sc, err := RunSplitC(machine.SP1997(), w)
		if err != nil {
			return false
		}
		cc, err := RunCCXX(machine.SP1997(), w, 3)
		if err != nil {
			return false
		}
		want := w.Checksum()
		return math.Abs(sc.Checksum-want) <= 1e-9*math.Abs(want) &&
			math.Abs(cc.Checksum-want) <= 1e-9*math.Abs(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
