// Package water reproduces the paper's Water application: the N-body
// molecular-dynamics code from the SPLASH benchmark suite (Singh, Weber,
// Gupta 1992), computing forces and energies of a system of water molecules
// with an O(N²) inter-molecular phase.
//
// Two program versions are implemented in both languages, per §5:
//
//   - atomic: remote molecule data is read with individual atomic reads and
//     force contributions are pushed back with atomic read-modify-writes;
//   - prefetch: the atomic read requests are replaced with selective
//     prefetching — each processor bundles and fetches the positions of the
//     remote molecules it needs from their owners before computing locally
//     (the force writes stay atomic).
//
// The physics is deliberately simplified to the communication-relevant
// skeleton (softened inverse-square pair interactions between molecule
// centres, a predictor/corrector-flavoured integration), because the paper's
// measurements are driven by the access pattern — three coordinate reads and
// three force accumulations per remote pair — not by the water potential.
package water

import (
	"math/rand"
	"time"
)

// Params configures a Water run.
type Params struct {
	// N is the number of molecules (64 and 512 in the paper).
	N int
	// Procs is the number of processors (4 in the paper).
	Procs int
	// Steps is the number of simulation steps.
	Steps int
	// Seed makes the initial configuration deterministic.
	Seed int64
}

// Paper returns the paper's configuration for the given molecule count.
func Paper(n, steps int) Params { return Params{N: n, Procs: 4, Steps: steps, Seed: 3} }

// State is the distributed simulation state: molecules are distributed
// statically block-wise across processors (as in the SPLASH original), with
// per-processor slices so each simulated node owns its data.
type State struct {
	P Params
	// PerProc is molecules per processor.
	PerProc int
	// Pos, Vel, Frc hold 3 doubles per molecule: [proc][local*3+coord].
	Pos, Vel, Frc [][]float64
	// Pot[p] accumulates processor p's share of the potential energy;
	// Pot[0] additionally receives the global reduction.
	Pot []float64
	// Energy is the reduced total potential after a run.
	Energy float64
}

// Integration and interaction constants (stability, not physics).
const (
	softening = 0.1
	dtV       = 0.001
	dtP       = 0.01
)

// Flop charges per unit of work.
const (
	flopsPerPair     = 22
	flopsPerIntegate = 12
)

// Build creates the initial configuration: molecules on a jittered lattice.
func Build(p Params) *State {
	if p.N%p.Procs != 0 {
		panic("water: N must divide evenly across processors")
	}
	rng := rand.New(rand.NewSource(p.Seed))
	s := &State{P: p, PerProc: p.N / p.Procs, Pot: make([]float64, p.Procs)}
	side := 1
	for side*side*side < p.N {
		side++
	}
	g := 0
	for pc := 0; pc < p.Procs; pc++ {
		pos := make([]float64, s.PerProc*3)
		for i := 0; i < s.PerProc; i++ {
			x, y, z := g%side, (g/side)%side, g/(side*side)
			pos[i*3+0] = float64(x) + 0.2*rng.Float64()
			pos[i*3+1] = float64(y) + 0.2*rng.Float64()
			pos[i*3+2] = float64(z) + 0.2*rng.Float64()
			g++
		}
		s.Pos = append(s.Pos, pos)
		s.Vel = append(s.Vel, make([]float64, s.PerProc*3))
		s.Frc = append(s.Frc, make([]float64, s.PerProc*3))
	}
	return s
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	ns := &State{P: s.P, PerProc: s.PerProc, Pot: append([]float64(nil), s.Pot...), Energy: s.Energy}
	for pc := 0; pc < s.P.Procs; pc++ {
		ns.Pos = append(ns.Pos, append([]float64(nil), s.Pos[pc]...))
		ns.Vel = append(ns.Vel, append([]float64(nil), s.Vel[pc]...))
		ns.Frc = append(ns.Frc, append([]float64(nil), s.Frc[pc]...))
	}
	return ns
}

// Owner returns the processor owning global molecule g.
func (s *State) Owner(g int) int { return g / s.PerProc }

// Local returns g's index within its owner's block.
func (s *State) Local(g int) int { return g % s.PerProc }

// Checksum combines final energy and positions for cross-validation.
func (s *State) Checksum() float64 {
	sum := s.Energy
	for pc := range s.Pos {
		for _, v := range s.Pos[pc] {
			sum += v
		}
	}
	return sum
}

// pairForce computes the softened interaction between two points, returning
// the force components on the first point and the pair potential.
func pairForce(xi, yi, zi, xj, yj, zj float64) (fx, fy, fz, pot float64) {
	dx, dy, dz := xi-xj, yi-yj, zi-zj
	r2 := dx*dx + dy*dy + dz*dz + softening
	inv := 1 / r2
	f := inv * inv
	return f * dx, f * dy, f * dz, inv
}

// RunSerial executes the reference computation without simulation. The pair
// loop visits (i, j) with i < j in ascending global order, accumulating equal
// and opposite forces — the same arithmetic both distributed versions do.
func RunSerial(s *State) {
	n := s.P.N
	for step := 0; step < s.P.Steps; step++ {
		for pc := range s.Frc {
			for k := range s.Frc[pc] {
				s.Frc[pc][k] = 0
			}
		}
		pot := 0.0
		for i := 0; i < n; i++ {
			pi, li := s.Owner(i), s.Local(i)
			xi, yi, zi := s.Pos[pi][li*3], s.Pos[pi][li*3+1], s.Pos[pi][li*3+2]
			for j := i + 1; j < n; j++ {
				pj, lj := s.Owner(j), s.Local(j)
				fx, fy, fz, p := pairForce(xi, yi, zi, s.Pos[pj][lj*3], s.Pos[pj][lj*3+1], s.Pos[pj][lj*3+2])
				s.Frc[pi][li*3] += fx
				s.Frc[pi][li*3+1] += fy
				s.Frc[pi][li*3+2] += fz
				s.Frc[pj][lj*3] -= fx
				s.Frc[pj][lj*3+1] -= fy
				s.Frc[pj][lj*3+2] -= fz
				pot += p
			}
		}
		integrate(s)
		s.Energy += pot
	}
}

// integrate advances velocities and positions (corrector step), identically
// in all versions.
func integrate(s *State) {
	for pc := range s.Pos {
		for k := range s.Pos[pc] {
			s.Vel[pc][k] += dtV * s.Frc[pc][k]
			s.Pos[pc][k] += dtP * s.Vel[pc][k]
		}
	}
}

// integrateProc advances one processor's molecules.
func integrateProc(s *State, pc int) {
	for k := range s.Pos[pc] {
		s.Vel[pc][k] += dtV * s.Frc[pc][k]
		s.Pos[pc][k] += dtP * s.Vel[pc][k]
	}
}

// integrateCost is the CPU charge for one processor's integration.
func integrateCost(s *State, flopCost time.Duration) time.Duration {
	return time.Duration(flopsPerIntegate*s.PerProc) * flopCost
}
