package water

import (
	"time"

	"repro/internal/apps/appstat"
	"repro/internal/machine"
	"repro/internal/splitc"
)

// Variant selects the program version, per §5.
type Variant string

// The two Water program versions of the paper.
const (
	Atomic   Variant = "atomic"
	Prefetch Variant = "prefetch"
)

// Variants lists the program versions in the paper's order.
func Variants() []Variant { return []Variant{Atomic, Prefetch} }

// RunSplitC executes the Split-C version of Water, mutating s and returning
// the measurement.
func RunSplitC(cfg machine.Config, s *State, variant Variant) (*appstat.Result, error) {
	m := machine.New(cfg, s.P.Procs)
	w := splitc.New(m)

	res := &appstat.Result{
		Lang:    "split-c",
		Variant: string(variant),
		Work:    int64(s.P.Steps) * int64(s.P.N) * int64(s.P.N-1) / 2,
	}
	var starts []machine.Snapshot
	var startT time.Duration

	err := w.Run(func(p *splitc.Proc) {
		me := p.MyPC()
		n := s.P.N
		base := me * s.PerProc
		// Mirror of peer position blocks for the prefetch variant.
		mirror := make([][]float64, s.P.Procs)
		for q := range mirror {
			if q != me {
				mirror[q] = make([]float64, s.PerProc*3)
			}
		}

		p.Barrier()
		if me == 0 {
			startT = time.Duration(p.T.Now())
			starts = starts[:0]
			for _, nd := range m.Nodes() {
				starts = append(starts, nd.Acct.Snapshot())
			}
		}
		p.Barrier()

		for step := 0; step < s.P.Steps; step++ {
			// Zero local forces.
			for k := range s.Frc[me] {
				s.Frc[me][k] = 0
			}
			p.Barrier()

			if variant == Prefetch {
				// Selective prefetching: bundle-fetch the position blocks
				// this processor will read (owners of molecules j > base).
				for q := me + 1; q < s.P.Procs; q++ {
					p.BulkGet(mirror[q], splitc.GVF{PC: q, S: s.Pos[q]})
				}
				p.Sync()
			}

			pot := 0.0
			for li := 0; li < s.PerProc; li++ {
				gi := base + li
				xi, yi, zi := s.Pos[me][li*3], s.Pos[me][li*3+1], s.Pos[me][li*3+2]
				pairs := 0
				for j := gi + 1; j < n; j++ {
					pj, lj := s.Owner(j), s.Local(j)
					var xj, yj, zj float64
					if pj == me {
						xj, yj, zj = s.Pos[me][lj*3], s.Pos[me][lj*3+1], s.Pos[me][lj*3+2]
					} else if variant == Prefetch {
						xj, yj, zj = mirror[pj][lj*3], mirror[pj][lj*3+1], mirror[pj][lj*3+2]
					} else {
						// Atomic reads of the three coordinates.
						xj = p.Read(splitc.GPF{PC: pj, P: &s.Pos[pj][lj*3]})
						yj = p.Read(splitc.GPF{PC: pj, P: &s.Pos[pj][lj*3+1]})
						zj = p.Read(splitc.GPF{PC: pj, P: &s.Pos[pj][lj*3+2]})
					}
					fx, fy, fz, pp := pairForce(xi, yi, zi, xj, yj, zj)
					s.Frc[me][li*3] += fx
					s.Frc[me][li*3+1] += fy
					s.Frc[me][li*3+2] += fz
					pot += pp
					if pj == me {
						s.Frc[me][lj*3] -= fx
						s.Frc[me][lj*3+1] -= fy
						s.Frc[me][lj*3+2] -= fz
					} else {
						// Atomic read-modify-writes push the reaction force
						// to the owner (split-phase, completed below).
						p.AtomicAdd(splitc.GPF{PC: pj, P: &s.Frc[pj][lj*3]}, -fx)
						p.AtomicAdd(splitc.GPF{PC: pj, P: &s.Frc[pj][lj*3+1]}, -fy)
						p.AtomicAdd(splitc.GPF{PC: pj, P: &s.Frc[pj][lj*3+2]}, -fz)
					}
					pairs++
				}
				p.T.Charge(machine.CatCPU, time.Duration(flopsPerPair*pairs)*p.T.Cfg().FlopCost)
			}
			p.Sync() // all reaction forces delivered
			s.Pot[me] += pot
			p.Barrier()

			integrateProc(s, me)
			p.T.Charge(machine.CatCPU, integrateCost(s, p.T.Cfg().FlopCost))
			p.Barrier()
		}

		// Reduce the potential onto processor 0.
		if me != 0 {
			p.AtomicAdd(splitc.GPF{PC: 0, P: &s.Pot[0]}, s.Pot[me])
			p.Sync()
		}
		p.Barrier()

		if me == 0 {
			s.Energy = s.Pot[0]
			var deltas []machine.Snapshot
			for i, nd := range m.Nodes() {
				deltas = append(deltas, nd.Acct.Delta(starts[i]))
			}
			res.Measure(startT, time.Duration(p.T.Now()), deltas)
			res.Checksum = s.Checksum()
		}
	})
	return res, err
}
