package water

import (
	"math"
	"testing"

	"repro/internal/machine"
)

func small() Params { return Params{N: 32, Procs: 4, Steps: 2, Seed: 11} }

func relErr(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

func TestBuildDeterministic(t *testing.T) {
	a, b := Build(small()), Build(small())
	for pc := range a.Pos {
		for k := range a.Pos[pc] {
			if a.Pos[pc][k] != b.Pos[pc][k] {
				t.Fatal("nondeterministic build")
			}
		}
	}
}

func TestOwnerLocal(t *testing.T) {
	s := Build(small())
	for g := 0; g < s.P.N; g++ {
		pc, l := s.Owner(g), s.Local(g)
		if pc*s.PerProc+l != g {
			t.Fatalf("owner/local broken for %d", g)
		}
		if pc < 0 || pc >= s.P.Procs || l < 0 || l >= s.PerProc {
			t.Fatalf("out of range for %d", g)
		}
	}
}

func TestSerialEnergyNonzeroAndFinite(t *testing.T) {
	s := Build(small())
	RunSerial(s)
	if s.Energy == 0 || math.IsNaN(s.Energy) || math.IsInf(s.Energy, 0) {
		t.Fatalf("energy = %v", s.Energy)
	}
}

func TestNewtonThirdLawSerial(t *testing.T) {
	// With all pair forces equal-and-opposite, the net force after one force
	// phase must be ~zero. Run a single step and inspect forces before they
	// are consumed: recompute manually.
	s := Build(small())
	RunSerial(s) // one full run; forces of last step remain in s.Frc
	var net [3]float64
	for pc := range s.Frc {
		for i := 0; i < s.PerProc; i++ {
			for c := 0; c < 3; c++ {
				net[c] += s.Frc[pc][i*3+c]
			}
		}
	}
	for c, v := range net {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("net force component %d = %v", c, v)
		}
	}
}

func runAll(t *testing.T, p Params) map[string]float64 {
	t.Helper()
	cfg := machine.SP1997()
	base := Build(p)
	out := make(map[string]float64)

	serial := base.Clone()
	RunSerial(serial)
	out["serial"] = serial.Checksum()

	for _, v := range Variants() {
		s := base.Clone()
		res, err := RunSplitC(cfg, s, v)
		if err != nil {
			t.Fatalf("split-c %s: %v", v, err)
		}
		out["split-c/"+string(v)] = res.Checksum

		s = base.Clone()
		res2, err := RunCCXX(cfg, s, v, nil)
		if err != nil {
			t.Fatalf("cc++ %s: %v", v, err)
		}
		out["cc++/"+string(v)] = res2.Checksum
	}
	return out
}

func TestAllVersionsMatchSerial(t *testing.T) {
	sums := runAll(t, small())
	want := sums["serial"]
	for name, got := range sums {
		if relErr(got, want) > 1e-6 {
			t.Errorf("%s checksum %v vs serial %v (rel %g)", name, got, want, relErr(got, want))
		}
	}
}

func TestPrefetchFasterThanAtomic(t *testing.T) {
	cfg := machine.SP1997()
	base := Build(small())
	for _, lang := range []string{"split-c", "cc++"} {
		var atomicT, prefT float64
		for _, v := range Variants() {
			s := base.Clone()
			var elapsed float64
			if lang == "split-c" {
				res, err := RunSplitC(cfg, s, v)
				if err != nil {
					t.Fatal(err)
				}
				elapsed = float64(res.Elapsed)
			} else {
				res, err := RunCCXX(cfg, s, v, nil)
				if err != nil {
					t.Fatal(err)
				}
				elapsed = float64(res.Elapsed)
			}
			if v == Atomic {
				atomicT = elapsed
			} else {
				prefT = elapsed
			}
		}
		if prefT >= atomicT {
			t.Errorf("%s: prefetch (%v) not faster than atomic (%v)", lang, prefT, atomicT)
		}
	}
}

func TestRemoteAccessReduction(t *testing.T) {
	// The paper: selective prefetching causes a ~10-fold reduction in remote
	// accesses. Count them.
	cfg := machine.SP1997()
	base := Build(small())
	counts := make(map[Variant]int64)
	for _, v := range Variants() {
		s := base.Clone()
		res, err := RunSplitC(cfg, s, v)
		if err != nil {
			t.Fatal(err)
		}
		counts[v] = res.Busy.Counters[machine.CntRemoteRead]
	}
	if counts[Atomic] < 5*counts[Prefetch] {
		t.Fatalf("remote reads atomic=%d prefetch=%d: reduction below 5x", counts[Atomic], counts[Prefetch])
	}
}

func TestCCXXGapGrowsWithN(t *testing.T) {
	// Paper: the atomic-variant CC++/Split-C gap grows with molecule count
	// (2.6x at 64 -> 5.6x at 512), because remote accesses grow
	// quadratically and CC++'s per-access overhead is higher.
	cfg := machine.SP1997()
	gap := func(n int) float64 {
		p := Params{N: n, Procs: 4, Steps: 1, Seed: 11}
		base := Build(p)
		s := base.Clone()
		sc, err := RunSplitC(cfg, s, Atomic)
		if err != nil {
			t.Fatal(err)
		}
		s = base.Clone()
		cc, err := RunCCXX(cfg, s, Atomic, nil)
		if err != nil {
			t.Fatal(err)
		}
		return cc.Ratio(sc)
	}
	small, large := gap(16), gap(64)
	if small < 1.0 {
		t.Errorf("gap at N=16 is %.2f (<1)", small)
	}
	if large <= small*0.95 {
		t.Errorf("gap did not grow with N: %.2f (16) -> %.2f (64)", small, large)
	}
}
