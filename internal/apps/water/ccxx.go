package water

import (
	"time"

	"repro/internal/apps/appstat"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/threads"
)

// waterObj is the per-processor CC++ processor object owning one block of
// molecules. Remote force accumulation and the position-bundle fetch are its
// remotely invocable methods.
type waterObj struct {
	s  *State
	me int
}

func waterClass() *core.Class {
	return &core.Class{
		Name: "Water",
		New:  func() any { return &waterObj{} },
		Methods: []*core.Method{
			{
				// addForce(k, v): one atomic read-modify-write of a force
				// component — mirroring the Split-C version's three atomic
				// adds per remote pair ("the CC++ version ... is heavily
				// based on the original Split-C implementations to allow for
				// a fair comparison").
				Name:     "addForce",
				Threaded: true,
				Atomic:   true,
				NewArgs:  func() []core.Arg { return []core.Arg{&core.I64{}, &core.F64{}} },
				Fn: func(t *threads.Thread, self any, args []core.Arg, ret core.Arg) {
					o := self.(*waterObj)
					o.s.Frc[o.me][args[0].(*core.I64).V] += args[1].(*core.F64).V
				},
			},
			{
				// addPot(v): atomic contribution to the global potential.
				Name:     "addPot",
				Threaded: true,
				Atomic:   true,
				NewArgs:  func() []core.Arg { return []core.Arg{&core.F64{}} },
				Fn: func(t *threads.Thread, self any, args []core.Arg, ret core.Arg) {
					o := self.(*waterObj)
					o.s.Pot[o.me] += args[0].(*core.F64).V
				},
			},
			{
				// getCoord(k): one atomic read of a remote molecule datum —
				// the water-atomic access primitive ("issues atomic reads
				// ... to access the remote molecules"). Runs threaded and
				// holds the object lock, contending with addForce traffic.
				Name:     "getCoord",
				Threaded: true,
				Atomic:   true,
				NewArgs:  func() []core.Arg { return []core.Arg{&core.I64{}} },
				NewRet:   func() core.Arg { return &core.F64{} },
				Fn: func(t *threads.Thread, self any, args []core.Arg, ret core.Arg) {
					o := self.(*waterObj)
					ret.(*core.F64).V = o.s.Pos[o.me][args[0].(*core.I64).V]
				},
			},
			{
				// getPositions() returns the block's position bundle — the
				// selective-prefetch fetch, paying the bulk-return double
				// copy at the initiator.
				Name:     "getPositions",
				Threaded: true,
				NewRet:   func() core.Arg { return &core.F64Slice{} },
				Fn: func(t *threads.Thread, self any, args []core.Arg, ret core.Arg) {
					o := self.(*waterObj)
					out := ret.(*core.F64Slice)
					if cap(out.V) < len(o.s.Pos[o.me]) {
						out.V = make([]float64, len(o.s.Pos[o.me]))
					}
					out.V = out.V[:len(o.s.Pos[o.me])]
					copy(out.V, o.s.Pos[o.me])
				},
			},
		},
	}
}

// RunCCXX executes the CC++ version of Water over the given transport
// options (nil mkOpts means CC++/ThAM), mutating s and returning the
// measurement.
func RunCCXX(cfg machine.Config, s *State, variant Variant, mkOpts func(m *machine.Machine) core.Options) (*appstat.Result, error) {
	m := machine.New(cfg, s.P.Procs)
	var opts core.Options
	if mkOpts != nil {
		opts = mkOpts(m)
	}
	rt := core.NewRuntimeOpts(m, opts)
	rt.RegisterClass(waterClass())

	objs := make([]core.GPtr, s.P.Procs)
	for pc := 0; pc < s.P.Procs; pc++ {
		objs[pc] = rt.CreateObject(pc, "Water")
		o := rt.Object(objs[pc]).(*waterObj)
		o.s, o.me = s, pc
	}
	bar := rt.NewBarrier(0, s.P.Procs)

	res := &appstat.Result{
		Lang:      "cc++",
		Variant:   string(variant),
		Transport: rt.TransportName(),
		Work:      int64(s.P.Steps) * int64(s.P.N) * int64(s.P.N-1) / 2,
	}
	var starts []machine.Snapshot
	var startT time.Duration

	for pc := 0; pc < s.P.Procs; pc++ {
		me := pc
		rt.OnNode(me, func(t *threads.Thread) {
			n := s.P.N
			base := me * s.PerProc
			mirror := make([][]float64, s.P.Procs)
			for q := range mirror {
				if q != me {
					mirror[q] = make([]float64, s.PerProc*3)
				}
			}

			bar.Arrive(t)
			if me == 0 {
				startT = time.Duration(t.Now())
				starts = starts[:0]
				for _, nd := range m.Nodes() {
					starts = append(starts, nd.Acct.Snapshot())
				}
			}
			bar.Arrive(t)

			for step := 0; step < s.P.Steps; step++ {
				for k := range s.Frc[me] {
					s.Frc[me][k] = 0
				}
				bar.Arrive(t)

				if variant == Prefetch {
					// Bundle-fetch remote position blocks via bulk RMIs.
					for q := me + 1; q < s.P.Procs; q++ {
						var ret core.F64Slice
						ret.V = mirror[q]
						rt.Call(t, objs[q], "getPositions", nil, &ret)
						copy(mirror[q], ret.V)
					}
				}

				pot := 0.0
				var pending []*core.Future
				for li := 0; li < s.PerProc; li++ {
					gi := base + li
					xi, yi, zi := s.Pos[me][li*3], s.Pos[me][li*3+1], s.Pos[me][li*3+2]
					pairs := 0
					for j := gi + 1; j < n; j++ {
						pj, lj := s.Owner(j), s.Local(j)
						var xj, yj, zj float64
						if pj == me {
							xj, yj, zj = s.Pos[me][lj*3], s.Pos[me][lj*3+1], s.Pos[me][lj*3+2]
						} else if variant == Prefetch {
							xj, yj, zj = mirror[pj][lj*3], mirror[pj][lj*3+1], mirror[pj][lj*3+2]
						} else {
							var rx, ry, rz core.F64
							rt.Call(t, objs[pj], "getCoord", []core.Arg{&core.I64{V: int64(lj * 3)}}, &rx)
							rt.Call(t, objs[pj], "getCoord", []core.Arg{&core.I64{V: int64(lj*3 + 1)}}, &ry)
							rt.Call(t, objs[pj], "getCoord", []core.Arg{&core.I64{V: int64(lj*3 + 2)}}, &rz)
							xj, yj, zj = rx.V, ry.V, rz.V
						}
						fx, fy, fz, pp := pairForce(xi, yi, zi, xj, yj, zj)
						s.Frc[me][li*3] += fx
						s.Frc[me][li*3+1] += fy
						s.Frc[me][li*3+2] += fz
						pot += pp
						if pj == me {
							s.Frc[me][lj*3] -= fx
							s.Frc[me][lj*3+1] -= fy
							s.Frc[me][lj*3+2] -= fz
						} else {
							pending = append(pending,
								rt.CallAsync(t, objs[pj], "addForce", []core.Arg{
									&core.I64{V: int64(lj * 3)}, &core.F64{V: -fx}}, nil),
								rt.CallAsync(t, objs[pj], "addForce", []core.Arg{
									&core.I64{V: int64(lj*3 + 1)}, &core.F64{V: -fy}}, nil),
								rt.CallAsync(t, objs[pj], "addForce", []core.Arg{
									&core.I64{V: int64(lj*3 + 2)}, &core.F64{V: -fz}}, nil))
						}
						pairs++
					}
					t.Charge(machine.CatCPU, time.Duration(flopsPerPair*pairs)*t.Cfg().FlopCost)
				}
				for _, f := range pending {
					f.Wait(t)
				}
				if me == 0 {
					s.Pot[0] += pot
				} else {
					rt.Call(t, objs[0], "addPot", []core.Arg{&core.F64{V: pot}}, nil)
				}
				bar.Arrive(t)

				integrateProc(s, me)
				t.Charge(machine.CatCPU, integrateCost(s, t.Cfg().FlopCost))
				bar.Arrive(t)
			}

			if me == 0 {
				s.Energy = s.Pot[0]
				var deltas []machine.Snapshot
				for i, nd := range m.Nodes() {
					deltas = append(deltas, nd.Acct.Delta(starts[i]))
				}
				res.Measure(startT, time.Duration(t.Now()), deltas)
				res.Checksum = s.Checksum()
			}
		})
	}
	if err := rt.Run(); err != nil {
		return nil, err
	}
	return res, nil
}
