// Package em3d reproduces the paper's EM3D application: propagation of
// electromagnetic waves through a bipartite graph of E and H field nodes
// (Culler et al., "Parallel Programming in Split-C", SC 1993; Madsen 1992).
//
// Three program variants are implemented in both languages, exactly as §5
// describes:
//
//   - base: every access to a remote neighbour dereferences a global pointer.
//   - ghost: remote neighbour values are fetched once per phase into local
//     ghost nodes, eliminating redundant global accesses.
//   - bulk: ghost values are aggregated per source processor and moved with
//     one bulk transfer per (source, destination) pair.
//
// The synthetic workload matches the paper: a bipartite graph with an equal
// number of E and H nodes per processor, fixed degree, and a configurable
// fraction of edges crossing processor boundaries.
package em3d

import (
	"math/rand"
	"time"
)

// Params configures a synthetic EM3D run.
type Params struct {
	// GraphNodes is the total number of graph nodes (split evenly between E
	// and H and across processors). The paper uses 800.
	GraphNodes int
	// Degree is the number of neighbours per node. The paper uses 20.
	Degree int
	// Procs is the number of processors. The paper uses 4.
	Procs int
	// RemotePct is the percentage of edges whose endpoints live on
	// different processors (10, 40, 70, 100 in the paper).
	RemotePct int
	// Iters is the number of update steps.
	Iters int
	// Seed makes graph construction deterministic.
	Seed int64
}

// Paper returns the paper's graph configuration at the given remote-edge
// percentage, with a configurable iteration count.
func Paper(remotePct, iters int) Params {
	return Params{GraphNodes: 800, Degree: 20, Procs: 4, RemotePct: remotePct, Iters: iters, Seed: 1}
}

// ref identifies a graph node as (processor, local index).
type ref struct {
	pc  int
	idx int
}

// edge is one dependency: value at To is updated using the value at From
// with the given weight. From and To are in opposite node classes.
type edge struct {
	from   ref
	weight float64
}

// Graph is the distributed bipartite graph. Field values are stored per
// processor so each simulated node owns its slice; only the owning node's
// runtime touches them during computation.
type Graph struct {
	P Params
	// EVals[p][i] and HVals[p][i] are the field values.
	EVals, HVals [][]float64
	// EDeps[p][i] lists the H-node dependencies of E node (p,i);
	// HDeps[p][i] lists the E-node dependencies of H node (p,i).
	EDeps, HDeps [][][]edge
	// PerProcNodes is the number of E (and H) nodes per processor.
	PerProcNodes int
}

// Build constructs the synthetic graph.
func Build(p Params) *Graph {
	if p.GraphNodes%(2*p.Procs) != 0 {
		panic("em3d: GraphNodes must divide evenly into 2*Procs")
	}
	rng := rand.New(rand.NewSource(p.Seed))
	per := p.GraphNodes / (2 * p.Procs)
	g := &Graph{P: p, PerProcNodes: per}
	for pc := 0; pc < p.Procs; pc++ {
		e := make([]float64, per)
		h := make([]float64, per)
		for i := range e {
			e[i] = rng.Float64()
			h[i] = rng.Float64()
		}
		g.EVals = append(g.EVals, e)
		g.HVals = append(g.HVals, h)
		g.EDeps = append(g.EDeps, make([][]edge, per))
		g.HDeps = append(g.HDeps, make([][]edge, per))
	}
	pick := func(owner int) ref {
		remote := rng.Intn(100) < p.RemotePct && p.Procs > 1
		pc := owner
		if remote {
			pc = rng.Intn(p.Procs - 1)
			if pc >= owner {
				pc++
			}
		}
		return ref{pc: pc, idx: rng.Intn(per)}
	}
	for pc := 0; pc < p.Procs; pc++ {
		for i := 0; i < per; i++ {
			for d := 0; d < p.Degree; d++ {
				g.EDeps[pc][i] = append(g.EDeps[pc][i], edge{from: pick(pc), weight: rng.Float64()})
				g.HDeps[pc][i] = append(g.HDeps[pc][i], edge{from: pick(pc), weight: rng.Float64()})
			}
		}
	}
	return g
}

// Clone deep-copies the graph (values and topology), so one build can feed
// several runs with identical inputs.
func (g *Graph) Clone() *Graph {
	ng := &Graph{P: g.P, PerProcNodes: g.PerProcNodes}
	for pc := 0; pc < g.P.Procs; pc++ {
		ng.EVals = append(ng.EVals, append([]float64(nil), g.EVals[pc]...))
		ng.HVals = append(ng.HVals, append([]float64(nil), g.HVals[pc]...))
		ed := make([][]edge, g.PerProcNodes)
		hd := make([][]edge, g.PerProcNodes)
		for i := 0; i < g.PerProcNodes; i++ {
			ed[i] = append([]edge(nil), g.EDeps[pc][i]...)
			hd[i] = append([]edge(nil), g.HDeps[pc][i]...)
		}
		ng.EDeps = append(ng.EDeps, ed)
		ng.HDeps = append(ng.HDeps, hd)
	}
	return ng
}

// TotalEdges returns the number of dependency edges in the whole graph
// (both phases).
func (g *Graph) TotalEdges() int {
	return g.P.GraphNodes * g.P.Degree
}

// EdgesPerProc returns dependency edges owned by one processor.
func (g *Graph) EdgesPerProc() int { return g.TotalEdges() / g.P.Procs }

// Checksum sums all field values — used to cross-validate the language
// versions against the serial reference.
func (g *Graph) Checksum() float64 {
	s := 0.0
	for pc := 0; pc < g.P.Procs; pc++ {
		for i := 0; i < g.PerProcNodes; i++ {
			s += g.EVals[pc][i] + g.HVals[pc][i]
		}
	}
	return s
}

// RunSerial executes the reference computation directly (no simulation):
// iters steps of E updates followed by H updates, matching the distributed
// versions' phase order and read-then-write-all semantics (each phase reads
// the other field's pre-phase values).
func RunSerial(g *Graph) {
	for it := 0; it < g.P.Iters; it++ {
		serialPhase(g.EVals, g.EDeps, g.HVals)
		serialPhase(g.HVals, g.HDeps, g.EVals)
	}
}

func serialPhase(dst [][]float64, deps [][][]edge, src [][]float64) {
	for pc := range dst {
		for i := range dst[pc] {
			acc := dst[pc][i]
			for _, e := range deps[pc][i] {
				acc -= e.weight * src[e.from.pc][e.from.idx]
			}
			dst[pc][i] = acc
		}
	}
}

// flopsPerEdge is the arithmetic charged per dependency edge: the
// multiply-subtract plus the pointer chasing and index arithmetic of the
// irregular graph, folded into flop units (calibrated so that em3d-bulk is
// compute-bound, as the paper's absolute numbers show).
const flopsPerEdge = 20

// nodeUpdateCost returns the CPU charge for updating one graph node with the
// given number of edges.
func nodeUpdateCost(edges int, flopCost time.Duration) time.Duration {
	return time.Duration(flopsPerEdge*edges) * flopCost
}
