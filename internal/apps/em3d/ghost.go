package em3d

// ghostPlan precomputes, for one phase (one direction of the bipartite
// graph), which remote values each processor needs:
//
//   - lists[p]: the distinct remote refs processor p reads (ghost nodes);
//   - slot[p]: ref -> index into p's ghost value array;
//   - exports[src][p]: the local indices on src that p needs, in the order
//     they appear in p's ghost array region for src (bulk aggregation);
//   - importBase[p][src]: offset of src's region within p's ghost array.
//
// The plan is static because the graph is static; the paper's ghost and bulk
// variants likewise compute their caching structure once.
type ghostPlan struct {
	procs      int
	lists      [][]ref
	slot       []map[ref]int
	exports    [][][]int // exports[src][dst] -> local indices on src
	importBase [][]int   // importBase[dst][src] -> offset in dst's ghost array
	importLen  [][]int   // importLen[dst][src] -> region length
}

// buildGhostPlan analyses one phase's dependencies. deps[p][i] are the
// dependencies of processor p's node i; refs with pc != p are remote.
func buildGhostPlan(procs int, deps [][][]edge) *ghostPlan {
	gp := &ghostPlan{procs: procs}
	gp.lists = make([][]ref, procs)
	gp.slot = make([]map[ref]int, procs)
	gp.exports = make([][][]int, procs)
	gp.importBase = make([][]int, procs)
	gp.importLen = make([][]int, procs)
	for p := 0; p < procs; p++ {
		gp.slot[p] = make(map[ref]int)
		gp.exports[p] = make([][]int, procs)
		gp.importBase[p] = make([]int, procs)
		gp.importLen[p] = make([]int, procs)
	}
	// Group each destination's remote refs by source processor so the bulk
	// variant's regions are contiguous; iterate sources in order for
	// determinism.
	for dst := 0; dst < procs; dst++ {
		seen := make(map[ref]bool)
		bySrc := make([][]ref, procs)
		for i := range deps[dst] {
			for _, e := range deps[dst][i] {
				if e.from.pc == dst || seen[e.from] {
					continue
				}
				seen[e.from] = true
				bySrc[e.from.pc] = append(bySrc[e.from.pc], e.from)
			}
		}
		off := 0
		for src := 0; src < procs; src++ {
			gp.importBase[dst][src] = off
			gp.importLen[dst][src] = len(bySrc[src])
			for _, r := range bySrc[src] {
				gp.slot[dst][r] = off
				gp.lists[dst] = append(gp.lists[dst], r)
				gp.exports[src][dst] = append(gp.exports[src][dst], r.idx)
				off++
			}
		}
	}
	return gp
}

// ghostCount returns the number of ghost nodes processor p maintains.
func (gp *ghostPlan) ghostCount(p int) int { return len(gp.lists[p]) }

// totalGhosts sums ghost nodes over all processors.
func (gp *ghostPlan) totalGhosts() int {
	n := 0
	for p := 0; p < gp.procs; p++ {
		n += len(gp.lists[p])
	}
	return n
}
