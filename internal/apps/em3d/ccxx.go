package em3d

import (
	"math"
	"time"

	"repro/internal/apps/appstat"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/threads"
)

// em3dObj is the per-processor CC++ processor object: it owns the ghost
// arrays and counts bulk deliveries (the one-way-RMI replacement for
// Split-C's store counters).
type em3dObj struct {
	ghostsE, ghostsH []float64
	recvd            int
}

// em3dClass defines the remotely invocable interface of em3dObj. The bulk
// variant's aggregated transfer is the "deliver" method: a threaded RMI
// whose arguments are the packed values plus the destination region.
func em3dClass() *core.Class {
	return &core.Class{
		Name: "Em3d",
		New:  func() any { return &em3dObj{} },
		Methods: []*core.Method{
			{
				// The aggregated ghost bundle travels as a user-marshalled
				// byte buffer (CC++ "programmers have to provide their own
				// data marshalling operations for complex data structures"):
				// a single shallow copy, not per-element serializer calls.
				Name:     "deliverE",
				Threaded: true,
				NewArgs:  func() []core.Arg { return []core.Arg{&core.I64{}, &core.Bytes{}} },
				Fn: func(t *threads.Thread, self any, args []core.Arg, ret core.Arg) {
					o := self.(*em3dObj)
					deliver(o.ghostsE, &o.recvd, args)
				},
			},
			{
				Name:     "deliverH",
				Threaded: true,
				NewArgs:  func() []core.Arg { return []core.Arg{&core.I64{}, &core.Bytes{}} },
				Fn: func(t *threads.Thread, self any, args []core.Arg, ret core.Arg) {
					o := self.(*em3dObj)
					deliver(o.ghostsH, &o.recvd, args)
				},
			},
		},
	}
}

func deliver(ghosts []float64, recvd *int, args []core.Arg) {
	base := int(args[0].(*core.I64).V)
	raw := args[1].(*core.Bytes).V
	n := len(raw) / 8
	for k := 0; k < n; k++ {
		ghosts[base+k] = math.Float64frombits(leU64(raw[k*8:]))
	}
	*recvd += n
}

func packF64(vals []float64) []byte {
	out := make([]byte, len(vals)*8)
	for k, v := range vals {
		putLeU64(out[k*8:], math.Float64bits(v))
	}
	return out
}

func leU64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLeU64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

// RunCCXX executes the CC++ version of EM3D over the given transport options
// (zero Options means CC++/ThAM; pass a Nexus transport for the §6
// comparison), mutating g's values and returning the measurement.
func RunCCXX(cfg machine.Config, g *Graph, variant Variant, mkOpts func(m *machine.Machine) core.Options) (*appstat.Result, error) {
	m := machine.New(cfg, g.P.Procs)
	var opts core.Options
	if mkOpts != nil {
		opts = mkOpts(m)
	}
	rt := core.NewRuntimeOpts(m, opts)
	rt.RegisterClass(em3dClass())

	ePlan := buildGhostPlan(g.P.Procs, g.EDeps)
	hPlan := buildGhostPlan(g.P.Procs, g.HDeps)

	objs := make([]core.GPtr, g.P.Procs)
	for pc := 0; pc < g.P.Procs; pc++ {
		objs[pc] = rt.CreateObject(pc, "Em3d")
		o := rt.Object(objs[pc]).(*em3dObj)
		o.ghostsE = make([]float64, ePlan.ghostCount(pc))
		o.ghostsH = make([]float64, hPlan.ghostCount(pc))
	}
	bar := rt.NewBarrier(0, g.P.Procs)

	res := &appstat.Result{
		Lang:      "cc++",
		Variant:   string(variant),
		Transport: rt.TransportName(),
		Work:      int64(g.P.Iters) * int64(g.EdgesPerProc()) * 2,
	}
	var starts []machine.Snapshot
	var startT time.Duration

	for pc := 0; pc < g.P.Procs; pc++ {
		me := pc
		rt.OnNode(me, func(t *threads.Thread) {
			self := rt.Object(objs[me]).(*em3dObj)
			expect := 0

			bar.Arrive(t)
			if me == 0 {
				startT = time.Duration(t.Now())
				starts = starts[:0]
				for _, n := range m.Nodes() {
					starts = append(starts, n.Acct.Snapshot())
				}
			}
			bar.Arrive(t)

			for it := 0; it < g.P.Iters; it++ {
				expect = ccPhase(rt, t, g, variant, me, objs, self, "deliverE",
					g.EVals[me], g.EDeps[me], g.HVals, ePlan, self.ghostsE, expect)
				bar.Arrive(t)
				expect = ccPhase(rt, t, g, variant, me, objs, self, "deliverH",
					g.HVals[me], g.HDeps[me], g.EVals, hPlan, self.ghostsH, expect)
				bar.Arrive(t)
			}

			if me == 0 {
				var deltas []machine.Snapshot
				for i, n := range m.Nodes() {
					deltas = append(deltas, n.Acct.Delta(starts[i]))
				}
				res.Measure(startT, time.Duration(t.Now()), deltas)
				res.Checksum = g.Checksum()
			}
		})
	}
	if err := rt.Run(); err != nil {
		return nil, err
	}
	return res, nil
}

// ccPhase is one half-step of the CC++ program.
func ccPhase(rt *core.Runtime, t *threads.Thread, g *Graph, variant Variant, me int, objs []core.GPtr, self *em3dObj, deliverMethod string, dst []float64, deps [][]edge, src [][]float64, plan *ghostPlan, ghosts []float64, expect int) int {
	cfg := t.Cfg()

	switch variant {
	case Base:
		// Every neighbour access dereferences a global pointer — including
		// local ones, which still pay the runtime's locality check (the
		// em3d-base effect at low remote percentages).
		for i := range dst {
			acc := dst[i]
			for _, e := range deps[i] {
				v := rt.ReadF64(t, core.NewGPF64(e.from.pc, &src[e.from.pc][e.from.idx]))
				acc -= e.weight * v
			}
			t.Charge(machine.CatCPU, nodeUpdateCost(len(deps[i]), cfg.FlopCost))
			dst[i] = acc
		}
		return expect

	case Ghost:
		// Prefetch all ghost values with a parfor of global-pointer reads
		// (the CC++ latency-hiding idiom; cf. the Prefetch micro-benchmark).
		refs := plan.lists[me]
		core.ParFor(t, len(refs), func(t2 *threads.Thread, s int) {
			r := refs[s]
			ghosts[s] = rt.ReadF64(t2, core.NewGPF64(r.pc, &src[r.pc][r.idx]))
		})
		ccComputeLocal(t, g, me, dst, deps, src, plan, ghosts, cfg)
		return expect

	case Bulk:
		// Aggregate: one one-way RMI per consumer carrying the packed
		// values; then wait for our own deliveries.
		for q := 0; q < g.P.Procs; q++ {
			idxs := plan.exports[me][q]
			if q == me || len(idxs) == 0 {
				continue
			}
			packed := make([]float64, len(idxs))
			for k, idx := range idxs {
				packed[k] = src[me][idx]
			}
			t.Charge(machine.CatCPU, time.Duration(len(idxs)*8)*cfg.MemCopyPerByte)
			rt.CallOneWay(t, objs[q], deliverMethod, []core.Arg{
				&core.I64{V: int64(plan.importBase[q][me])},
				&core.Bytes{V: packF64(packed)},
			})
		}
		expect += plan.ghostCount(me)
		rt.WaitLocal(t, func() bool { return self.recvd >= expect })
		ccComputeLocal(t, g, me, dst, deps, src, plan, ghosts, cfg)
		return expect
	}
	panic("em3d: unknown variant " + string(variant))
}

// ccComputeLocal is the purely local update loop of the ghost and bulk
// variants.
func ccComputeLocal(t *threads.Thread, g *Graph, me int, dst []float64, deps [][]edge, src [][]float64, plan *ghostPlan, ghosts []float64, cfg machine.Config) {
	slots := plan.slot[me]
	for i := range dst {
		acc := dst[i]
		for _, e := range deps[i] {
			var v float64
			if e.from.pc == me {
				v = src[me][e.from.idx]
			} else {
				v = ghosts[slots[e.from]]
			}
			acc -= e.weight * v
		}
		t.Charge(machine.CatCPU, nodeUpdateCost(len(deps[i]), cfg.FlopCost))
		dst[i] = acc
	}
}
