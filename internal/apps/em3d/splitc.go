package em3d

import (
	"time"

	"repro/internal/apps/appstat"
	"repro/internal/machine"
	"repro/internal/splitc"
)

// Variant selects the program version, per §5.
type Variant string

// The three EM3D program versions of the paper.
const (
	Base  Variant = "base"
	Ghost Variant = "ghost"
	Bulk  Variant = "bulk"
)

// Variants lists the program versions in the paper's order.
func Variants() []Variant { return []Variant{Base, Ghost, Bulk} }

// RunSplitC executes the Split-C version of EM3D on a fresh machine with the
// given cost profile, mutating g's values and returning the measurement.
func RunSplitC(cfg machine.Config, g *Graph, variant Variant) (*appstat.Result, error) {
	m := machine.New(cfg, g.P.Procs)
	w := splitc.New(m)

	ePlan := buildGhostPlan(g.P.Procs, g.EDeps) // H values needed by the E phase
	hPlan := buildGhostPlan(g.P.Procs, g.HDeps) // E values needed by the H phase

	// Ghost arrays are owned by their processor but allocated up front so
	// peers can address them in bulk stores (a Split-C program would expose
	// them as spread arrays).
	ghostsE := make([][]float64, g.P.Procs)
	ghostsH := make([][]float64, g.P.Procs)
	for pc := 0; pc < g.P.Procs; pc++ {
		ghostsE[pc] = make([]float64, ePlan.ghostCount(pc))
		ghostsH[pc] = make([]float64, hPlan.ghostCount(pc))
	}

	res := &appstat.Result{
		Lang:    "split-c",
		Variant: string(variant),
		Work:    int64(g.P.Iters) * int64(g.EdgesPerProc()) * 2,
	}
	var starts []machine.Snapshot
	var startT time.Duration

	err := w.Run(func(p *splitc.Proc) {
		me := p.MyPC()
		expect := 0

		p.Barrier()
		if me == 0 {
			startT = time.Duration(p.T.Now())
			starts = starts[:0]
			for _, n := range m.Nodes() {
				starts = append(starts, n.Acct.Snapshot())
			}
		}
		p.Barrier()

		for it := 0; it < g.P.Iters; it++ {
			expect = scPhase(p, g, variant, g.EVals[me], g.EDeps[me], g.HVals, ePlan, ghostsE, expect)
			p.Barrier()
			expect = scPhase(p, g, variant, g.HVals[me], g.HDeps[me], g.EVals, hPlan, ghostsH, expect)
			p.Barrier()
		}

		if me == 0 {
			var deltas []machine.Snapshot
			for i, n := range m.Nodes() {
				deltas = append(deltas, n.Acct.Delta(starts[i]))
			}
			res.Measure(startT, time.Duration(p.T.Now()), deltas)
			res.Checksum = g.Checksum()
		}
	})
	return res, err
}

// scPhase runs one half-step on processor p.MyPC(): make remote source
// values available per the variant's strategy, then update dst. It returns
// the updated cumulative one-way-store expectation (bulk variant only).
func scPhase(p *splitc.Proc, g *Graph, variant Variant, dst []float64, deps [][]edge, src [][]float64, plan *ghostPlan, ghosts [][]float64, expect int) int {
	me := p.MyPC()
	cfg := p.T.Cfg()

	switch variant {
	case Base:
		// Every remote neighbour access is a blocking global-pointer read,
		// repeated for every edge (no caching).
		for i := range dst {
			acc := dst[i]
			for _, e := range deps[i] {
				var v float64
				if e.from.pc == me {
					v = src[me][e.from.idx]
				} else {
					v = p.Read(splitc.GPF{PC: e.from.pc, P: &src[e.from.pc][e.from.idx]})
				}
				acc -= e.weight * v
			}
			p.T.Charge(machine.CatCPU, nodeUpdateCost(len(deps[i]), cfg.FlopCost))
			dst[i] = acc
		}
		return expect

	case Ghost:
		// Fetch each distinct remote value once with pipelined split-phase
		// gets, then compute locally.
		mine := ghosts[me]
		for s, r := range plan.lists[me] {
			p.Get(&mine[s], splitc.GPF{PC: r.pc, P: &src[r.pc][r.idx]})
		}
		p.Sync()
		computeLocal(p, g, dst, deps, src, plan, mine, cfg)
		return expect

	case Bulk:
		// Aggregate: push this processor's boundary values to each consumer
		// with one bulk store per destination, then wait for our own
		// imports to land.
		for q := 0; q < g.P.Procs; q++ {
			idxs := plan.exports[me][q]
			if q == me || len(idxs) == 0 {
				continue
			}
			packed := make([]float64, len(idxs))
			for k, idx := range idxs {
				packed[k] = src[me][idx]
			}
			p.T.Charge(machine.CatCPU, time.Duration(len(idxs)*8)*cfg.MemCopyPerByte)
			base := plan.importBase[q][me]
			region := ghosts[q][base : base+len(idxs)]
			p.BulkStore(splitc.GVF{PC: q, S: region}, packed)
		}
		expect += plan.ghostCount(me)
		p.WaitStores(expect)
		computeLocal(p, g, dst, deps, src, plan, ghosts[me], cfg)
		return expect
	}
	panic("em3d: unknown variant " + string(variant))
}

// computeLocal updates dst reading only local and ghost values.
func computeLocal(p *splitc.Proc, g *Graph, dst []float64, deps [][]edge, src [][]float64, plan *ghostPlan, ghosts []float64, cfg machine.Config) {
	me := p.MyPC()
	slots := plan.slot[me]
	for i := range dst {
		acc := dst[i]
		for _, e := range deps[i] {
			var v float64
			if e.from.pc == me {
				v = src[me][e.from.idx]
			} else {
				v = ghosts[slots[e.from]]
			}
			acc -= e.weight * v
		}
		p.T.Charge(machine.CatCPU, nodeUpdateCost(len(deps[i]), cfg.FlopCost))
		dst[i] = acc
	}
}
