package em3d

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/machine"
)

// small returns a quick test configuration.
func small(remotePct int) Params {
	return Params{GraphNodes: 80, Degree: 5, Procs: 4, RemotePct: remotePct, Iters: 3, Seed: 7}
}

func TestGraphBuildInvariants(t *testing.T) {
	g := Build(small(40))
	if g.PerProcNodes != 10 {
		t.Fatalf("per-proc nodes = %d", g.PerProcNodes)
	}
	for pc := 0; pc < 4; pc++ {
		for i := 0; i < g.PerProcNodes; i++ {
			if len(g.EDeps[pc][i]) != 5 || len(g.HDeps[pc][i]) != 5 {
				t.Fatalf("node (%d,%d) degree wrong", pc, i)
			}
		}
	}
	if g.TotalEdges() != 80*5 {
		t.Fatalf("total edges = %d", g.TotalEdges())
	}
}

func TestRemotePctZeroAndHundred(t *testing.T) {
	g0 := Build(small(0))
	for pc := range g0.EDeps {
		for i := range g0.EDeps[pc] {
			for _, e := range g0.EDeps[pc][i] {
				if e.from.pc != pc {
					t.Fatal("remote edge in 0% graph")
				}
			}
		}
	}
	g100 := Build(small(100))
	for pc := range g100.EDeps {
		for i := range g100.EDeps[pc] {
			for _, e := range g100.EDeps[pc][i] {
				if e.from.pc == pc {
					t.Fatal("local edge in 100% graph")
				}
			}
		}
	}
}

func TestGhostPlanCoversAllRemoteRefs(t *testing.T) {
	g := Build(small(70))
	plan := buildGhostPlan(4, g.EDeps)
	for pc := 0; pc < 4; pc++ {
		for i := range g.EDeps[pc] {
			for _, e := range g.EDeps[pc][i] {
				if e.from.pc == pc {
					continue
				}
				if _, ok := plan.slot[pc][e.from]; !ok {
					t.Fatalf("remote ref %v not in proc %d ghost plan", e.from, pc)
				}
			}
		}
	}
	// Export lists must mirror import regions exactly.
	for dst := 0; dst < 4; dst++ {
		for src := 0; src < 4; src++ {
			if len(plan.exports[src][dst]) != plan.importLen[dst][src] {
				t.Fatalf("export/import mismatch %d->%d", src, dst)
			}
		}
		total := 0
		for src := 0; src < 4; src++ {
			total += plan.importLen[dst][src]
		}
		if total != plan.ghostCount(dst) {
			t.Fatalf("import regions don't cover ghost array on %d", dst)
		}
	}
}

// runAll runs serial plus all six distributed versions on identical inputs
// and returns the checksums keyed by name.
func runAll(t *testing.T, p Params) map[string]float64 {
	t.Helper()
	cfg := machine.SP1997()
	base := Build(p)
	out := make(map[string]float64)

	serial := base.Clone()
	RunSerial(serial)
	out["serial"] = serial.Checksum()

	for _, v := range Variants() {
		g := base.Clone()
		res, err := RunSplitC(cfg, g, v)
		if err != nil {
			t.Fatalf("split-c %s: %v", v, err)
		}
		out["split-c/"+string(v)] = res.Checksum

		g = base.Clone()
		res2, err := RunCCXX(cfg, g, v, nil)
		if err != nil {
			t.Fatalf("cc++ %s: %v", v, err)
		}
		out["cc++/"+string(v)] = res2.Checksum
	}
	return out
}

func TestAllVersionsMatchSerial(t *testing.T) {
	sums := runAll(t, small(40))
	want := sums["serial"]
	if math.IsNaN(want) || want == 0 {
		t.Fatalf("degenerate serial checksum %v", want)
	}
	for name, got := range sums {
		if math.Abs(got-want) > 1e-9*math.Abs(want) {
			t.Errorf("%s checksum %v != serial %v", name, got, want)
		}
	}
}

func TestAllVersionsMatchSerialFullRemote(t *testing.T) {
	sums := runAll(t, small(100))
	want := sums["serial"]
	for name, got := range sums {
		if math.Abs(got-want) > 1e-9*math.Abs(want) {
			t.Errorf("%s checksum %v != serial %v", name, got, want)
		}
	}
}

func TestOptimizationOrdering(t *testing.T) {
	// At 100% remote edges, ghost must beat base and bulk must beat ghost,
	// in both languages (the paper's headline EM3D result).
	cfg := machine.SP1997()
	p := small(100)
	base := Build(p)

	elapsed := make(map[string]float64)
	for _, v := range Variants() {
		g := base.Clone()
		res, err := RunSplitC(cfg, g, v)
		if err != nil {
			t.Fatal(err)
		}
		elapsed["sc/"+string(v)] = float64(res.Elapsed)

		g = base.Clone()
		res2, err := RunCCXX(cfg, g, v, nil)
		if err != nil {
			t.Fatal(err)
		}
		elapsed["cc/"+string(v)] = float64(res2.Elapsed)
	}
	for _, lang := range []string{"sc", "cc"} {
		if !(elapsed[lang+"/ghost"] < elapsed[lang+"/base"]) {
			t.Errorf("%s: ghost (%v) not faster than base (%v)", lang, elapsed[lang+"/ghost"], elapsed[lang+"/base"])
		}
		if !(elapsed[lang+"/bulk"] < elapsed[lang+"/ghost"]) {
			t.Errorf("%s: bulk (%v) not faster than ghost (%v)", lang, elapsed[lang+"/bulk"], elapsed[lang+"/ghost"])
		}
	}
}

func TestCCXXSlowerButCompetitive(t *testing.T) {
	cfg := machine.SP1997()
	p := small(100)
	base := Build(p)
	for _, v := range Variants() {
		g := base.Clone()
		sc, err := RunSplitC(cfg, g, v)
		if err != nil {
			t.Fatal(err)
		}
		g = base.Clone()
		cc, err := RunCCXX(cfg, g, v, nil)
		if err != nil {
			t.Fatal(err)
		}
		ratio := cc.Ratio(sc)
		if ratio < 1.0 {
			t.Errorf("%s: cc++ faster than split-c (%.2f)", v, ratio)
		}
		if ratio > 8 {
			t.Errorf("%s: cc++/split-c ratio %.2f implausibly large", v, ratio)
		}
	}
}

func TestDeterministicElapsed(t *testing.T) {
	cfg := machine.SP1997()
	p := small(70)
	run := func() int64 {
		g := Build(p)
		res, err := RunSplitC(cfg, g, Ghost)
		if err != nil {
			t.Fatal(err)
		}
		return int64(res.Elapsed)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %d vs %d", a, b)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := Build(small(40))
	c := g.Clone()
	g.EVals[0][0] = 999
	if c.EVals[0][0] == 999 {
		t.Fatal("clone shares value storage")
	}
}

// Property: for random small graphs, Split-C ghost matches serial exactly.
func TestGhostMatchesSerialProperty(t *testing.T) {
	f := func(seed int64, pctRaw uint8) bool {
		p := Params{GraphNodes: 48, Degree: 3, Procs: 4,
			RemotePct: int(pctRaw) % 101, Iters: 2, Seed: seed}
		base := Build(p)
		serial := base.Clone()
		RunSerial(serial)
		g := base.Clone()
		res, err := RunSplitC(machine.SP1997(), g, Ghost)
		if err != nil {
			return false
		}
		return math.Abs(res.Checksum-serial.Checksum()) <= 1e-9*math.Abs(serial.Checksum())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
