// Package appstat holds the measurement plumbing shared by the three
// application reproductions (EM3D, Water, LU): per-run results with the
// paper's five-way time breakdown (net / cpu / thread mgmt / thread sync /
// runtime) and helpers to compute it from machine accounting snapshots.
package appstat

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/machine"
)

// Result is one application run's measurement.
type Result struct {
	// Lang is "split-c" or "cc++"; Variant names the program version.
	Lang    string `json:"lang"`
	Variant string `json:"variant"`
	// Transport is the message layer ("ThAM", "Nexus", or "" for Split-C).
	Transport string `json:"transport,omitempty"`
	// Elapsed is the virtual wall-clock time of the measured region.
	Elapsed time.Duration `json:"elapsed"`
	// Procs is the number of processors.
	Procs int `json:"procs"`
	// Work is the denominator for per-unit reporting (edges×iters for EM3D,
	// etc.); PerUnit is Elapsed/Work when Work > 0.
	Work    int64         `json:"work"`
	PerUnit time.Duration `json:"per_unit"`
	// Busy is the per-category virtual time summed over all processors
	// within the measured region.
	Busy machine.Snapshot `json:"busy"`
	// Checksum cross-validates numeric output between language versions.
	Checksum float64 `json:"checksum"`
}

// Measure fills the timing fields from a measured region: start/end virtual
// times plus the per-node accounting deltas.
func (r *Result) Measure(start, end time.Duration, deltas []machine.Snapshot) {
	r.Elapsed = end - start
	r.Procs = len(deltas)
	r.Busy = machine.MergeSnapshots(deltas...)
	if r.Work > 0 {
		r.PerUnit = time.Duration(int64(r.Elapsed) / r.Work)
	}
}

// Wait returns the time processors spent neither computing nor in any
// accounted category — idle/blocked-on-network time. Added to CatNet it
// forms the "net" bar of the paper's figures.
func (r *Result) Wait() time.Duration {
	total := time.Duration(r.Procs) * r.Elapsed
	return total - r.Busy.Busy()
}

// Component returns a category's share of total processor-time, with CatNet
// including wait time (the paper's "net" bar covers time in and waiting on
// the message layer).
func (r *Result) Component(c machine.Category) time.Duration {
	d := r.Busy.Get(c)
	if c == machine.CatNet {
		d += r.Wait()
	}
	return d
}

// Fraction returns a component as a fraction of total processor-time.
func (r *Result) Fraction(c machine.Category) float64 {
	total := time.Duration(r.Procs) * r.Elapsed
	if total == 0 {
		return 0
	}
	return float64(r.Component(c)) / float64(total)
}

// Ratio returns this run's elapsed time relative to a baseline run.
func (r *Result) Ratio(base *Result) float64 {
	if base.Elapsed == 0 {
		return 0
	}
	return float64(r.Elapsed) / float64(base.Elapsed)
}

// Name formats "lang/variant".
func (r *Result) Name() string { return r.Lang + "/" + r.Variant }

// BreakdownRow renders the five normalized components against a baseline's
// elapsed time, matching the stacked bars of Figures 5 and 6: each bar
// element is this run's component scaled so that the baseline's total is 1.
func (r *Result) BreakdownRow(base *Result) string {
	var b strings.Builder
	denom := float64(base.Procs) * float64(base.Elapsed)
	for _, c := range machine.Categories() {
		fmt.Fprintf(&b, "%s=%.3f ", c, float64(r.Component(c))/denom)
	}
	fmt.Fprintf(&b, "total=%.3f", float64(r.Procs)*float64(r.Elapsed)/denom)
	return b.String()
}
