package appstat

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/machine"
)

func snap(cpu, net, rt time.Duration) machine.Snapshot {
	var s machine.Snapshot
	s.Buckets[machine.CatCPU] = cpu    //mpmdvet:ignore acctdirect fabricating a synthetic snapshot for unit tests
	s.Buckets[machine.CatNet] = net    //mpmdvet:ignore acctdirect fabricating a synthetic snapshot for unit tests
	s.Buckets[machine.CatRuntime] = rt //mpmdvet:ignore acctdirect fabricating a synthetic snapshot for unit tests
	return s
}

func TestMeasureAndComponents(t *testing.T) {
	r := &Result{Lang: "cc++", Variant: "x", Work: 100}
	deltas := []machine.Snapshot{
		snap(10*time.Microsecond, 5*time.Microsecond, 0),
		snap(20*time.Microsecond, 5*time.Microsecond, 10*time.Microsecond),
	}
	r.Measure(100*time.Microsecond, 200*time.Microsecond, deltas)
	if r.Elapsed != 100*time.Microsecond || r.Procs != 2 {
		t.Fatalf("elapsed %v procs %d", r.Elapsed, r.Procs)
	}
	if r.PerUnit != time.Microsecond {
		t.Fatalf("per unit %v", r.PerUnit)
	}
	// Total processor-time 200µs; busy 50µs; wait 150µs lands in net.
	if got := r.Wait(); got != 150*time.Microsecond {
		t.Fatalf("wait %v", got)
	}
	if got := r.Component(machine.CatNet); got != 160*time.Microsecond {
		t.Fatalf("net component %v", got)
	}
	if got := r.Component(machine.CatCPU); got != 30*time.Microsecond {
		t.Fatalf("cpu component %v", got)
	}
	// Fractions sum to 1.
	sum := 0.0
	for _, c := range machine.Categories() {
		sum += r.Fraction(c)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("fractions sum to %v", sum)
	}
}

func TestRatioAndName(t *testing.T) {
	a := &Result{Lang: "split-c", Variant: "v", Elapsed: 50 * time.Microsecond, Procs: 4}
	b := &Result{Lang: "cc++", Variant: "v", Elapsed: 125 * time.Microsecond, Procs: 4}
	if got := b.Ratio(a); got != 2.5 {
		t.Fatalf("ratio %v", got)
	}
	if a.Name() != "split-c/v" {
		t.Fatalf("name %q", a.Name())
	}
}

func TestBreakdownRowNormalizesAgainstBaseline(t *testing.T) {
	base := &Result{Elapsed: 100 * time.Microsecond, Procs: 2}
	base.Busy = machine.MergeSnapshots(snap(50*time.Microsecond, 0, 0))
	r := &Result{Elapsed: 200 * time.Microsecond, Procs: 2}
	r.Busy = machine.MergeSnapshots(snap(50*time.Microsecond, 0, 50*time.Microsecond))
	row := r.BreakdownRow(base)
	if !strings.Contains(row, "total=2.000") {
		t.Fatalf("row %q missing 2x total", row)
	}
	if !strings.Contains(row, "runtime=0.250") {
		t.Fatalf("row %q missing runtime fraction", row)
	}
}
