package lu

import (
	"time"

	"repro/internal/apps/appstat"
	"repro/internal/machine"
	"repro/internal/splitc"
)

// RunSplitC executes the Split-C version of blocked LU (sc-lu): one-way bulk
// stores broadcast each pivot block, and all perimeter blocks needed by a
// sub-step are prefetched with split-phase bulk gets before updating.
func RunSplitC(cfg machine.Config, s *State) (*appstat.Result, error) {
	m := machine.New(cfg, s.P.Procs)
	w := splitc.New(m)
	b := s.P.B

	// Per-processor landing area for broadcast pivot blocks, addressable by
	// the owner for one-way stores.
	pivotBuf := make([][]float64, s.P.Procs)
	for pc := range pivotBuf {
		pivotBuf[pc] = make([]float64, b*b)
	}

	res := &appstat.Result{
		Lang:    "split-c",
		Variant: "lu",
		Work:    int64(s.NB) * int64(s.NB) * int64(s.NB) / 3,
	}
	var starts []machine.Snapshot
	var startT time.Duration

	err := w.Run(func(p *splitc.Proc) {
		me := p.MyPC()
		cfgT := p.T.Cfg()
		expectStores := 0

		p.Barrier()
		if me == 0 {
			startT = time.Duration(p.T.Now())
			starts = starts[:0]
			for _, nd := range m.Nodes() {
				starts = append(starts, nd.Acct.Snapshot())
			}
		}
		p.Barrier()

		for I := 0; I < s.NB; I++ {
			// Sub-step 1: factor the pivot block; broadcast it.
			if s.Owner(I, I) == me {
				piv := s.Blocks[me][[2]int{I, I}]
				factorBlock(piv, b)
				p.T.Charge(machine.CatCPU, kernelCost(factorFlops(b), cfgT.FlopCost))
				for q := 0; q < s.P.Procs; q++ {
					p.BulkStore(splitc.GVF{PC: q, S: pivotBuf[q]}, piv)
				}
			}
			expectStores += b * b
			p.WaitStores(expectStores)
			piv := pivotBuf[me]

			// Sub-step 2: owners of pivot-row and pivot-column blocks update
			// them using the pivot block.
			for J := I + 1; J < s.NB; J++ {
				if s.Owner(I, J) == me {
					solveRow(piv, s.Blocks[me][[2]int{I, J}], b)
					p.T.Charge(machine.CatCPU, kernelCost(solveFlops(b), cfgT.FlopCost))
				}
			}
			for K := I + 1; K < s.NB; K++ {
				if s.Owner(K, I) == me {
					solveCol(piv, s.Blocks[me][[2]int{K, I}], b)
					p.T.Charge(machine.CatCPU, kernelCost(solveFlops(b), cfgT.FlopCost))
				}
			}
			p.Barrier()

			// Sub-step 3: prefetch every remote perimeter block this
			// processor's interior updates need, then update.
			rowCache := make(map[int][]float64)
			colCache := make(map[int][]float64)
			for J := I + 1; J < s.NB; J++ {
				for K := I + 1; K < s.NB; K++ {
					if s.Owner(K, J) != me {
						continue
					}
					if _, ok := rowCache[J]; !ok {
						rowCache[J] = fetchBlock(p, s, I, J)
					}
					if _, ok := colCache[K]; !ok {
						colCache[K] = fetchBlock(p, s, K, I)
					}
				}
			}
			p.Sync()
			for J := I + 1; J < s.NB; J++ {
				for K := I + 1; K < s.NB; K++ {
					if s.Owner(K, J) != me {
						continue
					}
					mulSub(s.Blocks[me][[2]int{K, J}], colCache[K], rowCache[J], b)
					p.T.Charge(machine.CatCPU, kernelCost(mulFlops(b), cfgT.FlopCost))
				}
			}
			p.Barrier()
		}

		if me == 0 {
			var deltas []machine.Snapshot
			for i, nd := range m.Nodes() {
				deltas = append(deltas, nd.Acct.Delta(starts[i]))
			}
			res.Measure(startT, time.Duration(p.T.Now()), deltas)
			res.Checksum = s.Checksum()
		}
	})
	return res, err
}

// fetchBlock returns block (I,J): the local storage when owned here, or a
// split-phase bulk get into a fresh buffer (completed by the caller's Sync).
func fetchBlock(p *splitc.Proc, s *State, I, J int) []float64 {
	own := s.Owner(I, J)
	key := [2]int{I, J}
	if own == p.MyPC() {
		return s.Blocks[own][key]
	}
	buf := make([]float64, s.P.B*s.P.B)
	p.BulkGet(buf, splitc.GVF{PC: own, S: s.Blocks[own][key]})
	return buf
}
