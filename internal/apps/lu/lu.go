// Package lu reproduces the paper's Blocked LU Decomposition application
// (SPLASH; Singh, Weber, Gupta 1992): LU factorization of a dense matrix
// divided into B×B blocks distributed across processors. Every step factors
// the pivot block, propagates it to the processors holding the pivot row and
// column, and updates the interior, fetching the freshly modified perimeter
// blocks first.
//
// The Split-C version transfers pivot blocks with one-way bulk stores and
// prefetches perimeter blocks with split-phase bulk gets; the CC++ version
// replaces the stores and prefetches with RMIs, exactly as §5 describes.
// Factorization is unpivoted, so inputs are made diagonally dominant.
package lu

import (
	"math/rand"
	"time"
)

// Params configures an LU run.
type Params struct {
	// N is the matrix dimension (512 in the paper).
	N int
	// B is the block size (16 in the paper).
	B int
	// Procs is the number of processors, arranged in a 2D grid
	// (4 = 2×2 in the paper).
	Procs int
	// Seed makes the input matrix deterministic.
	Seed int64
}

// Paper returns the paper's configuration (512×512, 16×16 blocks, 4 procs).
func Paper() Params { return Params{N: 512, B: 16, Procs: 4, Seed: 5} }

// State is the distributed blocked matrix.
type State struct {
	P Params
	// NB is the number of blocks per dimension.
	NB int
	// GridR, GridC are the processor-grid dimensions (GridR*GridC = Procs).
	GridR, GridC int
	// Blocks[p] maps (I,J) to the owned B*B block (row-major).
	Blocks []map[[2]int][]float64
}

// Build creates a diagonally dominant random matrix in blocked, distributed
// form.
func Build(p Params) *State {
	if p.N%p.B != 0 {
		panic("lu: N must be a multiple of B")
	}
	gr, gc := gridShape(p.Procs)
	s := &State{P: p, NB: p.N / p.B, GridR: gr, GridC: gc}
	for pc := 0; pc < p.Procs; pc++ {
		s.Blocks = append(s.Blocks, make(map[[2]int][]float64))
	}
	rng := rand.New(rand.NewSource(p.Seed))
	for i := 0; i < p.N; i++ {
		for j := 0; j < p.N; j++ {
			v := rng.Float64() - 0.5
			if i == j {
				v += float64(p.N) // diagonal dominance
			}
			s.set(i, j, v)
		}
	}
	return s
}

// gridShape returns the most square processor grid.
func gridShape(procs int) (r, c int) {
	r = 1
	for d := 1; d*d <= procs; d++ {
		if procs%d == 0 {
			r = d
		}
	}
	return r, procs / r
}

// Owner returns the processor owning block (I,J) under the 2D cyclic layout.
func (s *State) Owner(I, J int) int { return (I%s.GridR)*s.GridC + J%s.GridC }

// Block returns the block (I,J) from its owner's store.
func (s *State) Block(I, J int) []float64 { return s.Blocks[s.Owner(I, J)][[2]int{I, J}] }

func (s *State) set(i, j int, v float64) {
	I, J := i/s.P.B, j/s.P.B
	own := s.Owner(I, J)
	key := [2]int{I, J}
	blk := s.Blocks[own][key]
	if blk == nil {
		blk = make([]float64, s.P.B*s.P.B)
		s.Blocks[own][key] = blk
	}
	blk[(i%s.P.B)*s.P.B+(j%s.P.B)] = v
}

// At returns element (i,j) of the distributed matrix.
func (s *State) At(i, j int) float64 {
	return s.Block(i/s.P.B, j/s.P.B)[(i%s.P.B)*s.P.B+(j%s.P.B)]
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	ns := &State{P: s.P, NB: s.NB, GridR: s.GridR, GridC: s.GridC}
	for pc := range s.Blocks {
		m := make(map[[2]int][]float64, len(s.Blocks[pc]))
		for k, v := range s.Blocks[pc] {
			m[k] = append([]float64(nil), v...)
		}
		ns.Blocks = append(ns.Blocks, m)
	}
	return ns
}

// Checksum sums all matrix elements.
func (s *State) Checksum() float64 {
	sum := 0.0
	for pc := range s.Blocks {
		for _, blk := range s.Blocks[pc] {
			for _, v := range blk {
				sum += v
			}
		}
	}
	return sum
}

// --- block kernels (shared by all versions) ---------------------------------

// factorBlock performs the in-place unpivoted LU factorization of a diagonal
// block (unit lower-triangular L below, U on and above the diagonal).
func factorBlock(a []float64, b int) {
	for k := 0; k < b; k++ {
		pivot := a[k*b+k]
		for i := k + 1; i < b; i++ {
			a[i*b+k] /= pivot
			lik := a[i*b+k]
			for j := k + 1; j < b; j++ {
				a[i*b+j] -= lik * a[k*b+j]
			}
		}
	}
}

// solveRow applies L(pivot)^-1 to a pivot-row block: A[I,J] becomes U.
func solveRow(pivot, blk []float64, b int) {
	for k := 0; k < b; k++ {
		for i := k + 1; i < b; i++ {
			lik := pivot[i*b+k]
			for j := 0; j < b; j++ {
				blk[i*b+j] -= lik * blk[k*b+j]
			}
		}
	}
}

// solveCol applies U(pivot)^-1 from the right to a pivot-column block:
// A[K,I] becomes L.
func solveCol(pivot, blk []float64, b int) {
	for k := 0; k < b; k++ {
		ukk := pivot[k*b+k]
		for i := 0; i < b; i++ {
			blk[i*b+k] /= ukk
			lik := blk[i*b+k]
			for j := k + 1; j < b; j++ {
				blk[i*b+j] -= lik * pivot[k*b+j]
			}
		}
	}
}

// mulSub computes dst -= a × bm for B×B blocks.
func mulSub(dst, a, bm []float64, b int) {
	for i := 0; i < b; i++ {
		for k := 0; k < b; k++ {
			aik := a[i*b+k]
			if aik == 0 {
				continue
			}
			row := bm[k*b : k*b+b]
			drow := dst[i*b : i*b+b]
			for j := 0; j < b; j++ {
				drow[j] -= aik * row[j]
			}
		}
	}
}

// Flop charges for the kernels.
func factorFlops(b int) int { return 2 * b * b * b / 3 }
func solveFlops(b int) int  { return b * b * b }
func mulFlops(b int) int    { return 2 * b * b * b }

func kernelCost(flops int, flopCost time.Duration) time.Duration {
	return time.Duration(flops) * flopCost
}

// RunSerial factors the matrix in place with the same blocked algorithm the
// distributed versions use, as the correctness reference.
func RunSerial(s *State) {
	b := s.P.B
	for I := 0; I < s.NB; I++ {
		piv := s.Block(I, I)
		factorBlock(piv, b)
		for J := I + 1; J < s.NB; J++ {
			solveRow(piv, s.Block(I, J), b)
		}
		for K := I + 1; K < s.NB; K++ {
			solveCol(piv, s.Block(K, I), b)
		}
		for K := I + 1; K < s.NB; K++ {
			for J := I + 1; J < s.NB; J++ {
				mulSub(s.Block(K, J), s.Block(K, I), s.Block(I, J), b)
			}
		}
	}
}

// ReconstructError returns max |(L·U)[i,j] - orig[i,j]| over a sample of
// rows, verifying the factorization against the original matrix.
func ReconstructError(fact, orig *State, sampleRows int) float64 {
	n := fact.P.N
	if sampleRows > n {
		sampleRows = n
	}
	maxErr := 0.0
	for si := 0; si < sampleRows; si++ {
		i := si * (n / sampleRows)
		for j := 0; j < n; j++ {
			// (L·U)[i,j] = sum_k L[i,k]*U[k,j], L unit lower.
			sum := 0.0
			kmax := i
			if j < i {
				kmax = j
			}
			for k := 0; k <= kmax; k++ {
				var l, u float64
				if k == i {
					l = 1
				} else {
					l = fact.At(i, k)
				}
				u = fact.At(k, j)
				sum += l * u
			}
			diff := sum - orig.At(i, j)
			if diff < 0 {
				diff = -diff
			}
			if diff > maxErr {
				maxErr = diff
			}
		}
	}
	return maxErr
}
