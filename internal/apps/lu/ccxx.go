package lu

import (
	"time"

	"repro/internal/apps/appstat"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/threads"
)

// luObj is the per-processor CC++ processor object owning a share of the
// blocked matrix.
type luObj struct {
	s        *State
	me       int
	pivotBuf []float64
	recvd    int
}

func luClass() *core.Class {
	return &core.Class{
		Name: "LU",
		New:  func() any { return &luObj{} },
		Methods: []*core.Method{
			{
				// putPivot(data): the RMI replacement for the one-way pivot
				// broadcast store.
				Name:     "putPivot",
				Threaded: true,
				NewArgs:  func() []core.Arg { return []core.Arg{&core.F64Slice{}} },
				Fn: func(t *threads.Thread, self any, args []core.Arg, ret core.Arg) {
					o := self.(*luObj)
					copy(o.pivotBuf, args[0].(*core.F64Slice).V)
					o.recvd++
				},
			},
			{
				// getBlock(I, J): the RMI replacement for the split-phase
				// prefetch; returns a copy of the block (paying the
				// bulk-return double copy at the initiator).
				Name:     "getBlock",
				Threaded: true,
				NewArgs:  func() []core.Arg { return []core.Arg{&core.I64{}, &core.I64{}} },
				NewRet:   func() core.Arg { return &core.F64Slice{} },
				Fn: func(t *threads.Thread, self any, args []core.Arg, ret core.Arg) {
					o := self.(*luObj)
					I := int(args[0].(*core.I64).V)
					J := int(args[1].(*core.I64).V)
					blk := o.s.Blocks[o.me][[2]int{I, J}]
					out := ret.(*core.F64Slice)
					if cap(out.V) < len(blk) {
						out.V = make([]float64, len(blk))
					}
					out.V = out.V[:len(blk)]
					copy(out.V, blk)
				},
			},
		},
	}
}

// RunCCXX executes the CC++ version of blocked LU (cc-lu) over the given
// transport options (nil mkOpts means CC++/ThAM), mutating s and returning
// the measurement.
func RunCCXX(cfg machine.Config, s *State, mkOpts func(m *machine.Machine) core.Options) (*appstat.Result, error) {
	m := machine.New(cfg, s.P.Procs)
	var opts core.Options
	if mkOpts != nil {
		opts = mkOpts(m)
	}
	rt := core.NewRuntimeOpts(m, opts)
	rt.RegisterClass(luClass())
	b := s.P.B

	objs := make([]core.GPtr, s.P.Procs)
	for pc := 0; pc < s.P.Procs; pc++ {
		objs[pc] = rt.CreateObject(pc, "LU")
		o := rt.Object(objs[pc]).(*luObj)
		o.s, o.me = s, pc
		o.pivotBuf = make([]float64, b*b)
	}
	bar := rt.NewBarrier(0, s.P.Procs)

	res := &appstat.Result{
		Lang:      "cc++",
		Variant:   "lu",
		Transport: rt.TransportName(),
		Work:      int64(s.NB) * int64(s.NB) * int64(s.NB) / 3,
	}
	var starts []machine.Snapshot
	var startT time.Duration

	for pc := 0; pc < s.P.Procs; pc++ {
		me := pc
		rt.OnNode(me, func(t *threads.Thread) {
			self := rt.Object(objs[me]).(*luObj)
			cfgT := t.Cfg()
			expect := 0

			bar.Arrive(t)
			if me == 0 {
				startT = time.Duration(t.Now())
				starts = starts[:0]
				for _, nd := range m.Nodes() {
					starts = append(starts, nd.Acct.Snapshot())
				}
			}
			bar.Arrive(t)

			for I := 0; I < s.NB; I++ {
				// Sub-step 1: factor and broadcast the pivot block via RMIs.
				if s.Owner(I, I) == me {
					piv := s.Blocks[me][[2]int{I, I}]
					factorBlock(piv, b)
					t.Charge(machine.CatCPU, kernelCost(factorFlops(b), cfgT.FlopCost))
					for q := 0; q < s.P.Procs; q++ {
						rt.CallOneWay(t, objs[q], "putPivot", []core.Arg{&core.F64Slice{V: piv}})
					}
				}
				expect++
				rt.WaitLocal(t, func() bool { return self.recvd >= expect })
				piv := self.pivotBuf

				// Sub-step 2: perimeter updates.
				for J := I + 1; J < s.NB; J++ {
					if s.Owner(I, J) == me {
						solveRow(piv, s.Blocks[me][[2]int{I, J}], b)
						t.Charge(machine.CatCPU, kernelCost(solveFlops(b), cfgT.FlopCost))
					}
				}
				for K := I + 1; K < s.NB; K++ {
					if s.Owner(K, I) == me {
						solveCol(piv, s.Blocks[me][[2]int{K, I}], b)
						t.Charge(machine.CatCPU, kernelCost(solveFlops(b), cfgT.FlopCost))
					}
				}
				bar.Arrive(t)

				// Sub-step 3: fetch the needed perimeter blocks with plain
				// (synchronous) RMIs — "the one-way stores and prefetches
				// are replaced by RMIs" — then update the interior. Each
				// fetch blocks for the bulk round trip plus the return
				// path's double copy; this is where cc-lu loses most of its
				// ground to sc-lu's pipelined split-phase prefetches.
				rowCache := make(map[int][]float64)
				colCache := make(map[int][]float64)
				fetch := func(I2, J2 int, cache map[int][]float64, key int) {
					if _, ok := cache[key]; ok {
						return
					}
					own := s.Owner(I2, J2)
					if own == me {
						cache[key] = s.Blocks[me][[2]int{I2, J2}]
						return
					}
					ret := &core.F64Slice{V: make([]float64, b*b)}
					rt.Call(t, objs[own], "getBlock",
						[]core.Arg{&core.I64{V: int64(I2)}, &core.I64{V: int64(J2)}}, ret)
					cache[key] = ret.V
				}
				for J := I + 1; J < s.NB; J++ {
					for K := I + 1; K < s.NB; K++ {
						if s.Owner(K, J) != me {
							continue
						}
						fetch(I, J, rowCache, J)
						fetch(K, I, colCache, K)
					}
				}
				for J := I + 1; J < s.NB; J++ {
					for K := I + 1; K < s.NB; K++ {
						if s.Owner(K, J) != me {
							continue
						}
						mulSub(s.Blocks[me][[2]int{K, J}], colCache[K], rowCache[J], b)
						t.Charge(machine.CatCPU, kernelCost(mulFlops(b), cfgT.FlopCost))
					}
				}
				bar.Arrive(t)
			}

			if me == 0 {
				var deltas []machine.Snapshot
				for i, nd := range m.Nodes() {
					deltas = append(deltas, nd.Acct.Delta(starts[i]))
				}
				res.Measure(startT, time.Duration(t.Now()), deltas)
				res.Checksum = s.Checksum()
			}
		})
	}
	if err := rt.Run(); err != nil {
		return nil, err
	}
	return res, nil
}
