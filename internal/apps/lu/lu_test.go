package lu

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/machine"
)

func small() Params { return Params{N: 64, B: 8, Procs: 4, Seed: 5} }

func TestGridShape(t *testing.T) {
	cases := map[int][2]int{1: {1, 1}, 2: {1, 2}, 4: {2, 2}, 6: {2, 3}, 8: {2, 4}, 9: {3, 3}, 16: {4, 4}}
	for p, want := range cases {
		r, c := gridShape(p)
		if r != want[0] || c != want[1] {
			t.Errorf("gridShape(%d) = %d,%d want %v", p, r, c, want)
		}
	}
}

func TestOwnershipPartition(t *testing.T) {
	s := Build(small())
	total := 0
	for pc := range s.Blocks {
		for key := range s.Blocks[pc] {
			if s.Owner(key[0], key[1]) != pc {
				t.Fatalf("block %v stored on %d but owned by %d", key, pc, s.Owner(key[0], key[1]))
			}
			total++
		}
	}
	if total != s.NB*s.NB {
		t.Fatalf("%d blocks stored, want %d", total, s.NB*s.NB)
	}
}

func TestAtAccessor(t *testing.T) {
	s := Build(small())
	// Diagonal dominance must be visible through At.
	for i := 0; i < s.P.N; i += 7 {
		if s.At(i, i) < float64(s.P.N)-1 {
			t.Fatalf("diagonal (%d,%d) = %v not dominant", i, i, s.At(i, i))
		}
	}
}

func TestSerialFactorizationReconstructs(t *testing.T) {
	orig := Build(small())
	fact := orig.Clone()
	RunSerial(fact)
	if err := ReconstructError(fact, orig, 16); err > 1e-8 {
		t.Fatalf("serial reconstruction error %g", err)
	}
}

func TestSerialReconstructProperty(t *testing.T) {
	f := func(seed int64) bool {
		p := Params{N: 32, B: 4, Procs: 4, Seed: seed}
		orig := Build(p)
		fact := orig.Clone()
		RunSerial(fact)
		return ReconstructError(fact, orig, 8) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitCMatchesSerial(t *testing.T) {
	orig := Build(small())
	serial := orig.Clone()
	RunSerial(serial)
	dist := orig.Clone()
	res, err := RunSplitC(machine.SP1997(), dist)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Checksum-serial.Checksum()) > 1e-9*math.Abs(serial.Checksum()) {
		t.Fatalf("split-c checksum %v vs serial %v", res.Checksum, serial.Checksum())
	}
	if e := ReconstructError(dist, orig, 16); e > 1e-8 {
		t.Fatalf("split-c reconstruction error %g", e)
	}
}

func TestCCXXMatchesSerial(t *testing.T) {
	orig := Build(small())
	serial := orig.Clone()
	RunSerial(serial)
	dist := orig.Clone()
	res, err := RunCCXX(machine.SP1997(), dist, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Checksum-serial.Checksum()) > 1e-9*math.Abs(serial.Checksum()) {
		t.Fatalf("cc++ checksum %v vs serial %v", res.Checksum, serial.Checksum())
	}
	if e := ReconstructError(dist, orig, 16); e > 1e-8 {
		t.Fatalf("cc++ reconstruction error %g", e)
	}
}

func TestCCXXSlowerWithinBand(t *testing.T) {
	// Paper: cc-lu is ~3.6x slower than sc-lu.
	orig := Build(small())
	sc, err := RunSplitC(machine.SP1997(), orig.Clone())
	if err != nil {
		t.Fatal(err)
	}
	cc, err := RunCCXX(machine.SP1997(), orig.Clone(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ratio := cc.Ratio(sc)
	if ratio < 1.0 {
		t.Fatalf("cc-lu faster than sc-lu: %.2f", ratio)
	}
	if ratio > 10 {
		t.Fatalf("cc-lu/sc-lu ratio %.2f implausible", ratio)
	}
}

func TestSyncOverheadSignificantInCCLU(t *testing.T) {
	// Paper: intense synchronization is ~32% of cc-lu's gap; verify thread
	// sync is a visible component of the CC++ run.
	orig := Build(small())
	cc, err := RunCCXX(machine.SP1997(), orig.Clone(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if f := cc.Fraction(machine.CatThreadSync); f <= 0 {
		t.Fatalf("thread-sync fraction %v, want > 0", f)
	}
	if cc.Busy.Counters[machine.CntSyncOp] == 0 {
		t.Fatal("no sync ops counted")
	}
}

func TestDeterministicElapsed(t *testing.T) {
	run := func() int64 {
		s := Build(small())
		res, err := RunSplitC(machine.SP1997(), s)
		if err != nil {
			t.Fatal(err)
		}
		return int64(res.Elapsed)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %d vs %d", a, b)
	}
}
