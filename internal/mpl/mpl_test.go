package mpl

import (
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/threads"
)

func rig(n int) (*machine.Machine, *World, []*threads.Scheduler) {
	m := machine.New(machine.SP1997(), n)
	w := New(m)
	scheds := make([]*threads.Scheduler, n)
	for i := 0; i < n; i++ {
		scheds[i] = threads.NewScheduler(m.Node(i))
		w.Attach(i, scheds[i])
	}
	return m, w, scheds
}

func TestPingPongRTTIs88us(t *testing.T) {
	m, w, scheds := rig(2)
	var rtt time.Duration
	scheds[0].Start("rank0", func(th *threads.Thread) {
		start := th.Now()
		w.Send(th, 0, 1, 1, nil)
		w.Recv(th, 0, 1, 2)
		rtt = time.Duration(th.Now() - start)
	})
	scheds[1].Start("rank1", func(th *threads.Thread) {
		w.Recv(th, 1, 0, 1)
		w.Send(th, 1, 0, 2, nil)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if rtt != 88*time.Microsecond {
		t.Fatalf("MPL RTT = %v, want 88µs (paper's reference)", rtt)
	}
}

func TestPayloadRoundTrip(t *testing.T) {
	m, w, scheds := rig(2)
	var got []byte
	scheds[0].Start("rank0", func(th *threads.Thread) {
		w.Send(th, 0, 1, 7, []byte("hello"))
	})
	scheds[1].Start("rank1", func(th *threads.Thread) {
		got, _ = w.Recv(th, 1, 0, 7)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
}

func TestTagMatching(t *testing.T) {
	// Receive tag 2 first even though tag 1 arrives first.
	m, w, scheds := rig(2)
	var order []int
	scheds[0].Start("rank0", func(th *threads.Thread) {
		w.Send(th, 0, 1, 1, []byte{1})
		w.Send(th, 0, 1, 2, []byte{2})
	})
	scheds[1].Start("rank1", func(th *threads.Thread) {
		b2, _ := w.Recv(th, 1, 0, 2)
		order = append(order, int(b2[0]))
		b1, _ := w.Recv(th, 1, 0, 1)
		order = append(order, int(b1[0]))
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if order[0] != 2 || order[1] != 1 {
		t.Fatalf("tag matching broken: %v", order)
	}
}

func TestAnySource(t *testing.T) {
	m, w, scheds := rig(3)
	var from int
	scheds[0].Start("rank0", func(th *threads.Thread) {
		_, from = w.Recv(th, 0, AnySource, 5)
	})
	scheds[2].Start("rank2", func(th *threads.Thread) {
		th.Compute(time.Microsecond)
		w.Send(th, 2, 0, 5, nil)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if from != 2 {
		t.Fatalf("source = %d, want 2", from)
	}
}
