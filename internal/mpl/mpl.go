// Package mpl models IBM's native MPL message layer, which the paper uses as
// a reference point: its round-trip latency under AIX 3.2.5 is 88 µs, 21 µs
// slower than the paper's 0-Word Simple CC++ RMI.
//
// Only the matched blocking send/receive pair needed for the reference
// micro-benchmark is provided. Messages are matched by (source, tag), with
// MPL-profile per-side overheads charged on both ends.
package mpl

import (
	"time"

	"repro/internal/machine"
	"repro/internal/threads"
)

// AnySource matches a receive against any sending node.
const AnySource = -1

// World is an MPL communicator over a machine.
type World struct {
	m     *machine.Machine
	ranks []*rank
}

type rank struct {
	node    *machine.Node
	sched   *threads.Scheduler
	queue   []envelope // arrived, unmatched messages
	waiters []*threads.Thread
}

type envelope struct {
	src  int
	tag  int
	data []byte
}

// New creates an MPL world over m. Attach must be called per node before use.
func New(m *machine.Machine) *World {
	w := &World{m: m}
	for _, node := range m.Nodes() {
		r := &rank{node: node}
		node.OnArrival = r.onArrival
		w.ranks = append(w.ranks, r)
	}
	return w
}

// Attach binds node i to its scheduler.
func (w *World) Attach(i int, s *threads.Scheduler) { w.ranks[i].sched = s }

func (r *rank) onArrival() {
	for {
		pkt, ok := r.node.PopInbox()
		if !ok {
			break
		}
		r.queue = append(r.queue, pkt.Payload.(envelope))
	}
	ws := r.waiters
	r.waiters = nil
	for _, t := range ws {
		r.sched.MakeReady(t)
	}
}

// Send transmits data to node dst with the given tag, charging MPL's
// per-message sender overhead plus per-byte occupancy. MPL's blocking send
// completes once the message is on the wire (standard-mode semantics for
// small messages).
func (w *World) Send(t *threads.Thread, me, dst, tag int, data []byte) {
	cfg := t.Cfg()
	r := w.ranks[me]
	n := len(data)
	r.node.Acct.Count(machine.CntMsgShort, 1)
	r.node.Acct.Count(machine.CntBytesSent, int64(n))
	t.Charge(machine.CatNet, cfg.MPLOverhead+time.Duration(n)*cfg.GapPerByte)
	cp := make([]byte, n)
	copy(cp, data)
	r.node.Send(dst, time.Duration(n)*cfg.GapPerByte, n, envelope{src: me, tag: tag, data: cp})
}

// Recv blocks until a message with the given tag arrives from src
// (or from anyone when src == AnySource), charges the receive overhead, and
// returns the payload and actual source.
func (w *World) Recv(t *threads.Thread, me, src, tag int) ([]byte, int) {
	cfg := t.Cfg()
	r := w.ranks[me]
	for {
		for i, env := range r.queue {
			if env.tag != tag || (src != AnySource && env.src != src) {
				continue
			}
			r.queue = append(r.queue[:i], r.queue[i+1:]...)
			t.Charge(machine.CatNet, cfg.MPLOverhead)
			return env.data, env.src
		}
		r.waiters = append(r.waiters, t)
		t.Block()
	}
}
