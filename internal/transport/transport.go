// Package transport defines the backend seam between the machine model and
// the substrate that actually executes it.
//
// Everything above this interface — the machine's nodes and accounting, the
// cooperative threads package, the Active Messages engine, and both language
// runtimes — is written against two small contracts:
//
//   - Proc: a schedulable context with park/unpark/sleep semantics, exactly
//     the primitives the thread scheduler hands CPUs around with;
//   - Backend: node-affined process creation, message delivery into a node's
//     execution context, timers, and a clock.
//
// Two implementations exist:
//
//   - transport/simnet wraps the deterministic discrete-event engine
//     (internal/sim) calibrated to the paper's 1997 IBM SP. Virtual time
//     advances by the configured costs; runs are reproducible bit-for-bit.
//   - transport/live maps every Proc to a real goroutine and the clock to
//     time.Now(). Nodes execute with true hardware concurrency; modelled
//     latencies are ignored and messages travel as fast as the machine
//     allows.
//
// The contracts encode the concurrency discipline the upper layers rely on:
// at most one Proc of a given node runs at any instant (a node has one CPU),
// and delivery/timer callbacks for a node execute inside that same mutual
// exclusion. The simulator gets this for free from its global event loop; the
// live backend enforces it per node, which is what lets the unmodified
// runtimes — schedulers, handler tables, buffer managers and all — run on
// real parallel hardware.
package transport

import (
	"time"

	"repro/internal/metrics"
	"repro/internal/wire"
)

// Proc is one schedulable context on a node: a simulated process on the
// simnet backend, a goroutine on the live backend. The thread scheduler
// builds its cooperative threads directly on these primitives.
//
// All methods except Unpark must be called from the Proc's own execution
// context. Unpark may be called from any execution context of the same node
// (another Proc, or a delivery/timer callback); it must not be called from a
// different node's context.
type Proc interface {
	// Park blocks the context until Unpark. If an Unpark permit is already
	// pending (wake raced ahead of sleep), Park consumes it and returns
	// immediately — gopark/goready semantics.
	Park()
	// Unpark makes a parked context runnable, or records a single permit if
	// it is not parked.
	Unpark()
	// Sleep accounts d of modelled CPU time. The simnet backend advances
	// virtual time by d while other nodes (and this node's message
	// arrivals) proceed; the live backend treats the modelled cost as
	// already paid by real execution and only opens a delivery window.
	Sleep(d time.Duration)
	// Now returns the backend clock: virtual time on simnet, wall-clock
	// time on live.
	Now() time.Duration
	// Name returns the debug name given at Go time.
	Name() string
}

// Topology is an optional Backend extension for backends whose nodes are
// sharded across address spaces (the netlive backend: one OS process per
// shard). Single-address-space backends simply do not implement it; callers
// treat every node as local then.
type Topology interface {
	// NumShards reports how many address spaces the machine spans.
	NumShards() int
	// Shard returns this process's shard index (shard 0 is the parent).
	Shard() int
	// IsLocal reports whether node executes in this address space.
	IsLocal(node int) bool
	// LocalNodes returns the nodes of this shard, in ID order.
	LocalNodes() []int
	// LocalQuiesced tells the backend that every node program of this shard
	// has finished. fn runs exactly once — possibly on an internal backend
	// goroutine — after every shard of the machine has quiesced; runtimes use
	// it to begin their (grace-delayed) machine-wide shutdown, so that a
	// shard whose programs finished early keeps serving remote invocations
	// until the whole machine is done.
	LocalQuiesced(fn func())
}

// ShardBackend is the message plane of a sharded backend: the machine layer
// routes packets for non-local nodes through DeliverRemote as serialized
// frames, and receives frames from peer shards through the handler installed
// with SetRemoteHandler.
type ShardBackend interface {
	Topology
	// DeliverRemote ships an encoded packet payload to the shard owning dst.
	// Ownership of frame transfers to the backend (released after the bytes
	// are on the wire). size is the modelled wire size of the packet.
	// Per-sender delivery order to a given destination is preserved.
	DeliverRemote(src, dst, size int, frame *wire.Buf)
	// SetRemoteHandler installs the upcall for packets arriving from peer
	// shards. fn runs on a backend reader goroutine; payload is valid only
	// for the duration of the call (the backend recycles the frame buffer).
	SetRemoteHandler(fn func(src, dst, size int, payload []byte))
}

// FrameMarshaler is a packet payload that can serialize itself into
// caller-provided memory (structurally identical to the machine layer's
// WirePayload, restated here so the transport seam does not import the
// machine). EncodeWire consumes the payload: pooled resources it holds are
// released, and the caller must not touch it afterwards.
type FrameMarshaler interface {
	// WireLen returns the serialized length.
	WireLen() int
	// EncodeWire serializes into b (len(b) >= WireLen()) and returns the
	// bytes written, consuming the payload.
	EncodeWire(b []byte) int
}

// SlotSender is an optional extension of sharded backends with a zero-copy
// frame fast path: instead of encoding into a pooled frame and handing it
// to DeliverRemote, the machine layer offers the payload's marshaler and
// the backend serializes it directly into transport-owned memory (a
// shared-memory ring slot on the netlive backend).
type SlotSender interface {
	// DeliverSlot marshals wp straight into a transport slot bound for the
	// shard owning dst and reports true. False means no slot path to that
	// shard exists right now (not co-resident, disabled, or the ring is
	// unusable); wp has NOT been consumed and the caller must fall back to
	// the DeliverRemote frame path. Per-sender delivery order to a given
	// destination is preserved among slot-delivered frames; a configuration
	// switches between slot and frame paths only at construction, never
	// mid-stream, so the two paths do not reorder against each other.
	DeliverSlot(src, dst, size int, wp FrameMarshaler) bool
}

// MetricsSource is an optional Backend extension for backends that record
// wall-clock metrics (the live and netlive backends). The simulator does not
// implement it — its virtual time is already the full instrumented story —
// and every recording site above the seam nil-checks the registry, so a
// backend without metrics pays nothing.
type MetricsSource interface {
	// NodeMetrics returns the registry recording for node, or nil when the
	// node is not local to this address space.
	NodeMetrics(node int) *metrics.Registry
	// MetricsSnapshot merges this address space's registries (per-node plus
	// any backend-plane registry) into one snapshot.
	MetricsSnapshot() metrics.Snapshot
}

// StatsPlane is an optional extension of sharded backends carrying the
// control-plane stats protocol (the netlive kStats frame): each worker shard
// serializes a stats payload — the machine layer provides it — and ships it
// to shard 0, which merges all shards into one machine-wide report.
type StatsPlane interface {
	// SetStatsProvider installs the callback that serializes this shard's
	// stats payload. The backend calls it when a shard reports: at quiesce
	// (always) and on a parent-initiated request. It may run on a backend
	// goroutine concurrently with node execution, so the provider must read
	// racily-safe state only (the machine's accounting and metrics are
	// atomic).
	SetStatsProvider(fn func() []byte)
	// PeerStats returns the latest stats payload received from each peer
	// shard, keyed by shard index. Only the parent (shard 0) receives peer
	// stats; workers get an empty map. Complete after Run returns on the
	// parent.
	PeerStats() map[int][]byte
	// RequestStats asks every peer shard to report its stats now (mid-run
	// sampling). Fire-and-forget: fresh payloads show up in PeerStats as they
	// arrive. Parent only.
	RequestStats()
}

// DirectDeliverer is an optional Backend fast path for backends that ignore
// the modelled latency and deliver immediately (the live backend). The
// caller has already run the enqueue step itself (the machine's inbound
// queues are individually thread-safe), and notify is a long-lived closure —
// one per destination node, built once — so a delivery constructs no
// closures and performs no allocations. Semantics are exactly
// Deliver(dst, 0, <already performed>, notify).
type DirectDeliverer interface {
	DeliverDirect(dst int, notify func())
}

// Backend is an execution substrate for a multicomputer of NumNodes nodes.
//
// The per-node serialization contract: for any node i, at most one of the
// following runs at any instant — a Proc created with Go(i, ...), a notify
// callback passed to Deliver(i, ...), or a timer callback passed to
// After(i, ...). Callbacks and Procs of different nodes may run in parallel.
type Backend interface {
	// Name identifies the backend in reports ("sim" or "live").
	Name() string
	// NumNodes returns the number of nodes the backend was built for.
	NumNodes() int
	// Now returns the backend clock (virtual time, or monotonic wall time).
	Now() time.Duration
	// Go creates a Proc on node, running fn. Procs created before Run start
	// executing when Run is called; Procs created during Run start
	// immediately (subject to node serialization).
	Go(node int, name string, fn func(Proc)) Proc
	// Deliver transports one message to dst: enqueue makes the payload
	// visible in the destination's inbound queue, notify wakes the
	// destination's reception. enqueue happens before notify, each exactly
	// once. modelLatency is the modelled wire delay: simnet delays both
	// callbacks by it; live ignores it (the real wire is the real latency)
	// and runs enqueue immediately so the payload is visible to pollers,
	// then schedules notify into dst's execution context, batching
	// consecutive notifies to amortize handoff cost. Per-sender delivery
	// order to a given destination is preserved.
	Deliver(dst int, modelLatency time.Duration, enqueue, notify func())
	// After schedules fn to run in node's execution context after delay d
	// (virtual on simnet, wall on live).
	After(node int, d time.Duration, fn func())
	// Run executes until every Proc has finished. It returns an error if
	// the system cannot make progress (simnet: event queue drained with
	// procs parked; live: watchdog expired with procs still alive).
	Run() error
}
