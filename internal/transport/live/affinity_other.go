//go:build !linux

package live

// setAffinity is a no-op off Linux: Options.CPUAffinity degrades to plain
// OS-thread pinning (the goroutine is still locked to a thread; the kernel
// placement is left to the scheduler).
func setAffinity(cpus []int) {}

// threadAffinity reports nil off Linux (tests skip).
func threadAffinity() []int { return nil }
