//go:build linux

package live

import (
	"syscall"
	"unsafe"
)

// cpuMask is a kernel cpu_set_t large enough for 1024 CPUs.
type cpuMask [16]uint64

// setAffinity binds the calling OS thread to the given CPU set via raw
// sched_setaffinity (pid 0 = this thread). CPUs outside the mask's range
// are ignored; an effectively empty set is a no-op rather than an EINVAL
// from the kernel. Callers must have locked the goroutine to its thread.
func setAffinity(cpus []int) {
	var mask cpuMask
	set := 0
	for _, c := range cpus {
		if c >= 0 && c < len(mask)*64 {
			mask[c/64] |= 1 << (uint(c) % 64)
			set++
		}
	}
	if set == 0 {
		return
	}
	_, _, _ = syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY, 0,
		uintptr(unsafe.Sizeof(mask)), uintptr(unsafe.Pointer(&mask)))
}

// threadAffinity reports the calling OS thread's current CPU set (tests).
func threadAffinity() []int {
	var mask cpuMask
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_GETAFFINITY, 0,
		uintptr(unsafe.Sizeof(mask)), uintptr(unsafe.Pointer(&mask)))
	if errno != 0 {
		return nil
	}
	var out []int
	for w, bits := range mask {
		for b := 0; b < 64; b++ {
			if bits&(1<<uint(b)) != 0 {
				out = append(out, w*64+b)
			}
		}
	}
	return out
}
