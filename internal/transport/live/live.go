// Package live is the real-concurrency transport backend: every Proc is an
// ordinary goroutine, the clock is time.Now(), and modelled latencies are
// ignored — programs run as fast as the hardware allows.
//
// # Node serialization
//
// The upper layers (thread scheduler, AM endpoint, buffer managers) mutate
// per-node state with no locking of their own; on the simulator the global
// event loop makes that safe. Here each node owns one mutex — its "CPU" — and
// everything that executes in the node's context holds it: the node's proc
// goroutines while running, and the node's delivery worker while running
// notify/timer callbacks. Procs release the CPU when they park (condition
// wait) and briefly during Sleep, which is where the simulator would have let
// arrival events interleave, so the interleaving points match the calibrated
// backend exactly.
//
// # Message delivery
//
// Deliver runs enqueue immediately on the sender's goroutine (the machine
// layer's inbound queues are individually thread-safe), so a destination that
// is actively polling observes the message with no handoff at all. The notify
// callback — waking a parked receiver — must run in the destination's context,
// so it is pushed onto the node's unbounded notify queue and executed by the
// node's delivery worker, which drains the queue in batches under a single
// CPU acquisition (short-message batching). Senders never block on delivery,
// which rules out cross-node delivery deadlocks by construction.
package live

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Options tune the live backend. The zero value is ready to use.
type Options struct {
	// PinOSThread locks every proc goroutine to an OS thread. With one
	// runnable proc per node this approximates one kernel thread per node;
	// leave it off for thread-heavy workloads (parfor creates a proc per
	// iteration, and the Go runtime multiplexes them better unpinned).
	PinOSThread bool
	// Watchdog bounds Run: if the procs have not all finished within it,
	// Run returns a *StallError naming the survivors instead of hanging.
	// Zero means the 30s default.
	Watchdog time.Duration
	// Batch caps how many notify callbacks the delivery worker runs per CPU
	// acquisition. Zero means the 128 default.
	Batch int
	// Teardown bounds how long a stalled run (Run returned StallError) keeps
	// its delivery workers alive waiting for the stragglers: after it
	// expires the notify queues close and the workers plus the janitor exit,
	// so a run that never finishes leaks only the stuck procs themselves.
	// Zero means the 5s default.
	Teardown time.Duration
	// CPUAffinity, when non-empty, binds every proc goroutine and delivery
	// worker of this backend to the given CPU set (sched_setaffinity on
	// Linux; a no-op elsewhere). Each bound goroutine locks its OS thread
	// first so the mask sticks to a dedicated thread, and the thread is
	// retired with the goroutine rather than returned to the runtime's pool
	// with a narrowed mask. The netlive backend's CPUsPerShard knob fills
	// this per shard so shard boundaries align with cores/NUMA domains.
	CPUAffinity []int
}

// Backend is the live transport. Construct with New.
type Backend struct {
	opts  Options
	nodes []*lnode
	start chan struct{}
	ran   atomic.Bool
	epoch time.Time // clock origin; immutable after New (keeps the monotonic reading)
	wg    sync.WaitGroup

	mu   sync.Mutex
	live map[*Proc]struct{} //mpmdvet:guard mu

	// timers tracks outstanding After callbacks so shutdown can cancel them
	// instead of leaking them (a pending time.AfterFunc used to outlive Run,
	// and one that fired after closeQueues pushed onto a closed queue and
	// vanished silently). lateAfter counts callbacks that still slipped past
	// cancellation into a closed queue — surfaced through Err.
	timersMu  sync.Mutex
	timers    map[*time.Timer]struct{} //mpmdvet:guard timersMu
	closed    bool                     //mpmdvet:guard timersMu
	lateAfter int                      //mpmdvet:guard timersMu
}

// New builds a live backend for n nodes and starts the per-node delivery
// workers.
func New(n int, opts Options) *Backend {
	if n <= 0 {
		panic("live: need at least one node")
	}
	if opts.Watchdog <= 0 {
		opts.Watchdog = 30 * time.Second
	}
	if opts.Batch <= 0 {
		opts.Batch = 128
	}
	if opts.Teardown <= 0 {
		opts.Teardown = 5 * time.Second
	}
	b := &Backend{
		opts:   opts,
		start:  make(chan struct{}),
		epoch:  time.Now(),
		live:   make(map[*Proc]struct{}),
		timers: make(map[*time.Timer]struct{}),
	}
	for i := 0; i < n; i++ {
		nd := &lnode{id: i, met: metrics.NewRegistry()}
		nd.q.cond = sync.NewCond(&nd.q.mu)
		b.nodes = append(b.nodes, nd)
		go func() {
			// Delivery callbacks run node context too: bind the worker to the
			// same CPU set as the procs. The locked thread dies with the
			// goroutine, taking its narrowed mask with it.
			if len(opts.CPUAffinity) > 0 {
				runtime.LockOSThread()
				setAffinity(opts.CPUAffinity)
			}
			nd.deliveryLoop(opts.Batch)
		}()
	}
	return b
}

// NodeMetrics implements transport.MetricsSource.
func (b *Backend) NodeMetrics(node int) *metrics.Registry {
	if node < 0 || node >= len(b.nodes) {
		return nil
	}
	return b.nodes[node].met
}

// MetricsSnapshot implements transport.MetricsSource: the merge of every
// node's registry.
func (b *Backend) MetricsSnapshot() metrics.Snapshot {
	snaps := make([]metrics.Snapshot, 0, len(b.nodes))
	for _, nd := range b.nodes {
		snaps = append(snaps, nd.met.Snapshot())
	}
	return metrics.Merge(snaps...)
}

// lnode is one node's execution context: the CPU mutex and the notify queue.
type lnode struct {
	id int
	// mu is the node's CPU: held by whichever context is executing.
	mu  sync.Mutex        //mpmd:cpu
	met *metrics.Registry // wall-clock instruments; shared with upper layers via NodeMetrics

	q struct {
		mu     sync.Mutex
		cond   *sync.Cond        //mpmdvet:cond mu
		fns    wire.Ring[func()] //mpmdvet:guard mu
		closed bool              //mpmdvet:guard mu
	}

	// batch is the delivery worker's reusable drain buffer (worker-private,
	// no lock needed). Pre-sized to the batch cap so steady-state delivery
	// allocates nothing.
	batch []func()
}

// push appends fn to the notify queue, reporting false if the queue has
// already closed (shutdown raced the caller). Never blocks (the queue is
// unbounded), so senders holding their own node's CPU cannot deadlock
// against delivery. The queue is a ring and the warm path's closures are
// long-lived (one per destination node), so a steady-state push allocates
// nothing.
//
//mpmd:hotpath
func (nd *lnode) push(fn func()) bool {
	nd.q.mu.Lock()
	if nd.q.closed {
		nd.q.mu.Unlock()
		return false
	}
	nd.q.fns.Push(fn)
	depth := nd.q.fns.Len()
	nd.q.mu.Unlock()
	if met := nd.met; met != nil {
		met.Add(metrics.CtrNotifies, 1)
		met.Set(metrics.GgeNotifyDepth, int64(depth))
	}
	nd.q.cond.Signal()
	return true
}

// deliveryLoop is the node's delivery worker: drain pending notifies and run
// them on the node's CPU, at most batch per acquisition. The drain buffer is
// reused across batches.
//
//mpmd:hotpath
func (nd *lnode) deliveryLoop(batch int) {
	nd.batch = make([]func(), 0, batch) //mpmdvet:ignore hotpath one-time drain-buffer init before the loop; reused every batch after
	for {
		nd.q.mu.Lock()
		for nd.q.fns.Len() == 0 && !nd.q.closed {
			nd.q.cond.Wait()
		}
		if nd.q.fns.Len() == 0 {
			nd.q.mu.Unlock()
			return // closed and drained
		}
		take := nd.batch[:0]
		for len(take) < batch {
			fn, ok := nd.q.fns.Pop()
			if !ok {
				break
			}
			take = append(take, fn)
		}
		nd.q.mu.Unlock()
		if met := nd.met; met != nil {
			met.Add(metrics.CtrNotifyBatches, 1)
			met.Observe(metrics.HstPollBatch, int64(len(take)))
		}

		nd.mu.Lock()
		for i, fn := range take {
			fn()
			take[i] = nil // drop the reference; the buffer is reused
		}
		nd.mu.Unlock()
	}
}

// close shuts the notify queue; the worker exits after draining.
func (nd *lnode) close() {
	nd.q.mu.Lock()
	nd.q.closed = true
	nd.q.mu.Unlock()
	nd.q.cond.Broadcast()
}

// Proc is a live schedulable context: a goroutine that holds its node's CPU
// mutex whenever it is running.
type Proc struct {
	b    *Backend
	nd   *lnode
	name string
	cond *sync.Cond //mpmdvet:cond nd.mu

	permit bool //mpmdvet:guard nd.mu
	parked bool //mpmdvet:guard nd.mu
	done   bool //mpmdvet:guard nd.mu
}

// Name implements transport.Proc.
func (p *Proc) Name() string { return p.name }

// Now implements transport.Proc: wall-clock time since the backend was
// created.
func (p *Proc) Now() time.Duration { return p.b.Now() }

// Park implements transport.Proc. Called with the node CPU held; the
// condition wait releases it, which is what lets the delivery worker and
// sibling procs run.
//
//mpmdvet:locked p.nd.mu
func (p *Proc) Park() {
	if p.permit {
		p.permit = false
		return
	}
	p.parked = true
	for !p.permit {
		p.cond.Wait()
	}
	p.permit = false
	p.parked = false
}

// Unpark implements transport.Proc. Must be called from the same node's
// execution context (which holds the node CPU).
//
//mpmdvet:locked p.nd.mu
func (p *Proc) Unpark() {
	if p.done {
		panic("live: Unpark of dead proc " + p.name)
	}
	p.permit = true
	if p.parked {
		p.cond.Signal()
	}
}

// Sleep implements transport.Proc. The modelled cost is already paid by real
// execution, so no time passes; the CPU is briefly released so delivery and
// timer callbacks get the same interleaving window the simulator's arrival
// events have during a virtual-time charge. The release is a bare mutex
// handoff — a waiting delivery worker acquires it, an uncontended release
// costs a few atomic operations. (An unconditional runtime.Gosched here was
// the single largest cost of the warm RMI path: each modelled charge forced
// a scheduler round trip, and a round trip has several charges per side.)
//
//mpmdvet:locked p.nd.mu
func (p *Proc) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	p.nd.mu.Unlock()
	p.nd.mu.Lock()
}

// Name implements transport.Backend.
func (b *Backend) Name() string { return "live" }

// NumNodes implements transport.Backend.
func (b *Backend) NumNodes() int { return len(b.nodes) }

// Now implements transport.Backend: wall-clock time since the backend was
// created. Uses Go's monotonic clock reading, so it never jumps or runs
// backwards under NTP adjustment.
func (b *Backend) Now() time.Duration { return time.Since(b.epoch) }

// Go implements transport.Backend.
func (b *Backend) Go(node int, name string, fn func(transport.Proc)) transport.Proc {
	nd := b.nodes[node]
	p := &Proc{b: b, nd: nd, name: name}
	p.cond = sync.NewCond(&nd.mu)
	b.mu.Lock()
	b.live[p] = struct{}{}
	b.mu.Unlock()
	b.wg.Add(1)
	go func() {
		if len(b.opts.CPUAffinity) > 0 {
			// No matching Unlock: a thread whose affinity mask was narrowed
			// must not rejoin the runtime's thread pool, so it is retired
			// when the proc goroutine exits.
			runtime.LockOSThread()
			setAffinity(b.opts.CPUAffinity)
		} else if b.opts.PinOSThread {
			runtime.LockOSThread()
			defer runtime.UnlockOSThread()
		}
		<-b.start
		// Lock through p.nd (== nd) so the acquisition names the same lock
		// path the //mpmdvet:guard annotation on p.done resolves to.
		p.nd.mu.Lock()
		fn(p)
		p.done = true
		p.nd.mu.Unlock()
		b.mu.Lock()
		delete(b.live, p)
		b.mu.Unlock()
		b.wg.Done()
	}()
	return p
}

// Deliver implements transport.Backend: enqueue runs immediately on the
// caller, notify goes through the destination's delivery worker. The modelled
// latency is ignored — the real wire is the real latency.
func (b *Backend) Deliver(dst int, _ time.Duration, enqueue, notify func()) {
	enqueue()
	b.nodes[dst].push(notify)
}

// DeliverDirect implements transport.DirectDeliverer: the caller already ran
// the enqueue step, so only the (long-lived, caller-owned) notify closure is
// queued to the destination's delivery worker. This is Deliver minus the
// per-send closures — the machine layer uses it to make the warm send path
// allocation-free.
func (b *Backend) DeliverDirect(dst int, notify func()) {
	b.nodes[dst].push(notify)
}

// After implements transport.Backend: fn runs in node's execution context
// after wall-clock delay d. Timers pending when the run completes are
// cancelled at shutdown (their callbacks never run); a callback that races
// shutdown and finds the queues already closed is dropped and counted as a
// lifecycle error (Err).
func (b *Backend) After(node int, d time.Duration, fn func()) {
	nd := b.nodes[node]
	if d <= 0 {
		if !nd.push(fn) {
			b.noteLateAfter()
		}
		return
	}
	// Register under timersMu *around* arming the timer: the callback's
	// first act is to take the same mutex, so even a timer that fires
	// immediately blocks until registration is complete — it always sees
	// the assigned tm (no torn read) and always finds its table entry.
	b.timersMu.Lock()
	if b.closed {
		// The run is already torn down; the callback could never be
		// delivered into a node context.
		b.lateAfter++
		b.timersMu.Unlock()
		return
	}
	var tm *time.Timer
	tm = time.AfterFunc(d, func() {
		b.timersMu.Lock()
		delete(b.timers, tm)
		b.timersMu.Unlock()
		if !nd.push(fn) {
			b.noteLateAfter()
		}
	})
	b.timers[tm] = struct{}{}
	b.timersMu.Unlock()
}

// noteLateAfter records a timer callback that outlived the run.
func (b *Backend) noteLateAfter() {
	b.timersMu.Lock()
	b.lateAfter++
	b.timersMu.Unlock()
}

// cancelTimers stops every outstanding After timer at shutdown. A timer
// whose callback is already in flight unregisters itself; if it then finds
// its queue closed it is counted by noteLateAfter.
func (b *Backend) cancelTimers() {
	b.timersMu.Lock()
	b.closed = true
	tms := make([]*time.Timer, 0, len(b.timers))
	for tm := range b.timers {
		tms = append(tms, tm)
	}
	b.timers = make(map[*time.Timer]struct{})
	b.timersMu.Unlock()
	for _, tm := range tms {
		tm.Stop()
	}
}

// Err reports lifecycle faults of a completed run: currently, After
// callbacks that fired after shutdown and were dropped.
func (b *Backend) Err() error {
	b.timersMu.Lock()
	defer b.timersMu.Unlock()
	if b.lateAfter > 0 {
		return fmt.Errorf("live: %d After callback(s) fired after shutdown and were dropped", b.lateAfter)
	}
	return nil
}

// StallError reports that the watchdog expired with procs still alive —
// the live analogue of the simulator's deadlock report (it cannot
// distinguish a deadlock from a computation that is merely slow; raise
// Options.Watchdog for long runs).
type StallError struct {
	After time.Duration
	Procs []string // names of procs still alive, sorted
}

func (e *StallError) Error() string {
	return fmt.Sprintf("live: no completion after %v: %d proc(s) still alive: %v",
		e.After, len(e.Procs), e.Procs)
}

// Run implements transport.Backend: release the procs and wait for all of
// them to finish, bounded by the watchdog.
func (b *Backend) Run() error {
	if !b.ran.CompareAndSwap(false, true) {
		panic("live: Run called twice")
	}
	close(b.start)
	done := make(chan struct{})
	go func() {
		b.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(b.opts.Watchdog):
		// Report, but keep serving for a bounded grace: the watchdog cannot
		// distinguish a deadlock from a run that is merely slow, so the
		// delivery workers stay up for Options.Teardown in case the
		// stragglers finish. Then the janitor tears the queues down
		// unconditionally — a stalled run must not pin its n delivery
		// workers (plus this janitor) forever; only the stuck proc
		// goroutines themselves remain, and those are the application's.
		go func() {
			select {
			case <-done:
			case <-time.After(b.opts.Teardown):
			}
			b.cancelTimers()
			b.closeQueues()
		}()
		b.mu.Lock()
		var names []string
		for p := range b.live {
			names = append(names, p.name)
		}
		b.mu.Unlock()
		sort.Strings(names)
		return &StallError{After: b.opts.Watchdog, Procs: names}
	}
	b.cancelTimers()
	b.closeQueues()
	return nil
}

// closeQueues shuts every node's notify queue so the delivery workers exit.
func (b *Backend) closeQueues() {
	for _, nd := range b.nodes {
		nd.close()
	}
}
