package live

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/transport"
)

// TestParkUnparkPermit checks gopark/goready semantics at the proc level:
// an Unpark that races ahead of Park is not lost.
func TestParkUnparkPermit(t *testing.T) {
	b := New(1, Options{Watchdog: 5 * time.Second})
	var woke bool
	var child transport.Proc
	child = b.Go(0, "child", func(p transport.Proc) {
		p.Park() // permit may already be pending
		woke = true
	})
	b.Go(0, "parent", func(p transport.Proc) {
		child.Unpark() // same-node context: holds the node CPU
	})
	if err := b.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !woke {
		t.Fatal("child never woke")
	}
}

// TestDeliverOrdering checks per-sender FIFO through the notify queue.
func TestDeliverOrdering(t *testing.T) {
	const k = 500
	b := New(2, Options{Watchdog: 5 * time.Second})
	var inbox, notified []int
	var rx transport.Proc
	rx = b.Go(1, "rx", func(p transport.Proc) {
		for len(notified) < k {
			p.Park()
		}
	})
	b.Go(0, "tx", func(p transport.Proc) {
		for i := 0; i < k; i++ {
			i := i
			b.Deliver(1, 0,
				func() { /* enqueue runs on the sender */ },
				func() { // notify runs in node 1's context
					notified = append(notified, i)
					rx.Unpark()
				})
		}
	})
	_ = inbox
	if err := b.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(notified) != k {
		t.Fatalf("notified %d, want %d", len(notified), k)
	}
	for i, v := range notified {
		if v != i {
			t.Fatalf("notify %d carried %d: reordered", i, v)
		}
	}
}

// TestAfterRunsInNodeContext checks that timer callbacks go through the
// node's delivery worker (they can wake parked procs).
func TestAfterRunsInNodeContext(t *testing.T) {
	b := New(1, Options{Watchdog: 5 * time.Second})
	fired := false
	var waiter transport.Proc
	waiter = b.Go(0, "waiter", func(p transport.Proc) {
		p.Park()
	})
	b.After(0, 5*time.Millisecond, func() {
		fired = true
		waiter.Unpark()
	})
	if err := b.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !fired {
		t.Fatal("timer never fired")
	}
}

// TestWatchdogReportsStall checks that a parked-forever proc produces a
// StallError naming it instead of a hang.
func TestWatchdogReportsStall(t *testing.T) {
	b := New(1, Options{Watchdog: 100 * time.Millisecond})
	b.Go(0, "stuck", func(p transport.Proc) { p.Park() })
	err := b.Run()
	se, ok := err.(*StallError)
	if !ok {
		t.Fatalf("Run returned %v, want *StallError", err)
	}
	if len(se.Procs) != 1 || se.Procs[0] != "stuck" {
		t.Fatalf("stall report %v, want [stuck]", se.Procs)
	}
}

// TestPendingAfterCancelledAtShutdown: a timer still pending when the run
// completes is cancelled — its callback never runs, nothing leaks, and a
// clean run reports no lifecycle error. (Before the fix, the time.AfterFunc
// outlived Run and its eventual firing pushed onto a closed queue silently.)
func TestPendingAfterCancelledAtShutdown(t *testing.T) {
	b := New(1, Options{Watchdog: 5 * time.Second})
	ran := false
	b.Go(0, "p", func(p transport.Proc) {})
	b.After(0, 30*time.Minute, func() { ran = true })
	if err := b.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	b.timersMu.Lock()
	left := len(b.timers)
	b.timersMu.Unlock()
	if left != 0 {
		t.Fatalf("%d timers still tracked after shutdown", left)
	}
	if ran {
		t.Fatal("cancelled timer callback ran")
	}
	if err := b.Err(); err != nil {
		t.Fatalf("clean run reported lifecycle error: %v", err)
	}
}

// TestAfterAfterShutdownIsError: scheduling (or firing) a timer once the
// backend has shut down surfaces through Err instead of vanishing.
func TestAfterAfterShutdownIsError(t *testing.T) {
	b := New(1, Options{Watchdog: 5 * time.Second})
	b.Go(0, "p", func(p transport.Proc) {})
	if err := b.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	b.After(0, time.Millisecond, func() {})
	if err := b.Err(); err == nil {
		t.Fatal("late After was dropped silently; want a lifecycle error")
	}
}

// TestStallTeardownFreesWorkers: a run that stalls forever must not pin its
// delivery workers and janitor for the life of the process — after the
// teardown deadline only the stuck proc goroutines themselves remain.
func TestStallTeardownFreesWorkers(t *testing.T) {
	const nodes = 8
	before := runtime.NumGoroutine()
	b := New(nodes, Options{Watchdog: 50 * time.Millisecond, Teardown: 100 * time.Millisecond})
	b.Go(0, "stuck", func(p transport.Proc) { p.Park() }) // parked forever
	if _, ok := b.Run().(*StallError); !ok {
		t.Fatal("expected StallError")
	}
	// Give the teardown deadline time to pass and the workers to drain.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		// Only the stuck proc (1 goroutine) may outlive the run; the n
		// delivery workers and the janitor must be gone.
		if g := runtime.NumGoroutine(); g <= before+1 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines before=%d after teardown=%d: stalled run leaked workers",
		before, runtime.NumGoroutine())
}

// TestClockAdvances checks that Now is wall-clock during a run.
func TestClockAdvances(t *testing.T) {
	b := New(1, Options{Watchdog: 5 * time.Second})
	var before, after time.Duration
	b.Go(0, "clock", func(p transport.Proc) {
		before = p.Now()
		time.Sleep(2 * time.Millisecond)
		after = p.Now()
	})
	if err := b.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if after-before < time.Millisecond {
		t.Fatalf("clock advanced %v across a 2ms sleep", after-before)
	}
}

// TestCPUAffinityAppliesToProcs: with Options.CPUAffinity set, a proc's OS
// thread runs under the narrowed kernel CPU mask (linux; skipped where
// sched_getaffinity is unavailable). The thread is locked and retired with
// the goroutine, so the narrowed mask never leaks back into the pool.
func TestCPUAffinityAppliesToProcs(t *testing.T) {
	if threadAffinity() == nil {
		t.Skip("no thread affinity introspection on this platform")
	}
	b := New(1, Options{Watchdog: 5 * time.Second, CPUAffinity: []int{0}})
	var got []int
	b.Go(0, "pinned", func(p transport.Proc) { got = threadAffinity() })
	if err := b.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("proc thread affinity = %v, want [0]", got)
	}
}

// TestSetAffinityEmptySetIsNoOp: CPUs beyond the mask's range are ignored
// rather than handed to the kernel as an empty (EINVAL) set.
func TestSetAffinityEmptySetIsNoOp(t *testing.T) {
	if threadAffinity() == nil {
		t.Skip("no thread affinity introspection on this platform")
	}
	before := threadAffinity()
	setAffinity([]int{1 << 20}) // out of range: filtered, no syscall
	after := threadAffinity()
	if len(before) != len(after) {
		t.Fatalf("no-op setAffinity changed the mask: %v -> %v", before, after)
	}
}
