//go:build !unix

package netlive

import "repro/internal/transport"

// shmPlane is absent on platforms without the mmap'd ring fast path; every
// cross-shard frame takes the socket path.
type shmPlane struct{}

func (b *Backend) shmSetup() error { return nil }
func (b *Backend) shmStart()       {}
func (b *Backend) shmShutdown()    {}
func (b *Backend) shmWake(int)     {}

// ShmActive reports whether the shared-memory fast path is carrying this
// backend's cross-shard packets; never on this platform.
func (b *Backend) ShmActive() bool { return false }

// DeliverSlot implements transport.SlotSender; without rings every frame
// falls back to the pooled DeliverRemote socket path.
func (b *Backend) DeliverSlot(src, dst, size int, wp transport.FrameMarshaler) bool {
	return false
}
