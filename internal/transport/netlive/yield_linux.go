//go:build linux

package netlive

import "syscall"

// osYield releases the CPU to any other runnable OS task — crucially,
// including the peer shard's *process*, which runtime.Gosched can never
// reach. On few-core hosts the ring consumer's spin is useless without it:
// the producer lives in another address space and only runs when this one
// gives up the core.
func osYield() {
	syscall.Syscall(syscall.SYS_SCHED_YIELD, 0, 0, 0)
}
