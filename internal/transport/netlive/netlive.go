// Package netlive is the sharded multi-process transport backend: the
// machine's n nodes are partitioned into shards of NodesPerShard consecutive
// nodes, each shard living in its own OS process, connected by Unix-domain
// sockets carrying length-prefixed frames of the same Active-Messages wire
// format the in-memory backends move — the 2026 analogue of the paper's SP
// network, with the runtime specialized to the substrate exactly as the
// paper argues it must be.
//
// # Topology and roles
//
// Shard 0 is the parent. Peer shards are either re-exec'd children (the
// parent launches its own binary again with MPMD_NETLIVE_SHARD set — the
// SPMD launch model, every process runs the identical program and therefore
// builds identical stub registries, object tables, and buffer managers) or
// independently launched workers pointed at the same rendezvous directory.
// Each shard listens on <dir>/shard-<i>.sock; connections are dialed lazily
// on first send, with retry while the peer comes up.
//
// Within a shard, execution delegates to the live backend unchanged: procs
// are goroutines, one CPU mutex per node, wall-clock time. A single-shard
// configuration (NodesPerShard >= n, the loopback mode) therefore behaves
// exactly like live and runs the full conformance suite.
//
// # The serialized path
//
// The machine layer routes a cross-shard Send through ShardBackend
// .DeliverRemote with the packet payload already encoded into a pooled
// wire.Buf (am.Msg's wire codec). Each peer shard has one writer goroutine
// owning the connection: frames queue on a ring and the writer drains them
// in order — per-sender FIFO to a destination is preserved end to end — then
// releases the buffers, so a warm cross-shard send allocates nothing beyond
// what the socket write itself costs. Reader goroutines decode arriving
// frames into pooled buffers and hand them to the machine's remote-arrival
// handler, which enqueues into the destination node's (thread-safe) inbox
// and wakes it through the live backend's delivery worker.
//
// # The shared-memory fast path
//
// Co-resident shards (the default deployment: one machine, many processes)
// skip the socket for data frames entirely. The parent creates one mmap'd
// single-producer single-consumer ring per ordered shard pair in the
// rendezvous directory before spawning; every shard attaches every ring it
// touches at New. A cross-shard packet is marshaled by the sending proc
// directly into a ring slot and consumed in place by the receiving shard's
// ring reader — same frame fields, zero syscalls, zero copies beyond the
// marshal itself. Consumers spin briefly then park; a producer that catches
// a parked consumer rings a kDoorbell control frame over the peer socket,
// which also keeps carrying the control plane (quiesce, stats) and all
// frames when the fast path is off (Options.DisableShm, MPMD_NETLIVE_NOSHM,
// a non-unix host, or a single shard). See shmring.go and DESIGN.md.
//
// # Lifecycle
//
// Runtimes call Topology.LocalQuiesced when their local node programs have
// finished. Children report to the parent (kMainsDone); when every shard has
// quiesced the parent broadcasts kAllDone, and each shard then runs its
// quiesce callback (typically a grace-delayed endpoint shutdown) so servers
// keep answering remote invocations until the whole machine is done. Run
// returns when the local procs have finished; the parent additionally waits
// for its children to exit and surfaces their status.
package netlive

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/transport"
	"repro/internal/transport/live"
	"repro/internal/wire"
)

// Environment variables of the re-exec harness. The parent sets them for
// each child; a process finding them set assumes the worker role.
const (
	EnvShard = "MPMD_NETLIVE_SHARD"
	EnvDir   = "MPMD_NETLIVE_DIR"
	EnvNodes = "MPMD_NETLIVE_NODES"
	EnvNPS   = "MPMD_NETLIVE_NPS"
	// EnvNoShm (any non-empty value) disables the shared-memory ring fast
	// path. The parent propagates it to children whenever its own fast path
	// is off, so a shard pair can never disagree about the transport.
	EnvNoShm = "MPMD_NETLIVE_NOSHM"
)

// Options tune the net backend. The zero value is a single-shard (loopback)
// configuration.
type Options struct {
	// NodesPerShard is how many consecutive nodes share one process. Zero or
	// >= n means one shard: everything local, no sockets (loopback mode).
	NodesPerShard int
	// Live tunes the in-shard execution backend.
	Live live.Options
	// Shard fixes this backend's shard index explicitly (tests that build
	// several shards inside one process). Nil selects the role automatically:
	// MPMD_NETLIVE_SHARD when set (a re-exec'd child), else shard 0.
	Shard *int
	// Dir is the rendezvous directory holding the per-shard sockets. Empty
	// means MPMD_NETLIVE_DIR, or a fresh temp directory on the parent.
	Dir string
	// NoSpawn stops the parent from re-exec'ing children; the peer shards
	// are expected to be launched externally with the environment (or
	// explicit Options) pointing at Dir.
	NoSpawn bool
	// ChildArgs overrides the argument vector for re-exec'd children
	// (default: this process's own arguments). Tests use it to re-enter a
	// single test function.
	ChildArgs []string
	// DialTimeout bounds how long a writer waits for a peer's socket to
	// appear. Zero means 10s.
	DialTimeout time.Duration
	// DisableShm turns off the shared-memory ring fast path: every
	// cross-shard frame takes the socket writer. The MPMD_NETLIVE_NOSHM
	// environment variable has the same effect (and is what the parent sets
	// for re-exec'd children when its own fast path is off).
	DisableShm bool
	// ShmRingBytes sizes each directed ring's data area in bytes. Zero means
	// 1 MiB; values are clamped to at least 4 KiB and rounded up to a
	// multiple of 8. A frame larger than a quarter of the ring takes the
	// socket path.
	ShmRingBytes int
	// CPUsPerShard > 0 pins this shard's procs and delivery workers to the
	// CPU block [shard*CPUsPerShard, (shard+1)*CPUsPerShard), wrapped onto
	// the host's CPU count, by filling Live.CPUAffinity when that is empty.
	// Keeps co-resident shards from migrating onto each other's cores so
	// the shm rings behave like the paper's dedicated per-node processors.
	CPUsPerShard int
}

// frameKind is the frame discriminator on the wire. Every switch over it
// must dispatch all kinds and reject unknown bytes in a default clause —
// adding a kind then fails vet at every dispatch site that missed it.
//
//mpmdvet:exhaustive
type frameKind byte

// frame kinds on the wire.
const (
	kPacket    = frameKind(1) // u32 src, u32 dst, u32 size, payload
	kMainsDone = frameKind(2) // u32 shard
	kAllDone   = frameKind(3) // empty
	kStats     = frameKind(4) // u32 shard, JSON machine.ShardStats (worker -> parent)
	kStatsReq  = frameKind(5) // empty (parent -> worker: report your stats now)
	kDoorbell  = frameKind(6) // u32 shard (sender: wake your parked consumer of my outbound ring)
)

// packetHdrLen is the kPacket body header: src, dst, size.
const packetHdrLen = 12

// Backend is the sharded multi-process transport. Construct with New.
type Backend struct {
	inner *live.Backend

	n, nps, shards, shard int
	lo, hi                int // local node range [lo, hi)
	dir                   string
	ownsDir               bool
	opts                  Options

	ln       net.Listener
	peers    []*peer // indexed by shard; nil for self
	children []*exec.Cmd

	// shm is the shared-memory ring plane (nil when the fast path is off:
	// loopback, DisableShm, MPMD_NETLIVE_NOSHM, or a non-unix host).
	shm *shmPlane

	// remote is the machine's arrival upcall (SetRemoteHandler). Atomic:
	// reader goroutines may already be accepting peer connections while the
	// machine layer is still being constructed.
	remote atomic.Value // func(src, dst, size int, payload []byte)

	q struct {
		sync.Mutex
		fn        func()       //mpmdvet:guard Mutex — quiesce callback (LocalQuiesced)
		localDone bool         //mpmdvet:guard Mutex — this shard's programs finished
		done      map[int]bool //mpmdvet:guard Mutex — parent: shards that reported mains-done
		fired     bool         //mpmdvet:guard Mutex
	}

	// met is the shard's message-plane registry: frame/byte counters, peer
	// ring depths, writer stalls. Per-node instruments live in the inner
	// live backend's registries.
	met *metrics.Registry

	// statsProv serializes this shard's stats payload (machine.ShardStats
	// JSON); the machine layer installs it via SetStatsProvider. Atomic: the
	// reader goroutines may field a kStatsReq while it is being installed.
	statsProv atomic.Value // func() []byte

	// peerStats is the latest kStats payload from each worker shard
	// (parent only).
	statsMu   sync.Mutex
	peerStats map[int][]byte //mpmdvet:guard statsMu

	errMu sync.Mutex
	errs  []error //mpmdvet:guard errMu

	// conns/sockClosed: acceptLoop registers each accepted connection (and
	// its reader) under errMu, and shutdown flips sockClosed under the same
	// lock before waiting on readers — a connection that races shutdown is
	// closed on the spot instead of leaking an untracked reader.
	conns      []net.Conn //mpmdvet:guard errMu
	sockClosed bool       //mpmdvet:guard errMu
	readers    sync.WaitGroup
}

// New builds a net backend for n nodes. Role, shard layout, and rendezvous
// directory come from opts and the environment (see the package comment).
func New(n int, opts Options) (*Backend, error) {
	if n <= 0 {
		return nil, errors.New("netlive: need at least one node")
	}
	nps := opts.NodesPerShard
	if nps <= 0 || nps > n {
		nps = n
	}
	shards := (n + nps - 1) / nps
	shard := 0
	fromEnv := false
	switch {
	case opts.Shard != nil:
		shard = *opts.Shard
	case os.Getenv(EnvShard) != "":
		v, err := strconv.Atoi(os.Getenv(EnvShard))
		if err != nil {
			return nil, fmt.Errorf("netlive: bad %s: %v", EnvShard, err)
		}
		shard = v
		fromEnv = true
	}
	if shard < 0 || shard >= shards {
		return nil, fmt.Errorf("netlive: shard %d out of range [0,%d)", shard, shards)
	}
	if fromEnv {
		// The re-exec harness depends on every process building the identical
		// machine; catch divergence before it turns into misrouted frames.
		if en := os.Getenv(EnvNodes); en != "" && en != strconv.Itoa(n) {
			return nil, fmt.Errorf("netlive: child built %d nodes, parent %s (program divergence)", n, en)
		}
		if ep := os.Getenv(EnvNPS); ep != "" && ep != strconv.Itoa(nps) {
			return nil, fmt.Errorf("netlive: child built %d nodes/shard, parent %s (program divergence)", nps, ep)
		}
	}

	if opts.CPUsPerShard > 0 && len(opts.Live.CPUAffinity) == 0 {
		opts.Live.CPUAffinity = affinityBlock(shard, opts.CPUsPerShard)
	}

	b := &Backend{
		inner:  live.New(n, opts.Live),
		n:      n,
		nps:    nps,
		shards: shards,
		shard:  shard,
		lo:     shard * nps,
		opts:   opts,
	}
	b.hi = b.lo + nps
	if b.hi > n {
		b.hi = n
	}
	b.met = metrics.NewRegistry()
	// The maps are guarded; take the (uncontended) locks so construction is
	// checked by the same rule as every later access.
	b.statsMu.Lock()
	b.peerStats = make(map[int][]byte)
	b.statsMu.Unlock()
	b.q.Lock()
	b.q.done = make(map[int]bool)
	b.q.Unlock()
	if opts.DialTimeout <= 0 {
		b.opts.DialTimeout = 10 * time.Second
	}

	if shards == 1 {
		return b, nil // loopback: no sockets, no peers
	}

	b.dir = opts.Dir
	if b.dir == "" {
		b.dir = os.Getenv(EnvDir)
	}
	if b.dir == "" {
		if shard != 0 {
			return nil, errors.New("netlive: worker shard has no rendezvous dir (set Options.Dir or " + EnvDir + ")")
		}
		dir, err := os.MkdirTemp("", "netlive-*")
		if err != nil {
			return nil, fmt.Errorf("netlive: rendezvous dir: %w", err)
		}
		b.dir = dir
		b.ownsDir = true
	}

	// Listen now — peers dial as soon as their first frame queues, and the
	// kernel backlog holds their connections — but accept (and read) only
	// once Run starts: machine and runtime construction happen between New
	// and Run, and an early frame dispatched into a half-built machine
	// would race it. Deferring the readers to Run gives every arriving
	// frame a happens-before edge over the whole setup.
	ln, err := net.Listen("unix", b.sockPath(shard))
	if err != nil {
		return nil, fmt.Errorf("netlive: shard %d listen: %w", shard, err)
	}
	b.ln = ln

	b.peers = make([]*peer, shards)
	for s := 0; s < shards; s++ {
		if s == shard {
			continue
		}
		b.peers[s] = newPeer(b, s)
	}

	// Ring mesh before spawning: a re-exec'd child's attach must find every
	// ring already initialized.
	if err := b.shmSetup(); err != nil {
		b.shutdownSockets()
		return nil, err
	}

	if shard == 0 && !opts.NoSpawn && opts.Shard == nil {
		if err := b.spawnChildren(); err != nil {
			b.shutdownSockets()
			return nil, err
		}
	}
	return b, nil
}

// affinityBlock is shard s's CPU set under Options.CPUsPerShard: a block of
// per consecutive CPUs starting at s*per, wrapped onto the host's CPU count
// (oversubscribed hosts share cores rather than erroring).
func affinityBlock(shard, per int) []int {
	ncpu := runtime.NumCPU()
	cpus := make([]int, 0, per)
	for k := 0; k < per; k++ {
		cpus = append(cpus, (shard*per+k)%ncpu)
	}
	return cpus
}

func (b *Backend) sockPath(shard int) string {
	return filepath.Join(b.dir, fmt.Sprintf("shard-%d.sock", shard))
}

// spawnChildren re-execs this binary once per peer shard, handing each the
// rendezvous directory and its shard index through the environment. Child
// stdout is redirected to stderr so the parent's own stdout (JSON reports)
// stays clean.
func (b *Backend) spawnChildren() error {
	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("netlive: cannot re-exec: %w", err)
	}
	args := b.opts.ChildArgs
	if args == nil {
		args = os.Args[1:]
	}
	for s := 1; s < b.shards; s++ {
		cmd := exec.Command(exe, args...)
		cmd.Env = append(os.Environ(),
			EnvShard+"="+strconv.Itoa(s),
			EnvDir+"="+b.dir,
			EnvNodes+"="+strconv.Itoa(b.n),
			EnvNPS+"="+strconv.Itoa(b.nps),
		)
		if b.shm == nil {
			// Parent runs without the fast path (option, env, or platform):
			// children must too, or the pair would strand ring frames.
			cmd.Env = append(cmd.Env, EnvNoShm+"=1")
		}
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("netlive: spawn shard %d: %w", s, err)
		}
		b.children = append(b.children, cmd)
	}
	return nil
}

// --- transport.Backend ------------------------------------------------------

// Name implements transport.Backend.
func (b *Backend) Name() string { return "net" }

// NumNodes implements transport.Backend.
func (b *Backend) NumNodes() int { return b.n }

// Now implements transport.Backend (wall-clock since construction).
func (b *Backend) Now() time.Duration { return b.inner.Now() }

// Go implements transport.Backend. Procs can only be created on this
// shard's nodes; runtimes consult Topology and never ask for more.
func (b *Backend) Go(node int, name string, fn func(transport.Proc)) transport.Proc {
	if !b.IsLocal(node) {
		panic(fmt.Sprintf("netlive: proc %q on node %d, which lives in shard %d (this is shard %d)",
			name, node, b.shardOf(node), b.shard))
	}
	return b.inner.Go(node, name, fn)
}

// Deliver implements transport.Backend for local destinations; cross-shard
// packets travel through DeliverRemote (the machine routes them there).
func (b *Backend) Deliver(dst int, lat time.Duration, enqueue, notify func()) {
	if !b.IsLocal(dst) {
		panic(fmt.Sprintf("netlive: Deliver to remote node %d (cross-shard messages go through DeliverRemote)", dst))
	}
	b.inner.Deliver(dst, lat, enqueue, notify)
}

// DeliverDirect implements transport.DirectDeliverer for local destinations.
func (b *Backend) DeliverDirect(dst int, notify func()) {
	b.inner.DeliverDirect(dst, notify)
}

// After implements transport.Backend for local nodes.
func (b *Backend) After(node int, d time.Duration, fn func()) {
	if !b.IsLocal(node) {
		panic(fmt.Sprintf("netlive: After on remote node %d", node))
	}
	b.inner.After(node, d, fn)
}

// Run implements transport.Backend: execute the local shard, then tear the
// process mesh down. The parent additionally reaps its children and
// surfaces their exit status.
func (b *Backend) Run() error {
	if b.ln != nil {
		go b.acceptLoop()
	}
	b.shmStart()
	err := b.inner.Run()
	if b.shards > 1 && b.shard != 0 {
		// Final stats report: every local proc has finished, so the snapshot
		// covers the whole run, and the writer queue is drained before close —
		// the frame reaches the parent before this process exits.
		b.sendStats()
	}
	if b.shards > 1 && b.shard == 0 {
		b.waitChildren()
		b.waitStats()
	}
	b.shutdownSockets()
	if lerr := b.inner.Err(); lerr != nil {
		b.addErr(lerr)
	}
	if err != nil {
		return err
	}
	return b.Err()
}

// waitChildren reaps the re-exec'd workers, bounded by the watchdog.
func (b *Backend) waitChildren() {
	deadline := b.opts.Live.Watchdog
	if deadline <= 0 {
		deadline = 30 * time.Second
	}
	for i, cmd := range b.children {
		c := cmd
		done := make(chan error, 1)
		go func() { done <- c.Wait() }()
		select {
		case werr := <-done:
			if werr != nil {
				b.addErr(fmt.Errorf("netlive: shard %d exited: %w", i+1, werr))
			}
		case <-time.After(deadline):
			_ = c.Process.Kill()
			b.addErr(fmt.Errorf("netlive: shard %d did not exit within %v; killed", i+1, deadline))
		}
	}
}

// shutdownSockets tears down the shm ring plane, then closes writers,
// accepted connections, and the listener, and removes the rendezvous dir on
// the parent that created it. It runs on every exit path — a stalled run's
// janitor included — so a wedged machine leaks neither ring mappings nor
// reader/consumer goroutines.
func (b *Backend) shutdownSockets() {
	b.shmShutdown()
	// Bounded flush before closing: frames queued during teardown (the
	// quiesce broadcast, doorbells, final stats) should reach the wire, but
	// a dead peer must not wedge the janitor.
	flushT := b.opts.DialTimeout
	if flushT > 2*time.Second {
		flushT = 2 * time.Second
	}
	for _, p := range b.peers {
		if p != nil {
			p.flush(flushT)
		}
	}
	for _, p := range b.peers {
		if p != nil {
			p.close()
		}
	}
	if b.ln != nil {
		_ = b.ln.Close()
	}
	b.errMu.Lock()
	b.sockClosed = true
	conns := b.conns
	b.conns = nil
	b.errMu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
	b.readers.Wait()
	if b.ownsDir {
		_ = os.RemoveAll(b.dir)
	}
}

// Err returns the accumulated lifecycle errors (child exits, wire faults),
// or nil.
func (b *Backend) Err() error {
	b.errMu.Lock()
	defer b.errMu.Unlock()
	return errors.Join(b.errs...)
}

func (b *Backend) addErr(err error) {
	b.errMu.Lock()
	b.errs = append(b.errs, err)
	b.errMu.Unlock()
}

// --- transport.Topology -----------------------------------------------------

// NumShards implements transport.Topology.
func (b *Backend) NumShards() int { return b.shards }

// Shard implements transport.Topology.
func (b *Backend) Shard() int { return b.shard }

func (b *Backend) shardOf(node int) int { return node / b.nps }

// IsLocal implements transport.Topology.
func (b *Backend) IsLocal(node int) bool { return node >= b.lo && node < b.hi }

// LocalNodes implements transport.Topology.
func (b *Backend) LocalNodes() []int {
	nodes := make([]int, 0, b.hi-b.lo)
	for i := b.lo; i < b.hi; i++ {
		nodes = append(nodes, i)
	}
	return nodes
}

// LocalQuiesced implements transport.Topology: record the callback, tell the
// parent this shard's programs are done, and fire once every shard is.
func (b *Backend) LocalQuiesced(fn func()) {
	b.q.Lock()
	b.q.fn = fn
	b.q.localDone = true
	b.q.Unlock()
	if b.shards == 1 {
		b.fireQuiesce()
		return
	}
	if b.shard == 0 {
		b.shardDone(0)
		return
	}
	f := b.frameBuf(4)
	binary.LittleEndian.PutUint32(f.Bytes(), uint32(b.shard))
	b.peers[0].push(outFrame{kind: kMainsDone, buf: f})
}

// shardDone (parent only) counts quiesced shards; on the last one it
// broadcasts kAllDone and quiesces locally.
func (b *Backend) shardDone(shard int) {
	b.q.Lock()
	b.q.done[shard] = true
	all := len(b.q.done) == b.shards
	b.q.Unlock()
	if !all {
		return
	}
	for _, p := range b.peers {
		if p != nil {
			p.push(outFrame{kind: kAllDone})
		}
	}
	b.fireQuiesce()
}

// fireQuiesce runs the quiesce callback exactly once.
func (b *Backend) fireQuiesce() {
	b.q.Lock()
	fn := b.q.fn
	fired := b.q.fired
	b.q.fired = fn != nil
	b.q.Unlock()
	if fn != nil && !fired {
		fn()
	}
}

// --- transport.ShardBackend -------------------------------------------------

// SetRemoteHandler implements transport.ShardBackend.
func (b *Backend) SetRemoteHandler(fn func(src, dst, size int, payload []byte)) {
	b.remote.Store(fn)
}

// DeliverRemote implements transport.ShardBackend: frame the encoded packet
// and queue it on the destination shard's writer. Ownership of payload
// transfers here; the writer releases it after the bytes are on the wire.
func (b *Backend) DeliverRemote(src, dst, size int, payload *wire.Buf) {
	p := b.peers[b.shardOf(dst)]
	if p == nil {
		panic(fmt.Sprintf("netlive: DeliverRemote to local node %d", dst))
	}
	p.push(outFrame{kind: kPacket, src: src, dst: dst, size: size, buf: payload})
}

// frameBuf returns a pooled buffer for a control frame body.
func (b *Backend) frameBuf(n int) *wire.Buf { return wire.Get(n) }

// --- transport.MetricsSource ------------------------------------------------

// NodeMetrics implements transport.MetricsSource: the inner live backend's
// per-node registry for local nodes, nil for nodes of other shards.
func (b *Backend) NodeMetrics(node int) *metrics.Registry {
	if !b.IsLocal(node) {
		return nil
	}
	return b.inner.NodeMetrics(node)
}

// MetricsSnapshot implements transport.MetricsSource: this shard's local
// nodes merged with the shard's message-plane registry.
func (b *Backend) MetricsSnapshot() metrics.Snapshot {
	snaps := make([]metrics.Snapshot, 0, b.hi-b.lo+1)
	snaps = append(snaps, b.met.Snapshot())
	for i := b.lo; i < b.hi; i++ {
		snaps = append(snaps, b.inner.NodeMetrics(i).Snapshot())
	}
	return metrics.Merge(snaps...)
}

// --- transport.StatsPlane ---------------------------------------------------

// SetStatsProvider implements transport.StatsPlane.
func (b *Backend) SetStatsProvider(fn func() []byte) { b.statsProv.Store(fn) }

// PeerStats implements transport.StatsPlane: the latest kStats payload from
// each worker shard (parent only; complete after Run).
func (b *Backend) PeerStats() map[int][]byte {
	b.statsMu.Lock()
	defer b.statsMu.Unlock()
	out := make(map[int][]byte, len(b.peerStats))
	for s, p := range b.peerStats {
		out[s] = p
	}
	return out
}

// RequestStats implements transport.StatsPlane: ask every worker shard to
// report now. Safe mid-run — accounting and metrics are atomic on the worker.
func (b *Backend) RequestStats() {
	if b.shard != 0 {
		return
	}
	for _, p := range b.peers {
		if p != nil {
			p.push(outFrame{kind: kStatsReq})
		}
	}
}

// sendStats (workers) serializes the local stats payload and ships it to the
// parent as a kStats frame. No-op before the machine installs a provider.
func (b *Backend) sendStats() {
	prov, _ := b.statsProv.Load().(func() []byte)
	if prov == nil || b.shard == 0 || b.peers == nil {
		return
	}
	// Drain the peer writers first: frames a proc queued just before
	// quiescing may still be sitting in a ring, and a snapshot taken now
	// would under-count net.frames.out against what provably reached the
	// peers. Bounded, so a dead connection cannot wedge the report.
	for _, p := range b.peers {
		if p != nil {
			p.flush(b.opts.DialTimeout)
		}
	}
	payload := prov()
	f := b.frameBuf(4 + len(payload))
	binary.LittleEndian.PutUint32(f.Bytes(), uint32(b.shard))
	copy(f.Bytes()[4:], payload)
	b.peers[0].push(outFrame{kind: kStats, buf: f})
	// Bound the wait so a dead parent cannot wedge the worker's exit; the
	// frame is almost always already on the wire.
	b.peers[0].flush(b.opts.DialTimeout)
}

// waitStats (parent) waits for every worker shard's final kStats payload
// before the sockets come down. Workers flush the frame before exiting, so
// by the time waitChildren has reaped them the bytes are at worst sitting in
// the parent's socket buffer; this wait gives the reader goroutines time to
// dispatch them. A missing payload after the timeout is a lifecycle error
// (and ClusterStats will refuse to fabricate totals).
func (b *Backend) waitStats() {
	deadline := time.Now().Add(b.opts.DialTimeout)
	for {
		b.statsMu.Lock()
		got := len(b.peerStats)
		b.statsMu.Unlock()
		if got >= b.shards-1 {
			return
		}
		if time.Now().After(deadline) {
			b.addErr(fmt.Errorf("netlive: stats from only %d of %d worker shards within %v",
				got, b.shards-1, b.opts.DialTimeout))
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// --- reading ----------------------------------------------------------------

// acceptLoop admits peer connections and spawns a reader for each.
func (b *Backend) acceptLoop() {
	for {
		conn, err := b.ln.Accept()
		if err != nil {
			return // listener closed
		}
		b.errMu.Lock()
		if b.sockClosed {
			// Shutdown won the race: this connection was accepted after the
			// teardown snapshot, so nobody else would ever close it.
			b.errMu.Unlock()
			_ = conn.Close()
			return
		}
		b.conns = append(b.conns, conn)
		b.readers.Add(1)
		b.errMu.Unlock()
		go b.readLoop(conn)
	}
}

// readLoop decodes frames from one peer connection. Frame bodies land in
// pooled buffers and are recycled after dispatch; the packet handler runs
// synchronously here, which preserves the sender's frame order.
func (b *Backend) readLoop(conn net.Conn) {
	defer b.readers.Done()
	var hdr [5]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			if err != io.EOF && !isClosedErr(err) {
				b.addErr(fmt.Errorf("netlive: shard %d read: %w", b.shard, err))
			}
			return
		}
		n := int(binary.LittleEndian.Uint32(hdr[:4]))
		kind := frameKind(hdr[4])
		var body []byte
		var buf *wire.Buf
		if n > 0 {
			buf = wire.Get(n)
			body = buf.Bytes()
			if _, err := io.ReadFull(conn, body); err != nil {
				buf.Release()
				b.addErr(fmt.Errorf("netlive: shard %d read body: %w", b.shard, err))
				return
			}
		}
		if met := b.met; met != nil {
			met.Add(metrics.CtrFramesIn, 1)
			met.Add(metrics.CtrBytesIn, int64(5+n))
		}
		switch kind {
		case kPacket:
			remote, _ := b.remote.Load().(func(src, dst, size int, payload []byte))
			if remote == nil {
				panic("netlive: packet frame before the machine installed its remote handler")
			}
			src := int(binary.LittleEndian.Uint32(body))
			dst := int(binary.LittleEndian.Uint32(body[4:]))
			size := int(binary.LittleEndian.Uint32(body[8:]))
			remote(src, dst, size, body[packetHdrLen:])
		case kMainsDone:
			b.shardDone(int(binary.LittleEndian.Uint32(body)))
		case kAllDone:
			b.fireQuiesce()
		case kStats:
			// The pooled body is recycled below; the payload must outlive it.
			shard := int(binary.LittleEndian.Uint32(body))
			b.statsMu.Lock()
			b.peerStats[shard] = append([]byte(nil), body[4:]...)
			b.statsMu.Unlock()
		case kStatsReq:
			b.sendStats()
		case kDoorbell:
			b.shmWake(int(binary.LittleEndian.Uint32(body)))
		default:
			b.addErr(fmt.Errorf("netlive: unknown frame kind %d", kind))
		}
		if buf != nil {
			buf.Release()
		}
	}
}

func isClosedErr(err error) bool {
	return errors.Is(err, net.ErrClosed) || errors.Is(err, io.ErrClosedPipe)
}

// --- the per-peer writer ----------------------------------------------------

// outFrame is one queued wire frame. buf (optional) is the body beyond the
// packet header; ownership rides with the frame.
type outFrame struct {
	kind           frameKind
	src, dst, size int
	buf            *wire.Buf
	at             time.Duration // push time (backend clock), for writer-stall metrics
}

// peer owns the connection to one remote shard: an unbounded ring of frames
// drained by a single writer goroutine, so senders never block on the socket
// and per-sender order is preserved. The connection is dialed lazily on the
// first frame, retrying while the peer's listener comes up.
type peer struct {
	b     *Backend
	shard int

	mu     sync.Mutex
	cond   *sync.Cond          //mpmdvet:cond mu
	q      wire.Ring[outFrame] //mpmdvet:guard mu
	closed bool                //mpmdvet:guard mu

	started bool //mpmdvet:guard mu

	// queued counts frames ever pushed; sent counts frames the writer has
	// fully put on the wire (or dropped after a connection failure). flush
	// waits for them to meet — how a worker guarantees its final kStats frame
	// is out before the process exits.
	queued atomic.Int64
	sent   atomic.Int64
}

func newPeer(b *Backend, shard int) *peer {
	p := &peer{b: b, shard: shard}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// push queues a frame (never blocks) and lazily starts the writer.
//
//mpmd:coldpath its only allocation is the one-time lazy start of the per-peer writer goroutine
func (p *peer) push(f outFrame) {
	f.at = p.b.inner.Now()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		if f.buf != nil {
			f.buf.Release()
		}
		return
	}
	p.q.Push(f)
	depth := p.q.Len()
	if !p.started {
		p.started = true
		go p.writeLoop()
	}
	p.queued.Add(1)
	p.mu.Unlock()
	if met := p.b.met; met != nil {
		met.Set(metrics.GgePeerRingDepth, int64(depth))
	}
	p.cond.Signal()
}

// flush waits (bounded) until every frame queued so far is on the wire. Only
// meaningful while the queue is still open.
func (p *peer) flush(timeout time.Duration) bool {
	want := p.queued.Load()
	deadline := time.Now().Add(timeout)
	for p.sent.Load() < want {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
	return true
}

// close shuts the queue; the writer exits after draining.
func (p *peer) close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

// dial connects to the peer shard, waiting for its socket to appear.
func (p *peer) dial() (net.Conn, error) {
	path := p.b.sockPath(p.shard)
	deadline := time.Now().Add(p.b.opts.DialTimeout)
	for {
		conn, err := net.Dial("unix", path)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("netlive: shard %d unreachable at %s: %w", p.shard, path, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// writeLoop drains the frame ring onto the socket. The frame header is
// assembled in a reusable scratch buffer and the pooled body released after
// the write, so steady-state cross-shard sends allocate nothing here.
func (p *peer) writeLoop() {
	conn, err := p.dial()
	if err != nil {
		p.b.addErr(err)
		p.drainAndDrop()
		return
	}
	defer conn.Close()
	var scratch [5 + packetHdrLen]byte
	for {
		p.mu.Lock()
		for p.q.Len() == 0 && !p.closed {
			p.cond.Wait()
		}
		f, ok := p.q.Pop()
		p.mu.Unlock()
		if !ok {
			return // closed and drained
		}
		if met := p.b.met; met != nil {
			met.ObserveDur(metrics.HstWriterStall, p.b.inner.Now()-f.at)
		}
		hdr := scratch[:5]
		bodyLen := 0
		if f.kind == kPacket {
			bodyLen = packetHdrLen
			hdr = scratch[:5+packetHdrLen]
			binary.LittleEndian.PutUint32(hdr[5:], uint32(f.src))
			binary.LittleEndian.PutUint32(hdr[9:], uint32(f.dst))
			binary.LittleEndian.PutUint32(hdr[13:], uint32(f.size))
		}
		if f.buf != nil {
			bodyLen += f.buf.Len()
		}
		binary.LittleEndian.PutUint32(hdr[:4], uint32(bodyLen))
		hdr[4] = byte(f.kind)
		_, werr := conn.Write(hdr)
		if werr == nil && f.buf != nil {
			_, werr = conn.Write(f.buf.Bytes())
		}
		if f.buf != nil {
			f.buf.Release()
		}
		p.sent.Add(1)
		if werr != nil {
			if !isClosedErr(werr) {
				p.b.addErr(fmt.Errorf("netlive: write to shard %d: %w", p.shard, werr))
			}
			p.drainAndDrop()
			return
		}
		if met := p.b.met; met != nil {
			met.Add(metrics.CtrFramesOut, 1)
			met.Add(metrics.CtrBytesOut, int64(5+bodyLen)) // total wire bytes: length prefix + kind + body
		}
	}
}

// drainAndDrop releases queued frames after a connection failure so buffer
// pools are not starved.
func (p *peer) drainAndDrop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		f, ok := p.q.Pop()
		if !ok {
			if p.closed {
				return
			}
			p.cond.Wait()
			continue
		}
		if f.buf != nil {
			f.buf.Release()
		}
		p.sent.Add(1)
	}
}
