//go:build unix

// Shared-memory shard rings: the zero-syscall fast path for co-resident
// shards. Each ordered shard pair (i, j) gets one mmap'd single-producer
// single-consumer byte ring per direction, created by the parent in the
// rendezvous directory before re-exec and attached by every shard at New.
// A cross-shard packet is marshaled by the sender directly into a ring
// slot (the slot-backed wire.Buf), published with an atomic cursor store,
// and consumed in place by the receiving shard's ring reader — the same
// length-delimited AM frame bytes the socket path carries, minus the two
// syscalls per frame.
//
// The protocol is futex-free: a waiting consumer spins a bounded number of
// yields, then publishes a "parked" flag in the shared header and blocks;
// a producer that observes the flag (and wins the clear) sends a kDoorbell
// control frame over the existing peer socket. Under sustained load the
// flag is never set and no socket traffic happens at all.
package netlive

import (
	"encoding/binary"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
	"unsafe"

	"repro/internal/metrics"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Ring file layout: a 256-byte header, then capB data bytes. The cursor
// fields sit on separate cache lines so producer and consumer do not
// false-share. tail and head are free-running byte counts (never wrapped),
// so full/empty are unambiguous: used = tail - head.
const (
	shmMagic   = 0x474e49524d48531 // "SHMRING" as a number
	shmVersion = 1
	shmHdrSize = 256

	offMagic   = 0
	offVersion = 8
	offCapB    = 16
	offTail    = 64 // producer cursor (free-running bytes)
	offHead    = 128
	offParked  = 192

	// recHdrLen is the per-record header: u32 record length (header
	// included, padding excluded), u32 src, u32 dst, u32 size. Records are
	// 8-byte aligned and never straddle the wrap point; a wrapMarker in the
	// length field means "skip to offset 0".
	recHdrLen  = 16
	wrapMarker = ^uint32(0)

	// defaultRingBytes / minRingBytes bound the data area. The default
	// comfortably holds hundreds of in-flight 1 KiB bulk frames; the floor
	// keeps the contiguity invariant (one record <= a quarter of the ring)
	// satisfiable for every pooled frame class tests actually push through.
	defaultRingBytes = 1 << 20
	minRingBytes     = 4 << 10

	// shmSpinIters bounds the consumer's first spin stage: in-process yields
	// (runtime.Gosched), which cost almost nothing and catch a producer
	// sharing this Go scheduler (the in-process loopback rigs).
	shmSpinIters = 8
	// shmYieldIters bounds the second stage: OS-level yields (sched_yield),
	// which hand the core to the peer shard's *process*. On few-core hosts
	// this is what makes the ring pay off — a sustained cross-process
	// request/reply stream turns into cheap scheduler ping-pong instead of a
	// doorbell (socket round trip) per frame. Each iteration also yields
	// in-process so delivery workers and handlers keep running. Only after
	// both stages come up dry does the consumer park and wait for a doorbell.
	shmYieldIters = 4096
)

func align8(n uint64) uint64 { return (n + 7) &^ 7 }

// shmRing is one mapped directed ring. The file descriptor is closed right
// after mapping (the mapping keeps the pages alive); unmap is the only
// teardown.
type shmRing struct {
	raw    []byte
	data   []byte
	capB   uint64
	tail   *atomic.Uint64 //mpmdvet:shared — producer cursor in the mapped header, read by the peer process
	head   *atomic.Uint64 //mpmdvet:shared — consumer cursor in the mapped header
	parked *atomic.Uint32 //mpmdvet:shared — consumer park flag, CAS'd by producers
}

func mapRing(raw []byte) *shmRing {
	return &shmRing{
		raw:    raw,
		data:   raw[shmHdrSize:],
		capB:   (*atomic.Uint64)(unsafe.Pointer(&raw[offCapB])).Load(),
		tail:   (*atomic.Uint64)(unsafe.Pointer(&raw[offTail])),
		head:   (*atomic.Uint64)(unsafe.Pointer(&raw[offHead])),
		parked: (*atomic.Uint32)(unsafe.Pointer(&raw[offParked])),
	}
}

func (r *shmRing) unmap() {
	if r.raw != nil {
		_ = syscall.Munmap(r.raw)
		r.raw = nil
	}
}

// shmPrefaultSink defeats dead-load elimination in prefault.
var shmPrefaultSink byte

// prefault walks every page of the mapping once so first-touch faults happen
// at setup, not inside the measured traffic. The producing shard write-touches
// its outbound rings — safe because the ring is strictly SPSC, the peer never
// stores into the data area, and nothing below the published tail is visible
// yet — while inbound rings get read faults only: the consumer never stores
// into the data area either, so a read mapping is all its hot path needs.
func (r *shmRing) prefault(write bool) {
	const page = 4096
	for off := 0; off < len(r.raw); off += page {
		if write {
			r.raw[off] |= 0
		} else {
			shmPrefaultSink += r.raw[off]
		}
	}
}

// createRingFile creates and initializes one ring file. The magic is
// published last (atomically), so an attacher polling the file never sees
// a half-initialized header.
func createRingFile(path string, dataBytes uint64) error {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return err
	}
	defer f.Close()
	size := shmHdrSize + int(dataBytes)
	if err := f.Truncate(int64(size)); err != nil {
		return err
	}
	raw, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return err
	}
	(*atomic.Uint64)(unsafe.Pointer(&raw[offVersion])).Store(shmVersion)
	(*atomic.Uint64)(unsafe.Pointer(&raw[offCapB])).Store(dataBytes)
	(*atomic.Uint64)(unsafe.Pointer(&raw[offMagic])).Store(shmMagic)
	return syscall.Munmap(raw)
}

// attachRing opens and maps one ring file, retrying until the deadline: in
// the re-exec harness the parent creates every ring before spawning, so a
// child's attach succeeds on the first try; externally launched workers may
// briefly poll while the parent comes up.
func attachRing(path string, deadline time.Time) (*shmRing, error) {
	for {
		r, err := tryAttach(path)
		if err == nil {
			return r, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("netlive: attach shm ring %s: %w", path, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func tryAttach(path string) (*shmRing, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() < shmHdrSize {
		return nil, fmt.Errorf("short file (%d bytes)", st.Size())
	}
	raw, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return nil, err
	}
	if (*atomic.Uint64)(unsafe.Pointer(&raw[offMagic])).Load() != shmMagic {
		_ = syscall.Munmap(raw)
		return nil, fmt.Errorf("not initialized yet")
	}
	if v := (*atomic.Uint64)(unsafe.Pointer(&raw[offVersion])).Load(); v != shmVersion {
		_ = syscall.Munmap(raw)
		return nil, fmt.Errorf("ring version %d, want %d", v, shmVersion)
	}
	r := mapRing(raw)
	if uint64(st.Size()) != shmHdrSize+r.capB || r.capB%8 != 0 || r.capB == 0 {
		_ = syscall.Munmap(raw)
		return nil, fmt.Errorf("corrupt ring geometry (file %d, cap %d)", st.Size(), r.capB)
	}
	return r, nil
}

// shmTx is the producer end of one outbound ring. mu serializes this
// shard's many sender goroutines onto the single-producer cursor; the
// consumer is the peer process, reached only through the shared atomics.
type shmTx struct {
	r    *shmRing
	peer int

	mu     sync.Mutex
	tail   uint64    //mpmdvet:guard mu — local copy of the published producer cursor
	slot   *wire.Buf //mpmdvet:guard mu — reusable slot-backed marshal target
	closed bool      //mpmdvet:guard mu

	// quit mirrors closed without the lock: reserve's full-ring wait polls
	// it so teardown is never blocked behind a sender spinning on a ring
	// whose consumer is already gone.
	quit atomic.Bool
	// full latches after a reserve timeout (no consumer progress): the ring
	// is abandoned and every later frame takes the socket path.
	full atomic.Bool
}

// shmRx is the consumer end of one inbound ring.
type shmRx struct {
	r    *shmRing
	peer int
	wake chan struct{} // doorbell, capacity 1
}

// shmPlane is a backend's shared-memory transport state: one tx and one rx
// per peer shard (nil at the self index).
type shmPlane struct {
	tx     []*shmTx
	rx     []*shmRx
	stop   atomic.Bool
	stopCh chan struct{}
	wg     sync.WaitGroup
}

func (p *shmPlane) closeRings() {
	for _, tx := range p.tx {
		if tx != nil {
			tx.r.unmap()
		}
	}
	for _, rx := range p.rx {
		if rx != nil {
			rx.r.unmap()
		}
	}
}

func (b *Backend) ringPath(from, to int) string {
	return fmt.Sprintf("%s/ring-%d-%d.shm", b.dir, from, to)
}

// shmSetup creates (parent) and attaches (every shard) the ring mesh. When
// the fast path is enabled, the rings are required: every shard attaches
// every ring or construction fails, so a pair can never disagree about
// whether a direction is ring- or socket-carried (which would reorder or
// strand frames). Falling back to sockets is a configuration decision
// (DisableShm, the MPMD_NETLIVE_NOSHM env, an unsupported OS, or — when
// shards stop being co-resident — the absence of a ring mesh), never a
// silent per-pair race.
func (b *Backend) shmSetup() error {
	if b.shards <= 1 || b.opts.DisableShm || os.Getenv(EnvNoShm) != "" {
		return nil
	}
	ringBytes := b.opts.ShmRingBytes
	if ringBytes <= 0 {
		ringBytes = defaultRingBytes
	}
	if ringBytes < minRingBytes {
		ringBytes = minRingBytes
	}
	ringBytes = int(align8(uint64(ringBytes)))
	if b.shard == 0 {
		for i := 0; i < b.shards; i++ {
			for j := 0; j < b.shards; j++ {
				if i == j {
					continue
				}
				if err := createRingFile(b.ringPath(i, j), uint64(ringBytes)); err != nil {
					return fmt.Errorf("netlive: create shm ring %d->%d: %w", i, j, err)
				}
			}
		}
	}
	p := &shmPlane{
		tx:     make([]*shmTx, b.shards),
		rx:     make([]*shmRx, b.shards),
		stopCh: make(chan struct{}),
	}
	deadline := time.Now().Add(b.opts.DialTimeout)
	for s := 0; s < b.shards; s++ {
		if s == b.shard {
			continue
		}
		out, err := attachRing(b.ringPath(b.shard, s), deadline)
		if err != nil {
			p.closeRings()
			return err
		}
		p.tx[s] = &shmTx{r: out, peer: s, slot: wire.NewSlot()}
		in, err := attachRing(b.ringPath(s, b.shard), deadline)
		if err != nil {
			p.closeRings()
			return err
		}
		p.rx[s] = &shmRx{r: in, peer: s, wake: make(chan struct{}, 1)}
		out.prefault(true)
		in.prefault(false)
	}
	b.shm = p
	return nil
}

// ShmActive reports whether the shared-memory fast path is carrying this
// backend's cross-shard packets (false on loopback, when disabled, or on
// platforms without it).
func (b *Backend) ShmActive() bool { return b.shm != nil }

// shmStart launches one consumer goroutine per inbound ring. Deferred to
// Run for the same happens-before reason as acceptLoop: no frame may
// dispatch into a half-built machine.
func (b *Backend) shmStart() {
	p := b.shm
	if p == nil {
		return
	}
	for _, rx := range p.rx {
		if rx != nil {
			p.wg.Add(1)
			go b.shmReadLoop(rx)
		}
	}
}

// shmShutdown stops the consumers, closes the producers behind their locks
// (the lock round-trip is the barrier that no in-flight send still touches
// the mapping), then unmaps every ring. Runs on every teardown path —
// including a stalled run's — so a wedged machine leaks neither goroutines
// nor mappings; a straggler proc that sends afterwards gets the socket
// path's closed-peer drop semantics instead of a fault on unmapped memory.
func (b *Backend) shmShutdown() {
	p := b.shm
	if p == nil || !p.stop.CompareAndSwap(false, true) {
		return
	}
	close(p.stopCh)
	for _, tx := range p.tx {
		if tx == nil {
			continue
		}
		tx.quit.Store(true)
		tx.mu.Lock()
		tx.closed = true
		tx.mu.Unlock()
	}
	p.wg.Wait()
	p.closeRings()
}

// shmWake rings a parked consumer's local doorbell (the kDoorbell frame
// handler).
func (b *Backend) shmWake(s int) {
	p := b.shm
	if p == nil || s < 0 || s >= len(p.rx) || p.rx[s] == nil {
		return
	}
	select {
	case p.rx[s].wake <- struct{}{}:
	default:
	}
}

// DeliverSlot implements transport.SlotSender: marshal the payload straight
// into the destination shard's ring. False routes the caller to the pooled
// DeliverRemote socket path.
//
//mpmd:hotpath
func (b *Backend) DeliverSlot(src, dst, size int, wp transport.FrameMarshaler) bool {
	p := b.shm
	if p == nil {
		return false
	}
	tx := p.tx[b.shardOf(dst)]
	if tx == nil {
		return false
	}
	return tx.send(b, src, dst, size, wp)
}

// send reserves a slot, marshals the payload into it through the slot-backed
// Buf, publishes the new tail, and rings the doorbell if the consumer is
// parked. The whole critical section is sender-side only — the consumer is
// coordinated purely through the shared cursors.
//
//mpmd:hotpath
func (tx *shmTx) send(b *Backend, src, dst, size int, wp transport.FrameMarshaler) bool {
	n := wp.WireLen()
	rec := align8(recHdrLen + uint64(n))
	if rec > tx.r.capB/4 || tx.full.Load() {
		// Oversize for the contiguity invariant, or the ring is abandoned.
		return false
	}
	tx.mu.Lock()
	if tx.closed {
		tx.mu.Unlock()
		return false
	}
	off, ok := tx.reserve(rec, b.opts.DialTimeout)
	if !ok {
		tx.mu.Unlock()
		b.shmRingFailed(tx)
		return false
	}
	data := tx.r.data
	binary.LittleEndian.PutUint32(data[off:], uint32(recHdrLen+uint64(n)))
	binary.LittleEndian.PutUint32(data[off+4:], uint32(src))
	binary.LittleEndian.PutUint32(data[off+8:], uint32(dst))
	binary.LittleEndian.PutUint32(data[off+12:], uint32(size))
	tx.slot.Bind(data[off+recHdrLen : off+recHdrLen+uint64(n)])
	wp.EncodeWire(tx.slot.Bytes())
	tx.slot.Release()
	tx.tail += rec
	tx.r.tail.Store(tx.tail)
	depth := tx.tail - tx.r.head.Load()
	tx.mu.Unlock()
	if met := b.met; met != nil {
		met.Add(metrics.CtrShmFramesOut, 1)
		met.Add(metrics.CtrShmBytesOut, int64(recHdrLen+uint64(n)))
		met.Set(metrics.GgeShmRingDepth, int64(depth))
	}
	// Doorbell only when the consumer has declared itself parked; the CAS
	// makes one producer win, so a parked consumer gets exactly one frame.
	// Sequential consistency of the atomics orders tail.Store before this
	// load against the consumer's parked.Store-then-tail.Load re-check, so
	// the wakeup cannot be lost.
	if tx.r.parked.Load() == 1 && tx.r.parked.CompareAndSwap(1, 0) {
		b.ringDoorbell(tx.peer)
	}
	return true
}

// reserve finds rec contiguous bytes, writing a wrap marker when the tail
// would straddle the end. Called with tx.mu held. A full ring waits for the
// consumer — briefly spinning, then sleeping in small steps bounded by
// timeout, after which the ring is declared dead (false).
//
//mpmdvet:locked tx.mu
func (tx *shmTx) reserve(rec uint64, timeout time.Duration) (uint64, bool) {
	r := tx.r
	capB := r.capB
	var deadline time.Time
	for spins := 0; ; spins++ {
		off := tx.tail % capB
		pad := uint64(0)
		if off+rec > capB {
			pad = capB - off
		}
		if tx.tail+pad+rec-r.head.Load() <= capB {
			if pad > 0 {
				binary.LittleEndian.PutUint32(r.data[off:], wrapMarker)
				tx.tail += pad
				off = 0
			}
			return off, true
		}
		if tx.quit.Load() {
			return 0, false
		}
		if spins < 64 {
			runtime.Gosched()
			continue
		}
		if deadline.IsZero() {
			deadline = time.Now().Add(timeout)
		} else if time.Now().After(deadline) {
			return 0, false
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// shmRingFailed latches a dead ring (reserve timed out or teardown raced
// the send) and records the event once.
//
//mpmd:coldpath failure latch; runs at most once per ring, after the fast path has given up on it
func (b *Backend) shmRingFailed(tx *shmTx) {
	if tx.full.CompareAndSwap(false, true) && !tx.quit.Load() {
		b.addErr(fmt.Errorf("netlive: shm ring to shard %d made no progress within %v; falling back to sockets", tx.peer, b.opts.DialTimeout))
	}
}

// shmReadLoop is the per-inbound-ring consumer: drain published records,
// dispatching each to the machine's remote-arrival handler in place, and
// wait (spin, then park) when the ring runs dry.
func (b *Backend) shmReadLoop(rx *shmRx) {
	defer b.shm.wg.Done()
	head := rx.r.head.Load()
	for {
		tail := rx.r.tail.Load()
		if tail == head {
			if !b.shmWaitData(rx, head) {
				return
			}
			continue
		}
		head = b.shmDrain(rx, head, tail)
	}
}

// shmDrain consumes records in [head, tail). The payload slice handed to
// the handler points directly into the mapped ring — valid only for the
// duration of the call, the same no-retain contract as the socket reader —
// and the head cursor is published only after the handler returns, so the
// producer cannot reuse the slot under a running handler.
//
//mpmd:hotpath
func (b *Backend) shmDrain(rx *shmRx, head, tail uint64) uint64 {
	r := rx.r
	data := r.data
	remote, _ := b.remote.Load().(func(src, dst, size int, payload []byte))
	frames, recBytes := int64(0), int64(0)
	for head != tail {
		off := head % r.capB
		recLen := binary.LittleEndian.Uint32(data[off:])
		if recLen == wrapMarker {
			head += r.capB - off
			r.head.Store(head)
			continue
		}
		if remote == nil {
			panic("netlive: shm packet frame before the machine installed its remote handler")
		}
		src := int(binary.LittleEndian.Uint32(data[off+4:]))
		dst := int(binary.LittleEndian.Uint32(data[off+8:]))
		size := int(binary.LittleEndian.Uint32(data[off+12:]))
		remote(src, dst, size, data[off+recHdrLen:off+uint64(recLen)])
		head += align8(uint64(recLen))
		r.head.Store(head)
		frames++
		recBytes += int64(recLen)
	}
	if met := b.met; met != nil {
		met.Add(metrics.CtrShmFramesIn, frames)
		met.Add(metrics.CtrShmBytesIn, recBytes)
	}
	return head
}

// shmWaitData waits for the producer to move tail past head: a bounded
// spin of yields first, then park — publish the parked flag, re-check the
// tail (the producer's publish may have raced the flag), and block on the
// doorbell. Returns false on shutdown.
func (b *Backend) shmWaitData(rx *shmRx, head uint64) bool {
	p := b.shm
	r := rx.r
	for i := 0; i < shmSpinIters+shmYieldIters; i++ {
		if p.stop.Load() {
			return false
		}
		if r.tail.Load() != head {
			if met := b.met; met != nil {
				met.Add(metrics.CtrShmSpinWakes, 1)
			}
			return true
		}
		runtime.Gosched()
		if i >= shmSpinIters {
			osYield()
		}
	}
	// Drop any stale doorbell so the park below cannot be satisfied by a
	// wakeup for data already consumed.
	select {
	case <-rx.wake:
	default:
	}
	r.parked.Store(1)
	if r.tail.Load() != head {
		r.parked.Store(0)
		if met := b.met; met != nil {
			met.Add(metrics.CtrShmSpinWakes, 1)
		}
		return true
	}
	select {
	case <-rx.wake:
	case <-p.stopCh:
		return false
	}
	r.parked.Store(0)
	if met := b.met; met != nil {
		met.Add(metrics.CtrShmParkWakes, 1)
	}
	return true
}

// ringDoorbell wakes shard s's parked consumer of our outbound ring via a
// kDoorbell control frame on the existing peer socket — the only moment
// the fast path touches a file descriptor.
func (b *Backend) ringDoorbell(s int) {
	if met := b.met; met != nil {
		met.Add(metrics.CtrShmDoorbells, 1)
	}
	f := b.frameBuf(4)
	binary.LittleEndian.PutUint32(f.Bytes(), uint32(b.shard))
	b.peers[s].push(outFrame{kind: kDoorbell, buf: f})
}
