//go:build !linux

package netlive

import "runtime"

// osYield falls back to an in-process yield where sched_yield is not
// portably reachable; the park-and-doorbell slow path still guarantees
// progress.
func osYield() {
	runtime.Gosched()
}
