package netlive

import (
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/am"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/threads"
	"repro/internal/transport"
	"repro/internal/transport/live"
)

// shardRig is one shard's view of the machine: its own Backend, machine, AM
// net, and schedulers for the local nodes only — exactly what one process of
// a multi-process run builds, here constructed twice in one test process so
// the race detector sees the whole serialized path.
type shardRig struct {
	be     *Backend
	m      *machine.Machine
	net    *am.Net
	scheds map[int]*threads.Scheduler
}

func newShardRig(t *testing.T, n, nps, shard int, dir string, mods ...func(*Options)) *shardRig {
	t.Helper()
	s := shard
	opts := Options{
		NodesPerShard: nps,
		Shard:         &s,
		Dir:           dir,
		NoSpawn:       true,
		Live:          live.Options{Watchdog: 20 * time.Second},
	}
	for _, mod := range mods {
		mod(&opts)
	}
	be, err := New(n, opts)
	if err != nil {
		t.Fatalf("New shard %d: %v", shard, err)
	}
	r := &shardRig{be: be, m: machine.NewWithBackend(machine.SP1997(), n, be)}
	r.net = am.NewNet(r.m)
	r.scheds = make(map[int]*threads.Scheduler)
	for _, i := range be.LocalNodes() {
		sc := threads.NewScheduler(r.m.Node(i))
		r.net.Endpoint(i).Attach(sc)
		r.scheds[i] = sc
	}
	return r
}

// TestTopology pins the shard arithmetic. DisableShm: a lone worker shard
// with no parent would otherwise wait out the ring-attach deadline.
func TestTopology(t *testing.T) {
	s := 1
	be, err := New(5, Options{NodesPerShard: 2, Shard: &s, Dir: t.TempDir(), NoSpawn: true, DisableShm: true})
	if err != nil {
		t.Fatal(err)
	}
	defer be.shutdownSockets()
	if be.NumShards() != 3 || be.Shard() != 1 {
		t.Fatalf("shards=%d shard=%d", be.NumShards(), be.Shard())
	}
	if be.IsLocal(1) || !be.IsLocal(2) || !be.IsLocal(3) || be.IsLocal(4) {
		t.Fatalf("locality wrong: %v", be.LocalNodes())
	}
	if got := be.LocalNodes(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("LocalNodes = %v", got)
	}
}

// TestLoopbackSingleShard: NodesPerShard >= n means no sockets and live
// semantics; the conformance suite covers the full contract, this pins the
// degenerate construction.
func TestLoopbackSingleShard(t *testing.T) {
	be, err := New(2, Options{Live: live.Options{Watchdog: 10 * time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	if be.NumShards() != 1 || !be.IsLocal(1) {
		t.Fatalf("loopback topology wrong: shards=%d", be.NumShards())
	}
	done := false
	be.Go(0, "p", func(p transport.Proc) { done = true })
	if err := be.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !done {
		t.Fatal("proc never ran")
	}
}

// TestTwoShardsInProcess runs a 2-shard × 2-nodes-per-shard machine as two
// backends inside this test process: node 0 (shard 0) blasts node 2
// (shard 1) with ordered shorts and patterned bulk payloads; node 2's
// handler verifies and acks. Both transports run under -race, without the
// re-exec harness: the shm subtest exercises the mmap'd ring path end to
// end, the socket subtest pins the DisableShm fallback.
func TestTwoShardsInProcess(t *testing.T) {
	t.Run("shm", func(t *testing.T) { twoShardsTraffic(t, true) })
	t.Run("socket", func(t *testing.T) {
		twoShardsTraffic(t, false, func(o *Options) { o.DisableShm = true })
	})
}

func twoShardsTraffic(t *testing.T, wantShm bool, mods ...func(*Options)) {
	const (
		n     = 4
		nps   = 2
		k     = 100
		bytes = 1 << 10
	)
	dir := t.TempDir()
	a := newShardRig(t, n, nps, 0, dir, mods...)
	b := newShardRig(t, n, nps, 1, dir, mods...)
	if a.be.ShmActive() != wantShm || b.be.ShmActive() != wantShm {
		t.Fatalf("ShmActive = %v/%v, want %v", a.be.ShmActive(), b.be.ShmActive(), wantShm)
	}

	pattern := func(i, j int) byte { return byte(i*13 + j*7) }

	// Shard 1: node 2 receives k shorts (ordered) and k bulks (patterned),
	// acking each bulk back to node 0.
	var (
		gotShort []uint64
		gotBulk  int
		bad      string
	)
	var hAck am.HandlerID
	hShort := b.net.Register("t.short", func(th *threads.Thread, m am.Msg) {
		gotShort = append(gotShort, m.A[0])
	})
	hBulk := b.net.Register("t.bulk", func(th *threads.Thread, m am.Msg) {
		i := int(m.A[0])
		if len(m.Payload) != bytes {
			bad = "bad payload length"
		}
		for j, by := range m.Payload {
			if by != pattern(i, j) {
				bad = "payload corrupted in flight"
				break
			}
		}
		gotBulk++
		b.net.Endpoint(2).RequestShort(th, 0, hAck, [4]uint64{uint64(i)})
	})
	// Shard 0: the ack handler registers on shard 0's net under the same ID
	// sequence — identical registration order across shards, as the SPMD
	// launch model requires. Register all three on both nets.
	_ = a.net.Register("t.short", func(*threads.Thread, am.Msg) {})
	_ = a.net.Register("t.bulk", func(*threads.Thread, am.Msg) {})
	acks := 0
	hAck = a.net.Register("t.ack", func(th *threads.Thread, m am.Msg) { acks++ })
	_ = b.net.Register("t.ack", func(*threads.Thread, am.Msg) {})

	a.scheds[0].Start("sender", func(th *threads.Thread) {
		ep := a.net.Endpoint(0)
		buf := make([]byte, bytes)
		for i := 0; i < k; i++ {
			ep.RequestShort(th, 2, hShort, [4]uint64{uint64(i)})
			for j := range buf {
				buf[j] = pattern(i, j)
			}
			ep.RequestBulk(th, 2, hBulk, buf, [4]uint64{uint64(i)})
			// Clobber: the wire path promised copy-at-send semantics.
			for j := range buf {
				buf[j] = 0xEE
			}
		}
		ep.PollUntil(th, func() bool { return acks == k })
	})
	b.scheds[2].Start("receiver", func(th *threads.Thread) {
		b.net.Endpoint(2).PollUntil(th, func() bool { return gotBulk == k && len(gotShort) == k })
	})

	var wg sync.WaitGroup
	var errA, errB error
	wg.Add(2)
	go func() { defer wg.Done(); errA = a.m.Run() }()
	go func() { defer wg.Done(); errB = b.m.Run() }()
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatalf("Run: shard0=%v shard1=%v", errA, errB)
	}
	if bad != "" {
		t.Fatal(bad)
	}
	if len(gotShort) != k || gotBulk != k || acks != k {
		t.Fatalf("short=%d bulk=%d acks=%d, want %d each", len(gotShort), gotBulk, acks, k)
	}
	for i, v := range gotShort {
		if v != uint64(i) {
			t.Fatalf("short %d carried %d: cross-shard delivery reordered", i, v)
		}
	}
	// The data frames traveled the transport the configuration promised.
	snapA, snapB := a.be.MetricsSnapshot(), b.be.MetricsSnapshot()
	if wantShm {
		if snapA.Counter(metrics.CtrShmFramesOut) == 0 || snapB.Counter(metrics.CtrShmFramesIn) == 0 {
			t.Fatalf("shm enabled but rings carried no frames: out=%d in=%d",
				snapA.Counter(metrics.CtrShmFramesOut), snapB.Counter(metrics.CtrShmFramesIn))
		}
	} else {
		if snapA.Counter(metrics.CtrShmFramesOut) != 0 || snapB.Counter(metrics.CtrShmFramesIn) != 0 {
			t.Fatal("shm disabled but ring counters moved")
		}
	}
}

// TestShmRingWraparoundAliasing forces the ring through many wraps and
// full-ring producer waits: an 8 KiB ring carrying 200 patterned 1 KiB bulks
// holds only a handful of records at a time. The receiving handler scans its
// payload twice with a yield between the passes — the payload slice points
// directly into the mapped ring, so if the producer could reuse a slot before
// the handler returned (head published too early), the second pass would see
// the next frame's bytes.
func TestShmRingWraparoundAliasing(t *testing.T) {
	const (
		n     = 4
		nps   = 2
		k     = 200
		bytes = 1 << 10
	)
	small := func(o *Options) { o.ShmRingBytes = 8 << 10 }
	dir := t.TempDir()
	a := newShardRig(t, n, nps, 0, dir, small)
	b := newShardRig(t, n, nps, 1, dir, small)
	if !a.be.ShmActive() || !b.be.ShmActive() {
		t.Fatal("shm not active")
	}

	pattern := func(i, j int) byte { return byte(i*31 + j*11) }
	var hAck am.HandlerID
	got := 0
	bad := ""
	hBulk := b.net.Register("w.bulk", func(th *threads.Thread, m am.Msg) {
		i := int(m.A[0])
		sum1 := 0
		for j, by := range m.Payload {
			if by != pattern(i, j) {
				bad = "payload corrupted in flight"
			}
			sum1 += int(by)
		}
		runtime.Gosched() // give a racing producer every chance to clobber the slot
		sum2 := 0
		for _, by := range m.Payload {
			sum2 += int(by)
		}
		if sum1 != sum2 {
			bad = "ring slot reused under a running handler (aliasing)"
		}
		got++
		b.net.Endpoint(2).RequestShort(th, 0, hAck, [4]uint64{uint64(i)})
	})
	_ = a.net.Register("w.bulk", func(*threads.Thread, am.Msg) {})
	acks := 0
	hAck = a.net.Register("w.ack", func(*threads.Thread, am.Msg) { acks++ })
	_ = b.net.Register("w.ack", func(*threads.Thread, am.Msg) {})

	a.scheds[0].Start("sender", func(th *threads.Thread) {
		ep := a.net.Endpoint(0)
		buf := make([]byte, bytes)
		for i := 0; i < k; i++ {
			for j := range buf {
				buf[j] = pattern(i, j)
			}
			ep.RequestBulk(th, 2, hBulk, buf, [4]uint64{uint64(i)})
		}
		ep.PollUntil(th, func() bool { return acks == k })
	})
	b.scheds[2].Start("receiver", func(th *threads.Thread) {
		b.net.Endpoint(2).PollUntil(th, func() bool { return got == k })
	})

	var wg sync.WaitGroup
	var errA, errB error
	wg.Add(2)
	go func() { defer wg.Done(); errA = a.m.Run() }()
	go func() { defer wg.Done(); errB = b.m.Run() }()
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatalf("Run: shard0=%v shard1=%v", errA, errB)
	}
	if bad != "" {
		t.Fatal(bad)
	}
	if got != k || acks != k {
		t.Fatalf("bulks=%d acks=%d, want %d each", got, acks, k)
	}
	// k records through an 8 KiB ring means the tail lapped it many times.
	if out := a.be.MetricsSnapshot().Counter(metrics.CtrShmFramesOut); out < k {
		t.Fatalf("shm frames out = %d, want >= %d", out, k)
	}
}

// ringMappings counts this process's live shm ring mappings (linux: parsed
// out of /proc/self/maps; -1 elsewhere, callers skip).
func ringMappings(t *testing.T) int {
	t.Helper()
	maps, err := os.ReadFile("/proc/self/maps")
	if err != nil {
		return -1
	}
	count := 0
	for _, line := range strings.Split(string(maps), "\n") {
		if strings.Contains(line, "ring-") && strings.Contains(line, ".shm") {
			count++
		}
	}
	return count
}

// TestShmStalledTeardownNoLeaks: a run that stalls (watchdog fires, Run
// returns StallError) must still tear the ring plane down — consumer
// goroutines exit and every ring mapping is unmapped — just like the live
// backend's janitor frees its workers. Only the stuck proc itself may
// outlive the run.
func TestShmStalledTeardownNoLeaks(t *testing.T) {
	fast := func(o *Options) {
		o.Live.Watchdog = 300 * time.Millisecond
		o.Live.Teardown = 200 * time.Millisecond
		o.DialTimeout = 2 * time.Second
	}
	before := runtime.NumGoroutine()
	dir := t.TempDir()
	a := newShardRig(t, 4, 2, 0, dir, fast)
	b := newShardRig(t, 4, 2, 1, dir, fast)
	if !a.be.ShmActive() || !b.be.ShmActive() {
		t.Fatal("shm not active")
	}
	mapped := ringMappings(t)
	if mapped == 0 {
		t.Fatal("no ring mappings after attach")
	}

	a.be.Go(0, "stuck", func(p transport.Proc) { p.Park() }) // parked forever
	var wg sync.WaitGroup
	var errA, errB error
	wg.Add(2)
	go func() { defer wg.Done(); errA = a.m.Run() }()
	go func() { defer wg.Done(); errB = b.m.Run() }()
	wg.Wait()
	if errA == nil {
		t.Fatal("stalled shard 0 run returned nil, want StallError")
	}
	_ = errB // the worker shard may or may not surface the parent's stall

	if mapped = ringMappings(t); mapped > 0 {
		t.Fatalf("%d ring mappings survived teardown", mapped)
	}
	// The shm consumers, peer writers, and readers must all be gone. Two
	// goroutines legitimately outlive a stalled run, both pre-dating the shm
	// plane: the stuck proc itself and live.Run's completion waiter, which
	// blocks on the proc WaitGroup the stuck proc never leaves.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if g := runtime.NumGoroutine(); g <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	stacks := make([]byte, 1<<20)
	stacks = stacks[:runtime.Stack(stacks, true)]
	t.Fatalf("goroutines before=%d after stalled teardown=%d: shm plane leaked\n%s",
		before, runtime.NumGoroutine(), stacks)
}

// TestAffinityBlock pins the CPUsPerShard -> CPU set arithmetic.
func TestAffinityBlock(t *testing.T) {
	ncpu := runtime.NumCPU()
	got := affinityBlock(1, 2)
	want := []int{2 % ncpu, 3 % ncpu}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("affinityBlock(1,2) = %v, want %v", got, want)
	}
}

// TestTwoShardsStats drives cross-shard traffic through two in-process
// backends and verifies the kStats control plane end to end under -race: at
// quiesce the worker shard serializes its stats and ships them over the real
// socket, the parent's ClusterStats merges them, and the merged counters
// equal the sum of the per-shard reports — with the worker's handler activity
// visible only through its kStats payload, never fabricated locally.
func TestTwoShardsStats(t *testing.T) {
	const (
		n   = 4
		nps = 2
		k   = 60
	)
	dir := t.TempDir()
	a := newShardRig(t, n, nps, 0, dir)
	b := newShardRig(t, n, nps, 1, dir)

	// Node 0 (shard 0) sends k shorts to node 2 (shard 1); node 2 acks each.
	var hAck am.HandlerID
	gotPing := 0
	hPing := b.net.Register("s.ping", func(th *threads.Thread, m am.Msg) {
		gotPing++
		b.net.Endpoint(2).RequestShort(th, 0, hAck, m.A)
	})
	_ = a.net.Register("s.ping", func(*threads.Thread, am.Msg) {})
	acks := 0
	hAck = a.net.Register("s.ack", func(*threads.Thread, am.Msg) { acks++ })
	_ = b.net.Register("s.ack", func(*threads.Thread, am.Msg) {})

	a.scheds[0].Start("sender", func(th *threads.Thread) {
		ep := a.net.Endpoint(0)
		for i := 0; i < k; i++ {
			ep.RequestShort(th, 2, hPing, [4]uint64{uint64(i)})
		}
		ep.PollUntil(th, func() bool { return acks == k })
	})
	b.scheds[2].Start("receiver", func(th *threads.Thread) {
		b.net.Endpoint(2).PollUntil(th, func() bool { return gotPing == k })
	})

	var wg sync.WaitGroup
	var errA, errB error
	wg.Add(2)
	go func() { defer wg.Done(); errA = a.m.Run() }()
	go func() { defer wg.Done(); errB = b.m.Run() }()
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatalf("Run: shard0=%v shard1=%v", errA, errB)
	}

	if _, err := b.m.ClusterStats(); err == nil {
		t.Fatal("ClusterStats on the worker shard should refuse (parent only)")
	}
	cs, err := a.m.ClusterStats()
	if err != nil {
		t.Fatalf("ClusterStats on parent: %v", err)
	}
	if len(cs.Shards) != 2 || cs.Shards[0].Shard != 0 || cs.Shards[1].Shard != 1 {
		t.Fatalf("shards = %+v, want [0 1]", cs.Shards)
	}
	// The worker's handler ran k times in shard 1's address space; the merged
	// total must carry it, and it must come from the kStats payload (shard 0
	// never saw those handler runs locally).
	if got := cs.Shards[1].Acct.Counters[machine.CntHandlersRun]; got < k {
		t.Fatalf("shard 1 reported %d handler runs over the wire, want >= %d", got, k)
	}
	sum := machine.MergeSnapshots(cs.Shards[0].Acct, cs.Shards[1].Acct)
	if cs.Acct != sum {
		t.Fatalf("merged acct != shard0 + shard1:\n got %v\nwant %v", cs.Acct, sum)
	}
	if local := a.m.LocalStats().Acct.Counters[machine.CntHandlersRun]; cs.Acct.Counters[machine.CntHandlersRun] <= local {
		t.Fatal("merged handler count does not exceed the parent-local count: worker contribution missing")
	}
	// Both shards moved real frames; the merged wall-clock metrics must agree
	// with the per-shard reports and show socket traffic on both sides.
	if cs.Metrics != metrics.Merge(cs.Shards[0].Metrics, cs.Shards[1].Metrics) {
		t.Fatal("merged metrics != merge of shard metrics")
	}
	// The data frames (pings one way, acks the other) rode the shm rings on
	// both sides, and the worker's counters reached the parent through the
	// kStats payload — the wire told us, not local bookkeeping.
	for i, ss := range cs.Shards {
		if ss.Metrics.Counter(metrics.CtrShmFramesOut) == 0 || ss.Metrics.Counter(metrics.CtrShmFramesIn) == 0 {
			t.Fatalf("shard %d reported no shm data frames: out=%d in=%d", i,
				ss.Metrics.Counter(metrics.CtrShmFramesOut), ss.Metrics.Counter(metrics.CtrShmFramesIn))
		}
	}
	// The control plane still crosses the socket: the worker's kStats frame
	// is socket-carried, so the parent's post-run snapshot must count it.
	// (Parent-outbound socket frames — doorbells — are opportunistic and not
	// asserted.)
	if cs.Shards[0].Metrics.Counter(metrics.CtrFramesIn) == 0 {
		t.Fatal("parent counted no inbound socket frames; kStats must cross the socket")
	}
}
