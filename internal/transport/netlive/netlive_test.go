package netlive

import (
	"sync"
	"testing"
	"time"

	"repro/internal/am"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/threads"
	"repro/internal/transport"
	"repro/internal/transport/live"
)

// shardRig is one shard's view of the machine: its own Backend, machine, AM
// net, and schedulers for the local nodes only — exactly what one process of
// a multi-process run builds, here constructed twice in one test process so
// the race detector sees the whole serialized path.
type shardRig struct {
	be     *Backend
	m      *machine.Machine
	net    *am.Net
	scheds map[int]*threads.Scheduler
}

func newShardRig(t *testing.T, n, nps, shard int, dir string) *shardRig {
	t.Helper()
	s := shard
	be, err := New(n, Options{
		NodesPerShard: nps,
		Shard:         &s,
		Dir:           dir,
		NoSpawn:       true,
		Live:          live.Options{Watchdog: 20 * time.Second},
	})
	if err != nil {
		t.Fatalf("New shard %d: %v", shard, err)
	}
	r := &shardRig{be: be, m: machine.NewWithBackend(machine.SP1997(), n, be)}
	r.net = am.NewNet(r.m)
	r.scheds = make(map[int]*threads.Scheduler)
	for _, i := range be.LocalNodes() {
		sc := threads.NewScheduler(r.m.Node(i))
		r.net.Endpoint(i).Attach(sc)
		r.scheds[i] = sc
	}
	return r
}

// TestTopology pins the shard arithmetic.
func TestTopology(t *testing.T) {
	s := 1
	be, err := New(5, Options{NodesPerShard: 2, Shard: &s, Dir: t.TempDir(), NoSpawn: true})
	if err != nil {
		t.Fatal(err)
	}
	defer be.shutdownSockets()
	if be.NumShards() != 3 || be.Shard() != 1 {
		t.Fatalf("shards=%d shard=%d", be.NumShards(), be.Shard())
	}
	if be.IsLocal(1) || !be.IsLocal(2) || !be.IsLocal(3) || be.IsLocal(4) {
		t.Fatalf("locality wrong: %v", be.LocalNodes())
	}
	if got := be.LocalNodes(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("LocalNodes = %v", got)
	}
}

// TestLoopbackSingleShard: NodesPerShard >= n means no sockets and live
// semantics; the conformance suite covers the full contract, this pins the
// degenerate construction.
func TestLoopbackSingleShard(t *testing.T) {
	be, err := New(2, Options{Live: live.Options{Watchdog: 10 * time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	if be.NumShards() != 1 || !be.IsLocal(1) {
		t.Fatalf("loopback topology wrong: shards=%d", be.NumShards())
	}
	done := false
	be.Go(0, "p", func(p transport.Proc) { done = true })
	if err := be.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !done {
		t.Fatal("proc never ran")
	}
}

// TestTwoShardsInProcess runs a 2-shard × 2-nodes-per-shard machine as two
// backends inside this test process, connected by real Unix sockets: node 0
// (shard 0) blasts node 2 (shard 1) with ordered shorts and patterned bulk
// payloads; node 2's handler verifies and acks. This is the serialized wire
// path under -race, without the re-exec harness.
func TestTwoShardsInProcess(t *testing.T) {
	const (
		n     = 4
		nps   = 2
		k     = 100
		bytes = 1 << 10
	)
	dir := t.TempDir()
	a := newShardRig(t, n, nps, 0, dir)
	b := newShardRig(t, n, nps, 1, dir)

	pattern := func(i, j int) byte { return byte(i*13 + j*7) }

	// Shard 1: node 2 receives k shorts (ordered) and k bulks (patterned),
	// acking each bulk back to node 0.
	var (
		gotShort []uint64
		gotBulk  int
		bad      string
	)
	var hAck am.HandlerID
	hShort := b.net.Register("t.short", func(th *threads.Thread, m am.Msg) {
		gotShort = append(gotShort, m.A[0])
	})
	hBulk := b.net.Register("t.bulk", func(th *threads.Thread, m am.Msg) {
		i := int(m.A[0])
		if len(m.Payload) != bytes {
			bad = "bad payload length"
		}
		for j, by := range m.Payload {
			if by != pattern(i, j) {
				bad = "payload corrupted in flight"
				break
			}
		}
		gotBulk++
		b.net.Endpoint(2).RequestShort(th, 0, hAck, [4]uint64{uint64(i)})
	})
	// Shard 0: the ack handler registers on shard 0's net under the same ID
	// sequence — identical registration order across shards, as the SPMD
	// launch model requires. Register all three on both nets.
	_ = a.net.Register("t.short", func(*threads.Thread, am.Msg) {})
	_ = a.net.Register("t.bulk", func(*threads.Thread, am.Msg) {})
	acks := 0
	hAck = a.net.Register("t.ack", func(th *threads.Thread, m am.Msg) { acks++ })
	_ = b.net.Register("t.ack", func(*threads.Thread, am.Msg) {})

	a.scheds[0].Start("sender", func(th *threads.Thread) {
		ep := a.net.Endpoint(0)
		buf := make([]byte, bytes)
		for i := 0; i < k; i++ {
			ep.RequestShort(th, 2, hShort, [4]uint64{uint64(i)})
			for j := range buf {
				buf[j] = pattern(i, j)
			}
			ep.RequestBulk(th, 2, hBulk, buf, [4]uint64{uint64(i)})
			// Clobber: the wire path promised copy-at-send semantics.
			for j := range buf {
				buf[j] = 0xEE
			}
		}
		ep.PollUntil(th, func() bool { return acks == k })
	})
	b.scheds[2].Start("receiver", func(th *threads.Thread) {
		b.net.Endpoint(2).PollUntil(th, func() bool { return gotBulk == k && len(gotShort) == k })
	})

	var wg sync.WaitGroup
	var errA, errB error
	wg.Add(2)
	go func() { defer wg.Done(); errA = a.m.Run() }()
	go func() { defer wg.Done(); errB = b.m.Run() }()
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatalf("Run: shard0=%v shard1=%v", errA, errB)
	}
	if bad != "" {
		t.Fatal(bad)
	}
	if len(gotShort) != k || gotBulk != k || acks != k {
		t.Fatalf("short=%d bulk=%d acks=%d, want %d each", len(gotShort), gotBulk, acks, k)
	}
	for i, v := range gotShort {
		if v != uint64(i) {
			t.Fatalf("short %d carried %d: cross-shard delivery reordered", i, v)
		}
	}
}

// TestTwoShardsStats drives cross-shard traffic through two in-process
// backends and verifies the kStats control plane end to end under -race: at
// quiesce the worker shard serializes its stats and ships them over the real
// socket, the parent's ClusterStats merges them, and the merged counters
// equal the sum of the per-shard reports — with the worker's handler activity
// visible only through its kStats payload, never fabricated locally.
func TestTwoShardsStats(t *testing.T) {
	const (
		n   = 4
		nps = 2
		k   = 60
	)
	dir := t.TempDir()
	a := newShardRig(t, n, nps, 0, dir)
	b := newShardRig(t, n, nps, 1, dir)

	// Node 0 (shard 0) sends k shorts to node 2 (shard 1); node 2 acks each.
	var hAck am.HandlerID
	gotPing := 0
	hPing := b.net.Register("s.ping", func(th *threads.Thread, m am.Msg) {
		gotPing++
		b.net.Endpoint(2).RequestShort(th, 0, hAck, m.A)
	})
	_ = a.net.Register("s.ping", func(*threads.Thread, am.Msg) {})
	acks := 0
	hAck = a.net.Register("s.ack", func(*threads.Thread, am.Msg) { acks++ })
	_ = b.net.Register("s.ack", func(*threads.Thread, am.Msg) {})

	a.scheds[0].Start("sender", func(th *threads.Thread) {
		ep := a.net.Endpoint(0)
		for i := 0; i < k; i++ {
			ep.RequestShort(th, 2, hPing, [4]uint64{uint64(i)})
		}
		ep.PollUntil(th, func() bool { return acks == k })
	})
	b.scheds[2].Start("receiver", func(th *threads.Thread) {
		b.net.Endpoint(2).PollUntil(th, func() bool { return gotPing == k })
	})

	var wg sync.WaitGroup
	var errA, errB error
	wg.Add(2)
	go func() { defer wg.Done(); errA = a.m.Run() }()
	go func() { defer wg.Done(); errB = b.m.Run() }()
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatalf("Run: shard0=%v shard1=%v", errA, errB)
	}

	if _, err := b.m.ClusterStats(); err == nil {
		t.Fatal("ClusterStats on the worker shard should refuse (parent only)")
	}
	cs, err := a.m.ClusterStats()
	if err != nil {
		t.Fatalf("ClusterStats on parent: %v", err)
	}
	if len(cs.Shards) != 2 || cs.Shards[0].Shard != 0 || cs.Shards[1].Shard != 1 {
		t.Fatalf("shards = %+v, want [0 1]", cs.Shards)
	}
	// The worker's handler ran k times in shard 1's address space; the merged
	// total must carry it, and it must come from the kStats payload (shard 0
	// never saw those handler runs locally).
	if got := cs.Shards[1].Acct.Counters[machine.CntHandlersRun]; got < k {
		t.Fatalf("shard 1 reported %d handler runs over the wire, want >= %d", got, k)
	}
	sum := machine.MergeSnapshots(cs.Shards[0].Acct, cs.Shards[1].Acct)
	if cs.Acct != sum {
		t.Fatalf("merged acct != shard0 + shard1:\n got %v\nwant %v", cs.Acct, sum)
	}
	if local := a.m.LocalStats().Acct.Counters[machine.CntHandlersRun]; cs.Acct.Counters[machine.CntHandlersRun] <= local {
		t.Fatal("merged handler count does not exceed the parent-local count: worker contribution missing")
	}
	// Both shards moved real frames; the merged wall-clock metrics must agree
	// with the per-shard reports and show socket traffic on both sides.
	if cs.Metrics != metrics.Merge(cs.Shards[0].Metrics, cs.Shards[1].Metrics) {
		t.Fatal("merged metrics != merge of shard metrics")
	}
	for i, ss := range cs.Shards {
		if ss.Metrics.Counter(metrics.CtrFramesOut) == 0 || ss.Metrics.Counter(metrics.CtrFramesIn) == 0 {
			t.Fatalf("shard %d reported no socket frames after cross-shard traffic", i)
		}
	}
}
