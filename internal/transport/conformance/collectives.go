package conformance

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/coll"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/threads"
)

// Collective conformance: the team collectives (internal/coll) are part of
// the contract the upper layers rely on, and like the rest of the suite
// they must behave identically on every backend — full participation,
// per-member result agreement across repeated operations (ordering), and
// isolation between sub-teams created by Split. Results only, never
// timings.

func runCollectives(t *testing.T, f ShardedFactory) {
	t.Run("Participation", func(t *testing.T) { collParticipation(t, f) })
	t.Run("Ordering", func(t *testing.T) { collOrdering(t, f) })
	t.Run("SubTeamIsolation", func(t *testing.T) { collSubTeamIsolation(t, f) })
}

// collRig builds a CC++ runtime with the collective engine over each of the
// factory's co-resident machines.
func collRig(f ShardedFactory, n int) ([]*core.Runtime, []*coll.Team) {
	ms := f(machine.SP1997(), n)
	rts := make([]*core.Runtime, len(ms))
	tms := make([]*coll.Team, len(ms))
	for k, m := range ms {
		rts[k] = core.NewRuntime(m)
		tms[k] = coll.For(rts[k]).World()
	}
	return rts, tms
}

// collOnNode installs body as node i's program on every runtime — the SPMD
// model: each runtime executes only its own shard's nodes — handing the body
// that runtime's world team.
func collOnNode(rts []*core.Runtime, tms []*coll.Team, i int, body func(th *threads.Thread, tm *coll.Team)) {
	for k, rt := range rts {
		tm := tms[k]
		rt.OnNode(i, func(th *threads.Thread) { body(th, tm) })
	}
}

// collRun runs every runtime concurrently and joins their errors.
func collRun(rts []*core.Runtime) error {
	if len(rts) == 1 {
		return rts[0].Run()
	}
	errs := make([]error, len(rts))
	var wg sync.WaitGroup
	for k, rt := range rts {
		wg.Add(1)
		go func(k int, rt *core.Runtime) {
			defer wg.Done()
			errs[k] = rt.Run()
		}(k, rt)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// collParticipation: an AllReduce completes only once every member has
// contributed, and every member sees the full combination — including a
// deliberately late member.
func collParticipation(t *testing.T, f ShardedFactory) {
	const n = 4
	rts, tms := collRig(f, n)
	got := make([]float64, n)
	var lateContributed atomic.Bool
	for i := 0; i < n; i++ {
		i := i
		collOnNode(rts, tms, i, func(th *threads.Thread, tm *coll.Team) {
			if i == n-1 {
				// The late member: everyone else is already blocked in the
				// collective when this contribution enters.
				th.Compute(200 * time.Microsecond)
				lateContributed.Store(true)
			}
			v := coll.DecF64(tm.AllReduce(th, coll.EncF64(float64(i+1)), coll.SumF64))
			if i != n-1 && !lateContributed.Load() {
				t.Errorf("member %d finished AllReduce before member %d contributed", i, n-1)
			}
			got[i] = v
		})
	}
	if err := collRun(rts); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range got {
		if v != n*(n+1)/2 {
			t.Errorf("member %d got %v, want %v", i, v, n*(n+1)/2)
		}
	}
}

// collOrdering: a pipelined sequence of different collectives produces the
// per-round results on every member, in order — no cross-operation
// contamination even when members enter successive operations at different
// times.
func collOrdering(t *testing.T, f ShardedFactory) {
	const (
		n      = 3
		rounds = 8
	)
	rts, tms := collRig(f, n)
	results := make([][]float64, n)
	for i := 0; i < n; i++ {
		i := i
		collOnNode(rts, tms, i, func(th *threads.Thread, tm *coll.Team) {
			for r := 0; r < rounds; r++ {
				s := coll.DecF64(tm.AllReduce(th, coll.EncF64(float64(r*10+i)), coll.SumF64))
				b := coll.DecF64(tm.Bcast(th, r%n, coll.EncF64(s+float64(r))))
				results[i] = append(results[i], s, b)
			}
		})
	}
	if err := collRun(rts); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for r := 0; r < rounds; r++ {
		wantSum := float64(r*10*n + 0 + 1 + 2)
		wantB := wantSum + float64(r)
		for i := 0; i < n; i++ {
			if results[i][2*r] != wantSum || results[i][2*r+1] != wantB {
				t.Errorf("member %d round %d: got %v/%v, want %v/%v",
					i, r, results[i][2*r], results[i][2*r+1], wantSum, wantB)
			}
		}
	}
}

// collSubTeamIsolation: collectives on disjoint sub-teams run concurrently
// without observing each other's traffic, and the parent team still works
// afterwards.
func collSubTeamIsolation(t *testing.T, f ShardedFactory) {
	const n = 5 // splits into teams of 3 (even nodes) and 2 (odd nodes)
	rts, tms := collRig(f, n)
	subSums := make([]float64, n)
	worldSums := make([]float64, n)
	for i := 0; i < n; i++ {
		i := i
		collOnNode(rts, tms, i, func(th *threads.Thread, tm *coll.Team) {
			sub := tm.Split(th, i%2, i)
			// Different iteration counts per team: the odd team runs more
			// operations, so any cross-team key collision would surface.
			iters := 3
			if i%2 == 1 {
				iters = 5
			}
			var s float64
			for k := 0; k < iters; k++ {
				s = coll.DecF64(sub.AllReduce(th, coll.EncF64(float64(i+1)), coll.SumF64))
			}
			subSums[i] = s
			worldSums[i] = coll.DecF64(tm.AllReduce(th, coll.EncF64(1), coll.SumF64))
		})
	}
	if err := collRun(rts); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < n; i++ {
		want := 1.0 + 3 + 5 // even nodes: 1+3+5
		if i%2 == 1 {
			want = 2 + 4
		}
		if subSums[i] != want {
			t.Errorf("member %d: subteam sum %v, want %v", i, subSums[i], want)
		}
		if worldSums[i] != n {
			t.Errorf("member %d: world sum %v after split, want %v", i, worldSums[i], float64(n))
		}
	}
}
