// Package conformance is a backend-independent test suite for the transport
// contract as the upper layers actually consume it: it drives the real
// machine/threads/am stack over a backend factory and checks the semantics
// every runtime depends on — per-sender message ordering, bulk payload
// integrity with copy-at-send, handler run-to-completion (per-node mutual
// exclusion), and park/unpark wakeups.
//
// Backends register themselves by calling Run from an ordinary test:
//
//	func TestLive(t *testing.T) {
//		conformance.Run(t, func(cfg machine.Config, n int) *machine.Machine {
//			return machine.NewWithBackend(cfg, n, live.New(n, live.Options{}))
//		})
//	}
//
// The suite asserts results, never timings, so the calibrated simulator and
// the wall-clock live backend must pass identically.
//
// Sharded backends can additionally run the suite across several co-resident
// machines via RunSharded: the factory returns one machine per shard (shard 0
// first), all inside the test process, and the rig mirrors the SPMD launch
// model — identical handler registration on every shard, schedulers and node
// programs only on the shard that owns each node. This is how the netlive
// shared-memory ring path runs the full suite under -race.
package conformance

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/am"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/threads"
	"repro/internal/transport"
)

// Factory builds a fresh machine with n nodes on the backend under test.
type Factory func(cfg machine.Config, n int) *machine.Machine

// ShardedFactory builds one machine per co-resident shard for an n-node
// run — shard 0 (the parent/stats shard) first. A single-address-space
// backend returns exactly one machine.
type ShardedFactory func(cfg machine.Config, n int) []*machine.Machine

// Run executes the full conformance suite against the backend.
func Run(t *testing.T, f Factory) {
	RunSharded(t, func(cfg machine.Config, n int) []*machine.Machine {
		return []*machine.Machine{f(cfg, n)}
	})
}

// RunSharded executes the full conformance suite over a multi-machine
// (sharded, co-resident) configuration.
func RunSharded(t *testing.T, f ShardedFactory) {
	t.Run("ShortOrdering", func(t *testing.T) { shortOrdering(t, f) })
	t.Run("BulkIntegrity", func(t *testing.T) { bulkIntegrity(t, f) })
	t.Run("PayloadRecycling", func(t *testing.T) { payloadRecycling(t, f) })
	t.Run("HandlerRunToCompletion", func(t *testing.T) { runToCompletion(t, f) })
	t.Run("ParkUnpark", func(t *testing.T) { parkUnpark(t, f) })
	t.Run("Timers", func(t *testing.T) { timers(t, f) })
	t.Run("CrossShardTraffic", func(t *testing.T) { crossShardTraffic(t, f) })
	t.Run("Collectives", func(t *testing.T) { runCollectives(t, f) })
	t.Run("StatsMerge", func(t *testing.T) { statsMerge(t, f) })
}

// rig wires an AM net per machine with one scheduler per node, built on the
// machine that owns the node. With a single machine it degenerates to the
// classic one-net rig; with several, it reproduces in-process what the SPMD
// re-exec harness does across processes.
type rig struct {
	ms     []*machine.Machine
	m      *machine.Machine // ms[0]: the parent/stats shard
	nets   []*am.Net        // parallel to ms; identical registration order
	owner  []int            // node -> index into ms
	scheds []*threads.Scheduler
}

// localTo reports whether node i executes in m's address space.
func localTo(m *machine.Machine, i int) bool {
	if topo, ok := m.Backend().(transport.Topology); ok {
		return topo.IsLocal(i)
	}
	return true
}

func newRig(ms []*machine.Machine) *rig {
	r := &rig{ms: ms, m: ms[0]}
	n := ms[0].NumNodes()
	r.owner = make([]int, n)
	r.scheds = make([]*threads.Scheduler, n)
	for k, m := range ms {
		net := am.NewNet(m)
		r.nets = append(r.nets, net)
		for i := 0; i < n; i++ {
			if localTo(m, i) && r.scheds[i] == nil {
				s := threads.NewScheduler(m.Node(i))
				net.Endpoint(i).Attach(s)
				r.scheds[i] = s
				r.owner[i] = k
			}
		}
	}
	for i, s := range r.scheds {
		if s == nil {
			panic(fmt.Sprintf("conformance: no machine owns node %d", i))
		}
	}
	return r
}

// register installs a handler on every machine's net, in the same order —
// the identical-registration requirement of the SPMD launch model. The one
// shared closure is only ever invoked on the machine owning the destination
// node, so case-local result variables stay single-writer.
func (r *rig) register(name string, h am.Handler) am.HandlerID {
	var id am.HandlerID
	for _, net := range r.nets {
		id = net.Register(name, h)
	}
	return id
}

// ep returns node i's endpoint on its owning machine.
func (r *rig) ep(i int) *am.Endpoint { return r.nets[r.owner[i]].Endpoint(i) }

// run executes every machine concurrently and joins their errors.
func (r *rig) run() error { return runAll(r.ms) }

func runAll(ms []*machine.Machine) error {
	if len(ms) == 1 {
		return ms[0].Run()
	}
	errs := make([]error, len(ms))
	var wg sync.WaitGroup
	for k, m := range ms {
		wg.Add(1)
		go func(k int, m *machine.Machine) {
			defer wg.Done()
			errs[k] = m.Run()
		}(k, m)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// shortOrdering: short messages from one sender arrive and are handled in
// send order.
func shortOrdering(t *testing.T, f ShardedFactory) {
	const k = 200
	r := newRig(f(machine.SP1997(), 2))
	var got []uint64
	h := r.register("conf.seq", func(_ *threads.Thread, m am.Msg) {
		got = append(got, m.A[0])
	})
	r.scheds[0].Start("sender", func(th *threads.Thread) {
		for i := 0; i < k; i++ {
			r.ep(0).RequestShort(th, 1, h, [4]uint64{uint64(i)})
		}
	})
	r.scheds[1].Start("receiver", func(th *threads.Thread) {
		r.ep(1).PollUntil(th, func() bool { return len(got) == k })
	})
	if err := r.run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != k {
		t.Fatalf("received %d messages, want %d", len(got), k)
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("message %d carried seq %d: delivery reordered (%v...)", i, v, got[:i+1])
		}
	}
}

// bulkIntegrity: bulk payloads arrive intact, are copied at send time (the
// sender may immediately reuse its buffer), and a handler that copies the
// payload out keeps a stable snapshot after the pooled buffer recycles (the
// no-retain contract: the raw Payload slice is valid only while the handler
// runs; retention means copying).
func bulkIntegrity(t *testing.T, f ShardedFactory) {
	const (
		k     = 40
		bytes = 1 << 10
	)
	pattern := func(i, j int) byte { return byte(i*31 + j*7) }
	r := newRig(f(machine.SP1997(), 2))
	var (
		received int
		retained []byte // copy of message 0's payload, checked at the end
		bad      string
	)
	h := r.register("conf.bulk", func(_ *threads.Thread, m am.Msg) {
		i := int(m.A[0])
		if len(m.Payload) != bytes {
			bad = fmt.Sprintf("message %d: payload %dB, want %dB", i, len(m.Payload), bytes)
		}
		for j, b := range m.Payload {
			if b != pattern(i, j) {
				bad = fmt.Sprintf("message %d byte %d: got %#x want %#x", i, j, b, pattern(i, j))
				break
			}
		}
		if i == 0 {
			retained = append([]byte(nil), m.Payload...)
		}
		received++
	})
	r.scheds[0].Start("sender", func(th *threads.Thread) {
		buf := make([]byte, bytes)
		for i := 0; i < k; i++ {
			for j := range buf {
				buf[j] = pattern(i, j)
			}
			r.ep(0).RequestBulk(th, 1, h, buf, [4]uint64{uint64(i)})
			// Clobber the buffer immediately: the layer promised value
			// semantics at send time.
			for j := range buf {
				buf[j] = 0xFF
			}
		}
	})
	r.scheds[1].Start("receiver", func(th *threads.Thread) {
		r.ep(1).PollUntil(th, func() bool { return received == k })
	})
	if err := r.run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if bad != "" {
		t.Fatal(bad)
	}
	if received != k {
		t.Fatalf("received %d bulk messages, want %d", received, k)
	}
	for j, b := range retained {
		if b != pattern(0, j) {
			t.Fatalf("retained payload copy byte %d mutated to %#x", j, b)
		}
	}
}

// payloadRecycling: the aliasing-safety contract of the pooled wire path. A
// recycled payload buffer must never be observed mutated by a later send
// while a handler is still inside its run-to-completion window: two sender
// nodes blast one receiver with bulk messages (maximum buffer churn — every
// send acquires whatever buffer the pool hands back), and the handler reads
// its entire payload twice with a scheduling point in between. If a buffer
// were recycled while still being read, the second pass (or, under -race,
// the race detector) would see the next message's bytes. A payload copied
// out by an early handler is re-verified at the end, long after its buffer
// has been recycled many times over.
func payloadRecycling(t *testing.T, f ShardedFactory) {
	const (
		senders = 2
		k       = 120
		bytes   = 1 << 10
	)
	pattern := func(s, i, j int) byte { return byte(s*131 + i*31 + j*7) }
	r := newRig(f(machine.SP1997(), senders+1))
	var (
		received int
		snapshot []byte // copy taken by handler (sender 1, message 0)
		bad      string
	)
	h := r.register("conf.recycle", func(_ *threads.Thread, m am.Msg) {
		s, i := int(m.A[0]), int(m.A[1])
		if len(m.Payload) != bytes {
			bad = fmt.Sprintf("s%d msg %d: payload %dB, want %dB", s, i, len(m.Payload), bytes)
			received++
			return
		}
		// First pass: contents must match this message's pattern.
		for j, b := range m.Payload {
			if b != pattern(s, i, j) {
				bad = fmt.Sprintf("s%d msg %d byte %d: got %#x want %#x (buffer aliased by a later send?)",
					s, i, j, b, pattern(s, i, j))
				break
			}
		}
		// Widen the window, then re-read: the buffer must still be ours for
		// the whole run-to-completion of this handler.
		runtime.Gosched()
		for j, b := range m.Payload {
			if b != pattern(s, i, j) {
				bad = fmt.Sprintf("s%d msg %d byte %d mutated mid-handler to %#x (recycled too early)",
					s, i, j, b)
				break
			}
		}
		if s == 1 && i == 0 {
			snapshot = append([]byte(nil), m.Payload...)
		}
		received++
	})
	for s := 1; s <= senders; s++ {
		s := s
		r.scheds[s].Start("sender", func(th *threads.Thread) {
			buf := make([]byte, bytes)
			for i := 0; i < k; i++ {
				for j := range buf {
					buf[j] = pattern(s, i, j)
				}
				r.ep(s).RequestBulk(th, 0, h, buf, [4]uint64{uint64(s), uint64(i)})
			}
		})
	}
	r.scheds[0].Start("receiver", func(th *threads.Thread) {
		r.ep(0).PollUntil(th, func() bool { return received == senders*k })
	})
	if err := r.run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if bad != "" {
		t.Fatal(bad)
	}
	if received != senders*k {
		t.Fatalf("received %d bulk messages, want %d", received, senders*k)
	}
	for j, b := range snapshot {
		if b != pattern(1, 0, j) {
			t.Fatalf("copied-out payload byte %d mutated to %#x after recycling", j, b)
		}
	}
}

// runToCompletion: a handler runs to completion in its node's execution
// context — no other handler (or delivery callback) of the same node
// interleaves with it, even with multiple remote senders blasting the node
// concurrently on a real-concurrency backend.
func runToCompletion(t *testing.T, f ShardedFactory) {
	const (
		senders = 3
		k       = 150
	)
	r := newRig(f(machine.SP1997(), senders+1))
	var (
		counter   int
		inHandler bool
		reentered bool
	)
	h := r.register("conf.rtc", func(_ *threads.Thread, _ am.Msg) {
		if inHandler {
			reentered = true
		}
		inHandler = true
		// A lost update here would reveal another context interleaving
		// mid-handler; Gosched widens the window on the live backend.
		v := counter
		runtime.Gosched()
		counter = v + 1
		inHandler = false
	})
	for s := 1; s <= senders; s++ {
		s := s
		r.scheds[s].Start("sender", func(th *threads.Thread) {
			for i := 0; i < k; i++ {
				r.ep(s).RequestShort(th, 0, h, [4]uint64{})
			}
		})
	}
	r.scheds[0].Start("receiver", func(th *threads.Thread) {
		r.ep(0).PollUntil(th, func() bool { return counter == senders*k })
	})
	if err := r.run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if reentered {
		t.Fatal("handler re-entered before running to completion")
	}
	if counter != senders*k {
		t.Fatalf("counter %d, want %d (lost updates => handlers interleaved)", counter, senders*k)
	}
}

// timers: After callbacks run in the node's execution context and can wake
// blocked threads; a timer still pending when the run completes is cancelled
// cleanly rather than leaking or landing on a closed queue (the live
// backend's After used to drop both on the floor — this is the regression
// case for that fix).
func timers(t *testing.T, f ShardedFactory) {
	const k = 3
	ms := f(machine.SP1997(), 1)
	m := ms[0] // node 0 always lives on shard 0
	s := threads.NewScheduler(m.Node(0))
	var (
		fired  int
		waiter *threads.Thread
	)
	for i := 0; i < k; i++ {
		m.AfterNode(0, time.Duration(i+1)*time.Millisecond, func() {
			fired++
			if waiter != nil && waiter.State() == threads.Blocked {
				s.MakeReady(waiter)
			}
		})
	}
	// Pending at completion: must be cancelled at shutdown, not leak and not
	// error. (On the simulator virtual time jumps to it and it simply runs.)
	m.AfterNode(0, time.Hour, func() {})
	s.Start("waiter", func(th *threads.Thread) {
		waiter = th
		for fired < k {
			th.Block()
		}
	})
	if err := runAll(ms); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired < k {
		t.Fatalf("only %d of %d timers fired", fired, k)
	}
	if le, ok := m.Backend().(interface{ Err() error }); ok {
		if err := le.Err(); err != nil {
			t.Fatalf("backend lifecycle error after clean run: %v", err)
		}
	}
}

// crossShardTraffic: ordering plus bulk integrity on the node pair that is
// most remote in the backend's topology — on a sharded backend (netlive)
// node 0 and node n-1 live in different address spaces, so this is the
// serialized path; single-address-space backends run the identical pattern
// in memory, which is exactly the conformance claim: the application cannot
// tell. Shorts and bulks interleave from one sender; each kind must arrive
// in send order with intact payloads (cross-kind order is not part of the
// contract — short and bulk messages have different modelled wire times).
func crossShardTraffic(t *testing.T, f ShardedFactory) {
	const (
		nodes = 4
		k     = 60
		bytes = 2 << 10
	)
	pattern := func(i, j int) byte { return byte(i*37 + j*11) }
	r := newRig(f(machine.SP1997(), nodes))
	dst := nodes - 1
	if topo, ok := r.m.Backend().(transport.Topology); ok && topo.IsLocal(dst) && topo.NumShards() > 1 {
		t.Fatalf("topology says node %d is local to shard %d; pick a remote pair", dst, topo.Shard())
	}
	var (
		shorts, bulks []uint64
		bad           string
	)
	hShort := r.register("conf.xs.short", func(_ *threads.Thread, m am.Msg) {
		shorts = append(shorts, m.A[0])
	})
	hBulk := r.register("conf.xs.bulk", func(_ *threads.Thread, m am.Msg) {
		i := int(m.A[0])
		if len(m.Payload) != bytes {
			bad = fmt.Sprintf("bulk %d: %dB payload, want %d", i, len(m.Payload), bytes)
		}
		for j, by := range m.Payload {
			if by != pattern(i, j) {
				bad = fmt.Sprintf("bulk %d byte %d: %#x want %#x", i, j, by, pattern(i, j))
				break
			}
		}
		bulks = append(bulks, m.A[0])
	})
	r.scheds[0].Start("sender", func(th *threads.Thread) {
		ep := r.ep(0)
		buf := make([]byte, bytes)
		for i := 0; i < k; i++ {
			ep.RequestShort(th, dst, hShort, [4]uint64{uint64(i)})
			for j := range buf {
				buf[j] = pattern(i, j)
			}
			ep.RequestBulk(th, dst, hBulk, buf, [4]uint64{uint64(i)})
			for j := range buf {
				buf[j] = 0xAA // copy-at-send: clobbering must not be visible
			}
		}
	})
	r.scheds[dst].Start("receiver", func(th *threads.Thread) {
		r.ep(dst).PollUntil(th, func() bool { return len(shorts)+len(bulks) == 2*k })
	})
	if err := r.run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if bad != "" {
		t.Fatal(bad)
	}
	if len(shorts) != k || len(bulks) != k {
		t.Fatalf("received %d shorts, %d bulks, want %d each", len(shorts), len(bulks), k)
	}
	for i := 0; i < k; i++ {
		if shorts[i] != uint64(i) {
			t.Fatalf("short stream reordered at %d: %v", i, shorts[:i+1])
		}
		if bulks[i] != uint64(i) {
			t.Fatalf("bulk stream reordered at %d: %v", i, bulks[:i+1])
		}
	}
}

// statsMerge: the machine-wide stats report is the exact sum of its parts.
// After real traffic, ClusterStats' merged accounting must equal both the
// merge of every shard's reported accounting and the merge of every node's
// own accounting, and (on backends with a wall-clock metrics plane) the
// merged metrics must equal the merge of the per-shard metrics snapshots.
// This is the parity claim behind every machine-wide counter mpmdbench
// reports: merged == sum of the parts, nothing fabricated, nothing dropped.
func statsMerge(t *testing.T, f ShardedFactory) {
	const (
		nodes = 4
		k     = 80
	)
	r := newRig(f(machine.SP1997(), nodes))
	var got int
	h := r.register("conf.stats", func(_ *threads.Thread, _ am.Msg) { got++ })
	r.scheds[0].Start("sender", func(th *threads.Thread) {
		for i := 0; i < k; i++ {
			r.ep(0).RequestShort(th, nodes-1, h, [4]uint64{uint64(i)})
		}
	})
	r.scheds[nodes-1].Start("receiver", func(th *threads.Thread) {
		r.ep(nodes-1).PollUntil(th, func() bool { return got == k })
	})
	if err := r.run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	cs, err := r.m.ClusterStats()
	if err != nil {
		t.Fatalf("ClusterStats: %v", err)
	}
	// Merged accounting == sum over reported shards.
	shardAccts := make([]machine.Snapshot, 0, len(cs.Shards))
	shardMets := make([]metrics.Snapshot, 0, len(cs.Shards))
	seen := 0
	for _, ss := range cs.Shards {
		shardAccts = append(shardAccts, ss.Acct)
		shardMets = append(shardMets, ss.Metrics)
		seen += len(ss.Nodes)
	}
	if seen != nodes {
		t.Fatalf("shards cover %d nodes, want %d", seen, nodes)
	}
	if want := machine.MergeSnapshots(shardAccts...); cs.Acct != want {
		t.Fatalf("merged acct != sum of shard accts:\n got %v\nwant %v", cs.Acct, want)
	}
	// Merged accounting == sum over the nodes themselves. Every shard is
	// co-resident in this test process, so each node's truth is directly
	// observable on the machine that owns it.
	nodeAccts := make([]machine.Snapshot, 0, nodes)
	for i := 0; i < nodes; i++ {
		nodeAccts = append(nodeAccts, r.ms[r.owner[i]].Nodes()[i].Acct.Snapshot())
	}
	if want := machine.MergeSnapshots(nodeAccts...); cs.Acct != want {
		t.Fatalf("merged acct != sum of per-node accts:\n got %v\nwant %v", cs.Acct, want)
	}
	if n := cs.Acct.Counters[machine.CntMsgShort]; n < k {
		t.Fatalf("merged am.msg.short = %d, want >= %d", n, k)
	}
	if n := cs.Acct.Counters[machine.CntHandlersRun]; n < k {
		t.Fatalf("merged am.handlers = %d, want >= %d", n, k)
	}
	// Wall-clock metrics: present on live backends, absent on the simulator;
	// when present the merged snapshot must equal the merge of the parts.
	if _, ok := r.m.Metrics(); ok {
		if want := metrics.Merge(shardMets...); cs.Metrics != want {
			t.Fatalf("merged metrics != merge of shard metrics:\n got %+v\nwant %+v", cs.Metrics, want)
		}
		if n := cs.Metrics.Counter(metrics.CtrNotifies); n == 0 {
			t.Fatal("live backend reported zero notify events after real traffic")
		}
	} else if cs.Metrics != (metrics.Snapshot{}) {
		t.Fatal("backend without a metrics plane reported non-zero metrics")
	}
}

// parkUnpark: a thread parked on message arrival wakes when the message
// lands; a completion that races ahead of the wait is not lost (permit
// semantics up the whole threads/am stack).
func parkUnpark(t *testing.T, f ShardedFactory) {
	r := newRig(f(machine.SP1997(), 2))
	ep1 := r.ep(1)
	var (
		early threads.SyncVar // written by a message that lands before the read
		late  threads.SyncVar // written by a message the reader must park for
		order []string
	)
	hEarly := r.register("conf.early", func(th *threads.Thread, _ am.Msg) {
		order = append(order, "early")
		early.Write(th, 1)
	})
	hLate := r.register("conf.late", func(th *threads.Thread, _ am.Msg) {
		order = append(order, "late")
		late.Write(th, 2)
	})
	var ackSeen bool // node 0 state, set by node 0's handler
	hAck := r.register("conf.ack", func(_ *threads.Thread, _ am.Msg) {
		ackSeen = true
	})
	r.scheds[0].Start("sender", func(th *threads.Thread) {
		ep0 := r.ep(0)
		ep0.RequestShort(th, 1, hEarly, [4]uint64{})
		// Wait for node 1's ack (its main thread is provably past the
		// non-parking read) before sending the message it must park for.
		ep0.PollUntil(th, func() bool { return ackSeen })
		ep0.RequestShort(th, 1, hLate, [4]uint64{})
	})
	var got1, got2 int
	r.scheds[1].Start("main", func(th *threads.Thread) {
		// Service the network until "early" has landed, so the first Read
		// exercises the permit path (value already written).
		ep1.PollUntil(th, func() bool { return early.IsSet() })
		got1 = early.Read(th).(int)
		ep1.RequestShort(th, 0, hAck, [4]uint64{})
		// This Read parks: the poller below services the arrival and the
		// handler's Write unparks us.
		got2 = late.Read(th).(int)
		ep1.Stop()
	})
	r.scheds[1].Start("poller", func(th *threads.Thread) {
		for {
			ep1.PollAll(th)
			if ep1.Stopped() {
				ep1.PollAll(th)
				return
			}
			ep1.WaitMessage(th)
		}
	})
	if err := r.run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got1 != 1 || got2 != 2 {
		t.Fatalf("read %d,%d want 1,2", got1, got2)
	}
	if len(order) != 2 || order[0] != "early" || order[1] != "late" {
		t.Fatalf("event order %v, want [early late]", order)
	}
}
