package conformance

import (
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/transport/live"
	"repro/internal/transport/netlive"
)

// TestSimnet runs the conformance suite on the calibrated discrete-event
// backend (the default machine.New path).
func TestSimnet(t *testing.T) {
	Run(t, func(cfg machine.Config, n int) *machine.Machine {
		return machine.New(cfg, n)
	})
}

// TestLive runs the identical suite on real goroutines with wall-clock
// timing. A short watchdog turns a lost-wakeup bug into a fast failure
// instead of a hung test.
func TestLive(t *testing.T) {
	Run(t, func(cfg machine.Config, n int) *machine.Machine {
		return machine.NewWithBackend(cfg, n, live.New(n, live.Options{Watchdog: 20 * time.Second}))
	})
}

// TestLivePinned re-runs the suite with procs pinned to OS threads, the
// configuration closest to one-kernel-thread-per-node.
func TestLivePinned(t *testing.T) {
	if testing.Short() {
		t.Skip("pinned variant skipped in -short")
	}
	Run(t, func(cfg machine.Config, n int) *machine.Machine {
		return machine.NewWithBackend(cfg, n,
			live.New(n, live.Options{PinOSThread: true, Watchdog: 20 * time.Second}))
	})
}

// TestNetLoopback runs the suite on the sharded multi-process backend in its
// single-shard (in-process loopback) configuration: the degenerate case the
// sharding was designed around, which must be indistinguishable from live.
// The true multi-process path is covered by netlive's in-process two-shard
// test and the mpmd re-exec smoke.
func TestNetLoopback(t *testing.T) {
	Run(t, func(cfg machine.Config, n int) *machine.Machine {
		be, err := netlive.New(n, netlive.Options{
			Live: live.Options{Watchdog: 20 * time.Second},
		})
		if err != nil {
			t.Fatalf("netlive.New: %v", err)
		}
		return machine.NewWithBackend(cfg, n, be)
	})
}

// TestNetShmSharded runs the full suite across two co-resident netlive
// shards wired by the shared-memory ring fast path: every cross-shard frame
// in the suite rides an mmap'd SPSC ring instead of a socket. Shard 0 is
// built first (it creates the rings and the rendezvous sockets); the worker
// shard attaches. Single-node cases degenerate to one shard, where shm
// disables itself.
func TestNetShmSharded(t *testing.T) {
	RunSharded(t, func(cfg machine.Config, n int) []*machine.Machine {
		nps := (n + 1) / 2
		shards := (n + nps - 1) / nps
		dir := t.TempDir()
		ms := make([]*machine.Machine, shards)
		for s := 0; s < shards; s++ {
			sh := s
			be, err := netlive.New(n, netlive.Options{
				NodesPerShard: nps,
				Shard:         &sh,
				Dir:           dir,
				NoSpawn:       true,
				Live:          live.Options{Watchdog: 20 * time.Second},
			})
			if err != nil {
				t.Fatalf("netlive.New shard %d: %v", sh, err)
			}
			if shards > 1 && !be.ShmActive() {
				t.Fatalf("shard %d: shm rings inactive in sharded configuration", sh)
			}
			ms[s] = machine.NewWithBackend(cfg, n, be)
		}
		return ms
	})
}
