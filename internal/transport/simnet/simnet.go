// Package simnet adapts the deterministic discrete-event engine
// (internal/sim) to the transport.Backend contract. It is the reference
// backend: all of the paper's calibrated numbers are produced on it, and its
// behavior is identical to the pre-seam code — every method is a direct
// forward to the engine, with messages delivered as single events after the
// modelled wire latency.
//
// The per-node serialization contract holds trivially: the engine runs
// exactly one goroutine (one process or one event callback) at any instant,
// machine-wide.
package simnet

import (
	"time"

	"repro/internal/sim"
	"repro/internal/transport"
)

// Backend is the simulator-backed transport. Construct with New or Wrap.
type Backend struct {
	eng *sim.Engine
	n   int
}

// New builds a simnet backend for n nodes over a fresh engine.
func New(n int) *Backend { return Wrap(sim.New(), n) }

// Wrap builds a simnet backend for n nodes over an existing engine (tests
// that pre-schedule events use this).
func Wrap(eng *sim.Engine, n int) *Backend { return &Backend{eng: eng, n: n} }

// Engine exposes the underlying discrete-event engine for simulator-specific
// access (scheduling raw events, reading event counts).
func (b *Backend) Engine() *sim.Engine { return b.eng }

// Name implements transport.Backend.
func (b *Backend) Name() string { return "sim" }

// NumNodes implements transport.Backend.
func (b *Backend) NumNodes() int { return b.n }

// Now implements transport.Backend: the current virtual time.
func (b *Backend) Now() time.Duration { return b.eng.Now() }

// Go implements transport.Backend. Node affinity needs no enforcement here —
// the engine's global interleaving already serializes everything.
func (b *Backend) Go(node int, name string, fn func(transport.Proc)) transport.Proc {
	return b.eng.Go(name, func(p *sim.Proc) { fn(p) })
}

// Deliver implements transport.Backend: one event at now+modelLatency that
// enqueues and notifies, exactly as the pre-seam machine layer did.
//
//mpmd:coldpath the event closure is discrete-event engine machinery; live backends deliver without it
func (b *Backend) Deliver(dst int, modelLatency time.Duration, enqueue, notify func()) {
	b.eng.After(modelLatency, func() {
		enqueue()
		notify()
	})
}

// After implements transport.Backend.
func (b *Backend) After(node int, d time.Duration, fn func()) {
	b.eng.After(d, fn)
}

// Run implements transport.Backend: drive the event loop to completion,
// reporting *sim.DeadlockError if parked processes remain.
func (b *Backend) Run() error { return b.eng.Run() }
