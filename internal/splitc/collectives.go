package splitc

import (
	"math"

	"repro/internal/am"
	"repro/internal/coll"
	"repro/internal/machine"
	"repro/internal/threads"
)

// This file provides the Split-C library layer above the raw global-access
// primitives: spread arrays (the language's `A[i]::` distributed arrays) and
// the usual collectives (all_bcast, all_reduce) built from the same AM
// traffic a Split-C library would generate. The combining state machines
// live in internal/coll (the central-coordinator plans); this file supplies
// the wire format and charges, which the parity test pins to the paper's
// measured behavior. The log-depth tree collectives of the MPMD side live
// in internal/coll too — see coll.Team.

// SpreadF64 is a distributed array of doubles in the cyclic layout Split-C
// gives `double A[n]::` — element i lives on processor i%PROCS. The
// structure is visible, as in Split-C: Index returns a (processor, address)
// global pointer usable with every access primitive.
//
// For the typed, layout-flexible, backend-agnostic generalization usable
// from CC++ programs, see mpmd.Dist.
type SpreadF64 struct {
	procs int
	parts [][]float64
}

// NewSpreadF64 allocates a spread array of n doubles over procs processors:
// processor pc owns elements pc, pc+procs, pc+2*procs, … — that is,
// ceil((n-pc)/procs) of them.
func NewSpreadF64(procs, n int) *SpreadF64 {
	s := &SpreadF64{procs: procs, parts: make([][]float64, procs)}
	for pc := 0; pc < procs; pc++ {
		sz := 0
		if n > pc {
			sz = (n - pc + procs - 1) / procs
		}
		s.parts[pc] = make([]float64, sz)
	}
	return s
}

// Len returns the global element count.
func (s *SpreadF64) Len() int {
	n := 0
	for _, p := range s.parts {
		n += len(p)
	}
	return n
}

// Owner returns the processor owning global index i (cyclic layout).
func (s *SpreadF64) Owner(i int) int { return i % s.procs }

// Index returns the global pointer to element i, as Split-C's A[i]:: does.
func (s *SpreadF64) Index(i int) GPF {
	return GPF{PC: i % s.procs, P: &s.parts[i%s.procs][i/s.procs]}
}

// LocalSlice returns the processor-local part (Split-C's &A[MYPROC]::).
func (s *SpreadF64) LocalSlice(pc int) []float64 { return s.parts[pc] }

// LocalVec returns the local part as a global vector for bulk operations.
func (s *SpreadF64) LocalVec(pc int) GVF { return GVF{PC: pc, S: s.parts[pc]} }

// --- collectives -------------------------------------------------------------

// collective state per World, allocated lazily on first use. Node 0
// coordinates; values travel in the existing short-AM format. The
// arrival-counting fold is coll.CentralReduce — the linear central plan —
// so the message pattern and modelled costs are exactly the measured ones.
type collectives struct {
	hContrib am.HandlerID
	hResult  am.HandlerID
	red      *coll.CentralReduce
	gen      int
	results  []float64
	haveGen  []int
}

// ReduceOp selects the all_reduce combiner (shared with internal/coll).
type ReduceOp = coll.ReduceOp

// The reduction operators Split-C's library provides for doubles.
const (
	OpSum = coll.OpSum
	OpMax = coll.OpMax
	OpMin = coll.OpMin
)

func (w *World) initCollectives() {
	if w.coll != nil {
		return
	}
	c := &collectives{
		red:     coll.NewCentralReduce(w.m.NumNodes()),
		results: make([]float64, w.m.NumNodes()),
		haveGen: make([]int, w.m.NumNodes()),
	}
	w.coll = c
	c.hResult = w.net.Register("sc.coll.result", func(t *threads.Thread, m am.Msg) {
		c.results[m.Dst] = math.Float64frombits(m.A[0])
		c.haveGen[m.Dst] = int(m.A[1])
	})
	// Contribution messages carry the operator as a word (A[1]) — the enum
	// is the wire form, no object reference rides along.
	c.hContrib = w.net.Register("sc.coll.contrib", func(t *threads.Thread, m am.Msg) {
		v := math.Float64frombits(m.A[0])
		op := ReduceOp(m.A[1])
		if acc, done := c.red.Absorb(op, v); done {
			c.gen++
			for q := 0; q < w.m.NumNodes(); q++ {
				w.ep(t).RequestShort(t, q, c.hResult,
					[4]uint64{math.Float64bits(acc), uint64(c.gen)})
			}
		}
	})
}

// AllReduce combines v across all processors with op and returns the result
// on every processor (Split-C's all_reduce_to_all). It synchronizes like a
// barrier: all processors must call it.
func (p *Proc) AllReduce(v float64, op ReduceOp) float64 {
	w := p.w
	c := w.coll
	if c == nil {
		panic("splitc: collectives not initialized (World.New does this; did you build World by hand?)")
	}
	target := c.haveGen[p.me] + 1
	p.T.Charge(machine.CatRuntime, issueCost)
	p.ep.RequestShort(p.T, 0, c.hContrib, [4]uint64{math.Float64bits(v), uint64(op)})
	p.ep.PollUntil(p.T, func() bool { return c.haveGen[p.me] >= target })
	return c.results[p.me]
}

// AllBcast distributes v from the root processor to every processor
// (Split-C's all_bcast): implemented as a reduction in which only the root
// contributes its value (the combiner ignores non-root contributions by
// summing zeros).
func (p *Proc) AllBcast(root int, v float64) float64 {
	contrib := 0.0
	if p.me == root {
		contrib = v
	}
	return p.AllReduce(contrib, OpSum)
}
