// Package splitc implements the Split-C runtime of the paper's SPMD baseline:
// a global address space over Active Messages with synchronous reads/writes,
// split-phase gets/puts, one-way stores, bulk transfers, and barriers.
//
// The SPMD model is preserved: Run launches the same program function on
// every node; each node is single-threaded (the paper: "Split-C takes an even
// more radical approach — offering only a single computation thread — and
// relies on split-phase remote accesses to tolerate latencies"). Message
// reception happens by polling: on every send, and whenever the program
// blocks waiting for a reply, a sync counter, or a barrier.
//
// Global pointers expose their structure (processor number + address), as in
// Split-C; pointer arithmetic on the processor part is the application's
// business. Since all simulated nodes share one OS process, the "address" is
// a real Go pointer that only the owning node's handlers dereference.
package splitc

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/am"
	"repro/internal/coll"
	"repro/internal/machine"
	"repro/internal/threads"
	"repro/internal/transport"
)

// Fixed runtime-library costs per global-access operation, calibrated so the
// Split-C "Runtime" column of Table 4 lands at its measured 4–6 µs.
const (
	issueCost    = 2 * time.Microsecond // building and issuing a request
	completeCost = 2 * time.Microsecond // landing a reply / completion flagging
)

// GPF is a Split-C global pointer to a double: a (processor, address) pair.
type GPF struct {
	PC int
	P  *float64
}

// GVF is a global pointer to a vector of doubles (for bulk operations).
type GVF struct {
	PC int
	S  []float64
}

// OnProc reports whether the pointer is local to processor pc.
func (g GPF) OnProc(pc int) bool { return g.PC == pc }

// OnProc reports whether the vector is local to processor pc.
func (g GVF) OnProc(pc int) bool { return g.PC == pc }

// World is one SPMD program instance over a machine.
type World struct {
	m      *machine.Machine
	net    *am.Net
	scheds []*threads.Scheduler
	procs  []*Proc

	hReadReq, hReadReply     am.HandlerID
	hWriteReq, hAck          am.HandlerID
	hStore, hAtomicAdd       am.HandlerID
	hBulkReadReq, hBulkReply am.HandlerID
	hBulkWriteReq            am.HandlerID
	hBulkStore               am.HandlerID
	hBarrierArrive, hRelease am.HandlerID

	// Central barrier state, owned by node 0 (the linear plan from
	// internal/coll; the wire traffic around it is unchanged).
	barCtr *coll.CentralCounter

	// coll is the collective-operation state (collectives.go).
	coll *collectives

	// reqs is the world's in-flight request table: messages name their
	// request record by table ID in the word arguments instead of carrying a
	// Go pointer, so the wire format holds nothing but words and payload
	// bytes. The records themselves still hold raw addresses into the
	// world's (single) address space — Split-C's global pointers expose real
	// addresses, and every simulated node of a World shares one process by
	// the language's own model.
	reqs reqTable
}

// scReq is one in-flight global-access request. Which fields are meaningful
// depends on the operation; see the handler word layouts below.
type scReq struct {
	ptr  *float64  // scalar target (owned by the destination)
	dst  *float64  // scalar landing slot at the initiator
	vsrc []float64 // bulk-read source (owned by the destination)
	vdst []float64 // bulk landing vector (initiator for reads, owner for writes/stores)
	from *Proc     // initiator (completion bookkeeping)
	done *bool     // nil for split-phase operations
	n    int       // element count for bulk stores
}

// reqTable hands out wire IDs for scReq records. Senders put, handlers get
// (a copy) and release; the mutex makes it safe for any node's context to
// touch it on the live backend. The free list keeps the table from growing
// with traffic.
type reqTable struct {
	mu    sync.Mutex
	slots []scReq
	free  []uint32
}

// put stores r and returns its wire ID.
func (rt *reqTable) put(r scReq) uint64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if ln := len(rt.free); ln > 0 {
		id := rt.free[ln-1]
		rt.free = rt.free[:ln-1]
		rt.slots[id] = r
		return uint64(id)
	}
	rt.slots = append(rt.slots, r)
	return uint64(len(rt.slots) - 1)
}

// get returns a copy of the record named by id.
func (rt *reqTable) get(id uint64) scReq {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.slots[id]
}

// release frees the slot (the final consumer of the request calls it).
func (rt *reqTable) release(id uint64) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.slots[id] = scReq{}
	rt.free = append(rt.free, uint32(id))
}

// take is get followed by release.
func (rt *reqTable) take(id uint64) scReq {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	r := rt.slots[id]
	rt.slots[id] = scReq{}
	rt.free = append(rt.free, uint32(id))
	return r
}

// Proc is the per-node program context handed to the SPMD function.
type Proc struct {
	w  *World
	me int

	// T is the node's single computation thread, valid while the program
	// function runs.
	T  *threads.Thread
	ep *am.Endpoint

	outstanding int // split-phase gets+puts not yet completed
	storesRecvd int // one-way store values landed at this node
	releasedGen int // last barrier generation this node was released from
}

// New builds a Split-C world over machine m. Split-C's global pointers are
// raw addresses by the language's own model ("all simulated nodes share one
// OS process"), so a World cannot span the sharded netlive backend — New
// rejects multi-shard machines up front rather than letting a request-table
// ID resolve against the wrong process's memory.
func New(m *machine.Machine) *World {
	if topo, ok := m.Backend().(transport.Topology); ok && topo.NumShards() > 1 {
		panic(fmt.Sprintf("splitc: machine spans %d address spaces; Split-C worlds require a single-process backend (sim, live, or single-shard net)",
			topo.NumShards()))
	}
	w := &World{m: m, net: am.NewNet(m), barCtr: coll.NewCentralCounter(m.NumNodes())}
	for i := 0; i < m.NumNodes(); i++ {
		s := threads.NewScheduler(m.Node(i))
		w.scheds = append(w.scheds, s)
		ep := w.net.Endpoint(i)
		ep.Attach(s)
		w.procs = append(w.procs, &Proc{w: w, me: i, ep: ep})
	}
	w.registerHandlers()
	w.initCollectives()
	return w
}

// Machine returns the underlying machine.
func (w *World) Machine() *machine.Machine { return w.m }

// Proc returns the per-node context for node i (useful in tests).
func (w *World) Proc(i int) *Proc { return w.procs[i] }

// Run starts prog on every node and drives the simulation to completion.
func (w *World) Run(prog func(p *Proc)) error {
	for i := range w.procs {
		p := w.procs[i]
		w.scheds[i].Start("main", func(t *threads.Thread) {
			p.T = t
			prog(p)
		})
	}
	return w.m.Run()
}

// MyPC returns this node's processor number (Split-C's MYPROC).
func (p *Proc) MyPC() int { return p.me }

// Procs returns the number of processors (Split-C's PROCS).
func (p *Proc) Procs() int { return p.w.m.NumNodes() }

// --- message handlers --------------------------------------------------------
//
// Word layouts (requests carry their reqTable ID; the final consumer of a
// request releases the slot):
//
//	sc.read.req:       A = [id]            reply: sc.read.reply A = [bits, id]
//	sc.write.req:      A = [bits, id]      ack:   sc.ack        A = [id]
//	sc.atomic.add:     A = [bits, id]      ack:   sc.ack        A = [id]
//	sc.store:          A = [bits, id]      (one-way; destination releases)
//	sc.bulk.read.req:  A = [len, id]       reply: sc.bulk.reply A = [id] + payload
//	sc.bulk.write.req: A = [id] + payload  ack:   sc.ack        A = [id]
//	sc.bulk.store:     A = [id] + payload  (one-way; destination releases)

func (w *World) registerHandlers() {
	w.hReadReply = w.net.Register("sc.read.reply", func(t *threads.Thread, m am.Msg) {
		rq := w.reqs.take(m.A[1])
		*rq.dst = math.Float64frombits(m.A[0])
		rq.from.complete(t, rq.done)
	})
	w.hReadReq = w.net.Register("sc.read.req", func(t *threads.Thread, m am.Msg) {
		rq := w.reqs.get(m.A[0])
		bits := math.Float64bits(*rq.ptr)
		w.ep(t).RequestShort(t, m.Src, w.hReadReply, [4]uint64{bits, m.A[0]})
	})
	w.hAck = w.net.Register("sc.ack", func(t *threads.Thread, m am.Msg) {
		rq := w.reqs.take(m.A[0])
		rq.from.complete(t, rq.done)
	})
	w.hWriteReq = w.net.Register("sc.write.req", func(t *threads.Thread, m am.Msg) {
		rq := w.reqs.get(m.A[1])
		*rq.ptr = math.Float64frombits(m.A[0])
		w.ep(t).RequestShort(t, m.Src, w.hAck, [4]uint64{m.A[1]})
	})
	w.hAtomicAdd = w.net.Register("sc.atomic.add", func(t *threads.Thread, m am.Msg) {
		rq := w.reqs.get(m.A[1])
		*rq.ptr += math.Float64frombits(m.A[0])
		w.ep(t).RequestShort(t, m.Src, w.hAck, [4]uint64{m.A[1]})
	})
	w.hStore = w.net.Register("sc.store", func(t *threads.Thread, m am.Msg) {
		rq := w.reqs.take(m.A[1])
		*rq.ptr = math.Float64frombits(m.A[0])
		w.procs[m.Dst].storesRecvd++
	})
	w.hBulkReply = w.net.Register("sc.bulk.reply", func(t *threads.Thread, m am.Msg) {
		rq := w.reqs.take(m.A[0])
		decodeF64(t, m.Payload, rq.vdst)
		rq.from.complete(t, rq.done)
	})
	w.hBulkReadReq = w.net.Register("sc.bulk.read.req", func(t *threads.Thread, m am.Msg) {
		rq := w.reqs.get(m.A[1])
		payload := encodeF64(t, rq.vsrc)
		w.ep(t).RequestBulk(t, m.Src, w.hBulkReply, payload, [4]uint64{m.A[1]})
	})
	w.hBulkWriteReq = w.net.Register("sc.bulk.write.req", func(t *threads.Thread, m am.Msg) {
		rq := w.reqs.get(m.A[0])
		decodeF64(t, m.Payload, rq.vdst)
		w.ep(t).RequestShort(t, m.Src, w.hAck, [4]uint64{m.A[0]})
	})
	w.hBulkStore = w.net.Register("sc.bulk.store", func(t *threads.Thread, m am.Msg) {
		rq := w.reqs.take(m.A[0])
		decodeF64(t, m.Payload, rq.vdst)
		w.procs[m.Dst].storesRecvd += rq.n
	})
	w.hRelease = w.net.Register("sc.barrier.release", func(t *threads.Thread, m am.Msg) {
		w.procs[m.Dst].releasedGen = int(m.A[0])
	})
	w.hBarrierArrive = w.net.Register("sc.barrier.arrive", func(t *threads.Thread, m am.Msg) {
		if gen, release := w.barCtr.Arrive(); release {
			for i := 0; i < w.m.NumNodes(); i++ {
				w.ep(t).RequestShort(t, i, w.hRelease, [4]uint64{uint64(gen)})
			}
		}
	})
}

// ep returns the endpoint of the node the thread is running on.
func (w *World) ep(t *threads.Thread) *am.Endpoint { return w.net.Endpoint(t.Node().ID) }

// complete lands one reply on the requesting processor: either flips the
// blocking-op flag or decrements the split-phase counter.
func (p *Proc) complete(t *threads.Thread, done *bool) {
	t.Charge(machine.CatRuntime, completeCost)
	if done != nil {
		*done = true
		return
	}
	p.outstanding--
	if p.outstanding < 0 {
		panic("splitc: completion underflow")
	}
}

// encodeF64 serializes doubles for a bulk payload, charging the copy.
func encodeF64(t *threads.Thread, src []float64) []byte {
	t.Charge(machine.CatRuntime, time.Duration(len(src)*8)*t.Cfg().MemCopyPerByte)
	out := make([]byte, len(src)*8)
	for i, v := range src {
		putU64(out[i*8:], math.Float64bits(v))
	}
	return out
}

// decodeF64 lands a bulk payload in dst, charging the copy.
func decodeF64(t *threads.Thread, payload []byte, dst []float64) {
	if len(payload) != len(dst)*8 {
		panic(fmt.Sprintf("splitc: bulk size mismatch: %d bytes for %d doubles", len(payload), len(dst)))
	}
	t.Charge(machine.CatRuntime, time.Duration(len(payload))*t.Cfg().MemCopyPerByte)
	for i := range dst {
		dst[i] = math.Float64frombits(getU64(payload[i*8:]))
	}
}

func putU64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

func getU64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// --- scalar global accesses -------------------------------------------------

// Read performs a synchronous read through a global pointer (lx = *gp).
// Local pointers dereference directly at zero cost, as compiled Split-C does.
func (p *Proc) Read(gp GPF) float64 {
	if gp.PC == p.me {
		p.node().Acct.Count(machine.CntLocalDeref, 1)
		return *gp.P
	}
	p.node().Acct.Count(machine.CntRemoteRead, 1)
	p.T.Charge(machine.CatRuntime, issueCost)
	done := false
	dst := new(float64)
	id := p.w.reqs.put(scReq{ptr: gp.P, dst: dst, from: p, done: &done})
	p.ep.RequestShort(p.T, gp.PC, p.w.hReadReq, [4]uint64{id})
	p.ep.PollUntil(p.T, func() bool { return done })
	return *dst
}

// Write performs a synchronous write through a global pointer (*gp = v),
// returning once the remote ack arrives.
func (p *Proc) Write(gp GPF, v float64) {
	if gp.PC == p.me {
		p.node().Acct.Count(machine.CntLocalDeref, 1)
		*gp.P = v
		return
	}
	p.node().Acct.Count(machine.CntRemoteWrite, 1)
	p.T.Charge(machine.CatRuntime, issueCost)
	done := false
	id := p.w.reqs.put(scReq{ptr: gp.P, from: p, done: &done})
	p.ep.RequestShort(p.T, gp.PC, p.w.hWriteReq, [4]uint64{math.Float64bits(v), id})
	p.ep.PollUntil(p.T, func() bool { return done })
}

// Get issues a split-phase read (dst := *gp); completion is observed by Sync.
func (p *Proc) Get(dst *float64, gp GPF) {
	if gp.PC == p.me {
		p.node().Acct.Count(machine.CntLocalDeref, 1)
		*dst = *gp.P
		return
	}
	p.node().Acct.Count(machine.CntRemoteRead, 1)
	p.T.Charge(machine.CatRuntime, issueCost)
	p.outstanding++
	id := p.w.reqs.put(scReq{ptr: gp.P, dst: dst, from: p})
	p.ep.RequestShort(p.T, gp.PC, p.w.hReadReq, [4]uint64{id})
}

// Put issues a split-phase write (*gp := v); completion is observed by Sync.
func (p *Proc) Put(gp GPF, v float64) {
	if gp.PC == p.me {
		p.node().Acct.Count(machine.CntLocalDeref, 1)
		*gp.P = v
		return
	}
	p.node().Acct.Count(machine.CntRemoteWrite, 1)
	p.T.Charge(machine.CatRuntime, issueCost)
	p.outstanding++
	id := p.w.reqs.put(scReq{ptr: gp.P, from: p})
	p.ep.RequestShort(p.T, gp.PC, p.w.hWriteReq, [4]uint64{math.Float64bits(v), id})
}

// Store issues a one-way store (*gp :- v): no acknowledgement travels back;
// the target's store counter observes arrival (WaitStores).
func (p *Proc) Store(gp GPF, v float64) {
	if gp.PC == p.me {
		p.node().Acct.Count(machine.CntLocalDeref, 1)
		*gp.P = v
		p.storesRecvd++
		return
	}
	p.node().Acct.Count(machine.CntRemoteWrite, 1)
	p.T.Charge(machine.CatRuntime, issueCost)
	id := p.w.reqs.put(scReq{ptr: gp.P})
	p.ep.RequestShort(p.T, gp.PC, p.w.hStore, [4]uint64{math.Float64bits(v), id})
}

// AtomicAdd issues a split-phase atomic read-modify-write (*gp += v): the
// addition executes atomically at the owning processor (AM handlers run to
// completion) and the acknowledgement is observed by Sync. This is the
// Split-C idiom behind `atomic(foo, ...)` used by the Water application's
// remote force accumulation.
func (p *Proc) AtomicAdd(gp GPF, v float64) {
	if gp.PC == p.me {
		p.node().Acct.Count(machine.CntLocalDeref, 1)
		*gp.P += v
		return
	}
	p.node().Acct.Count(machine.CntRemoteWrite, 1)
	p.T.Charge(machine.CatRuntime, issueCost)
	p.outstanding++
	id := p.w.reqs.put(scReq{ptr: gp.P, from: p})
	p.ep.RequestShort(p.T, gp.PC, p.w.hAtomicAdd, [4]uint64{math.Float64bits(v), id})
}

// Sync blocks until all of this processor's outstanding split-phase
// operations have completed (Split-C's sync()).
func (p *Proc) Sync() {
	p.T.Charge(machine.CatRuntime, completeCost)
	p.ep.PollUntil(p.T, func() bool { return p.outstanding == 0 })
}

// Outstanding reports the number of incomplete split-phase operations.
func (p *Proc) Outstanding() int { return p.outstanding }

// --- bulk transfers ----------------------------------------------------------

// BulkRead synchronously copies a remote vector into dst
// (bulk_read(&lA, gpA, n)). Lengths must match.
func (p *Proc) BulkRead(dst []float64, gp GVF) {
	if len(dst) != len(gp.S) {
		panic("splitc: BulkRead length mismatch")
	}
	if gp.PC == p.me {
		p.node().Acct.Count(machine.CntLocalDeref, 1)
		copy(dst, gp.S)
		p.T.Charge(machine.CatRuntime, time.Duration(len(dst)*8)*p.T.Cfg().MemCopyPerByte)
		return
	}
	p.node().Acct.Count(machine.CntRemoteRead, 1)
	p.T.Charge(machine.CatRuntime, issueCost)
	done := false
	id := p.w.reqs.put(scReq{vsrc: gp.S, vdst: dst, from: p, done: &done})
	p.ep.RequestShort(p.T, gp.PC, p.w.hBulkReadReq, [4]uint64{uint64(len(dst)), id})
	p.ep.PollUntil(p.T, func() bool { return done })
}

// BulkWrite synchronously copies src into a remote vector
// (bulk_write(gpA, &lA, n)).
func (p *Proc) BulkWrite(gp GVF, src []float64) {
	if len(src) != len(gp.S) {
		panic("splitc: BulkWrite length mismatch")
	}
	if gp.PC == p.me {
		p.node().Acct.Count(machine.CntLocalDeref, 1)
		copy(gp.S, src)
		p.T.Charge(machine.CatRuntime, time.Duration(len(src)*8)*p.T.Cfg().MemCopyPerByte)
		return
	}
	p.node().Acct.Count(machine.CntRemoteWrite, 1)
	p.T.Charge(machine.CatRuntime, issueCost)
	done := false
	id := p.w.reqs.put(scReq{vdst: gp.S, from: p, done: &done})
	payload := encodeF64(p.T, src)
	p.ep.RequestBulk(p.T, gp.PC, p.w.hBulkWriteReq, payload, [4]uint64{id})
	p.ep.PollUntil(p.T, func() bool { return done })
}

// BulkGet issues a split-phase bulk read; completion is observed by Sync.
func (p *Proc) BulkGet(dst []float64, gp GVF) {
	if len(dst) != len(gp.S) {
		panic("splitc: BulkGet length mismatch")
	}
	if gp.PC == p.me {
		p.node().Acct.Count(machine.CntLocalDeref, 1)
		copy(dst, gp.S)
		p.T.Charge(machine.CatRuntime, time.Duration(len(dst)*8)*p.T.Cfg().MemCopyPerByte)
		return
	}
	p.node().Acct.Count(machine.CntRemoteRead, 1)
	p.T.Charge(machine.CatRuntime, issueCost)
	p.outstanding++
	id := p.w.reqs.put(scReq{vsrc: gp.S, vdst: dst, from: p})
	p.ep.RequestShort(p.T, gp.PC, p.w.hBulkReadReq, [4]uint64{uint64(len(dst)), id})
}

// BulkStore issues a one-way bulk store; the target's store counter advances
// by the element count on arrival.
func (p *Proc) BulkStore(gp GVF, src []float64) {
	if len(src) != len(gp.S) {
		panic("splitc: BulkStore length mismatch")
	}
	if gp.PC == p.me {
		p.node().Acct.Count(machine.CntLocalDeref, 1)
		copy(gp.S, src)
		p.T.Charge(machine.CatRuntime, time.Duration(len(src)*8)*p.T.Cfg().MemCopyPerByte)
		p.storesRecvd += len(src)
		return
	}
	p.node().Acct.Count(machine.CntRemoteWrite, 1)
	p.T.Charge(machine.CatRuntime, issueCost)
	payload := encodeF64(p.T, src)
	id := p.w.reqs.put(scReq{vdst: gp.S, n: len(src)})
	p.ep.RequestBulk(p.T, gp.PC, p.w.hBulkStore, payload, [4]uint64{id})
}

// WaitStores blocks until at least n store values have landed at this node
// since the last ResetStores.
func (p *Proc) WaitStores(n int) {
	p.T.Charge(machine.CatRuntime, completeCost)
	p.ep.PollUntil(p.T, func() bool { return p.storesRecvd >= n })
}

// ResetStores zeroes the local store-arrival counter.
func (p *Proc) ResetStores() { p.storesRecvd = 0 }

// --- barrier ------------------------------------------------------------------

// Barrier blocks until every processor has entered the barrier. It is the
// Split-C barrier(): a central counter on node 0 plus a release broadcast.
func (p *Proc) Barrier() {
	target := p.releasedGen + 1
	p.T.Charge(machine.CatRuntime, issueCost)
	p.ep.RequestShort(p.T, 0, p.w.hBarrierArrive, [4]uint64{})
	p.ep.PollUntil(p.T, func() bool { return p.releasedGen >= target })
}

func (p *Proc) node() *machine.Node { return p.w.m.Node(p.me) }
