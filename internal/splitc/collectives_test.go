package splitc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/machine"
)

func TestSpreadArrayLayout(t *testing.T) {
	const procs, n = 4, 10
	s := NewSpreadF64(procs, n)
	if s.Len() != n {
		t.Fatalf("len = %d", s.Len())
	}
	// Cyclic: element i on processor i%procs, and each element has a
	// distinct storage slot.
	seen := make(map[*float64]bool)
	for i := 0; i < n; i++ {
		gp := s.Index(i)
		if gp.PC != i%procs {
			t.Fatalf("element %d on %d", i, gp.PC)
		}
		if seen[gp.P] {
			t.Fatalf("element %d aliases another", i)
		}
		seen[gp.P] = true
	}
}

func TestSpreadArrayRoundTrip(t *testing.T) {
	const procs, n = 4, 17
	s := NewSpreadF64(procs, n)
	w := New(machine.New(machine.SP1997(), procs))
	err := w.Run(func(p *Proc) {
		// Each processor writes its right neighbour's elements via puts, so
		// every element has exactly one (remote) writer.
		for i := 0; i < n; i++ {
			if s.Owner(i) == (p.MyPC()+1)%procs {
				p.Put(s.Index(i), float64(i)*2)
			}
		}
		p.Sync()
		p.Barrier()
		// Then everyone verifies every element through reads.
		for i := 0; i < n; i++ {
			if got := p.Read(s.Index(i)); got != float64(i)*2 {
				t.Errorf("proc %d: element %d = %v, want %v", p.MyPC(), i, got, float64(i)*2)
			}
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceSum(t *testing.T) {
	const procs = 4
	w := New(machine.New(machine.SP1997(), procs))
	got := make([]float64, procs)
	err := w.Run(func(p *Proc) {
		got[p.MyPC()] = p.AllReduce(float64(p.MyPC()+1), OpSum)
	})
	if err != nil {
		t.Fatal(err)
	}
	for pc, v := range got {
		if v != 10 { // 1+2+3+4
			t.Errorf("proc %d got %v", pc, v)
		}
	}
}

func TestAllReduceMaxMin(t *testing.T) {
	const procs = 4
	vals := []float64{3, -7, 12, 0.5}
	w := New(machine.New(machine.SP1997(), procs))
	var gotMax, gotMin [procs]float64
	err := w.Run(func(p *Proc) {
		gotMax[p.MyPC()] = p.AllReduce(vals[p.MyPC()], OpMax)
		gotMin[p.MyPC()] = p.AllReduce(vals[p.MyPC()], OpMin)
	})
	if err != nil {
		t.Fatal(err)
	}
	for pc := 0; pc < procs; pc++ {
		if gotMax[pc] != 12 || gotMin[pc] != -7 {
			t.Errorf("proc %d: max %v min %v", pc, gotMax[pc], gotMin[pc])
		}
	}
}

func TestAllReduceRepeated(t *testing.T) {
	const procs, rounds = 3, 5
	w := New(machine.New(machine.SP1997(), procs))
	sums := make([][]float64, procs)
	err := w.Run(func(p *Proc) {
		for r := 0; r < rounds; r++ {
			s := p.AllReduce(float64(r*10+p.MyPC()), OpSum)
			sums[p.MyPC()] = append(sums[p.MyPC()], s)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rounds; r++ {
		want := float64(r*10*procs + 0 + 1 + 2)
		for pc := 0; pc < procs; pc++ {
			if sums[pc][r] != want {
				t.Errorf("round %d proc %d: %v want %v", r, pc, sums[pc][r], want)
			}
		}
	}
}

func TestAllBcast(t *testing.T) {
	const procs = 4
	w := New(machine.New(machine.SP1997(), procs))
	var got [procs]float64
	err := w.Run(func(p *Proc) {
		got[p.MyPC()] = p.AllBcast(2, 6.25)
	})
	if err != nil {
		t.Fatal(err)
	}
	for pc, v := range got {
		if v != 6.25 {
			t.Errorf("proc %d got %v", pc, v)
		}
	}
}

// Property: AllReduce(sum) equals the serial sum for random contributions.
func TestAllReduceSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const procs = 4
		vals := make([]float64, procs)
		want := 0.0
		for i := range vals {
			vals[i] = rng.NormFloat64()
			want += vals[i]
		}
		w := New(machine.New(machine.SP1997(), procs))
		var got [procs]float64
		if err := w.Run(func(p *Proc) {
			got[p.MyPC()] = p.AllReduce(vals[p.MyPC()], OpSum)
		}); err != nil {
			return false
		}
		for _, v := range got {
			if diff := v - want; diff > 1e-12 || diff < -1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
