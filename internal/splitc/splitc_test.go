package splitc

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/machine"
)

func TestReadWriteRemote(t *testing.T) {
	w := New(machine.New(machine.SP1997(), 2))
	vals := []float64{1.5, 0} // vals[i] lives on node i
	var got float64
	err := w.Run(func(p *Proc) {
		switch p.MyPC() {
		case 0:
			p.Write(GPF{PC: 1, P: &vals[1]}, 2.25)
			got = p.Read(GPF{PC: 1, P: &vals[1]})
		case 1:
			// Node 1 just needs to be reachable; its main returns and the
			// poll-on-idle machinery services node 0's requests... but with
			// single-threaded SPMD it must stay alive until node 0 is done,
			// which the barrier ensures.
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2.25 || vals[1] != 2.25 {
		t.Fatalf("got=%v vals[1]=%v", got, vals[1])
	}
}

func TestLocalAccessFreeAndDirect(t *testing.T) {
	w := New(machine.New(machine.SP1997(), 1))
	x := 7.5
	var got float64
	err := w.Run(func(p *Proc) {
		got = p.Read(GPF{PC: 0, P: &x})
		p.Write(GPF{PC: 0, P: &x}, 8.5)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 7.5 || x != 8.5 {
		t.Fatalf("got=%v x=%v", got, x)
	}
	if w.Machine().Eng.Now() != 0 {
		t.Fatalf("local accesses consumed %v", w.Machine().Eng.Now())
	}
	if n := w.Machine().Node(0).Acct.Counter(machine.CntLocalDeref); n != 2 {
		t.Fatalf("local derefs = %d", n)
	}
}

func TestBlockingReadLatency(t *testing.T) {
	// GP read = short request + short reply + issue/complete runtime costs.
	w := New(machine.New(machine.SP1997(), 2))
	x := 3.0
	var elapsed time.Duration
	err := w.Run(func(p *Proc) {
		if p.MyPC() == 0 {
			start := p.T.Now()
			_ = p.Read(GPF{PC: 1, P: &x})
			elapsed = time.Duration(p.T.Now() - start)
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.SP1997()
	want := cfg.ShortRTT() + issueCost + completeCost // 55 + 4 = 59 µs
	if elapsed != want {
		t.Fatalf("blocking read took %v, want %v", elapsed, want)
	}
}

func TestSplitPhaseGetOverlap(t *testing.T) {
	// 20 pipelined gets must take far less than 20 blocking reads: the wire
	// latency overlaps, only per-message overheads serialize.
	const n = 20
	w := New(machine.New(machine.SP1997(), 2))
	remote := make([]float64, n)
	for i := range remote {
		remote[i] = float64(i) * 1.25
	}
	local := make([]float64, n)
	var elapsed time.Duration
	err := w.Run(func(p *Proc) {
		if p.MyPC() == 0 {
			start := p.T.Now()
			for i := 0; i < n; i++ {
				p.Get(&local[i], GPF{PC: 1, P: &remote[i]})
			}
			p.Sync()
			elapsed = time.Duration(p.T.Now() - start)
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range local {
		if local[i] != remote[i] {
			t.Fatalf("local[%d]=%v want %v", i, local[i], remote[i])
		}
	}
	blocking := time.Duration(n) * (machine.SP1997().ShortRTT() + issueCost + completeCost)
	if elapsed >= blocking/2 {
		t.Fatalf("prefetch did not overlap: %v vs %v blocking", elapsed, blocking)
	}
	// Paper: amortized ~12 µs per element for Split-C prefetch.
	per := elapsed / n
	if per < 5*time.Microsecond || per > 25*time.Microsecond {
		t.Fatalf("per-element prefetch %v outside plausible band", per)
	}
}

func TestPutAndSync(t *testing.T) {
	w := New(machine.New(machine.SP1997(), 2))
	remote := make([]float64, 10)
	err := w.Run(func(p *Proc) {
		if p.MyPC() == 0 {
			for i := range remote {
				p.Put(GPF{PC: 1, P: &remote[i]}, float64(i))
			}
			p.Sync()
			if p.Outstanding() != 0 {
				t.Error("outstanding after sync")
			}
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range remote {
		if v != float64(i) {
			t.Fatalf("remote[%d]=%v", i, v)
		}
	}
}

func TestStoreAndWaitStores(t *testing.T) {
	w := New(machine.New(machine.SP1997(), 2))
	cell := make([]float64, 4)
	err := w.Run(func(p *Proc) {
		if p.MyPC() == 0 {
			for i := range cell {
				p.Store(GPF{PC: 1, P: &cell[i]}, float64(i+1))
			}
		} else {
			p.WaitStores(4)
			for i, v := range cell {
				if v != float64(i+1) {
					t.Errorf("cell[%d]=%v", i, v)
				}
			}
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBulkReadWrite(t *testing.T) {
	const n = 20
	w := New(machine.New(machine.SP1997(), 2))
	remote := make([]float64, n)
	for i := range remote {
		remote[i] = float64(i) + 0.5
	}
	local := make([]float64, n)
	src := make([]float64, n)
	for i := range src {
		src[i] = -float64(i)
	}
	err := w.Run(func(p *Proc) {
		if p.MyPC() == 0 {
			p.BulkRead(local, GVF{PC: 1, S: remote})
			p.BulkWrite(GVF{PC: 1, S: remote}, src)
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if local[i] != float64(i)+0.5 {
			t.Fatalf("bulk read local[%d]=%v", i, local[i])
		}
		if remote[i] != -float64(i) {
			t.Fatalf("bulk write remote[%d]=%v", i, remote[i])
		}
	}
}

func TestBulkStoreCountsElements(t *testing.T) {
	w := New(machine.New(machine.SP1997(), 2))
	dst := make([]float64, 8)
	src := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	err := w.Run(func(p *Proc) {
		if p.MyPC() == 0 {
			p.BulkStore(GVF{PC: 1, S: dst}, src)
		} else {
			p.WaitStores(8)
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if dst[i] != src[i] {
			t.Fatalf("dst[%d]=%v", i, dst[i])
		}
	}
}

func TestBarrierSynchronizesAll(t *testing.T) {
	const nodes = 4
	w := New(machine.New(machine.SP1997(), nodes))
	var before [nodes]time.Duration
	var after [nodes]time.Duration
	err := w.Run(func(p *Proc) {
		// Stagger arrival times.
		p.T.Compute(time.Duration(p.MyPC()*100) * time.Microsecond)
		before[p.MyPC()] = time.Duration(p.T.Now())
		p.Barrier()
		after[p.MyPC()] = time.Duration(p.T.Now())
	})
	if err != nil {
		t.Fatal(err)
	}
	var maxBefore time.Duration
	for _, b := range before {
		if b > maxBefore {
			maxBefore = b
		}
	}
	for i, a := range after {
		if a < maxBefore {
			t.Fatalf("node %d left barrier at %v before last arrival %v", i, a, maxBefore)
		}
	}
}

func TestRepeatedBarriers(t *testing.T) {
	const nodes = 3
	w := New(machine.New(machine.SP1997(), nodes))
	counts := make([]int, nodes)
	err := w.Run(func(p *Proc) {
		for i := 0; i < 5; i++ {
			counts[p.MyPC()]++
			p.Barrier()
			// After barrier k, every node must have completed iteration k.
			for j := 0; j < nodes; j++ {
				if counts[j] < counts[p.MyPC()]-1 {
					t.Errorf("barrier leaked: node %d at %d, node %d at %d",
						p.MyPC(), counts[p.MyPC()], j, counts[j])
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 5 {
			t.Fatalf("node %d ran %d iters", i, c)
		}
	}
}

func TestGetIntoManyDestinations(t *testing.T) {
	// Property: split-phase gets from random nodes land the right values.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const nodes, n = 4, 30
		w := New(machine.New(machine.SP1997(), nodes))
		src := make([][]float64, nodes)
		for i := range src {
			src[i] = make([]float64, n)
			for j := range src[i] {
				src[i][j] = rng.Float64()
			}
		}
		dst := make([]float64, n)
		want := make([]float64, n)
		idx := make([]GPF, n)
		for j := 0; j < n; j++ {
			node := rng.Intn(nodes)
			k := rng.Intn(n)
			idx[j] = GPF{PC: node, P: &src[node][k]}
			want[j] = src[node][k]
		}
		err := w.Run(func(p *Proc) {
			if p.MyPC() == 0 {
				for j := 0; j < n; j++ {
					p.Get(&dst[j], idx[j])
				}
				p.Sync()
			}
			p.Barrier()
		})
		if err != nil {
			return false
		}
		for j := range dst {
			if dst[j] != want[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBulkRoundTripPreservesDataProperty(t *testing.T) {
	f := func(data []float64) bool {
		if len(data) == 0 {
			data = []float64{0}
		}
		if len(data) > 256 {
			data = data[:256]
		}
		w := New(machine.New(machine.SP1997(), 2))
		remote := make([]float64, len(data))
		back := make([]float64, len(data))
		err := w.Run(func(p *Proc) {
			if p.MyPC() == 0 {
				p.BulkWrite(GVF{PC: 1, S: remote}, data)
				p.BulkRead(back, GVF{PC: 1, S: remote})
			}
			p.Barrier()
		})
		if err != nil {
			return false
		}
		for i := range data {
			// NaN-safe bit comparison.
			if (back[i] != data[i]) && !(back[i] != back[i] && data[i] != data[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicTiming(t *testing.T) {
	run := func() time.Duration {
		w := New(machine.New(machine.SP1997(), 4))
		data := make([]float64, 64)
		err := w.Run(func(p *Proc) {
			for i := 0; i < 10; i++ {
				p.Write(GPF{PC: (p.MyPC() + 1) % 4, P: &data[p.MyPC()*16+i]}, float64(i))
				p.Barrier()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.Machine().Eng.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}
