package splitc

import (
	"testing"
	"time"

	"repro/internal/machine"
)

// The barrier and all_reduce were rewired onto internal/coll's central
// plans (PR 3); their measured cost behavior must not move, because the
// paper's calibrated tables (Table 4's barrier-synchronized loops, the
// Figure 5/6 applications) are built on them. These golden totals were
// captured from the pre-rewire implementation on the calibrated SP model:
// a fixed program of three barriers, two all_reduces, and an all_bcast.
func TestCollectiveCostParity(t *testing.T) {
	golden := map[int]struct {
		total     time.Duration // machine virtual time at completion
		node0Msgs int64         // short AMs sent by the coordinating node
	}{
		2: {360 * time.Microsecond, 18},
		4: {402 * time.Microsecond, 30},
		8: {486 * time.Microsecond, 54},
	}
	for procs, want := range golden {
		m := machine.New(machine.SP1997(), procs)
		w := New(m)
		var r1, r2, r3 float64
		err := w.Run(func(p *Proc) {
			p.Barrier()
			s1 := p.AllReduce(float64(p.MyPC()+1), OpSum)
			p.Barrier()
			s2 := p.AllReduce(float64(p.MyPC()), OpMax)
			s3 := p.AllBcast(procs-1, 7.5)
			p.Barrier()
			if p.MyPC() == 0 {
				r1, r2, r3 = s1, s2, s3
			}
		})
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if got := m.Eng.Now(); got != want.total {
			t.Errorf("procs=%d: virtual total %v, want %v (rewired collectives changed modelled cost)", procs, got, want.total)
		}
		if got := m.Node(0).Acct.Counter(machine.CntMsgShort); got != want.node0Msgs {
			t.Errorf("procs=%d: node 0 sent %d short AMs, want %d (message pattern changed)", procs, got, want.node0Msgs)
		}
		wantSum := float64(procs*(procs+1)) / 2
		if r1 != wantSum || r2 != float64(procs-1) || r3 != 7.5 {
			t.Errorf("procs=%d: results %v/%v/%v, want %v/%v/7.5", procs, r1, r2, r3, wantSum, procs-1)
		}
	}
}
