// Package nexus models the communication profile of the original CC++
// implementation: CC++ v0.4 over Nexus v3.0 configured with the TCP/IP
// protocol running over the SP2 high-performance switch (the paper's §6
// "Comparison with CC++/Nexus"; footnote 2 notes MPL could not be used).
//
// It implements core.Transport by reusing the Active-Messages engine but
// surcharging every message with TCP-era protocol-stack CPU on both sides,
// a much higher wire latency, and a lower effective bandwidth. The paper's
// observed 5–35× application-level gaps between CC++/ThAM and CC++/Nexus
// follow from these per-message constants, not from any structural change —
// which is exactly the paper's argument for building the lean runtime.
package nexus

import (
	"repro/internal/am"
	"repro/internal/machine"
	"repro/internal/threads"
	"repro/internal/wire"
)

// Transport is the Nexus/TCP message layer. It satisfies core.Transport and
// core.SchedulerAttacher.
type Transport struct {
	m   *machine.Machine
	net *am.Net
}

// New builds a Nexus transport over machine m. Pass it in core.Options
// .Transport to build a CC++/Nexus runtime.
func New(m *machine.Machine) *Transport {
	return &Transport{m: m, net: am.NewNet(m)}
}

// Name implements core.Transport.
func (tr *Transport) Name() string { return "Nexus" }

// Attach implements core.SchedulerAttacher.
func (tr *Transport) Attach(node int, s *threads.Scheduler) {
	tr.net.Endpoint(node).Attach(s)
}

// Register implements core.Transport.
func (tr *Transport) Register(name string, h am.Handler) am.HandlerID {
	return tr.net.Register(name, h)
}

// Send implements core.Transport: every message pays the TCP protocol stack
// on both sides and rides the slow path through the switch.
func (tr *Transport) Send(t *threads.Thread, src, dst int, h am.HandlerID, a [4]uint64, payload []byte, forceBulk bool) {
	cfg := t.Cfg()
	opts := am.SendOpts{
		Bulk:         forceBulk || len(payload) > 0,
		ExtraSendCPU: cfg.NexusPerMsgCPU,
		ExtraWire:    cfg.NexusLatency - cfg.WireLatency,
		ExtraRecvCPU: cfg.NexusPerMsgCPU,
		GapPerByte:   cfg.NexusGapPerByte,
	}
	tr.net.Endpoint(src).Request(t, dst, h, a, payload, opts)
}

// SendBuf implements core.Transport: the owned-buffer variant of Send, with
// the same Nexus/TCP cost profile. Ownership of buf passes to the message
// layer.
func (tr *Transport) SendBuf(t *threads.Thread, src, dst int, h am.HandlerID, a [4]uint64, buf *wire.Buf, forceBulk bool) {
	cfg := t.Cfg()
	opts := am.SendOpts{
		Bulk:         forceBulk || buf != nil,
		ExtraSendCPU: cfg.NexusPerMsgCPU,
		ExtraWire:    cfg.NexusLatency - cfg.WireLatency,
		ExtraRecvCPU: cfg.NexusPerMsgCPU,
		GapPerByte:   cfg.NexusGapPerByte,
	}
	tr.net.Endpoint(src).RequestOwned(t, dst, h, a, buf, opts)
}

// Poll implements core.Transport.
func (tr *Transport) Poll(t *threads.Thread, me int) bool { return tr.net.Endpoint(me).Poll(t) }

// WaitMessage implements core.Transport.
func (tr *Transport) WaitMessage(t *threads.Thread, me int) { tr.net.Endpoint(me).WaitMessage(t) }

// KickService implements core.Transport.
func (tr *Transport) KickService(me int) { tr.net.Endpoint(me).KickService() }

// Stop implements core.Transport.
func (tr *Transport) Stop(me int) { tr.net.Endpoint(me).Stop() }

// Stopped implements core.Transport.
func (tr *Transport) Stopped(me int) bool { return tr.net.Endpoint(me).Stopped() }
