package nexus

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/threads"
)

func pingClass() *core.Class {
	return &core.Class{
		Name: "Ping",
		New:  func() any { return &struct{}{} },
		Methods: []*core.Method{
			{Name: "nop", Fn: func(t *threads.Thread, self any, args []core.Arg, ret core.Arg) {}},
			{
				Name:    "echo",
				NewArgs: func() []core.Arg { return []core.Arg{&core.F64{}} },
				NewRet:  func() core.Arg { return &core.F64{} },
				Fn: func(t *threads.Thread, self any, args []core.Arg, ret core.Arg) {
					ret.(*core.F64).V = args[0].(*core.F64).V * 2
				},
			},
		},
	}
}

// nullRMI measures the warm null-RMI time over the transport built by mk
// (nil means the default AM transport).
func nullRMI(t *testing.T, mk func(*machine.Machine) core.Transport) time.Duration {
	m := machine.New(machine.SP1997(), 2)
	var opts core.Options
	if mk != nil {
		opts.Transport = mk(m)
	}
	rt := core.NewRuntimeOpts(m, opts)
	rt.RegisterClass(pingClass())
	gp := rt.CreateObject(1, "Ping")
	var warm time.Duration
	rt.OnNode(0, func(th *threads.Thread) {
		rt.CallSimple(th, gp, "nop", nil, nil)
		start := th.Now()
		rt.CallSimple(th, gp, "nop", nil, nil)
		warm = time.Duration(th.Now() - start)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	return warm
}

func TestNexusOrderOfMagnitudeSlower(t *testing.T) {
	tham := nullRMI(t, nil)
	nex := nullRMI(t, func(m *machine.Machine) core.Transport { return New(m) })
	ratio := float64(nex) / float64(tham)
	// The paper reports 5-35x application gaps; the null RMI itself should
	// be well over an order of magnitude apart.
	if ratio < 10 {
		t.Fatalf("Nexus/ThAM null-RMI ratio = %.1f, want >= 10 (tham=%v nexus=%v)", ratio, tham, nex)
	}
	if ratio > 100 {
		t.Fatalf("Nexus/ThAM null-RMI ratio = %.1f, implausibly large", ratio)
	}
}

func TestNexusCorrectness(t *testing.T) {
	// Semantics must be identical to ThAM: only costs change.
	m := machine.New(machine.SP1997(), 2)
	rt := core.NewRuntimeOpts(m, core.Options{Transport: New(m)})
	rt.RegisterClass(pingClass())
	gp := rt.CreateObject(1, "Ping")
	var got float64
	rt.OnNode(0, func(th *threads.Thread) {
		var ret core.F64
		rt.Call(th, gp, "echo", []core.Arg{&core.F64{V: 21}}, &ret)
		got = ret.V
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("echo returned %v", got)
	}
	if rt.TransportName() != "Nexus" {
		t.Fatalf("transport %q", rt.TransportName())
	}
}

func TestNexusGPReads(t *testing.T) {
	m := machine.New(machine.SP1997(), 2)
	rt := core.NewRuntimeOpts(m, core.Options{Transport: New(m)})
	rt.RegisterClass(pingClass())
	x := 6.5
	var got float64
	rt.OnNode(0, func(th *threads.Thread) {
		got = rt.ReadF64(th, core.NewGPF64(1, &x))
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 6.5 {
		t.Fatalf("GP read over Nexus returned %v", got)
	}
}
