package metrics

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	r.Add(CtrNotifies, 3)
	r.Add(CtrNotifies, 2)
	r.Set(GgeNotifyDepth, 7)
	r.Set(GgeNotifyDepth, 4)
	s := r.Snapshot()
	if got := s.Counter(CtrNotifies); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if g := s.Gauge(GgeNotifyDepth); g.Last != 4 || g.Max != 7 {
		t.Errorf("gauge = %+v, want last=4 max=7", g)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	// 1000 observations: 900 at ~1µs, 90 at ~16µs, 9 at ~1ms, 1 at 50ms.
	for i := 0; i < 900; i++ {
		r.ObserveDur(HstRMILatency, time.Microsecond)
	}
	for i := 0; i < 90; i++ {
		r.ObserveDur(HstRMILatency, 16*time.Microsecond)
	}
	for i := 0; i < 9; i++ {
		r.ObserveDur(HstRMILatency, time.Millisecond)
	}
	r.ObserveDur(HstRMILatency, 50*time.Millisecond)
	h := r.Snapshot().Hist(HstRMILatency)
	if h.Count != 1000 {
		t.Fatalf("count = %d, want 1000", h.Count)
	}
	// Log buckets give upper bounds: p50 lands in the ~1µs bucket
	// ([1024,2048)), p99 in the ~16µs bucket, p999 in the ~1ms bucket.
	if p := h.P50(); p < 1000 || p > 2048 {
		t.Errorf("p50 = %d, want within the ~1µs bucket", p)
	}
	if p := h.P99(); p < 16000 || p > 32768 {
		t.Errorf("p99 = %d, want within the ~16µs bucket", p)
	}
	if p := h.P999(); p < 1_000_000 || p > 2_097_152 {
		t.Errorf("p999 = %d, want within the ~1ms bucket", p)
	}
	if h.Max != int64(50*time.Millisecond) {
		t.Errorf("max = %d, want %d", h.Max, 50*time.Millisecond)
	}
	if h.Mean() <= 0 {
		t.Errorf("mean = %d, want positive", h.Mean())
	}
	// The tail quantile never exceeds the observed max.
	if q := h.Quantile(1.0); q != h.Max {
		t.Errorf("q100 = %d, want max %d", q, h.Max)
	}
}

func TestEmptyHistogram(t *testing.T) {
	var h HistSnap
	if h.P50() != 0 || h.P999() != 0 || h.Mean() != 0 {
		t.Errorf("empty histogram quantiles non-zero: %d %d %d", h.P50(), h.P999(), h.Mean())
	}
}

func TestMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Add(CtrFramesOut, 10)
	b.Add(CtrFramesOut, 5)
	a.Set(GgePeerRingDepth, 3)
	b.Set(GgePeerRingDepth, 9)
	a.ObserveDur(HstWriterStall, time.Microsecond)
	b.ObserveDur(HstWriterStall, time.Millisecond)
	m := Merge(a.Snapshot(), b.Snapshot())
	if m.Counter(CtrFramesOut) != 15 {
		t.Errorf("merged counter = %d, want 15", m.Counter(CtrFramesOut))
	}
	if g := m.Gauge(GgePeerRingDepth); g.Last != 12 || g.Max != 9 {
		t.Errorf("merged gauge = %+v, want last=12 max=9", g)
	}
	h := m.Hist(HstWriterStall)
	if h.Count != 2 || h.Max != int64(time.Millisecond) {
		t.Errorf("merged hist = count %d max %d", h.Count, h.Max)
	}
	// Merging preserves quantile answers: the merged p50 falls between the
	// two observations.
	if p := h.P50(); p < int64(time.Microsecond) || p > int64(2*time.Millisecond) {
		t.Errorf("merged p50 = %d out of range", p)
	}
}

// TestSnapshotJSONRoundTrip pins the kStats wire property: a snapshot
// marshalled by a worker shard and unmarshalled by the parent answers the
// same queries.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Add(CtrBytesIn, 4096)
	r.Set(GgeNotifyDepth, 11)
	for i := 0; i < 100; i++ {
		r.ObserveDur(HstRMILatency, time.Duration(i+1)*time.Microsecond)
	}
	s := r.Snapshot()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counter(CtrBytesIn) != 4096 || back.Gauge(GgeNotifyDepth).Max != 11 {
		t.Errorf("round trip lost counters/gauges: %+v", back)
	}
	if back.Hist(HstRMILatency).P99() != s.Hist(HstRMILatency).P99() {
		t.Errorf("round trip changed p99: %d vs %d",
			back.Hist(HstRMILatency).P99(), s.Hist(HstRMILatency).P99())
	}
}

// TestConcurrentRecording exercises every instrument from many goroutines so
// the race detector sees the recording paths (CI runs this package -race).
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers, each = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Add(CtrNotifies, 1)
				r.Set(GgeNotifyDepth, int64(i))
				r.Observe(HstPollBatch, int64(i%128))
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counter(CtrNotifies) != workers*each {
		t.Errorf("counter = %d, want %d", s.Counter(CtrNotifies), workers*each)
	}
	if s.Hist(HstPollBatch).Count != workers*each {
		t.Errorf("hist count = %d, want %d", s.Hist(HstPollBatch).Count, workers*each)
	}
	if s.Gauge(GgeNotifyDepth).Max != each-1 {
		t.Errorf("gauge max = %d, want %d", s.Gauge(GgeNotifyDepth).Max, each-1)
	}
}

// TestRecordingAllocFree pins the hot-path contract: recording into a
// registry allocates nothing.
func TestRecordingAllocFree(t *testing.T) {
	r := NewRegistry()
	allocs := testing.AllocsPerRun(1000, func() {
		r.Add(CtrNotifies, 1)
		r.Set(GgeNotifyDepth, 5)
		r.ObserveDur(HstRMILatency, 3800*time.Nanosecond)
	})
	if allocs != 0 {
		t.Errorf("recording allocates %.1f/op, want 0", allocs)
	}
}

func TestNames(t *testing.T) {
	for _, c := range Counters() {
		if c.String() == "" {
			t.Errorf("counter %d has no name", c)
		}
	}
	for _, g := range Gauges() {
		if g.String() == "" {
			t.Errorf("gauge %d has no name", g)
		}
	}
	for _, h := range Hists() {
		if h.String() == "" {
			t.Errorf("hist %d has no name", h)
		}
	}
}
