// Package metrics is the wall-clock observability registry of the live
// backends: atomic counters, gauges with high-water tracking, and
// log-bucketed latency histograms with percentile extraction.
//
// The design mirrors machine.Accounting — a closed enum of instruments in
// fixed arrays, so bumping one on the hot path is an indexed atomic add with
// no map lookup and no allocation — but where Accounting records *virtual*
// time charged by the cost model, this registry records *wall-clock*
// behavior: real RMI round-trip latency, real queue depths, real batch
// sizes. The simulator has no use for it (its virtual time IS the model);
// the live and netlive backends create one Registry per node plus one per
// message plane, and every recording site is gated behind a nil check so a
// backend without metrics pays nothing.
//
// Snapshot/Merge mirror machine.Snapshot/MergeSnapshots: each shard of a
// multi-process machine snapshots its registries, ships them in a kStats
// frame, and shard 0 merges them into one machine-wide report. Following the
// Active Messages tradition, nothing here ever blocks or allocates on a
// recording path: Add, Set, and Observe are a handful of atomic operations.
package metrics

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// Ctr names one monotonic counter.
type Ctr int

const (
	// CtrNotifies counts notify callbacks pushed onto live delivery queues.
	CtrNotifies Ctr = iota
	// CtrNotifyBatches counts delivery-worker drain batches (CtrNotifies /
	// CtrNotifyBatches is the realized short-message batching factor).
	CtrNotifyBatches
	// CtrFramesOut / CtrBytesOut count cross-shard frames and payload bytes
	// shipped to peer shards (netlive writer side).
	CtrFramesOut
	CtrBytesOut
	// CtrFramesIn / CtrBytesIn count frames and payload bytes received from
	// peer shards (netlive reader side).
	CtrFramesIn
	CtrBytesIn
	// CtrShmFramesOut / CtrShmBytesOut count packet frames and record bytes
	// published into shared-memory shard rings (netlive producer side).
	CtrShmFramesOut
	CtrShmBytesOut
	// CtrShmFramesIn / CtrShmBytesIn count frames and record bytes consumed
	// from shared-memory shard rings (netlive consumer side).
	CtrShmFramesIn
	CtrShmBytesIn
	// CtrShmDoorbells counts doorbell frames sent to wake a parked ring
	// consumer (the slow path of the spin-then-park protocol).
	CtrShmDoorbells
	// CtrShmSpinWakes / CtrShmParkWakes classify how a waiting ring consumer
	// found new data: within its bounded spin, or only after parking (their
	// ratio is how often the doorbell path is actually needed).
	CtrShmSpinWakes
	CtrShmParkWakes
	numCtrs
)

var ctrNames = [numCtrs]string{
	"live.notifies", "live.notify.batches",
	"net.frames.out", "net.bytes.out", "net.frames.in", "net.bytes.in",
	"shm.frames.out", "shm.bytes.out", "shm.frames.in", "shm.bytes.in",
	"shm.doorbells", "shm.wakes.spin", "shm.wakes.park",
}

// String returns the label used in reports.
func (c Ctr) String() string {
	if c < 0 || c >= numCtrs {
		return fmt.Sprintf("Ctr(%d)", int(c))
	}
	return ctrNames[c]
}

// Gge names one gauge (a sampled level with a high-water mark).
type Gge int

const (
	// GgeNotifyDepth is the depth of a node's notify queue, sampled at each
	// push (live delivery plane).
	GgeNotifyDepth Gge = iota
	// GgePeerRingDepth is the depth of a peer shard's writer ring, sampled at
	// each cross-shard frame push (netlive message plane).
	GgePeerRingDepth
	// GgeShmRingDepth is the occupancy in bytes of a shared-memory shard
	// ring, sampled at each record publish (netlive shm producer side).
	GgeShmRingDepth
	numGges
)

var ggeNames = [numGges]string{"live.notify.depth", "net.peer.ring.depth", "shm.ring.depth"}

// String returns the label used in reports.
func (g Gge) String() string {
	if g < 0 || g >= numGges {
		return fmt.Sprintf("Gge(%d)", int(g))
	}
	return ggeNames[g]
}

// Hst names one log-bucketed histogram.
type Hst int

const (
	// HstRMILatency is the wall-clock round-trip of a remote RMI in
	// nanoseconds, send to reply-handled, recorded at the initiating node.
	HstRMILatency Hst = iota
	// HstPollBatch is the number of notify callbacks a live delivery worker
	// ran per CPU acquisition (a size distribution, not a duration).
	HstPollBatch
	// HstWriterStall is the wall-clock nanoseconds a cross-shard frame
	// waited in the peer writer's ring before reaching the socket — how far
	// behind the wire is the sender running.
	HstWriterStall
	numHsts
)

var hstNames = [numHsts]string{"rmi.latency.ns", "live.poll.batch", "net.writer.stall.ns"}

// String returns the label used in reports.
func (h Hst) String() string {
	if h < 0 || h >= numHsts {
		return fmt.Sprintf("Hst(%d)", int(h))
	}
	return hstNames[h]
}

// histBuckets is the bucket count: bucket i holds values v with
// bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i). 64 buckets cover every
// non-negative int64.
const histBuckets = 65

// hist is one live histogram: power-of-two buckets plus sum and max, all
// atomic. A single Observe is three atomic adds and a CAS-max.
type hist struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

func (h *hist) observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// gauge is one live gauge: the last sampled level and its high-water mark.
type gauge struct {
	last atomic.Int64
	max  atomic.Int64
}

func (g *gauge) set(v int64) {
	g.last.Store(v)
	for {
		cur := g.max.Load()
		if v <= cur || g.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Registry is one recording domain — a node, or a backend's message plane.
// All methods are safe for concurrent use and allocation-free.
type Registry struct {
	ctrs [numCtrs]atomic.Int64
	gges [numGges]gauge
	hsts [numHsts]hist
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Add bumps counter c by n.
func (r *Registry) Add(c Ctr, n int64) { r.ctrs[c].Add(n) }

// Counter reads counter c.
func (r *Registry) Counter(c Ctr) int64 { return r.ctrs[c].Load() }

// Set samples gauge g at level v, updating its high-water mark.
func (r *Registry) Set(g Gge, v int64) { r.gges[g].set(v) }

// Observe records v into histogram h. Durations are recorded as nanoseconds
// (ObserveDur); size distributions as plain counts.
func (r *Registry) Observe(h Hst, v int64) { r.hsts[h].observe(v) }

// ObserveDur records a wall-clock duration into histogram h.
func (r *Registry) ObserveDur(h Hst, d time.Duration) { r.hsts[h].observe(int64(d)) }

// Snapshot captures the registry's current state. Safe to call while
// recorders run; each instrument is read atomically (the snapshot as a whole
// is not a consistent cut, which merged reporting does not need).
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	for i := range r.ctrs {
		s.Counters[i] = r.ctrs[i].Load()
	}
	for i := range r.gges {
		s.Gauges[i] = GaugeSnap{Last: r.gges[i].last.Load(), Max: r.gges[i].max.Load()}
	}
	for i := range r.hsts {
		h := &r.hsts[i]
		hs := &s.Hists[i]
		hs.Count = h.count.Load()
		hs.Sum = h.sum.Load()
		hs.Max = h.max.Load()
		for b := range h.buckets {
			hs.Buckets[b] = h.buckets[b].Load()
		}
	}
	return s
}

// GaugeSnap is the snapshot of one gauge.
type GaugeSnap struct {
	Last int64 `json:"last"`
	Max  int64 `json:"max"`
}

// HistSnap is the snapshot of one histogram: the raw log buckets travel so a
// merged snapshot can still answer quantile queries.
type HistSnap struct {
	Count   int64              `json:"count"`
	Sum     int64              `json:"sum"`
	Max     int64              `json:"max"`
	Buckets [histBuckets]int64 `json:"buckets"`
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1): the upper
// edge of the log bucket the quantile falls in, clamped to the observed
// maximum. Zero when the histogram is empty.
func (h HistSnap) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	rank := int64(q*float64(h.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, n := range h.Buckets {
		seen += n
		if seen >= rank {
			// Bucket i holds values < 2^i.
			upper := int64(1)<<uint(i) - 1
			if upper > h.Max || upper < 0 {
				upper = h.Max
			}
			return upper
		}
	}
	return h.Max
}

// Sub returns the observations recorded since prev was taken: per-bucket,
// count and sum differences between two snapshots of the same histogram
// (prev must be the earlier one). Max stays the cumulative maximum — the
// log buckets cannot recover the window's own max, so windowed quantiles
// clamp against the overall max, a safe upper bound.
func (h HistSnap) Sub(prev HistSnap) HistSnap {
	out := HistSnap{Count: h.Count - prev.Count, Sum: h.Sum - prev.Sum, Max: h.Max}
	for i := range out.Buckets {
		out.Buckets[i] = h.Buckets[i] - prev.Buckets[i]
	}
	return out
}

// P50, P99 and P999 are the report percentiles.
func (h HistSnap) P50() int64  { return h.Quantile(0.50) }
func (h HistSnap) P99() int64  { return h.Quantile(0.99) }
func (h HistSnap) P999() int64 { return h.Quantile(0.999) }

// Mean returns the arithmetic mean of the observations (0 when empty).
func (h HistSnap) Mean() int64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / h.Count
}

// Snapshot is a point-in-time copy of a Registry, mirroring
// machine.Snapshot: plain data, JSON-serializable for the kStats wire
// payload, mergeable across nodes and shards.
type Snapshot struct {
	Counters [numCtrs]int64     `json:"counters"`
	Gauges   [numGges]GaugeSnap `json:"gauges"`
	Hists    [numHsts]HistSnap  `json:"hists"`
}

// Counter reads counter c from the snapshot.
func (s Snapshot) Counter(c Ctr) int64 { return s.Counters[c] }

// Gauge reads gauge g from the snapshot.
func (s Snapshot) Gauge(g Gge) GaugeSnap { return s.Gauges[g] }

// Hist reads histogram h from the snapshot.
func (s Snapshot) Hist(h Hst) HistSnap { return s.Hists[h] }

// Merge sums counters and histogram buckets and combines gauges across
// snapshots — the machine-wide view from per-node (or per-shard) parts.
// Gauge Last values sum (total queued across the machine at snapshot time);
// Max values take the maximum (the deepest any single queue ever got).
func Merge(snaps ...Snapshot) Snapshot {
	var out Snapshot
	for _, s := range snaps {
		for i, v := range s.Counters {
			out.Counters[i] += v
		}
		for i, g := range s.Gauges {
			out.Gauges[i].Last += g.Last
			if g.Max > out.Gauges[i].Max {
				out.Gauges[i].Max = g.Max
			}
		}
		for i, h := range s.Hists {
			o := &out.Hists[i]
			o.Count += h.Count
			o.Sum += h.Sum
			if h.Max > o.Max {
				o.Max = h.Max
			}
			for b, n := range h.Buckets {
				o.Buckets[b] += n
			}
		}
	}
	return out
}

// Counters lists all counter IDs in declaration order (report iteration).
func Counters() []Ctr {
	out := make([]Ctr, numCtrs)
	for i := range out {
		out[i] = Ctr(i)
	}
	return out
}

// Gauges lists all gauge IDs in declaration order.
func Gauges() []Gge {
	out := make([]Gge, numGges)
	for i := range out {
		out[i] = Gge(i)
	}
	return out
}

// Hists lists all histogram IDs in declaration order.
func Hists() []Hst {
	out := make([]Hst, numHsts)
	for i := range out {
		out[i] = Hst(i)
	}
	return out
}
