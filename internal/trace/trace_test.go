package trace

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/threads"
)

func TestLogLimitAndDrop(t *testing.T) {
	l := New(3)
	for i := 0; i < 5; i++ {
		l.Add(Event{At: time.Duration(i), Node: 0, Kind: KindMark})
	}
	if len(l.Events()) != 3 || l.Dropped() != 2 {
		t.Fatalf("events %d dropped %d", len(l.Events()), l.Dropped())
	}
	if !strings.Contains(l.Listing(0), "dropped") {
		t.Error("listing does not mention dropped events")
	}
}

func TestFilter(t *testing.T) {
	l := New(0)
	l.Add(Event{Node: 0, Kind: KindSend})
	l.Add(Event{Node: 1, Kind: KindSend})
	l.Add(Event{Node: 0, Kind: KindRecv})
	if got := len(l.Filter(KindSend, -1)); got != 2 {
		t.Fatalf("sends %d", got)
	}
	if got := len(l.Filter(KindSend, 1)); got != 1 {
		t.Fatalf("node-1 sends %d", got)
	}
}

func TestSortStable(t *testing.T) {
	evs := []Event{
		{At: 3, Node: 1}, {At: 1, Node: 2}, {At: 3, Node: 0}, {At: 2, Node: 0},
	}
	SortStable(evs)
	if evs[0].At != 1 || evs[3].At != 3 || evs[2].Node != 0 || evs[3].Node != 1 {
		t.Fatalf("order %v", evs)
	}
}

// End-to-end: trace a real CC++ ping-pong and check the layers emitted
// coherent events.
func TestTraceRealRun(t *testing.T) {
	m := machine.New(machine.SP1997(), 2)
	l := New(0)
	Attach(m, l)
	rt := core.NewRuntime(m)
	rt.RegisterClass(&core.Class{
		Name: "P",
		New:  func() any { return &struct{}{} },
		Methods: []*core.Method{{
			Name:     "work",
			Threaded: true,
			Fn: func(th *threads.Thread, self any, args []core.Arg, ret core.Arg) {
				th.Compute(20 * time.Microsecond)
			},
		}},
	})
	gp := rt.CreateObject(1, "P")
	rt.OnNode(0, func(th *threads.Thread) {
		for i := 0; i < 3; i++ {
			rt.Call(th, gp, "work", nil, nil)
		}
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}

	sends := l.Filter(KindSend, 0)
	if len(sends) < 3 {
		t.Fatalf("node 0 sends = %d, want >= 3 (requests)", len(sends))
	}
	recvs := l.Filter(KindRecv, 1)
	if len(recvs) < 3 {
		t.Fatalf("node 1 recvs = %d", len(recvs))
	}
	spawns := l.Filter(KindSpawn, 1)
	if len(spawns) < 3 {
		t.Fatalf("node 1 spawns = %d, want >= 3 (threaded RMIs)", len(spawns))
	}
	// Events are time-ordered as emitted.
	evs := l.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("events out of order at %d", i)
		}
	}
	// Charges recorded include the CPU work on node 1.
	cpu := time.Duration(0)
	for _, e := range l.Filter(KindCharge, 1) {
		if e.Label == "cpu" {
			cpu += e.Dur
		}
	}
	if cpu != 60*time.Microsecond {
		t.Fatalf("traced cpu on node 1 = %v, want 60µs", cpu)
	}

	// Renderers produce plausible text.
	util := l.Utilization(2, 0, m.Eng.Now(), 40)
	if !strings.Contains(util, "n0 ") || !strings.Contains(util, "n1 ") {
		t.Fatalf("utilization missing rows:\n%s", util)
	}
	if !strings.ContainsAny(util, "#~tr,") {
		t.Fatalf("utilization shows no activity:\n%s", util)
	}
	sum := l.Summary(2)
	if !strings.Contains(sum, "n0") || !strings.Contains(sum, "send") {
		t.Fatalf("summary malformed:\n%s", sum)
	}
}

func TestNoTracerCostsNothing(t *testing.T) {
	// Without Attach the machine must run identically (no panic, no events).
	m := machine.New(machine.SP1997(), 2)
	rt := core.NewRuntime(m)
	rt.RegisterClass(&core.Class{
		Name:    "P",
		New:     func() any { return &struct{}{} },
		Methods: []*core.Method{{Name: "nop", Fn: func(*threads.Thread, any, []core.Arg, core.Arg) {}}},
	})
	gp := rt.CreateObject(1, "P")
	rt.OnNode(0, func(th *threads.Thread) { rt.Call(th, gp, "nop", nil, nil) })
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
}
