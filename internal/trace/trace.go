// Package trace records timelines of simulation events — message sends and
// deliveries, thread creation and context switches, and per-category time
// charges — and renders them as chronological listings or per-node
// utilization strips.
//
// Tracing is opt-in: install a Log on a machine with Attach before running.
// The hooks cost nothing when no tracer is installed.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Kind classifies an event.
type Kind uint8

// Event kinds emitted by the instrumented layers.
const (
	// KindSend is a packet leaving a node.
	KindSend Kind = iota
	// KindRecv is a message being polled and handled.
	KindRecv
	// KindSpawn is a thread creation.
	KindSpawn
	// KindSwitch is a context switch.
	KindSwitch
	// KindCharge is a virtual-time charge (Dur and the category label say
	// how much and what for).
	KindCharge
	// KindMark is a user annotation.
	KindMark
)

// String returns the event-kind label.
func (k Kind) String() string {
	switch k {
	case KindSend:
		return "send"
	case KindRecv:
		return "recv"
	case KindSpawn:
		return "spawn"
	case KindSwitch:
		return "switch"
	case KindCharge:
		return "charge"
	case KindMark:
		return "mark"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one recorded occurrence.
type Event struct {
	At    time.Duration
	Node  int
	Kind  Kind
	Label string
	Dur   time.Duration // non-zero for charges
}

// Log accumulates events up to a limit (older events are kept; once the
// limit is reached new events are dropped and the drop count recorded, so a
// runaway simulation cannot exhaust memory).
type Log struct {
	// mu guards events and dropped: on the live backend nodes emit
	// concurrently (on the simulator it is uncontended).
	mu      sync.Mutex
	limit   int
	events  []Event
	dropped int64
}

// New creates a log holding at most limit events (0 means a generous
// default).
func New(limit int) *Log {
	if limit <= 0 {
		limit = 1 << 18
	}
	return &Log{limit: limit}
}

// Add records an event. Safe for concurrent use.
func (l *Log) Add(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.events) >= l.limit {
		l.dropped++
		return
	}
	l.events = append(l.events, e)
}

// Mark records a user annotation at the given virtual time.
func (l *Log) Mark(at time.Duration, node int, label string) {
	l.Add(Event{At: at, Node: node, Kind: KindMark, Label: label})
}

// snapshot returns the events recorded so far and the drop count. Recorded
// elements are never mutated, so the slice is safe to iterate while writers
// keep appending.
func (l *Log) snapshot() ([]Event, int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.events, l.dropped
}

// Events returns the recorded events (chronological on the simulator, which
// emits them in virtual-time order). Safe for concurrent use.
func (l *Log) Events() []Event {
	events, _ := l.snapshot()
	return events
}

// Dropped reports how many events were discarded after the limit.
func (l *Log) Dropped() int64 {
	_, dropped := l.snapshot()
	return dropped
}

// Filter returns the events matching the kind (and node, when node >= 0).
func (l *Log) Filter(kind Kind, node int) []Event {
	events, _ := l.snapshot()
	var out []Event
	for _, e := range events {
		if e.Kind == kind && (node < 0 || e.Node == node) {
			out = append(out, e)
		}
	}
	return out
}

// Listing renders up to max events as text, one per line.
func (l *Log) Listing(max int) string {
	events, dropped := l.snapshot()
	var b strings.Builder
	n := len(events)
	if max > 0 && n > max {
		n = max
	}
	for _, e := range events[:n] {
		if e.Dur > 0 {
			fmt.Fprintf(&b, "%12v n%d %-6s %s (%v)\n", e.At, e.Node, e.Kind, e.Label, e.Dur)
		} else {
			fmt.Fprintf(&b, "%12v n%d %-6s %s\n", e.At, e.Node, e.Kind, e.Label)
		}
	}
	if len(events) > n {
		fmt.Fprintf(&b, "… %d more events\n", len(events)-n)
	}
	if dropped > 0 {
		fmt.Fprintf(&b, "… %d events dropped at the %d-event limit\n", dropped, l.limit)
	}
	return b.String()
}

// Utilization renders per-node busy strips: the window [from, to) is split
// into width buckets and each bucket shows the node's dominant activity —
// '#' computing, '~' in the message layer, 't' thread ops, 'r' runtime,
// '.' idle. Charges spanning buckets are apportioned.
func (l *Log) Utilization(nodes int, from, to time.Duration, width int) string {
	if width <= 0 {
		width = 72
	}
	if to <= from {
		return "(empty window)\n"
	}
	bucket := (to - from) / time.Duration(width)
	if bucket <= 0 {
		bucket = 1
	}
	// busy[node][bucket][category-ish] accumulated durations.
	type cell struct{ cpu, net, thr, rtm time.Duration }
	busy := make([][]cell, nodes)
	for i := range busy {
		busy[i] = make([]cell, width)
	}
	events, dropped := l.snapshot()
	for _, e := range events {
		if e.Kind != KindCharge || e.Dur == 0 || e.Node >= nodes {
			continue
		}
		start, end := e.At-e.Dur, e.At
		if end <= from || start >= to {
			continue
		}
		if start < from {
			start = from
		}
		if end > to {
			end = to
		}
		for t := start; t < end; {
			bi := int((t - from) / bucket)
			if bi >= width {
				break
			}
			bEnd := from + time.Duration(bi+1)*bucket
			seg := end - t
			if bEnd-t < seg {
				seg = bEnd - t
			}
			c := &busy[e.Node][bi]
			switch e.Label {
			case "cpu":
				c.cpu += seg
			case "net":
				c.net += seg
			case "thread-mgmt", "thread-sync":
				c.thr += seg
			default:
				c.rtm += seg
			}
			t += seg
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "utilization %v .. %v  (#=cpu ~=net t=threads r=runtime .=idle)\n", from, to)
	for node := 0; node < nodes; node++ {
		fmt.Fprintf(&b, "n%-2d |", node)
		for bi := 0; bi < width; bi++ {
			c := busy[node][bi]
			max := c.cpu
			ch := byte('#')
			if c.net > max {
				max, ch = c.net, '~'
			}
			if c.thr > max {
				max, ch = c.thr, 't'
			}
			if c.rtm > max {
				max, ch = c.rtm, 'r'
			}
			if max == 0 {
				ch = '.'
			} else if max < bucket/4 {
				ch = ','
			}
			b.WriteByte(ch)
		}
		b.WriteString("|\n")
	}
	if dropped > 0 {
		// A saturated log silently missing charges would make the strips lie
		// about idleness — say so.
		fmt.Fprintf(&b, "… %d events dropped at the %d-event limit; strips under-report activity\n",
			dropped, l.limit)
	}
	return b.String()
}

// Summary counts events by kind per node.
func (l *Log) Summary(nodes int) string {
	counts := make([]map[Kind]int, nodes)
	for i := range counts {
		counts[i] = make(map[Kind]int)
	}
	events, dropped := l.snapshot()
	for _, e := range events {
		if e.Node < nodes {
			counts[e.Node][e.Kind]++
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %8s %8s %8s %8s %8s\n", "node", "send", "recv", "spawn", "switch", "charge")
	for i := 0; i < nodes; i++ {
		fmt.Fprintf(&b, "n%-4d %8d %8d %8d %8d %8d\n", i,
			counts[i][KindSend], counts[i][KindRecv], counts[i][KindSpawn],
			counts[i][KindSwitch], counts[i][KindCharge])
	}
	if dropped > 0 {
		fmt.Fprintf(&b, "… %d events dropped at the %d-event limit; counts are lower bounds\n",
			dropped, l.limit)
	}
	return b.String()
}

// SortStable orders events by (time, node); the simulator already emits in
// time order, so this is only needed after merging logs.
func SortStable(events []Event) {
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].At != events[j].At {
			return events[i].At < events[j].At
		}
		return events[i].Node < events[j].Node
	})
}
