package trace

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// WritePerfetto renders the log in the Chrome trace-event JSON format, which
// Perfetto (https://ui.perfetto.dev) and about://tracing load directly. Each
// machine node becomes one "thread" of process 0; charges render as complete
// slices (ph "X", real start/duration — the event's At is the charge's end),
// everything else as instant events (ph "i"). Timestamps are microseconds,
// the format's unit; sub-microsecond precision survives because the values
// are fractional.
//
// The log need not be sorted — the format carries explicit timestamps — so
// live-backend logs (nodes emit concurrently) export as-is. The return
// includes how many events were written; a non-zero Dropped count is
// surfaced as a metadata annotation so a saturated trace is visibly
// truncated in the viewer.
func WritePerfetto(w io.Writer, l *Log) (int, error) {
	events, dropped := l.snapshot()
	bw := &errWriter{w: w}
	bw.printf("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[")

	// Name the threads after the machine nodes so the viewer's rows read
	// n0, n1, ... rather than bare tids.
	maxNode := 0
	for _, e := range events {
		if e.Node > maxNode {
			maxNode = e.Node
		}
	}
	first := true
	for n := 0; n <= maxNode; n++ {
		bw.sep(&first)
		bw.printf(`{"ph":"M","pid":0,"tid":%d,"name":"thread_name","args":{"name":"n%d"}}`, n, n)
	}
	if dropped > 0 {
		bw.sep(&first)
		bw.printf(`{"ph":"M","pid":0,"tid":0,"name":"process_labels","args":{"labels":"%d events dropped (log saturated)"}}`, dropped)
	}
	for _, e := range events {
		bw.sep(&first)
		switch {
		case e.Kind == KindCharge && e.Dur > 0:
			// At marks the end of the charge.
			bw.printf(`{"ph":"X","pid":0,"tid":%d,"ts":%s,"dur":%s,"name":%q,"cat":"charge"}`,
				e.Node, usec(e.At-e.Dur), usec(e.Dur), e.Label)
		default:
			bw.printf(`{"ph":"i","pid":0,"tid":%d,"ts":%s,"s":"t","name":%q,"cat":%q}`,
				e.Node, usec(e.At), instantName(e), e.Kind.String())
		}
	}
	bw.printf("]}\n")
	return len(events), bw.err
}

// usec formats a duration as fractional microseconds without float rounding
// surprises (three decimal places carry full nanosecond precision).
func usec(d time.Duration) string {
	return fmt.Sprintf("%d.%03d", d/time.Microsecond, d%time.Microsecond)
}

// instantName compacts an instant event's label for the viewer: the kind
// plus the label, which for sends is the destination and size.
func instantName(e Event) string {
	if e.Label == "" {
		return e.Kind.String()
	}
	return e.Kind.String() + " " + strings.TrimSpace(e.Label)
}

// errWriter latches the first write error so the emit loop stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (b *errWriter) printf(format string, args ...any) {
	if b.err != nil {
		return
	}
	_, b.err = fmt.Fprintf(b.w, format, args...)
}

func (b *errWriter) sep(first *bool) {
	if *first {
		*first = false
		return
	}
	b.printf(",\n")
}
