package trace

import (
	"time"

	"repro/internal/machine"
)

// Attach installs the log as machine m's tracer. Call before running the
// simulation; pass the same log to the renderers afterwards.
func Attach(m *machine.Machine, l *Log) {
	m.Trace = func(at time.Duration, node int, kind, label string, dur time.Duration) {
		var k Kind
		switch kind {
		case "send":
			k = KindSend
		case "recv":
			k = KindRecv
		case "spawn":
			k = KindSpawn
		case "switch":
			k = KindSwitch
		case "charge":
			k = KindCharge
		default:
			k = KindMark
		}
		l.Add(Event{At: at, Node: node, Kind: k, Label: label, Dur: dur})
	}
}
