package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestWritePerfetto pins the exporter's contract: valid JSON in the Chrome
// trace-event shape, charges as complete slices with real start/duration,
// instants for the rest, and thread-name metadata per node.
func TestWritePerfetto(t *testing.T) {
	l := New(0)
	l.Add(Event{At: 10 * time.Microsecond, Node: 0, Kind: KindSend, Label: "->n1 16B"})
	l.Add(Event{At: 25 * time.Microsecond, Node: 1, Kind: KindRecv, Label: "h3"})
	// A 5µs charge ending at 30µs: the slice must start at 25µs.
	l.Add(Event{At: 30 * time.Microsecond, Node: 1, Kind: KindCharge, Label: "cpu", Dur: 5 * time.Microsecond})

	var buf bytes.Buffer
	n, err := WritePerfetto(&buf, l)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("wrote %d events, want 3", n)
	}

	var doc struct {
		TraceEvents []struct {
			Ph   string          `json:"ph"`
			Pid  int             `json:"pid"`
			Tid  int             `json:"tid"`
			Ts   float64         `json:"ts"`
			Dur  float64         `json:"dur"`
			Name string          `json:"name"`
			Cat  string          `json:"cat"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exporter emitted invalid JSON: %v\n%s", err, buf.String())
	}

	var slices, instants, metas int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			slices++
			if e.Ts != 25 || e.Dur != 5 {
				t.Errorf("charge slice ts=%v dur=%v, want ts=25 dur=5", e.Ts, e.Dur)
			}
			if e.Tid != 1 || e.Name != "cpu" {
				t.Errorf("charge slice tid=%d name=%q", e.Tid, e.Name)
			}
		case "i":
			instants++
		case "M":
			metas++
		}
	}
	if slices != 1 || instants != 2 {
		t.Errorf("slices=%d instants=%d, want 1 and 2", slices, instants)
	}
	if metas < 2 {
		t.Errorf("thread-name metadata events = %d, want one per node", metas)
	}
	if !strings.Contains(buf.String(), `"n1"`) {
		t.Errorf("missing node thread name:\n%s", buf.String())
	}
}

// TestWritePerfettoSurfacesDrops: a saturated log annotates the trace.
func TestWritePerfettoSurfacesDrops(t *testing.T) {
	l := New(1)
	l.Add(Event{Node: 0, Kind: KindMark})
	l.Add(Event{Node: 0, Kind: KindMark}) // dropped
	var buf bytes.Buffer
	if _, err := WritePerfetto(&buf, l); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dropped") {
		t.Errorf("saturated trace not annotated:\n%s", buf.String())
	}
	if !json.Valid(buf.Bytes()) {
		t.Errorf("invalid JSON:\n%s", buf.String())
	}
}

// TestSummaryAndUtilizationSurfaceDrops pins the fix for renderers silently
// ignoring truncation: both must mention the dropped count.
func TestSummaryAndUtilizationSurfaceDrops(t *testing.T) {
	l := New(1)
	l.Add(Event{At: time.Microsecond, Node: 0, Kind: KindCharge, Label: "cpu", Dur: time.Microsecond})
	l.Add(Event{At: 2 * time.Microsecond, Node: 0, Kind: KindMark}) // dropped
	if s := l.Summary(1); !strings.Contains(s, "dropped") {
		t.Errorf("summary hides truncation:\n%s", s)
	}
	if u := l.Utilization(1, 0, 3*time.Microsecond, 10); !strings.Contains(u, "dropped") {
		t.Errorf("utilization hides truncation:\n%s", u)
	}
	// And an unsaturated log stays byte-identical to before (no new lines).
	l2 := New(0)
	l2.Add(Event{At: time.Microsecond, Node: 0, Kind: KindCharge, Label: "cpu", Dur: time.Microsecond})
	if s := l2.Summary(1); strings.Contains(s, "dropped") {
		t.Errorf("unsaturated summary mentions drops:\n%s", s)
	}
}
