package threads

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/machine"
)

// Property: under random interleavings of spawn/yield/compute/lock, the
// scheduler preserves its core invariants — every spawned thread eventually
// runs to completion, mutual exclusion holds, and the run is deterministic.
func TestSchedulerRandomOpsProperty(t *testing.T) {
	run := func(seed int64) (completed int, critMax int, end time.Duration, ok bool) {
		rng := rand.New(rand.NewSource(seed))
		m, s := testRig()
		var mu Mutex
		inCrit, maxIn := 0, 0
		done := 0
		var body func(depth int) func(*Thread)
		body = func(depth int) func(*Thread) {
			return func(th *Thread) {
				ops := 2 + rng.Intn(4)
				for i := 0; i < ops; i++ {
					switch rng.Intn(4) {
					case 0:
						th.Compute(time.Duration(rng.Intn(10)) * time.Microsecond)
					case 1:
						th.Yield()
					case 2:
						mu.Lock(th)
						inCrit++
						if inCrit > maxIn {
							maxIn = inCrit
						}
						th.Yield() // widen the race window
						inCrit--
						mu.Unlock(th)
					case 3:
						if depth < 2 {
							th.Spawn("child", body(depth+1))
						}
					}
				}
				done++
			}
		}
		for i := 0; i < 4; i++ {
			s.Start("root", body(0))
		}
		if err := m.Run(); err != nil {
			return 0, 0, 0, false
		}
		return done, maxIn, m.Eng.Now(), true
	}
	f := func(seed int64) bool {
		d1, c1, e1, ok1 := run(seed)
		d2, c2, e2, ok2 := run(seed)
		if !ok1 || !ok2 {
			return false
		}
		// Deterministic replay, all threads completed, mutual exclusion.
		return d1 == d2 && d1 >= 4 && c1 <= 1 && c2 <= 1 && e1 == e2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestUnlockByNonOwnerPanics(t *testing.T) {
	m, s := testRig()
	var mu Mutex
	var recovered any
	s.Start("a", func(th *Thread) { mu.Lock(th) })
	s.Start("b", func(th *Thread) {
		th.Compute(time.Microsecond)
		defer func() { recovered = recover() }()
		mu.Unlock(th)
	})
	_ = m.Run()
	if recovered == nil {
		t.Fatal("unlock by non-owner did not panic")
	}
}

func TestWaitGroupNegativePanics(t *testing.T) {
	m, s := testRig()
	var recovered any
	s.Start("a", func(th *Thread) {
		var wg WaitGroup
		wg.Add(1)
		wg.Done(th)
		defer func() { recovered = recover() }()
		wg.Done(th)
	})
	_ = m.Run()
	if recovered == nil {
		t.Fatal("WaitGroup underflow did not panic")
	}
}

func TestDeepSpawnChain(t *testing.T) {
	// A chain of 100 threads, each spawning the next, must complete with
	// exactly 100 creations charged.
	m, s := testRig()
	const depth = 100
	reached := 0
	var spawnNext func(d int) func(*Thread)
	spawnNext = func(d int) func(*Thread) {
		return func(th *Thread) {
			reached = d
			if d < depth {
				th.Spawn("next", spawnNext(d+1))
			}
		}
	}
	s.Start("root", spawnNext(1))
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if reached != depth {
		t.Fatalf("chain reached %d of %d", reached, depth)
	}
	if n := m.Node(0).Acct.Counter(machine.CntThreadCreate); n != depth-1 {
		t.Fatalf("creates = %d, want %d", n, depth-1)
	}
}

func TestManyBlockedThreadsWakeInOrder(t *testing.T) {
	m, s := testRig()
	var sv SyncVar
	var order []int
	const n = 20
	for i := 0; i < n; i++ {
		i := i
		s.Start("w", func(th *Thread) {
			_ = sv.Read(th)
			order = append(order, i)
		})
	}
	s.Start("writer", func(th *Thread) {
		th.Compute(time.Microsecond)
		sv.Write(th, true)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != n {
		t.Fatalf("only %d of %d woke", len(order), n)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("wake order %v not FIFO", order)
		}
	}
}
