package threads

import "repro/internal/machine"

// Mutex is a node-local mutual-exclusion lock with FIFO handoff. Lock and
// Unlock each cost one sync operation, matching the paper's accounting in
// which 95% of acquisitions are contention-less but still paid for.
type Mutex struct {
	owner   *Thread
	waiters []*Thread
}

// Lock acquires the mutex, blocking the thread if it is held. Ownership is
// transferred FIFO to keep the simulation deterministic.
func (m *Mutex) Lock(t *Thread) {
	t.chargeSync()
	if m.owner == nil {
		m.owner = t
		return
	}
	t.s.node.Acct.Count(machine.CntLockContended, 1)
	m.waiters = append(m.waiters, t)
	t.Block()
	// Unlock handed us ownership before waking us.
	if m.owner != t {
		panic("threads: woke from Lock without ownership")
	}
}

// TryLock acquires the mutex only if it is free, charging one sync op either
// way. It reports whether the lock was taken.
func (m *Mutex) TryLock(t *Thread) bool {
	t.chargeSync()
	if m.owner == nil {
		m.owner = t
		return true
	}
	return false
}

// Unlock releases the mutex, handing it directly to the oldest waiter if any.
func (m *Mutex) Unlock(t *Thread) {
	if m.owner != t {
		panic("threads: Unlock by non-owner " + t.name)
	}
	t.chargeSync()
	if len(m.waiters) > 0 {
		w := m.waiters[0]
		copy(m.waiters, m.waiters[1:])
		m.waiters = m.waiters[:len(m.waiters)-1]
		m.owner = w
		t.s.MakeReady(w)
		return
	}
	m.owner = nil
}

// Locked reports whether the mutex is currently held.
func (m *Mutex) Locked() bool { return m.owner != nil }

// Cond is a condition variable tied to a Mutex.
type Cond struct {
	M       *Mutex
	waiters []*Thread
}

// Wait atomically releases the mutex and suspends the thread until Signal or
// Broadcast, then reacquires the mutex before returning. The wait itself
// costs one sync op in addition to the unlock/relock pair, mirroring a
// pthread-style implementation.
func (c *Cond) Wait(t *Thread) {
	t.chargeSync()
	c.waiters = append(c.waiters, t)
	c.M.Unlock(t)
	t.Block()
	c.M.Lock(t)
}

// Signal wakes the oldest waiter, if any.
func (c *Cond) Signal(t *Thread) {
	t.chargeSync()
	if len(c.waiters) == 0 {
		return
	}
	w := c.waiters[0]
	copy(c.waiters, c.waiters[1:])
	c.waiters = c.waiters[:len(c.waiters)-1]
	t.s.MakeReady(w)
}

// Broadcast wakes all waiters.
func (c *Cond) Broadcast(t *Thread) {
	t.chargeSync()
	for _, w := range c.waiters {
		t.s.MakeReady(w)
	}
	c.waiters = c.waiters[:0]
}

// SyncVar is a write-once synchronization variable, the CC++ `sync T`
// primitive: readers block until the single write happens.
type SyncVar struct {
	set     bool
	val     any
	waiters []*Thread
}

// IsSet reports whether the variable has been written.
func (v *SyncVar) IsSet() bool { return v.set }

// Read blocks until the variable is written, then returns its value. Each
// read costs one sync op.
func (v *SyncVar) Read(t *Thread) any {
	t.chargeSync()
	for !v.set {
		v.waiters = append(v.waiters, t)
		t.Block()
	}
	return v.val
}

// Write sets the value exactly once and wakes all blocked readers. A second
// write panics: single-assignment is the language invariant the runtime
// relies on. The waiter list keeps its backing array so a Reset variable
// reused from a pool stops allocating after its first blocking read.
func (v *SyncVar) Write(t *Thread, val any) {
	if v.set {
		panic("threads: SyncVar written twice")
	}
	t.chargeSync()
	v.set = true
	v.val = val
	for i, w := range v.waiters {
		t.s.MakeReady(w)
		v.waiters[i] = nil
	}
	v.waiters = v.waiters[:0]
}

// Reset re-arms a consumed variable for reuse — the escape hatch the
// runtime's pooled completion records use once they have proven no reader
// can still be parked (the completing write ran and every reader returned).
// Resetting a variable with parked readers would strand them, so it panics.
func (v *SyncVar) Reset() {
	if len(v.waiters) != 0 {
		panic("threads: Reset of SyncVar with parked readers")
	}
	v.set = false
	v.val = nil
}

// WaitGroup counts outstanding work items; Wait blocks until the count
// reaches zero. Used by the runtimes to implement par/parfor joins and
// split-phase completion counters.
type WaitGroup struct {
	n       int
	waiters []*Thread
}

// Add adjusts the counter by delta without charging (bookkeeping only;
// charging happens at the Done/Wait synchronization points).
func (g *WaitGroup) Add(delta int) {
	g.n += delta
	if g.n < 0 {
		panic("threads: negative WaitGroup counter")
	}
}

// Pending returns the current counter value.
func (g *WaitGroup) Pending() int { return g.n }

// Done decrements the counter, charging one sync op, and wakes waiters when
// it reaches zero.
func (g *WaitGroup) Done(t *Thread) {
	t.chargeSync()
	g.n--
	if g.n < 0 {
		panic("threads: WaitGroup Done below zero")
	}
	if g.n == 0 {
		for _, w := range g.waiters {
			t.s.MakeReady(w)
		}
		g.waiters = nil
	}
}

// Wait blocks until the counter is zero, charging one sync op.
func (g *WaitGroup) Wait(t *Thread) {
	t.chargeSync()
	for g.n > 0 {
		g.waiters = append(g.waiters, t)
		t.Block()
	}
}
