// Package threads implements the lightweight, non-preemptive threads package
// the paper's CC++ runtime is built on, as cooperative green threads over the
// transport backend's schedulable contexts (simulated processes on the
// calibrated simnet backend, real goroutines on the live backend).
//
// Each machine node owns one Scheduler. A thread runs until it yields,
// blocks, or exits; the scheduler then dispatches the next ready thread.
// Every operation charges its calibrated virtual-time cost (Config.ThreadCreate,
// Config.ContextSwitch, Config.SyncOp) to the node's accounting and bumps the
// corresponding counter, which is exactly how the paper reconstructs the
// "Threads" columns of its Table 4 (counts × unit costs).
package threads

import (
	"fmt"
	"time"

	"repro/internal/machine"
	"repro/internal/transport"
)

// State is a thread's lifecycle state.
type State int

const (
	// Ready means queued, waiting for the CPU.
	Ready State = iota
	// Running means currently executing on the node's CPU.
	Running
	// Blocked means waiting on a mutex, condition, sync variable, or
	// message arrival.
	Blocked
	// Dead means the thread function returned.
	Dead
)

func (s State) String() string {
	switch s {
	case Ready:
		return "ready"
	case Running:
		return "running"
	case Blocked:
		return "blocked"
	case Dead:
		return "dead"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Scheduler multiplexes cooperative threads onto one node's CPU.
type Scheduler struct {
	node    *machine.Node
	ready   []*Thread
	current *Thread
	nlive   int
	seq     int
}

// NewScheduler creates the scheduler for a node. Exactly one scheduler per
// node should exist; runtimes create it during initialization.
func NewScheduler(node *machine.Node) *Scheduler {
	return &Scheduler{node: node}
}

// Node returns the node this scheduler runs on.
func (s *Scheduler) Node() *machine.Node { return s.node }

// Current returns the thread currently on the CPU (nil when the node idles).
func (s *Scheduler) Current() *Thread { return s.current }

// ReadyLen reports how many threads are queued ready.
func (s *Scheduler) ReadyLen() int { return len(s.ready) }

// Live reports how many threads exist (ready, running, or blocked).
func (s *Scheduler) Live() int { return s.nlive }

// Thread is one cooperative thread of control.
type Thread struct {
	s    *Scheduler
	p    transport.Proc
	name string

	state State
}

// Name returns the debug name.
func (t *Thread) Name() string { return t.name }

// State returns the lifecycle state.
func (t *Thread) State() State { return t.state }

// Scheduler returns the owning scheduler.
func (t *Thread) Scheduler() *Scheduler { return t.s }

// Node returns the node the thread runs on.
func (t *Thread) Node() *machine.Node { return t.s.node }

// Cfg returns the machine cost configuration.
func (t *Thread) Cfg() machine.Config { return t.s.node.Cfg() }

// Now returns the backend clock: virtual time on the simulator, wall-clock
// time on the live backend.
func (t *Thread) Now() time.Duration { return t.p.Now() }

func (s *Scheduler) cfg() machine.Config { return s.node.Cfg() }

func (s *Scheduler) popReady() *Thread {
	if len(s.ready) == 0 {
		return nil
	}
	t := s.ready[0]
	copy(s.ready, s.ready[1:])
	s.ready = s.ready[:len(s.ready)-1]
	return t
}

// newThread builds the thread object and its backing proc. The proc
// immediately parks, waiting for its first dispatch.
func (s *Scheduler) newThread(name string, fn func(*Thread)) *Thread {
	s.seq++
	t := &Thread{s: s, name: fmt.Sprintf("n%d/%s#%d", s.node.ID, name, s.seq)}
	s.nlive++
	t.p = s.node.M.Backend().Go(s.node.ID, t.name, func(p transport.Proc) {
		p.Park() // wait for first dispatch
		fn(t)
		t.exit()
	})
	return t
}

// Start creates and enqueues a thread without charging creation cost; it is
// the bootstrap entry point used before the simulation begins (the "main"
// thread of each node, the runtime's service threads at init).
func (s *Scheduler) Start(name string, fn func(*Thread)) *Thread {
	t := s.newThread(name, fn)
	s.makeReadyNoCharge(t)
	return t
}

// Spawn forks a new thread from a running thread, charging the configured
// creation cost to the node and counting it. The new thread is enqueued
// ready; the caller keeps the CPU (threads run to completion until they
// yield or block, as in the paper's non-preemptive package).
func (t *Thread) Spawn(name string, fn func(*Thread)) *Thread {
	t.mustBeRunning("Spawn")
	t.Charge(machine.CatThreadMgmt, t.Cfg().ThreadCreate)
	t.s.node.Acct.Count(machine.CntThreadCreate, 1)
	t.s.node.M.Emit(t.s.node.ID, "spawn", name, 0)
	nt := t.s.newThread(name, fn)
	t.s.makeReadyNoCharge(nt)
	return nt
}

func (t *Thread) mustBeRunning(op string) {
	if t.s.current != t || t.state != Running {
		panic(fmt.Sprintf("threads: %s called on %s which is %s (current=%v)",
			op, t.name, t.state, currentName(t.s)))
	}
}

func currentName(s *Scheduler) string {
	if s.current == nil {
		return "<idle>"
	}
	return s.current.name
}

// Charge advances virtual time by d and attributes it to category c on the
// node's accounting. Other nodes' events proceed during the charge; no other
// thread on this node can run (the CPU is held).
func (t *Thread) Charge(c machine.Category, d time.Duration) {
	if d == 0 {
		return
	}
	t.s.node.Acct.Add(c, d)
	t.p.Sleep(d)
	if t.s.node.M.Trace != nil {
		t.s.node.M.Emit(t.s.node.ID, "charge", c.String(), d)
	}
}

// Compute charges application CPU time.
func (t *Thread) Compute(d time.Duration) { t.Charge(machine.CatCPU, d) }

// ChargeFlops charges n floating-point operations at the configured rate.
func (t *Thread) ChargeFlops(n int) {
	t.Charge(machine.CatCPU, time.Duration(n)*t.Cfg().FlopCost)
}

// chargeSync charges one synchronization operation (lock/unlock/signal/sync
// variable access) and counts it.
func (t *Thread) chargeSync() {
	t.s.node.Acct.Count(machine.CntSyncOp, 1)
	t.Charge(machine.CatThreadSync, t.Cfg().SyncOp)
}

// ChargeSyncOp exposes chargeSync to runtimes that implement their own
// synchronization objects but want them accounted identically.
func (t *Thread) ChargeSyncOp() { t.chargeSync() }

// chargeSwitch charges one context switch and counts it.
//
// Accounting policy (matches the thread-op counts the paper reports in
// Table 4): a switch is charged only on a genuine thread-to-thread CPU
// handoff — a yield to a ready peer, or a block that dispatches a ready
// peer. Dispatch after a thread exits (no context to save) and dispatch out
// of the scheduler's idle loop (no context to restore from) are free.
func (t *Thread) chargeSwitch() {
	t.s.node.Acct.Count(machine.CntContextSwitch, 1)
	t.Charge(machine.CatThreadMgmt, t.Cfg().ContextSwitch)
	if t.s.node.M.Trace != nil {
		t.s.node.M.Emit(t.s.node.ID, "switch", t.name, 0)
	}
}

// Yield gives up the CPU if another thread is ready, charging one context
// switch; with no other ready thread it returns immediately at zero cost
// (the paper's package only pays on a real switch).
func (t *Thread) Yield() {
	t.mustBeRunning("Yield")
	next := t.s.popReady()
	if next == nil {
		return
	}
	t.state = Ready
	t.s.ready = append(t.s.ready, t)
	t.chargeSwitch()
	t.s.runNext(next)
	t.p.Park()
	t.state = Running
}

// Block suspends the thread until MakeReady is called on it. The caller is
// responsible for having registered the thread somewhere it will be woken
// from (mutex waiter list, sync variable, message arrival list). A context
// switch is charged if another thread takes over.
func (t *Thread) Block() {
	t.mustBeRunning("Block")
	t.state = Blocked
	if next := t.s.popReady(); next != nil {
		t.chargeSwitch()
		t.s.runNext(next)
	} else {
		t.s.current = nil
	}
	t.p.Park()
	t.state = Running
}

// runNext installs next as the running thread and unparks its process.
func (s *Scheduler) runNext(next *Thread) {
	next.state = Running
	s.current = next
	next.p.Unpark()
}

// makeReadyNoCharge enqueues a freshly created thread (state Ready via zero
// value quirk: new threads report Ready before first dispatch) without
// charging a context switch, dispatching immediately if the node is idle.
func (s *Scheduler) makeReadyNoCharge(t *Thread) {
	if s.current == nil {
		s.runNext(t)
		return
	}
	t.state = Ready
	s.ready = append(s.ready, t)
}

// MakeReady marks a blocked thread runnable. If the node is idle the thread
// is dispatched immediately (paying its context switch upon resumption);
// otherwise it joins the ready queue. Safe to call from event callbacks
// (message arrivals) and from other threads on the same node.
func (s *Scheduler) MakeReady(t *Thread) {
	switch t.state {
	case Dead:
		panic("threads: MakeReady on dead thread " + t.name)
	case Running:
		panic("threads: MakeReady on running thread " + t.name)
	case Ready:
		return // already queued (benign double wake)
	}
	if s.current == nil {
		s.runNext(t)
		return
	}
	t.state = Ready
	s.ready = append(s.ready, t)
}

// exit terminates the thread, dispatching the next ready thread if any.
func (t *Thread) exit() {
	t.mustBeRunning("exit")
	t.state = Dead
	t.s.nlive--
	if next := t.s.popReady(); next != nil {
		t.s.runNext(next)
	} else {
		t.s.current = nil
	}
	// The sim proc returns after this, handing control to the engine.
}
