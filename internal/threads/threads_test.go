package threads

import (
	"testing"
	"time"

	"repro/internal/machine"
)

// testRig builds a 1-node machine with round-number costs so expectations
// are easy to compute by hand.
func testRig() (*machine.Machine, *Scheduler) {
	cfg := machine.Config{
		Name:          "test",
		ThreadCreate:  5 * time.Microsecond,
		ContextSwitch: 6 * time.Microsecond,
		SyncOp:        400 * time.Nanosecond,
		FlopCost:      25 * time.Nanosecond,
	}
	m := machine.New(cfg, 1)
	return m, NewScheduler(m.Node(0))
}

func TestSingleThreadRuns(t *testing.T) {
	m, s := testRig()
	ran := false
	s.Start("main", func(th *Thread) {
		th.Compute(10 * time.Microsecond)
		ran = true
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("thread never ran")
	}
	if got := m.Node(0).Acct.Get(machine.CatCPU); got != 10*time.Microsecond {
		t.Fatalf("cpu bucket %v", got)
	}
	if m.Eng.Now() != 10*time.Microsecond {
		t.Fatalf("virtual time %v", m.Eng.Now())
	}
}

func TestSpawnChargesCreate(t *testing.T) {
	m, s := testRig()
	childRan := false
	s.Start("main", func(th *Thread) {
		th.Spawn("child", func(c *Thread) { childRan = true })
		th.Yield() // switch to the child
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !childRan {
		t.Fatal("child never ran")
	}
	acct := m.Node(0).Acct
	if n := acct.Counter(machine.CntThreadCreate); n != 1 {
		t.Fatalf("creates = %d", n)
	}
	if n := acct.Counter(machine.CntContextSwitch); n != 1 {
		t.Fatalf("switches = %d, want 1", n)
	}
	if got := acct.Get(machine.CatThreadMgmt); got != 5*time.Microsecond+6*time.Microsecond {
		t.Fatalf("thread-mgmt bucket %v", got)
	}
}

func TestYieldNoOtherThreadIsFree(t *testing.T) {
	m, s := testRig()
	s.Start("main", func(th *Thread) {
		th.Yield()
		th.Yield()
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if n := m.Node(0).Acct.Counter(machine.CntContextSwitch); n != 0 {
		t.Fatalf("lone yield charged %d switches", n)
	}
	if m.Eng.Now() != 0 {
		t.Fatalf("time advanced to %v", m.Eng.Now())
	}
}

func TestYieldRoundRobin(t *testing.T) {
	m, s := testRig()
	var order []string
	s.Start("a", func(th *Thread) {
		for i := 0; i < 3; i++ {
			order = append(order, "a")
			th.Yield()
		}
	})
	s.Start("b", func(th *Thread) {
		for i := 0; i < 3; i++ {
			order = append(order, "b")
			th.Yield()
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "a", "b", "a", "b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v", order)
		}
	}
}

func TestNonPreemption(t *testing.T) {
	// A computing thread must not be preempted by a ready peer.
	m, s := testRig()
	var order []string
	s.Start("long", func(th *Thread) {
		th.Compute(100 * time.Microsecond)
		order = append(order, "long-done")
	})
	s.Start("short", func(th *Thread) {
		order = append(order, "short")
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if order[0] != "long-done" {
		t.Fatalf("preempted: %v", order)
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	m, s := testRig()
	var mu Mutex
	var inCrit int
	var maxIn int
	body := func(th *Thread) {
		mu.Lock(th)
		inCrit++
		if inCrit > maxIn {
			maxIn = inCrit
		}
		th.Compute(5 * time.Microsecond)
		th.Yield() // release the CPU inside the critical section
		inCrit--
		mu.Unlock(th)
	}
	for i := 0; i < 4; i++ {
		s.Start("w", body)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if maxIn != 1 {
		t.Fatalf("mutual exclusion violated: %d threads inside", maxIn)
	}
	acct := m.Node(0).Acct
	if n := acct.Counter(machine.CntSyncOp); n != 8 {
		t.Fatalf("sync ops = %d, want 8 (4 locks + 4 unlocks)", n)
	}
	if n := acct.Counter(machine.CntLockContended); n == 0 {
		t.Fatal("expected contended acquisitions")
	}
}

func TestMutexFIFOHandoff(t *testing.T) {
	m, s := testRig()
	var mu Mutex
	var order []string
	s.Start("holder", func(th *Thread) {
		mu.Lock(th)
		th.Compute(10 * time.Microsecond)
		mu.Unlock(th)
	})
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		s.Start(name, func(th *Thread) {
			mu.Lock(th)
			order = append(order, name)
			mu.Unlock(th)
		})
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"w1", "w2", "w3"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("handoff order %v", order)
		}
	}
}

func TestTryLock(t *testing.T) {
	m, s := testRig()
	var mu Mutex
	var got []bool
	s.Start("main", func(th *Thread) {
		got = append(got, mu.TryLock(th)) // true
		got = append(got, mu.TryLock(th)) // false (already held)
		mu.Unlock(th)
		got = append(got, mu.TryLock(th)) // true again
		mu.Unlock(th)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !got[0] || got[1] || !got[2] {
		t.Fatalf("TryLock sequence %v", got)
	}
}

func TestCondSignal(t *testing.T) {
	m, s := testRig()
	var mu Mutex
	cond := Cond{M: &mu}
	ready := false
	var woke time.Duration
	s.Start("waiter", func(th *Thread) {
		mu.Lock(th)
		for !ready {
			cond.Wait(th)
		}
		woke = time.Duration(th.Now())
		mu.Unlock(th)
	})
	s.Start("signaler", func(th *Thread) {
		th.Compute(50 * time.Microsecond)
		mu.Lock(th)
		ready = true
		cond.Signal(th)
		mu.Unlock(th)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if woke < 50*time.Microsecond {
		t.Fatalf("waiter woke too early: %v", woke)
	}
}

func TestCondBroadcast(t *testing.T) {
	m, s := testRig()
	var mu Mutex
	cond := Cond{M: &mu}
	ready := false
	woken := 0
	for i := 0; i < 5; i++ {
		s.Start("waiter", func(th *Thread) {
			mu.Lock(th)
			for !ready {
				cond.Wait(th)
			}
			woken++
			mu.Unlock(th)
		})
	}
	s.Start("caster", func(th *Thread) {
		th.Compute(time.Microsecond)
		mu.Lock(th)
		ready = true
		cond.Broadcast(th)
		mu.Unlock(th)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 5 {
		t.Fatalf("only %d of 5 waiters woke", woken)
	}
}

func TestSyncVarWriteOnce(t *testing.T) {
	m, s := testRig()
	var sv SyncVar
	var got any
	s.Start("reader", func(th *Thread) { got = sv.Read(th) })
	s.Start("writer", func(th *Thread) {
		th.Compute(20 * time.Microsecond)
		sv.Write(th, 42)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("read %v", got)
	}
}

func TestSyncVarDoubleWritePanics(t *testing.T) {
	m, s := testRig()
	var sv SyncVar
	var recovered any
	s.Start("writer", func(th *Thread) {
		sv.Write(th, 1)
		defer func() { recovered = recover() }()
		sv.Write(th, 2)
	})
	_ = m.Run()
	if recovered == nil {
		t.Fatal("double write did not panic")
	}
}

func TestSyncVarReadAfterWriteImmediate(t *testing.T) {
	m, s := testRig()
	var sv SyncVar
	var got any
	s.Start("main", func(th *Thread) {
		sv.Write(th, "x")
		got = sv.Read(th)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "x" {
		t.Fatalf("got %v", got)
	}
}

func TestWaitGroupJoin(t *testing.T) {
	m, s := testRig()
	var wg WaitGroup
	wg.Add(3)
	sum := 0
	joined := false
	s.Start("main", func(th *Thread) {
		for i := 1; i <= 3; i++ {
			i := i
			th.Spawn("worker", func(w *Thread) {
				w.Compute(time.Duration(i) * time.Microsecond)
				sum += i
				wg.Done(w)
			})
		}
		wg.Wait(th)
		joined = true
		if sum != 6 {
			t.Errorf("sum = %d before join returned", sum)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !joined {
		t.Fatal("Wait never returned")
	}
}

func TestBlockMakeReadyAcrossEvent(t *testing.T) {
	// A thread blocked with no peer leaves the node idle; an engine event
	// (standing in for a message arrival) wakes it. Dispatch out of the idle
	// loop is free under the accounting policy (no context to restore from).
	m, s := testRig()
	var th0 *Thread
	var resumed time.Duration
	th0 = s.Start("sleeper", func(th *Thread) {
		th.Block()
		resumed = time.Duration(th.Now())
	})
	m.Eng.At(40*time.Microsecond, func() { s.MakeReady(th0) })
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if resumed != 40*time.Microsecond {
		t.Fatalf("resumed at %v, want 40µs", resumed)
	}
	if n := m.Node(0).Acct.Counter(machine.CntContextSwitch); n != 0 {
		t.Fatalf("switches = %d, want 0 (idle-wake is free)", n)
	}
}

func TestChargeFlops(t *testing.T) {
	m, s := testRig()
	s.Start("main", func(th *Thread) { th.ChargeFlops(1000) })
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Node(0).Acct.Get(machine.CatCPU); got != 25*time.Microsecond {
		t.Fatalf("1000 flops charged %v, want 25µs", got)
	}
}

func TestSchedulerLiveCount(t *testing.T) {
	m, s := testRig()
	s.Start("main", func(th *Thread) {
		if s.Live() != 1 {
			t.Errorf("live = %d, want 1", s.Live())
		}
		th.Spawn("c", func(*Thread) {})
		if s.Live() != 2 {
			t.Errorf("live = %d, want 2", s.Live())
		}
		th.Yield()
		if s.Live() != 1 {
			t.Errorf("live after child exit = %d, want 1", s.Live())
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Live() != 0 {
		t.Fatalf("live at end = %d", s.Live())
	}
}

func TestTwoNodesIndependentSchedulers(t *testing.T) {
	cfg := machine.Config{Name: "test", ContextSwitch: 6 * time.Microsecond}
	m := machine.New(cfg, 2)
	s0 := NewScheduler(m.Node(0))
	s1 := NewScheduler(m.Node(1))
	var t0, t1 time.Duration
	s0.Start("a", func(th *Thread) {
		th.Charge(machine.CatCPU, 30*time.Microsecond)
		t0 = time.Duration(th.Now())
	})
	s1.Start("b", func(th *Thread) {
		th.Charge(machine.CatCPU, 10*time.Microsecond)
		t1 = time.Duration(th.Now())
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// Nodes compute in parallel: total virtual time is the max, not the sum.
	if m.Eng.Now() != 30*time.Microsecond {
		t.Fatalf("end time %v, want 30µs (parallel nodes)", m.Eng.Now())
	}
	if t0 != 30*time.Microsecond || t1 != 10*time.Microsecond {
		t.Fatalf("t0=%v t1=%v", t0, t1)
	}
}
