package machine

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Machine is a simulated multicomputer: a discrete-event engine, a cost
// configuration, and a set of nodes.
type Machine struct {
	Eng   *sim.Engine
	Cfg   Config
	nodes []*Node

	// Trace, when non-nil, receives instrumentation callbacks from the
	// layers above (kind is "send", "recv", "spawn", "switch", or "charge";
	// dur is non-zero for charges). Install via the trace package's Attach.
	Trace func(at time.Duration, node int, kind, label string, dur time.Duration)
}

// Emit forwards an instrumentation event to the tracer, if one is installed.
func (m *Machine) Emit(node int, kind, label string, dur time.Duration) {
	if m.Trace != nil {
		m.Trace(m.Eng.Now(), node, kind, label, dur)
	}
}

// New builds a machine with n nodes over a fresh engine.
func New(cfg Config, n int) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if n <= 0 {
		panic("machine: need at least one node")
	}
	m := &Machine{Eng: sim.New(), Cfg: cfg}
	for i := 0; i < n; i++ {
		m.nodes = append(m.nodes, &Node{
			ID:   i,
			M:    m,
			Acct: newAccounting(),
		})
	}
	return m
}

// NumNodes returns the number of nodes.
func (m *Machine) NumNodes() int { return len(m.nodes) }

// Node returns node i.
func (m *Machine) Node(i int) *Node {
	if i < 0 || i >= len(m.nodes) {
		panic(fmt.Sprintf("machine: node %d out of range [0,%d)", i, len(m.nodes)))
	}
	return m.nodes[i]
}

// Nodes returns all nodes in ID order.
func (m *Machine) Nodes() []*Node { return m.nodes }

// Run drives the simulation to completion. It returns an error if the
// simulation deadlocks (parked processes with an empty event queue).
func (m *Machine) Run() error { return m.Eng.Run() }

// Snapshot returns a merged accounting snapshot across all nodes.
func (m *Machine) Snapshot() Snapshot {
	snaps := make([]Snapshot, 0, len(m.nodes))
	for _, n := range m.nodes {
		snaps = append(snaps, n.Acct.Snapshot())
	}
	return MergeSnapshots(snaps...)
}

// Packet is a network-level message in flight. Payload is opaque to the
// machine layer; the messaging layers (am, mpl, nexus) define its contents.
// Size is the modelled wire size in bytes, used only for reporting — timing
// charges are made explicitly by the messaging layer.
type Packet struct {
	Src, Dst int
	Size     int
	Payload  any
}

// Node is one processor of the multicomputer. The messaging layer installs
// OnArrival to be notified (inside an event callback, at the virtual arrival
// instant) when a packet lands in the node's inbound queue.
type Node struct {
	ID   int
	M    *Machine
	Acct *Accounting

	inbox []Packet

	// OnArrival, if non-nil, runs after each packet is appended to the
	// inbox. It executes in event-callback context: it must not sleep or
	// block, only mark threads runnable.
	OnArrival func()
}

// Cfg returns the machine's cost configuration.
func (n *Node) Cfg() Config { return n.M.Cfg }

// InboxLen reports the number of undelivered packets queued at the node.
func (n *Node) InboxLen() int { return len(n.inbox) }

// PopInbox removes and returns the oldest queued packet. ok is false when
// the inbox is empty.
func (n *Node) PopInbox() (pkt Packet, ok bool) {
	if len(n.inbox) == 0 {
		return Packet{}, false
	}
	pkt = n.inbox[0]
	// Slide rather than re-slice forever; inboxes stay small.
	copy(n.inbox, n.inbox[1:])
	n.inbox = n.inbox[:len(n.inbox)-1]
	return pkt, true
}

// Send puts a packet on the wire from node n to dst, arriving after the
// configured wire latency plus extraWire (e.g. serialization time of a bulk
// payload on a slower path). Sender-side CPU costs must already have been
// charged by the caller; Send itself consumes no CPU.
//
// Delivery order between a given (src,dst) pair is FIFO because latency is
// uniform and the event queue breaks ties in schedule order.
func (n *Node) Send(dst int, extraWire time.Duration, size int, payload any) {
	m := n.M
	target := m.Node(dst)
	m.Emit(n.ID, "send", fmt.Sprintf("->n%d %dB", dst, size), 0)
	pkt := Packet{Src: n.ID, Dst: dst, Size: size, Payload: payload}
	m.Eng.After(m.Cfg.WireLatency+extraWire, func() {
		target.inbox = append(target.inbox, pkt)
		if target.OnArrival != nil {
			target.OnArrival()
		}
	})
}

// Loopback enqueues a packet to the node itself with zero latency. Some
// runtimes route node-local operations through the same handler path to keep
// semantics uniform; the machine model charges no wire time for them.
func (n *Node) Loopback(size int, payload any) {
	pkt := Packet{Src: n.ID, Dst: n.ID, Size: size, Payload: payload}
	n.M.Eng.After(0, func() {
		n.inbox = append(n.inbox, pkt)
		if n.OnArrival != nil {
			n.OnArrival()
		}
	})
}
