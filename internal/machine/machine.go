package machine

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/transport/simnet"
	"repro/internal/wire"
)

// Machine is a multicomputer: an execution backend, a cost configuration,
// and a set of nodes. New builds it over the calibrated discrete-event
// simulator; NewWithBackend accepts any transport backend (the live backend
// runs the same machine on real goroutines with wall-clock timing).
type Machine struct {
	// Eng is the discrete-event engine when the machine runs on the simnet
	// backend (tests schedule raw events and read virtual time through it).
	// It is nil on other backends.
	Eng *sim.Engine
	Cfg Config

	be    transport.Backend
	nodes []*Node

	// direct is be's allocation-free delivery fast path, nil when the
	// backend delivers through modelled-latency events (the simulator).
	direct transport.DirectDeliverer

	// shard is be's sharded message plane, nil on single-address-space
	// backends. When set, Send serializes packets for non-local nodes and
	// wireDec (installed by the messaging layer) reconstructs arriving ones.
	shard   transport.ShardBackend
	wireDec func(src, dst int, b []byte) any

	// slots is be's zero-copy slot fast path (the netlive shm rings), nil
	// when the backend has none; Send offers every cross-shard payload here
	// first and falls back to the pooled-frame path on refusal.
	slots transport.SlotSender

	// mets is be's wall-clock metrics seam, nil on backends without one (the
	// simulator); stats is be's cross-shard stats control plane, nil off the
	// netlive backend.
	mets  transport.MetricsSource
	stats transport.StatsPlane

	// Trace, when non-nil, receives instrumentation callbacks from the
	// layers above (kind is "send", "recv", "spawn", "switch", or "charge";
	// dur is non-zero for charges). Install via the trace package's Attach.
	Trace func(at time.Duration, node int, kind, label string, dur time.Duration)
}

// Emit forwards an instrumentation event to the tracer, if one is installed.
func (m *Machine) Emit(node int, kind, label string, dur time.Duration) {
	if m.Trace != nil {
		m.Trace(m.be.Now(), node, kind, label, dur)
	}
}

// New builds a machine with n nodes over a fresh discrete-event simulator.
func New(cfg Config, n int) *Machine {
	be := simnet.New(n)
	return NewWithBackend(cfg, n, be)
}

// NewWithBackend builds a machine with n nodes over an explicit transport
// backend.
func NewWithBackend(cfg Config, n int, be transport.Backend) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if n <= 0 {
		panic("machine: need at least one node")
	}
	if be.NumNodes() != n {
		panic(fmt.Sprintf("machine: backend has %d nodes, machine wants %d", be.NumNodes(), n))
	}
	m := &Machine{Cfg: cfg, be: be}
	if sb, ok := be.(*simnet.Backend); ok {
		m.Eng = sb.Engine()
	}
	m.direct, _ = be.(transport.DirectDeliverer)
	if sb, ok := be.(transport.ShardBackend); ok {
		m.shard = sb
		sb.SetRemoteHandler(m.remoteArrival)
		m.slots, _ = be.(transport.SlotSender)
	}
	m.mets, _ = be.(transport.MetricsSource)
	if sp, ok := be.(transport.StatsPlane); ok {
		m.stats = sp
		sp.SetStatsProvider(m.localStatsPayload)
	}
	for i := 0; i < n; i++ {
		nd := &Node{
			ID:   i,
			M:    m,
			Acct: newAccounting(),
		}
		if m.mets != nil {
			nd.Met = m.mets.NodeMetrics(i)
		}
		// One long-lived arrival closure per node: the direct-delivery path
		// hands this same func to the backend on every send, so a delivery
		// constructs nothing.
		nd.notify = func() {
			if nd.OnArrival != nil {
				nd.OnArrival()
			}
		}
		m.nodes = append(m.nodes, nd)
	}
	return m
}

// Backend returns the execution backend the machine runs on.
func (m *Machine) Backend() transport.Backend { return m.be }

// WirePayload is implemented by packet payloads that can cross an
// address-space boundary on a sharded backend (the am layer's Msg does).
// EncodeWire consumes the payload: any pooled resources it holds are
// released, and the caller must not touch it afterwards.
type WirePayload interface {
	// WireLen returns the serialized length.
	WireLen() int
	// EncodeWire serializes into b (len(b) >= WireLen()) and returns the
	// bytes written, consuming the payload.
	EncodeWire(b []byte) int
}

// SetWireDecoder installs the packet-payload decoder used for frames
// arriving from peer shards. The messaging layer that defines the payload
// type installs it (am.NewNet does); it is a no-op concern on
// single-address-space backends.
func (m *Machine) SetWireDecoder(dec func(src, dst int, b []byte) any) { m.wireDec = dec }

// remoteArrival lands a packet received from a peer shard: decode the
// payload, enqueue, and wake the destination through the backend's direct
// path. It runs on a backend reader goroutine; the inbox is thread-safe and
// the notify closure goes through the destination's delivery worker.
func (m *Machine) remoteArrival(src, dst, size int, enc []byte) {
	if m.wireDec == nil {
		panic(fmt.Sprintf("machine: packet from shard peer for node %d but no wire decoder installed", dst))
	}
	nd := m.Node(dst)
	nd.pushInbox(Packet{Src: src, Dst: dst, Size: size, Payload: m.wireDec(src, dst, enc)})
	m.direct.DeliverDirect(dst, nd.notify)
}

// Now returns the backend clock: virtual time on the simulator, wall-clock
// time on the live backend.
func (m *Machine) Now() time.Duration { return m.be.Now() }

// AfterNode schedules fn to run in node's execution context after delay d.
func (m *Machine) AfterNode(node int, d time.Duration, fn func()) {
	m.be.After(node, d, fn)
}

// NumNodes returns the number of nodes.
func (m *Machine) NumNodes() int { return len(m.nodes) }

// Node returns node i.
func (m *Machine) Node(i int) *Node {
	if i < 0 || i >= len(m.nodes) {
		panic(fmt.Sprintf("machine: node %d out of range [0,%d)", i, len(m.nodes)))
	}
	return m.nodes[i]
}

// Nodes returns all nodes in ID order.
func (m *Machine) Nodes() []*Node { return m.nodes }

// Run drives the machine to completion. It returns an error if the program
// cannot make progress (simulator: parked processes with an empty event
// queue; live: watchdog expiry).
func (m *Machine) Run() error { return m.be.Run() }

// Snapshot returns a merged accounting snapshot across all nodes.
func (m *Machine) Snapshot() Snapshot {
	snaps := make([]Snapshot, 0, len(m.nodes))
	for _, n := range m.nodes {
		snaps = append(snaps, n.Acct.Snapshot())
	}
	return MergeSnapshots(snaps...)
}

// Packet is a network-level message in flight. Payload is opaque to the
// machine layer; the messaging layers (am, mpl, nexus) define its contents.
// Size is the modelled wire size in bytes, used only for reporting — timing
// charges are made explicitly by the messaging layer.
type Packet struct {
	Src, Dst int
	Size     int
	Payload  any
}

// Node is one processor of the multicomputer. The messaging layer installs
// OnArrival to be notified (in the node's execution context, at the arrival
// instant) when a packet lands in the node's inbound queue.
type Node struct {
	ID   int
	M    *Machine
	Acct *Accounting

	// Met is the node's wall-clock metrics registry, nil on backends without
	// one (the simulator). Layers that record into it — the core RMI path,
	// for one — must nil-check; the nil path is the 0 allocs/op contract.
	Met *metrics.Registry

	// inboxMu guards inbox. On the simulator it is uncontended (one
	// goroutine runs at a time); on the live backend it is what lets a
	// sender enqueue directly from its own goroutine while the receiver
	// polls concurrently. The inbox is a head-index ring: pops are O(1)
	// instead of sliding the whole queue, so deep inboxes (a node being
	// blasted by many senders) drain in linear, not quadratic, time.
	inboxMu sync.Mutex
	inbox   wire.Ring[Packet] //mpmdvet:guard inboxMu

	// notify wakes the node's reception; built once at machine construction
	// and reused by every direct delivery.
	notify func()

	// OnArrival, if non-nil, runs in the node's execution context after a
	// packet is appended to the inbox. It must not sleep or block, only
	// mark threads runnable. On the live backend consecutive arrivals may
	// be coalesced into fewer OnArrival calls; the am layer's wait loops
	// are already robust to that (waiters re-check the inbox and re-arm).
	OnArrival func()
}

// Cfg returns the machine's cost configuration.
func (n *Node) Cfg() Config { return n.M.Cfg }

// InboxLen reports the number of undelivered packets queued at the node.
func (n *Node) InboxLen() int {
	n.inboxMu.Lock()
	defer n.inboxMu.Unlock()
	return n.inbox.Len()
}

// pushInbox appends a packet to the inbound queue. Safe to call from any
// goroutine (live senders enqueue directly).
//
//mpmd:hotpath
func (n *Node) pushInbox(pkt Packet) {
	n.inboxMu.Lock()
	n.inbox.Push(pkt)
	n.inboxMu.Unlock()
}

// PopInbox removes and returns the oldest queued packet. ok is false when
// the inbox is empty.
//
//mpmd:hotpath
func (n *Node) PopInbox() (pkt Packet, ok bool) {
	n.inboxMu.Lock()
	defer n.inboxMu.Unlock()
	return n.inbox.Pop()
}

// Send puts a packet on the wire from node n to dst, arriving after the
// configured wire latency plus extraWire (e.g. serialization time of a bulk
// payload on a slower path); the live backend ignores the modelled latency
// and delivers as fast as the hardware allows. Sender-side CPU costs must
// already have been charged by the caller; Send itself consumes no CPU.
//
// Delivery order between a given (src,dst) pair is FIFO for equal latencies:
// on the simulator because the event queue breaks ties in schedule order, on
// the live backend because enqueue runs in send order.
//
//mpmd:hotpath
func (n *Node) Send(dst int, extraWire time.Duration, size int, payload any) {
	m := n.M
	target := m.Node(dst)
	if m.Trace != nil {
		m.Emit(n.ID, "send", fmt.Sprintf("->n%d %dB", dst, size), 0) //mpmdvet:ignore hotpath trace-gated: only runs when m.Trace is enabled
	}
	if m.shard != nil && !m.shard.IsLocal(dst) {
		// Cross-shard: the destination lives in another address space, so
		// the payload must actually serialize — the in-memory fast path
		// cannot carry it. Encode into a pooled frame (ownership passes to
		// the backend's per-peer writer) and ship it. Local sends below keep
		// the direct in-memory path.
		wp, ok := payload.(WirePayload)
		if !ok {
			panic(fmt.Sprintf("machine: packet payload %T for remote node %d is not wire-serializable", payload, dst))
		}
		// Zero-copy fast path first: the backend marshals wp straight into a
		// transport slot (shm ring) when the destination shard has one. The
		// WirePayload-to-FrameMarshaler conversion is interface-to-interface
		// (identical method sets), so nothing boxes or allocates here.
		if m.slots != nil && m.slots.DeliverSlot(n.ID, dst, size, wp) {
			return
		}
		f := wire.Get(wp.WireLen())
		wp.EncodeWire(f.Bytes())
		m.shard.DeliverRemote(n.ID, dst, size, f)
		return
	}
	pkt := Packet{Src: n.ID, Dst: dst, Size: size, Payload: payload}
	if m.direct != nil {
		// Immediate-delivery backend: enqueue here (same ordering as the
		// generic path — the backend would run enqueue inline anyway) and
		// hand over the node's long-lived notify closure. No closures are
		// constructed, so the warm send path does not allocate.
		target.pushInbox(pkt)
		m.direct.DeliverDirect(dst, target.notify)
		return
	}
	m.be.Deliver(dst, m.Cfg.WireLatency+extraWire,
		func() { target.pushInbox(pkt) }, //mpmdvet:ignore hotpath simulator backend only; live backends take the direct path above
		target.notify)
}

// Loopback enqueues a packet to the node itself with zero latency. Some
// runtimes route node-local operations through the same handler path to keep
// semantics uniform; the machine model charges no wire time for them.
//
//mpmd:hotpath
func (n *Node) Loopback(size int, payload any) {
	pkt := Packet{Src: n.ID, Dst: n.ID, Size: size, Payload: payload}
	m := n.M
	if m.direct != nil {
		n.pushInbox(pkt)
		m.direct.DeliverDirect(n.ID, n.notify)
		return
	}
	m.be.Deliver(n.ID, 0,
		func() { n.pushInbox(pkt) }, //mpmdvet:ignore hotpath simulator backend only; live backends take the direct path above
		n.notify)
}
