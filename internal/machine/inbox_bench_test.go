package machine

import "testing"

// BenchmarkInboxDrain10k fills a node's inbox 10k deep and drains it — the
// regression guard for the O(n²) shift-on-pop queue this replaced (PopInbox
// used to slide the entire remaining queue on every pop, so a 10k-deep drain
// performed ~50M element copies; the head-index ring does 10k).
func BenchmarkInboxDrain10k(b *testing.B) {
	const depth = 10_000
	m := New(SP1997(), 1)
	n := m.Node(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < depth; k++ {
			n.pushInbox(Packet{Src: 0, Dst: 0, Size: k})
		}
		for k := 0; k < depth; k++ {
			pkt, ok := n.PopInbox()
			if !ok || pkt.Size != k {
				b.Fatalf("pop %d: ok=%v size=%d (FIFO broken)", k, ok, pkt.Size)
			}
		}
	}
}

// TestInboxRingFIFO pins FIFO order and emptiness reporting across
// interleaved push/pop bursts that force the ring to wrap and grow.
func TestInboxRingFIFO(t *testing.T) {
	m := New(SP1997(), 1)
	n := m.Node(0)
	next, want := 0, 0
	for round := 0; round < 40; round++ {
		for i := 0; i <= round%11; i++ {
			n.pushInbox(Packet{Size: next})
			next++
		}
		for n.InboxLen() > round%5 {
			pkt, ok := n.PopInbox()
			if !ok || pkt.Size != want {
				t.Fatalf("pop: ok=%v size=%d want %d", ok, pkt.Size, want)
			}
			want++
		}
	}
	for {
		pkt, ok := n.PopInbox()
		if !ok {
			break
		}
		if pkt.Size != want {
			t.Fatalf("drain: size=%d want %d", pkt.Size, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("drained %d packets, pushed %d", want, next)
	}
	if _, ok := n.PopInbox(); ok {
		t.Fatal("PopInbox on empty inbox reported ok")
	}
}
