// Package machine models a distributed-memory multicomputer: a set of nodes,
// each with a single CPU running cooperative threads, connected by a network
// with LogP-style costs (send overhead, wire latency, per-byte gap, receive
// overhead).
//
// All costs are virtual time charged against the discrete-event engine in
// package sim. The stock profile, SP1997, is calibrated from the measured
// constants reported in Chang et al., "Evaluating the Performance Limitations
// of MPMD Communication" (SC 1997) for an IBM RS/6000 SP running AIX 3.2.5:
// an Active-Messages 0-word round trip of 55 µs, +15 µs per round trip for
// bulk transfers, thread create 5 µs, context switch 6 µs, and 0.4 µs per
// lock/unlock/signal.
package machine

import "time"

// Config holds every primitive cost in the machine model. A Config is a
// plain value: copy it, tweak a field, and build a new Machine to run
// sensitivity studies (the ablation benchmarks do exactly this).
type Config struct {
	// Name identifies the profile in reports.
	Name string

	// Network (LogP-style).

	// SendOverhead is CPU time the sender spends per message (short AM).
	SendOverhead time.Duration
	// RecvOverhead is CPU time the receiver spends per message when it is
	// polled out of the network queue, before the handler body runs.
	RecvOverhead time.Duration
	// WireLatency is the one-way switch/wire latency for any message.
	WireLatency time.Duration
	// BulkExtraSend is additional per-message sender CPU for bulk-transfer
	// messages (DMA setup, pinning); charged once per bulk message.
	BulkExtraSend time.Duration
	// BulkExtraRecv is the receiver-side counterpart of BulkExtraSend.
	BulkExtraRecv time.Duration
	// GapPerByte is the per-payload-byte occupancy of the network interface,
	// charged to the sender (bandwidth = 1/GapPerByte).
	GapPerByte time.Duration

	// Threads package.

	// ThreadCreate is the cost of forking a new thread.
	ThreadCreate time.Duration
	// ContextSwitch is the cost of switching between two ready threads.
	ContextSwitch time.Duration
	// SyncOp is the cost of one lock, unlock, signal, or sync-variable
	// operation.
	SyncOp time.Duration

	// CPU / memory.

	// FlopCost is the time per floating-point operation charged by the
	// application kernels (POWER2-era sustained rate).
	FlopCost time.Duration
	// MemCopyPerByte is the cost per byte of a memory-to-memory copy
	// (buffer staging, unmarshal copies).
	MemCopyPerByte time.Duration
	// MarshalPerArg is the cost of invoking one serialization method
	// (CC++ calls a method per argument; only partially inlinable).
	MarshalPerArg time.Duration
	// StubLookup is the warm-path method-stub cache lookup cost.
	StubLookup time.Duration
	// LocalGPDeref is the overhead of touching *local* data through a
	// global pointer in the MPMD runtime (locality check + indirection).
	LocalGPDeref time.Duration

	// Messaging-layer alternatives.

	// MPLOverhead is per-side CPU overhead of the IBM MPL reference layer.
	MPLOverhead time.Duration

	// InterruptCost is the kernel cost of delivering a software interrupt to
	// the application on message arrival. The paper's runtime polls instead,
	// "due to the high cost of software interrupts on message arrival on the
	// IBM SP"; the interrupt-driven reception model (an ablation here, future
	// work in the paper) charges this per received message.
	InterruptCost time.Duration

	// Nexus/TCP profile knobs (used when the Nexus transport is selected).

	// NexusPerMsgCPU is per-side protocol-stack CPU per message.
	NexusPerMsgCPU time.Duration
	// NexusLatency is the one-way latency of the TCP path over the switch.
	NexusLatency time.Duration
	// NexusGapPerByte is the per-byte cost on the TCP path.
	NexusGapPerByte time.Duration
}

// SP1997 returns the calibrated IBM SP profile used throughout the paper
// reproduction. See the package comment and DESIGN.md §5 for the derivation
// of each constant.
func SP1997() Config {
	return Config{
		Name: "IBM-SP-AIX325",

		SendOverhead:  3 * time.Microsecond,
		RecvOverhead:  3 * time.Microsecond,
		WireLatency:   21500 * time.Nanosecond, // 0-word RTT = 2*(3+21.5+3) = 55 µs
		BulkExtraSend: 7500 * time.Nanosecond,  // bulk RTT = 55 + 15 µs
		BulkExtraRecv: 0,
		GapPerByte:    25 * time.Nanosecond, // ~40 MB/s

		ThreadCreate:  5 * time.Microsecond,
		ContextSwitch: 6 * time.Microsecond,
		SyncOp:        400 * time.Nanosecond,

		FlopCost:       25 * time.Nanosecond, // ~40 Mflop/s sustained
		MemCopyPerByte: 12 * time.Nanosecond,
		MarshalPerArg:  1 * time.Microsecond,
		StubLookup:     3 * time.Microsecond,
		LocalGPDeref:   300 * time.Nanosecond,

		MPLOverhead: 11250 * time.Nanosecond, // MPL RTT = 2*(11.25+21.5+11.25) = 88 µs

		InterruptCost: 60 * time.Microsecond, // AIX 3.2.5-era software interrupt

		NexusPerMsgCPU:  180 * time.Microsecond,
		NexusLatency:    500 * time.Microsecond,
		NexusGapPerByte: 300 * time.Nanosecond, // ~3.3 MB/s effective TCP path
	}
}

// ShortRTT returns the model's zero-payload short-message round-trip time:
// two messages, each paying send overhead, wire latency, and receive
// overhead. For SP1997 this is 55 µs, matching the paper's AM layer.
func (c Config) ShortRTT() time.Duration {
	oneWay := c.SendOverhead + c.WireLatency + c.RecvOverhead
	return 2 * oneWay
}

// BulkRTT returns the round-trip time of a bulk request of n bytes answered
// by a bulk reply of m bytes.
func (c Config) BulkRTT(n, m int) time.Duration {
	req := c.SendOverhead + c.BulkExtraSend + time.Duration(n)*c.GapPerByte + c.WireLatency + c.RecvOverhead + c.BulkExtraRecv
	rep := c.SendOverhead + c.BulkExtraSend + time.Duration(m)*c.GapPerByte + c.WireLatency + c.RecvOverhead + c.BulkExtraRecv
	return req + rep
}

// Validate reports whether the configuration is self-consistent (all costs
// non-negative, at least one node-facing cost positive). A zero Config is
// valid but degenerate; benchmarks should use a named profile.
func (c Config) Validate() error {
	for _, d := range []time.Duration{
		c.SendOverhead, c.RecvOverhead, c.WireLatency, c.BulkExtraSend,
		c.BulkExtraRecv, c.GapPerByte, c.ThreadCreate, c.ContextSwitch,
		c.SyncOp, c.FlopCost, c.MemCopyPerByte, c.MarshalPerArg,
		c.StubLookup, c.LocalGPDeref, c.MPLOverhead, c.InterruptCost,
		c.NexusPerMsgCPU, c.NexusLatency, c.NexusGapPerByte,
	} {
		if d < 0 {
			return errNegativeCost
		}
	}
	return nil
}

var errNegativeCost = errorString("machine: negative cost in Config")

type errorString string

func (e errorString) Error() string { return string(e) }
