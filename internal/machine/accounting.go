package machine

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Category labels where a node's virtual time went. The set mirrors the
// breakdown bars of Figures 5 and 6 in the paper: cpu, net, thread mgmt,
// thread sync, and (CC++) runtime.
type Category int

const (
	// CatCPU is application computation (flops, local data structure work).
	CatCPU Category = iota
	// CatNet is time spent in the message layer: send/receive overheads,
	// bulk setup, and per-byte occupancy.
	CatNet
	// CatThreadMgmt is thread creation and context switching.
	CatThreadMgmt
	// CatThreadSync is locks, unlocks, signals, and sync-variable operations.
	CatThreadSync
	// CatRuntime is language-runtime overhead: marshalling, stub lookup,
	// buffer management, global-pointer bookkeeping.
	CatRuntime
	numCategories
)

// String returns the label used in reports.
func (c Category) String() string {
	switch c {
	case CatCPU:
		return "cpu"
	case CatNet:
		return "net"
	case CatThreadMgmt:
		return "thread-mgmt"
	case CatThreadSync:
		return "thread-sync"
	case CatRuntime:
		return "runtime"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Categories lists all categories in report order.
func Categories() []Category {
	return []Category{CatNet, CatCPU, CatThreadMgmt, CatThreadSync, CatRuntime}
}

// Counter names used by the instrumentation. Layers bump these via
// Node.Count; the benchmark harness reads them to reconstruct the paper's
// "Yield / Create / Sync" columns and message statistics.
const (
	CntThreadCreate  = "thread.create"
	CntContextSwitch = "thread.switch"
	CntSyncOp        = "thread.sync"
	CntLockContended = "thread.lock.contended"
	CntMsgShort      = "am.msg.short"
	CntMsgBulk       = "am.msg.bulk"
	CntBytesSent     = "am.bytes.sent"
	CntPolls         = "am.polls"
	CntHandlersRun   = "am.handlers"
	CntRMI           = "core.rmi"
	CntRMICold       = "core.rmi.cold"
	CntStubHit       = "tham.stub.hit"
	CntStubMiss      = "tham.stub.miss"
	CntBufReuse      = "tham.buf.reuse"
	CntBufAlloc      = "tham.buf.alloc"
	CntRemoteRead    = "gp.remote.read"
	CntRemoteWrite   = "gp.remote.write"
	CntLocalDeref    = "gp.local.deref"
)

// Accounting accumulates per-category virtual time and named event counters
// for one node. It is manipulated only from inside the simulation (single
// logical thread), so it needs no locking.
type Accounting struct {
	buckets  [numCategories]time.Duration
	counters map[string]int64
}

func newAccounting() *Accounting {
	return &Accounting{counters: make(map[string]int64)}
}

// Add charges d to category c.
func (a *Accounting) Add(c Category, d time.Duration) {
	if c < 0 || c >= numCategories {
		panic("machine: bad category")
	}
	a.buckets[c] += d
}

// Get returns the accumulated time in category c.
func (a *Accounting) Get(c Category) time.Duration { return a.buckets[c] }

// Count adds n to the named counter.
func (a *Accounting) Count(name string, n int64) { a.counters[name] += n }

// Counter returns the value of the named counter (zero if never bumped).
func (a *Accounting) Counter(name string) int64 { return a.counters[name] }

// Counters returns a copy of all counters.
func (a *Accounting) Counters() map[string]int64 {
	out := make(map[string]int64, len(a.counters))
	for k, v := range a.counters {
		out[k] = v
	}
	return out
}

// Reset zeroes all buckets and counters. The benchmark harness resets
// between warm-up and measurement phases.
func (a *Accounting) Reset() {
	a.buckets = [numCategories]time.Duration{}
	a.counters = make(map[string]int64)
}

// Snapshot is a point-in-time copy of an Accounting, used to compute deltas
// over a measured region.
type Snapshot struct {
	Buckets  [numCategories]time.Duration `json:"buckets"`
	Counters map[string]int64             `json:"counters"`
}

// Snapshot captures the current state.
func (a *Accounting) Snapshot() Snapshot {
	return Snapshot{Buckets: a.buckets, Counters: a.Counters()}
}

// Delta returns a snapshot holding the difference now-minus-then.
func (a *Accounting) Delta(then Snapshot) Snapshot {
	d := Snapshot{Counters: make(map[string]int64)}
	for i := range d.Buckets {
		d.Buckets[i] = a.buckets[i] - then.Buckets[i]
	}
	for k, v := range a.counters {
		if dv := v - then.Counters[k]; dv != 0 {
			d.Counters[k] = dv
		}
	}
	for k, v := range then.Counters {
		if _, ok := a.counters[k]; !ok && v != 0 {
			d.Counters[k] = -v
		}
	}
	return d
}

// Get returns the time in category c recorded by the snapshot.
func (s Snapshot) Get(c Category) time.Duration { return s.Buckets[c] }

// Busy returns the sum of all category buckets.
func (s Snapshot) Busy() time.Duration {
	var t time.Duration
	for _, b := range s.Buckets {
		t += b
	}
	return t
}

// String formats the snapshot for debugging.
func (s Snapshot) String() string {
	var b strings.Builder
	for _, c := range Categories() {
		fmt.Fprintf(&b, "%s=%v ", c, s.Buckets[c])
	}
	keys := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d ", k, s.Counters[k])
	}
	return strings.TrimSpace(b.String())
}

// MergeSnapshots sums per-category times and counters across nodes, e.g. to
// build a whole-machine breakdown.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	out := Snapshot{Counters: make(map[string]int64)}
	for _, s := range snaps {
		for i, b := range s.Buckets {
			out.Buckets[i] += b
		}
		for k, v := range s.Counters {
			out.Counters[k] += v
		}
	}
	return out
}
