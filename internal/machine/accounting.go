package machine

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// Category labels where a node's virtual time went. The set mirrors the
// breakdown bars of Figures 5 and 6 in the paper: cpu, net, thread mgmt,
// thread sync, and (CC++) runtime.
type Category int

const (
	// CatCPU is application computation (flops, local data structure work).
	CatCPU Category = iota
	// CatNet is time spent in the message layer: send/receive overheads,
	// bulk setup, and per-byte occupancy.
	CatNet
	// CatThreadMgmt is thread creation and context switching.
	CatThreadMgmt
	// CatThreadSync is locks, unlocks, signals, and sync-variable operations.
	CatThreadSync
	// CatRuntime is language-runtime overhead: marshalling, stub lookup,
	// buffer management, global-pointer bookkeeping.
	CatRuntime
	numCategories
)

// String returns the label used in reports.
//
//mpmd:coldpath report/trace formatter; every hot-path caller is gated on tracing being enabled
func (c Category) String() string {
	switch c {
	case CatCPU:
		return "cpu"
	case CatNet:
		return "net"
	case CatThreadMgmt:
		return "thread-mgmt"
	case CatThreadSync:
		return "thread-sync"
	case CatRuntime:
		return "runtime"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Categories lists all categories in report order.
func Categories() []Category {
	return []Category{CatNet, CatCPU, CatThreadMgmt, CatThreadSync, CatRuntime}
}

// Cnt names one instrumentation counter. The set is closed and the counters
// live in a fixed array, so bumping one on the runtime's hot path is an
// indexed add — no map hashing per message (the string-keyed map this
// replaced was a measurable slice of warm-RMI wall time on the live
// backend). Layers bump these via Node.Acct.Count; the benchmark harness
// reads them to reconstruct the paper's "Yield / Create / Sync" columns and
// message statistics.
type Cnt int

const (
	CntThreadCreate Cnt = iota
	CntContextSwitch
	CntSyncOp
	CntLockContended
	CntMsgShort
	CntMsgBulk
	CntBytesSent
	CntPolls
	CntHandlersRun
	CntRMI
	CntRMICold
	CntStubHit
	CntStubMiss
	CntBufReuse
	CntBufAlloc
	CntRemoteRead
	CntRemoteWrite
	CntLocalDeref
	numCounters
)

// cntNames are the report labels, in declaration order.
var cntNames = [numCounters]string{
	"thread.create", "thread.switch", "thread.sync", "thread.lock.contended",
	"am.msg.short", "am.msg.bulk", "am.bytes.sent", "am.polls", "am.handlers",
	"core.rmi", "core.rmi.cold",
	"tham.stub.hit", "tham.stub.miss", "tham.buf.reuse", "tham.buf.alloc",
	"gp.remote.read", "gp.remote.write", "gp.local.deref",
}

// String returns the label used in reports.
func (c Cnt) String() string {
	if c < 0 || c >= numCounters {
		return fmt.Sprintf("Cnt(%d)", int(c))
	}
	return cntNames[c]
}

// CounterSet holds one value per counter, indexed by Cnt. It marshals as a
// name-keyed JSON object (non-zero entries only) so reports stay readable.
type CounterSet [numCounters]int64

// MarshalJSON implements json.Marshaler.
func (s CounterSet) MarshalJSON() ([]byte, error) {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for c, v := range s {
		if v == 0 {
			continue
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%q:%d", Cnt(c).String(), v)
	}
	b.WriteByte('}')
	return []byte(b.String()), nil
}

// cntByName maps report labels back to counter indices for UnmarshalJSON.
var cntByName = func() map[string]Cnt {
	m := make(map[string]Cnt, numCounters)
	for i, n := range cntNames {
		m[n] = Cnt(i)
	}
	return m
}()

// UnmarshalJSON implements json.Unmarshaler, inverting MarshalJSON's
// name-keyed encoding. Unknown names are ignored (a newer shard talking to an
// older parent just loses counters it does not know, rather than failing the
// whole stats merge). Counters absent from the object are zero.
func (s *CounterSet) UnmarshalJSON(b []byte) error {
	var named map[string]int64
	if err := json.Unmarshal(b, &named); err != nil {
		return err
	}
	*s = CounterSet{}
	for name, v := range named {
		if c, ok := cntByName[name]; ok {
			s[c] = v
		}
	}
	return nil
}

// Accounting accumulates per-category virtual time and event counters for
// one node. Writers are the node's own execution context (one logical thread
// at a time), but every cell is an atomic so a concurrent stats reader — the
// netlive control plane answering a mid-run kStats request, or the expvar
// debug endpoint — can snapshot it without a data race and without putting a
// lock on the charge path.
type Accounting struct {
	buckets  [numCategories]atomic.Int64
	counters [numCounters]atomic.Int64
}

func newAccounting() *Accounting { return &Accounting{} }

// Add charges d to category c.
//
//mpmd:hotpath
func (a *Accounting) Add(c Category, d time.Duration) {
	if c < 0 || c >= numCategories {
		panic("machine: bad category")
	}
	a.buckets[c].Add(int64(d))
}

// Get returns the accumulated time in category c.
func (a *Accounting) Get(c Category) time.Duration { return time.Duration(a.buckets[c].Load()) }

// Count adds n to counter c.
//
//mpmd:hotpath
func (a *Accounting) Count(c Cnt, n int64) { a.counters[c].Add(n) }

// Counter returns the value of counter c.
func (a *Accounting) Counter(c Cnt) int64 { return a.counters[c].Load() }

// Counters returns a copy of all counters.
func (a *Accounting) Counters() CounterSet {
	var s CounterSet
	for i := range a.counters {
		s[i] = a.counters[i].Load()
	}
	return s
}

// Reset zeroes all buckets and counters. The benchmark harness resets
// between warm-up and measurement phases.
func (a *Accounting) Reset() {
	for i := range a.buckets {
		a.buckets[i].Store(0)
	}
	for i := range a.counters {
		a.counters[i].Store(0)
	}
}

// Snapshot is a point-in-time copy of an Accounting, used to compute deltas
// over a measured region.
type Snapshot struct {
	Buckets  [numCategories]time.Duration `json:"buckets"`
	Counters CounterSet                   `json:"counters"`
}

// Snapshot captures the current state.
func (a *Accounting) Snapshot() Snapshot {
	var s Snapshot
	for i := range a.buckets {
		s.Buckets[i] = time.Duration(a.buckets[i].Load())
	}
	s.Counters = a.Counters()
	return s
}

// Delta returns a snapshot holding the difference now-minus-then.
func (a *Accounting) Delta(then Snapshot) Snapshot {
	d := a.Snapshot()
	for i := range d.Buckets {
		d.Buckets[i] -= then.Buckets[i]
	}
	for i := range d.Counters {
		d.Counters[i] -= then.Counters[i]
	}
	return d
}

// Get returns the time in category c recorded by the snapshot.
func (s Snapshot) Get(c Category) time.Duration { return s.Buckets[c] }

// Busy returns the sum of all category buckets.
func (s Snapshot) Busy() time.Duration {
	var t time.Duration
	for _, b := range s.Buckets {
		t += b
	}
	return t
}

// String formats the snapshot for debugging.
func (s Snapshot) String() string {
	var b strings.Builder
	for _, c := range Categories() {
		fmt.Fprintf(&b, "%s=%v ", c, s.Buckets[c])
	}
	for c, v := range s.Counters {
		if v != 0 {
			fmt.Fprintf(&b, "%s=%d ", Cnt(c), v)
		}
	}
	return strings.TrimSpace(b.String())
}

// MergeSnapshots sums per-category times and counters across nodes, e.g. to
// build a whole-machine breakdown.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	out := Snapshot{}
	for _, s := range snaps {
		for i, b := range s.Buckets {
			out.Buckets[i] += b
		}
		for i, v := range s.Counters {
			out.Counters[i] += v
		}
	}
	return out
}
