package machine

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/metrics"
)

// ShardStats is one address space's contribution to the machine-wide stats
// report: which nodes it ran, their merged accounting, and the shard's merged
// wall-clock metrics. It is the JSON payload of the netlive kStats control
// frame — workers serialize one at quiesce (and on request) and ship it to
// the parent.
type ShardStats struct {
	Shard   int              `json:"shard"`
	Nodes   []int            `json:"nodes"`
	Acct    Snapshot         `json:"acct"`
	Metrics metrics.Snapshot `json:"metrics"`
}

// LocalStats reports the stats of the nodes executing in this address space:
// every node on single-process backends, this shard's nodes on netlive. Safe
// to call while the machine runs — accounting cells and metrics instruments
// are individually atomic (the whole is a racy-but-consistent-enough cut, as
// merged reporting wants).
func (m *Machine) LocalStats() ShardStats {
	s := ShardStats{}
	local := make([]int, 0, len(m.nodes))
	if m.shard != nil {
		s.Shard = m.shard.Shard()
		local = append(local, m.shard.LocalNodes()...)
	} else {
		for i := range m.nodes {
			local = append(local, i)
		}
	}
	s.Nodes = local
	snaps := make([]Snapshot, 0, len(local))
	for _, i := range local {
		snaps = append(snaps, m.nodes[i].Acct.Snapshot())
	}
	s.Acct = MergeSnapshots(snaps...)
	if m.mets != nil {
		s.Metrics = m.mets.MetricsSnapshot()
	}
	return s
}

// localStatsPayload serializes LocalStats for the backend's stats control
// plane (the kStats frame body). Installed as the StatsPlane provider at
// machine construction.
func (m *Machine) localStatsPayload() []byte {
	b, err := json.Marshal(m.LocalStats())
	if err != nil {
		// A ShardStats is plain data; marshalling cannot fail short of a bug.
		panic(fmt.Sprintf("machine: stats payload marshal: %v", err))
	}
	return b
}

// Metrics returns the merged wall-clock metrics of this address space's
// backend. ok is false on backends without metrics (the simulator).
func (m *Machine) Metrics() (s metrics.Snapshot, ok bool) {
	if m.mets == nil {
		return metrics.Snapshot{}, false
	}
	return m.mets.MetricsSnapshot(), true
}

// ClusterStats is the machine-wide stats report: every shard's contribution
// plus the merged totals. On single-process backends it has exactly one
// shard; on netlive the parent assembles it from its own LocalStats and the
// kStats payloads received from worker shards.
type ClusterStats struct {
	Shards  []ShardStats     `json:"shards"`
	Acct    Snapshot         `json:"acct"`
	Metrics metrics.Snapshot `json:"metrics"`
}

// ClusterStats assembles the machine-wide report. On sharded backends it must
// be called on the parent after Run returns (workers have reported by then);
// it errors if any worker shard's payload is missing or unparseable, so a
// lost stats frame is a loud failure rather than silently under-counted
// totals.
func (m *Machine) ClusterStats() (ClusterStats, error) {
	cs := ClusterStats{Shards: []ShardStats{m.LocalStats()}}
	if m.stats != nil && m.shard != nil {
		if m.shard.Shard() != 0 {
			return ClusterStats{}, fmt.Errorf("machine: ClusterStats on worker shard %d (parent only)", m.shard.Shard())
		}
		peers := m.stats.PeerStats()
		for shard := 1; shard < m.shard.NumShards(); shard++ {
			payload, ok := peers[shard]
			if !ok {
				return ClusterStats{}, fmt.Errorf("machine: no stats payload from shard %d", shard)
			}
			var ss ShardStats
			if err := json.Unmarshal(payload, &ss); err != nil {
				return ClusterStats{}, fmt.Errorf("machine: stats payload from shard %d: %v", shard, err)
			}
			cs.Shards = append(cs.Shards, ss)
		}
		sort.Slice(cs.Shards, func(i, j int) bool { return cs.Shards[i].Shard < cs.Shards[j].Shard })
	}
	accts := make([]Snapshot, 0, len(cs.Shards))
	mets := make([]metrics.Snapshot, 0, len(cs.Shards))
	for _, ss := range cs.Shards {
		accts = append(accts, ss.Acct)
		mets = append(mets, ss.Metrics)
	}
	cs.Acct = MergeSnapshots(accts...)
	cs.Metrics = metrics.Merge(mets...)
	return cs, nil
}

// RequestStats asks every worker shard for a fresh stats report (mid-run
// sampling; payloads land asynchronously and show up in the next
// ClusterStats). No-op off the netlive parent.
func (m *Machine) RequestStats() {
	if m.stats != nil && m.shard != nil && m.shard.Shard() == 0 {
		m.stats.RequestStats()
	}
}
