package machine

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSP1997Calibration(t *testing.T) {
	cfg := SP1997()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// The three headline constants of the paper's substrate.
	if got := cfg.ShortRTT(); got != 55*time.Microsecond {
		t.Errorf("AM 0-word RTT = %v, want 55µs", got)
	}
	if got := 2 * (cfg.MPLOverhead + cfg.WireLatency + cfg.MPLOverhead); got != 88*time.Microsecond {
		t.Errorf("MPL RTT = %v, want 88µs", got)
	}
	if cfg.ThreadCreate != 5*time.Microsecond || cfg.ContextSwitch != 6*time.Microsecond ||
		cfg.SyncOp != 400*time.Nanosecond {
		t.Errorf("thread costs off: %v %v %v", cfg.ThreadCreate, cfg.ContextSwitch, cfg.SyncOp)
	}
}

func TestBulkRTTExceedsShort(t *testing.T) {
	cfg := SP1997()
	if cfg.BulkRTT(0, 0) <= cfg.ShortRTT() {
		t.Error("zero-payload bulk RTT not above short RTT")
	}
	// Monotone in payload.
	prev := cfg.BulkRTT(0, 0)
	for _, n := range []int{8, 160, 2048, 65536} {
		cur := cfg.BulkRTT(n, 0)
		if cur <= prev {
			t.Errorf("bulk RTT not monotone at %d bytes", n)
		}
		prev = cur
	}
}

func TestValidateRejectsNegative(t *testing.T) {
	cfg := SP1997()
	cfg.SyncOp = -time.Nanosecond
	if cfg.Validate() == nil {
		t.Error("negative cost accepted")
	}
}

func TestNodeSendDelivers(t *testing.T) {
	m := New(SP1997(), 2)
	arrivals := 0
	m.Node(1).OnArrival = func() { arrivals++ }
	m.Node(0).Send(1, 0, 48, "hello")
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if arrivals != 1 {
		t.Fatalf("arrivals = %d", arrivals)
	}
	pkt, ok := m.Node(1).PopInbox()
	if !ok || pkt.Payload != "hello" || pkt.Src != 0 || pkt.Dst != 1 {
		t.Fatalf("bad packet %+v ok=%v", pkt, ok)
	}
	if m.Eng.Now() != SP1997().WireLatency {
		t.Fatalf("delivery at %v, want wire latency %v", m.Eng.Now(), SP1997().WireLatency)
	}
}

func TestSendFIFOPerPair(t *testing.T) {
	m := New(SP1997(), 2)
	for i := 0; i < 10; i++ {
		m.Node(0).Send(1, 0, 48, i)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		pkt, ok := m.Node(1).PopInbox()
		if !ok || pkt.Payload != i {
			t.Fatalf("packet %d out of order: %+v", i, pkt)
		}
	}
}

func TestLoopbackImmediate(t *testing.T) {
	m := New(SP1997(), 1)
	m.Node(0).Loopback(8, 42)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Eng.Now() != 0 {
		t.Fatalf("loopback consumed wire time %v", m.Eng.Now())
	}
	if pkt, ok := m.Node(0).PopInbox(); !ok || pkt.Payload != 42 {
		t.Fatal("loopback packet lost")
	}
}

func TestAccountingBucketsAndCounters(t *testing.T) {
	a := newAccounting()
	a.Add(CatCPU, 3*time.Microsecond)
	a.Add(CatNet, time.Microsecond)
	a.Add(CatCPU, 2*time.Microsecond)
	a.Count(CntPolls, 5)
	if a.Get(CatCPU) != 5*time.Microsecond {
		t.Fatalf("cpu bucket %v", a.Get(CatCPU))
	}
	if a.Counter(CntPolls) != 5 {
		t.Fatalf("counter %d", a.Counter(CntPolls))
	}
	snap := a.Snapshot()
	a.Add(CatCPU, 10*time.Microsecond)
	a.Count(CntPolls, 2)
	d := a.Delta(snap)
	if d.Get(CatCPU) != 10*time.Microsecond || d.Counters[CntPolls] != 2 {
		t.Fatalf("delta wrong: %v", d)
	}
	if d.Get(CatNet) != 0 {
		t.Fatalf("untouched bucket in delta: %v", d.Get(CatNet))
	}
	a.Reset()
	if a.Get(CatCPU) != 0 || a.Counter(CntPolls) != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestMergeSnapshots(t *testing.T) {
	a, b := newAccounting(), newAccounting()
	a.Add(CatRuntime, time.Microsecond)
	a.Count(CntRMI, 1)
	b.Add(CatRuntime, 2*time.Microsecond)
	b.Count(CntRMI, 2)
	b.Count(CntPolls, 7)
	m := MergeSnapshots(a.Snapshot(), b.Snapshot())
	if m.Get(CatRuntime) != 3*time.Microsecond || m.Counters[CntRMI] != 3 || m.Counters[CntPolls] != 7 {
		t.Fatalf("merge wrong: %v", m)
	}
	if m.Busy() != 3*time.Microsecond {
		t.Fatalf("busy %v", m.Busy())
	}
}

// Property: Delta(snapshot) + snapshot == current, for random sequences.
func TestSnapshotDeltaProperty(t *testing.T) {
	f := func(adds []uint8) bool {
		a := newAccounting()
		for i, v := range adds {
			a.Add(Category(int(v)%int(numCategories)), time.Duration(v)*time.Nanosecond)
			if i == len(adds)/2 {
				snap := a.Snapshot()
				defer func() { _ = snap }()
			}
		}
		snap := a.Snapshot()
		more := time.Duration(0)
		for _, v := range adds {
			a.Add(CatCPU, time.Duration(v)*time.Nanosecond)
			more += time.Duration(v) * time.Nanosecond
		}
		return a.Delta(snap).Get(CatCPU) == more
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCategoryStrings(t *testing.T) {
	for _, c := range Categories() {
		if c.String() == "" || c.String()[0] == 'C' {
			t.Errorf("category %d renders as %q", int(c), c.String())
		}
	}
}
