package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEventOrdering(t *testing.T) {
	e := New()
	var got []int
	e.At(30*time.Microsecond, func() { got = append(got, 3) })
	e.At(10*time.Microsecond, func() { got = append(got, 1) })
	e.At(20*time.Microsecond, func() { got = append(got, 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if e.Now() != 30*time.Microsecond {
		t.Fatalf("final time %v", e.Now())
	}
}

func TestEqualTimesFIFO(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(time.Microsecond, func() { got = append(got, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("events at equal time reordered: got[%d]=%d", i, got[i])
		}
	}
}

// Property: popping random events always yields a non-decreasing time series.
func TestRandomEventsSorted(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		var times []time.Duration
		for i := 0; i < int(n); i++ {
			d := time.Duration(rng.Intn(1000)) * time.Microsecond
			e.At(d, func() { times = append(times, e.Now()) })
		}
		if err := e.Run(); err != nil {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAfterNested(t *testing.T) {
	e := New()
	var fired time.Duration
	e.After(5*time.Microsecond, func() {
		e.After(7*time.Microsecond, func() { fired = e.Now() })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 12*time.Microsecond {
		t.Fatalf("nested After fired at %v, want 12µs", fired)
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	e := New()
	e.At(10*time.Microsecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5*time.Microsecond, func() {})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProcSleepAdvancesTime(t *testing.T) {
	e := New()
	var marks []time.Duration
	e.Go("p", func(p *Proc) {
		marks = append(marks, p.Now())
		p.Sleep(4 * time.Microsecond)
		marks = append(marks, p.Now())
		p.Sleep(0)
		marks = append(marks, p.Now())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if marks[0] != 0 || marks[1] != 4*time.Microsecond || marks[2] != 4*time.Microsecond {
		t.Fatalf("marks = %v", marks)
	}
}

func TestTwoProcsInterleave(t *testing.T) {
	e := New()
	var got []string
	e.Go("a", func(p *Proc) {
		got = append(got, "a0")
		p.Sleep(10 * time.Microsecond)
		got = append(got, "a10")
	})
	e.Go("b", func(p *Proc) {
		got = append(got, "b0")
		p.Sleep(5 * time.Microsecond)
		got = append(got, "b5")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a0", "b0", "b5", "a10"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestParkUnpark(t *testing.T) {
	e := New()
	var woke time.Duration
	p := e.Go("sleeper", func(p *Proc) {
		p.Park()
		woke = p.Now()
	})
	e.At(25*time.Microsecond, func() { p.Unpark() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 25*time.Microsecond {
		t.Fatalf("woke at %v, want 25µs", woke)
	}
}

func TestUnparkBeforeParkPermit(t *testing.T) {
	e := New()
	done := false
	var p *Proc
	p = e.Go("p", func(pr *Proc) {
		pr.Sleep(10 * time.Microsecond) // let the unpark land first
		pr.Park()                       // must consume the permit, not block
		done = true
	})
	e.At(2*time.Microsecond, func() { p.Unpark() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("proc never finished; permit lost")
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := New()
	e.Go("stuck", func(p *Proc) { p.Park() })
	err := e.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("want DeadlockError, got %v", err)
	}
	if len(de.Procs) != 1 {
		t.Fatalf("want 1 stuck proc, got %v", de.Procs)
	}
}

func TestRunUntilPausesWithoutDeadlock(t *testing.T) {
	e := New()
	fired := false
	e.At(100*time.Microsecond, func() { fired = true })
	if err := e.RunUntil(50 * time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("event beyond limit fired")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("event never fired after resume")
	}
}

func TestNegativeSleepPanics(t *testing.T) {
	e := New()
	var recovered any
	e.Go("p", func(p *Proc) {
		defer func() { recovered = recover() }()
		p.Sleep(-time.Microsecond)
	})
	_ = e.Run()
	if recovered == nil {
		t.Fatal("negative sleep did not panic")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []time.Duration {
		e := New()
		var trace []time.Duration
		for i := 0; i < 3; i++ {
			e.Go("worker", func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Sleep(3 * time.Microsecond)
					trace = append(trace, p.Now())
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("trace lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestEventsRunCounter(t *testing.T) {
	e := New()
	for i := 0; i < 7; i++ {
		e.At(time.Duration(i)*time.Microsecond, func() {})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.EventsRun() != 7 {
		t.Fatalf("EventsRun = %d, want 7", e.EventsRun())
	}
}

func TestManyProcsStress(t *testing.T) {
	e := New()
	const n = 200
	total := 0
	for i := 0; i < n; i++ {
		i := i
		e.Go("w", func(p *Proc) {
			p.Sleep(time.Duration(i%17) * time.Microsecond)
			total++
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if total != n {
		t.Fatalf("only %d of %d procs completed", total, n)
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("%d procs still live", e.LiveProcs())
	}
}
