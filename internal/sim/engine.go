// Package sim provides a deterministic discrete-event simulation engine
// with goroutine-backed simulated processes.
//
// The engine owns a virtual clock and an event heap. Exactly one goroutine
// (the engine's, or one process's) runs at any instant; control is handed
// back and forth over unbuffered channels, so simulations are deterministic
// and race-free: events at equal virtual times fire in scheduling order.
//
// Processes are ordinary Go functions that receive a *Proc handle. A process
// advances virtual time with Sleep, blocks with Park, and is made runnable
// again with Unpark. All higher layers (machine, threads, active messages)
// are built on these three primitives.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"time"
)

// Time is a point in virtual time, measured from the start of the
// simulation. It uses time.Duration (nanoseconds) so that sub-microsecond
// costs such as a 0.4 µs lock operation are representable exactly.
type Time = time.Duration

// event is a scheduled callback. seq breaks ties among events with equal
// timestamps so ordering is fully deterministic.
type event struct {
	at  Time
	seq int64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable;
// construct with New.
type Engine struct {
	now    Time
	events eventHeap
	seq    int64

	// yield carries control from the currently-running process back to the
	// engine loop. It is unbuffered: the engine blocks until the process
	// stops, and vice versa.
	yield chan struct{}

	procs    map[int64]*Proc
	procSeq  int64
	live     int // processes that have started and not yet finished
	inEngine bool

	// Stats.
	eventsRun int64
}

// New returns an empty simulation engine at virtual time zero.
func New() *Engine {
	return &Engine{
		yield: make(chan struct{}),
		procs: make(map[int64]*Proc),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// EventsRun reports how many events have been processed so far.
func (e *Engine) EventsRun() int64 { return e.eventsRun }

// LiveProcs reports the number of processes that have been started and have
// not yet returned.
func (e *Engine) LiveProcs() int { return e.live }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled in the past (at=%v, now=%v)", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current virtual time.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.At(e.now+d, fn)
}

// Proc is a simulated process: a goroutine whose execution is interleaved
// with all other processes in virtual-time order. Methods on Proc must only
// be called from within the process's own function, except Unpark, which may
// be called from anywhere inside the simulation (another process or an event
// callback).
type Proc struct {
	eng    *Engine
	id     int64
	name   string
	resume chan struct{}

	parked bool // waiting for Unpark
	permit bool // Unpark arrived before Park
	dead   bool

	// blockedAt records the virtual time at which the proc last parked;
	// useful in deadlock reports.
	blockedAt Time
}

// Name returns the debug name given at Go time.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Go creates a process running fn and schedules it to start at the current
// virtual time. It may be called before Run or from inside the simulation.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	e.procSeq++
	p := &Proc{
		eng:    e,
		id:     e.procSeq,
		name:   name,
		resume: make(chan struct{}),
	}
	e.procs[p.id] = p
	e.live++
	go func() {
		<-p.resume // wait for first dispatch
		fn(p)
		p.dead = true
		e.live--
		delete(e.procs, p.id)
		e.yield <- struct{}{} // return control to engine for good
	}()
	e.At(e.now, func() { e.dispatch(p) })
	return p
}

// dispatch transfers control to p until it parks, sleeps, or finishes.
// Must be called from the engine loop (directly or transitively from an
// event callback).
func (e *Engine) dispatch(p *Proc) {
	if p.dead {
		panic("sim: dispatch of dead proc " + p.name)
	}
	p.resume <- struct{}{}
	<-e.yield
}

// switchToEngine suspends the calling process and resumes the engine loop.
// The process will not run again until something sends on p.resume.
func (p *Proc) switchToEngine() {
	p.eng.yield <- struct{}{}
	<-p.resume
}

// Sleep advances the process's virtual time by d. Other processes and events
// run in the interim. d must be non-negative; Sleep(0) yields to any events
// scheduled at the current instant that were enqueued before this one.
//
//mpmd:coldpath the timer closure is discrete-event engine machinery, not a modeled allocation
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %v in proc %s", d, p.name))
	}
	e := p.eng
	e.After(d, func() { e.dispatch(p) })
	p.switchToEngine()
}

// Park blocks the process until Unpark is called. If an Unpark permit is
// already pending (Unpark raced ahead in virtual sequence), Park consumes it
// and returns immediately. This mirrors gopark/goready semantics and makes
// wait loops robust against wake-before-sleep orderings.
func (p *Proc) Park() {
	if p.permit {
		p.permit = false
		return
	}
	p.parked = true
	p.blockedAt = p.eng.now
	p.switchToEngine()
}

// Unpark makes a parked process runnable at the current virtual time. If the
// process is not parked, a single permit is recorded and the next Park
// returns immediately. Safe to call from event callbacks or other processes.
//
//mpmd:coldpath the dispatch closure is discrete-event engine machinery, not a modeled allocation
func (p *Proc) Unpark() {
	if p.dead {
		panic("sim: Unpark of dead proc " + p.name)
	}
	if !p.parked {
		p.permit = true
		return
	}
	p.parked = false
	e := p.eng
	e.At(e.now, func() { e.dispatch(p) })
}

// DeadlockError reports that the event queue drained while processes were
// still parked — the simulation cannot make further progress.
type DeadlockError struct {
	Now   Time
	Procs []string // names of parked processes, sorted
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%v: %d proc(s) parked: %v", d.Now, len(d.Procs), d.Procs)
}

// Run processes events until the queue is empty. If parked processes remain
// at that point, Run returns a *DeadlockError naming them; otherwise nil.
func (e *Engine) Run() error {
	return e.run(-1)
}

// RunUntil processes events with timestamps <= limit and then stops, leaving
// later events queued. It never reports deadlock (the simulation may simply
// be paused).
func (e *Engine) RunUntil(limit Time) error {
	return e.run(limit)
}

func (e *Engine) run(limit Time) error {
	if e.inEngine {
		panic("sim: Run called reentrantly")
	}
	e.inEngine = true
	defer func() { e.inEngine = false }()

	for len(e.events) > 0 {
		if limit >= 0 && e.events[0].at > limit {
			return nil
		}
		ev := heap.Pop(&e.events).(*event)
		if ev.at < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.at
		e.eventsRun++
		ev.fn()
	}
	if limit < 0 && e.live > 0 {
		var names []string
		for _, p := range e.procs {
			names = append(names, fmt.Sprintf("%s@%v", p.name, p.blockedAt))
		}
		sort.Strings(names)
		return &DeadlockError{Now: e.now, Procs: names}
	}
	return nil
}
