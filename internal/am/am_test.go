package am

import (
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/threads"
	"repro/internal/wire"
)

// rig builds an n-node machine with the SP1997 profile, a Net, and one
// scheduler per node (endpoints attached).
func rig(n int) (*machine.Machine, *Net, []*threads.Scheduler) {
	m := machine.New(machine.SP1997(), n)
	net := NewNet(m)
	scheds := make([]*threads.Scheduler, n)
	for i := 0; i < n; i++ {
		scheds[i] = threads.NewScheduler(m.Node(i))
		net.Endpoint(i).Attach(scheds[i])
	}
	return m, net, scheds
}

// service runs a polling service loop on sched until its endpoint is
// stopped; tests call stopAll when the measured side is finished.
func service(sched *threads.Scheduler, ep *Endpoint) {
	sched.Start("svc", func(th *threads.Thread) {
		for {
			ep.PollAll(th)
			if ep.Stopped() {
				return
			}
			ep.WaitMessage(th)
		}
	})
}

func stopAll(net *Net, n int) {
	for i := 0; i < n; i++ {
		net.Endpoint(i).Stop()
	}
}

func TestShortRequestReplyRTT(t *testing.T) {
	m, net, scheds := rig(2)
	done := false
	var reply HandlerID
	reply = net.Register("reply", func(th *threads.Thread, msg Msg) {
		done = true
	})
	echo := net.Register("echo", func(th *threads.Thread, msg Msg) {
		net.Endpoint(th.Node().ID).RequestShort(th, msg.Src, reply, msg.A)
	})
	var rtt time.Duration
	scheds[0].Start("main", func(th *threads.Thread) {
		ep := net.Endpoint(0)
		start := th.Now()
		ep.RequestShort(th, 1, echo, [4]uint64{7})
		ep.PollUntil(th, func() bool { return done })
		rtt = time.Duration(th.Now() - start)
		stopAll(net, 2)
	})
	service(scheds[1], net.Endpoint(1))
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	want := machine.SP1997().ShortRTT() // 55 µs
	if rtt != want {
		t.Fatalf("0-word RTT = %v, want %v", rtt, want)
	}
}

func TestArgsDelivered(t *testing.T) {
	m, net, scheds := rig(2)
	var got [4]uint64
	var gotSrc int
	h := net.Register("h", func(th *threads.Thread, msg Msg) {
		got = msg.A
		gotSrc = msg.Src
	})
	scheds[0].Start("main", func(th *threads.Thread) {
		net.Endpoint(0).RequestShort(th, 1, h, [4]uint64{1, 2, 3, 4})
	})
	scheds[1].Start("svc", func(th *threads.Thread) {
		ep := net.Endpoint(1)
		ep.WaitMessage(th)
		ep.PollAll(th)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got != [4]uint64{1, 2, 3, 4} || gotSrc != 0 {
		t.Fatalf("got args %v from %d", got, gotSrc)
	}
}

func TestBulkPayloadCopiedAtSend(t *testing.T) {
	m, net, scheds := rig(2)
	var got []byte
	h := net.Register("h", func(th *threads.Thread, msg Msg) {
		// The payload is only valid during the handler (its pooled buffer
		// recycles on return), so retaining it means copying it.
		got = append([]byte(nil), msg.Payload...)
	})
	scheds[0].Start("main", func(th *threads.Thread) {
		buf := []byte{1, 2, 3}
		net.Endpoint(0).RequestBulk(th, 1, h, buf, [4]uint64{})
		buf[0] = 99 // must not be visible at the receiver
	})
	scheds[1].Start("svc", func(th *threads.Thread) {
		ep := net.Endpoint(1)
		ep.WaitMessage(th)
		ep.PollAll(th)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 {
		t.Fatalf("payload %v; sender mutation leaked or payload lost", got)
	}
}

func TestBulkCostsMoreThanShort(t *testing.T) {
	cfg := machine.SP1997()
	short := cfg.ShortRTT()
	bulk := cfg.BulkRTT(160, 0)
	if bulk <= short {
		t.Fatalf("bulk RTT %v not greater than short %v", bulk, short)
	}
	// Paper: bulk round trip is 15 µs above the 55 µs short RTT, plus
	// per-byte time.
	wantMin := short + 15*time.Microsecond
	if bulk < wantMin {
		t.Fatalf("bulk RTT %v < %v", bulk, wantMin)
	}
}

func TestFIFOOrderingPerPair(t *testing.T) {
	m, net, scheds := rig(2)
	var got []uint64
	h := net.Register("h", func(th *threads.Thread, msg Msg) {
		got = append(got, msg.A[0])
	})
	const n = 20
	scheds[0].Start("main", func(th *threads.Thread) {
		for i := 0; i < n; i++ {
			net.Endpoint(0).RequestShort(th, 1, h, [4]uint64{uint64(i)})
		}
	})
	m.Eng.At(time.Millisecond, func() { stopAll(net, 2) })
	service(scheds[1], net.Endpoint(1))
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got[i] != uint64(i) {
			t.Fatalf("messages reordered: %v", got)
		}
	}
}

func TestLoopbackSelfSend(t *testing.T) {
	m, net, scheds := rig(1)
	hit := false
	h := net.Register("h", func(th *threads.Thread, msg Msg) { hit = true })
	scheds[0].Start("main", func(th *threads.Thread) {
		ep := net.Endpoint(0)
		ep.RequestShort(th, 0, h, [4]uint64{})
		ep.PollUntil(th, func() bool { return hit })
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("loopback message never handled")
	}
}

// TestWireCodecRoundTrip pins the serialized Msg form used for cross-shard
// hops: EncodeWire consumes the envelope (pooled buffer released) and
// DecodeWireMsg reconstructs an identical message, payload copied into a
// fresh pooled buffer.
func TestWireCodecRoundTrip(t *testing.T) {
	payload := []byte("twelve bytes")
	msg := msgPool.Get().(*Msg)
	buf := wire.Copy(payload)
	*msg = Msg{
		Bulk: true, Src: 3, Dst: 7, H: 42,
		A:          [4]uint64{1, 2, 1 << 40, ^uint64(0)},
		Payload:    buf.Bytes(),
		PayloadBuf: buf,
		RecvExtra:  5 * time.Microsecond,
	}
	n := msg.WireLen()
	enc := make([]byte, n)
	if got := msg.EncodeWire(enc); got != n {
		t.Fatalf("EncodeWire wrote %d, WireLen said %d", got, n)
	}
	out := DecodeWireMsg(3, 7, enc).(*Msg)
	if !out.Bulk || out.Src != 3 || out.Dst != 7 || out.H != 42 ||
		out.A != [4]uint64{1, 2, 1 << 40, ^uint64(0)} ||
		out.RecvExtra != 5*time.Microsecond {
		t.Fatalf("decoded header mismatch: %+v", out)
	}
	if string(out.Payload) != string(payload) {
		t.Fatalf("decoded payload %q", out.Payload)
	}
	out.PayloadBuf.Release()
	*out = Msg{}
	msgPool.Put(out)
}

// TestShortWireCodecNoPayload checks the header-only form round-trips.
func TestShortWireCodecNoPayload(t *testing.T) {
	msg := msgPool.Get().(*Msg)
	*msg = Msg{Src: 0, Dst: 1, H: 9, A: [4]uint64{8, 0, 0, 4}}
	enc := make([]byte, msg.WireLen())
	msg.EncodeWire(enc)
	out := DecodeWireMsg(0, 1, enc).(*Msg)
	if out.Bulk || out.H != 9 || out.A != [4]uint64{8, 0, 0, 4} || out.PayloadBuf != nil {
		t.Fatalf("decoded %+v", out)
	}
	*out = Msg{}
	msgPool.Put(out)
}

func TestCountersAndBytes(t *testing.T) {
	m, net, scheds := rig(2)
	h := net.Register("h", func(th *threads.Thread, msg Msg) {})
	scheds[0].Start("main", func(th *threads.Thread) {
		ep := net.Endpoint(0)
		ep.RequestShort(th, 1, h, [4]uint64{})
		ep.RequestBulk(th, 1, h, make([]byte, 100), [4]uint64{})
	})
	m.Eng.At(time.Millisecond, func() { stopAll(net, 2) })
	service(scheds[1], net.Endpoint(1))
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	a0 := m.Node(0).Acct
	if a0.Counter(machine.CntMsgShort) != 1 || a0.Counter(machine.CntMsgBulk) != 1 {
		t.Fatalf("msg counters short=%d bulk=%d", a0.Counter(machine.CntMsgShort), a0.Counter(machine.CntMsgBulk))
	}
	if a0.Counter(machine.CntBytesSent) != 48+48+100 {
		t.Fatalf("bytes sent = %d", a0.Counter(machine.CntBytesSent))
	}
	if m.Node(1).Acct.Counter(machine.CntHandlersRun) != 2 {
		t.Fatalf("handlers run = %d", m.Node(1).Acct.Counter(machine.CntHandlersRun))
	}
}

func TestStopWakesWaiter(t *testing.T) {
	m, net, scheds := rig(1)
	exited := false
	scheds[0].Start("svc", func(th *threads.Thread) {
		ep := net.Endpoint(0)
		for !ep.Stopped() {
			ep.WaitMessage(th)
			ep.PollAll(th)
		}
		exited = true
	})
	m.Eng.At(10*time.Microsecond, func() { net.Endpoint(0).Stop() })
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !exited {
		t.Fatal("service loop never exited after Stop")
	}
}

func TestPollOnSendServicesPending(t *testing.T) {
	// Node 0 sends to node 1; node 1's only activity is sending back — its
	// send must poll and service node 0's request without an explicit Poll.
	m, net, scheds := rig(2)
	var handledOn1, handledOn0 bool
	h1 := net.Register("on1", func(th *threads.Thread, msg Msg) { handledOn1 = true })
	h0 := net.Register("on0", func(th *threads.Thread, msg Msg) { handledOn0 = true })
	scheds[0].Start("main0", func(th *threads.Thread) {
		ep := net.Endpoint(0)
		ep.RequestShort(th, 1, h1, [4]uint64{})
		ep.PollUntil(th, func() bool { return handledOn0 })
	})
	scheds[1].Start("main1", func(th *threads.Thread) {
		ep := net.Endpoint(1)
		// Wait until node 0's message is in flight or queued, then send:
		// the send itself must poll the inbox.
		th.Charge(machine.CatCPU, 100*time.Microsecond)
		ep.RequestShort(th, 0, h0, [4]uint64{})
		if !handledOn1 {
			t.Error("send did not poll pending inbox")
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !handledOn0 || !handledOn1 {
		t.Fatalf("handledOn0=%v handledOn1=%v", handledOn0, handledOn1)
	}
}

func TestHandlerReplyDoesNotRecurse(t *testing.T) {
	// A handler that replies must not recursively poll (bounded stack).
	m, net, scheds := rig(2)
	depth, maxDepth := 0, 0
	var pong HandlerID
	ping := net.Register("ping", func(th *threads.Thread, msg Msg) {
		depth++
		if depth > maxDepth {
			maxDepth = depth
		}
		net.Endpoint(th.Node().ID).RequestShort(th, msg.Src, pong, msg.A)
		depth--
	})
	got := 0
	pong = net.Register("pong", func(th *threads.Thread, msg Msg) { got++ })
	const n = 10
	scheds[0].Start("main", func(th *threads.Thread) {
		ep := net.Endpoint(0)
		for i := 0; i < n; i++ {
			ep.RequestShort(th, 1, ping, [4]uint64{})
		}
		ep.PollUntil(th, func() bool { return got == n })
		stopAll(net, 2)
	})
	service(scheds[1], net.Endpoint(1))
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if maxDepth != 1 {
		t.Fatalf("handler nesting depth %d, want 1", maxDepth)
	}
}
