// Package am implements the Active Messages layer both language runtimes are
// built on, following the SP port described in Chang et al. (SC 1996) that
// the paper uses: 4-word request/reply messages, bulk transfers, and
// polling-based reception (each send also polls; a blocked node parks until
// the next arrival).
//
// A handler runs to completion on the receiving node, inline in whichever
// thread performed the poll. Handlers must not block; they may send replies
// and mark other threads runnable (that is how both runtimes complete
// synchronous operations).
package am

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"repro/internal/machine"
	"repro/internal/threads"
	"repro/internal/wire"
)

// HandlerID names a registered handler. IDs are identical on every node
// (handlers are registered machine-wide before the simulation starts), which
// mirrors the SPMD assumption of the AM layer itself; the MPMD runtime's
// method-name indirection is layered above this.
type HandlerID int

// Msg is one active message as seen by a handler.
type Msg struct {
	// Bulk reports whether the message used the bulk-transfer path.
	Bulk bool
	// Src and Dst are node IDs.
	Src, Dst int
	// H is the handler this message targets.
	H HandlerID
	// A holds the four word-sized arguments of a short AM.
	A [4]uint64
	// Payload is the bulk payload (nil for short messages). It is a view
	// into a pooled wire buffer, valid only while the handler runs: the AM
	// layer recycles the buffer when the handler returns (run-to-completion
	// is the retention window). A handler that needs the bytes afterwards
	// must copy them out, or Retain PayloadBuf and Release it when done.
	Payload []byte
	// PayloadBuf is the pooled buffer backing Payload (nil for short
	// messages). Handlers normally leave it alone; see Payload for the
	// retention rule.
	//mpmdvet:ignore wirewords envelope-side bookkeeping — EncodeWire releases it and frames only Payload bytes
	PayloadBuf *wire.Buf
	// RecvExtra is additional receiver-side CPU charged when the message is
	// polled, set by slow transports (the Nexus/TCP profile) to model their
	// protocol stacks.
	RecvExtra time.Duration
}

// A Msg used to carry an Obj field — an in-memory object reference riding
// alongside the wire words. It is gone: every layer now resolves its state
// from the word arguments on the destination side (request-ID tables,
// persistent-buffer IDs, object-table indices), exactly as real hardware
// packs addresses into the words. That is what lets a message cross an
// address-space boundary on the sharded netlive backend; see wireHeaderLen
// and (*Msg).EncodeWire below.

// wireHeaderLen is the serialized Msg header: flags byte, handler u32,
// 4 word arguments, RecvExtra i64. Src/Dst/Size ride in the packet frame.
const wireHeaderLen = 1 + 4 + 4*8 + 8

// WireLen implements machine.WirePayload: the serialized length of the
// message for a cross-address-space hop.
func (m *Msg) WireLen() int { return wireHeaderLen + len(m.Payload) }

// EncodeWire implements machine.WirePayload. It serializes the message into
// b (which must hold WireLen bytes) and consumes the envelope: the payload
// buffer is released and the pooled Msg recycled, so the caller must not
// touch m afterwards.
func (m *Msg) EncodeWire(b []byte) int {
	var flags byte
	if m.Bulk {
		flags |= 1
	}
	b[0] = flags
	binary.LittleEndian.PutUint32(b[1:], uint32(m.H))
	off := 5
	for _, a := range m.A {
		binary.LittleEndian.PutUint64(b[off:], a)
		off += 8
	}
	binary.LittleEndian.PutUint64(b[off:], uint64(m.RecvExtra))
	off += 8
	off += copy(b[off:], m.Payload)
	if m.PayloadBuf != nil {
		m.PayloadBuf.Release()
	}
	*m = Msg{}
	msgPool.Put(m)
	return off
}

// DecodeWireMsg reconstructs a pooled Msg envelope from the serialized form,
// copying the payload into a fresh pooled wire buffer. It is installed as the
// machine's wire decoder by NewNet, so packets arriving from a peer shard
// re-enter the inbox exactly as locally sent ones do.
func DecodeWireMsg(src, dst int, b []byte) any {
	m := msgPool.Get().(*Msg)
	*m = Msg{
		Bulk: b[0]&1 != 0,
		Src:  src,
		Dst:  dst,
		H:    HandlerID(binary.LittleEndian.Uint32(b[1:])),
	}
	off := 5
	for i := range m.A {
		m.A[i] = binary.LittleEndian.Uint64(b[off:])
		off += 8
	}
	m.RecvExtra = time.Duration(binary.LittleEndian.Uint64(b[off:]))
	off += 8
	if len(b) > off {
		m.PayloadBuf = wire.Copy(b[off:])
		m.Payload = m.PayloadBuf.Bytes()
	}
	return m
}

// SendOpts parameterizes Request for transports layered over the AM engine.
type SendOpts struct {
	// Bulk selects the bulk-transfer path (payload allowed, bulk setup cost).
	Bulk bool
	// ExtraSendCPU is charged to the sender on top of the profile overheads.
	ExtraSendCPU time.Duration
	// ExtraWire delays delivery beyond the configured wire latency.
	ExtraWire time.Duration
	// ExtraRecvCPU is charged to the receiver when the message is polled.
	ExtraRecvCPU time.Duration
	// GapPerByte overrides the per-byte sender occupancy when non-zero.
	GapPerByte time.Duration
}

// Handler is the code run at the receiving node. It executes inline in the
// polling thread and must not block.
type Handler func(t *threads.Thread, m Msg)

// Endpoint is one node's attachment to the network.
type Endpoint struct {
	net     *Net
	node    *machine.Node
	sched   *threads.Scheduler
	waiters []*threads.Thread
	polling bool
	stopped bool

	// interruptCost, when non-zero, switches the endpoint to the
	// interrupt-driven reception model: every received message additionally
	// charges this kernel-delivery cost, and sends no longer poll (the
	// interrupt provides progress instead).
	interruptCost time.Duration
}

// SetInterruptCost enables the interrupt-driven reception model with the
// given per-message kernel cost (zero restores polling).
func (ep *Endpoint) SetInterruptCost(d time.Duration) { ep.interruptCost = d }

// Net wires one Endpoint per machine node and owns the handler table.
type Net struct {
	m        *machine.Machine
	eps      []*Endpoint
	handlers []Handler
	names    []string
}

// NewNet creates endpoints for every node of m and installs arrival hooks.
// Each node needs a scheduler already attached via Attach before messages
// can be received.
func NewNet(m *machine.Machine) *Net {
	n := &Net{m: m}
	// Messages are the machine's serializable packet payload: install the
	// codec so sharded backends can carry them across address spaces.
	m.SetWireDecoder(DecodeWireMsg)
	for _, node := range m.Nodes() {
		ep := &Endpoint{net: n, node: node}
		node.OnArrival = ep.onArrival
		n.eps = append(n.eps, ep)
	}
	return n
}

// Machine returns the underlying machine.
func (n *Net) Machine() *machine.Machine { return n.m }

// Endpoint returns node i's endpoint.
func (n *Net) Endpoint(i int) *Endpoint { return n.eps[i] }

// Register adds a handler to the machine-wide table and returns its ID.
// Must be called before the simulation starts (or at least before any
// message targeting it is sent).
func (n *Net) Register(name string, h Handler) HandlerID {
	n.handlers = append(n.handlers, h)
	n.names = append(n.names, name)
	return HandlerID(len(n.handlers) - 1)
}

// HandlerName returns the debug name of a handler ID.
func (n *Net) HandlerName(id HandlerID) string {
	if int(id) < 0 || int(id) >= len(n.names) {
		return fmt.Sprintf("handler(%d)", int(id))
	}
	return n.names[id]
}

// Attach binds the endpoint to the node's thread scheduler. It must be
// called once per node before receiving.
func (ep *Endpoint) Attach(s *threads.Scheduler) { ep.sched = s }

// Node returns the endpoint's node.
func (ep *Endpoint) Node() *machine.Node { return ep.node }

// Stop marks the endpoint as shut down and wakes every thread parked in
// WaitMessage, letting service loops observe their exit condition.
func (ep *Endpoint) Stop() {
	ep.stopped = true
	ws := ep.waiters
	ep.waiters = nil
	for _, w := range ws {
		ep.sched.MakeReady(w)
	}
}

// Stopped reports whether Stop has been called.
func (ep *Endpoint) Stopped() bool { return ep.stopped }

// onArrival wakes the most recent waiter only (LIFO): an actively waiting
// computation thread registered after the background polling thread, so it
// gets the message and handles its own reply inline — the polling thread
// stays parked and no context switches are paid, matching the paper's
// "0-Word Simple" sender. KickService re-arms the remaining waiters if a
// woken thread leaves messages behind.
func (ep *Endpoint) onArrival() { ep.wakeOne() }

func (ep *Endpoint) wakeOne() {
	n := len(ep.waiters)
	if n == 0 {
		return
	}
	w := ep.waiters[n-1]
	ep.waiters = ep.waiters[:n-1]
	ep.sched.MakeReady(w)
}

// KickService wakes a parked waiter if undelivered messages remain — called
// when a thread exits a wait loop early (its condition was satisfied before
// the inbox drained) so pending messages are not starved.
func (ep *Endpoint) KickService() {
	if ep.node.InboxLen() > 0 {
		ep.wakeOne()
	}
}

// RequestShort sends a 4-word active message to dst, charging the sender's
// overhead, and then polls the local endpoint once (the paper's layer polls
// on every send to guarantee progress without interrupts).
func (ep *Endpoint) RequestShort(t *threads.Thread, dst int, h HandlerID, a [4]uint64) {
	ep.Request(t, dst, h, a, nil, SendOpts{})
}

// RequestBulk sends a bulk-transfer active message carrying payload.
func (ep *Endpoint) RequestBulk(t *threads.Thread, dst int, h HandlerID, payload []byte, a [4]uint64) {
	ep.Request(t, dst, h, a, payload, SendOpts{Bulk: true})
}

// Request is the parameterized send path. The payload (if any) is copied at
// send time into a pooled wire buffer (value semantics: the sender may reuse
// its own buffer immediately), the sender pays its overheads plus per-byte
// occupancy, and wire delivery is delayed by the serialization time plus
// opts.ExtraWire.
//
//mpmd:hotpath
func (ep *Endpoint) Request(t *threads.Thread, dst int, h HandlerID, a [4]uint64, payload []byte, opts SendOpts) {
	var buf *wire.Buf
	if len(payload) > 0 {
		buf = wire.Copy(payload)
	}
	ep.RequestOwned(t, dst, h, a, buf, opts)
}

// RequestOwned is the zero-copy send path: ownership of buf (which may be
// nil for an empty payload) transfers to the message layer, which hands it
// across to the receiver uncopied and recycles it when the receiving handler
// completes. The caller must not touch buf after the call. The runtime's
// marshalling path uses this to ship argument bytes with no staging copy and
// no per-send allocation.
//
//mpmd:hotpath
func (ep *Endpoint) RequestOwned(t *threads.Thread, dst int, h HandlerID, a [4]uint64, buf *wire.Buf, opts SendOpts) {
	cfg := t.Cfg()
	n := 0
	if buf != nil {
		n = buf.Len()
	}
	if n > 0 && !opts.Bulk {
		panic("am: payload requires the bulk path")
	}
	gap := cfg.GapPerByte
	if opts.GapPerByte > 0 {
		gap = opts.GapPerByte
	}
	ser := time.Duration(n) * gap
	over := cfg.SendOverhead + opts.ExtraSendCPU + ser
	wireBytes := int64(shortWireBytes)
	if opts.Bulk {
		over += cfg.BulkExtraSend
		wireBytes += int64(n)
		ep.node.Acct.Count(machine.CntMsgBulk, 1)
	} else {
		ep.node.Acct.Count(machine.CntMsgShort, 1)
	}
	ep.node.Acct.Count(machine.CntBytesSent, wireBytes)
	t.Charge(machine.CatNet, over)
	msg := msgPool.Get().(*Msg)
	*msg = Msg{
		Bulk: opts.Bulk, Src: ep.node.ID, Dst: dst, H: h, A: a,
		RecvExtra: opts.ExtraRecvCPU, PayloadBuf: buf,
	}
	if buf != nil {
		msg.Payload = buf.Bytes()
	}
	ep.send(dst, ser+opts.ExtraWire, int(wireBytes), msg)
	ep.pollOnSend(t)
}

// msgPool recycles message envelopes: a packet carries a *Msg, so the
// envelope would otherwise be one heap allocation per send (boxing a large
// struct into the packet's any). Poll returns the envelope before running
// the handler, which receives a value copy.
var msgPool = sync.Pool{New: func() any { return new(Msg) }}

// shortWireBytes models the wire footprint of a short AM (header + 4 words).
const shortWireBytes = 48

//mpmd:hotpath
func (ep *Endpoint) send(dst int, extraWire time.Duration, size int, msg *Msg) {
	if dst == ep.node.ID {
		ep.node.Loopback(size, msg)
		return
	}
	ep.node.Send(dst, extraWire, size, msg)
}

// pollOnSend drains any pending arrivals after a send, unless this send was
// itself issued from inside a handler (reply from a poll), which would
// otherwise recurse.
//
//mpmd:hotpath
func (ep *Endpoint) pollOnSend(t *threads.Thread) {
	if ep.polling || ep.interruptCost > 0 {
		return
	}
	ep.PollAll(t)
}

// Poll services at most one pending message, charging the receive overhead
// and running its handler inline in t. It reports whether a message was
// handled. The handler receives a value copy of the envelope; the pooled
// envelope recycles immediately and the payload buffer (if any) recycles
// when the handler returns — the run-to-completion retention window.
//
//mpmd:hotpath
func (ep *Endpoint) Poll(t *threads.Thread) bool {
	ep.node.Acct.Count(machine.CntPolls, 1)
	pkt, ok := ep.node.PopInbox()
	if !ok {
		return false
	}
	pm, ok := pkt.Payload.(*Msg)
	if !ok {
		panic(fmt.Sprintf("am: foreign packet in inbox of node %d: %T", ep.node.ID, pkt.Payload))
	}
	msg := *pm
	*pm = Msg{}
	msgPool.Put(pm)
	cfg := t.Cfg()
	over := cfg.RecvOverhead + msg.RecvExtra + ep.interruptCost
	if msg.Bulk {
		over += cfg.BulkExtraRecv
	}
	t.Charge(machine.CatNet, over)
	ep.node.Acct.Count(machine.CntHandlersRun, 1)
	ep.node.M.Emit(ep.node.ID, "recv", ep.net.names[msg.H], 0)
	h := ep.net.handlers[msg.H]
	wasPolling := ep.polling
	ep.polling = true
	h(t, msg)
	ep.polling = wasPolling
	if msg.PayloadBuf != nil {
		msg.PayloadBuf.Release()
	}
	return true
}

// PollAll services pending messages until the inbox is empty.
func (ep *Endpoint) PollAll(t *threads.Thread) {
	for ep.Poll(t) {
	}
}

// WaitMessage parks the thread until a message arrives at the node (or the
// endpoint is stopped). It returns immediately if the inbox is non-empty.
// Callers poll after it returns.
func (ep *Endpoint) WaitMessage(t *threads.Thread) {
	if ep.node.InboxLen() > 0 || ep.stopped {
		return
	}
	ep.waiters = append(ep.waiters, t)
	t.Block()
}

// PollUntil polls (parking while idle) until cond reports true. It is the
// building block for every blocking operation in the Split-C runtime and for
// the CC++ runtime's simple (non-threaded) RMIs: the calling thread itself
// services the network while it waits. Ready peer threads get the CPU before
// the caller parks, since one of them may be what makes cond true.
func (ep *Endpoint) PollUntil(t *threads.Thread, cond func() bool) {
	for !cond() {
		if ep.Poll(t) {
			continue
		}
		if ep.sched != nil && ep.sched.ReadyLen() > 0 {
			t.Yield()
			continue
		}
		if ep.stopped {
			panic("am: PollUntil on stopped endpoint")
		}
		ep.WaitMessage(t)
	}
	ep.KickService()
}
