// Package analysistest runs an analyzer over fixture packages and checks its
// diagnostics against // want "regexp" expectations, mirroring the x/tools
// package of the same name on the repo's stdlib-only framework.
//
// Fixtures live in passes/<pass>/testdata/<fixture>/ — testdata is invisible
// to `go list ./...`, so deliberately-violating code never pollutes the real
// tree — and are type-checked against the module's own export data, so they
// import the real repro/internal/... packages rather than mocks.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
)

var (
	exportsOnce sync.Once
	exportsMap  map[string]string
	exportsErr  error
)

// moduleRoot walks up from the current directory to the enclosing go.mod.
func moduleRoot(t *testing.T) string {
	dir, err := os.Getwd()
	if err != nil {
		t.Fatalf("getwd: %v", err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatalf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

func moduleExports(t *testing.T) map[string]string {
	exportsOnce.Do(func() {
		exportsMap, exportsErr = analysis.ModuleExports(moduleRoot(t))
	})
	if exportsErr != nil {
		t.Fatalf("building module export data: %v", exportsErr)
	}
	return exportsMap
}

// Result reports what one fixture run produced beyond the want-matching:
// diagnostics suppressed by //mpmdvet:ignore pragmas, so tests can assert the
// escape hatch actually engaged.
type Result struct {
	Suppressed []analysis.Suppression
}

// Run applies the analyzer to each named fixture directory under testdata and
// matches diagnostics (after pragma filtering) against // want expectations.
func Run(t *testing.T, a *analysis.Analyzer, fixtures ...string) []Result {
	t.Helper()
	exports := moduleExports(t)
	var results []Result
	for _, fx := range fixtures {
		results = append(results, runOne(t, a, exports, fx))
	}
	return results
}

func runOne(t *testing.T, a *analysis.Analyzer, exports map[string]string, fixture string) Result {
	t.Helper()
	dir := filepath.Join("testdata", fixture)
	fset := token.NewFileSet()
	pkg, err := analysis.LoadFixture(fset, dir, "fixture/"+fixture, exports)
	if err != nil {
		t.Fatalf("%s: %v", fixture, err)
	}
	// A fixture is its own whole program: transitive checks see every
	// function in the fixture package, so multi-hop witness chains are
	// testable without loading the real tree.
	prog := analysis.NewProgram([]*analysis.Package{pkg}, true)
	diags, _, err := analysis.RunAnalyzers(prog, pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("%s: running %s: %v", fixture, a.Name, err)
	}
	ignores, malformed := analysis.CollectIgnores(fset, pkg.Files)
	kept, suppressed := ignores.Filter(diags)
	kept = append(kept, malformed...)

	wants := collectWants(t, fset, pkg.Files)
	for _, d := range kept {
		pos := fset.Position(d.Pos)
		if !claimWant(wants, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s: unexpected diagnostic at %s: %s: %s", fixture, pos, d.Pass, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: %s:%d: no diagnostic matched want %q", fixture, w.file, w.line, w.re)
		}
	}
	return Result{Suppressed: suppressed}
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// collectWants parses `// want "re1" "re2"` and backquoted forms from every
// comment in the fixture.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 || strings.TrimSpace(text[:idx]) != "" {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pat := range splitPatterns(t, pos, text[idx+len("want "):]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// splitPatterns tokenizes a want payload: sequence of Go-quoted strings.
func splitPatterns(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte = s[0]
		if quote != '"' && quote != '`' {
			t.Fatalf("%s: want expectation must be a quoted string, got %q", pos, s)
		}
		end := 1
		for end < len(s) {
			if s[end] == quote && (quote == '`' || s[end-1] != '\\') {
				break
			}
			end++
		}
		if end == len(s) {
			t.Fatalf("%s: unterminated want pattern %q", pos, s)
		}
		tok := s[:end+1]
		pat, err := strconv.Unquote(tok)
		if err != nil {
			t.Fatalf("%s: cannot unquote want pattern %s: %v", pos, tok, err)
		}
		out = append(out, pat)
		s = strings.TrimSpace(s[end+1:])
	}
	if len(out) == 0 {
		t.Fatalf("%s: want with no patterns", pos)
	}
	return out
}

func claimWant(wants []*want, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// Fprintpos is a tiny helper for debugging fixtures by hand.
func Fprintpos(fset *token.FileSet, d analysis.Diagnostic) string {
	return fmt.Sprintf("%s: %s", fset.Position(d.Pos), d.Message)
}
