// Package analysis is the repo's static-analysis framework: a small,
// dependency-free mirror of the golang.org/x/tools/go/analysis API surface
// that mpmdvet's passes are written against.
//
// The runtime's correctness rests on conventions the compiler cannot see —
// pooled wire.Buf ownership transfer, nil-gated metrics record sites,
// allocation-free hot paths, word-only wire frames, accounting-cell access
// discipline. Each convention is enforced by one Analyzer in
// internal/analysis/passes, and two drivers run them: a standalone loader
// (Run in driver.go, used by `go run ./cmd/mpmdvet ./...` and the meta-test)
// and a `go vet -vettool` unitchecker (unitchecker.go), so the same passes
// gate CI through the toolchain's own vet plumbing.
//
// x/tools itself is deliberately not imported: the module is stdlib-only and
// must build hermetically, so the framework reimplements the narrow slice it
// needs (Analyzer/Pass/Diagnostic, a package loader over `go list -export`,
// and the vet unitchecker protocol) on go/ast, go/types, and go/importer.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sync"
	"time"
)

// Analyzer describes one mpmdvet pass.
type Analyzer struct {
	// Name identifies the pass in diagnostics and //mpmdvet:ignore pragmas.
	Name string
	// Doc is the one-paragraph description shown by `mpmdvet -help`.
	Doc string
	// Run applies the pass to one type-checked package.
	Run func(*Pass) error
	// Transitive marks a pass whose whole-program layer (call-graph
	// summaries) can only fire in the standalone driver, where every package
	// is loaded with sources. The unitchecker sees one unit at a time, so it
	// skips unused-pragma reporting for these passes: a pragma may suppress a
	// finding only the whole-program run produces.
	Transitive bool
}

// Pass is the interface between one Analyzer run and the driver: one
// type-checked package plus a diagnostic sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Prog is the whole loaded package set; transitive passes build the call
	// graph and its summaries from it (cached across passes via Prog.Fact).
	Prog *Program

	report func(Diagnostic)
}

// Program is the full set of packages one driver invocation loaded, plus a
// cache for facts derived from it (the call graph, bottom-up summaries).
// The standalone driver builds one Program for the whole tree; the
// unitchecker builds one per unit (a single package), so cross-package
// transitive checks degrade to intra-package there — Whole distinguishes the
// two so passes can gate diagnostics that only make sense with the full set
// in view (e.g. "interface has no implementers").
type Program struct {
	Pkgs  []*Package
	Whole bool

	mu    sync.Mutex
	facts map[any]*factEntry
}

type factEntry struct {
	once sync.Once
	val  any
}

// NewProgram wraps a loaded package set.
func NewProgram(pkgs []*Package, whole bool) *Program {
	return &Program{Pkgs: pkgs, Whole: whole, facts: map[any]*factEntry{}}
}

// Fact returns the cached fact under key, building it once on first request.
// Keys are comparable sentinel values (typically an unexported zero-size
// struct type per fact), so independent passes share one computation. The map
// lock is not held while build runs, so one fact's build may request other
// facts (a summary asking for the call graph); only a self-referential build
// (same key) would deadlock.
func (p *Program) Fact(key any, build func() any) any {
	p.mu.Lock()
	e, ok := p.facts[key]
	if !ok {
		e = &factEntry{}
		p.facts[key] = e
	}
	p.mu.Unlock()
	e.once.Do(func() { e.val = build() })
	return e.val
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pass    string
	Pos     token.Pos
	Message string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pass: p.Analyzer.Name, Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// RunAnalyzers applies every analyzer to the package and returns the
// unfiltered diagnostics in deterministic (position) order, plus the wall
// time spent per pass. Shared program facts (the call graph, its summaries)
// are built lazily and charged to the first pass that requests them.
func RunAnalyzers(prog *Program, pkg *Package, analyzers []*Analyzer) ([]Diagnostic, map[string]time.Duration, error) {
	var diags []Diagnostic
	wall := make(map[string]time.Duration, len(analyzers))
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.Info,
			Prog:      prog,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		start := time.Now()
		err := a.Run(pass)
		wall[a.Name] += time.Since(start)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	sortDiags(diags)
	return diags, wall, nil
}

// Package is one loaded, type-checked package (see load.go and
// unitchecker.go for the two ways one is built).
type Package struct {
	// ID is the driver-facing identity ("repro/internal/am" or the go list
	// test-variant form "p [p.test]").
	ID string
	// ImportPath is the canonical import path (no test-variant suffix).
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// NewInfo returns a types.Info with every map the passes consult populated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

func sortDiags(diags []Diagnostic) {
	// Insertion sort: diagnostic counts are tiny and the passes already
	// emit in near-positional order.
	for i := 1; i < len(diags); i++ {
		for j := i; j > 0 && less(diags[j], diags[j-1]); j-- {
			diags[j], diags[j-1] = diags[j-1], diags[j]
		}
	}
}

func less(a, b Diagnostic) bool {
	if a.Pos != b.Pos {
		return a.Pos < b.Pos
	}
	return a.Pass < b.Pass
}
