// Package analysis is the repo's static-analysis framework: a small,
// dependency-free mirror of the golang.org/x/tools/go/analysis API surface
// that mpmdvet's passes are written against.
//
// The runtime's correctness rests on conventions the compiler cannot see —
// pooled wire.Buf ownership transfer, nil-gated metrics record sites,
// allocation-free hot paths, word-only wire frames, accounting-cell access
// discipline. Each convention is enforced by one Analyzer in
// internal/analysis/passes, and two drivers run them: a standalone loader
// (Run in driver.go, used by `go run ./cmd/mpmdvet ./...` and the meta-test)
// and a `go vet -vettool` unitchecker (unitchecker.go), so the same passes
// gate CI through the toolchain's own vet plumbing.
//
// x/tools itself is deliberately not imported: the module is stdlib-only and
// must build hermetically, so the framework reimplements the narrow slice it
// needs (Analyzer/Pass/Diagnostic, a package loader over `go list -export`,
// and the vet unitchecker protocol) on go/ast, go/types, and go/importer.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one mpmdvet pass.
type Analyzer struct {
	// Name identifies the pass in diagnostics and //mpmdvet:ignore pragmas.
	Name string
	// Doc is the one-paragraph description shown by `mpmdvet -help`.
	Doc string
	// Run applies the pass to one type-checked package.
	Run func(*Pass) error
}

// Pass is the interface between one Analyzer run and the driver: one
// type-checked package plus a diagnostic sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pass    string
	Pos     token.Pos
	Message string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pass: p.Analyzer.Name, Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// RunAnalyzers applies every analyzer to the package and returns the
// unfiltered diagnostics in deterministic (position) order.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.Info,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	sortDiags(diags)
	return diags, nil
}

// Package is one loaded, type-checked package (see load.go and
// unitchecker.go for the two ways one is built).
type Package struct {
	// ID is the driver-facing identity ("repro/internal/am" or the go list
	// test-variant form "p [p.test]").
	ID string
	// ImportPath is the canonical import path (no test-variant suffix).
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// NewInfo returns a types.Info with every map the passes consult populated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

func sortDiags(diags []Diagnostic) {
	// Insertion sort: diagnostic counts are tiny and the passes already
	// emit in near-positional order.
	for i := 1; i < len(diags); i++ {
		for j := i; j > 0 && less(diags[j], diags[j-1]); j-- {
			diags[j], diags[j-1] = diags[j-1], diags[j]
		}
	}
}

func less(a, b Diagnostic) bool {
	if a.Pos != b.Pos {
		return a.Pos < b.Pos
	}
	return a.Pass < b.Pass
}
