package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestDiffBaseline(t *testing.T) {
	sum := &Summary{
		Suppressed: []Suppression{
			{Pass: "hotpath", Position: "a.go:10", Reason: "trace-gated"},
			{Pass: "hotpath", Position: "a.go:20", Reason: ""},
			{Pass: "bufown", Position: "b.go:5", Reason: "pool handoff"},
		},
		SuppressedByPass: map[string]int{"hotpath": 2, "bufown": 1},
	}
	base := &Baseline{SuppressedByPass: map[string]int{"hotpath": 1, "bufown": 2, "nilgate": 1}}
	drift := sum.DiffBaseline(base)
	if len(drift) != 4 {
		t.Fatalf("want 4 violations (1 missing reason, 3 count drifts), got %d: %v", len(drift), drift)
	}
	joined := strings.Join(drift, "\n")
	for _, want := range []string{
		"a.go:20: suppression of hotpath has no reason",
		"pass hotpath: 2 suppressions, baseline pins 1",
		"pass bufown: 1 suppressions, baseline pins 2",
		"pass nilgate: 0 suppressions, baseline pins 1",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing violation %q in:\n%s", want, joined)
		}
	}
}

func TestDiffBaselineExactMatchClean(t *testing.T) {
	sum := &Summary{
		Suppressed:       []Suppression{{Pass: "hotpath", Position: "a.go:1", Reason: "why"}},
		SuppressedByPass: map[string]int{"hotpath": 1},
	}
	base := &Baseline{SuppressedByPass: map[string]int{"hotpath": 1}}
	if drift := sum.DiffBaseline(base); len(drift) != 0 {
		t.Fatalf("exact match should be clean, got %v", drift)
	}
}

func TestLoadBaseline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "base.json")
	if _, err := LoadBaseline(path); err == nil {
		t.Fatal("expected an error for a missing baseline file")
	}
	writeFile(t, path, `{"suppressed_by_pass": {"hotpath": 3}}`)
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.SuppressedByPass["hotpath"] != 3 {
		t.Fatalf("bad baseline decode: %+v", b)
	}
	writeFile(t, path, `not json`)
	if _, err := LoadBaseline(path); err == nil || !strings.Contains(err.Error(), "baseline") {
		t.Fatalf("expected a decode error naming the file, got %v", err)
	}
}
