package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// vetConfig mirrors the JSON configuration `go vet` hands a -vettool for each
// package unit (cmd/go writes one <pkg>.cfg per unit and invokes the tool
// with it as the sole argument).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
	GoVersion                 string
}

// UnitcheckerMain implements the protocol `go vet -vettool=...` speaks:
//
//	tool -flags          print the tool's flags as JSON ("[]": we have none)
//	tool -V=full         print "<name> version <...> buildID=<hex>" — cmd/go
//	                     folds the ID into its action cache key, so it must
//	                     change whenever the tool's behavior does; we hash
//	                     the executable itself
//	tool <unit>.cfg      analyze one package unit
//
// It returns true when it handled the invocation (the caller should exit);
// false means the arguments are not a unitchecker invocation and the caller
// should fall through to its standalone mode.
func UnitcheckerMain(args []string, analyzers []*Analyzer) bool {
	if len(args) == 1 {
		switch {
		case args[0] == "-flags":
			fmt.Println("[]")
			os.Exit(0)
		case strings.HasPrefix(args[0], "-V="):
			fmt.Printf("%s version devel buildID=%s\n", filepath.Base(os.Args[0]), selfBuildID())
			os.Exit(0)
		case strings.HasSuffix(args[0], ".cfg"):
			runUnit(args[0], analyzers)
			os.Exit(0)
		}
	}
	return false
}

// selfBuildID hashes the running executable so recompiling the tool (or any
// pass) invalidates go vet's cached results.
func selfBuildID() string {
	exe, err := os.Executable()
	if err == nil {
		if f, err := os.Open(exe); err == nil {
			defer f.Close()
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				return fmt.Sprintf("%x", h.Sum(nil)[:16])
			}
		}
	}
	// Degrade to a constant: vet still works, it just re-runs more often.
	return "0000000000000000"
}

// runUnit analyzes one package unit described by a vet config file.
// Diagnostics go to stderr as file:line:col: pass: message and the process
// exits 2, which go vet renders and turns into a non-zero build result; a
// clean unit writes its (empty) .vetx facts file and exits 0.
func runUnit(cfgPath string, analyzers []*Analyzer) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatalf("reading vet config: %v", err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf("parsing vet config %s: %v", cfgPath, err)
	}

	// Dependencies are visited only for their facts; we keep no cross-package
	// facts, so an empty output file satisfies cmd/go's cache.
	if cfg.VetxOnly {
		writeVetx(cfg.VetxOutput)
		return
	}

	pkg, err := loadUnit(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx(cfg.VetxOutput)
			return
		}
		fatalf("%v", err)
	}

	diags, _, err := RunAnalyzers(NewProgram([]*Package{pkg}, false), pkg, analyzers)
	if err != nil {
		fatalf("%v", err)
	}
	ignores, malformed := CollectIgnores(pkg.Fset, pkg.Files)
	kept, _ := ignores.Filter(diags)
	kept = append(kept, malformed...)
	// Pragmas naming a transitive pass may suppress whole-program findings
	// this single-unit view cannot produce; the standalone driver (and its
	// baseline ratchet) polices those for staleness instead.
	transitive := map[string]bool{}
	for _, a := range analyzers {
		if a.Transitive {
			transitive[a.Name] = true
		}
	}
	kept = append(kept, ignores.Unused(func(pass string) bool {
		return transitive[pass] || (pass == "all" && len(transitive) > 0)
	})...)
	sortDiags(kept)

	if len(kept) > 0 {
		for _, d := range kept {
			fmt.Fprintf(os.Stderr, "%s: %s: %s\n", pkg.Fset.Position(d.Pos), d.Pass, d.Message)
		}
		os.Exit(2)
	}
	writeVetx(cfg.VetxOutput)
}

// loadUnit parses and type-checks the unit from a vet config: cmd/go has
// already built export data for every dependency (PackageFile), so this is
// the same importer arrangement as load.go with cmd/go doing the listing.
func loadUnit(cfg *vetConfig) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("unit %s has no Go files", cfg.ImportPath)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		e, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q in vet config for %s", path, cfg.ImportPath)
		}
		return os.Open(e)
	}
	info := NewInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, compiler, lookup)}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", cfg.ImportPath, err)
	}
	return &Package{
		ID:         cfg.ID,
		ImportPath: cfg.ImportPath,
		Fset:       fset,
		Files:      files,
		Pkg:        tpkg,
		Info:       info,
	}, nil
}

func writeVetx(path string) {
	if path == "" {
		return
	}
	if err := os.WriteFile(path, nil, 0o666); err != nil {
		fatalf("writing vetx output: %v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mpmdvet: "+format+"\n", args...)
	os.Exit(1)
}
