package blockhold_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/blockhold"
)

func TestBlockhold(t *testing.T) {
	results := analysistest.Run(t, blockhold.Analyzer, "a")
	if n := len(results[0].Suppressed); n != 1 {
		t.Errorf("expected exactly 1 pragma-suppressed diagnostic (the escape-hatch case), got %d", n)
	}
}

func TestBlockholdTransitive(t *testing.T) {
	analysistest.Run(t, blockhold.Analyzer, "chain")
}
