// Package chain exercises the transitive blockhold layer: a call made while
// a //mpmd:cpu mutex is held, into a callee that blocks anywhere downstream,
// is reported with the witness chain to the parking operation.
package chain

import (
	"sync"
	"time"
)

type core struct {
	mu sync.Mutex //mpmd:cpu
	in chan int
}

// nap parks two hops below the lock: the witness chain names every link.
func nap() {
	time.Sleep(time.Millisecond)
}

func settle() {
	nap()
}

func stallWhileHeld(c *core) {
	c.mu.Lock()
	settle() // want `settle → nap → time.Sleep \(chain\.go:18\) while holding mu`
	c.mu.Unlock()
}

// poll only ever polls: select with default is a poll, not a block.
func poll(c *core) int {
	select {
	case v := <-c.in:
		return v
	default:
		return 0
	}
}

func pollWhileHeld(c *core) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return poll(c) // clean: callee never blocks
}

func afterRelease(c *core) {
	c.mu.Lock()
	c.mu.Unlock()
	settle() // clean: lock already released
}

// spawner registers work without blocking: the goroutine parks itself, not
// the CPU holder.
func spawner(c *core) {
	go settle()
}

func spawnWhileHeld(c *core) {
	c.mu.Lock()
	spawner(c) // clean: go statements are excluded from the summary
	c.mu.Unlock()
}

// --- interface bounding ----------------------------------------------------

type waiter interface{ wait() }

type sleepy struct{}

func (sleepy) wait() { time.Sleep(time.Second) }

func waitWhileHeld(c *core, w waiter) {
	c.mu.Lock()
	w.wait() // want `\(sleepy\)\.wait → time\.Sleep \(chain\.go:71\) while holding mu`
	c.mu.Unlock()
}

type phantom interface{ vanish() }

func phantomWhileHeld(c *core, p phantom) {
	c.mu.Lock()
	p.vanish() // want `interface call phantom.vanish \(no implementers in the analyzed packages`
	c.mu.Unlock()
}
