// Package a exercises the blockhold pass: blocking operations while a
// //mpmd:cpu mutex is held, and the sanctioned shapes (poll selects, waits
// on the CPU's own cond, operations after release, non-CPU locks).
package a

import (
	"net"
	"sync"
	"time"
)

type node struct {
	mu   sync.Mutex //mpmd:cpu
	cond sync.Cond  //mpmdvet:cond mu
	out  chan int
}

type pair struct {
	mu    sync.Mutex //mpmd:cpu
	other sync.Mutex
	cd    sync.Cond //mpmdvet:cond other
}

type box struct {
	mu sync.Mutex // an ordinary lock: blocking under it is fine
}

// --- positives -------------------------------------------------------------

func sendWhileHeld(n *node) {
	n.mu.Lock()
	n.out <- 1 // want `channel send while holding`
	n.mu.Unlock()
}

func recvWhileHeld(n *node) int {
	n.mu.Lock()
	v := <-n.out // want `channel receive while holding`
	n.mu.Unlock()
	return v
}

func sleepWhileHeld(n *node) {
	n.mu.Lock()
	time.Sleep(time.Millisecond) // want `time.Sleep while holding`
	n.mu.Unlock()
}

func writeWhileHeld(n *node, c net.Conn) {
	n.mu.Lock()
	c.Write([]byte("x")) // want `network I/O`
	n.mu.Unlock()
}

func spinWhileHeld(n *node) {
	n.mu.Lock()
	for { // want `unbounded loop while holding`
	}
}

func rangeWhileHeld(n *node) {
	n.mu.Lock()
	for v := range n.out { // want `range over a channel while holding`
		_ = v
	}
	n.mu.Unlock()
}

func waitWrongLock(p *pair) {
	p.mu.Lock()
	p.cd.Wait() // want `Cond.Wait on a lock other than the held CPU mutex`
	p.mu.Unlock()
}

// --- negatives -------------------------------------------------------------

func afterUnlock(n *node) {
	n.mu.Lock()
	n.mu.Unlock()
	n.out <- 1
}

func pollWhileHeld(n *node) {
	n.mu.Lock()
	select {
	case n.out <- 1:
	default:
	}
	n.mu.Unlock()
}

func waitOwnLock(n *node) {
	n.mu.Lock()
	for len(n.out) == 0 {
		n.cond.Wait()
	}
	n.mu.Unlock()
}

func nonCPULock(b *box, ch chan int) {
	b.mu.Lock()
	ch <- 1
	b.mu.Unlock()
}

func spawnWhileHeld(n *node) {
	n.mu.Lock()
	go func() {
		n.out <- 1 // goroutine body has its own (empty) lockset
	}()
	n.mu.Unlock()
}

func pragmaEscapeHatch(n *node) {
	n.mu.Lock()
	n.out <- 1 //mpmdvet:ignore blockhold buffered channel sized for the bootstrap burst
	n.mu.Unlock()
}
