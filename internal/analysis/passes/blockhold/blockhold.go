// Package blockhold forbids blocking operations while a //mpmd:cpu mutex is
// held. Holding such a mutex models occupying a node's simulated processor:
// anything that can park the goroutine — channel operations, network I/O,
// time.Sleep, WaitGroup.Wait, a cond wait on some other lock, or an
// unbounded spin — stalls the CPU for every other goroutine queued on it.
//
// The cfg lockset analysis supplies the must-hold set at each statement, so
// operations after the Unlock (or on paths where the lock was released) are
// not flagged. Two blocking shapes are sanctioned:
//
//   - a select with a default clause is a poll, not a block
//   - Wait on the sync.Cond tied (//mpmdvet:cond) to the held CPU mutex
//     itself: Wait releases that lock while parked, which is the one
//     legitimate way to block "on CPU"
package blockhold

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
)

var Analyzer = &analysis.Analyzer{
	Name: "blockhold",
	Doc: "report blocking operations (channel ops, net I/O, sleeps, waits, " +
		"unbounded loops) while a //mpmd:cpu mutex is held",
	Run: run,
}

type checker struct {
	pass   *analysis.Pass
	info   *types.Info
	annots *cfg.Annotations
	// nonBlocking holds the comm statements of selects that carry a default
	// clause: those are polls.
	nonBlocking map[ast.Stmt]bool
}

func run(pass *analysis.Pass) error {
	annots := cfg.CollectAnnotations(pass.TypesInfo, pass.Files)
	if len(annots.CPU) == 0 {
		return nil
	}
	c := &checker{
		pass:        pass,
		info:        pass.TypesInfo,
		annots:      annots,
		nonBlocking: map[ast.Stmt]bool{},
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok {
				return true
			}
			hasDefault := false
			for _, cl := range sel.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				return true
			}
			for _, cl := range sel.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
					c.nonBlocking[cc.Comm] = true
				}
			}
			return true
		})
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					c.body(n.Body, cfg.EntryLocks(pass.TypesInfo, pass.Pkg, n, annots))
				}
			case *ast.FuncLit:
				c.body(n.Body, cfg.LockSet{})
			}
			return true
		})
	}
	return nil
}

func (c *checker) body(body *ast.BlockStmt, entry cfg.LockSet) {
	cfg.WalkLocked(c.info, body, entry, func(s cfg.LockSet, n ast.Node) {
		_, held, ok := s.HoldsClass(func(v *types.Var) bool { return c.annots.CPU[v] })
		if !ok {
			return
		}
		switch n := n.(type) {
		case *cfg.Fall:
			return
		case *ast.DeferStmt, *ast.GoStmt:
			// Registering a defer or spawning a goroutine does not block.
			return
		case *ast.RangeStmt:
			// The flat node stands for the range expression only; body
			// statements are their own nodes.
			if t := typeOf(c.info, n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					c.flag(n.Pos(), "range over a channel", held)
				}
			}
			return
		case *ast.ForStmt:
			// A condition-less for is emitted as a marker node: an unbounded
			// loop entered with the CPU held never yields it.
			if n.Cond == nil {
				c.flag(n.Pos(), "unbounded loop", held)
			}
			return
		}
		if stmt, isStmt := n.(ast.Stmt); isStmt && c.nonBlocking[stmt] {
			return
		}
		c.scan(n, s, held)
	})
}

// scan walks one flat node's expressions for blocking operations. Nested
// function literals are separate functions with their own locksets.
func (c *checker) scan(n ast.Node, s cfg.LockSet, held cfg.HeldLock) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			c.flag(m.Arrow, "channel send", held)
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				c.flag(m.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			if desc, blocking := c.classifyCall(m, s); blocking {
				c.flag(m.Pos(), desc, held)
			}
		}
		return true
	})
}

// classifyCall reports whether the call is a blocking operation under a held
// CPU lock, with a human description.
func (c *checker) classifyCall(call *ast.CallExpr, s cfg.LockSet) (string, bool) {
	// Cond.Wait: blocking unless it waits on the held CPU lock itself.
	if op, condKey, class, ok := cfg.MutexOp(c.info, call); ok {
		if op != cfg.OpWait {
			// Lock/Unlock ordering is lockorder's concern.
			return "", false
		}
		lockKey, known := c.condLock(condKey, class)
		if !known {
			return "sync.Cond.Wait on a cond with no //mpmdvet:cond annotation", true
		}
		if h, isHeld := s[lockKey]; isHeld && c.annots.CPU[h.Class] {
			return "", false
		}
		return "sync.Cond.Wait on a lock other than the held CPU mutex", true
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	// Package-qualified calls: time.Sleep and anything in net.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := c.info.Uses[id].(*types.PkgName); ok {
			path := pn.Imported().Path()
			if path == "time" && sel.Sel.Name == "Sleep" {
				return "time.Sleep", true
			}
			if path == "net" {
				return fmt.Sprintf("network call net.%s", sel.Sel.Name), true
			}
			return "", false
		}
	}
	// Method calls: WaitGroup.Wait and net.Conn (or any net type) methods.
	selection := c.info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return "", false
	}
	rt := analysis.Deref(types.Unalias(selection.Recv()))
	if analysis.IsNamed(rt, "sync", "WaitGroup") && sel.Sel.Name == "Wait" {
		return "sync.WaitGroup.Wait", true
	}
	if n, ok := types.Unalias(rt).(*types.Named); ok {
		if pkg := n.Obj().Pkg(); pkg != nil && pkg.Path() == "net" {
			return fmt.Sprintf("network I/O (%s.%s)", n.Obj().Name(), sel.Sel.Name), true
		}
	}
	return "", false
}

// condLock derives the lockset key of the mutex a cond is tied to: the
// cond's own key with its last segment replaced by the //mpmdvet:cond path.
func (c *checker) condLock(condKey string, class *types.Var) (string, bool) {
	path, ok := c.annots.Conds[class]
	if !ok {
		return "", false
	}
	i := strings.LastIndex(condKey, ".")
	if i < 0 {
		return "", false
	}
	return condKey[:i] + "." + path, true
}

func (c *checker) flag(pos token.Pos, desc string, held cfg.HeldLock) {
	c.pass.Reportf(pos,
		"%s while holding %s, a //mpmd:cpu mutex: blocking operations stall the simulated CPU",
		desc, classLabel(c.pass.Fset, held.Class))
}

func classLabel(fset *token.FileSet, v *types.Var) string {
	pos := fset.Position(v.Pos())
	return fmt.Sprintf("%s (declared at %s:%d)", v.Name(), pos.Filename, pos.Line)
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}
