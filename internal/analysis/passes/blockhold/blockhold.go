// Package blockhold forbids blocking operations while a //mpmd:cpu mutex is
// held. Holding such a mutex models occupying a node's simulated processor:
// anything that can park the goroutine — channel operations, network I/O,
// time.Sleep, WaitGroup.Wait, a cond wait on some other lock, or an
// unbounded spin — stalls the CPU for every other goroutine queued on it.
//
// The cfg lockset analysis supplies the must-hold set at each statement, so
// operations after the Unlock (or on paths where the lock was released) are
// not flagged. Two blocking shapes are sanctioned:
//
//   - a select with a default clause is a poll, not a block
//   - Wait on the sync.Cond tied (//mpmdvet:cond) to the held CPU mutex
//     itself: Wait releases that lock while parked, which is the one
//     legitimate way to block "on CPU"
//
// The transitive layer consults a bottom-up may-block summary over the call
// graph: a call made while a CPU mutex is held, into an in-set callee that
// can block anywhere downstream, is reported with the witness chain down to
// the parking operation. Deferred calls and go statements are excluded on
// both layers (registering is instant; a spawned goroutine parks itself, not
// the CPU holder), as are calls through plain function values (no tracking —
// a documented bound of the analysis).
package blockhold

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/cfg"
)

var Analyzer = &analysis.Analyzer{
	Name: "blockhold",
	Doc: "report blocking operations (channel ops, net I/O, sleeps, waits, " +
		"unbounded loops) while a //mpmd:cpu mutex is held, transitively through in-set callees",
	Run:        run,
	Transitive: true,
}

type checker struct {
	pass   *analysis.Pass
	info   *types.Info
	annots *cfg.Annotations
	graph  *callgraph.Graph
	facts  map[*callgraph.Node]BlockFact
	// nonBlocking holds the comm statements of selects that carry a default
	// clause: those are polls.
	nonBlocking map[ast.Stmt]bool
}

func run(pass *analysis.Pass) error {
	annots := cfg.CollectAnnotations(pass.TypesInfo, pass.Files)
	if len(annots.CPU) == 0 {
		return nil
	}
	c := &checker{
		pass:        pass,
		info:        pass.TypesInfo,
		annots:      annots,
		graph:       callgraph.Of(pass.Prog),
		facts:       Facts(pass.Prog),
		nonBlocking: map[ast.Stmt]bool{},
	}
	for _, f := range pass.Files {
		collectPolls(f, c.nonBlocking)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					c.body(n.Body, cfg.EntryLocks(pass.TypesInfo, pass.Pkg, n, annots), c.selfNode(n))
				}
			case *ast.FuncLit:
				c.body(n.Body, cfg.LockSet{}, nil)
			}
			return true
		})
	}
	return nil
}

// collectPolls marks the comm statements of selects carrying a default
// clause under root.
func collectPolls(root ast.Node, nonBlocking map[ast.Stmt]bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, cl := range sel.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, cl := range sel.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
				nonBlocking[cc.Comm] = true
			}
		}
		return true
	})
}

func (c *checker) selfNode(fd *ast.FuncDecl) *callgraph.Node {
	fn, _ := c.info.Defs[fd.Name].(*types.Func)
	return c.graph.NodeOf(fn)
}

func (c *checker) body(body *ast.BlockStmt, entry cfg.LockSet, self *callgraph.Node) {
	cfg.WalkLocked(c.info, body, entry, func(s cfg.LockSet, n ast.Node) {
		_, held, ok := s.HoldsClass(func(v *types.Var) bool { return c.annots.CPU[v] })
		if !ok {
			return
		}
		switch n := n.(type) {
		case *cfg.Fall:
			return
		case *ast.DeferStmt, *ast.GoStmt:
			// Registering a defer or spawning a goroutine does not block.
			return
		case *ast.RangeStmt:
			// The flat node stands for the range expression only; body
			// statements are their own nodes.
			if t := typeOf(c.info, n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					c.flag(n.Pos(), "range over a channel", held)
				}
			}
			return
		case *ast.ForStmt:
			// A condition-less for is emitted as a marker node: an unbounded
			// loop entered with the CPU held never yields it.
			if n.Cond == nil {
				c.flag(n.Pos(), "unbounded loop", held)
			}
			return
		}
		if stmt, isStmt := n.(ast.Stmt); isStmt && c.nonBlocking[stmt] {
			return
		}
		c.scan(n, s, held, self)
	})
}

// scan walks one flat node's expressions for blocking operations — direct
// ones, and calls whose may-block summary is dirty. Nested function literals
// are separate functions with their own locksets.
func (c *checker) scan(n ast.Node, s cfg.LockSet, held cfg.HeldLock, self *callgraph.Node) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			c.flag(m.Arrow, "channel send", held)
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				c.flag(m.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			if desc, blocking := classifyCall(c.info, c.annots, m, s); blocking {
				c.flag(m.Pos(), desc, held)
				return true
			}
			c.transitive(m, held, self)
		}
		return true
	})
}

// transitive reports a call into an in-set callee that can block downstream,
// with the witness chain to the parking operation.
func (c *checker) transitive(call *ast.CallExpr, held cfg.HeldLock, self *callgraph.Node) {
	site := c.graph.Sites[call]
	if site == nil {
		return
	}
	if site.NoImpl && c.pass.Prog.Whole {
		c.flag(call.Pos(), fmt.Sprintf(
			"interface call %s (no implementers in the analyzed packages; blocking behavior unverified)",
			site.Iface), held)
		return
	}
	for _, callee := range site.Callees {
		if callee == self {
			continue
		}
		f := c.facts[callee]
		if f.What == "" {
			continue
		}
		chain := witnessChain(c.facts, callee)
		c.flag(call.Pos(), callgraph.ChainString(chain, f.What, f.Pos), held)
		break // one witness per call site
	}
}

// BlockFact is the may-block summary of one function: What/Pos describe the
// leaf parking operation ("" = never blocks), Via the callee it is reached
// through (nil when it is in the function's own body).
type BlockFact struct {
	What string
	Pos  token.Pos
	Via  *callgraph.Node
}

type blockFactsKey struct{}

// Facts computes (once per Program) the may-block summary for every function
// in the analyzed set.
func Facts(prog *analysis.Program) map[*callgraph.Node]BlockFact {
	return prog.Fact(blockFactsKey{}, func() any {
		g := callgraph.Of(prog)
		return callgraph.Propagate[BlockFact](g, &blockSummary{
			annots: map[*analysis.Package]*cfg.Annotations{},
		})
	}).(map[*callgraph.Node]BlockFact)
}

type blockSummary struct {
	annots map[*analysis.Package]*cfg.Annotations
}

func (s *blockSummary) annotsOf(pkg *analysis.Package) *cfg.Annotations {
	a, ok := s.annots[pkg]
	if !ok {
		a = cfg.CollectAnnotations(pkg.Info, pkg.Files)
		s.annots[pkg] = a
	}
	return a
}

func (s *blockSummary) Compute(n *callgraph.Node, get func(*callgraph.Node) BlockFact) BlockFact {
	annots := s.annotsOf(n.Pkg)
	if what, pos, ok := firstBlocking(n.Pkg, annots, n.Decl); ok {
		return BlockFact{What: what, Pos: pos}
	}
	for _, e := range n.Out {
		switch e.Kind {
		case callgraph.KindMethodValue, callgraph.KindGo, callgraph.KindDefer:
			// References don't run here; spawned goroutines park themselves;
			// defers run at exit (registration is instant) — all excluded,
			// matching the intraprocedural layer.
			continue
		}
		if f := get(e.Callee); f.What != "" {
			return BlockFact{What: f.What, Pos: f.Pos, Via: e.Callee}
		}
	}
	return BlockFact{}
}

func (s *blockSummary) Equal(a, b BlockFact) bool { return a == b }

// witnessChain follows Via links from the first dirty callee down to the
// owner of the parking operation, guarding against pick-cycles.
func witnessChain(facts map[*callgraph.Node]BlockFact, start *callgraph.Node) []*callgraph.Node {
	var chain []*callgraph.Node
	seen := map[*callgraph.Node]bool{}
	for n := start; n != nil && !seen[n]; n = facts[n].Via {
		seen[n] = true
		chain = append(chain, n)
	}
	return chain
}

// firstBlocking returns the position-first blocking operation in fd's body,
// in the intraprocedural layer's vocabulary, regardless of held locks — the
// summary answers "can this callee park the goroutine at all"; the call-site
// check supplies the held-CPU context. Cond waits sanctioned by the
// function's own declared entry locks (//mpmdvet:locked on a //mpmd:cpu
// mutex with a tied cond) stay exempt.
func firstBlocking(pkg *analysis.Package, annots *cfg.Annotations, fd *ast.FuncDecl) (string, token.Pos, bool) {
	nonBlocking := map[ast.Stmt]bool{}
	collectPolls(fd.Body, nonBlocking)
	entry := cfg.EntryLocks(pkg.Info, pkg.Pkg, fd, annots)
	type hit struct {
		what string
		pos  token.Pos
	}
	var hits []hit
	add := func(what string, pos token.Pos) { hits = append(hits, hit{what, pos}) }
	cfg.WalkLocked(pkg.Info, fd.Body, entry, func(s cfg.LockSet, n ast.Node) {
		switch n := n.(type) {
		case *cfg.Fall:
			return
		case *ast.DeferStmt, *ast.GoStmt:
			return
		case *ast.RangeStmt:
			if t := typeOf(pkg.Info, n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					add("range over a channel", n.Pos())
				}
			}
			return
		case *ast.ForStmt:
			if n.Cond == nil {
				add("unbounded loop", n.Pos())
			}
			return
		}
		if stmt, isStmt := n.(ast.Stmt); isStmt && nonBlocking[stmt] {
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.SendStmt:
				add("channel send", m.Arrow)
			case *ast.UnaryExpr:
				if m.Op == token.ARROW {
					add("channel receive", m.Pos())
				}
			case *ast.CallExpr:
				if desc, blocking := classifyCall(pkg.Info, annots, m, s); blocking {
					add(desc, m.Pos())
				}
			}
			return true
		})
	})
	if len(hits) == 0 {
		return "", token.NoPos, false
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].pos < hits[j].pos })
	return hits[0].what, hits[0].pos, true
}

// classifyCall reports whether the call is a blocking operation, with a
// human description. The lockset sanctions Cond.Wait on a held CPU mutex.
func classifyCall(info *types.Info, annots *cfg.Annotations, call *ast.CallExpr, s cfg.LockSet) (string, bool) {
	// Cond.Wait: blocking unless it waits on the held CPU lock itself.
	if op, condKey, class, ok := cfg.MutexOp(info, call); ok {
		if op != cfg.OpWait {
			// Lock/Unlock ordering is lockorder's concern.
			return "", false
		}
		lockKey, known := condLock(annots, condKey, class)
		if !known {
			return "sync.Cond.Wait on a cond with no //mpmdvet:cond annotation", true
		}
		if h, isHeld := s[lockKey]; isHeld && annots.CPU[h.Class] {
			return "", false
		}
		return "sync.Cond.Wait on a lock other than the held CPU mutex", true
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	// Package-qualified calls: time.Sleep and anything in net.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := info.Uses[id].(*types.PkgName); ok {
			path := pn.Imported().Path()
			if path == "time" && sel.Sel.Name == "Sleep" {
				return "time.Sleep", true
			}
			if path == "net" {
				return fmt.Sprintf("network call net.%s", sel.Sel.Name), true
			}
			return "", false
		}
	}
	// Method calls: WaitGroup.Wait and net.Conn (or any net type) methods.
	selection := info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return "", false
	}
	rt := analysis.Deref(types.Unalias(selection.Recv()))
	if analysis.IsNamed(rt, "sync", "WaitGroup") && sel.Sel.Name == "Wait" {
		return "sync.WaitGroup.Wait", true
	}
	if n, ok := types.Unalias(rt).(*types.Named); ok {
		if pkg := n.Obj().Pkg(); pkg != nil && pkg.Path() == "net" {
			return fmt.Sprintf("network I/O (%s.%s)", n.Obj().Name(), sel.Sel.Name), true
		}
	}
	return "", false
}

// condLock derives the lockset key of the mutex a cond is tied to: the
// cond's own key with its last segment replaced by the //mpmdvet:cond path.
func condLock(annots *cfg.Annotations, condKey string, class *types.Var) (string, bool) {
	path, ok := annots.Conds[class]
	if !ok {
		return "", false
	}
	i := strings.LastIndex(condKey, ".")
	if i < 0 {
		return "", false
	}
	return condKey[:i] + "." + path, true
}

func (c *checker) flag(pos token.Pos, desc string, held cfg.HeldLock) {
	c.pass.Reportf(pos,
		"%s while holding %s, a //mpmd:cpu mutex: blocking operations stall the simulated CPU",
		desc, classLabel(c.pass.Fset, held.Class))
}

func classLabel(fset *token.FileSet, v *types.Var) string {
	pos := fset.Position(v.Pos())
	return fmt.Sprintf("%s (declared at %s:%d)", v.Name(), pos.Filename, pos.Line)
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}
