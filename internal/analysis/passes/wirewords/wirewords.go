// Package wirewords guards the frame-encoder invariant: any struct that
// reaches the netlive wire (it implements machine.WirePayload — WireLen() int
// plus EncodeWire([]byte) int — or is annotated //mpmd:wire) must be
// word-resolvable. Its fields, transitively, may only be booleans, fixed-size
// integers/floats, strings, byte slices, arrays/slices of those, or nested
// structs of the same shape. Pointers, interfaces (including any/error),
// chans, funcs, maps, complex numbers, uintptr, and unsafe.Pointer cannot be
// resolved to wire words and are flagged at the offending field.
//
// The check is structural, not import-based, so packages below machine in
// the dependency order are still checked. A field that is envelope-side
// bookkeeping stripped by the encoder (e.g. a pool back-reference) takes a
// //mpmdvet:ignore wirewords <reason> pragma.
package wirewords

import (
	"fmt"
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Directive force-marks a struct as wire-bound even without the methods.
const Directive = "//mpmd:wire"

var Analyzer = &analysis.Analyzer{
	Name: "wirewords",
	Doc: "check that structs reaching the netlive frame encoder (WirePayload implementors " +
		"or //mpmd:wire) contain only word-resolvable fields: no any, pointers, chan, func, or maps",
	Run: run,
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				obj, ok := info.Defs[ts.Name]
				if !ok || obj == nil {
					continue
				}
				named, ok := obj.Type().(*types.Named)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(gd.Specs) == 1 {
					doc = gd.Doc
				}
				if !isWirePayload(named) && !analysis.FuncDocHasDirective(doc, Directive) {
					continue
				}
				checkStruct(pass, named.Obj().Name(), st, map[*types.Named]bool{named: true})
			}
		}
	}
	return nil
}

// isWirePayload reports whether *T or T has both WireLen() int and
// EncodeWire([]byte) int — the machine.WirePayload contract, matched
// structurally so the pass needs no import of internal/machine.
func isWirePayload(named *types.Named) bool {
	ms := types.NewMethodSet(types.NewPointer(named))
	var wireLen, encodeWire bool
	for i := 0; i < ms.Len(); i++ {
		fn, ok := ms.At(i).Obj().(*types.Func)
		if !ok {
			continue
		}
		sig := fn.Type().(*types.Signature)
		switch fn.Name() {
		case "WireLen":
			wireLen = sig.Params().Len() == 0 && sig.Results().Len() == 1 && isInt(sig.Results().At(0).Type())
		case "EncodeWire":
			encodeWire = sig.Params().Len() == 1 && isByteSlice(sig.Params().At(0).Type()) &&
				sig.Results().Len() == 1 && isInt(sig.Results().At(0).Type())
		}
	}
	return wireLen && encodeWire
}

// checkStruct validates every field of a wire-bound struct declared in this
// package, recursing into nested named structs (reported at the top-level
// field when the nested type lives in another package).
func checkStruct(pass *analysis.Pass, structName string, st *ast.StructType, visiting map[*types.Named]bool) {
	info := pass.TypesInfo
	for _, field := range st.Fields.List {
		tv, ok := info.Types[field.Type]
		if !ok {
			continue
		}
		names := fieldNames(field)
		if why, bad := badWireType(tv.Type, visiting); bad {
			pass.Reportf(field.Pos(),
				"wire-bound struct %s: field %s has type %s (%s) — frames carry only word-resolvable data: no any, pointers, chan, func, or maps",
				structName, names, tv.Type, why)
		}
	}
}

func fieldNames(field *ast.Field) string {
	if len(field.Names) == 0 {
		return "(embedded)"
	}
	s := field.Names[0].Name
	for _, n := range field.Names[1:] {
		s += ", " + n.Name
	}
	return s
}

// badWireType classifies a type as wire-resolvable or not; why names the
// first offending component.
func badWireType(t types.Type, visiting map[*types.Named]bool) (why string, bad bool) {
	t = types.Unalias(t)
	if named, ok := t.(*types.Named); ok {
		if visiting[named] {
			return "", false // already being validated
		}
		visiting[named] = true
		defer delete(visiting, named)
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		switch {
		case u.Info()&(types.IsBoolean|types.IsInteger|types.IsFloat|types.IsString) == 0:
			return fmt.Sprintf("%s is not a wire word", u), true
		case u.Kind() == types.Uintptr, u.Kind() == types.UnsafePointer:
			return "uintptr/unsafe.Pointer is not portable wire data", true
		}
		return "", false
	case *types.Array:
		return badWireType(u.Elem(), visiting)
	case *types.Slice:
		return badWireType(u.Elem(), visiting)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if why, bad := badWireType(u.Field(i).Type(), visiting); bad {
				return fmt.Sprintf("field %s: %s", u.Field(i).Name(), why), true
			}
		}
		return "", false
	case *types.Pointer:
		return "pointer", true
	case *types.Interface:
		return "interface", true
	case *types.Chan:
		return "chan", true
	case *types.Signature:
		return "func", true
	case *types.Map:
		return "map", true
	}
	return fmt.Sprintf("unsupported kind %T", t.Underlying()), true
}

func isInt(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Int
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
