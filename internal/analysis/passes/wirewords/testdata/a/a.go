// Package a exercises the wirewords pass: structs reaching the frame encoder
// (WirePayload implementors or //mpmd:wire) must be word-resolvable.
package a

// --- positives -------------------------------------------------------------

type badPtr struct {
	N int64
	P *int64 // want `pointer`
}

func (b *badPtr) WireLen() int              { return 16 }
func (b *badPtr) EncodeWire(dst []byte) int { return 16 }

type badMap struct {
	M map[string]int // want `map`
}

func (b *badMap) WireLen() int              { return 0 }
func (b *badMap) EncodeWire(dst []byte) int { return 0 }

type badAny struct {
	V any // want `interface`
}

func (b *badAny) WireLen() int              { return 0 }
func (b *badAny) EncodeWire(dst []byte) int { return 0 }

type inner struct {
	C chan int
}

type badNested struct {
	In inner // want `field C: chan`
}

func (b *badNested) WireLen() int              { return 0 }
func (b *badNested) EncodeWire(dst []byte) int { return 0 }

//mpmd:wire
type badAnnotated struct {
	F func() // want `func`
}

// --- negatives -------------------------------------------------------------

type okWords struct {
	Bulk    bool
	Src     int32
	A       [4]uint64
	Name    string
	Payload []byte
	Sub     okNested
}

type okNested struct {
	X float64
	Y []uint32
}

func (m *okWords) WireLen() int              { return 0 }
func (m *okWords) EncodeWire(dst []byte) int { return 0 }

// notWire never reaches the encoder: no methods, no directive — any shape
// is fine.
type notWire struct {
	M map[string]chan func()
	P *notWire
}

type okPragma struct {
	Payload []byte
	//mpmdvet:ignore wirewords envelope bookkeeping the encoder strips before framing
	Pool *int
}

func (m *okPragma) WireLen() int              { return 0 }
func (m *okPragma) EncodeWire(dst []byte) int { return 0 }
