package wirewords_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/wirewords"
)

func TestWirewords(t *testing.T) {
	results := analysistest.Run(t, wirewords.Analyzer, "a")
	if n := len(results[0].Suppressed); n != 1 {
		t.Errorf("expected exactly 1 pragma-suppressed diagnostic (the envelope field), got %d", n)
	}
}
