// Package chain exercises lockguard's transitive layer: //mpmdvet:requires
// contracts enforced at call sites, and helper lock effects (net acquire /
// release) applied through the call-graph summary.
package chain

import "sync"

type store struct {
	mu sync.Mutex
	n  int //mpmdvet:guard mu
}

// bump mutates guarded state on the caller's behalf; the contract makes
// every call site prove the lock.
//
//mpmdvet:requires s.mu
func bump(s *store) {
	s.n++ // clean: requires seeds the entry lockset
}

func goodCaller(s *store) {
	s.mu.Lock()
	bump(s)
	s.mu.Unlock()
}

func badCaller(s *store) {
	bump(s) // want `call to bump requires s\.mu held \(//mpmdvet:requires, declared at chain\.go:\d+\): not provably held at this call`
}

// bumpLocked is the method form of the same contract.
//
//mpmdvet:requires st.mu
func (st *store) bumpLocked() {
	st.n++
}

func badMethodCaller(s *store) {
	s.bumpLocked() // want `call to \(\*store\)\.bumpLocked requires s\.mu held`
}

// lock is a net-acquire helper: the summary sees mu held at every exit, so
// callers get the lock in their set without an inline mu.Lock().
func lock(s *store) {
	s.mu.Lock()
}

// unlock releases on the caller's behalf; requires doubles as the release
// root (entry-held, gone at exit).
//
//mpmdvet:requires s.mu
func unlock(s *store) {
	s.mu.Unlock()
}

func viaHelpers(s *store) {
	lock(s)
	bump(s) // clean: lock's net-acquire effect reached this site
	unlock(s)
}

func afterUnlockHelper(s *store) {
	lock(s)
	unlock(s)
	s.n++ // want `field n is guarded by mu \(//mpmdvet:guard\): not provably held at this access`
}

// lockIndirect acquires through another helper: effects compose bottom-up
// through the summary fixpoint.
func lockIndirect(s *store) {
	lock(s)
}

func viaIndirect(s *store) {
	lockIndirect(s)
	s.n++ // clean: the nested net-acquire composes
	s.mu.Unlock()
}

// withLock shows a contract rooted at a bare mutex parameter.
//
//mpmdvet:requires mu
func withLock(mu *sync.Mutex) {
	_ = mu
}

func goodParamCaller(s *store) {
	s.mu.Lock()
	withLock(&s.mu)
	s.mu.Unlock()
}

func badParamCaller(s *store) {
	withLock(&s.mu) // want `call to withLock requires s\.mu held`
}

// Deferred and spawned calls are exempt: a goroutine does not inherit the
// caller's locks, and defers run at exit where the set is unknown.
func deferredUnlock(s *store) {
	lock(s)
	defer unlock(s) // clean: exempt, and the deferred release keeps mu held below
	s.n++           // clean
}
