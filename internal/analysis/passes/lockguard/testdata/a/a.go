// Package a exercises the lockguard pass: guarded-field accesses with and
// without the declared mutex held, cross-struct guard paths, promoted
// mutexes, read-lock writes, //mpmdvet:locked entry seeding, and the
// cond.Wait-preserves-the-lock idiom.
package a

import "sync"

type node struct {
	mu    sync.Mutex
	count int //mpmdvet:guard mu
}

type proc struct {
	nd   *node
	done bool //mpmdvet:guard nd.mu
}

type table struct {
	rw sync.RWMutex
	m  map[int]int //mpmdvet:guard rw
}

type q struct {
	sync.Mutex
	items []int //mpmdvet:guard Mutex
}

type waiter struct {
	mu    sync.Mutex
	cond  sync.Cond //mpmdvet:cond mu
	ready bool      //mpmdvet:guard mu
}

// --- positives -------------------------------------------------------------

func plainAccess(n *node) int {
	return n.count // want `guarded by mu`
}

func accessAfterUnlock(n *node) int {
	n.mu.Lock()
	n.count++
	n.mu.Unlock()
	return n.count // want `guarded by mu`
}

func writeUnderReadLock(t *table) {
	t.rw.RLock()
	defer t.rw.RUnlock()
	t.m = nil // want `holding only the read lock`
}

func crossStructNoLock(p *proc) {
	p.done = true // want `guarded by nd.mu`
}

func closureWithoutLock(n *node) func() {
	n.mu.Lock()
	defer n.mu.Unlock()
	// The literal runs later, lock-free: it must take the lock itself.
	return func() {
		n.count++ // want `guarded by mu`
	}
}

// --- negatives -------------------------------------------------------------

func lockedAccess(n *node) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.count++
	return n.count
}

//mpmdvet:locked n.mu
func drainLocked(n *node) {
	n.count = 0
}

func waitLoop(w *waiter) {
	w.mu.Lock()
	for !w.ready {
		w.cond.Wait() // reacquires w.mu before returning
	}
	w.ready = false
	w.mu.Unlock()
}

func construction() *proc {
	// Composite-literal keys are construction, not shared access.
	return &proc{nd: &node{}, done: false}
}

func promotedMutex(x *q) {
	x.Lock()
	x.items = append(x.items, 1)
	x.Unlock()
}

func readUnderReadLock(t *table) int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.m[0]
}

// The escape hatch: a deliberate unguarded access justified in place is
// suppressed and counted, not reported.
func pragmaEscapeHatch(n *node) int {
	return n.count //mpmdvet:ignore lockguard single-writer phase before goroutines start
}
