// Package lockguard turns `Guarded by` prose into a checked invariant: a
// struct field annotated
//
//	done bool //mpmdvet:guard nd.mu
//
// may only be accessed while the named mutex is held. The pass runs the cfg
// package's must-hold lockset analysis over every function body and checks
// each field selector against the guard path, which is resolved relative to
// the access base: p.done requires p.nd.mu in the lockset. A function the
// runtime only calls with a lock already held declares it with
// //mpmdvet:locked <recv.path>, which seeds the entry lockset; cond.Wait is
// lock-preserving (sync.Cond reacquires before returning), so wait loops
// check clean. Writes under an RLock are reported separately: a read lock
// licenses reads only.
//
// Construction sites are exempt by shape: composite-literal keys
// (&Proc{done: …}) are not selector accesses, matching the convention that
// a value is unshared until published. Accesses whose base is not a
// variable/field path (a call result, a map element) cannot be proven and
// are skipped — keep guarded fields reachable through named paths.
//
// Malformed or unresolvable concurrency annotations (guard/locked/cond/cpu)
// are reported by this pass, once per package.
package lockguard

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockguard",
	Doc: "check that //mpmdvet:guard fields are only accessed with their mutex held " +
		"(lockset analysis; //mpmdvet:locked seeds entry locks, cond.Wait preserves them)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	annots := cfg.CollectAnnotations(pass.TypesInfo, pass.Files)
	c := &checker{pass: pass, info: pass.TypesInfo, annots: annots}
	if len(annots.Guards) > 0 {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body != nil {
						entry := cfg.EntryLocks(pass.TypesInfo, pass.Pkg, n, annots)
						c.body(n.Body, entry)
					}
				case *ast.FuncLit:
					// Every literal is its own function starting lock-free;
					// one that needs a lock takes it itself (the Go()
					// closure idiom). Inspect finds nested literals too.
					c.body(n.Body, cfg.LockSet{})
				}
				return true
			})
		}
	}
	for _, w := range annots.Warnings {
		pass.Reportf(w.Pos, "%s", w.Message)
	}
	return nil
}

type checker struct {
	pass   *analysis.Pass
	info   *types.Info
	annots *cfg.Annotations
}

func (c *checker) body(body *ast.BlockStmt, entry cfg.LockSet) {
	cfg.WalkLocked(c.info, body, entry, c.node)
}

// node checks one flat CFG node's expressions against the pre-state.
func (c *checker) node(s cfg.LockSet, n ast.Node) {
	switch n := n.(type) {
	case *cfg.Fall, *ast.ForStmt:
		// Synthetic exit / condition-less loop marker: no expressions.
	case *ast.RangeStmt:
		c.tree(s, n.X, nil)
		writes := map[ast.Expr]bool{}
		if n.Key != nil {
			writes[ast.Unparen(n.Key)] = true
			c.tree(s, n.Key, writes)
		}
		if n.Value != nil {
			writes[ast.Unparen(n.Value)] = true
			c.tree(s, n.Value, writes)
		}
	case *ast.AssignStmt:
		writes := map[ast.Expr]bool{}
		for _, l := range n.Lhs {
			writes[ast.Unparen(l)] = true
		}
		for _, l := range n.Lhs {
			c.tree(s, l, writes)
		}
		for _, r := range n.Rhs {
			c.tree(s, r, nil)
		}
	case *ast.IncDecStmt:
		writes := map[ast.Expr]bool{ast.Unparen(n.X): true}
		c.tree(s, n.X, writes)
	default:
		c.tree(s, n, nil)
	}
}

// tree walks a node subtree checking guarded-field selectors. writes marks
// expressions that are assignment targets (write accesses). FuncLit bodies
// are skipped — they are analyzed as their own functions.
func (c *checker) tree(s cfg.LockSet, root ast.Node, writes map[ast.Expr]bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectorExpr:
			c.selector(s, n, writes[n])
		}
		return true
	})
}

func (c *checker) selector(s cfg.LockSet, sel *ast.SelectorExpr, isWrite bool) {
	selection := c.info.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok {
		return
	}
	guard, guarded := c.annots.Guards[field]
	if !guarded {
		return
	}
	base, ok := analysis.ExprKey(c.info, sel.X)
	if !ok {
		return // unprovable base (call result, map element): skip
	}
	// Splice embedded hops from promoted access so the base names the
	// field's immediate owner struct, which the guard path is relative to.
	index := selection.Index()
	if len(index) > 1 {
		t := baseType(c.info, sel.X)
		for _, idx := range index[:len(index)-1] {
			st, isStruct := analysis.Deref(types.Unalias(t)).Underlying().(*types.Struct)
			if !isStruct {
				return
			}
			f := st.Field(idx)
			base += "." + f.Name()
			t = f.Type()
		}
	}
	required := base + "." + guard
	held, ok := s[required]
	if !ok {
		c.pass.Reportf(sel.Sel.Pos(),
			"field %s is guarded by %s (%s): not provably held at this access",
			field.Name(), guard, cfg.GuardDirective)
		return
	}
	if held.RLock && isWrite {
		c.pass.Reportf(sel.Sel.Pos(),
			"write to field %s while holding only the read lock of %s", field.Name(), guard)
	}
}

func baseType(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}
