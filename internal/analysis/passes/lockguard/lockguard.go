// Package lockguard turns `Guarded by` prose into a checked invariant: a
// struct field annotated
//
//	done bool //mpmdvet:guard nd.mu
//
// may only be accessed while the named mutex is held. The pass runs the cfg
// package's must-hold lockset analysis over every function body and checks
// each field selector against the guard path, which is resolved relative to
// the access base: p.done requires p.nd.mu in the lockset. A function the
// runtime only calls with a lock already held declares it with
// //mpmdvet:locked <recv.path>, which seeds the entry lockset; cond.Wait is
// lock-preserving (sync.Cond reacquires before returning), so wait loops
// check clean. Writes under an RLock are reported separately: a read lock
// licenses reads only.
//
// The transitive layer rides on the lock-effect summary (cfg.LockFacts over
// the program call graph):
//
//   - //mpmdvet:requires <path> on a function is a checked contract: every
//     call site the graph resolves must provably hold the named lock (the
//     path, rooted at the callee's receiver or a parameter, is re-resolved
//     against the caller's argument expressions). Inside the body it seeds
//     the entry lockset like //mpmdvet:locked.
//   - Helper functions that net-acquire or net-release a receiver- or
//     parameter-rooted lock have that effect applied at statement-level
//     static call sites, so lock()/unlock() wrappers are understood by the
//     must-hold walk instead of hiding the lock from it.
//
// Bounds, by design: effects and contracts flow only through single static
// in-set callees; calls in go/defer statements are exempt from requires
// enforcement (a goroutine does not inherit the caller's locks, and defers
// run at exit where the set is unknown); locks not rooted at the receiver
// or a parameter (globals) are not summarizable.
//
// Construction sites are exempt by shape: composite-literal keys
// (&Proc{done: …}) are not selector accesses, matching the convention that
// a value is unshared until published. Accesses whose base is not a
// variable/field path (a call result, a map element) cannot be proven and
// are skipped — keep guarded fields reachable through named paths.
//
// Malformed or unresolvable concurrency annotations (guard/locked/cond/cpu/
// requires) are reported by this pass, once per package.
package lockguard

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/cfg"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockguard",
	Doc: "check that //mpmdvet:guard fields are only accessed with their mutex held " +
		"(lockset analysis; //mpmdvet:locked seeds entry locks, cond.Wait preserves them) " +
		"and that //mpmdvet:requires contracts hold at every resolvable call site, with " +
		"helper lock effects applied transitively through the call-graph summary",
	Run:        run,
	Transitive: true,
}

func run(pass *analysis.Pass) error {
	annots := cfg.CollectAnnotations(pass.TypesInfo, pass.Files)
	g := callgraph.Of(pass.Prog)
	facts := cfg.LockFacts(pass.Prog)
	hasContracts := false
	for _, f := range facts {
		if len(f.Requires) > 0 {
			hasContracts = true
			break
		}
	}
	c := &checker{pass: pass, info: pass.TypesInfo, annots: annots, graph: g, facts: facts}
	if len(annots.Guards) > 0 || hasContracts {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body != nil {
						entry := cfg.EntryLocks(pass.TypesInfo, pass.Pkg, n, annots)
						c.body(n.Body, entry)
					}
				case *ast.FuncLit:
					// Every literal is its own function starting lock-free;
					// one that needs a lock takes it itself (the Go()
					// closure idiom). Inspect finds nested literals too.
					c.body(n.Body, cfg.LockSet{})
				}
				return true
			})
		}
	}
	for _, w := range annots.Warnings {
		pass.Reportf(w.Pos, "%s", w.Message)
	}
	return nil
}

type checker struct {
	pass   *analysis.Pass
	info   *types.Info
	annots *cfg.Annotations
	graph  *callgraph.Graph
	facts  map[*callgraph.Node]cfg.LockFact
}

func (c *checker) body(body *ast.BlockStmt, entry cfg.LockSet) {
	fx := func(s cfg.LockSet, call *ast.CallExpr) {
		cfg.ApplyLockEffects(c.info, c.pass.Pkg, c.graph, func(n *callgraph.Node) cfg.LockFact { return c.facts[n] }, s, call)
	}
	cfg.WalkLockedFx(c.info, body, entry, fx, c.node)
}

// node checks one flat CFG node's expressions against the pre-state.
func (c *checker) node(s cfg.LockSet, n ast.Node) {
	switch n := n.(type) {
	case *cfg.Fall, *ast.ForStmt:
		// Synthetic exit / condition-less loop marker: no expressions.
	case *ast.RangeStmt:
		c.tree(s, n.X, nil)
		writes := map[ast.Expr]bool{}
		if n.Key != nil {
			writes[ast.Unparen(n.Key)] = true
			c.tree(s, n.Key, writes)
		}
		if n.Value != nil {
			writes[ast.Unparen(n.Value)] = true
			c.tree(s, n.Value, writes)
		}
	case *ast.AssignStmt:
		writes := map[ast.Expr]bool{}
		for _, l := range n.Lhs {
			writes[ast.Unparen(l)] = true
		}
		for _, l := range n.Lhs {
			c.tree(s, l, writes)
		}
		for _, r := range n.Rhs {
			c.tree(s, r, nil)
		}
	case *ast.IncDecStmt:
		writes := map[ast.Expr]bool{ast.Unparen(n.X): true}
		c.tree(s, n.X, writes)
	default:
		c.tree(s, n, nil)
	}
}

// tree walks a node subtree checking guarded-field selectors and requires
// contracts at calls. writes marks expressions that are assignment targets
// (write accesses). FuncLit bodies are skipped — they are analyzed as their
// own functions. Calls spawned or deferred are exempt from contract checks
// (see the package doc's bounds).
func (c *checker) tree(s cfg.LockSet, root ast.Node, writes map[ast.Expr]bool) {
	var exempt map[*ast.CallExpr]bool
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			if exempt == nil {
				exempt = map[*ast.CallExpr]bool{}
			}
			exempt[n.Call] = true
		case *ast.DeferStmt:
			if exempt == nil {
				exempt = map[*ast.CallExpr]bool{}
			}
			exempt[n.Call] = true
		case *ast.CallExpr:
			if !exempt[n] {
				c.contract(s, n)
			}
		case *ast.SelectorExpr:
			c.selector(s, n, writes[n])
		}
		return true
	})
}

// contract enforces every resolvable //mpmdvet:requires declaration of the
// call's possible callees against the pre-state lockset.
func (c *checker) contract(s cfg.LockSet, call *ast.CallExpr) {
	site := c.graph.Sites[call]
	if site == nil || site.Kind == callgraph.KindMethodValue {
		return // not a call the graph resolved, or a value reference, not a call
	}
	for _, callee := range site.Callees {
		for _, r := range c.facts[callee].Requires {
			key, _, ok := cfg.ResolveReq(c.info, c.pass.Pkg, call, r)
			if !ok {
				continue // argument path not keyable: cannot prove either way
			}
			if _, held := s[key]; held {
				continue
			}
			pos := c.pass.Fset.Position(r.Pos)
			c.pass.Reportf(call.Pos(),
				"call to %s requires %s held (%s, declared at %s:%d): not provably held at this call",
				callee.Name(), cfg.CallerPath(call, r), cfg.RequiresDirective,
				shortName(pos.Filename), pos.Line)
		}
	}
}

func shortName(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

func (c *checker) selector(s cfg.LockSet, sel *ast.SelectorExpr, isWrite bool) {
	selection := c.info.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok {
		return
	}
	guard, guarded := c.annots.Guards[field]
	if !guarded {
		return
	}
	base, ok := analysis.ExprKey(c.info, sel.X)
	if !ok {
		return // unprovable base (call result, map element): skip
	}
	// Splice embedded hops from promoted access so the base names the
	// field's immediate owner struct, which the guard path is relative to.
	index := selection.Index()
	if len(index) > 1 {
		t := baseType(c.info, sel.X)
		for _, idx := range index[:len(index)-1] {
			st, isStruct := analysis.Deref(types.Unalias(t)).Underlying().(*types.Struct)
			if !isStruct {
				return
			}
			f := st.Field(idx)
			base += "." + f.Name()
			t = f.Type()
		}
	}
	required := base + "." + guard
	held, ok := s[required]
	if !ok {
		c.pass.Reportf(sel.Sel.Pos(),
			"field %s is guarded by %s (%s): not provably held at this access",
			field.Name(), guard, cfg.GuardDirective)
		return
	}
	if held.RLock && isWrite {
		c.pass.Reportf(sel.Sel.Pos(),
			"write to field %s while holding only the read lock of %s", field.Name(), guard)
	}
}

func baseType(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}
