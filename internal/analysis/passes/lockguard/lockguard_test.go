package lockguard_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/lockguard"
)

func TestLockguard(t *testing.T) {
	results := analysistest.Run(t, lockguard.Analyzer, "a")
	if n := len(results[0].Suppressed); n != 1 {
		t.Errorf("expected exactly 1 pragma-suppressed diagnostic (the escape-hatch case), got %d", n)
	}
}

func TestLockguardTransitive(t *testing.T) {
	analysistest.Run(t, lockguard.Analyzer, "chain")
}
