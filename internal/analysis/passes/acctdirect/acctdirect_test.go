package acctdirect_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/acctdirect"
)

func TestAcctdirect(t *testing.T) {
	results := analysistest.Run(t, acctdirect.Analyzer, "a")
	if n := len(results[0].Suppressed); n != 1 {
		t.Errorf("expected exactly 1 pragma-suppressed diagnostic (the synthetic snapshot), got %d", n)
	}
}
