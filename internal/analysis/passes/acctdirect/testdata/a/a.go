// Package a exercises the acctdirect pass: outside internal/machine the
// accounting cells are reachable read-only, with typed-constant indexing.
package a

import (
	"time"

	"repro/internal/machine"
)

// --- positives -------------------------------------------------------------

func badWrite(s *machine.Snapshot) {
	s.Buckets[machine.CatCPU] = time.Second // want `writes accounting cell`
}

func badIncrement(s *machine.Snapshot) {
	s.Counters[machine.CntMsgShort]++ // want `mutates accounting cell`
}

func badRawIndex(s machine.Snapshot) int64 {
	return s.Counters[0] // want `raw`
}

func badAddressEscape(s *machine.Snapshot) *time.Duration {
	return &s.Buckets[machine.CatNet] // want `address`
}

func badCounterSetRaw(cs machine.CounterSet) int64 {
	return cs[1] // want `raw`
}

// --- negatives -------------------------------------------------------------

func okTypedRead(s machine.Snapshot) int64 {
	return s.Counters[machine.CntMsgShort]
}

func okRangeRead(s machine.Snapshot) time.Duration {
	var tot time.Duration
	for i := range s.Buckets {
		tot += s.Buckets[i]
	}
	return tot
}

func okWholeCopy(s machine.Snapshot) machine.CounterSet {
	return s.Counters
}

func okTypedCounterSet(cs machine.CounterSet) int64 {
	return cs[machine.CntMsgBulk]
}

func okPragma(s *machine.Snapshot) {
	s.Buckets[machine.CatCPU] = time.Millisecond //mpmdvet:ignore acctdirect fixture fabricates a synthetic snapshot
}
