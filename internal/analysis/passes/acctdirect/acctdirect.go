// Package acctdirect fences the per-node accounting cells: outside
// internal/machine, code may observe accounting state only through the
// Accounting.Add/Count/Snapshot API. Reaching into a Snapshot's Buckets or
// Counters arrays is read-only territory, and even reads must index with the
// typed constants (machine.Category / machine.Cnt) so a renumbering of the
// cells cannot silently misattribute time.
//
// Flagged outside internal/machine:
//
//   - any write through .Buckets or .Counters (assignment, ++/--, &-escape)
//   - indexing either array with an expression that is not typed
//     machine.Category / machine.Cnt
//
// Reads via typed constants and whole-value copies stay legal — snapshots
// are values by design. Test fixtures that fabricate synthetic snapshots use
// the //mpmdvet:ignore acctdirect pragma.
package acctdirect

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "acctdirect",
	Doc: "check that accounting cells outside internal/machine are touched only via " +
		"Accounting.Add/Count/Snapshot, with typed-constant indexing on snapshot reads",
	Run: run,
}

// cells maps the exported array field name to the typed index it requires.
var cells = map[string]string{
	"Buckets":  "Category",
	"Counters": "Cnt",
}

func run(pass *analysis.Pass) error {
	if analysis.PkgPathMatches(pass.Pkg, "internal/machine") {
		return nil // the implementation owns its cells
	}
	info := pass.TypesInfo
	for _, f := range pass.Files {
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if sel, name := cellRef(info, lhs); sel != nil {
						pass.Reportf(lhs.Pos(),
							"writes accounting cell %s directly outside internal/machine: go through Accounting.Add/Count; snapshots are read-only", name)
					}
				}
			case *ast.IncDecStmt:
				if sel, name := cellRef(info, n.X); sel != nil {
					pass.Reportf(n.Pos(),
						"mutates accounting cell %s directly outside internal/machine: go through Accounting.Add/Count", name)
				}
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if sel, name := cellRef(info, n.X); sel != nil {
						pass.Reportf(n.Pos(),
							"takes the address of accounting cell %s: the cells must not escape the Accounting API", name)
					}
				}
			case *ast.IndexExpr:
				checkIndex(pass, info, n, stack)
			}
			return true
		})
	}
	return nil
}

// cellRef unwraps index expressions and reports whether the expression
// resolves to a .Buckets/.Counters selector on a machine.Snapshot (or a
// machine.CounterSet value reached any other way).
func cellRef(info *types.Info, e ast.Expr) (ast.Expr, string) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X
			continue
		case *ast.SelectorExpr:
			if _, isCell := cells[x.Sel.Name]; isCell && analysis.IsNamed(exprType(info, x.X), "internal/machine", "Snapshot") {
				return x, x.Sel.Name
			}
			if analysis.IsNamed(exprType(info, x), "internal/machine", "CounterSet") {
				return x, "CounterSet"
			}
			return nil, ""
		case *ast.Ident:
			if analysis.IsNamed(exprType(info, x), "internal/machine", "CounterSet") {
				return x, "CounterSet"
			}
			return nil, ""
		default:
			return nil, ""
		}
	}
}

func exprType(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// checkIndex flags raw (untyped-int) indexing of the cell arrays on reads.
func checkIndex(pass *analysis.Pass, info *types.Info, idx *ast.IndexExpr, stack []ast.Node) {
	base, name := cellRef(info, idx.X)
	if base == nil {
		return
	}
	want, ok := cells[name]
	if !ok {
		want = "Cnt" // CounterSet reached directly
	}
	itv, ok := info.Types[idx.Index]
	if !ok {
		return
	}
	if analysis.IsNamed(itv.Type, "internal/machine", want) {
		return
	}
	// Range loop index variables are ints by construction; allow `for i :=
	// range s.Counters` reads by accepting indices defined by a range over
	// the same array. Cheap approximation: allow when the enclosing
	// statement chain includes a RangeStmt whose X is the same cell.
	for i := len(stack) - 1; i >= 0; i-- {
		if r, ok := stack[i].(*ast.RangeStmt); ok {
			if rb, _ := cellRef(info, r.X); rb != nil {
				return
			}
		}
	}
	pass.Reportf(idx.Index.Pos(),
		"indexes accounting cell %s with raw %s: use the typed machine.%s constants so cell renumbering cannot misattribute",
		name, itv.Type, want)
}
