// Package a exercises the hotpath pass: //mpmd:hotpath functions must not
// contain allocating constructs; unannotated functions are never checked.
package a

import "fmt"

type point struct{ x, y int }

var sinkAny any

// --- positives -------------------------------------------------------------

//mpmd:hotpath
func hotClosure() func() {
	f := func() {} // want `closure literal`
	return f
}

//mpmd:hotpath
func hotFmt(n int) string {
	return fmt.Sprintf("%d", n) // want `package fmt allocates`
}

//mpmd:hotpath
func hotForeignAppend(dst, src []int) []int {
	out := append(src, 1) // want `foreign slice`
	_ = dst
	return out
}

//mpmd:hotpath
func hotMake() []int {
	return make([]int, 4) // want `make allocates`
}

//mpmd:hotpath
func hotBox(v int64) {
	sinkAny = v // want `boxing`
}

//mpmd:hotpath
func hotConcat(a, b string) string {
	return a + b // want `string concatenation`
}

//mpmd:hotpath
func hotHeapLit() *point {
	return &point{1, 2} // want `escapes to the heap`
}

//mpmd:hotpath
func hotSliceLit() []int {
	s := []int{1, 2, 3} // want `map/slice literal`
	return s
}

//mpmd:hotpath
func hotStringConv(b []byte) string {
	return string(b) // want `conversion copies`
}

// --- negatives -------------------------------------------------------------

//mpmd:hotpath
func warmSelfAppend(buf []byte, w uint64) []byte {
	var tmp [8]byte
	for i := range tmp {
		tmp[i] = byte(w >> (8 * i))
	}
	buf = append(buf, tmp[:]...) // reuse idiom: amortizes to zero
	return buf
}

//mpmd:hotpath
func warmValueLit(x, y int) point {
	p := point{x, y} // stack value literal
	return p
}

//mpmd:hotpath
func warmPanicPath(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("negative %d", n)) // panicking is off the warm path
	}
	return n * 2
}

//mpmd:hotpath
func warmPointerBox(p *point) {
	sinkAny = p // pointer-shaped: no box allocation
}

func coldUnannotated() string {
	return fmt.Sprintf("cold paths may allocate freely %v", []int{1, 2})
}

//mpmd:hotpath
func warmTraceGated(on bool, n int) {
	if on {
		_ = fmt.Sprintf("trace %d", n) //mpmdvet:ignore hotpath trace-gated cold branch inside a warm function
	}
}
