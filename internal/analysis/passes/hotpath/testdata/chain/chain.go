// Package chain exercises the transitive hotpath layer: allocations reached
// through in-set calls are reported at the hot call site with the full
// witness chain, //mpmd:coldpath callees are exempt by declaration, and
// interface calls are bounded by the fixture's own implementers.
package chain

import "fmt"

type codec struct{ scratch []byte }

// marshal allocates two hops below push: the witness chain must name every
// link down to the fmt call.
func (c *codec) marshal(n int) string {
	return fmt.Sprintf("%d", n)
}

func (c *codec) encode(n int) string {
	return c.marshal(n)
}

//mpmd:hotpath
func push(c *codec, n int) string {
	return c.encode(n) // want `hot path push: \(\*codec\)\.encode → \(\*codec\)\.marshal → call into package fmt allocates \(chain\.go:14\)`
}

// spill allocates by design: it grows the scratch slice on the slow path.
//
//mpmd:coldpath slow-path growth, unreachable in steady state
func spill(c *codec, b []byte) {
	c.scratch = append(c.scratch, b...)
}

//mpmd:hotpath
func pushWithSpill(c *codec, b []byte) {
	if cap(c.scratch) < len(b) {
		spill(c, b) // coldpath callee: exempt, no diagnostic
	}
}

// --- interface bounding ----------------------------------------------------

type sink interface{ consume(n int) }

type quietSink struct{ total int }

func (s *quietSink) consume(n int) { s.total += n }

type loudSink struct{}

func (loudSink) consume(n int) { fmt.Println(n) }

//mpmd:hotpath
func drain(s sink, n int) {
	s.consume(n) // want `hot path drain: \(loudSink\)\.consume → call into package fmt allocates \(chain\.go:50\)`
}

type phantom interface{ vanish() }

//mpmd:hotpath
func ghost(p phantom) {
	p.vanish() // want `interface call phantom.vanish has no implementers in the analyzed packages`
}

// --- hot callee trusted, recursion terminates -------------------------------

// step is hot itself: its own check owns its body; callers do not re-charge it.
//
//mpmd:hotpath
func step(n int) int {
	if n == 0 {
		return 0
	}
	return step(n - 1)
}

//mpmd:hotpath
func walkDown(n int) int {
	return step(n) // hot callee: trusted, no diagnostic
}
