// Package hotpath turns the benchmark-only 0 allocs/op gate into a
// compile-time check: a function whose doc comment carries the
// //mpmd:hotpath directive must not contain allocating constructs, and must
// not call anything in the analyzed set that does.
//
// What counts as allocating (conservatively, without the compiler's escape
// analysis):
//
//   - closure literals (captures allocate) and go statements
//   - &T{...}, map/slice composite literals, make, new
//   - append into anything but itself (the `x = append(x, …)` reuse idiom
//     amortizes to zero on the warm path and is allowed)
//   - calls into fmt, errors, sort, strconv, log
//   - non-constant string concatenation and string<->[]byte conversions
//   - boxing a non-pointer concrete value into an interface (call arguments,
//     assignments, returns)
//
// The transitive layer consults a bottom-up may-allocate summary over the
// call graph: a call from a hot function to an in-set callee that allocates
// anywhere downstream is reported with the full witness chain
// ("push → marshal → call into package fmt allocates (codec.go:42)").
// Interface calls are bounded by the implementers in the analyzed set; a
// hot-path interface call with zero in-set implementers is itself reported
// (whole-program runs only) because nothing was verified. Callees marked
// //mpmd:hotpath are trusted (their own check covers them); callees marked
// //mpmd:coldpath are exempt by declaration — the annotation documents that
// the function allocates by design and must not be reached from a warm
// path's steady state.
//
// Arguments of panic(...) are exempt: a panicking path is already off the
// warm path. Anything intentionally cold inside a hot function (trace hooks,
// slow-path branches) takes a //mpmdvet:ignore hotpath <reason> pragma so the
// exception is visible and counted.
package hotpath

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

// Directive marks a function as warm-path: checked allocation-free.
const Directive = "//mpmd:hotpath"

// ColdDirective marks a function as allocating by design: the may-allocate
// summary treats it as clean so hot callers are not charged for it, on the
// declared understanding that warm steady-state traffic never reaches it.
const ColdDirective = "//mpmd:coldpath"

// allocPkgs are stdlib packages whose entry points allocate by design.
var allocPkgs = map[string]bool{
	"fmt":     true,
	"errors":  true,
	"sort":    true,
	"strconv": true,
	"log":     true,
}

var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "check that //mpmd:hotpath functions contain no allocating constructs " +
		"(closures, escaping composite literals, make/new, fmt, interface boxing, foreign append), " +
		"transitively through in-set callees not marked //mpmd:hotpath or //mpmd:coldpath",
	Run:        run,
	Transitive: true,
}

// Finding is one allocating construct in a function body, with the message
// the analyzer prints after its "hot path <fn>: " prefix.
type Finding struct {
	Pos  token.Pos
	What string
}

func run(pass *analysis.Pass) error {
	g := callgraph.Of(pass.Prog)
	facts := Facts(pass.Prog)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			hot := analysis.FuncDocHasDirective(fd.Doc, Directive)
			cold := analysis.FuncDocHasDirective(fd.Doc, ColdDirective)
			if hot && cold {
				pass.Reportf(fd.Pos(), "%s is marked both %s and %s", fd.Name.Name, Directive, ColdDirective)
				continue
			}
			if !hot {
				continue
			}
			for _, fnd := range Scan(pass.TypesInfo, fd) {
				pass.Reportf(fnd.Pos, "hot path %s: %s", fd.Name.Name, fnd.What)
			}
			transitive(pass, g, facts, fd)
		}
	}
	return nil
}

// transitive reports calls from a hot function into in-set callees whose
// may-allocate summary is dirty, with the witness chain down to the
// allocating construct. The walk mirrors Scan's exemptions: function-literal
// bodies (the literal itself was already flagged) and panic arguments.
func transitive(pass *analysis.Pass, g *callgraph.Graph, facts map[*callgraph.Node]AllocFact, fd *ast.FuncDecl) {
	self := g.NodeOf(pass.TypesInfo.Defs[fd.Name].(*types.Func))
	analysis.WalkStack(fd.Body, func(n ast.Node, _ []ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if isPanicCall(n) {
				return false
			}
			site := g.Sites[n]
			if site == nil {
				return true
			}
			if site.NoImpl && pass.Prog.Whole {
				pass.Reportf(n.Pos(), "hot path %s: interface call %s has no implementers in the analyzed packages; allocation-freedom cannot be verified",
					fd.Name.Name, site.Iface)
				return true
			}
			for _, callee := range site.Callees {
				if callee == self {
					continue
				}
				f := facts[callee]
				if f.What == "" {
					continue
				}
				chain := witnessChain(facts, callee)
				pass.Reportf(n.Pos(), "hot path %s: %s", fd.Name.Name,
					callgraph.ChainString(chain, f.What, f.Pos))
				break // one witness per call site
			}
		}
		return true
	})
}

// AllocFact is the may-allocate summary of one function: What/Pos describe
// the leaf allocating construct ("" = allocation-free), Via the callee the
// allocation is reached through (nil when it is in the function's own body).
type AllocFact struct {
	What string
	Pos  token.Pos
	Via  *callgraph.Node
}

type allocFactsKey struct{}

// Facts computes (once per Program) the may-allocate summary for every
// function in the analyzed set.
func Facts(prog *analysis.Program) map[*callgraph.Node]AllocFact {
	return prog.Fact(allocFactsKey{}, func() any {
		g := callgraph.Of(prog)
		return callgraph.Propagate[AllocFact](g, &allocSummary{scans: map[*callgraph.Node][]Finding{}})
	}).(map[*callgraph.Node]AllocFact)
}

type allocSummary struct {
	scans map[*callgraph.Node][]Finding
}

func (s *allocSummary) Compute(n *callgraph.Node, get func(*callgraph.Node) AllocFact) AllocFact {
	// Hot nodes are trusted clean: their own body is checked directly, and
	// their pragma-suppressed cold branches must not cascade into callers.
	// Cold nodes are exempt by declaration.
	if analysis.FuncDocHasDirective(n.Decl.Doc, Directive) ||
		analysis.FuncDocHasDirective(n.Decl.Doc, ColdDirective) {
		return AllocFact{}
	}
	findings, ok := s.scans[n]
	if !ok {
		findings = Scan(n.Pkg.Info, n.Decl)
		s.scans[n] = findings
	}
	if len(findings) > 0 {
		return AllocFact{What: findings[0].What, Pos: findings[0].Pos}
	}
	for _, e := range n.Out {
		if e.Kind == callgraph.KindMethodValue {
			continue // a reference, not a call from this body
		}
		if f := get(e.Callee); f.What != "" {
			return AllocFact{What: f.What, Pos: f.Pos, Via: e.Callee}
		}
	}
	return AllocFact{}
}

func (s *allocSummary) Equal(a, b AllocFact) bool { return a == b }

// witnessChain follows Via links from the first dirty callee down to the
// owner of the allocating construct. The seen set guards against pick-cycles
// in mutually-recursive components.
func witnessChain(facts map[*callgraph.Node]AllocFact, start *callgraph.Node) []*callgraph.Node {
	var chain []*callgraph.Node
	seen := map[*callgraph.Node]bool{}
	for n := start; n != nil && !seen[n]; n = facts[n].Via {
		seen[n] = true
		chain = append(chain, n)
	}
	return chain
}

// Scan returns the allocating constructs in fn's body, in source order, with
// messages matching what the analyzer reports (minus the "hot path <fn>: "
// prefix). It is the syntactic layer both the direct check and the
// may-allocate summary share.
func Scan(info *types.Info, fn *ast.FuncDecl) []Finding {
	c := &scanner{info: info, fn: fn}
	c.check(fn.Body)
	return c.out
}

type scanner struct {
	info *types.Info
	fn   *ast.FuncDecl
	out  []Finding
}

func (c *scanner) addf(pos token.Pos, format string, args ...any) {
	c.out = append(c.out, Finding{Pos: pos, What: fmt.Sprintf(format, args...)})
}

func (c *scanner) check(body *ast.BlockStmt) {
	analysis.WalkStack(body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.addf(n.Pos(), "closure literal allocates its captures")
			return false // don't double-report inside
		case *ast.GoStmt:
			c.addf(n.Pos(), "go statement allocates a goroutine")
		case *ast.CompositeLit:
			switch c.litKind(n, stack) {
			case litHeap:
				c.addf(n.Pos(), "composite literal escapes to the heap")
			case litMapOrSlice:
				c.addf(n.Pos(), "map/slice literal allocates")
			}
		case *ast.CallExpr:
			c.callExpr(n)
			if isPanicCall(n) {
				return false // panic args are off the warm path
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && c.isStringType(n) && !c.isConst(n) {
				c.addf(n.Pos(), "non-constant string concatenation allocates")
			}
		case *ast.AssignStmt:
			c.assign(n)
		case *ast.ReturnStmt:
			c.returns(n)
		}
		return true
	})
}

type litClass int

const (
	litStack litClass = iota
	litHeap
	litMapOrSlice
)

// litKind classifies a composite literal: map/slice literals always
// allocate; struct/array literals allocate only when their address is taken
// (the &T{...} parent) — a plain value literal lives on the stack.
func (c *scanner) litKind(lit *ast.CompositeLit, stack []ast.Node) litClass {
	tv, ok := c.info.Types[lit]
	if ok {
		switch tv.Type.Underlying().(type) {
		case *types.Map, *types.Slice:
			return litMapOrSlice
		}
	}
	if len(stack) > 0 {
		if u, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && u.Op == token.AND {
			return litHeap
		}
		// Nested inside another composite literal: classified at the root.
		if _, ok := stack[len(stack)-1].(*ast.CompositeLit); ok {
			return litStack
		}
		if kv, ok := stack[len(stack)-1].(*ast.KeyValueExpr); ok {
			_ = kv
			return litStack
		}
	}
	return litStack
}

func (c *scanner) callExpr(call *ast.CallExpr) {
	if isPanicCall(call) {
		return // panicking paths are off the warm path (subtree skipped by check)
	}
	flagged := false
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch fun.Name {
		case "make":
			if c.isBuiltin(fun) {
				c.addf(call.Pos(), "make allocates")
			}
		case "new":
			if c.isBuiltin(fun) {
				c.addf(call.Pos(), "new allocates")
			}
		case "append":
			if c.isBuiltin(fun) && !c.isSelfAppend(call) {
				c.addf(call.Pos(), "append into a foreign slice may grow and allocate (only `x = append(x, …)` reuse is allowed)")
			}
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if obj, ok := c.info.Uses[id].(*types.PkgName); ok && allocPkgs[obj.Imported().Path()] {
				c.addf(call.Pos(), "call into package %s allocates", obj.Imported().Path())
				flagged = true
			}
		}
	}
	// string<->[]byte conversions.
	if tv, ok := c.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type.Underlying()
		if argTv, ok := c.info.Types[call.Args[0]]; ok {
			from := argTv.Type.Underlying()
			if isString(to) && isByteSlice(from) || isByteSlice(to) && isString(from) {
				if argTv.Value == nil { // constant conversions fold away
					c.addf(call.Pos(), "string/[]byte conversion copies and allocates")
				}
			}
		}
	}
	// Interface boxing of call arguments (skipped when the call itself was
	// already flagged: one diagnostic per offending call is enough).
	if tv, ok := c.info.Types[call.Fun]; ok && !tv.IsType() && !flagged {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			c.checkArgsBoxing(call, sig)
		}
	}
}

func (c *scanner) checkArgsBoxing(call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if s, ok := last.Underlying().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		c.boxing(arg, pt)
	}
}

// boxing reports converting a non-pointer concrete value into an interface:
// the value escapes into the interface's data word via a heap copy. Pointers,
// interfaces, and nil are free.
func (c *scanner) boxing(val ast.Expr, dst types.Type) {
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := c.info.Types[ast.Unparen(val)]
	if !ok || tv.Type == nil {
		return
	}
	if tv.IsNil() || tv.Value != nil {
		return // nil and constants (folded / small-value cached) are quiet
	}
	switch tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Chan, *types.Map, *types.Signature, *types.Slice:
		// Pointer-shaped (or already an interface): no box allocation.
		// Slices are 3 words — they do box — but flagging []byte payloads
		// passed to io-style interfaces drowns real signal; the fmt/pkg
		// checks catch the common cases.
		return
	}
	c.addf(val.Pos(), "boxing %s into interface %s allocates", tv.Type, dst)
}

func (c *scanner) assign(s *ast.AssignStmt) {
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i := range s.Lhs {
		if lt, ok := c.info.Types[s.Lhs[i]]; ok {
			c.boxing(s.Rhs[i], lt.Type)
		}
	}
}

func (c *scanner) returns(s *ast.ReturnStmt) {
	sig := c.info.Defs[c.fn.Name]
	fn, ok := sig.(*types.Func)
	if !ok {
		return
	}
	results := fn.Type().(*types.Signature).Results()
	if results.Len() != len(s.Results) {
		return
	}
	for i, r := range s.Results {
		c.boxing(r, results.At(i).Type())
	}
}

// isSelfAppend reports the x = append(x, ...) reuse idiom; the enclosing
// assignment is found via the append call's position inside it.
func (c *scanner) isSelfAppend(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	dstKey, ok := analysis.ExprKey(c.info, call.Args[0])
	if !ok {
		return false
	}
	// Search upward is not available here; instead accept when the append's
	// first argument re-appears as an assignment LHS anywhere in the
	// function with this call as RHS. Cheap scan over the function body.
	found := false
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || found {
			return !found
		}
		for i, r := range as.Rhs {
			if ast.Unparen(r) == call && i < len(as.Lhs) {
				if lk, ok := analysis.ExprKey(c.info, as.Lhs[i]); ok && lk == dstKey {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func (c *scanner) isBuiltin(id *ast.Ident) bool {
	_, ok := c.info.Uses[id].(*types.Builtin)
	return ok
}

func (c *scanner) isStringType(e ast.Expr) bool {
	tv, ok := c.info.Types[e]
	return ok && isString(tv.Type.Underlying())
}

func (c *scanner) isConst(e ast.Expr) bool {
	tv, ok := c.info.Types[e]
	return ok && tv.Value != nil
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isPanicCall(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
