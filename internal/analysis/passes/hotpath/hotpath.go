// Package hotpath turns the benchmark-only 0 allocs/op gate into a
// compile-time check: a function whose doc comment carries the
// //mpmd:hotpath directive must not contain allocating constructs.
//
// What counts as allocating (conservatively, without the compiler's escape
// analysis):
//
//   - closure literals (captures allocate) and go statements
//   - &T{...}, map/slice composite literals, make, new
//   - append into anything but itself (the `x = append(x, …)` reuse idiom
//     amortizes to zero on the warm path and is allowed)
//   - calls into fmt, errors, sort, strconv, log
//   - non-constant string concatenation and string<->[]byte conversions
//   - boxing a non-pointer concrete value into an interface (call arguments,
//     assignments, returns)
//
// Arguments of panic(...) are exempt: a panicking path is already off the
// warm path. Anything intentionally cold inside a hot function (trace hooks,
// slow-path branches) takes a //mpmdvet:ignore hotpath <reason> pragma so the
// exception is visible and counted.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Directive marks a function as warm-path: checked allocation-free.
const Directive = "//mpmd:hotpath"

// allocPkgs are stdlib packages whose entry points allocate by design.
var allocPkgs = map[string]bool{
	"fmt":     true,
	"errors":  true,
	"sort":    true,
	"strconv": true,
	"log":     true,
}

var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "check that //mpmd:hotpath functions contain no allocating constructs " +
		"(closures, escaping composite literals, make/new, fmt, interface boxing, foreign append)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !analysis.FuncDocHasDirective(fd.Doc, Directive) {
				continue
			}
			c := &checker{pass: pass, info: pass.TypesInfo, fn: fd}
			c.check(fd.Body)
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	info *types.Info
	fn   *ast.FuncDecl
}

func (c *checker) reportf(pos token.Pos, format string, args ...any) {
	c.pass.Reportf(pos, "hot path %s: "+format, append([]any{c.fn.Name.Name}, args...)...)
}

func (c *checker) check(body *ast.BlockStmt) {
	analysis.WalkStack(body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.reportf(n.Pos(), "closure literal allocates its captures")
			return false // don't double-report inside
		case *ast.GoStmt:
			c.reportf(n.Pos(), "go statement allocates a goroutine")
		case *ast.CompositeLit:
			switch c.litKind(n, stack) {
			case litHeap:
				c.reportf(n.Pos(), "composite literal escapes to the heap")
			case litMapOrSlice:
				c.reportf(n.Pos(), "map/slice literal allocates")
			}
		case *ast.CallExpr:
			c.callExpr(n)
			if isPanicCall(n) {
				return false // panic args are off the warm path
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && c.isStringType(n) && !c.isConst(n) {
				c.reportf(n.Pos(), "non-constant string concatenation allocates")
			}
		case *ast.AssignStmt:
			c.assign(n)
		case *ast.ReturnStmt:
			c.returns(n)
		}
		return true
	})
}

type litClass int

const (
	litStack litClass = iota
	litHeap
	litMapOrSlice
)

// litKind classifies a composite literal: map/slice literals always
// allocate; struct/array literals allocate only when their address is taken
// (the &T{...} parent) — a plain value literal lives on the stack.
func (c *checker) litKind(lit *ast.CompositeLit, stack []ast.Node) litClass {
	tv, ok := c.info.Types[lit]
	if ok {
		switch tv.Type.Underlying().(type) {
		case *types.Map, *types.Slice:
			return litMapOrSlice
		}
	}
	if len(stack) > 0 {
		if u, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && u.Op == token.AND {
			return litHeap
		}
		// Nested inside another composite literal: classified at the root.
		if _, ok := stack[len(stack)-1].(*ast.CompositeLit); ok {
			return litStack
		}
		if kv, ok := stack[len(stack)-1].(*ast.KeyValueExpr); ok {
			_ = kv
			return litStack
		}
	}
	return litStack
}

func (c *checker) callExpr(call *ast.CallExpr) {
	if isPanicCall(call) {
		return // panicking paths are off the warm path (subtree skipped by check)
	}
	flagged := false
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch fun.Name {
		case "make":
			if c.isBuiltin(fun) {
				c.reportf(call.Pos(), "make allocates")
			}
		case "new":
			if c.isBuiltin(fun) {
				c.reportf(call.Pos(), "new allocates")
			}
		case "append":
			if c.isBuiltin(fun) && !c.isSelfAppend(call) {
				c.reportf(call.Pos(), "append into a foreign slice may grow and allocate (only `x = append(x, …)` reuse is allowed)")
			}
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if obj, ok := c.info.Uses[id].(*types.PkgName); ok && allocPkgs[obj.Imported().Path()] {
				c.reportf(call.Pos(), "call into package %s allocates", obj.Imported().Path())
				flagged = true
			}
		}
	}
	// string<->[]byte conversions.
	if tv, ok := c.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type.Underlying()
		if argTv, ok := c.info.Types[call.Args[0]]; ok {
			from := argTv.Type.Underlying()
			if isString(to) && isByteSlice(from) || isByteSlice(to) && isString(from) {
				if argTv.Value == nil { // constant conversions fold away
					c.reportf(call.Pos(), "string/[]byte conversion copies and allocates")
				}
			}
		}
	}
	// Interface boxing of call arguments (skipped when the call itself was
	// already flagged: one diagnostic per offending call is enough).
	if tv, ok := c.info.Types[call.Fun]; ok && !tv.IsType() && !flagged {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			c.checkArgsBoxing(call, sig)
		}
	}
}

func (c *checker) checkArgsBoxing(call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if s, ok := last.Underlying().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		c.boxing(arg, pt)
	}
}

// boxing reports converting a non-pointer concrete value into an interface:
// the value escapes into the interface's data word via a heap copy. Pointers,
// interfaces, and nil are free.
func (c *checker) boxing(val ast.Expr, dst types.Type) {
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := c.info.Types[ast.Unparen(val)]
	if !ok || tv.Type == nil {
		return
	}
	if tv.IsNil() || tv.Value != nil {
		return // nil and constants (folded / small-value cached) are quiet
	}
	switch tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Chan, *types.Map, *types.Signature, *types.Slice:
		// Pointer-shaped (or already an interface): no box allocation.
		// Slices are 3 words — they do box — but flagging []byte payloads
		// passed to io-style interfaces drowns real signal; the fmt/pkg
		// checks catch the common cases.
		return
	}
	c.reportf(val.Pos(), "boxing %s into interface %s allocates", tv.Type, dst)
}

func (c *checker) assign(s *ast.AssignStmt) {
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i := range s.Lhs {
		if lt, ok := c.info.Types[s.Lhs[i]]; ok {
			c.boxing(s.Rhs[i], lt.Type)
		}
	}
}

func (c *checker) returns(s *ast.ReturnStmt) {
	sig := c.info.Defs[c.fn.Name]
	fn, ok := sig.(*types.Func)
	if !ok {
		return
	}
	results := fn.Type().(*types.Signature).Results()
	if results.Len() != len(s.Results) {
		return
	}
	for i, r := range s.Results {
		c.boxing(r, results.At(i).Type())
	}
}

// isSelfAppend reports the x = append(x, ...) reuse idiom; the enclosing
// assignment is found via the append call's position inside it.
func (c *checker) isSelfAppend(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	dstKey, ok := analysis.ExprKey(c.info, call.Args[0])
	if !ok {
		return false
	}
	// Search upward is not available here; instead accept when the append's
	// first argument re-appears as an assignment LHS anywhere in the
	// function with this call as RHS. Cheap scan over the function body.
	found := false
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || found {
			return !found
		}
		for i, r := range as.Rhs {
			if ast.Unparen(r) == call && i < len(as.Lhs) {
				if lk, ok := analysis.ExprKey(c.info, as.Lhs[i]); ok && lk == dstKey {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func (c *checker) isBuiltin(id *ast.Ident) bool {
	_, ok := c.info.Uses[id].(*types.Builtin)
	return ok
}

func (c *checker) isStringType(e ast.Expr) bool {
	tv, ok := c.info.Types[e]
	return ok && isString(tv.Type.Underlying())
}

func (c *checker) isConst(e ast.Expr) bool {
	tv, ok := c.info.Types[e]
	return ok && tv.Value != nil
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isPanicCall(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
