package hotpath_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/hotpath"
)

func TestHotpath(t *testing.T) {
	results := analysistest.Run(t, hotpath.Analyzer, "a")
	if n := len(results[0].Suppressed); n != 1 {
		t.Errorf("expected exactly 1 pragma-suppressed diagnostic (the trace-gated case), got %d", n)
	}
}

func TestHotpathTransitive(t *testing.T) {
	analysistest.Run(t, hotpath.Analyzer, "chain")
}
