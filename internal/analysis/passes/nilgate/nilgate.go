// Package nilgate enforces that every metrics.Registry record call is
// dominated by a nil check of the registry.
//
// The simulator backend runs with nil per-node registries so that the
// instrumentation provably costs nothing when disabled; a single un-gated
// Add/Observe would panic there (or worse, force every backend to allocate
// registries defensively). The canonical idiom is the one in
// internal/core/rmi.go:
//
//	if met := n.node.Met; met != nil {
//		met.ObserveDur(metrics.HstDispatch, dur)
//	}
//
// The pass accepts that form, a direct `if x.met != nil { x.met.Add(...) }`,
// an inverted gate (`if met == nil { ... } else { met.Add(...) }`), and an
// early-return guard (`if met == nil { return }` earlier in the same block).
package nilgate

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// recordMethods are the *metrics.Registry methods that touch cells; reads
// (Counter, Snapshot, NodeMetrics) are safe on a nil receiver by convention
// and not gated.
var recordMethods = map[string]bool{
	"Add":        true,
	"Set":        true,
	"Observe":    true,
	"ObserveDur": true,
}

var Analyzer = &analysis.Analyzer{
	Name: "nilgate",
	Doc: "check that metrics.Registry record calls are nil-gated " +
		"(`if met := …; met != nil { met.Add(...) }`) so disabled backends pay nothing",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if analysis.PkgPathMatches(pass.Pkg, "internal/metrics") {
		return nil // the registry's own methods handle nil receivers internally
	}
	info := pass.TypesInfo
	for _, f := range pass.Files {
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !recordMethods[sel.Sel.Name] {
				return true
			}
			if s := info.Selections[sel]; s == nil || !analysis.IsNamed(s.Recv(), "internal/metrics", "Registry") {
				return true
			}
			recvKey, keyable := analysis.ExprKey(info, sel.X)
			if !keyable {
				// Receiver is a fresh expression (e.g. metrics.NewRegistry().Add):
				// nothing to gate on, and nothing we can track — let it pass.
				return true
			}
			if gated(info, recvKey, stack) {
				return true
			}
			pass.Reportf(call.Pos(),
				"un-gated metrics record call %s.%s: dominate it with the `if met := …; met != nil { met.%s(...) }` idiom so nil-registry backends pay nothing",
				exprString(sel.X), sel.Sel.Name, sel.Sel.Name)
			return true
		})
	}
	return nil
}

// gated walks the ancestor stack looking for a dominating nil check of the
// receiver: an enclosing `if recv != nil` (call in then-branch), an enclosing
// `if recv == nil` (call in else-branch), or a preceding sibling
// `if recv == nil { return/... }` guard whose body terminates.
func gated(info *types.Info, recvKey string, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch anc := stack[i].(type) {
		case *ast.IfStmt:
			inThen := i+1 < len(stack) && stack[i+1] == anc.Body
			inElse := i+1 < len(stack) && stack[i+1] == anc.Else
			if inThen && condChecksNonNil(info, anc.Cond, recvKey) {
				return true
			}
			if inElse && condChecksNil(info, anc.Cond, recvKey) {
				return true
			}
		case *ast.BlockStmt:
			// Which child of the block are we inside?
			if i+1 >= len(stack) {
				continue
			}
			child, ok := stack[i+1].(ast.Stmt)
			if !ok {
				continue
			}
			for _, s := range anc.List {
				if s == child {
					break
				}
				ifs, ok := s.(*ast.IfStmt)
				if !ok || ifs.Else != nil {
					continue
				}
				if condChecksNil(info, ifs.Cond, recvKey) && analysis.Terminates(ifs.Body) {
					return true
				}
			}
		case *ast.FuncLit, *ast.FuncDecl:
			// Guards outside the enclosing function don't dominate its body:
			// the closure may run later, after the registry changed.
			return false
		}
	}
	return false
}

// condChecksNonNil reports whether cond guarantees recvKey != nil when true.
// && operands each guarantee their own conditions.
func condChecksNonNil(info *types.Info, cond ast.Expr, recvKey string) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			return condChecksNonNil(info, e.X, recvKey) || condChecksNonNil(info, e.Y, recvKey)
		case token.NEQ:
			return nilCompare(info, e, recvKey)
		}
	}
	return false
}

// condChecksNil reports whether cond guarantees recvKey == nil when true
// (hence recvKey != nil when false — gating the else branch or post-guard
// code). || operands each individually imply the whole is true, so every
// operand must be the nil check for the negation to be useful — but for an
// early-return guard `if a == nil || b == nil { return }`, the negation
// guarantees both non-nil, so OR decomposition is sound here.
func condChecksNil(info *types.Info, cond ast.Expr, recvKey string) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LOR:
			return condChecksNil(info, e.X, recvKey) || condChecksNil(info, e.Y, recvKey)
		case token.EQL:
			return nilCompare(info, e, recvKey)
		}
	}
	return false
}

// nilCompare reports whether e compares the receiver expression against nil.
func nilCompare(info *types.Info, e *ast.BinaryExpr, recvKey string) bool {
	for _, pair := range [2][2]ast.Expr{{e.X, e.Y}, {e.Y, e.X}} {
		if id, ok := ast.Unparen(pair[1]).(*ast.Ident); !ok || id.Name != "nil" {
			continue
		}
		if k, ok := analysis.ExprKey(info, pair[0]); ok && k == recvKey {
			return true
		}
	}
	return false
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	}
	return "registry"
}
