package nilgate_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/nilgate"
)

func TestNilgate(t *testing.T) {
	results := analysistest.Run(t, nilgate.Analyzer, "a")
	if n := len(results[0].Suppressed); n != 1 {
		t.Errorf("expected exactly 1 pragma-suppressed diagnostic, got %d", n)
	}
}
