// Package a exercises the nilgate pass: record calls must be dominated by a
// nil check of the registry receiver.
package a

import "repro/internal/metrics"

var global *metrics.Registry

// --- positives -------------------------------------------------------------

func ungatedGlobal() {
	global.Add(metrics.CtrNotifies, 1) // want `un-gated metrics record call`
}

func checkDoesNotDominate(r *metrics.Registry) {
	if r != nil {
		_ = r
	}
	r.Set(metrics.GgeNotifyDepth, 2) // want `un-gated metrics record call`
}

func wrongBranch(r *metrics.Registry) {
	if r != nil {
		_ = r
	} else {
		r.Observe(metrics.HstPollBatch, 1) // want `un-gated metrics record call`
	}
}

func gateChecksOtherVariable(r, s *metrics.Registry) {
	if s != nil {
		r.ObserveDur(metrics.HstWriterStall, 0) // want `un-gated metrics record call`
	}
}

func guardDoesNotTerminate(r *metrics.Registry) {
	if r == nil {
		_ = r // falls through: not a dominating guard
	}
	r.Add(metrics.CtrNotifies, 1) // want `un-gated metrics record call`
}

// --- negatives -------------------------------------------------------------

func idiomRebind(n struct{ Met *metrics.Registry }) {
	// The canonical core/rmi.go form.
	if met := n.Met; met != nil {
		met.Add(metrics.CtrNotifies, 1)
	}
}

func directFieldGate(r *metrics.Registry) {
	if r != nil {
		r.Set(metrics.GgeNotifyDepth, 1)
	}
}

func earlyReturnGuard(r *metrics.Registry) {
	if r == nil {
		return
	}
	r.Observe(metrics.HstPollBatch, 3)
}

func elseOfNilCheck(r *metrics.Registry) {
	if r == nil {
		_ = r
	} else {
		r.ObserveDur(metrics.HstWriterStall, 0)
	}
}

func conjunctionGate(r *metrics.Registry, on bool) {
	if r != nil && on {
		r.Add(metrics.CtrNotifies, 1)
	}
}

func readsAreFree(r *metrics.Registry) int64 {
	// Snapshot/read methods are nil-safe by contract and not gated.
	return r.Counter(metrics.CtrNotifies)
}

func pragmaEscapeHatch(r *metrics.Registry) {
	r.Add(metrics.CtrNotifies, 1) //mpmdvet:ignore nilgate registry proven non-nil by construction in this harness
}
