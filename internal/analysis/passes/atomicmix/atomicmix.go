// Package atomicmix enforces all-or-nothing atomicity: once a variable or
// field is touched through sync/atomic anywhere in the package — its address
// passed to an atomic.Add/Load/Store/Swap/CompareAndSwap call, or its type
// one of the sync/atomic wrapper types — every other access must be atomic
// too. A single plain read mixed in ("just a stats counter") is still a data
// race under the memory model: the compiler may tear, cache, or reorder it.
//
// Two shapes are diagnosed:
//
//   - plain reads/writes of a location whose address reaches a sync/atomic
//     call elsewhere in the package
//   - direct (non-method) uses of a value with a sync/atomic wrapper type
//     (atomic.Int64, atomic.Value, …), which includes copying it
//
// Taking the address of such a location is allowed — that is how atomic
// calls receive it — as is construction in a composite literal, which runs
// before the value is shared.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc: "report plain accesses to variables that are accessed with " +
		"sync/atomic elsewhere, and direct uses of atomic wrapper types",
	Run: run,
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo
	// mixed holds locations whose address reaches a sync/atomic call.
	mixed := map[*types.Var]bool{}
	// sanctioned marks expression nodes in positions where an atomic-class
	// value may legally appear: under unary & and as a method receiver.
	sanctioned := map[ast.Node]bool{}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if atomicCallee(info, n) {
					for _, arg := range n.Args {
						u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
						if !ok || u.Op != token.AND {
							continue
						}
						if v := targetVar(info, u.X); v != nil {
							mixed[v] = true
						}
					}
				}
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
					if s := info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
						sanctioned[ast.Unparen(sel.X)] = true
					}
				}
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					sanctioned[ast.Unparen(n.X)] = true
				}
			}
			return true
		})
	}

	for _, f := range pass.Files {
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sanctioned[n] {
					return false
				}
				v, ok := fieldOf(info, n)
				if !ok {
					return true
				}
				if mixed[v] {
					pass.Reportf(n.Pos(),
						"%s is accessed with sync/atomic elsewhere in this package: this plain access races with those atomic operations",
						render(n))
					return false
				}
				if isAtomicWrapper(v.Type()) {
					pass.Reportf(n.Pos(),
						"%s has atomic type %s: access it through its methods, not directly",
						render(n), v.Type())
					return false
				}
			case *ast.Ident:
				if len(stack) > 0 {
					switch p := stack[len(stack)-1].(type) {
					case *ast.SelectorExpr:
						if p.Sel == n {
							return true
						}
					case *ast.KeyValueExpr:
						// Composite-literal construction happens before the
						// value can be shared.
						if p.Key == n {
							return false
						}
					}
				}
				if sanctioned[n] {
					return true
				}
				v, ok := info.Uses[n].(*types.Var)
				if !ok {
					return true
				}
				if mixed[v] {
					pass.Reportf(n.Pos(),
						"%s is accessed with sync/atomic elsewhere in this package: this plain access races with those atomic operations",
						n.Name)
				} else if isAtomicWrapper(v.Type()) {
					pass.Reportf(n.Pos(),
						"%s has atomic type %s: access it through its methods, not directly",
						n.Name, v.Type())
				}
			}
			return true
		})
	}
	return nil
}

// atomicCallee reports whether call is pkg-qualified into sync/atomic.
func atomicCallee(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}

// targetVar resolves the variable or field an address-of operand names.
func targetVar(info *types.Info, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, _ := info.Uses[e].(*types.Var)
		return v
	case *ast.SelectorExpr:
		if v, ok := fieldOf(info, e); ok {
			return v
		}
	}
	return nil
}

// fieldOf resolves a selector to the field or package-level variable it
// names. ok is false for method selections and non-variable objects.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) (*types.Var, bool) {
	if s := info.Selections[sel]; s != nil {
		if s.Kind() != types.FieldVal {
			return nil, false
		}
		v, ok := s.Obj().(*types.Var)
		return v, ok
	}
	v, ok := info.Uses[sel.Sel].(*types.Var)
	return v, ok
}

// isAtomicWrapper reports whether t is one of the sync/atomic wrapper types
// (Int32, Int64, Uint32, Uint64, Uintptr, Bool, Pointer, Value).
func isAtomicWrapper(t types.Type) bool {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	pkg := n.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

func render(e ast.Expr) string {
	if s, ok := analysis.ExprText(e); ok {
		return s
	}
	return "this location"
}
