package atomicmix_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/atomicmix"
)

func TestAtomicmix(t *testing.T) {
	results := analysistest.Run(t, atomicmix.Analyzer, "a")
	// One from the escape-hatch case, two from the multi-line statement
	// whose single pragma covers both of its lines.
	if n := len(results[0].Suppressed); n != 3 {
		t.Errorf("expected exactly 3 pragma-suppressed diagnostics, got %d", n)
	}
}
