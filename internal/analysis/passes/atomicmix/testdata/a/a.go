// Package a exercises the atomicmix pass: plain accesses mixed with
// sync/atomic operations on the same location, direct uses of atomic
// wrapper types, and the sanctioned shapes that stay quiet.
package a

import "sync/atomic"

type counters struct {
	hits  uint64
	drops uint64
	mode  atomic.Int32
}

var total uint64

func bump(c *counters) {
	atomic.AddUint64(&c.hits, 1)
	atomic.AddUint64(&c.drops, 1)
	atomic.AddUint64(&total, 1)
}

// --- positives -------------------------------------------------------------

func plainRead(c *counters) uint64 {
	return c.hits // want `plain access races`
}

func plainWrite(c *counters) {
	c.drops = 0 // want `plain access races`
}

func plainLoopRead(c *counters) {
	for c.hits < 10 { // want `plain access races`
	}
}

func plainPackageVar() uint64 {
	return total // want `plain access races`
}

func wrapperCopy(c *counters) int32 {
	m := c.mode // want `atomic type`
	return m.Load()
}

// --- negatives -------------------------------------------------------------

func atomicRead(c *counters) uint64 {
	return atomic.LoadUint64(&c.hits)
}

func wrapperMethods(c *counters) int32 {
	c.mode.Store(3)
	return c.mode.Load()
}

func construct() *counters {
	return &counters{hits: 0, drops: 0}
}

func addressOnly(c *counters) *uint64 {
	// Passing the address to a helper that does the atomic op is fine;
	// the plain-access rule is about reads and writes.
	return &c.hits
}

func pragmaEscapeHatch(c *counters) uint64 {
	return c.hits //mpmdvet:ignore atomicmix single-threaded startup read before workers exist
}

func pragmaInsideMultilineStmt(c *counters) uint64 {
	// The pragma trails the statement's second line; it must also suppress
	// the diagnostic anchored on the first line of the same statement.
	return c.hits +
		c.drops //mpmdvet:ignore atomicmix aggregate debug dump tolerates racy reads
}
