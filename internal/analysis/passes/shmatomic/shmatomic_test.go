package shmatomic_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/shmatomic"
)

func TestShmatomic(t *testing.T) {
	analysistest.Run(t, shmatomic.Analyzer, "a")
}
