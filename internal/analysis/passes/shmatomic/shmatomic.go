// Package shmatomic enforces sync/atomic access to fields that alias
// mmap'd cross-process memory. A field (or a whole struct) declared with
// //mpmdvet:shared is read and written concurrently by another *process*
// through a shared mapping — the Go race detector cannot see the peer, and a
// plain load or store is a real data race with it, not a style issue.
//
// Legal access forms for a shared field:
//
//   - calling a method of a sync/atomic wrapper type through it
//     (r.tail.Load(), r.parked.CompareAndSwap(1, 0)) — including when the
//     field is a pointer to the wrapper, the shape mapRing builds by casting
//     header offsets
//   - passing its address directly to a sync/atomic function
//     (atomic.AddUint64(&h.seq, 1)) for plain-typed fields
//   - composite-literal construction (the struct is being built, nothing is
//     shared yet)
//
// Everything else — plain reads, plain writes, taking the address for any
// other purpose — is reported.
package shmatomic

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Directive marks a struct field (on the field) or every field of a struct
// (on the type declaration) as residing in cross-process shared memory.
const Directive = "//mpmdvet:shared"

var Analyzer = &analysis.Analyzer{
	Name: "shmatomic",
	Doc: "check that //mpmdvet:shared fields (mmap'd cross-process memory) are only " +
		"accessed through sync/atomic",
	Run: run,
}

func run(pass *analysis.Pass) error {
	shared := collectShared(pass)
	if len(shared) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		sanctioned := map[*ast.SelectorExpr]bool{}
		// First sweep: mark the selector expressions used in a sanctioned
		// form, mirroring atomicmix's two-phase shape.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			// r.tail.Load(): the method's receiver expression is the field
			// selector, and the method belongs to an atomic wrapper type.
			if m, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if recv, ok := ast.Unparen(m.X).(*ast.SelectorExpr); ok {
					if isAtomicWrapper(pass.TypesInfo, recv) {
						sanctioned[recv] = true
					}
				}
			}
			// atomic.AddUint64(&h.seq, 1): &field directly in a sync/atomic
			// package call.
			if atomicCallee(pass.TypesInfo, call) {
				for _, arg := range call.Args {
					if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op == token.AND {
						if sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr); ok {
							sanctioned[sel] = true
						}
					}
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := pass.TypesInfo.Selections[sel]
			if s == nil || s.Kind() != types.FieldVal {
				return true
			}
			field, ok := s.Obj().(*types.Var)
			if !ok || !shared[field] {
				return true
			}
			if sanctioned[sel] {
				return true
			}
			pass.Reportf(sel.Pos(), "field %s is declared %s (mmap'd cross-process memory): access it through sync/atomic",
				field.Name(), Directive)
			return true
		})
	}
	return nil
}

// collectShared gathers the *types.Var of every //mpmdvet:shared field in
// the package: annotated fields, plus all fields of annotated structs.
func collectShared(pass *analysis.Pass) map[*types.Var]bool {
	shared := map[*types.Var]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				// A directive on the type declaration (either the TypeSpec's
				// own doc or a single-spec GenDecl's doc) shares every field.
				all := hasDirective(ts.Doc) || (len(gd.Specs) == 1 && hasDirective(gd.Doc))
				for _, field := range st.Fields.List {
					if !all && !hasDirective(field.Doc) && !hasDirective(field.Comment) {
						continue
					}
					for _, name := range field.Names {
						if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
							shared[v] = true
						}
					}
				}
			}
		}
	}
	return shared
}

func hasDirective(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(c.Text)
		if text == Directive || strings.HasPrefix(text, Directive+" ") {
			return true
		}
	}
	return false
}

// isAtomicWrapper reports whether the selector's type (after one pointer
// deref) is a named type of package sync/atomic (Uint64, Uint32, Bool, ...).
func isAtomicWrapper(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := types.Unalias(tv.Type)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	named, ok := t.(*types.Named)
	return ok && analysis.PkgPathMatches(named.Obj().Pkg(), "sync/atomic")
}

// atomicCallee reports whether the call's callee is a function of package
// sync/atomic.
func atomicCallee(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && analysis.PkgPathMatches(fn.Pkg(), "sync/atomic")
}
