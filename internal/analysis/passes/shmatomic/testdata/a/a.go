// Package a exercises the shmatomic pass: //mpmdvet:shared fields model
// mmap'd cross-process memory and must only be touched through sync/atomic.
package a

import (
	"sync/atomic"
	"unsafe"
)

// ring mirrors the shmRing shape: header cursors reached through pointers to
// atomic wrappers cast over the mapping.
type ring struct {
	raw    []byte
	tail   *atomic.Uint64 //mpmdvet:shared
	head   *atomic.Uint64 //mpmdvet:shared
	parked *atomic.Uint32 //mpmdvet:shared
}

// hdr models a header embedded by value with plain-typed shared words.
//
//mpmdvet:shared
type hdr struct {
	seq  uint64
	mark uint32
}

func mapRing(raw []byte) *ring {
	return &ring{
		raw:  raw,
		tail: (*atomic.Uint64)(unsafe.Pointer(&raw[64])), // composite literal: construction is fine
		head: (*atomic.Uint64)(unsafe.Pointer(&raw[128])),
	}
}

// --- legal forms ------------------------------------------------------------

func publish(r *ring, n uint64) {
	r.tail.Store(r.tail.Load() + n)
	if r.parked.Load() == 1 && r.parked.CompareAndSwap(1, 0) {
		_ = n
	}
}

func bump(h *hdr) uint64 {
	atomic.AddUint64(&h.seq, 1)
	atomic.StoreUint32(&h.mark, 2)
	return atomic.LoadUint64(&h.seq)
}

// --- violations -------------------------------------------------------------

func plainRead(r *ring) uint64 {
	p := r.tail // want `field tail is declared //mpmdvet:shared`
	return p.Load()
}

func plainHdrRead(h *hdr) uint64 {
	return h.seq // want `field seq is declared //mpmdvet:shared`
}

func plainHdrWrite(h *hdr) {
	h.seq = 7 // want `field seq is declared //mpmdvet:shared`
}

func escapedAddr(h *hdr) *uint64 {
	return &h.seq // want `field seq is declared //mpmdvet:shared`
}

func derefStore(r *ring) {
	*r.head = atomic.Uint64{} // want `field head is declared //mpmdvet:shared`
}

func unshared(r *ring) int {
	return len(r.raw) // raw is not annotated: plain access is fine
}
