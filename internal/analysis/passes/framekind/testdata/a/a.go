// Package a exercises the framekind pass: switches over an annotated
// constant kind type must cover every constant and carry a non-empty
// default, while unannotated types stay unchecked.
package a

// kind discriminates wire frames.
//
//mpmdvet:exhaustive
type kind byte

const (
	kData kind = iota
	kAck
	kPing
	kClose
)

// kLast aliases kClose: same value, covered together.
const kLast = kClose

// --- positives -------------------------------------------------------------

func missingOne(k kind) int {
	switch k { // want `not exhaustive: missing kClose`
	case kData:
		return 1
	case kAck:
		return 2
	case kPing:
		return 3
	default:
		panic("bad kind")
	}
}

func noDefault(k kind) int {
	switch k { // want `non-empty default`
	case kData, kAck, kPing, kClose:
		return 1
	}
	return 0
}

func emptyDefault(k kind) int {
	switch k { // want `non-empty default`
	case kData, kAck, kPing, kClose:
		return 1
	default:
	}
	return 0
}

// --- negatives -------------------------------------------------------------

func fullSwitch(k kind) int {
	switch k {
	case kData:
		return 1
	case kAck, kPing, kClose:
		return 2
	default:
		panic("unknown kind")
	}
}

func aliasCovers(k kind) int {
	// kLast has kClose's value, so listing it covers kClose too.
	switch k {
	case kData, kAck, kPing, kLast:
		return 1
	default:
		panic("unknown kind")
	}
}

// color is not annotated: partial switches over it are fine.
type color int

const (
	red color = iota
	green
)

func colors(c color) int {
	switch c {
	case red:
		return 1
	}
	return 0
}

func pragmaEscapeHatch(k kind) int {
	switch k { //mpmdvet:ignore framekind decoder strips kClose frames before dispatch
	case kData, kAck, kPing:
		return 1
	default:
		return 0
	}
}
