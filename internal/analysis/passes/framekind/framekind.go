// Package framekind enforces exhaustive dispatch over wire-protocol kind
// constants. A defined constant type annotated //mpmdvet:exhaustive (the
// netlive frame-kind byte is the motivating case) promises that every switch
// over a value of the type:
//
//   - covers every package-level constant of the type (compared by constant
//     value, so aliases like kLast = kClose count as covered together), and
//   - carries a non-empty default clause, so a corrupt or future kind byte
//     is rejected loudly instead of falling through silently
//
// Adding a constant to the kind set then fails vet at every dispatch site
// that has not learned about it — the property a hand-maintained switch
// silently loses.
package framekind

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
)

var Analyzer = &analysis.Analyzer{
	Name: "framekind",
	Doc: "switches over //mpmdvet:exhaustive constant types must cover every " +
		"constant and reject unknown values in a non-empty default",
	Run: run,
}

func run(pass *analysis.Pass) error {
	annots := cfg.CollectAnnotations(pass.TypesInfo, pass.Files)
	if len(annots.Exhaustive) == 0 {
		return nil
	}
	// Collect the package's constants of each exhaustive type, grouped by
	// constant value: names[tn][exactValue] = sorted const names.
	names := map[*types.TypeName]map[string][]string{}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() { // Names() is sorted
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		tn := namedObj(c.Type())
		if tn == nil || !annots.Exhaustive[tn] {
			continue
		}
		if names[tn] == nil {
			names[tn] = map[string][]string{}
		}
		key := c.Val().ExactString()
		names[tn][key] = append(names[tn][key], name)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := pass.TypesInfo.Types[sw.Tag]
			if !ok {
				return true
			}
			tn := namedObj(tv.Type)
			if tn == nil || !annots.Exhaustive[tn] {
				return true
			}
			check(pass, sw, tn, names[tn])
			return true
		})
	}
	return nil
}

func check(pass *analysis.Pass, sw *ast.SwitchStmt, tn *types.TypeName, vals map[string][]string) {
	covered := map[string]bool{}
	hasDefault, defaultEmpty := false, false
	for _, cl := range sw.Body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			defaultEmpty = len(cc.Body) == 0
			continue
		}
		for _, e := range cc.List {
			if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
				covered[tv.Value.ExactString()] = true
			}
		}
	}
	var missing []string
	for key, ns := range vals {
		if !covered[key] {
			// One name per value: aliases are covered together, so naming
			// the first is enough to locate the gap.
			missing = append(missing, ns[0])
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		pass.Reportf(sw.Switch,
			"switch over %s (//mpmdvet:exhaustive) is not exhaustive: missing %s",
			tn.Name(), strings.Join(missing, ", "))
	}
	if !hasDefault || defaultEmpty {
		pass.Reportf(sw.Switch,
			"switch over %s (//mpmdvet:exhaustive) needs a non-empty default clause rejecting unknown values",
			tn.Name())
	}
}

// namedObj returns the defined type's name object, nil for non-named types.
func namedObj(t types.Type) *types.TypeName {
	if n, ok := types.Unalias(t).(*types.Named); ok {
		return n.Obj()
	}
	return nil
}
