package framekind_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/framekind"
)

func TestFramekind(t *testing.T) {
	results := analysistest.Run(t, framekind.Analyzer, "a")
	if n := len(results[0].Suppressed); n != 1 {
		t.Errorf("expected exactly 1 pragma-suppressed diagnostic (the escape-hatch case), got %d", n)
	}
}
