// Package a exercises the lockorder pass: acquisition-order cycles between
// two mutex classes, definite re-entrant locking, two instances of one
// class held together, and consistent orders that stay quiet.
package a

import "sync"

type srv struct {
	a sync.Mutex
	b sync.Mutex
}

// --- positives -------------------------------------------------------------

func abOrder(s *srv) {
	s.a.Lock()
	s.b.Lock() // want `lock order cycle`
	s.b.Unlock()
	s.a.Unlock()
}

func baOrder(s *srv) {
	s.b.Lock()
	s.a.Lock() // want `lock order cycle`
	s.a.Unlock()
	s.b.Unlock()
}

func reentrant(s *srv) {
	s.a.Lock()
	s.a.Lock() // want `not reentrant`
	s.a.Unlock()
	s.a.Unlock()
}

type node struct{ mu sync.Mutex }

func twoInstances(x, y *node) {
	x.mu.Lock()
	y.mu.Lock() // want `instance order`
	y.mu.Unlock()
	x.mu.Unlock()
}

// --- negatives -------------------------------------------------------------

type pool struct {
	big   sync.Mutex
	small sync.Mutex
}

func consistentFirst(p *pool) {
	p.big.Lock()
	p.small.Lock()
	p.small.Unlock()
	p.big.Unlock()
}

func consistentSecond(p *pool) {
	p.big.Lock()
	p.small.Lock()
	p.small.Unlock()
	p.big.Unlock()
}

func sequentialNotNested(s *srv) {
	s.a.Lock()
	s.a.Unlock()
	s.b.Lock()
	s.b.Unlock()
}

func branchReleasedBeforeSecond(s *srv) {
	s.b.Lock()
	s.b.Unlock()
	s.a.Lock()
	s.a.Unlock()
}

// The escape hatch: a deliberate violation justified in place is suppressed
// and counted, not reported.
type g struct{ m sync.Mutex }

func pragmaEscapeHatch(x *g) {
	x.m.Lock()
	x.m.Lock() //mpmdvet:ignore lockorder deliberate reentrant lock exercising the escape hatch
	x.m.Unlock()
}
