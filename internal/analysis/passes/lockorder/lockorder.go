// Package lockorder builds the package's inter-mutex acquisition graph and
// diagnoses deadlock-shaped patterns. Nodes are mutex classes — the
// declaration of the mutex field or variable, so every instance of
// `nd.mu` is one class — and an edge A→B is recorded each time a B-class
// lock is acquired while an A-class lock is held (the cfg lockset analysis
// supplies the held set at each acquisition).
//
// Reported:
//
//   - re-acquiring the exact lock already held on every path (sync.Mutex is
//     not reentrant: definite self-deadlock)
//   - acquisition edges that lie on a cycle of the class graph, which
//     covers both A→B/B→A inconsistent orders and longer cycles
//   - acquiring a second instance of a class already held (a self-edge):
//     without a documented instance order two goroutines can cross
//
// The graph is per package: cross-package lock nesting is out of scope (the
// runtime's lock hierarchies — node CPU, notify queue, peer writer — each
// live inside one package).
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "build the per-package mutex acquisition graph and report cycles, " +
		"inconsistent orders, and definite re-entrant locking",
	Run: run,
}

// edge is one observed held→acquired pair, kept at its first occurrence.
type edge struct {
	from, to *types.Var
	pos      token.Pos
}

type collector struct {
	pass  *analysis.Pass
	info  *types.Info
	edges map[[2]*types.Var]*edge
	order []*edge // insertion order, for deterministic iteration
}

func run(pass *analysis.Pass) error {
	c := &collector{pass: pass, info: pass.TypesInfo, edges: map[[2]*types.Var]*edge{}}
	annots := cfg.CollectAnnotations(pass.TypesInfo, pass.Files)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					entry := cfg.EntryLocks(pass.TypesInfo, pass.Pkg, n, annots)
					c.body(n.Body, entry)
				}
			case *ast.FuncLit:
				c.body(n.Body, cfg.LockSet{})
			}
			return true
		})
	}
	c.reportCycles()
	return nil
}

func (c *collector) body(body *ast.BlockStmt, entry cfg.LockSet) {
	cfg.WalkLocked(c.info, body, entry, func(s cfg.LockSet, n ast.Node) {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return
		}
		op, key, class, ok := cfg.MutexOp(c.info, call)
		if !ok || (op != cfg.OpLock && op != cfg.OpRLock) {
			return
		}
		if held, already := s[key]; already && op == cfg.OpLock && !held.RLock {
			c.pass.Reportf(call.Pos(),
				"%s is already held on every path here: sync mutexes are not reentrant, this deadlocks",
				renderExpr(call))
			return
		}
		for heldKey, h := range s {
			if heldKey == key {
				continue
			}
			c.addEdge(h.Class, class, call.Pos())
		}
	})
}

func (c *collector) addEdge(from, to *types.Var, pos token.Pos) {
	k := [2]*types.Var{from, to}
	if _, ok := c.edges[k]; ok {
		return
	}
	e := &edge{from: from, to: to, pos: pos}
	c.edges[k] = e
	c.order = append(c.order, e)
}

// reportCycles reports every edge that lies on a cycle of the class graph,
// and self-edges (two instances of one class held together).
func (c *collector) reportCycles() {
	succs := map[*types.Var][]*types.Var{}
	for _, e := range c.order {
		if e.from != e.to {
			succs[e.from] = append(succs[e.from], e.to)
		}
	}
	// Deterministic report order: by position.
	es := make([]*edge, len(c.order))
	copy(es, c.order)
	sort.Slice(es, func(i, j int) bool { return es[i].pos < es[j].pos })
	for _, e := range es {
		if e.from == e.to {
			c.pass.Reportf(e.pos,
				"second %s acquired while one is already held: document and enforce an instance order or restructure",
				classLabel(c.pass.Fset, e.from))
			continue
		}
		if reaches(succs, e.to, e.from) {
			c.pass.Reportf(e.pos,
				"lock order cycle: %s acquired while holding %s, but the reverse order also occurs in this package",
				classLabel(c.pass.Fset, e.to), classLabel(c.pass.Fset, e.from))
		}
	}
}

// reaches reports whether to is reachable from from in the class graph.
func reaches(succs map[*types.Var][]*types.Var, from, to *types.Var) bool {
	seen := map[*types.Var]bool{}
	stack := []*types.Var{from}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if v == to {
			return true
		}
		if seen[v] {
			continue
		}
		seen[v] = true
		stack = append(stack, succs[v]...)
	}
	return false
}

// classLabel renders a mutex class for a message: the declared name plus
// its declaration site, which disambiguates the many fields named "mu".
func classLabel(fset *token.FileSet, v *types.Var) string {
	pos := fset.Position(v.Pos())
	return fmt.Sprintf("%s (declared at %s:%d)", v.Name(), pos.Filename, pos.Line)
}

func renderExpr(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if base, ok := analysis.ExprText(sel.X); ok {
			return base
		}
	}
	return "this lock"
}
