// Package bufown enforces the pooled wire.Buf ownership contract documented
// at the top of internal/wire/wire.go: Get/Copy hand back a buffer with
// refcount 1 and the caller owns it; ownership transfers on send (passing
// the buffer to a call, storing it into a message, returning it); handlers
// borrow the payload for the duration of the callback and must Retain before
// keeping it; Release ends an ownership, and touching the bytes after the
// final Release corrupts the pool.
//
// The pass runs a conservative flow-sensitive abstract interpretation per
// function body over the cfg package's basic-block graph, tracking each
// *wire.Buf-typed variable or field path through the states owned /
// borrowed / released / maybe-released / gone. The fixpoint driver joins
// states at merge points and around loop back edges; reporting happens in a
// single deterministic sweep against the converged entry states. It reports
// only definite violations (plus "may" wordings where one path releases and
// another does not):
//
//   - Release on a released buffer (double release), including an explicit
//     Release while a deferred Release is pending
//   - Bytes/Len/Retain or any other use of a buffer after its final Release
//   - storing a borrowed buffer into a field, global, composite literal, or
//     channel — or capturing it in an escaping closure — without Retain
//   - returning (or falling off the end of a function) while still owning a
//     buffer the function got from wire.Get/wire.Copy: the error-path leak
//
// Ownership transfer at call sites is driven by the per-function transfer
// summary (summary.go): a call with a single static in-set callee consults
// the callee's computed takes/returns-owned facts, so passing an owned
// buffer to a helper that only borrows it (reads Bytes/Len, never releases
// or forwards) keeps the release obligation with the caller — a leak the
// old hand-annotated transfer-in convention silently waved through.
// Interface calls, function values, and out-of-set callees keep the
// conservative convention: passing transfers, returned buffers are owned.
package bufown

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/cfg"
)

var Analyzer = &analysis.Analyzer{
	Name: "bufown",
	Doc: "check wire.Buf ownership flow: no double Release, no use after final Release, " +
		"no unretained stores of borrowed payload buffers, no owned-buffer leaks on return paths; " +
		"ownership transfer at call sites follows the callee's summarized takes/returns-owned facts",
	Run:        run,
	Transitive: true,
}

type state uint8

const (
	stUnknown  state = iota // widened / conflicting paths: no reports
	stOwned                 // this function holds the reference (wire.Get/Copy)
	stBorrowed              // borrowed payload field: no release obligation, no keeping without Retain
	stParam                 // *wire.Buf parameter: ownership transfers in by convention (send path)
	stReleased              // definitely released on every path here
	stMaybeRel              // released on some path
	stGone                  // ownership transferred away
)

// varInfo is the per-variable abstract state. The zero value (stUnknown, no
// flags) is the canonical "untracked": join treats an absent key as it.
type varInfo struct {
	st       state
	retained bool // Retain() seen: keeping a reference is legitimate
	deferred bool // a deferred Release covers function exit
}

// env maps ExprKey -> abstract state.
type env map[string]varInfo

func (e env) clone() env {
	c := make(env, len(e))
	for k, v := range e {
		c[k] = v
	}
	return c
}

// merge joins another branch outcome in place (no change reporting; the
// fixpoint join is joinEnv).
func (e env) merge(o env) {
	joinEnv(e, o)
}

// joinEnv folds src into dst and reports whether dst changed. Absent keys
// are the zero varInfo, and entries that join to it are dropped, so equal
// states compare equal structurally.
func joinEnv(dst, src env) bool {
	var zero varInfo
	changed := false
	for k, a := range dst {
		b := src[k] // zero when absent
		j := joinVar(a, b)
		if j == a {
			continue
		}
		changed = true
		if j == zero {
			delete(dst, k)
		} else {
			dst[k] = j
		}
	}
	for k, b := range src {
		if _, ok := dst[k]; ok {
			continue
		}
		if j := joinVar(varInfo{}, b); j != zero {
			dst[k] = j
			changed = true
		}
	}
	return changed
}

// joinVar is the state semilattice: released-ness on any path degrades to
// maybe-released (the absorbing "report may-wordings only" point);
// conflicting concrete states degrade to unknown (no reports).
func joinVar(a, b varInfo) varInfo {
	out := varInfo{retained: a.retained || b.retained, deferred: a.deferred || b.deferred}
	switch {
	case a.st == b.st:
		out.st = a.st
	case a.st == stReleased || b.st == stReleased ||
		a.st == stMaybeRel || b.st == stMaybeRel:
		out.st = stMaybeRel
	default:
		out.st = stUnknown
	}
	return out
}

func run(pass *analysis.Pass) error {
	if analysis.PkgPathMatches(pass.Pkg, "internal/wire") {
		return nil // the pool itself manipulates refcounts below the contract
	}
	g := callgraph.Of(pass.Prog)
	facts := Facts(pass.Prog)
	lookup := func(n *callgraph.Node) OwnFact { return facts[n] }
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			a := &analyzer{pass: pass, info: pass.TypesInfo, graph: g, facts: lookup}
			e := env{}
			// Seed parameters (including the receiver) of type *wire.Buf as
			// transfer-in ownership; borrowed payload fields seed lazily.
			seedFieldList(a, e, fd.Recv)
			seedFieldList(a, e, fd.Type.Params)
			a.runFlow(e, fd.Body, false)
			return false // nested FuncLits are analyzed by the closure logic
		})
	}
	return nil
}

func seedFieldList(a *analyzer, e env, fl *ast.FieldList) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		for _, name := range field.Names {
			obj := a.info.Defs[name]
			if obj == nil || !isBufPtr(obj.Type()) {
				continue
			}
			if k, ok := analysis.ExprKey(a.info, name); ok {
				// The wire contract transfers ownership on send: a function
				// that accepts a naked *wire.Buf (SendBuf, DeliverRemote,
				// RequestOwned) owns or forwards it. Borrowing happens
				// through payload *fields* (m.PayloadBuf), seeded lazily.
				e[k] = varInfo{st: stParam}
			}
		}
	}
}

type analyzer struct {
	pass *analysis.Pass
	info *types.Info
	// graph and facts wire in the ownership-transfer summary: call sites
	// with a single static in-set callee consult the callee's OwnFact
	// instead of the blanket transfer-on-pass convention. Both may be nil
	// (then every call falls back to the convention).
	graph *callgraph.Graph
	facts func(*callgraph.Node) OwnFact
	// onReturn, when set, observes the env at each return statement before
	// results are marked transferred (the summary's returns-owned probe).
	onReturn func(e env, n *ast.ReturnStmt)
	// mute suppresses diagnostics while the fixpoint driver iterates; the
	// reporting sweep clears it so each violation fires exactly once.
	mute bool
}

// factFor resolves the ownership summary of a call's single static in-set
// callee. ok is false for interface calls, function values, multi-callee
// sites, and out-of-set callees — those keep the transfer-in convention.
func (a *analyzer) factFor(call *ast.CallExpr) (OwnFact, bool) {
	if a.graph == nil || a.facts == nil {
		return OwnFact{}, false
	}
	site := a.graph.Sites[call]
	if site == nil || site.Kind != callgraph.KindStatic || len(site.Callees) != 1 {
		return OwnFact{}, false
	}
	return a.facts(site.Callees[0]), true
}

// takes reports whether the call consumes ownership of argument i.
func (a *analyzer) takes(call *ast.CallExpr, i int) bool {
	f, ok := a.factFor(call)
	if !ok || i >= len(f.Takes) {
		return true // unknown callee or variadic tail: the old convention
	}
	return f.Takes[i]
}

func (a *analyzer) reportf(pos token.Pos, format string, args ...any) {
	if !a.mute {
		a.pass.Reportf(pos, format, args...)
	}
}

func isBufPtr(t types.Type) bool {
	p, ok := types.Unalias(t).Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	return analysis.IsNamed(p.Elem(), "internal/wire", "Buf")
}

// key returns the tracking key of e if it is a trackable *wire.Buf location,
// lazily seeding field paths (m.PayloadBuf and the like) as borrowed.
func (a *analyzer) key(en env, x ast.Expr) (string, bool) {
	x = ast.Unparen(x)
	tv, ok := a.info.Types[x]
	if !ok || !isBufPtr(tv.Type) {
		return "", false
	}
	k, ok := analysis.ExprKey(a.info, x)
	if !ok {
		return "", false
	}
	if _, seen := en[k]; !seen {
		en[k] = varInfo{st: stBorrowed}
	}
	return k, true
}

// ---- flow driving ----

// runFlow analyzes body as its own control-flow graph starting from entry,
// and returns the join of the states at every exit (returns and the fall
// off the closing brace). muted suppresses all diagnostics — used when a
// closure body is re-interpreted during the enclosing function's fixpoint
// iterations.
func (a *analyzer) runFlow(entry env, body *ast.BlockStmt, muted bool) env {
	var exit env
	f := &cfg.Flow[env]{
		Graph: cfg.New(body),
		Entry: entry.clone,
		Clone: env.clone,
		Join:  joinEnv,
		Transfer: func(e env, n ast.Node, report bool) {
			prev := a.mute
			a.mute = muted || !report
			a.transfer(e, n)
			a.mute = prev
			if report {
				switch n.(type) {
				case *ast.ReturnStmt, *cfg.Fall:
					if exit == nil {
						exit = e.clone()
					} else {
						exit.merge(e)
					}
				}
			}
		},
	}
	f.Analyze()
	if exit == nil {
		exit = env{}
	}
	return exit
}

// transfer interprets one flat CFG node.
func (a *analyzer) transfer(e env, n ast.Node) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		a.assign(e, n)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var rhs ast.Expr
					if i < len(vs.Values) {
						rhs = vs.Values[i]
					}
					a.assignOne(e, name, rhs)
				}
			}
		}
	case *ast.ExprStmt:
		a.expr(e, n.X)
	case *ast.SendStmt:
		a.expr(e, n.Chan)
		a.expr(e, n.Value)
		if k, ok := a.key(e, n.Value); ok {
			a.storeEvent(e, k, n.Value.Pos(), "sends")
		}
	case *ast.DeferStmt:
		a.deferStmt(e, n)
	case *ast.GoStmt:
		a.expr(e, n.Call)
	case *ast.IncDecStmt:
		a.expr(e, n.X)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			a.expr(e, r)
		}
		if a.onReturn != nil {
			a.onReturn(e, n)
		}
		for _, r := range n.Results {
			if k, ok := a.key(e, r); ok {
				v := e[k]
				v.st = stGone // returning transfers ownership to the caller
				e[k] = v
			}
		}
		a.checkLeaks(e, n.Pos(), true)
	case *cfg.Fall:
		a.checkLeaks(e, n.Brace, false)
	case *ast.RangeStmt:
		a.expr(e, n.X)
	case *ast.ForStmt:
		// Condition-less loop marker: no data effect.
	case ast.Expr:
		// Decomposed conditions, switch tags, and case guards.
		a.expr(e, n)
	}
}

// ---- assignments, stores, and ownership transfer ----

func (a *analyzer) assign(e env, s *ast.AssignStmt) {
	for _, r := range s.Rhs {
		a.expr(e, r)
	}
	if len(s.Lhs) == len(s.Rhs) {
		for i := range s.Lhs {
			a.assignOne(e, s.Lhs[i], s.Rhs[i])
		}
		return
	}
	// Multi-value RHS (call or comma-ok): each buf-typed LHS becomes unknown.
	for _, l := range s.Lhs {
		a.assignOne(e, l, nil)
	}
}

func (a *analyzer) assignOne(e env, lhs ast.Expr, rhs ast.Expr) {
	lhs = ast.Unparen(lhs)
	// Reassigning any location invalidates tracked buffer paths under it:
	// after `f, ok = q.Pop()` the old state of f.buf says nothing about the
	// new frame's buffer.
	if lk, ok := analysis.ExprKey(a.info, lhs); ok {
		for k := range e {
			if strings.HasPrefix(k, lk+".") {
				delete(e, k)
			}
		}
	}
	lt := a.lhsType(lhs)
	if lt == nil || !isBufPtr(lt) {
		return
	}

	// Storing into a field / global / element is an escape of the RHS value.
	if rhs != nil {
		if rk, ok := a.key(e, rhs); ok && isEscapingLHS(a.info, lhs) {
			a.storeEvent(e, rk, rhs.Pos(), "stores")
		}
	}

	lk, trackable := analysis.ExprKey(a.info, lhs)
	if !trackable {
		return
	}
	switch {
	case rhs == nil:
		e[lk] = varInfo{st: stUnknown}
	case isNil(rhs):
		delete(e, lk)
	default:
		if rk, ok := a.key(e, rhs); ok {
			// Alias: the LHS inherits the source's state; the source keeps
			// its own (they now alias — we stay conservative about that by
			// leaving both tracked; releases through either are still
			// individually checked).
			e[lk] = e[rk]
			return
		}
		if call, isCall := ast.Unparen(rhs).(*ast.CallExpr); isCall {
			// A call handing back a *wire.Buf confers ownership (wire.Get,
			// wire.Copy, or any constructor following the contract) — unless
			// the callee's summary says the result is a borrow (it hands out
			// someone else's payload).
			st := stOwned
			if f, ok := a.factFor(call); ok && len(f.ReturnsOwned) == 1 && !f.ReturnsOwned[0] {
				st = stBorrowed
			}
			e[lk] = varInfo{st: st}
			return
		}
		e[lk] = varInfo{st: stUnknown}
	}
}

// lhsType resolves the type of an assignment target. Idents on the left of
// := are absent from info.Types, so they resolve through Defs/Uses.
func (a *analyzer) lhsType(lhs ast.Expr) types.Type {
	if id, ok := lhs.(*ast.Ident); ok {
		obj := a.info.Defs[id]
		if obj == nil {
			obj = a.info.Uses[id]
		}
		if obj == nil {
			return nil
		}
		return obj.Type()
	}
	if tv, ok := a.info.Types[lhs]; ok {
		return tv.Type
	}
	return nil
}

// isEscapingLHS reports whether assigning to lhs publishes the value beyond
// the current activation: a field selector, an index expression, a
// dereference, or a package-level variable.
func isEscapingLHS(info *types.Info, lhs ast.Expr) bool {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		return true
	case *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.Ident:
		obj := info.Defs[l]
		if obj == nil {
			obj = info.Uses[l]
		}
		if v, ok := obj.(*types.Var); ok {
			return v.Parent() == v.Pkg().Scope() // package-level var
		}
	}
	return false
}

func isNil(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// storeEvent handles a buffer value escaping into longer-lived storage.
// Owned: ownership transfers (fine). Borrowed without Retain: violation.
// Released: use after release.
func (a *analyzer) storeEvent(e env, k string, pos token.Pos, verb string) {
	v := e[k]
	switch v.st {
	case stOwned, stParam:
		v.st = stGone
		e[k] = v
	case stBorrowed:
		if !v.retained {
			a.reportf(pos,
				"%s a borrowed payload buffer beyond the handler without Retain: the pool reclaims it when the dispatcher releases (wire.Buf contract, internal/wire/wire.go)", verb)
		}
	case stReleased:
		a.reportf(pos, "%s a wire.Buf after its final Release", verb)
	}
}

// ---- expression interpretation ----

// expr walks an expression, firing ownership events for method calls,
// argument transfers, composite-literal stores, and closures.
func (a *analyzer) expr(e env, x ast.Expr) {
	switch x := ast.Unparen(x).(type) {
	case nil:
	case *ast.CallExpr:
		a.call(e, x)
	case *ast.FuncLit:
		a.closure(e, x, false)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			val := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				val = kv.Value
			}
			a.expr(e, val)
			if k, ok := a.key(e, val); ok {
				a.storeEvent(e, k, val.Pos(), "stores")
			}
		}
	case *ast.UnaryExpr:
		a.expr(e, x.X)
	case *ast.BinaryExpr:
		a.expr(e, x.X)
		a.expr(e, x.Y)
	case *ast.StarExpr:
		a.expr(e, x.X)
	case *ast.IndexExpr:
		a.expr(e, x.X)
		a.expr(e, x.Index)
	case *ast.SliceExpr:
		a.expr(e, x.X)
	case *ast.TypeAssertExpr:
		a.expr(e, x.X)
	case *ast.SelectorExpr:
		// Field read through a tracked buffer (b.anything) or a tracked
		// path itself: a read after final Release is a use-after-release.
		if k, ok := a.key(e, x.X); ok {
			a.useEvent(e, k, x.Pos(), "accesses")
		}
	}
}

// call interprets a call expression: Retain/Release/Bytes/Len method events
// on tracked buffers, and ownership transfer for buffers passed as args.
func (a *analyzer) call(e env, call *ast.CallExpr) {
	// Method events on a tracked receiver.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if k, ok := a.key(e, sel.X); ok {
			switch sel.Sel.Name {
			case "Release":
				a.releaseEvent(e, k, call.Pos(), false)
			case "Retain":
				a.useEvent(e, k, call.Pos(), "retains")
				v := e[k]
				v.retained = true
				e[k] = v
			default: // Bytes, Len, ...
				a.useEvent(e, k, call.Pos(), "calls "+sel.Sel.Name+" on")
			}
			for _, arg := range call.Args {
				a.expr(e, arg)
			}
			return
		}
	}
	a.expr(e, call.Fun)
	for i, arg := range call.Args {
		if fl, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
			a.closure(e, fl, true) // closure handed to a callee: escapes
			continue
		}
		a.expr(e, arg)
		if k, ok := a.key(e, arg); ok {
			v := e[k]
			switch v.st {
			case stOwned, stParam:
				// Passing an owned buffer is the send/transfer idiom: the
				// callee now owns it — unless its summary proves it only
				// borrows the argument, in which case the caller keeps the
				// release obligation.
				if a.takes(call, i) {
					v.st = stGone
					e[k] = v
				}
			case stReleased:
				a.reportf(arg.Pos(), "passes a wire.Buf after its final Release")
			}
		}
	}
}

// closure analyzes a function literal. Captured tracked buffers keep their
// outer keys; an escaping closure capturing a borrowed, unretained buffer is
// a violation (the buffer may be reclaimed before the closure runs), and an
// owned buffer captured by an escaping closure transfers ownership into it.
func (a *analyzer) closure(e env, fl *ast.FuncLit, escapes bool) {
	inner := e.clone()
	seedFieldList(a, inner, fl.Type.Params)
	if escapes {
		captured := capturedKeys(a, e, fl)
		for _, k := range captured {
			v := e[k]
			switch v.st {
			case stBorrowed:
				if !v.retained {
					a.reportf(fl.Pos(),
						"closure escapes with a borrowed payload buffer captured without Retain: the pool may reclaim it before the closure runs")
				}
			case stOwned, stParam:
				v.st = stGone // the closure body is now responsible for it
				e[k] = v
			case stReleased:
				a.reportf(fl.Pos(), "closure captures a wire.Buf after its final Release")
			}
		}
		// The closure runs later, against state we cannot order: analyze its
		// body only for local (inner) violations, with captured state reset.
		for _, k := range captured {
			inner[k] = varInfo{st: stUnknown, retained: e[k].retained}
		}
	}
	exit := a.runFlow(inner, fl.Body, a.mute)
	if !escapes {
		// Immediately-invoked literal: releases inside it happened.
		for k, v := range exit {
			if _, outer := e[k]; outer {
				e[k] = v
			}
		}
	}
}

// capturedKeys returns the keys of *wire.Buf locations the literal
// references from the enclosing scope (root variable declared outside the
// literal), lazily seeding previously-untouched payload fields so a closure
// can be the buffer's first use.
func capturedKeys(a *analyzer, e env, fl *ast.FuncLit) []string {
	seen := map[string]bool{}
	var out []string
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		x, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		root := rootIdent(x)
		if root == nil {
			return true
		}
		obj := a.info.Uses[root]
		if obj == nil {
			obj = a.info.Defs[root]
		}
		if obj == nil || (fl.Pos() <= obj.Pos() && obj.Pos() <= fl.End()) {
			return true // declared inside the literal: not a capture
		}
		if k, ok := a.key(e, x); ok && !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
		return true
	})
	return out
}

// rootIdent returns the base identifier of an ident/selector chain.
func rootIdent(x ast.Expr) *ast.Ident {
	for {
		switch e := ast.Unparen(x).(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			x = e.X
		default:
			return nil
		}
	}
}

// deferStmt marks deferred Releases (they cover every exit) and analyzes
// other deferred calls normally.
func (a *analyzer) deferStmt(e env, s *ast.DeferStmt) {
	marked := false
	if sel, ok := s.Call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Release" {
		if k, ok := a.key(e, sel.X); ok {
			v := e[k]
			v.deferred = true
			e[k] = v
			marked = true
		}
	}
	if fl, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		// defer func() { b.Release() }(): find releases of tracked keys.
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Release" {
				if k, ok := analysis.ExprKey(a.info, sel.X); ok {
					if _, tracked := e[k]; tracked {
						v := e[k]
						v.deferred = true
						e[k] = v
						marked = true
					}
				}
			}
			return true
		})
		return
	}
	if !marked {
		a.expr(e, s.Call)
	}
}

// releaseEvent fires for an explicit b.Release().
func (a *analyzer) releaseEvent(e env, k string, pos token.Pos, viaDefer bool) {
	v := e[k]
	switch v.st {
	case stReleased:
		a.reportf(pos, "wire.Buf released twice on this path")
		return
	case stMaybeRel:
		a.reportf(pos, "wire.Buf may already be released on some path reaching this Release")
		return
	case stGone:
		// Ownership was transferred; releasing now double-frees somewhere
		// downstream — but aliasing makes this too noisy to assert. Skip.
		return
	}
	if v.deferred && !viaDefer {
		a.reportf(pos, "explicit Release with a deferred Release pending: the buffer is released twice at function exit")
		return
	}
	v.st = stReleased
	e[k] = v
}

// useEvent fires for any read/method use of a tracked buffer.
func (a *analyzer) useEvent(e env, k string, pos token.Pos, verb string) {
	switch e[k].st {
	case stReleased:
		a.reportf(pos, "%s a wire.Buf after its final Release: the pool may have reissued it", verb)
	}
}

// checkLeaks reports owned, unreleased, untransferred buffers at an exit
// point; atReturn distinguishes the message wording.
func (a *analyzer) checkLeaks(e env, pos token.Pos, atReturn bool) {
	for _, v := range e {
		if v.st == stOwned && !v.deferred && !v.retained {
			where := "at end of function"
			if atReturn {
				where = "on this return path"
			}
			a.reportf(pos,
				"owned wire.Buf leaks %s: release it or transfer ownership before returning (wire pool contract)", where)
		}
	}
}
