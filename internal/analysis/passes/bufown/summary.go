package bufown

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

// The ownership-transfer summary. For every function in the program's call
// graph it records, per *wire.Buf parameter, whether the body consumes the
// reference (releases it, forwards it, stores it, returns it — Takes), and
// per *wire.Buf result whether the returned buffer carries an ownership the
// caller must discharge (ReturnsOwned; false when every return hands out a
// borrowed payload). Facts are computed by running the pass's own abstract
// interpreter over the body with diagnostics muted and observing what the
// parameter's state degraded to at exit, iterated bottom-up over SCCs so
// helpers-calling-helpers compose.

// OwnFact is one function's transfer summary. Takes is indexed like
// call-site arguments (the receiver is not included — a bare *wire.Buf
// receiver only occurs inside internal/wire, which is out of scope).
type OwnFact struct {
	Takes        []bool
	ReturnsOwned []bool
}

type ownFactsKey struct{}

// Facts computes the ownership-transfer summary of every function in the
// program's call graph, cached on the Program.
func Facts(prog *analysis.Program) map[*callgraph.Node]OwnFact {
	return prog.Fact(ownFactsKey{}, func() any {
		g := callgraph.Of(prog)
		return callgraph.Propagate[OwnFact](g, &ownSummary{graph: g})
	}).(map[*callgraph.Node]OwnFact)
}

type ownSummary struct {
	graph *callgraph.Graph
}

func (os *ownSummary) Equal(a, b OwnFact) bool {
	return boolsEqual(a.Takes, b.Takes) && boolsEqual(a.ReturnsOwned, b.ReturnsOwned)
}

func boolsEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (os *ownSummary) Compute(n *callgraph.Node, get func(*callgraph.Node) OwnFact) OwnFact {
	fd := n.Decl
	if fd == nil {
		return OwnFact{}
	}
	nparams, bufParams := paramShape(n.Pkg.Info, fd)
	nresults, bufResults := resultShape(n.Pkg.Info, fd)
	fact := OwnFact{Takes: make([]bool, nparams), ReturnsOwned: make([]bool, nresults)}
	for i := range fact.Takes {
		fact.Takes[i] = true
	}
	for i := range fact.ReturnsOwned {
		fact.ReturnsOwned[i] = true
	}
	if len(bufParams) == 0 && len(bufResults) == 0 {
		return fact // nothing buffer-shaped crosses this boundary
	}
	if analysis.PkgPathMatches(n.Pkg.Pkg, "internal/wire") || fd.Body == nil {
		// The pool itself follows the documented contract (Get/Copy return
		// owned; sinks consume); bodiless declarations get the same default.
		return fact
	}

	a := &analyzer{info: n.Pkg.Info, graph: os.graph, facts: get, mute: true}
	// Probe returns before results are marked transferred: a result whose
	// state is borrowed on every return path is a borrow hand-out.
	allBorrowed := make([]bool, nresults)
	sawReturn := make([]bool, nresults)
	for _, i := range bufResults {
		allBorrowed[i] = true
	}
	a.onReturn = func(e env, ret *ast.ReturnStmt) {
		if len(ret.Results) != nresults {
			return // naked return of named results: keep the owned default
		}
		for _, i := range bufResults {
			sawReturn[i] = true
			if k, ok := a.key(e, ret.Results[i]); ok && e[k].st == stBorrowed {
				continue
			}
			allBorrowed[i] = false
		}
	}
	e := env{}
	seedFieldList(a, e, fd.Recv)
	seedFieldList(a, e, fd.Type.Params)
	exit := a.runFlow(e, fd.Body, true)

	for i, p := range bufParams {
		if k, ok := analysis.ExprKey(a.info, p.ident); ok {
			if st, tracked := exit[k]; tracked && st.st == stParam && !st.deferred {
				// The body left the parameter untouched or only read it:
				// ownership stays with the caller.
				fact.Takes[i] = false
			}
		}
	}
	for _, i := range bufResults {
		if sawReturn[i] && allBorrowed[i] {
			fact.ReturnsOwned[i] = false
		}
	}
	return fact
}

type bufParam struct {
	ident *ast.Ident
}

// paramShape counts the call-site argument positions and maps *wire.Buf
// parameters to their position.
func paramShape(info *types.Info, fd *ast.FuncDecl) (int, map[int]bufParam) {
	bufs := map[int]bufParam{}
	i := 0
	for _, f := range fd.Type.Params.List {
		if len(f.Names) == 0 {
			i++
			continue
		}
		for _, id := range f.Names {
			if obj := info.Defs[id]; obj != nil && isBufPtr(obj.Type()) {
				bufs[i] = bufParam{ident: id}
			}
			i++
		}
	}
	return i, bufs
}

// resultShape counts the result positions and lists the *wire.Buf ones.
func resultShape(info *types.Info, fd *ast.FuncDecl) (int, []int) {
	if fd.Type.Results == nil {
		return 0, nil
	}
	var bufs []int
	i := 0
	for _, f := range fd.Type.Results.List {
		count := len(f.Names)
		if count == 0 {
			count = 1
		}
		t := info.Types[f.Type].Type
		for j := 0; j < count; j++ {
			if t != nil && isBufPtr(t) {
				bufs = append(bufs, i)
			}
			i++
		}
	}
	return i, bufs
}
