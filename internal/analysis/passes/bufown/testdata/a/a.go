// Package a exercises the bufown pass: positive cases (double release,
// use-after-release, error-path leaks, unretained keeps) and negative cases
// (transfer on send, deferred release, Retain-across-spawn).
package a

import (
	"errors"

	"repro/internal/wire"
)

var errFail = errors.New("fail")

// msg mimics the am.Msg envelope shape: PayloadBuf is a borrowed payload
// field while a handler runs.
type msg struct {
	PayloadBuf *wire.Buf
}

type holder struct {
	buf *wire.Buf
}

var savedGlobal *wire.Buf

// send consumes its argument (the transfer-out sink); the summary proves it
// takes ownership, so passing an owned buffer discharges the obligation.
func send(b *wire.Buf) { b.Release() }

func spawn(fn func()) {}

// use only borrows: reads, never releases or forwards.
func use(b *wire.Buf) { _ = b.Len() }

func sink(p []byte) int { return len(p) }

// --- positives -------------------------------------------------------------

func doubleRelease() {
	b := wire.Get(8)
	b.Release()
	b.Release() // want `released twice`
}

func useAfterRelease() int {
	b := wire.Get(8)
	b.Release()
	return sink(b.Bytes()) // want `after its final Release`
}

func leakOnErrorPath(fail bool) error {
	b := wire.Get(8)
	if fail {
		return errFail // want `leaks on this return path`
	}
	send(b)
	return nil
}

func storeBorrowedWithoutRetain(m msg) {
	savedGlobal = m.PayloadBuf // want `without Retain`
}

func keepBorrowedInFieldWithoutRetain(h *holder, m msg) {
	h.buf = m.PayloadBuf // want `without Retain`
}

func captureBorrowedWithoutRetain(m msg) {
	spawn(func() { // want `captured without Retain`
		use(m.PayloadBuf)
	})
}

func explicitWithDeferredPending() {
	b := wire.Get(8)
	defer b.Release()
	b.Release() // want `deferred Release pending`
}

func maybeDoubleRelease(cond bool) {
	b := wire.Get(8)
	if cond {
		b.Release()
	}
	b.Release() // want `may already be released`
}

// --- negatives -------------------------------------------------------------

func transferOnSend() {
	b := wire.Get(8)
	send(b) // ownership moves to the callee: no leak
}

func deferredRelease() int {
	b := wire.Copy([]byte("ok"))
	defer b.Release()
	return sink(b.Bytes())
}

func retainAcrossSpawn(m msg) {
	// The threaded-dispatch idiom from core/rmi.go: Retain before handing
	// the payload to a spawned thread, Release when it finishes.
	pb := m.PayloadBuf
	if pb != nil {
		pb.Retain()
	}
	spawn(func() {
		if pb != nil {
			pb.Release()
		}
	})
}

func paramOwnershipIn(b *wire.Buf, h *holder) {
	// Naked *wire.Buf parameters follow the transfer-in convention
	// (RequestOwned, DeliverRemote): keeping one is legal.
	h.buf = b
}

func storeOwnedIntoEnvelope(h *holder) {
	b := wire.Get(8)
	h.buf = b // ownership transfers into the structure
}

func branchReleaseBothPaths(cond bool) {
	b := wire.Get(8)
	if cond {
		b.Release()
	} else {
		send(b)
	}
}

// Slot-backed buffers (wire.NewSlot, the shm ring marshal target) follow the
// same owned lifecycle: Bind/marshal/Release per frame is clean, touching the
// Buf after Release is the slot-aliasing bug the severed backing store exists
// to catch.

func slotBindMarshalRelease(region []byte) int {
	b := wire.NewSlot()
	b.Bind(region)
	n := sink(b.Bytes())
	b.Release()
	return n
}

func slotUseAfterRelease(region []byte) int {
	b := wire.NewSlot()
	b.Bind(region)
	b.Release()
	return sink(b.Bytes()) // want `after its final Release`
}

// --- transfer summary ------------------------------------------------------

// peek borrows: the summary records takes=false for its parameter.
func peek(b *wire.Buf) int { return b.Len() }

// payload hands out a borrowed field: returns-owned is false.
func payload(m msg) *wire.Buf { return m.PayloadBuf }

func releaseAfterBorrowingCall() {
	b := wire.Get(8)
	_ = peek(b) // peek only borrows: b is still this function's to release
	b.Release()
}

func leakThroughBorrowingCall() {
	b := wire.Get(8)
	_ = peek(b) // the old transfer-in convention hid this leak
} // want `leaks at end of function`

func storeHandedOutBorrowWithoutRetain(m msg) {
	pb := payload(m)
	savedGlobal = pb // want `without Retain`
}

func retainHandedOutBorrow(m msg) {
	pb := payload(m)
	pb.Retain()
	savedGlobal = pb
}

// The escape hatch: a deliberate violation justified in place is suppressed
// and counted, not reported.
func pragmaEscapeHatch() {
	b := wire.Get(8)
	b.Release()
	b.Release() //mpmdvet:ignore bufown deliberate double release exercising the escape hatch
}
