package suite_test

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/analysis/suite"
)

// TestTreeClean is the meta-test: the full mpmdvet suite must run clean over
// every package in the module (test files included), so a regression against
// any enforced invariant fails `go test ./...` even before CI's dedicated
// vet step runs.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root := moduleRoot(t)
	var out strings.Builder
	sum, clean, err := analysis.Run(&out, root, suite.Analyzers())
	if err != nil {
		t.Fatalf("mpmdvet over ./...: %v", err)
	}
	if !clean {
		t.Errorf("mpmdvet found violations:\n%s", out.String())
	}
	t.Logf("%s", sum.Line())
	if sum.Packages == 0 {
		t.Fatalf("loaded 0 packages — loader regression")
	}
	// Every suppression must carry its justification.
	for _, s := range sum.Suppressed {
		if strings.TrimSpace(s.Reason) == "" {
			t.Errorf("suppression at %s has no reason", s.Position)
		}
	}
	// The suppression ledger must match the committed baseline exactly: new
	// pragmas (and removed ones) update mpmdvet_baseline.json in the same
	// reviewed change.
	base, err := analysis.LoadBaseline(filepath.Join(root, "mpmdvet_baseline.json"))
	if err != nil {
		t.Fatalf("committed baseline: %v", err)
	}
	for _, msg := range sum.DiffBaseline(base) {
		t.Errorf("baseline drift: %s", msg)
	}
}

// BenchmarkMpmdvetTree times a full eleven-pass run over the whole module —
// load, type-check, build the call graph and summaries, analyze, filter
// pragmas. Loading dominates; the number to watch across changes is the
// marginal cost of adding a pass or a summary.
func BenchmarkMpmdvetTree(b *testing.B) {
	root := moduleRoot(b)
	for i := 0; i < b.N; i++ {
		if _, _, err := analysis.Run(io.Discard, root, suite.Analyzers()); err != nil {
			b.Fatalf("mpmdvet over ./...: %v", err)
		}
	}
}

// TestMpmdvetTreeBudget is the CI perf ratchet for BenchmarkMpmdvetTree:
// the best of three full-tree runs must stay under twice the committed
// tree_bench_ms in mpmdvet_baseline.json, so a summary fixpoint or loader
// regression that blows up the vet time fails the change that caused it.
// Gated behind MPMDVET_BENCH_GATE=1 because wall-time assertions are only
// meaningful on the dedicated CI runner, not a loaded dev box.
func TestMpmdvetTreeBudget(t *testing.T) {
	if os.Getenv("MPMDVET_BENCH_GATE") != "1" {
		t.Skip("set MPMDVET_BENCH_GATE=1 to enforce the tree-run time budget")
	}
	root := moduleRoot(t)
	base, err := analysis.LoadBaseline(filepath.Join(root, "mpmdvet_baseline.json"))
	if err != nil {
		t.Fatalf("committed baseline: %v", err)
	}
	if base.TreeBenchMS <= 0 {
		t.Fatalf("mpmdvet_baseline.json pins no tree_bench_ms — commit a measured value")
	}
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		if _, _, err := analysis.Run(io.Discard, root, suite.Analyzers()); err != nil {
			t.Fatalf("mpmdvet over ./...: %v", err)
		}
		if el := time.Since(start); el < best {
			best = el
		}
	}
	budget := time.Duration(2 * base.TreeBenchMS * float64(time.Millisecond))
	t.Logf("best of 3 tree runs: %v (budget %v, committed %gms)", best, budget, base.TreeBenchMS)
	if best > budget {
		t.Errorf("tree run took %v, over the %v budget (2x committed %gms) — "+
			"find the regression or re-pin tree_bench_ms in the same change", best, budget, base.TreeBenchMS)
	}
}

func moduleRoot(t testing.TB) string {
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod found")
		}
		dir = parent
	}
}
