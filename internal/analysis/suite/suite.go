// Package suite registers the full mpmdvet pass list in one place, shared by
// cmd/mpmdvet (both its standalone and vettool modes) and the meta-test that
// asserts the tree is clean.
package suite

import (
	"repro/internal/analysis"
	"repro/internal/analysis/passes/acctdirect"
	"repro/internal/analysis/passes/atomicmix"
	"repro/internal/analysis/passes/blockhold"
	"repro/internal/analysis/passes/bufown"
	"repro/internal/analysis/passes/framekind"
	"repro/internal/analysis/passes/hotpath"
	"repro/internal/analysis/passes/lockguard"
	"repro/internal/analysis/passes/lockorder"
	"repro/internal/analysis/passes/nilgate"
	"repro/internal/analysis/passes/shmatomic"
	"repro/internal/analysis/passes/wirewords"
)

// Analyzers is every enforced pass, in report order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		acctdirect.Analyzer,
		atomicmix.Analyzer,
		blockhold.Analyzer,
		bufown.Analyzer,
		framekind.Analyzer,
		hotpath.Analyzer,
		lockguard.Analyzer,
		lockorder.Analyzer,
		nilgate.Analyzer,
		shmatomic.Analyzer,
		wirewords.Analyzer,
	}
}
