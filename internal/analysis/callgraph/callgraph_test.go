package callgraph

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// load type-checks one import-free source string as package p and builds its
// graph. Import-free fixtures keep the tests hermetic (no export data).
func load(t *testing.T, src string) (*analysis.Program, *Graph) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := analysis.NewInfo()
	conf := types.Config{}
	tpkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	pkg := &analysis.Package{ID: "p", ImportPath: "p", Fset: fset, Files: []*ast.File{f}, Pkg: tpkg, Info: info}
	prog := analysis.NewProgram([]*analysis.Package{pkg}, true)
	return prog, Of(prog)
}

func node(t *testing.T, g *Graph, key string) *Node {
	t.Helper()
	n, ok := g.Nodes[key]
	if !ok {
		var keys []string
		for k := range g.Nodes {
			keys = append(keys, k)
		}
		t.Fatalf("no node %q; have %v", key, keys)
	}
	return n
}

func edgeKinds(n *Node, callee string) []Kind {
	var out []Kind
	for _, e := range n.Out {
		if e.Callee.Key == callee {
			out = append(out, e.Kind)
		}
	}
	return out
}

func TestStaticGoDeferKinds(t *testing.T) {
	_, g := load(t, `package p
func leaf() {}
func caller() {
	leaf()
	go leaf()
	defer leaf()
}
`)
	kinds := edgeKinds(node(t, g, "p.caller"), "p.leaf")
	if len(kinds) != 3 || kinds[0] != KindStatic || kinds[1] != KindGo || kinds[2] != KindDefer {
		t.Fatalf("caller→leaf kinds = %v, want [static go defer]", kinds)
	}
}

func TestMethodValuePassedAsFunc(t *testing.T) {
	_, g := load(t, `package p
type T struct{}
func (T) M() {}
func free() {}
func run(f func()) { f() }
func caller() {
	var t T
	run(t.M)
	run(free)
}
`)
	caller := node(t, g, "p.caller")
	if kinds := edgeKinds(caller, "p.(T).M"); len(kinds) != 1 || kinds[0] != KindMethodValue {
		t.Errorf("caller→T.M kinds = %v, want [method-value]", kinds)
	}
	if kinds := edgeKinds(caller, "p.free"); len(kinds) != 1 || kinds[0] != KindMethodValue {
		t.Errorf("caller→free kinds = %v, want [method-value]", kinds)
	}
	// run's own f() is a call through a function value: unresolved.
	run := node(t, g, "p.run")
	if len(run.Unresolved) != 1 || run.Unresolved[0].NoImpl {
		t.Errorf("run.Unresolved = %+v, want one non-NoImpl entry", run.Unresolved)
	}
}

func TestRecursionAndSCCConvergence(t *testing.T) {
	_, g := load(t, `package p
func even(n int) bool { if n == 0 { return true }; return odd(n-1) }
func odd(n int) bool { if n == 0 { return false }; return even(n-1) }
func self(n int) { if n > 0 { self(n-1) } }
func top() { even(3); self(2) }
`)
	// even/odd form one SCC; self its own; top its own, after both.
	var mutual, selfSCC, topIdx = -1, -1, -1
	for i, scc := range g.SCCs {
		keys := make([]string, len(scc))
		for j, n := range scc {
			keys[j] = n.Key
		}
		switch strings.Join(keys, ",") {
		case "p.even,p.odd":
			mutual = i
		case "p.self":
			selfSCC = i
		case "p.top":
			topIdx = i
		}
	}
	if mutual < 0 || selfSCC < 0 || topIdx < 0 {
		t.Fatalf("missing expected SCCs: mutual=%d self=%d top=%d (%d sccs)", mutual, selfSCC, topIdx, len(g.SCCs))
	}
	if topIdx < mutual || topIdx < selfSCC {
		t.Fatalf("SCC order not bottom-up: top at %d, callees at %d and %d", topIdx, mutual, selfSCC)
	}

	// A reachability summary must converge through the cycle: "calls odd,
	// directly or transitively" is true for even, odd (self via even), top.
	facts := Propagate[bool](g, reachesOdd{})
	wantTrue := map[string]bool{"p.even": true, "p.odd": true, "p.top": true}
	for key, n := range g.Nodes {
		if facts[n] != wantTrue[key] {
			t.Errorf("reachesOdd[%s] = %v, want %v", key, facts[n], wantTrue[key])
		}
	}
}

type reachesOdd struct{}

func (reachesOdd) Compute(n *Node, get func(*Node) bool) bool {
	for _, e := range n.Out {
		if e.Callee.Key == "p.odd" || get(e.Callee) {
			return true
		}
	}
	return false
}
func (reachesOdd) Equal(a, b bool) bool { return a == b }

func TestInterfaceCallBoundedByImplementers(t *testing.T) {
	_, g := load(t, `package p
type Doer interface{ Do() }
type A struct{}
func (A) Do() {}
type B struct{}
func (*B) Do() {}
func caller(d Doer) { d.Do() }
`)
	caller := node(t, g, "p.caller")
	var callees []string
	for _, e := range caller.Out {
		if e.Kind != KindInterface {
			t.Errorf("edge kind = %v, want interface", e.Kind)
		}
		callees = append(callees, e.Callee.Key)
	}
	if strings.Join(callees, ",") != "p.(A).Do,p.(*B).Do" {
		t.Fatalf("interface callees = %v, want [p.(A).Do p.(*B).Do]", callees)
	}
	if len(caller.Unresolved) != 0 {
		t.Errorf("unexpected unresolved: %+v", caller.Unresolved)
	}
}

func TestInterfaceCallZeroImplementersWarns(t *testing.T) {
	_, g := load(t, `package p
type Alien interface{ Probe() }
func caller(a Alien) { a.Probe() }
`)
	caller := node(t, g, "p.caller")
	if len(caller.Out) != 0 {
		t.Fatalf("expected no edges, got %d", len(caller.Out))
	}
	if len(caller.Unresolved) != 1 || !caller.Unresolved[0].NoImpl {
		t.Fatalf("Unresolved = %+v, want one NoImpl entry", caller.Unresolved)
	}
	if !strings.Contains(caller.Unresolved[0].Reason, "Alien.Probe") {
		t.Errorf("reason %q does not name the interface method", caller.Unresolved[0].Reason)
	}
}

func TestFuncLitCallsSiteButNoEdge(t *testing.T) {
	_, g := load(t, `package p
func leaf() {}
func caller() {
	f := func() { leaf() }
	f()
}
`)
	caller := node(t, g, "p.caller")
	if kinds := edgeKinds(caller, "p.leaf"); len(kinds) != 0 {
		t.Errorf("literal body contributed edges to caller: %v", kinds)
	}
	// But the call inside the literal is still a registered site.
	found := false
	for call, site := range g.Sites {
		if len(site.Callees) == 1 && site.Callees[0].Key == "p.leaf" {
			found = true
			_ = call
		}
	}
	if !found {
		t.Errorf("leaf() inside the literal has no registered Site")
	}
}

func TestChainString(t *testing.T) {
	_, g := load(t, `package p
type T struct{}
func (t *T) push() { t.marshal() }
func (t *T) marshal() {}
`)
	push := node(t, g, "p.(*T).push")
	marshal := node(t, g, "p.(*T).marshal")
	s := ChainString([]*Node{push, marshal}, "call into package fmt allocates", marshal.Decl.Pos())
	want := "(*T).push → (*T).marshal → call into package fmt allocates (p.go:4)"
	if s != want {
		t.Errorf("ChainString = %q, want %q", s, want)
	}
}

func TestGraphCachedOnProgram(t *testing.T) {
	prog, g := load(t, `package p
func f() {}
`)
	if Of(prog) != g {
		t.Errorf("Of did not return the cached graph")
	}
}
