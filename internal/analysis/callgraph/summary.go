package callgraph

// Summary computes one per-function fact bottom-up over the graph. Compute
// derives a node's fact from its body and its callees' facts (via get, which
// returns the zero F for out-of-set or not-yet-computed callees). Equal
// decides convergence inside a cycle.
type Summary[F any] interface {
	Compute(n *Node, get func(*Node) F) F
	Equal(a, b F) bool
}

// maxRounds bounds per-SCC iteration. Real lattices here (booleans, small
// lock sets) converge in 2-3 rounds; the cap is a guard against a
// non-monotone Compute, not a tuning knob.
const maxRounds = 32

// Propagate runs the summary over every node in bottom-up SCC order and
// returns the fact map. Singleton SCCs compute once; cyclic SCCs iterate
// members in deterministic order until no member's fact changes.
func Propagate[F any](g *Graph, s Summary[F]) map[*Node]F {
	facts := map[*Node]F{}
	get := func(n *Node) F { return facts[n] }
	for _, scc := range g.SCCs {
		if len(scc) == 1 && !selfCalls(scc[0]) {
			facts[scc[0]] = s.Compute(scc[0], get)
			continue
		}
		for round := 0; round < maxRounds; round++ {
			changed := false
			for _, n := range scc {
				next := s.Compute(n, get)
				if !s.Equal(facts[n], next) {
					facts[n] = next
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
	return facts
}

func selfCalls(n *Node) bool {
	for _, e := range n.Out {
		if e.Callee == n {
			return true
		}
	}
	return false
}
