// Package callgraph builds a call graph over the package set a driver
// invocation loaded, and runs bottom-up summary computations over it. It is
// the whole-program layer under mpmdvet's transitive passes: hotpath,
// blockhold, lockguard, and bufown consult per-function summaries (may
// allocate, may block, lock effects, buffer-ownership transfer) computed
// here instead of stopping at call boundaries.
//
// Nodes are the functions and methods declared with bodies in the analyzed
// set. Because each package is type-checked separately, the *types.Func for
// a function seen from its own sources and the one reconstructed from a
// dependency's export data are distinct objects — nodes are therefore keyed
// by FuncKey, a stable string identity (package path + receiver + name), and
// call sites resolve through it.
//
// Edges cover static calls (package functions, methods, generic
// instantiations via their origin), method values and function references
// passed as values, and the calls under `go` and `defer`. Interface calls
// are bounded CHA-style: the candidate callees are the declared methods of
// every concrete type in the analyzed set that implements the interface; a
// site with zero in-set implementers is recorded as unresolved so passes can
// warn instead of silently passing. Calls through plain function values
// remain unresolved (no dataflow tracking), which transitive passes document
// as a bound of the analysis.
//
// Function literals are not graph nodes: creating a closure is itself an
// allocation witness (hotpath flags the literal), and the lock passes
// analyze literal bodies as their own functions. Call sites inside literals
// are still registered in Sites so call-site checks (lock contracts) cover
// them, but they do not contribute edges to the enclosing declaration's
// summary.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Kind classifies one edge.
type Kind uint8

const (
	// KindStatic is a direct call of a known function or method.
	KindStatic Kind = iota
	// KindInterface is a call through an interface method, expanded to one
	// edge per in-set implementer.
	KindInterface
	// KindMethodValue is a function or method referenced as a value (passed
	// as a callback, stored); it may be invoked later, from anywhere.
	KindMethodValue
	// KindGo is the call of a go statement: it runs on a new goroutine.
	KindGo
	// KindDefer is the call of a defer statement: it runs at function exit
	// on the same goroutine.
	KindDefer
)

func (k Kind) String() string {
	switch k {
	case KindStatic:
		return "static"
	case KindInterface:
		return "interface"
	case KindMethodValue:
		return "method-value"
	case KindGo:
		return "go"
	case KindDefer:
		return "defer"
	}
	return "?"
}

// Node is one in-set function or method, with its defining declaration.
type Node struct {
	Key  string
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *analysis.Package
	// Out is the node's outgoing edges in source order. Calls inside nested
	// function literals are excluded (see the package comment).
	Out []Edge
	// Unresolved records dynamic sites in this function the graph cannot
	// bound: interface calls with zero in-set implementers and calls through
	// function values.
	Unresolved []Unresolved
}

// Name renders the node for diagnostics: "(*shmTx).send" or "dispatchLocal".
func (n *Node) Name() string {
	sig := n.Fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		ptr := ""
		if p, ok := types.Unalias(t).(*types.Pointer); ok {
			ptr, t = "*", p.Elem()
		}
		if named, ok := types.Unalias(t).(*types.Named); ok {
			return "(" + ptr + named.Obj().Name() + ")." + n.Fn.Name()
		}
	}
	return n.Fn.Name()
}

// Edge is one resolved call or reference from a node.
type Edge struct {
	Callee *Node
	// Site is the call expression, or the referencing expression for
	// KindMethodValue edges.
	Site ast.Node
	Kind Kind
}

// Unresolved is one dynamic site the graph cannot bound.
type Unresolved struct {
	Pos token.Pos
	// Reason is a human description ("interface call Transport.SendBuf has
	// no implementers in the analyzed packages", "call through a function
	// value").
	Reason string
	// NoImpl marks the interface-with-zero-implementers case specifically.
	NoImpl bool
}

// Site describes the in-set callees of one call expression, indexed so
// passes can resolve any call they walk past (including calls inside
// function literals, which have no edges).
type Site struct {
	Callees []*Node
	Kind    Kind
	// Iface labels interface calls ("Transport.SendBuf") for diagnostics.
	Iface string
	// NoImpl marks an interface call with zero in-set implementers.
	NoImpl bool
}

// Graph is the call graph over one Program.
type Graph struct {
	// Nodes maps FuncKey to node for every function declared with a body in
	// the analyzed set.
	Nodes map[string]*Node
	// Sites maps every resolvable call expression in the set to its callees.
	Sites map[*ast.CallExpr]*Site
	// SCCs is the condensation in bottom-up order: every SCC appears after
	// the SCCs it calls into, so one in-order sweep sees callee summaries
	// before caller summaries. Node order within and across SCCs is
	// deterministic (packages by ID, declarations by source order).
	SCCs [][]*Node

	ordered []*Node
}

// FuncKey is the stable cross-package identity of a function: generic
// instantiations share their origin's key (the origin declaration is the
// body the summaries analyze).
func FuncKey(fn *types.Func) string {
	fn = fn.Origin()
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil {
		if recv := sig.Recv(); recv != nil {
			t := recv.Type()
			ptr := ""
			if p, ok := types.Unalias(t).(*types.Pointer); ok {
				ptr, t = "*", p.Elem()
			}
			name := "?"
			if named, ok := types.Unalias(t).(*types.Named); ok {
				name = named.Origin().Obj().Name()
			}
			return pkg + ".(" + ptr + name + ")." + fn.Name()
		}
	}
	return pkg + "." + fn.Name()
}

type graphFactKey struct{}

// Of returns the Program's call graph, building it on first request and
// caching it for every subsequent pass.
func Of(prog *analysis.Program) *Graph {
	return prog.Fact(graphFactKey{}, func() any { return Build(prog) }).(*Graph)
}

// Build constructs the graph over every package in prog.
func Build(prog *analysis.Program) *Graph {
	g := &Graph{Nodes: map[string]*Node{}, Sites: map[*ast.CallExpr]*Site{}}
	b := &builder{g: g, ifaceCache: map[ifaceQuery][]*Node{}}

	// Nodes first, so edge resolution can look any function up regardless of
	// declaration order across packages.
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &Node{Key: FuncKey(fn), Fn: fn, Decl: fd, Pkg: pkg}
				if _, dup := g.Nodes[n.Key]; dup {
					continue // e.g. GOOS-conditioned duplicates; keep the first
				}
				g.Nodes[n.Key] = n
				g.ordered = append(g.ordered, n)
			}
		}
	}

	// CHA candidates: every non-generic concrete named type declared at
	// package scope in the set, in deterministic order.
	for _, pkg := range prog.Pkgs {
		scope := pkg.Pkg.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || named.TypeParams().Len() > 0 {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			b.concrete = append(b.concrete, named)
		}
	}

	for _, n := range g.ordered {
		b.edges(n)
	}
	g.condense()
	return g
}

type ifaceQuery struct {
	iface  *types.Interface
	method string
}

type builder struct {
	g          *Graph
	concrete   []*types.Named
	ifaceCache map[ifaceQuery][]*Node
}

// edges walks one declaration body resolving calls and function references.
func (b *builder) edges(n *Node) {
	info := n.Pkg.Info
	analysis.WalkStack(n.Decl.Body, func(x ast.Node, stack []ast.Node) bool {
		// Sites inside function literals are still registered (call-site
		// checks need them) but contribute no edges: the literal's own
		// existence is what the summaries account for.
		inLit := false
		for _, a := range stack {
			if _, ok := a.(*ast.FuncLit); ok {
				inLit = true
				break
			}
		}
		switch x := x.(type) {
		case *ast.CallExpr:
			kind := KindStatic
			if len(stack) > 0 {
				switch p := stack[len(stack)-1].(type) {
				case *ast.GoStmt:
					if p.Call == x {
						kind = KindGo
					}
				case *ast.DeferStmt:
					if p.Call == x {
						kind = KindDefer
					}
				}
			}
			b.call(n, info, x, kind, inLit)
		case *ast.Ident:
			if b.isValueRef(info, x, stack) {
				if fn, ok := info.Uses[x].(*types.Func); ok {
					b.valueRef(n, x, fn, inLit)
				}
			}
		case *ast.SelectorExpr:
			if b.isValueRef(info, x, stack) {
				b.selectorValueRef(n, info, x, inLit)
			}
		}
		return true
	})
}

// isValueRef reports whether expr x sits in value position rather than being
// the function operand of a call or a component of an enclosing selector.
func (b *builder) isValueRef(info *types.Info, x ast.Expr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return true
	}
	switch p := stack[len(stack)-1].(type) {
	case *ast.CallExpr:
		return ast.Unparen(p.Fun) != x
	case *ast.SelectorExpr:
		return false // the enclosing selector is the unit that resolves
	case *ast.ParenExpr:
		if len(stack) >= 2 {
			if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok {
				return ast.Unparen(call.Fun) != p
			}
		}
	}
	return true
}

// valueRef adds a method-value edge for a function referenced as a value.
func (b *builder) valueRef(n *Node, site ast.Node, fn *types.Func, inLit bool) {
	callee, ok := b.g.Nodes[FuncKey(fn)]
	if !ok || inLit {
		return
	}
	n.Out = append(n.Out, Edge{Callee: callee, Site: site, Kind: KindMethodValue})
}

func (b *builder) selectorValueRef(n *Node, info *types.Info, sel *ast.SelectorExpr, inLit bool) {
	if s := info.Selections[sel]; s != nil {
		if s.Kind() != types.MethodVal && s.Kind() != types.MethodExpr {
			return
		}
		fn, ok := s.Obj().(*types.Func)
		if !ok {
			return
		}
		if types.IsInterface(s.Recv()) {
			// A bound interface-method value: expand like an interface call.
			if impls := b.implementers(s.Recv(), fn.Name()); len(impls) > 0 && !inLit {
				for _, impl := range impls {
					n.Out = append(n.Out, Edge{Callee: impl, Site: sel, Kind: KindMethodValue})
				}
			}
			return
		}
		b.valueRef(n, sel, fn, inLit)
		return
	}
	// Qualified reference pkg.F used as a value.
	if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
		b.valueRef(n, sel, fn, inLit)
	}
}

// call resolves one call expression, registering its Site and (outside
// literals) its edges.
func (b *builder) call(n *Node, info *types.Info, call *ast.CallExpr, kind Kind, inLit bool) {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	fun := ast.Unparen(call.Fun)
	// Generic instantiation: unwrap the index expression to the named
	// operand; info.Uses maps it to the origin function.
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(ix.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}

	switch fun := fun.(type) {
	case *ast.Ident:
		obj := info.Uses[fun]
		switch obj := obj.(type) {
		case *types.Func:
			b.static(n, info, call, obj, kind, inLit)
		case *types.Builtin, *types.TypeName, nil:
			// Builtins and conversions: no callee.
		default:
			// A variable of function type: dynamic.
			if _, isVar := obj.(*types.Var); isVar && !inLit {
				n.Unresolved = append(n.Unresolved, Unresolved{
					Pos:    call.Pos(),
					Reason: fmt.Sprintf("call through function value %s", fun.Name),
				})
			}
		}
	case *ast.SelectorExpr:
		if s := info.Selections[fun]; s != nil {
			switch s.Kind() {
			case types.MethodVal, types.MethodExpr:
				fn, ok := s.Obj().(*types.Func)
				if !ok {
					return
				}
				if s.Kind() == types.MethodVal && types.IsInterface(s.Recv()) {
					b.ifaceCall(n, call, s.Recv(), fn, kind, inLit)
					return
				}
				b.static(n, info, call, fn, kind, inLit)
			case types.FieldVal:
				// Calling a function-typed field: dynamic.
				if !inLit {
					n.Unresolved = append(n.Unresolved, Unresolved{
						Pos:    call.Pos(),
						Reason: fmt.Sprintf("call through function-typed field %s", fun.Sel.Name),
					})
				}
			}
			return
		}
		// Package-qualified: pkg.F.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			b.static(n, info, call, fn, kind, inLit)
		}
	case *ast.FuncLit:
		// Immediately-invoked literal: the literal body is analyzed on its
		// own by the passes that care; no edge.
	}
}

func (b *builder) static(n *Node, info *types.Info, call *ast.CallExpr, fn *types.Func, kind Kind, inLit bool) {
	callee, ok := b.g.Nodes[FuncKey(fn)]
	if !ok {
		return // out-of-set: stdlib or export-data-only
	}
	b.g.Sites[call] = &Site{Callees: []*Node{callee}, Kind: kind}
	if !inLit {
		n.Out = append(n.Out, Edge{Callee: callee, Site: call, Kind: kind})
	}
}

func (b *builder) ifaceCall(n *Node, call *ast.CallExpr, recv types.Type, fn *types.Func, kind Kind, inLit bool) {
	label := fn.Name()
	if named, ok := types.Unalias(recv).(*types.Named); ok {
		label = named.Obj().Name() + "." + fn.Name()
	}
	impls := b.implementers(recv, fn.Name())
	site := &Site{Callees: impls, Kind: KindInterface, Iface: label, NoImpl: len(impls) == 0}
	b.g.Sites[call] = site
	if inLit {
		return
	}
	if len(impls) == 0 {
		n.Unresolved = append(n.Unresolved, Unresolved{
			Pos:    call.Pos(),
			Reason: fmt.Sprintf("interface call %s has no implementers in the analyzed packages", label),
			NoImpl: true,
		})
		return
	}
	for _, impl := range impls {
		n.Out = append(n.Out, Edge{Callee: impl, Site: call, Kind: KindInterface})
	}
}

// implementers returns the in-set method bodies satisfying an interface
// method: for each concrete named type in the set implementing the
// interface (directly or through its pointer type), the method the call
// would dispatch to, when that method's body is in the set.
func (b *builder) implementers(recv types.Type, method string) []*Node {
	iface, ok := types.Unalias(recv).Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	q := ifaceQuery{iface: iface, method: method}
	if cached, ok := b.ifaceCache[q]; ok {
		return cached
	}
	var out []*Node
	seen := map[*Node]bool{}
	for _, named := range b.concrete {
		if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, named.Obj().Pkg(), method)
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if node, ok := b.g.Nodes[FuncKey(fn)]; ok && !seen[node] {
			seen[node] = true
			out = append(out, node)
		}
	}
	b.ifaceCache[q] = out
	return out
}

// condense runs Tarjan's SCC algorithm over the edge relation; the emission
// order of Tarjan is bottom-up (an SCC is completed only after every SCC it
// reaches), which is exactly the summary-propagation order.
func (g *Graph) condense() {
	index := map[*Node]int{}
	low := map[*Node]int{}
	onStack := map[*Node]bool{}
	var stack []*Node
	next := 0

	var strong func(n *Node)
	strong = func(n *Node) {
		index[n] = next
		low[n] = next
		next++
		stack = append(stack, n)
		onStack[n] = true
		for _, e := range n.Out {
			m := e.Callee
			if _, seen := index[m]; !seen {
				strong(m)
				if low[m] < low[n] {
					low[n] = low[m]
				}
			} else if onStack[m] && index[m] < low[n] {
				low[n] = index[m]
			}
		}
		if low[n] == index[n] {
			var scc []*Node
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[m] = false
				scc = append(scc, m)
				if m == n {
					break
				}
			}
			// Deterministic member order within the component.
			sort.Slice(scc, func(i, j int) bool { return scc[i].Key < scc[j].Key })
			g.SCCs = append(g.SCCs, scc)
		}
	}
	for _, n := range g.ordered {
		if _, seen := index[n]; !seen {
			strong(n)
		}
	}
}

// NodeOf resolves the in-set node a *types.Func (from any package's view)
// corresponds to.
func (g *Graph) NodeOf(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.Nodes[FuncKey(fn)]
}

// ChainString renders a witness chain for diagnostics: the node names joined
// with arrows, ending in the leaf description and its position, e.g.
// "push → marshal → call into package fmt allocates (codec.go:42)".
func ChainString(chain []*Node, leafWhat string, leafPos token.Pos) string {
	var sb strings.Builder
	for _, n := range chain {
		sb.WriteString(n.Name())
		sb.WriteString(" → ")
	}
	sb.WriteString(leafWhat)
	if len(chain) > 0 && leafPos.IsValid() {
		pos := chain[len(chain)-1].Pkg.Fset.Position(leafPos)
		fmt.Fprintf(&sb, " (%s:%d)", shortFile(pos.Filename), pos.Line)
	}
	return sb.String()
}

func shortFile(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
