package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// WalkStack traverses root in depth-first order, calling fn with each node
// and the stack of its ancestors (outermost first, not including n itself).
// If fn returns false the node's children are skipped.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			// Children are skipped: push a placeholder so the matching
			// nil pop stays balanced.
			stack = append(stack, n)
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// PkgPathMatches reports whether p's import path is suffix itself or ends in
// "/"+suffix. Matching by suffix keeps the passes independent of the module
// name while still anchoring on the full package directory path.
func PkgPathMatches(p *types.Package, suffix string) bool {
	if p == nil {
		return false
	}
	path := p.Path()
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// Deref unwraps one level of pointer.
func Deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// IsNamed reports whether t (after alias resolution and one pointer deref)
// is the named type pkgSuffix.name.
func IsNamed(t types.Type, pkgSuffix, name string) bool {
	if t == nil {
		return false
	}
	t = Deref(types.Unalias(t))
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	return n.Obj().Name() == name && PkgPathMatches(n.Obj().Pkg(), pkgSuffix)
}

// ExprKey canonicalizes an expression naming a storage location — an
// identifier or a chain of field selections rooted at one — into a key that
// is stable for the current package. Two expressions with equal keys name
// the same variable/field path. ok is false for anything else (calls,
// indexing, literals).
func ExprKey(info *types.Info, e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj == nil {
			return "", false
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return "", false
		}
		return objKey(obj), true
	case *ast.SelectorExpr:
		base, ok := ExprKey(info, e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	}
	return "", false
}

// ExprText renders an ident/selector chain back to source text ("p.nd.mu"),
// for diagnostics; ok is false for other expression forms.
func ExprText(e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		base, ok := ExprText(e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	}
	return "", false
}

// VarKey returns the ExprKey root key of a variable object, so callers can
// construct keys for paths they resolve themselves (annotation paths).
func VarKey(obj types.Object) string { return objKey(obj) }

func objKey(obj types.Object) string {
	// Pointer identity of the types.Object is unique within one
	// type-checked package; the position disambiguates across packages.
	return obj.Name() + "@" + obj.Pkg().Path() + ":" + itoa(int(obj.Pos()))
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// Terminates reports whether stmt definitely transfers control out of the
// enclosing block: return, panic, os.Exit, continue/break/goto, or a block
// ending in one.
func Terminates(stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				return fun.Name == "panic"
			case *ast.SelectorExpr:
				if id, ok := fun.X.(*ast.Ident); ok {
					return (id.Name == "os" && fun.Sel.Name == "Exit") ||
						(id.Name == "runtime" && fun.Sel.Name == "Goexit")
				}
			}
		}
	case *ast.BlockStmt:
		if n := len(s.List); n > 0 {
			return Terminates(s.List[n-1])
		}
	}
	return false
}

// FuncDocHasDirective reports whether the function's doc comment block
// contains the given //-directive (e.g. "//mpmd:hotpath").
func FuncDocHasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}
