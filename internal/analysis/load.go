package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// listPkg is the slice of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	ForTest    string
	Incomplete bool
	Error      *struct{ Err string }
}

// LoadPackages loads, parses, and type-checks the packages matched by
// patterns in the module rooted at dir, resolving imports through compiler
// export data produced by `go list -export`. When tests is true each
// package's test variant (the unit `go vet` analyzes: GoFiles + TestGoFiles,
// plus the external _test package) replaces the plain one.
//
// The loader shells out to the go command exactly once; everything else is
// stdlib go/parser + go/types, so it works hermetically offline.
func LoadPackages(dir string, tests bool, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := []string{"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,ImportMap,Standard,DepOnly,ForTest,Incomplete,Error"}
	if tests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	var pkgs []*listPkg
	exports := map[string]string{} // ImportPath (incl. test-variant form) -> export data file
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		pp := p
		pkgs = append(pkgs, &pp)
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	roots := chooseRoots(pkgs, tests)
	fset := token.NewFileSet()
	var loaded []*Package
	for _, lp := range roots {
		pkg, err := checkPackage(fset, lp, exports)
		if err != nil {
			return nil, err
		}
		loaded = append(loaded, pkg)
	}
	sort.Slice(loaded, func(i, j int) bool { return loaded[i].ID < loaded[j].ID })
	return loaded, nil
}

// chooseRoots picks the analysis units from a -deps listing: every
// non-dependency, non-stdlib package, with a package's plain form dropped
// when its test variant (which contains a superset of its files) is present,
// and generated ".test" main stubs skipped.
func chooseRoots(pkgs []*listPkg, tests bool) []*listPkg {
	testVariantOf := map[string]bool{}
	if tests {
		for _, p := range pkgs {
			if p.ForTest != "" && !p.DepOnly && !strings.HasSuffix(p.ImportPath, "_test") {
				testVariantOf[p.ForTest] = true
			}
		}
	}
	var roots []*listPkg
	for _, p := range pkgs {
		switch {
		case p.DepOnly || p.Standard:
			continue
		case strings.HasSuffix(p.ImportPath, ".test"):
			continue // synthesized test main
		case p.Error != nil && len(p.GoFiles) == 0:
			continue
		case p.ForTest == "" && testVariantOf[p.ImportPath]:
			continue // the test variant supersedes it
		}
		roots = append(roots, p)
	}
	return roots
}

// checkPackage parses and type-checks one listed package against the export
// data of its dependencies.
func checkPackage(fset *token.FileSet, lp *listPkg, exports map[string]string) (*Package, error) {
	if len(lp.GoFiles) == 0 {
		return nil, fmt.Errorf("package %s has no Go files (build error?)", lp.ImportPath)
	}
	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", path, err)
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := lp.ImportMap[path]; ok {
			path = mapped
		}
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (dependency of %s)", path, lp.ImportPath)
		}
		return os.Open(e)
	}
	info := NewInfo()
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
	}
	importPath := lp.ImportPath
	if i := strings.Index(importPath, " ["); i >= 0 {
		importPath = importPath[:i] // "p [p.test]" -> "p"
	}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", lp.ImportPath, err)
	}
	return &Package{
		ID:         lp.ImportPath,
		ImportPath: importPath,
		Fset:       fset,
		Files:      files,
		Pkg:        tpkg,
		Info:       info,
	}, nil
}

// LoadFixture parses the .go files of one fixture directory as a single
// package and type-checks it against the module's dependency export data —
// fixtures may therefore import the real repro/internal/... packages. The
// exports map comes from ModuleExports.
func LoadFixture(fset *token.FileSet, dir, importPath string, exports map[string]string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse fixture %s: %v", e.Name(), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture dir %s has no .go files", dir)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q — fixtures may only import packages reachable from the module", path)
		}
		return os.Open(e)
	}
	info := NewInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck fixture %s: %v", dir, err)
	}
	return &Package{
		ID:         importPath,
		ImportPath: importPath,
		Fset:       fset,
		Files:      files,
		Pkg:        tpkg,
		Info:       info,
	}, nil
}

// ModuleExports builds the ImportPath -> export-data map for every package
// reachable from the module rooted at dir (used to type-check fixtures).
func ModuleExports(dir string) (map[string]string, error) {
	cmd := exec.Command("go", "list", "-e", "-export", "-deps", "-json=ImportPath,Export", "./...")
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}
