package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// listPkg is the slice of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	ForTest    string
	Incomplete bool
	Error      *struct{ Err string }
}

// LoadPackages loads, parses, and type-checks the packages matched by
// patterns in the module rooted at dir, resolving imports through compiler
// export data produced by `go list -export`. When tests is true each
// package's test variant (the unit `go vet` analyzes: GoFiles + TestGoFiles,
// plus the external _test package) replaces the plain one.
//
// The loader shells out to the go command exactly once; everything else is
// stdlib go/parser + go/types, so it works hermetically offline.
func LoadPackages(dir string, tests bool, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := []string{"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,ImportMap,Standard,DepOnly,ForTest,Incomplete,Error"}
	if tests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	var pkgs []*listPkg
	exports := map[string]string{} // ImportPath (incl. test-variant form) -> export data file
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		pp := p
		pkgs = append(pkgs, &pp)
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	roots := chooseRoots(pkgs, tests)
	ld := newLoader(token.NewFileSet(), exports)
	for _, lp := range roots {
		ld.byID[lp.ImportPath] = lp
		// A root also provides its plain import path, so a later root that
		// imports "p" resolves to the source-checked "p [p.test]" variant
		// (a superset of p's declarations) instead of a second, identity-
		// distinct copy from export data.
		ld.plain[plainPath(lp.ImportPath)] = lp.ImportPath
	}
	var loaded []*Package
	for _, lp := range roots {
		pkg, err := ld.check(lp.ImportPath)
		if err != nil {
			return nil, err
		}
		loaded = append(loaded, pkg)
	}
	sort.Slice(loaded, func(i, j int) bool { return loaded[i].ID < loaded[j].ID })
	return loaded, nil
}

func plainPath(id string) string {
	if i := strings.Index(id, " ["); i >= 0 {
		return id[:i] // "p [p.test]" -> "p"
	}
	return id
}

// loader type-checks the chosen roots in one shared identity space: a root's
// in-module imports resolve to the source-checked *types.Package of the root
// that provides them (checked on demand, so any listing order works), and
// everything else comes from one shared export-data importer. One identity
// per named type program-wide is what makes cross-package interface
// satisfaction (callgraph CHA bounding) and cross-package summary facts
// meaningful; per-package importers would give every root a private copy of
// every dependency.
type loader struct {
	fset    *token.FileSet
	exports map[string]string
	byID    map[string]*listPkg
	plain   map[string]string // plain import path -> providing root ID
	checked map[string]*Package
	pending map[string]bool // import-cycle guard (should never trip)
	gc      types.Importer
}

func newLoader(fset *token.FileSet, exports map[string]string) *loader {
	return &loader{
		fset:    fset,
		exports: exports,
		byID:    map[string]*listPkg{},
		plain:   map[string]string{},
		checked: map[string]*Package{},
		pending: map[string]bool{},
		gc: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			e, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(e)
		}),
	}
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func (ld *loader) check(id string) (*Package, error) {
	if pkg, ok := ld.checked[id]; ok {
		return pkg, nil
	}
	lp := ld.byID[id]
	if ld.pending[id] {
		return nil, fmt.Errorf("import cycle through %s", id)
	}
	ld.pending[id] = true
	defer delete(ld.pending, id)
	pkg, err := ld.checkPackage(lp)
	if err != nil {
		return nil, err
	}
	ld.checked[id] = pkg
	return pkg, nil
}

// resolve maps one import of lp to a types.Package: the package's ImportMap
// first (test-variant and vendor redirection), then a source-checked root,
// then export data.
func (ld *loader) resolve(lp *listPkg, path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := lp.ImportMap[path]; ok {
		path = mapped
	}
	rootID := ""
	if _, ok := ld.byID[path]; ok {
		rootID = path
	} else if id, ok := ld.plain[path]; ok {
		rootID = id
	}
	if rootID != "" && rootID != lp.ImportPath {
		pkg, err := ld.check(rootID)
		if err != nil {
			return nil, err
		}
		return pkg.Pkg, nil
	}
	return ld.gc.Import(path)
}

// checkPackage parses and type-checks one listed package.
func (ld *loader) checkPackage(lp *listPkg) (*Package, error) {
	if len(lp.GoFiles) == 0 {
		return nil, fmt.Errorf("package %s has no Go files (build error?)", lp.ImportPath)
	}
	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(ld.fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", path, err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			return ld.resolve(lp, path)
		}),
	}
	importPath := plainPath(lp.ImportPath)
	tpkg, err := conf.Check(importPath, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", lp.ImportPath, err)
	}
	return &Package{
		ID:         lp.ImportPath,
		ImportPath: importPath,
		Fset:       ld.fset,
		Files:      files,
		Pkg:        tpkg,
		Info:       info,
	}, nil
}

// chooseRoots picks the analysis units from a -deps listing: every
// non-dependency, non-stdlib package, with a package's plain form dropped
// when its test variant (which contains a superset of its files) is present,
// and generated ".test" main stubs skipped.
func chooseRoots(pkgs []*listPkg, tests bool) []*listPkg {
	testVariantOf := map[string]bool{}
	if tests {
		for _, p := range pkgs {
			// The in-package variant "p [p.test]" has plain path p; the
			// external test package is "p_test [p.test]" and supersedes
			// nothing.
			if p.ForTest != "" && !p.DepOnly && plainPath(p.ImportPath) == p.ForTest {
				testVariantOf[p.ForTest] = true
			}
		}
	}
	var roots []*listPkg
	for _, p := range pkgs {
		switch {
		case p.DepOnly || p.Standard:
			continue
		case strings.HasSuffix(p.ImportPath, ".test"):
			continue // synthesized test main
		case len(p.GoFiles) == 0:
			continue // nothing to analyze (e.g. a test-only directory's plain package)
		case p.ForTest == "" && testVariantOf[p.ImportPath]:
			continue // the test variant supersedes it
		}
		roots = append(roots, p)
	}
	return roots
}

// LoadFixture parses the .go files of one fixture directory as a single
// package and type-checks it against the module's dependency export data —
// fixtures may therefore import the real repro/internal/... packages. The
// exports map comes from ModuleExports.
func LoadFixture(fset *token.FileSet, dir, importPath string, exports map[string]string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse fixture %s: %v", e.Name(), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture dir %s has no .go files", dir)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q — fixtures may only import packages reachable from the module", path)
		}
		return os.Open(e)
	}
	info := NewInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck fixture %s: %v", dir, err)
	}
	return &Package{
		ID:         importPath,
		ImportPath: importPath,
		Fset:       fset,
		Files:      files,
		Pkg:        tpkg,
		Info:       info,
	}, nil
}

// ModuleRoot walks up from dir to the nearest directory containing go.mod,
// so path flags (e.g. cmd/mpmdvet's -baseline) resolve identically from any
// working directory inside the module.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// ModuleExports builds the ImportPath -> export-data map for every package
// reachable from the module rooted at dir (used to type-check fixtures).
func ModuleExports(dir string) (map[string]string, error) {
	cmd := exec.Command("go", "list", "-e", "-export", "-deps", "-json=ImportPath,Export", "./...")
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}
