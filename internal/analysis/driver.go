package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// Summary is the machine-readable result of one standalone mpmdvet run; CI
// uploads it next to BENCH_live.json so suppressed exceptions stay auditable.
type Summary struct {
	Packages    int            `json:"packages"`
	Diagnostics int            `json:"diagnostics"`
	ByPass      map[string]int `json:"by_pass"`
	Suppressed  []Suppression  `json:"suppressed"`

	// SuppressedByPass counts the pragma suppressions per pass — the number
	// CI ratchets against the committed baseline.
	SuppressedByPass map[string]int `json:"suppressed_by_pass"`

	// Passes breaks the run down per pass: wall time summed over all
	// packages (call-graph and summary construction is charged to the first
	// pass that requests it), surviving diagnostics, and pragma
	// suppressions.
	Passes map[string]PassStat `json:"passes"`
}

// PassStat is one pass's aggregate cost and yield across a run.
type PassStat struct {
	WallMS      float64 `json:"wall_ms"`
	Diagnostics int     `json:"diagnostics"`
	Suppressed  int     `json:"suppressed"`
}

// Line renders the one-line human summary the driver prints after a run.
func (s *Summary) Line() string {
	passes := make([]string, 0, len(s.ByPass))
	for p := range s.ByPass {
		passes = append(passes, p)
	}
	sort.Strings(passes)
	line := fmt.Sprintf("mpmdvet: %d packages, %d diagnostics, %d suppressed by pragma",
		s.Packages, s.Diagnostics, len(s.Suppressed))
	for _, p := range passes {
		line += fmt.Sprintf(" [%s:%d]", p, s.ByPass[p])
	}
	return line
}

// Run is the standalone driver: load every package matched by patterns in
// the module at dir (test files included, mirroring `go vet`), apply the
// analyzers, honor //mpmdvet:ignore pragmas, and print surviving diagnostics
// to w. It returns the summary and whether the tree is clean.
func Run(w io.Writer, dir string, analyzers []*Analyzer, patterns ...string) (*Summary, bool, error) {
	pkgs, err := LoadPackages(dir, true, patterns...)
	if err != nil {
		return nil, false, err
	}
	prog := NewProgram(pkgs, true)
	sum := &Summary{ByPass: map[string]int{}, Passes: map[string]PassStat{}}
	wallByPass := map[string]time.Duration{}
	clean := true
	for _, pkg := range pkgs {
		sum.Packages++
		diags, wall, err := RunAnalyzers(prog, pkg, analyzers)
		if err != nil {
			return nil, false, err
		}
		for name, d := range wall {
			wallByPass[name] += d
		}
		ignores, malformed := CollectIgnores(pkg.Fset, pkg.Files)
		kept, suppressed := ignores.Filter(diags)
		kept = append(kept, malformed...)
		kept = append(kept, ignores.Unused(nil)...)
		sortDiags(kept)
		for _, d := range kept {
			clean = false
			sum.Diagnostics++
			sum.ByPass[d.Pass]++
			fmt.Fprintf(w, "%s: %s: %s\n", pkg.Fset.Position(d.Pos), d.Pass, d.Message)
		}
		sum.Suppressed = append(sum.Suppressed, suppressed...)
	}
	sort.Slice(sum.Suppressed, func(i, j int) bool {
		return sum.Suppressed[i].Position < sum.Suppressed[j].Position
	})
	sum.SuppressedByPass = map[string]int{}
	for _, s := range sum.Suppressed {
		sum.SuppressedByPass[s.Pass]++
	}
	for _, a := range analyzers {
		sum.Passes[a.Name] = PassStat{
			WallMS:      float64(wallByPass[a.Name]) / float64(time.Millisecond),
			Diagnostics: sum.ByPass[a.Name],
			Suppressed:  sum.SuppressedByPass[a.Name],
		}
	}
	return sum, clean, nil
}

// Baseline pins the expected per-pass //mpmdvet:ignore counts for the tree.
// CI compares each run against the committed file: a count above its pinned
// value means a pragma slipped in without the baseline being updated in the
// same (reviewed) change; a count below it means the baseline is stale and
// should be tightened. Both directions fail, so the file stays exact.
type Baseline struct {
	SuppressedByPass map[string]int `json:"suppressed_by_pass"`

	// TreeBenchMS pins the committed full-tree run time (one Run over
	// ./... on the reference CI machine, milliseconds, set with slack).
	// The budget gate fails when a run exceeds twice this value, so a
	// pass whose summaries blow up the fixpoint is caught in the same
	// change that introduces it.
	TreeBenchMS float64 `json:"tree_bench_ms"`
}

// LoadBaseline reads a committed baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline %s: %v", path, err)
	}
	return &b, nil
}

// DiffBaseline compares the run's suppression ledger against the baseline and
// returns one message per violation: a suppression with no reason, or a
// per-pass count that drifted from its pinned value in either direction.
func (s *Summary) DiffBaseline(b *Baseline) []string {
	var out []string
	for _, sup := range s.Suppressed {
		if sup.Reason == "" {
			out = append(out, fmt.Sprintf("%s: suppression of %s has no reason (write //mpmdvet:ignore %s <why>)",
				sup.Position, sup.Pass, sup.Pass))
		}
	}
	passes := make([]string, 0, len(s.SuppressedByPass)+len(b.SuppressedByPass))
	seen := map[string]bool{}
	for p := range s.SuppressedByPass {
		passes, seen[p] = append(passes, p), true
	}
	for p := range b.SuppressedByPass {
		if !seen[p] {
			passes = append(passes, p)
		}
	}
	sort.Strings(passes)
	for _, p := range passes {
		got, want := s.SuppressedByPass[p], b.SuppressedByPass[p]
		switch {
		case got > want:
			out = append(out, fmt.Sprintf("pass %s: %d suppressions, baseline pins %d — new pragmas need a baseline update in the same change",
				p, got, want))
		case got < want:
			out = append(out, fmt.Sprintf("pass %s: %d suppressions, baseline pins %d — tighten the baseline",
				p, got, want))
		}
	}
	return out
}

// WriteSummary writes the summary as indented JSON to path.
func WriteSummary(path string, s *Summary) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
