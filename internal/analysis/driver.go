package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Summary is the machine-readable result of one standalone mpmdvet run; CI
// uploads it next to BENCH_live.json so suppressed exceptions stay auditable.
type Summary struct {
	Packages    int            `json:"packages"`
	Diagnostics int            `json:"diagnostics"`
	ByPass      map[string]int `json:"by_pass"`
	Suppressed  []Suppression  `json:"suppressed"`
}

// Line renders the one-line human summary the driver prints after a run.
func (s *Summary) Line() string {
	passes := make([]string, 0, len(s.ByPass))
	for p := range s.ByPass {
		passes = append(passes, p)
	}
	sort.Strings(passes)
	line := fmt.Sprintf("mpmdvet: %d packages, %d diagnostics, %d suppressed by pragma",
		s.Packages, s.Diagnostics, len(s.Suppressed))
	for _, p := range passes {
		line += fmt.Sprintf(" [%s:%d]", p, s.ByPass[p])
	}
	return line
}

// Run is the standalone driver: load every package matched by patterns in
// the module at dir (test files included, mirroring `go vet`), apply the
// analyzers, honor //mpmdvet:ignore pragmas, and print surviving diagnostics
// to w. It returns the summary and whether the tree is clean.
func Run(w io.Writer, dir string, analyzers []*Analyzer, patterns ...string) (*Summary, bool, error) {
	pkgs, err := LoadPackages(dir, true, patterns...)
	if err != nil {
		return nil, false, err
	}
	sum := &Summary{ByPass: map[string]int{}}
	clean := true
	for _, pkg := range pkgs {
		sum.Packages++
		diags, err := RunAnalyzers(pkg, analyzers)
		if err != nil {
			return nil, false, err
		}
		ignores, malformed := CollectIgnores(pkg.Fset, pkg.Files)
		kept, suppressed := ignores.Filter(diags)
		kept = append(kept, malformed...)
		kept = append(kept, ignores.Unused()...)
		sortDiags(kept)
		for _, d := range kept {
			clean = false
			sum.Diagnostics++
			sum.ByPass[d.Pass]++
			fmt.Fprintf(w, "%s: %s: %s\n", pkg.Fset.Position(d.Pos), d.Pass, d.Message)
		}
		sum.Suppressed = append(sum.Suppressed, suppressed...)
	}
	sort.Slice(sum.Suppressed, func(i, j int) bool {
		return sum.Suppressed[i].Position < sum.Suppressed[j].Position
	})
	return sum, clean, nil
}

// WriteSummary writes the summary as indented JSON to path.
func WriteSummary(path string, s *Summary) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
