package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// The concurrency-annotation grammar. Field annotations go on the field's
// doc or trailing line comment; function annotations in the doc block.
const (
	// GuardDirective declares that a struct field may only be accessed
	// while the named mutex is held:
	//
	//	done bool //mpmdvet:guard nd.mu
	//
	// The path is resolved relative to the access expression's base: for an
	// access p.done the required lock is p.nd.mu. A path can cross structs
	// (nd.mu above) and can name a promoted sync.Mutex explicitly (Mutex).
	GuardDirective = "//mpmdvet:guard"

	// LockedDirective on a function declares a lock the caller must hold;
	// the path's root must name the receiver or a parameter:
	//
	//	//mpmdvet:locked p.nd.mu
	//	func (b *Backend) Park(p *Proc) { ... }
	LockedDirective = "//mpmdvet:locked"

	// CondDirective on a sync.Cond field names the lock the cond is tied
	// to, resolved like a guard path:
	//
	//	cond sync.Cond //mpmdvet:cond nd.mu
	CondDirective = "//mpmdvet:cond"

	// RequiresDirective on a function declares a lock contract enforced at
	// call sites: every caller must provably hold the named lock (path
	// rooted at the receiver or a parameter) when calling.
	//
	//	//mpmdvet:requires s.mu
	//	func bump(s *S) { s.n++ }
	//
	// Inside the body it seeds the entry lockset exactly like
	// LockedDirective; the difference is enforcement direction — locked is
	// trusted caller documentation, requires is checked against every call
	// site the lock-effect summary can see (lockguard's transitive layer).
	RequiresDirective = "//mpmdvet:requires"

	// CPUDirective marks a mutex field as a node CPU: holding it models
	// occupying the processor, so blockhold forbids blocking operations
	// under it.
	CPUDirective = "//mpmd:cpu"

	// ExhaustiveDirective on a defined constant kind type requires every
	// switch over it to cover all package constants of the type and carry
	// a non-empty default clause (framekind).
	ExhaustiveDirective = "//mpmdvet:exhaustive"
)

// Annotations is every parsed concurrency directive of one package.
type Annotations struct {
	// Guards maps a struct field to its guard path (GuardDirective).
	Guards map[*types.Var]string
	// Conds maps a sync.Cond field to its lock path (CondDirective).
	Conds map[*types.Var]string
	// CPU holds the mutex fields marked as node CPUs (CPUDirective).
	CPU map[*types.Var]bool
	// Exhaustive holds the kind types marked ExhaustiveDirective.
	Exhaustive map[*types.TypeName]bool
	// Warnings are malformed or unresolvable directives; exactly one pass
	// (lockguard) reports them so they fail the build once.
	Warnings []Warning
}

// Warning is one malformed annotation.
type Warning struct {
	Pos     token.Pos
	Message string
}

func (a *Annotations) warnf(pos token.Pos, format string, args ...any) {
	a.Warnings = append(a.Warnings, Warning{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// CollectAnnotations parses every field and type annotation in the files.
func CollectAnnotations(info *types.Info, files []*ast.File) *Annotations {
	a := &Annotations{
		Guards:     map[*types.Var]string{},
		Conds:      map[*types.Var]string{},
		CPU:        map[*types.Var]bool{},
		Exhaustive: map[*types.TypeName]bool{},
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GenDecl:
				if n.Tok != token.TYPE {
					return true
				}
				for _, spec := range n.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if hasDirective(n.Doc, ExhaustiveDirective) ||
						hasDirective(ts.Doc, ExhaustiveDirective) ||
						hasDirective(ts.Comment, ExhaustiveDirective) {
						if tn, ok := info.Defs[ts.Name].(*types.TypeName); ok {
							a.Exhaustive[tn] = true
						}
					}
				}
			case *ast.StructType:
				a.structFields(info, n)
			}
			return true
		})
	}
	return a
}

func (a *Annotations) structFields(info *types.Info, st *ast.StructType) {
	for _, field := range st.Fields.List {
		guard, guardPos, hasGuard := directiveArg(field, GuardDirective)
		cond, condPos, hasCond := directiveArg(field, CondDirective)
		cpu := hasDirective(field.Doc, CPUDirective) || hasDirective(field.Comment, CPUDirective)
		if !hasGuard && !hasCond && !cpu {
			continue
		}
		if len(field.Names) == 0 {
			a.warnf(field.Pos(), "concurrency annotation on an embedded field is not supported; name the field")
			continue
		}
		if hasGuard && guard == "" {
			a.warnf(guardPos, "%s needs a lock path argument (e.g. %s mu)", GuardDirective, GuardDirective)
			hasGuard = false
		}
		if hasCond && cond == "" {
			a.warnf(condPos, "%s needs a lock path argument (e.g. %s mu)", CondDirective, CondDirective)
			hasCond = false
		}
		for _, name := range field.Names {
			v, ok := info.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			if hasGuard {
				a.Guards[v] = guard
			}
			if hasCond {
				if !isCondType(v.Type()) {
					a.warnf(condPos, "%s on field %s, which is not a sync.Cond", CondDirective, name.Name)
				} else {
					a.Conds[v] = cond
				}
			}
			if cpu {
				if !isMutexType(v.Type()) {
					a.warnf(field.Pos(), "%s on field %s, which is not a sync.Mutex or sync.RWMutex", CPUDirective, name.Name)
				} else {
					a.CPU[v] = true
				}
			}
		}
	}
}

// directiveArg finds the directive in the field's doc or line comment and
// returns its single argument.
func directiveArg(field *ast.Field, directive string) (arg string, pos token.Pos, found bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if text != directive && !strings.HasPrefix(text, directive+" ") {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, directive))
			// Only the first field is the path; trailing prose is tolerated
			// when separated by " — " or ";" is not — keep it strict: one
			// token.
			if f := strings.Fields(rest); len(f) > 0 {
				arg = f[0]
			}
			return arg, c.Pos(), true
		}
	}
	return "", token.NoPos, false
}

func hasDirective(cg *ast.CommentGroup, directive string) bool {
	return analysis.FuncDocHasDirective(cg, directive)
}

// LockedPaths returns the //mpmdvet:locked path arguments in a function's
// doc comment, in order.
func LockedPaths(doc *ast.CommentGroup) []string { return directivePaths(doc, LockedDirective) }

// RequiresPaths returns the //mpmdvet:requires path arguments in a
// function's doc comment, in order.
func RequiresPaths(doc *ast.CommentGroup) []string { return directivePaths(doc, RequiresDirective) }

func directivePaths(doc *ast.CommentGroup, directive string) []string {
	if doc == nil {
		return nil
	}
	var out []string
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text != directive && !strings.HasPrefix(text, directive+" ") {
			continue
		}
		rest := strings.TrimSpace(strings.TrimPrefix(text, directive))
		if f := strings.Fields(rest); len(f) > 0 {
			out = append(out, f[0])
		} else {
			out = append(out, "")
		}
	}
	return out
}

// EntryLocks resolves a function's //mpmdvet:locked and //mpmdvet:requires
// annotations into the lockset held at entry (requires is locked plus
// call-site enforcement; both license the body the same way). The root of
// each path must name the receiver or a parameter; the rest walks struct
// fields to a sync.Mutex or sync.RWMutex. Unresolvable paths produce a
// warning and are skipped.
func EntryLocks(info *types.Info, pkg *types.Package, fd *ast.FuncDecl, a *Annotations) LockSet {
	s := LockSet{}
	for _, directive := range []string{LockedDirective, RequiresDirective} {
		for _, path := range directivePaths(fd.Doc, directive) {
			if path == "" {
				a.warnf(fd.Pos(), "%s needs a lock path rooted at the receiver or a parameter", directive)
				continue
			}
			segs := strings.Split(path, ".")
			root := lookupParam(info, fd, segs[0])
			if root == nil {
				a.warnf(fd.Pos(), "%s %s: %q is not the receiver or a parameter of %s",
					directive, path, segs[0], fd.Name.Name)
				continue
			}
			if len(segs) == 1 {
				// The root itself is the lock: a mutex receiver or parameter.
				if !isMutexType(root.Type()) {
					a.warnf(fd.Pos(), "%s %s: path does not resolve to a sync.Mutex or sync.RWMutex", directive, path)
					continue
				}
				s[analysis.VarKey(root)] = HeldLock{Class: root, Pos: fd.Pos()}
				continue
			}
			key, class, ok := resolveFieldPath(pkg, analysis.VarKey(root), root.Type(), segs[1:])
			if !ok || class == nil || !isMutexType(class.Type()) {
				a.warnf(fd.Pos(), "%s %s: path does not resolve to a sync.Mutex or sync.RWMutex field", directive, path)
				continue
			}
			s[key] = HeldLock{Class: class, Pos: fd.Pos()}
		}
	}
	return s
}

func lookupParam(info *types.Info, fd *ast.FuncDecl, name string) *types.Var {
	lists := []*ast.FieldList{fd.Recv, fd.Type.Params}
	for _, fl := range lists {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			for _, id := range field.Names {
				if id.Name == name {
					if v, ok := info.Defs[id].(*types.Var); ok {
						return v
					}
				}
			}
		}
	}
	return nil
}

// resolveFieldPath walks segs through struct fields starting at t,
// extending key one segment at a time. The last resolved field is returned
// as the class. Embedded hops taken by promoted field lookup are spliced
// into the key so it matches lock-site keys (lockKeyOf's expansion).
func resolveFieldPath(pkg *types.Package, key string, t types.Type, segs []string) (string, *types.Var, bool) {
	var class *types.Var
	for _, seg := range segs {
		obj, index, _ := types.LookupFieldOrMethod(t, true, pkg, seg)
		v, ok := obj.(*types.Var)
		if !ok || !v.IsField() {
			return "", nil, false
		}
		// Splice the names of any embedded fields the lookup hopped through.
		walk := analysis.Deref(types.Unalias(t))
		for _, idx := range index {
			st, ok := walk.Underlying().(*types.Struct)
			if !ok {
				return "", nil, false
			}
			f := st.Field(idx)
			key += "." + f.Name()
			walk = analysis.Deref(types.Unalias(f.Type()))
			class = f
		}
		t = v.Type()
	}
	return key, class, true
}

func isMutexType(t types.Type) bool {
	return analysis.IsNamed(t, "sync", "Mutex") || analysis.IsNamed(t, "sync", "RWMutex")
}

func isCondType(t types.Type) bool {
	return analysis.IsNamed(t, "sync", "Cond")
}
