// Package cfg is the control-flow layer under mpmdvet's flow-sensitive
// passes: an intraprocedural basic-block CFG built from a function body's
// AST, a generic worklist fixpoint driver over it (fixpoint.go), and a
// must-hold lockset analysis with mutex-annotation parsing on top
// (lockset.go, annot.go).
//
// The graph flattens structured statements: a basic block holds simple
// statements and the condition/tag expressions decomposed out of if/for/
// switch, in execution order. Control constructs become edges — branch and
// join for if, a back edge for loops, one edge per clause for switch and
// select (plus a skip edge when there is no default), label-aware
// break/continue/goto, fallthrough. Statements that cannot complete
// (panic, os.Exit, runtime.Goexit) end their block with no successors, and
// a synthetic *Fall node marks falling off the closing brace, so exit-path
// checks (bufown's leak report) see exactly the real exits.
package cfg

import (
	"go/ast"
	"go/token"

	"repro/internal/analysis"
)

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Blocks in creation order, which tracks source order closely enough
	// for deterministic reporting sweeps. Blocks[0] is the entry.
	Blocks []*Block
}

// Entry is the function's entry block.
func (g *Graph) Entry() *Block { return g.Blocks[0] }

// Block is one straight-line run of flat nodes.
//
// A flat node is one of:
//   - a simple statement: AssignStmt, ExprStmt, SendStmt, IncDecStmt,
//     DeclStmt, GoStmt, DeferStmt, ReturnStmt, or the comm statement of a
//     select clause
//   - a condition/tag expression decomposed from if/for/switch
//   - a *ast.RangeStmt, standing for the evaluation of its X and the
//     per-iteration key/value bind — transfer functions must not recurse
//     into its Body (the body is its own blocks)
//   - a *ast.ForStmt with nil Cond, a marker for a condition-less loop
//     head — transfer functions must not recurse into it either
//   - the synthetic *Fall at a fall-off-the-end exit
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// Fall is the synthetic flat node placed where control falls off the
// function's closing brace.
type Fall struct{ Brace token.Pos }

func (f *Fall) Pos() token.Pos { return f.Brace }
func (f *Fall) End() token.Pos { return f.Brace }

// New builds the CFG of a function body.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}}
	b.cur = b.newBlock()
	b.stmtList(body.List)
	if b.cur != nil {
		b.emit(&Fall{Brace: body.Rbrace})
	}
	return b.g
}

// breakFrame is one enclosing breakable construct (for/switch/select).
type breakFrame struct {
	label  string
	target *Block
}

// contFrame is one enclosing loop's continue target.
type contFrame struct {
	label  string
	target *Block
}

type builder struct {
	g   *Graph
	cur *Block // nil while the current point is unreachable

	breaks []breakFrame // innermost last; loops, switches, selects
	conts  []contFrame  // innermost last; loops only

	// fallNext is the next clause block while lowering a switch clause
	// body — the fallthrough target. Saved/restored around nested clauses.
	fallNext *Block

	// gotos land on the block registered for their label; forward gotos
	// are patched once the label is seen.
	labelBlocks  map[string]*Block
	pendingGotos map[string][]*Block
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) emit(n ast.Node) {
	if b.cur != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// startBlock begins a new block with an edge from the current one.
func (b *builder) startBlock() *Block {
	blk := b.newBlock()
	edge(b.cur, blk)
	return blk
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt lowers one statement. label is the pending label when the statement
// is the target of a LabeledStmt (so break/continue lbl resolve to it).
func (b *builder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.EmptyStmt:

	case *ast.LabeledStmt:
		// A label is a join point: goto lands here, and the loop/switch
		// under it gets label-aware break/continue.
		lbl := b.startBlock()
		b.cur = lbl
		if b.labelBlocks == nil {
			b.labelBlocks = map[string]*Block{}
		}
		b.labelBlocks[s.Label.Name] = lbl
		for _, from := range b.pendingGotos[s.Label.Name] {
			edge(from, lbl)
		}
		delete(b.pendingGotos, s.Label.Name)
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.ReturnStmt:
		b.emit(s)
		b.cur = nil

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.ExprStmt:
		b.emit(s)
		if analysis.Terminates(s) { // panic / os.Exit / runtime.Goexit
			b.cur = nil
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		b.emit(s.Cond)
		condB := b.cur
		thenB := b.newBlock()
		edge(condB, thenB)
		b.cur = thenB
		b.stmtList(s.Body.List)
		thenEnd := b.cur
		var elseEnd *Block
		if s.Else != nil {
			elseB := b.newBlock()
			edge(condB, elseB)
			b.cur = elseB
			b.stmt(s.Else, "")
			elseEnd = b.cur
		}
		join := b.newBlock()
		edge(thenEnd, join)
		if s.Else != nil {
			edge(elseEnd, join)
		} else {
			edge(condB, join)
		}
		b.setCur(join)

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		head := b.startBlock()
		b.cur = head
		if s.Cond != nil {
			b.emit(s.Cond)
		} else {
			// Condition-less loop: emit the ForStmt itself as a flat marker
			// (transfers must not recurse into it) so passes can see an
			// unbounded loop with its entry state (blockhold).
			b.emit(s)
		}
		after := b.newBlock()
		if s.Cond != nil {
			edge(head, after)
		}
		body := b.newBlock()
		edge(head, body)
		cont := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			cont = post
		}
		b.breaks = append(b.breaks, breakFrame{label, after})
		b.conts = append(b.conts, contFrame{label, cont})
		b.cur = body
		b.stmtList(s.Body.List)
		if post != nil {
			edge(b.cur, post)
			b.cur = post
			b.stmt(s.Post, "")
		}
		edge(b.cur, head) // back edge
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.conts = b.conts[:len(b.conts)-1]
		b.setCur(after)

	case *ast.RangeStmt:
		head := b.startBlock()
		b.cur = head
		b.emit(s) // stands for X evaluation + key/value bind
		after := b.newBlock()
		edge(head, after) // range may iterate zero times
		body := b.newBlock()
		edge(head, body)
		b.breaks = append(b.breaks, breakFrame{label, after})
		b.conts = append(b.conts, contFrame{label, head})
		b.cur = body
		b.stmtList(s.Body.List)
		edge(b.cur, head)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.conts = b.conts[:len(b.conts)-1]
		b.setCur(after)

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		if s.Tag != nil {
			b.emit(s.Tag)
		}
		b.switchClauses(s.Body, label, true)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		b.emit(s.Assign)
		b.switchClauses(s.Body, label, false)

	case *ast.SelectStmt:
		b.selectStmt(s, label)

	default:
		// Simple statements: AssignStmt, SendStmt, IncDecStmt, DeclStmt,
		// GoStmt, DeferStmt, and anything a future Go version adds.
		b.emit(s)
	}
}

// switchClauses lowers the clause list of a (type) switch. emitGuards emits
// the per-clause case expressions (value switches evaluate them).
func (b *builder) switchClauses(body *ast.BlockStmt, label string, emitGuards bool) {
	head := b.cur
	after := b.newBlock()
	b.breaks = append(b.breaks, breakFrame{label, after})
	var clauseBlocks []*Block
	var clauses []*ast.CaseClause
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		clauses = append(clauses, cc)
		blk := b.newBlock()
		edge(head, blk)
		clauseBlocks = append(clauseBlocks, blk)
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		edge(head, after)
	}
	for i, cc := range clauses {
		b.cur = clauseBlocks[i]
		if emitGuards {
			for _, x := range cc.List {
				b.emit(x)
			}
		}
		var next *Block
		if i+1 < len(clauseBlocks) {
			next = clauseBlocks[i+1]
		}
		saved := b.fallNext
		b.fallNext = next
		b.stmtList(cc.Body)
		b.fallNext = saved
		edge(b.cur, after)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.setCur(after)
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.cur
	after := b.newBlock()
	b.breaks = append(b.breaks, breakFrame{label, after})
	// A select blocks until some case is ready; only a default clause lets
	// control pass without communicating, and a case-less select{} blocks
	// forever — no edge out at all.
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		edge(head, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.emit(cc.Comm)
		}
		b.stmtList(cc.Body)
		edge(b.cur, after)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.setCur(after)
}

func (b *builder) branch(s *ast.BranchStmt) {
	name := ""
	if s.Label != nil {
		name = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		edge(b.cur, b.frameTarget(b.breaks, name))
	case token.CONTINUE:
		edge(b.cur, b.contTarget(name))
	case token.GOTO:
		if t, ok := b.labelBlocks[name]; ok {
			edge(b.cur, t)
		} else if b.cur != nil {
			if b.pendingGotos == nil {
				b.pendingGotos = map[string][]*Block{}
			}
			b.pendingGotos[name] = append(b.pendingGotos[name], b.cur)
		}
	case token.FALLTHROUGH:
		edge(b.cur, b.fallNext)
	}
	b.cur = nil
}

func (b *builder) frameTarget(frames []breakFrame, label string) *Block {
	if label == "" {
		if n := len(frames); n > 0 {
			return frames[n-1].target
		}
		return nil
	}
	for i := len(frames) - 1; i >= 0; i-- {
		if frames[i].label == label {
			return frames[i].target
		}
	}
	return nil
}

func (b *builder) contTarget(label string) *Block {
	if label == "" {
		if n := len(b.conts); n > 0 {
			return b.conts[n-1].target
		}
		return nil
	}
	for i := len(b.conts) - 1; i >= 0; i-- {
		if b.conts[i].label == label {
			return b.conts[i].target
		}
	}
	return nil
}

// setCur makes join the current block, or marks the point unreachable when
// nothing flows into it (every path out of the construct returned or
// jumped away).
func (b *builder) setCur(join *Block) {
	for _, other := range b.g.Blocks {
		for _, s := range other.Succs {
			if s == join {
				b.cur = join
				return
			}
		}
	}
	b.cur = nil
}
