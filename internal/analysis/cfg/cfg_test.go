package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseFunc parses one function body out of a source snippet.
func parseFunc(t *testing.T, body string) (*token.FileSet, *ast.BlockStmt) {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, f.Decls[0].(*ast.FuncDecl).Body
}

// visitOrder runs a no-state flow and records each visited flat node as a
// one-line source rendering, in report-sweep order.
func visitOrder(t *testing.T, fset *token.FileSet, body *ast.BlockStmt) []string {
	t.Helper()
	var got []string
	f := &Flow[struct{}]{
		Graph: New(body),
		Entry: func() struct{} { return struct{}{} },
		Clone: func(s struct{}) struct{} { return s },
		Join:  func(dst, src struct{}) bool { return false },
		Transfer: func(_ struct{}, n ast.Node, report bool) {
			if !report {
				return
			}
			switch n := n.(type) {
			case *Fall:
				got = append(got, "<fall>")
			case *ast.Ident:
				got = append(got, n.Name)
			default:
				got = append(got, nodeText(fset, n))
			}
		},
	}
	f.Analyze()
	return got
}

func nodeText(fset *token.FileSet, n ast.Node) string {
	switch n := n.(type) {
	case *ast.AssignStmt:
		if id, ok := n.Lhs[0].(*ast.Ident); ok {
			return id.Name + "="
		}
	case *ast.ExprStmt:
		if call, ok := n.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				return id.Name + "()"
			}
		}
	case *ast.ReturnStmt:
		return "return"
	case *ast.BinaryExpr:
		return "<cond>"
	case *ast.ForStmt:
		return "<for>"
	case *ast.RangeStmt:
		return "<range>"
	}
	return "<node>"
}

func TestIfElseJoin(t *testing.T) {
	fset, body := parseFunc(t, `
		if a > 0 {
			x := 1
			_ = x
		} else {
			y := 2
			_ = y
		}
		z := 3
		_ = z`)
	got := strings.Join(visitOrder(t, fset, body), " ")
	want := "<cond> x= _= y= _= z= _= <fall>"
	if got != want {
		t.Fatalf("visit order:\n got %q\nwant %q", got, want)
	}
}

func TestReturnSuppressesFall(t *testing.T) {
	fset, body := parseFunc(t, `return`)
	got := visitOrder(t, fset, body)
	for _, g := range got {
		if g == "<fall>" {
			t.Fatalf("function ending in return grew a fall-off node: %v", got)
		}
	}
}

func TestUnreachableAfterReturnBothBranches(t *testing.T) {
	fset, body := parseFunc(t, `
		if a > 0 {
			return
		} else {
			return
		}
		dead()`)
	got := strings.Join(visitOrder(t, fset, body), " ")
	if strings.Contains(got, "dead()") || strings.Contains(got, "<fall>") {
		t.Fatalf("code after exhaustive returns should be unreachable, visited: %q", got)
	}
}

func TestLoopBackEdge(t *testing.T) {
	_, body := parseFunc(t, `
		for i := 0; i < 10; i++ {
			work()
		}
		done()`)
	g := New(body)
	// Some block must have a successor with a smaller index: the back edge.
	hasBack := false
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			if s.Index < blk.Index {
				hasBack = true
			}
		}
	}
	if !hasBack {
		t.Fatal("for loop produced no back edge")
	}
}

func TestCondlessLoopEmitsMarkerAndTrapsFlow(t *testing.T) {
	fset, body := parseFunc(t, `
		for {
			spin()
		}`)
	got := strings.Join(visitOrder(t, fset, body), " ")
	if !strings.Contains(got, "<for>") {
		t.Fatalf("condition-less loop should appear as a flat marker, visited: %q", got)
	}
	if strings.Contains(got, "<fall>") {
		t.Fatalf("for{} without break cannot fall off the end, visited: %q", got)
	}
}

func TestBreakEscapesCondlessLoop(t *testing.T) {
	fset, body := parseFunc(t, `
		for {
			if a > 0 {
				break
			}
		}
		after()`)
	got := strings.Join(visitOrder(t, fset, body), " ")
	if !strings.Contains(got, "after()") || !strings.Contains(got, "<fall>") {
		t.Fatalf("break should reach the code after the loop, visited: %q", got)
	}
}

func TestLabeledBreak(t *testing.T) {
	fset, body := parseFunc(t, `
	outer:
		for {
			for {
				break outer
			}
		}
		after()`)
	got := strings.Join(visitOrder(t, fset, body), " ")
	if !strings.Contains(got, "after()") {
		t.Fatalf("labeled break should reach the code after the outer loop, visited: %q", got)
	}
}

func TestGotoForwardEdge(t *testing.T) {
	fset, body := parseFunc(t, `
		goto skip
	skip:
		after()`)
	got := strings.Join(visitOrder(t, fset, body), " ")
	if !strings.Contains(got, "after()") {
		t.Fatalf("forward goto lost its target, visited: %q", got)
	}
}

func TestSwitchWithoutDefaultFallsPast(t *testing.T) {
	fset, body := parseFunc(t, `
		switch a {
		case 1:
			one()
		}
		after()`)
	got := strings.Join(visitOrder(t, fset, body), " ")
	if !strings.Contains(got, "after()") {
		t.Fatalf("switch without default must have a skip edge, visited: %q", got)
	}
}

func TestSelectWithoutDefaultBlocks(t *testing.T) {
	fset, body := parseFunc(t, `
		select {
		case <-ch:
			return
		}
		after()`)
	got := strings.Join(visitOrder(t, fset, body), " ")
	if strings.Contains(got, "after()") {
		t.Fatalf("select without default cannot be skipped, visited: %q", got)
	}
}

func TestPanicEndsBlock(t *testing.T) {
	fset, body := parseFunc(t, `
		panic("boom")
		dead()`)
	got := strings.Join(visitOrder(t, fset, body), " ")
	if strings.Contains(got, "dead()") || strings.Contains(got, "<fall>") {
		t.Fatalf("code after panic should be unreachable, visited: %q", got)
	}
}

// TestMustAnalysisJoin drives the fixpoint with a must-assigned-variables
// analysis: the join is set intersection, so a variable assigned on only
// one branch is not "must" after the join, and a loop converges.
func TestMustAnalysisJoin(t *testing.T) {
	_, body := parseFunc(t, `
		a := 1
		if c > 0 {
			b := 2
			_ = b
		} else {
			a = 3
		}
		for i := 0; i < 3; i++ {
			d := 4
			_ = d
		}
		sink()`)

	type set = map[string]bool
	assigned := func(n ast.Node) []string {
		var out []string
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, l := range as.Lhs {
				if id, ok := l.(*ast.Ident); ok && id.Name != "_" {
					out = append(out, id.Name)
				}
			}
		}
		return out
	}
	var atSink set
	f := &Flow[set]{
		Graph: New(body),
		Entry: func() set { return set{} },
		Clone: func(s set) set {
			c := set{}
			for k := range s {
				c[k] = true
			}
			return c
		},
		Join: func(dst, src set) bool {
			changed := false
			for k := range dst {
				if !src[k] {
					delete(dst, k)
					changed = true
				}
			}
			return changed
		},
		Transfer: func(s set, n ast.Node, report bool) {
			for _, name := range assigned(n) {
				s[name] = true
			}
			if report {
				if es, ok := n.(*ast.ExprStmt); ok {
					if call, ok := es.X.(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "sink" {
							atSink = s
						}
					}
				}
			}
		},
	}
	f.Analyze()
	if atSink == nil {
		t.Fatal("sink() never visited")
	}
	if !atSink["a"] {
		t.Error("a is assigned on every path and must survive the join")
	}
	if atSink["b"] {
		t.Error("b is assigned on one branch only and must not survive the join")
	}
	if atSink["d"] {
		t.Error("d is assigned only inside the loop body and must not survive the zero-iteration path")
	}
	if !atSink["i"] {
		t.Error("i is assigned by the loop init on every path")
	}
}
