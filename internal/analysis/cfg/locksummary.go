package cfg

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

// The lock-effect summary: a bottom-up fixpoint over the call graph that
// gives every function three caller-resolvable locksets —
//
//   - Requires: declared //mpmdvet:requires contracts, enforced by lockguard
//     at every call site the graph can see;
//   - Acquires: locks held at every exit but not at entry (the function nets
//     the caller these — a helper that wraps Lock);
//   - Releases: declared-held entry locks no longer held at exit (a helper
//     that wraps Unlock).
//
// Effects are expressed relative to the callee's receiver or parameters so
// a caller can re-resolve them against its own argument expressions; locks
// rooted anywhere else (globals, locals that escape) are not representable
// and drop out of the summary — a documented under-approximation, not an
// error.

// Req is one lock in a function's summary, in caller-resolvable form: a
// root (the receiver, or a parameter by index) plus the field path from the
// root to the mutex. Segs is nil when the root itself is the mutex (a
// *sync.Mutex parameter).
type Req struct {
	RecvRoot bool
	Param    int // parameter index when !RecvRoot
	Segs     []string
	RLock    bool
	// Path is the callee-side display path ("s.mu"); Pos the declaring
	// directive (Requires) or acquisition site (Acquires/Releases).
	Path string
	Pos  token.Pos
}

func reqEqual(a, b Req) bool {
	if a.RecvRoot != b.RecvRoot || a.Param != b.Param || a.RLock != b.RLock || len(a.Segs) != len(b.Segs) {
		return false
	}
	for i := range a.Segs {
		if a.Segs[i] != b.Segs[i] {
			return false
		}
	}
	return true
}

func reqsEqual(a, b []Req) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reqEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

func sortReqs(rs []Req) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].RecvRoot != rs[j].RecvRoot {
			return rs[i].RecvRoot
		}
		if rs[i].Param != rs[j].Param {
			return rs[i].Param < rs[j].Param
		}
		return strings.Join(rs[i].Segs, ".") < strings.Join(rs[j].Segs, ".")
	})
}

// LockFact is one function's lock-effect summary.
type LockFact struct {
	Requires []Req
	Acquires []Req
	Releases []Req
}

type lockFactsKey struct{}

// LockFacts computes the lock-effect summary of every function in the
// program's call graph, cached on the Program.
func LockFacts(prog *analysis.Program) map[*callgraph.Node]LockFact {
	return prog.Fact(lockFactsKey{}, func() any {
		g := callgraph.Of(prog)
		ls := &lockSummary{graph: g, annots: map[*analysis.Package]*Annotations{}}
		return callgraph.Propagate[LockFact](g, ls)
	}).(map[*callgraph.Node]LockFact)
}

type lockSummary struct {
	graph *callgraph.Graph
	// annots caches per-package annotations. These copies exist only to
	// resolve entry locksets; their Warnings are discarded (lockguard
	// reports warnings from its own per-package collection exactly once).
	annots map[*analysis.Package]*Annotations
}

func (ls *lockSummary) annotsOf(pkg *analysis.Package) *Annotations {
	a, ok := ls.annots[pkg]
	if !ok {
		a = CollectAnnotations(pkg.Info, pkg.Files)
		ls.annots[pkg] = a
	}
	return a
}

func (ls *lockSummary) Equal(a, b LockFact) bool {
	return reqsEqual(a.Requires, b.Requires) &&
		reqsEqual(a.Acquires, b.Acquires) &&
		reqsEqual(a.Releases, b.Releases)
}

func (ls *lockSummary) Compute(n *callgraph.Node, get func(*callgraph.Node) LockFact) LockFact {
	var fact LockFact
	fd := n.Decl
	if fd == nil || fd.Body == nil {
		return fact
	}
	pkg := n.Pkg
	a := ls.annotsOf(pkg)
	fact.Requires = declaredReqs(pkg, fd)
	entry := EntryLocks(pkg.Info, pkg.Pkg, fd, a)
	fx := func(s LockSet, call *ast.CallExpr) {
		ApplyLockEffects(pkg.Info, pkg.Pkg, ls.graph, get, s, call)
	}
	exit, ok := exitLocks(pkg.Info, fd.Body, entry, fx)
	if ok {
		for key, h := range exit {
			if _, was := entry[key]; was {
				continue
			}
			if r, ok := keyToReq(fd, pkg.Info, key, h); ok {
				fact.Acquires = append(fact.Acquires, r)
			}
		}
		for key, h := range entry {
			if _, still := exit[key]; !still {
				if r, ok := keyToReq(fd, pkg.Info, key, h); ok {
					fact.Releases = append(fact.Releases, r)
				}
			}
		}
	}
	sortReqs(fact.Requires)
	sortReqs(fact.Acquires)
	sortReqs(fact.Releases)
	return fact
}

// exitLocks joins the locksets at every reachable exit — return statements
// and the fall-off-the-brace node. ok is false when no exit is reachable
// (the function never returns; callers observe no effect).
func exitLocks(info *types.Info, body *ast.BlockStmt, entry LockSet, fx Effects) (LockSet, bool) {
	var exit LockSet
	found := false
	WalkLockedFx(info, body, entry, fx, func(s LockSet, n ast.Node) {
		switch n.(type) {
		case *Fall, *ast.ReturnStmt:
			if !found {
				exit = cloneLocks(s)
				found = true
			} else {
				joinLocks(exit, s)
			}
		}
	})
	return exit, found
}

// declaredReqs parses a function's //mpmdvet:requires paths into Reqs.
// Unresolvable paths are skipped here; EntryLocks warns about them through
// lockguard's annotation collection.
func declaredReqs(pkg *analysis.Package, fd *ast.FuncDecl) []Req {
	var out []Req
	for _, c := range requireComments(fd.Doc) {
		path := c.path
		if path == "" {
			continue
		}
		segs := strings.Split(path, ".")
		recvRoot, idx, root, ok := paramRoot(pkg.Info, fd, segs[0])
		if !ok {
			continue
		}
		r := Req{RecvRoot: recvRoot, Param: idx, Path: path, Pos: c.pos}
		if len(segs) == 1 {
			if !isMutexType(root.Type()) {
				continue
			}
		} else {
			r.Segs = segs[1:]
			key, class, ok := resolveFieldPath(pkg.Pkg, analysis.VarKey(root), root.Type(), r.Segs)
			if !ok || class == nil || !isMutexType(class.Type()) {
				continue
			}
			// Re-derive the segments from the resolved key so embedded-field
			// hops spliced by the lookup survive the round trip to callers.
			r.Segs = strings.Split(strings.TrimPrefix(key, analysis.VarKey(root)+"."), ".")
		}
		out = append(out, r)
	}
	return out
}

type requireComment struct {
	path string
	pos  token.Pos
}

func requireComments(doc *ast.CommentGroup) []requireComment {
	if doc == nil {
		return nil
	}
	var out []requireComment
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text != RequiresDirective && !strings.HasPrefix(text, RequiresDirective+" ") {
			continue
		}
		rest := strings.TrimSpace(strings.TrimPrefix(text, RequiresDirective))
		rc := requireComment{pos: c.Pos()}
		if f := strings.Fields(rest); len(f) > 0 {
			rc.path = f[0]
		}
		out = append(out, rc)
	}
	return out
}

// paramRoot finds the receiver or parameter named name and its argument
// index (running over all parameter names, matching call-site positions).
func paramRoot(info *types.Info, fd *ast.FuncDecl, name string) (recvRoot bool, idx int, root *types.Var, ok bool) {
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			for _, id := range f.Names {
				if id.Name == name {
					v, _ := info.Defs[id].(*types.Var)
					return true, 0, v, v != nil
				}
			}
		}
	}
	i := 0
	for _, f := range fd.Type.Params.List {
		if len(f.Names) == 0 {
			i++
			continue
		}
		for _, id := range f.Names {
			if id.Name == name {
				v, _ := info.Defs[id].(*types.Var)
				return false, i, v, v != nil
			}
			i++
		}
	}
	return false, 0, nil, false
}

// keyToReq converts a lockset key rooted at the function's receiver or a
// parameter back into caller-resolvable form. Keys rooted anywhere else
// (globals, locals) are not expressible and report ok=false.
func keyToReq(fd *ast.FuncDecl, info *types.Info, key string, h HeldLock) (Req, bool) {
	try := func(recvRoot bool, idx int, v *types.Var, rootName string) (Req, bool) {
		vk := analysis.VarKey(v)
		if key == vk {
			return Req{RecvRoot: recvRoot, Param: idx, RLock: h.RLock, Path: rootName, Pos: h.Pos}, true
		}
		if strings.HasPrefix(key, vk+".") {
			segs := strings.Split(key[len(vk)+1:], ".")
			return Req{RecvRoot: recvRoot, Param: idx, Segs: segs, RLock: h.RLock,
				Path: rootName + "." + strings.Join(segs, "."), Pos: h.Pos}, true
		}
		return Req{}, false
	}
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			for _, id := range f.Names {
				if v, isVar := info.Defs[id].(*types.Var); isVar {
					if r, ok := try(true, 0, v, id.Name); ok {
						return r, true
					}
				}
			}
		}
	}
	i := 0
	for _, f := range fd.Type.Params.List {
		if len(f.Names) == 0 {
			i++
			continue
		}
		for _, id := range f.Names {
			if v, isVar := info.Defs[id].(*types.Var); isVar {
				if r, ok := try(false, i, v, id.Name); ok {
					return r, true
				}
			}
			i++
		}
	}
	return Req{}, false
}

// ResolveReq maps one summary Req onto a call site: the lockset key (and
// the mutex's class declaration) the caller-side lock would have. ok is
// false when the argument expression is not keyable (a call result, an
// index expression) or the receiver path is a promoted-method hop.
func ResolveReq(info *types.Info, pkg *types.Package, call *ast.CallExpr, r Req) (key string, class *types.Var, ok bool) {
	var root ast.Expr
	if r.RecvRoot {
		sel, isSel := call.Fun.(*ast.SelectorExpr)
		if !isSel {
			return "", nil, false
		}
		if s := info.Selections[sel]; s != nil && len(s.Index()) > 1 {
			// Promoted method: the declared receiver is an embedded field of
			// sel.X, so the root path differs. Splicing it is possible but
			// not needed yet; bail conservatively.
			return "", nil, false
		}
		root = sel.X
	} else {
		if r.Param >= len(call.Args) {
			return "", nil, false
		}
		root = call.Args[r.Param]
	}
	// Passing a lock is passing its address: &s.mu keys as s.mu, matching
	// the entry the caller's s.mu.Lock() put in the set.
	if u, isU := ast.Unparen(root).(*ast.UnaryExpr); isU && u.Op == token.AND {
		root = u.X
	}
	base, ok := analysis.ExprKey(info, root)
	if !ok {
		return "", nil, false
	}
	if len(r.Segs) == 0 {
		return base, baseVar(info, root), true
	}
	key, class, ok = resolveFieldPath(pkg, base, typeOf(info, root), r.Segs)
	if !ok || class == nil {
		return "", nil, false
	}
	return key, class, true
}

// CallerPath renders a Req against a call site for diagnostics ("s.mu" in
// the caller's terms), falling back to the callee-side path.
func CallerPath(call *ast.CallExpr, r Req) string {
	var root ast.Expr
	if r.RecvRoot {
		if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel {
			root = sel.X
		}
	} else if r.Param < len(call.Args) {
		root = call.Args[r.Param]
	}
	if root == nil {
		return r.Path
	}
	if u, isU := ast.Unparen(root).(*ast.UnaryExpr); isU && u.Op == token.AND {
		root = u.X
	}
	text := types.ExprString(ast.Unparen(root))
	if len(r.Segs) > 0 {
		text += "." + strings.Join(r.Segs, ".")
	}
	return text
}

// ApplyLockEffects applies a call's summarized net lock effect to the
// caller's lockset. Only single static in-set callees are applied:
// interface calls, function values, and out-of-set callees have no visible
// effect (documented under-approximation).
func ApplyLockEffects(info *types.Info, tpkg *types.Package, g *callgraph.Graph, get func(*callgraph.Node) LockFact, s LockSet, call *ast.CallExpr) {
	site := g.Sites[call]
	if site == nil || site.Kind != callgraph.KindStatic || len(site.Callees) != 1 {
		return
	}
	f := get(site.Callees[0])
	for _, r := range f.Releases {
		if key, _, ok := ResolveReq(info, tpkg, call, r); ok {
			delete(s, key)
		}
	}
	for _, r := range f.Acquires {
		if key, class, ok := ResolveReq(info, tpkg, call, r); ok {
			s[key] = HeldLock{Class: class, RLock: r.RLock, Pos: call.Pos()}
		}
	}
}
