package cfg

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// LockOp classifies a call as a mutex or cond operation.
type LockOp int

const (
	OpNone LockOp = iota
	OpLock
	OpRLock
	OpUnlock
	OpRUnlock
	// OpWait is sync.Cond.Wait: it releases and reacquires the cond's lock
	// around the block, so the lockset treats it as lock-preserving; the
	// blocking itself is blockhold's concern.
	OpWait
)

// HeldLock is one lockset entry.
type HeldLock struct {
	// Class identifies the mutex declaration — the struct field or variable
	// — independent of which instance is locked. Lock-order edges are
	// between classes.
	Class *types.Var
	// RLock marks a read lock (RWMutex.RLock): held for reads only.
	RLock bool
	// Pos is the acquisition site (entry annotations point at the func).
	Pos token.Pos
}

// LockSet is the must-hold set: a lock is in the set only when every path
// to this point acquired it and has not released it. Keys are canonical
// lock expressions (analysis.ExprKey of the mutex path, with embedded-field
// hops from method promotion spliced in), so `b.q.Lock()` and a guard
// declared against the promoted Mutex agree on `…b.q.Mutex`.
type LockSet map[string]HeldLock

func cloneLocks(s LockSet) LockSet {
	c := make(LockSet, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// joinLocks intersects src into dst (must-hold join) and reports change.
// A lock read-held on one path and write-held on the other joins to the
// weaker read claim.
func joinLocks(dst, src LockSet) bool {
	changed := false
	for k, d := range dst {
		s, ok := src[k]
		if !ok {
			delete(dst, k)
			changed = true
			continue
		}
		if s.RLock && !d.RLock {
			d.RLock = true
			dst[k] = d
			changed = true
		}
	}
	return changed
}

// MutexOp classifies a call expression. ok is false when the call is not a
// recognizable mutex/cond operation on a keyable lock expression. TryLock
// is deliberately not recognized: its acquisition is conditional, which a
// must-hold set cannot represent.
func MutexOp(info *types.Info, call *ast.CallExpr) (op LockOp, key string, class *types.Var, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return OpNone, "", nil, false
	}
	selection := info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return OpNone, "", nil, false
	}
	fn, isFn := selection.Obj().(*types.Func)
	if !isFn {
		return OpNone, "", nil, false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return OpNone, "", nil, false
	}
	rt := analysis.Deref(types.Unalias(recv.Type()))
	switch {
	case analysis.IsNamed(rt, "sync", "Mutex"):
		switch fn.Name() {
		case "Lock":
			op = OpLock
		case "Unlock":
			op = OpUnlock
		default:
			return OpNone, "", nil, false
		}
	case analysis.IsNamed(rt, "sync", "RWMutex"):
		switch fn.Name() {
		case "Lock":
			op = OpLock
		case "Unlock":
			op = OpUnlock
		case "RLock":
			op = OpRLock
		case "RUnlock":
			op = OpRUnlock
		default:
			return OpNone, "", nil, false
		}
	case analysis.IsNamed(rt, "sync", "Cond"):
		if fn.Name() != "Wait" {
			return OpNone, "", nil, false
		}
		op = OpWait
	default:
		return OpNone, "", nil, false
	}

	key, ok = analysis.ExprKey(info, sel.X)
	if !ok {
		return OpNone, "", nil, false
	}
	// The class is the mutex's declaration: the final field (or variable)
	// the receiver path names. Method promotion through embedded fields
	// shows up as a multi-entry selection index; splice the embedded hops
	// into the key so promoted `b.q.Lock()` and explicit `b.q.Mutex` agree.
	index := selection.Index()
	if len(index) > 1 {
		t := typeOf(info, sel.X)
		for _, idx := range index[:len(index)-1] {
			st, isStruct := analysis.Deref(types.Unalias(t)).Underlying().(*types.Struct)
			if !isStruct {
				return OpNone, "", nil, false
			}
			f := st.Field(idx)
			key += "." + f.Name()
			class = f
			t = f.Type()
		}
	} else {
		class = baseVar(info, sel.X)
	}
	if class == nil {
		return OpNone, "", nil, false
	}
	return op, key, class, true
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj := info.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// baseVar resolves the variable or field an ident/selector chain ends at.
func baseVar(info *types.Info, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		v, _ := obj.(*types.Var)
		return v
	case *ast.SelectorExpr:
		if sel := info.Selections[e]; sel != nil {
			v, _ := sel.Obj().(*types.Var)
			return v
		}
		v, _ := info.Uses[e.Sel].(*types.Var)
		return v
	}
	return nil
}

// LockTransfer applies one flat node's effect on the lockset. Only
// statement-level Lock/Unlock calls change it; a deferred Unlock keeps the
// lock held through the rest of the body (it runs at exit), and cond.Wait
// reacquires before returning.
func LockTransfer(info *types.Info, s LockSet, n ast.Node) {
	es, isExpr := n.(*ast.ExprStmt)
	if !isExpr {
		return
	}
	call, isCall := es.X.(*ast.CallExpr)
	if !isCall {
		return
	}
	op, key, class, ok := MutexOp(info, call)
	if !ok {
		return
	}
	switch op {
	case OpLock:
		s[key] = HeldLock{Class: class, Pos: call.Pos()}
	case OpRLock:
		s[key] = HeldLock{Class: class, RLock: true, Pos: call.Pos()}
	case OpUnlock, OpRUnlock:
		delete(s, key)
	}
}

// WalkLocked runs the must-hold lockset analysis over one function body and
// calls visit once per reachable flat node, in source order, with the
// node's pre-state. The state is reused across nodes: visitors must not
// retain it. visit must not recurse into nested *ast.FuncLit bodies — each
// literal is its own function and gets its own WalkLocked.
func WalkLocked(info *types.Info, body *ast.BlockStmt, entry LockSet, visit func(s LockSet, n ast.Node)) {
	WalkLockedFx(info, body, entry, nil, visit)
}

// Effects applies a summarized callee lock effect to the lockset at a
// statement-level call that is not itself a mutex operation. The lock-effect
// summary (LockFacts) provides one, so helper functions that net-acquire or
// net-release a lock are understood by must-hold walks.
type Effects func(s LockSet, call *ast.CallExpr)

// WalkLockedFx is WalkLocked with an effects hook: after a flat node's own
// transfer, fx runs for every statement-level non-mutex call, letting callee
// lock effects flow into the set. fx and visit may each be nil.
func WalkLockedFx(info *types.Info, body *ast.BlockStmt, entry LockSet, fx Effects, visit func(s LockSet, n ast.Node)) {
	f := &Flow[LockSet]{
		Graph: New(body),
		Entry: func() LockSet { return cloneLocks(entry) },
		Clone: cloneLocks,
		Join:  joinLocks,
		Transfer: func(s LockSet, n ast.Node, report bool) {
			if report && visit != nil {
				visit(s, n)
			}
			if fx != nil {
				if es, isExpr := n.(*ast.ExprStmt); isExpr {
					if call, isCall := es.X.(*ast.CallExpr); isCall {
						if _, _, _, isMutex := MutexOp(info, call); !isMutex {
							fx(s, call)
							return
						}
					}
				}
			}
			LockTransfer(info, s, n)
		},
	}
	f.Analyze()
}

// HoldsClass returns the first held lock whose class matches the predicate.
func (s LockSet) HoldsClass(pred func(*types.Var) bool) (string, HeldLock, bool) {
	// Deterministic scan: pick the smallest matching key.
	bestKey := ""
	var best HeldLock
	for k, h := range s {
		if pred(h.Class) && (bestKey == "" || k < bestKey) {
			bestKey, best = k, h
		}
	}
	return bestKey, best, bestKey != ""
}
