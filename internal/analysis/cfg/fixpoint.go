package cfg

import "go/ast"

// Flow is a forward dataflow problem over a Graph, solved to fixpoint by a
// worklist with accumulate-join: a block's in-state only ever moves up the
// join closure, so any finite state domain with an absorbing join
// terminates. The same Transfer runs in two regimes — report=false while
// iterating (a block may be visited many times) and report=true during the
// single deterministic sweep Report makes afterwards, so diagnostics fire
// exactly once, against the converged entry states.
type Flow[S any] struct {
	Graph *Graph
	// Entry produces the state at function entry.
	Entry func() S
	// Clone deep-copies a state.
	Clone func(S) S
	// Join folds src into dst and reports whether dst changed. dst is
	// always a state previously produced by Entry/Clone/Transfer.
	Join func(dst, src S) bool
	// Transfer interprets one flat node, mutating s. Diagnostics must fire
	// only when report is true.
	Transfer func(s S, n ast.Node, report bool)
}

// maxVisits caps per-block worklist visits as a defense against a
// non-converging Join; real domains settle in a handful of passes.
const maxVisits = 64

// Solve iterates to fixpoint and returns the entry state of every
// reachable block.
func (f *Flow[S]) Solve() map[*Block]S {
	in := map[*Block]S{}
	entry := f.Graph.Entry()
	in[entry] = f.Entry()
	work := []*Block{entry}
	queued := map[*Block]bool{entry: true}
	visits := map[*Block]int{}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		if visits[blk]++; visits[blk] > maxVisits {
			continue
		}
		out := f.Clone(in[blk])
		for _, n := range blk.Nodes {
			f.Transfer(out, n, false)
		}
		for _, succ := range blk.Succs {
			changed := false
			if cur, ok := in[succ]; ok {
				changed = f.Join(cur, out)
			} else {
				in[succ] = f.Clone(out)
				changed = true
			}
			if changed && !queued[succ] {
				queued[succ] = true
				work = append(work, succ)
			}
		}
	}
	return in
}

// Report runs one reporting sweep: every reachable block once, in source
// order, with Transfer(report=true) against its converged entry state.
func (f *Flow[S]) Report(in map[*Block]S) {
	for _, blk := range f.Graph.Blocks {
		s, ok := in[blk]
		if !ok {
			continue // unreachable
		}
		out := f.Clone(s)
		for _, n := range blk.Nodes {
			f.Transfer(out, n, true)
		}
	}
}

// Analyze is Solve followed by Report.
func (f *Flow[S]) Analyze() {
	f.Report(f.Solve())
}
