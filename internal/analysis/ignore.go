package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// IgnorePrefix introduces an escape-hatch pragma. The full form is
//
//	//mpmdvet:ignore <pass> <reason>
//
// placed either on the flagged line itself (trailing comment) or on the line
// directly above it. When the pragma trails a line inside a multi-line
// statement, it covers the whole statement's span: a diagnostic anchored on
// the first line of a wrapped call is suppressed by a pragma trailing any of
// its continuation lines. <pass> is one analyzer name or "all"; <reason> is
// mandatory — an ignore without a justification is itself reported. The
// driver counts every honored pragma in its summary, so exceptions stay
// visible instead of silently accumulating.
const IgnorePrefix = "//mpmdvet:ignore"

// ignoreDirective is one parsed pragma.
type ignoreDirective struct {
	pass   string // analyzer name or "all"
	reason string
	pos    token.Pos
	used   int // diagnostics suppressed by this directive
}

// IgnoreSet indexes every pragma of a package by file and line.
type IgnoreSet struct {
	fset *token.FileSet
	// byLine maps filename -> line -> directives declared on that line.
	byLine map[string]map[int][]*ignoreDirective
	order  []*ignoreDirective
}

// CollectIgnores scans the files' comments for //mpmdvet:ignore pragmas.
// Malformed pragmas (no pass name, or no reason) are returned as
// diagnostics under the pseudo-pass "mpmdvet" so they fail the build
// instead of silently not suppressing.
func CollectIgnores(fset *token.FileSet, files []*ast.File) (*IgnoreSet, []Diagnostic) {
	s := &IgnoreSet{fset: fset, byLine: map[string]map[int][]*ignoreDirective{}}
	var malformed []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, IgnorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, IgnorePrefix)
				if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
					continue // e.g. //mpmdvet:ignoreXYZ — not ours
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Pass: "mpmdvet",
						Pos:  c.Pos(),
						Message: fmt.Sprintf("malformed ignore pragma: want %q <pass> <reason>, got %q",
							IgnorePrefix, text),
					})
					continue
				}
				d := &ignoreDirective{
					pass:   fields[0],
					reason: strings.Join(fields[1:], " "),
					pos:    c.Pos(),
				}
				pos := fset.Position(c.Pos())
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]*ignoreDirective{}
					s.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], d)
				s.order = append(s.order, d)
			}
		}
		s.attachSpans(f)
	}
	return s, malformed
}

// attachSpans extends each of the file's directives over the line span of
// its enclosing simple statement, so a pragma trailing a continuation line
// of a multi-line statement suppresses diagnostics anchored anywhere in the
// statement. Only statements whose interior lines are genuinely their own
// text qualify (assignments, calls, returns, …) — block-shaped statements
// (if/for/switch bodies) would make a pragma on one line silence unrelated
// neighbours.
func (s *IgnoreSet) attachSpans(f *ast.File) {
	fname := s.fset.Position(f.Pos()).Filename
	lines := s.byLine[fname]
	if len(lines) == 0 {
		return
	}
	// Innermost statement (by byte position) whose line span covers each
	// pragma line. Tracking every statement kind and filtering afterwards
	// keeps a pragma inside a nested block (a func-lit body, an if body)
	// from attaching to the much wider statement that encloses the block.
	best := map[int]ast.Stmt{}
	ast.Inspect(f, func(n ast.Node) bool {
		stmt, ok := n.(ast.Stmt)
		if !ok {
			return true
		}
		start := s.fset.Position(stmt.Pos()).Line
		end := s.fset.Position(stmt.End()).Line
		for line := range lines {
			if line < start || line > end {
				continue
			}
			b := best[line]
			if b == nil || stmt.Pos() > b.Pos() || (stmt.Pos() == b.Pos() && stmt.End() < b.End()) {
				best[line] = stmt
			}
		}
		return true
	})
	// Snapshot each pragma line's own directives before extending, so
	// overlapping spans cannot compound.
	orig := map[int][]*ignoreDirective{}
	for line := range best {
		orig[line] = append([]*ignoreDirective(nil), lines[line]...)
	}
	for line, stmt := range best {
		if !spanEligible(stmt) {
			continue
		}
		start := s.fset.Position(stmt.Pos()).Line
		end := s.fset.Position(stmt.End()).Line
		if start == end {
			continue
		}
		for l := start; l <= end; l++ {
			if l != line {
				lines[l] = append(lines[l], orig[line]...)
			}
		}
	}
}

// spanEligible reports whether a multi-line statement's interior lines all
// belong to the statement itself, as opposed to nested statements.
func spanEligible(stmt ast.Stmt) bool {
	switch stmt.(type) {
	case *ast.BlockStmt, *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt,
		*ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt,
		*ast.LabeledStmt, *ast.CaseClause, *ast.CommClause:
		return false
	}
	return true
}

// Match reports whether d is suppressed by a pragma on its line or the line
// above, and marks the pragma used.
func (s *IgnoreSet) Match(d Diagnostic) (reason string, ok bool) {
	pos := s.fset.Position(d.Pos)
	lines := s.byLine[pos.Filename]
	if lines == nil {
		return "", false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, dir := range lines[line] {
			if dir.pass == d.Pass || dir.pass == "all" {
				dir.used++
				return dir.reason, true
			}
		}
	}
	return "", false
}

// Suppression records one diagnostic silenced by a pragma.
type Suppression struct {
	Pass     string `json:"pass"`
	Position string `json:"position"`
	Reason   string `json:"reason"`
	Message  string `json:"message"`
}

// Unused returns diagnostics for pragmas that suppressed nothing — a stale
// exception is reported so it cannot outlive the code it excused. skip (may
// be nil) exempts pragmas by pass name: the unitchecker passes a predicate
// covering the transitive passes, whose whole-program findings — and
// therefore the pragmas that suppress them — only materialize under the
// standalone driver, which still ratchets them via the baseline.
func (s *IgnoreSet) Unused(skip func(pass string) bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range s.order {
		if d.used == 0 && (skip == nil || !skip(d.pass)) {
			out = append(out, Diagnostic{
				Pass:    "mpmdvet",
				Pos:     d.pos,
				Message: fmt.Sprintf("unused ignore pragma for pass %q (%s): nothing was suppressed on this line, the next line, or the enclosing statement", d.pass, d.reason),
			})
		}
	}
	return out
}

// Filter splits diags into kept and suppressed according to the pragma set.
func (s *IgnoreSet) Filter(diags []Diagnostic) (kept []Diagnostic, suppressed []Suppression) {
	for _, d := range diags {
		if reason, ok := s.Match(d); ok {
			suppressed = append(suppressed, Suppression{
				Pass:     d.Pass,
				Position: s.fset.Position(d.Pos).String(),
				Reason:   reason,
				Message:  d.Message,
			})
			continue
		}
		kept = append(kept, d)
	}
	return kept, suppressed
}
