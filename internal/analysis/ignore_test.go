package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func collectFrom(t *testing.T, src string) (*token.FileSet, *IgnoreSet, []Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	set, malformed := CollectIgnores(fset, []*ast.File{f})
	return fset, set, malformed
}

func lineDiag(fset *token.FileSet, pass string, line int) Diagnostic {
	var pos token.Pos
	fset.Iterate(func(f *token.File) bool {
		pos = f.LineStart(line)
		return false
	})
	return Diagnostic{Pass: pass, Pos: pos, Message: "m"}
}

func TestIgnoreSameAndPreviousLine(t *testing.T) {
	fset, set, malformed := collectFrom(t, `package p

func f() {
	g() //mpmdvet:ignore demo same-line reason
	//mpmdvet:ignore demo next-line reason
	g()
}
`)
	if len(malformed) != 0 {
		t.Fatalf("unexpected malformed pragmas: %v", malformed)
	}
	if _, ok := set.Match(lineDiag(fset, "demo", 4)); !ok {
		t.Errorf("same-line pragma did not match line 4")
	}
	if _, ok := set.Match(lineDiag(fset, "demo", 6)); !ok {
		t.Errorf("previous-line pragma did not match line 6")
	}
	if _, ok := set.Match(lineDiag(fset, "other", 4)); ok {
		t.Errorf("pragma for pass demo matched pass other")
	}
}

func TestIgnoreMultilineStatementSpan(t *testing.T) {
	// The pragma trails the second line of a three-line call: diagnostics
	// anchored on any line of the statement must match.
	fset, set, _ := collectFrom(t, `package p

func f() {
	g(
		1, //mpmdvet:ignore demo wrapped-call reason
		2,
	)
}
`)
	for _, line := range []int{4, 5, 6, 7} {
		if _, ok := set.Match(lineDiag(fset, "demo", line)); !ok {
			t.Errorf("span pragma did not match line %d of the enclosing statement", line)
		}
	}
}

func TestIgnoreSpanStopsAtNestedBlock(t *testing.T) {
	// A pragma inside a func-lit body attaches to the inner statement, not
	// to the whole assignment that encloses the literal.
	fset, set, _ := collectFrom(t, `package p

func f() {
	h := func() {
		g()
		g() //mpmdvet:ignore demo inner-statement reason
		g()
	}
	h()
}
`)
	if _, ok := set.Match(lineDiag(fset, "demo", 6)); !ok {
		t.Errorf("pragma did not match its own line inside the literal")
	}
	if _, ok := set.Match(lineDiag(fset, "demo", 8)); ok {
		t.Errorf("pragma leaked past its statement to line 8 inside the literal")
	}
	if _, ok := set.Match(lineDiag(fset, "demo", 9)); ok {
		t.Errorf("pragma leaked to line 9 outside the literal")
	}
}

func TestIgnoreUnusedAndMalformed(t *testing.T) {
	_, set, malformed := collectFrom(t, `package p

//mpmdvet:ignore demo
func f() {
	g() //mpmdvet:ignore demo never matched against anything
}
`)
	if len(malformed) != 1 {
		t.Fatalf("expected 1 malformed pragma (missing reason), got %d", len(malformed))
	}
	unused := set.Unused(nil)
	if len(unused) != 1 {
		t.Fatalf("expected 1 unused pragma, got %d", len(unused))
	}
	if skipped := set.Unused(func(pass string) bool { return pass == "demo" }); len(skipped) != 0 {
		t.Fatalf("skip predicate should exempt the pass, got %d unused", len(skipped))
	}
}
