package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module in a temp dir.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLoadPackagesBadDir(t *testing.T) {
	_, err := LoadPackages(filepath.Join(t.TempDir(), "does-not-exist"), false, "./...")
	if err == nil || !strings.Contains(err.Error(), "go list") {
		t.Fatalf("expected a go list error for a nonexistent dir, got %v", err)
	}
}

func TestCheckPackageNoGoFiles(t *testing.T) {
	ld := newLoader(token.NewFileSet(), nil)
	_, err := ld.checkPackage(&listPkg{ImportPath: "empty"})
	if err == nil || !strings.Contains(err.Error(), "no Go files") {
		t.Fatalf("expected a no-Go-files error, got %v", err)
	}
}

func TestCheckPackageParseError(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"a.go": "package a\nfunc broken( {\n",
	})
	ld := newLoader(token.NewFileSet(), nil)
	_, err := ld.checkPackage(&listPkg{
		ImportPath: "broken", Dir: dir, GoFiles: []string{"a.go"},
	})
	if err == nil || !strings.Contains(err.Error(), "parse") {
		t.Fatalf("expected a parse error, got %v", err)
	}
}

func TestCheckPackageMissingExportData(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"a.go": "package a\n\nimport \"fmt\"\n\nvar _ = fmt.Sprintf\n",
	})
	ld := newLoader(token.NewFileSet(), map[string]string{}) // no export data for fmt
	_, err := ld.checkPackage(&listPkg{
		ImportPath: "needsfmt", Dir: dir, GoFiles: []string{"a.go"},
	})
	if err == nil || !strings.Contains(err.Error(), "no export data") {
		t.Fatalf("expected a no-export-data error, got %v", err)
	}
}

func TestLoadPackagesBrokenDep(t *testing.T) {
	// Package b does not compile, so `go list -export` produces no export
	// data for it; loading its importer a must fail loudly rather than
	// silently analyzing half a module.
	dir := writeModule(t, map[string]string{
		"go.mod":   "module tmpmod\n\ngo 1.21\n",
		"a/a.go":   "package a\n\nimport \"tmpmod/b\"\n\nvar V = b.V\n",
		"b/b.go":   "package b\n\nvar V int = \"not an int\"\n",
		"b/ok.txt": "",
	})
	_, err := LoadPackages(dir, false, "./a")
	if err == nil {
		t.Fatal("expected an error loading a package whose dependency is broken")
	}
	if !strings.Contains(err.Error(), "tmpmod/b") {
		t.Fatalf("error should name the broken dependency, got %v", err)
	}
}

func TestLoadPackagesTestVariant(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":      "module tmpmod\n\ngo 1.21\n",
		"a/a.go":      "package a\n\nfunc Value() int { return 1 }\n",
		"a/a_test.go": "package a\n\nimport \"testing\"\n\nfunc TestValue(t *testing.T) { _ = Value() }\n",
	})
	pkgs, err := LoadPackages(dir, true, "./...")
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, p := range pkgs {
		ids = append(ids, p.ID)
	}
	var variant *Package
	for _, p := range pkgs {
		if p.ID == "tmpmod/a [tmpmod/a.test]" {
			variant = p
		}
		if p.ID == "tmpmod/a" {
			t.Errorf("plain package should be superseded by its test variant; got IDs %v", ids)
		}
	}
	if variant == nil {
		t.Fatalf("test variant not loaded; got IDs %v", ids)
	}
	if variant.ImportPath != "tmpmod/a" {
		t.Errorf("test variant ImportPath = %q, want tmpmod/a", variant.ImportPath)
	}
	if len(variant.Files) != 2 {
		t.Errorf("test variant should contain the package and test files, got %d files", len(variant.Files))
	}
}
