package core

import (
	"math"
	"testing"
	"testing/quick"
)

// roundTrip encodes a set of arguments and decodes into fresh instances,
// returning the decoded set.
func roundTrip(t *testing.T, args []Arg, fresh []Arg) []Arg {
	t.Helper()
	buf, units := encodeArgs(args)
	if units <= 0 && len(args) > 0 {
		t.Fatalf("marshal units = %d", units)
	}
	if got := decodeArgs(buf, fresh); got != units {
		t.Fatalf("decode units %d != encode units %d", got, units)
	}
	return fresh
}

func TestScalarRoundTrip(t *testing.T) {
	out := roundTrip(t,
		[]Arg{&F64{V: -3.75}, &I64{V: -42}, &Str{V: "hé"}, &Bytes{V: []byte{0, 255, 7}}},
		[]Arg{&F64{}, &I64{}, &Str{}, &Bytes{}})
	if out[0].(*F64).V != -3.75 || out[1].(*I64).V != -42 {
		t.Fatal("scalar round trip failed")
	}
	if out[2].(*Str).V != "hé" {
		t.Fatalf("string: %q", out[2].(*Str).V)
	}
	b := out[3].(*Bytes).V
	if len(b) != 3 || b[0] != 0 || b[1] != 255 || b[2] != 7 {
		t.Fatalf("bytes: %v", b)
	}
}

// Property: F64 survives the wire bit-exactly, including NaN and infinities.
func TestF64RoundTripProperty(t *testing.T) {
	f := func(bits uint64) bool {
		in := F64{V: math.Float64frombits(bits)}
		var out F64
		buf, _ := encodeArgs([]Arg{&in})
		decodeArgs(buf, []Arg{&out})
		return math.Float64bits(out.V) == bits
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, math.Copysign(0, -1)} {
		in := F64{V: v}
		var out F64
		buf, _ := encodeArgs([]Arg{&in})
		decodeArgs(buf, []Arg{&out})
		if math.Float64bits(out.V) != math.Float64bits(v) {
			t.Fatalf("special value %v corrupted to %v", v, out.V)
		}
	}
}

// Property: I64 round trip over the full range.
func TestI64RoundTripProperty(t *testing.T) {
	f := func(v int64) bool {
		in := I64{V: v}
		var out I64
		buf, _ := encodeArgs([]Arg{&in})
		decodeArgs(buf, []Arg{&out})
		return out.V == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: slices of arbitrary doubles round trip with matching lengths and
// bits, and per-element marshal units.
func TestF64SliceRoundTripProperty(t *testing.T) {
	f := func(vals []float64) bool {
		in := F64Slice{V: vals}
		var out F64Slice
		buf, units := encodeArgs([]Arg{&in})
		if units != len(vals) {
			return false
		}
		decodeArgs(buf, []Arg{&out})
		if len(out.V) != len(vals) {
			return false
		}
		for i := range vals {
			if math.Float64bits(out.V[i]) != math.Float64bits(vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: strings and byte blobs round trip byte-exactly.
func TestBytesStrRoundTripProperty(t *testing.T) {
	f := func(b []byte, s string) bool {
		inB, inS := Bytes{V: b}, Str{V: s}
		var outB Bytes
		var outS Str
		buf, _ := encodeArgs([]Arg{&inB, &inS})
		decodeArgs(buf, []Arg{&outB, &outS})
		if outS.V != s || len(outB.V) != len(b) {
			return false
		}
		for i := range b {
			if outB.V[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: mixed argument lists round trip through one buffer.
func TestMixedArgsRoundTripProperty(t *testing.T) {
	f := func(a int64, b float64, c []float64, d string) bool {
		in := []Arg{&I64{V: a}, &F64{V: b}, &F64Slice{V: c}, &Str{V: d}}
		out := []Arg{&I64{}, &F64{}, &F64Slice{}, &Str{}}
		buf, _ := encodeArgs(in)
		decodeArgs(buf, out)
		if out[0].(*I64).V != a || out[3].(*Str).V != d {
			return false
		}
		if math.Float64bits(out[1].(*F64).V) != math.Float64bits(b) {
			return false
		}
		if len(out[2].(*F64Slice).V) != len(c) {
			return false
		}
		for i := range c {
			if math.Float64bits(out[2].(*F64Slice).V[i]) != math.Float64bits(c[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeSizeMismatchPanics(t *testing.T) {
	buf, _ := encodeArgs([]Arg{&I64{V: 1}, &I64{V: 2}})
	defer func() {
		if recover() == nil {
			t.Error("short decode did not panic")
		}
	}()
	decodeArgs(buf, []Arg{&I64{}}) // one arg short
}

func TestWireSizeMatchesEncoding(t *testing.T) {
	args := []Arg{&F64{}, &I64{}, &F64Slice{V: make([]float64, 7)}, &Bytes{V: make([]byte, 13)}, &Str{V: "abc"}}
	total := 0
	for _, a := range args {
		total += a.WireSize()
	}
	buf, _ := encodeArgs(args)
	if len(buf) != total {
		t.Fatalf("encoded %d bytes, WireSize sum %d", len(buf), total)
	}
}
