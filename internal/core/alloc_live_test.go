package core

import (
	"runtime/debug"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/threads"
	"repro/internal/transport/live"
)

// allocBenchClass is the warm-path test class: a null method and a 1 KiB
// byte sink.
func allocBenchClass() *Class {
	return &Class{
		Name: "AllocBench",
		New:  func() any { return &allocBenchObj{buf: make([]byte, 1024)} },
		Methods: []*Method{
			{Name: "null", Fn: func(t *threads.Thread, self any, args []Arg, ret Arg) {}},
			{Name: "sink",
				NewArgs: func() []Arg { return []Arg{&Bytes{}} },
				Fn: func(t *threads.Thread, self any, args []Arg, ret Arg) {
					copy(self.(*allocBenchObj).buf, args[0].(*Bytes).V)
				}},
		},
	}
}

type allocBenchObj struct{ buf []byte }

// TestWarmPathAllocsPerRun pins the warm-path allocation budget of the live
// backend: a warm null RMI round trip and a warm 1 KiB bulk RMI must each
// average at most 2 allocations per operation across the whole machine
// (sender, receiver, and delivery workers all run inside the measurement
// window). This is the refactor's enforcement point — pooled wire buffers,
// recycled call records and decode frames, ring inboxes, and closure-free
// delivery are what keep this number at ~0; a regression anywhere on the
// path shows up here as a budget overrun.
func TestWarmPathAllocsPerRun(t *testing.T) {
	const budget = 2.0
	m := machine.NewWithBackend(machine.SP1997(), 2,
		live.New(2, live.Options{Watchdog: 2 * time.Minute}))
	rt := NewRuntime(m)
	rt.RegisterClass(allocBenchClass())
	gp := rt.CreateObject(1, "AllocBench")
	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	arg := &Bytes{V: payload}
	argSlice := []Arg{arg}
	var nullAllocs, bulkAllocs float64
	rt.OnNode(0, func(th *threads.Thread) {
		// Warm everything: stub cache, persistent R-buffers, wire-buffer
		// pools, call records, decode frames, ring capacities.
		for i := 0; i < 8; i++ {
			rt.Call(th, gp, "null", nil, nil)
			rt.Call(th, gp, "sink", argSlice, nil)
		}
		// A GC inside the measured window would drain the sync.Pools and
		// make their refills count against the budget; switch it off for
		// determinism (the warm path's whole point is that it produces no
		// garbage to collect).
		defer debug.SetGCPercent(debug.SetGCPercent(-1))
		nullAllocs = testing.AllocsPerRun(300, func() {
			rt.Call(th, gp, "null", nil, nil)
		})
		bulkAllocs = testing.AllocsPerRun(300, func() {
			rt.Call(th, gp, "sink", argSlice, nil)
		})
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	t.Logf("warm null RMI: %.2f allocs/op; warm 1KiB bulk: %.2f allocs/op", nullAllocs, bulkAllocs)
	if nullAllocs > budget {
		t.Errorf("warm null RMI allocates %.2f/op, budget %v", nullAllocs, budget)
	}
	if bulkAllocs > budget {
		t.Errorf("warm 1KiB bulk RMI allocates %.2f/op, budget %v", bulkAllocs, budget)
	}
	// The budget above must hold WITH observability on, not by switching it
	// off: prove the metrics plane was live and recording throughout the
	// measured window. Every measured round trip observes into the RMI
	// latency histogram — atomics into preallocated buckets, zero garbage.
	snap, ok := m.Metrics()
	if !ok {
		t.Fatal("live machine reports no metrics plane; the alloc budget must be measured with metrics enabled")
	}
	if n := snap.Hist(metrics.HstRMILatency).Count; n < 300 {
		t.Errorf("RMI latency histogram recorded %d round trips during an instrumented run, want >= 300", n)
	}
}
