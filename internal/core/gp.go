package core

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/am"
	"repro/internal/machine"
	"repro/internal/threads"
)

// GPF64 is a CC++ global pointer to a double. The front-end translates
// dereferences into RMIs; the runtime optimizes accesses to simple data
// types into small request/reply active messages with no marshalling (§6:
// "accesses to simple data types through global pointers are optimized
// using small request/reply active messages"). The receiver still services
// the access on a fresh thread (Table 4's GP 2-Word R/W row: 1 create,
// 2 switches), because a deref may touch data a local computation holds.
type GPF64 struct {
	node int32
	h    uint64   // wire name: index in the process's f64 handle registry
	ptr  *float64 // local fast path; only the owning node dereferences it
}

// f64Reg is the process-wide registry giving float64 locations stable wire
// handles — the stand-in for the raw data address a 1997 sender packed into
// the message words. Handles are allocated in registration order, so SPMD
// programs that build their global data structures identically in every
// address space (the same discipline real Split-C/CC++ images follow) get
// matching handles on every shard of the netlive backend; the owning node
// resolves the handle in its own registry copy.
//
// Registered pointers stay pinned for the life of the process (as a real
// image's global data segment would): handles must remain resolvable for
// later machines in the same process. Re-registering the same location is
// free after the first time — the common construct-a-GPF64-per-dereference
// idiom (em3d's inner loop) takes only the read lock.
var f64Reg struct {
	mu   sync.RWMutex
	ptrs []*float64
	ids  map[*float64]uint64
}

func registerF64(p *float64) uint64 {
	f64Reg.mu.RLock()
	h, ok := f64Reg.ids[p]
	f64Reg.mu.RUnlock()
	if ok {
		return h
	}
	f64Reg.mu.Lock()
	defer f64Reg.mu.Unlock()
	if f64Reg.ids == nil {
		f64Reg.ids = make(map[*float64]uint64)
	}
	if h, ok := f64Reg.ids[p]; ok {
		return h
	}
	h = uint64(len(f64Reg.ptrs))
	f64Reg.ptrs = append(f64Reg.ptrs, p)
	f64Reg.ids[p] = h
	return h
}

func resolveF64(h uint64) *float64 {
	f64Reg.mu.RLock()
	defer f64Reg.mu.RUnlock()
	if h >= uint64(len(f64Reg.ptrs)) {
		panic(fmt.Sprintf("core: unresolvable global-pointer handle %d (registry has %d; symmetric setup across shards required)",
			h, len(f64Reg.ptrs)))
	}
	return f64Reg.ptrs[h]
}

// NewGPF64 builds a global pointer to a double owned by the given node.
// Programs obtain these through data-structure setup (the translator would
// type them); only the owning node's runtime dereferences ptr.
func NewGPF64(node int, ptr *float64) GPF64 {
	return GPF64{node: int32(node), h: registerF64(ptr), ptr: ptr}
}

// NodeID returns the owning node.
func (g GPF64) NodeID() int { return int(g.node) }

// Fixed GP-access runtime costs, calibrated to land Table 4's GP 2-Word R/W
// Runtime column near its measured 16 µs (3 µs of which is the stub lookup).
const (
	gpIssueCost    = 5 * time.Microsecond // sender-side deref bookkeeping
	gpServeCost    = 4 * time.Microsecond // receiver-side access + reply prep
	gpCompleteCost = 4 * time.Microsecond // landing the value / the ack
)

// gpReq is the sender-side record of one in-flight GP access; the message
// carries its table ID in the words (addGP/takeGP) and the target's handle,
// which the owner resolves in its registry.
type gpReq struct {
	comp *completion
	dst  *float64 // local landing slot for reads
}

// addGP stores an in-flight GP record, returning its wire ID (slot+1).
// Sender-node execution context only, like takeGP.
func (n *nodeRT) addGP(rq *gpReq) uint64 {
	if ln := len(n.gpFree); ln > 0 {
		id := n.gpFree[ln-1]
		n.gpFree = n.gpFree[:ln-1]
		n.gpPending[id] = rq
		return uint64(id) + 1
	}
	n.gpPending = append(n.gpPending, rq)
	return uint64(len(n.gpPending))
}

// takeGP resolves a reply's request ID and frees the slot.
func (n *nodeRT) takeGP(wireID uint64) *gpReq {
	id := uint32(wireID - 1)
	rq := n.gpPending[id]
	if rq == nil {
		panic(fmt.Sprintf("core: node %d GP reply for unknown request %d", n.node.ID, wireID))
	}
	n.gpPending[id] = nil
	n.gpFree = append(n.gpFree, id)
	return rq
}

// GP message word layouts:
//
//	gp.read:       A = [reqID, handle]
//	gp.read.reply: A = [bits, reqID]
//	gp.write:      A = [bits, handle, reqID, wantAck]
//	gp.ack:        A = [reqID]
func (rt *Runtime) registerGPHandlers() {
	rt.hGPReadReply = rt.tr.Register("cc.gp.read.reply", func(t *threads.Thread, m am.Msg) {
		n := rt.nodes[m.Dst]
		rq := n.takeGP(m.A[1])
		lockPair(t, &n.commLock)
		chargeRuntime(t, gpCompleteCost)
		*rq.dst = math.Float64frombits(m.A[0])
		rq.complete(t)
	})
	// GP accesses use the runtime's optimized wire path — "small
	// request/reply active messages" with no marshalling (§6) — but the
	// access itself still runs on a fresh thread at the owner, because a
	// deref may touch data an interrupted local computation holds (Table 4's
	// GP 2-Word R/W row: 1 create, 2 switches).
	rt.hGPRead = rt.tr.Register("cc.gp.read", func(t *threads.Thread, m am.Msg) {
		n := rt.nodes[m.Dst]
		lockPair(t, &n.commLock)
		src := m.Src
		reqID := m.A[0]
		handle := m.A[1]
		t.Spawn("gp.read", func(t2 *threads.Thread) {
			chargeRuntime(t2, gpServeCost)
			bits := math.Float64bits(*resolveF64(handle))
			rt.tr.Send(t2, m.Dst, src, rt.hGPReadReply, [4]uint64{bits, reqID}, nil, false)
		})
	})
	rt.hGPAck = rt.tr.Register("cc.gp.ack", func(t *threads.Thread, m am.Msg) {
		n := rt.nodes[m.Dst]
		rq := n.takeGP(m.A[0])
		lockPair(t, &n.commLock)
		chargeRuntime(t, gpCompleteCost)
		rq.complete(t)
	})
	rt.hGPWrite = rt.tr.Register("cc.gp.write", func(t *threads.Thread, m am.Msg) {
		n := rt.nodes[m.Dst]
		lockPair(t, &n.commLock)
		src := m.Src
		bits := m.A[0]
		handle := m.A[1]
		reqID := m.A[2]
		wantAck := m.A[3] != 0
		t.Spawn("gp.write", func(t2 *threads.Thread) {
			chargeRuntime(t2, gpServeCost)
			*resolveF64(handle) = math.Float64frombits(bits)
			if wantAck {
				rt.tr.Send(t2, m.Dst, src, rt.hGPAck, [4]uint64{reqID}, nil, false)
			}
		})
	})
}

// complete lands a GP operation at its initiator according to call mode.
func (rq *gpReq) complete(t *threads.Thread) {
	rq.comp.done = true
	switch rq.comp.mode {
	case modeBlock, modeFuture:
		rq.comp.sv.Write(t, nil)
	}
}

// ReadF64 dereferences a global pointer to a double (lx = *gp). Local
// pointers pay only the locality check; remote ones perform the small
// request/reply RMI.
func (rt *Runtime) ReadF64(t *threads.Thread, gp GPF64) float64 {
	n := rt.nodeOf(t)
	cfg := t.Cfg()
	if int(gp.node) == n.node.ID {
		// Local data accessed through a global pointer still pays the
		// runtime's thread-safe locality check and indirection — the
		// em3d-base effect at low remote percentages.
		n.node.Acct.Count(machine.CntLocalDeref, 1)
		lockPair(t, &n.rtLock)
		chargeRuntime(t, cfg.LocalGPDeref)
		return *gp.ptr
	}
	n.node.Acct.Count(machine.CntRemoteRead, 1)
	lockPair(t, &n.rtLock)
	chargeRuntime(t, cfg.StubLookup+gpIssueCost)
	mode := modeBlock
	if rt.opts.SpinSenders {
		mode = modeSpin
	}
	var dst float64
	rq := &gpReq{comp: &completion{mode: mode}, dst: &dst}
	id := n.addGP(rq)
	lockPair(t, &n.commLock)
	rt.tr.Send(t, n.node.ID, int(gp.node), rt.hGPRead, [4]uint64{id, gp.h}, nil, false)
	rt.waitComp(t, n, rq.comp)
	return dst
}

// WriteF64 writes through a global pointer to a double (*gp = lx), waiting
// for the remote acknowledgement.
func (rt *Runtime) WriteF64(t *threads.Thread, gp GPF64, v float64) {
	n := rt.nodeOf(t)
	cfg := t.Cfg()
	if int(gp.node) == n.node.ID {
		n.node.Acct.Count(machine.CntLocalDeref, 1)
		lockPair(t, &n.rtLock)
		chargeRuntime(t, cfg.LocalGPDeref)
		*gp.ptr = v
		return
	}
	n.node.Acct.Count(machine.CntRemoteWrite, 1)
	lockPair(t, &n.rtLock)
	chargeRuntime(t, cfg.StubLookup+gpIssueCost)
	mode := modeBlock
	if rt.opts.SpinSenders {
		mode = modeSpin
	}
	rq := &gpReq{comp: &completion{mode: mode}}
	id := n.addGP(rq)
	lockPair(t, &n.commLock)
	rt.tr.Send(t, n.node.ID, int(gp.node), rt.hGPWrite,
		[4]uint64{math.Float64bits(v), gp.h, id, 1}, nil, false)
	rt.waitComp(t, n, rq.comp)
}

// WriteF64Async writes through a global pointer without waiting; the
// returned Future joins on the remote acknowledgement.
func (rt *Runtime) WriteF64Async(t *threads.Thread, gp GPF64, v float64) *Future {
	n := rt.nodeOf(t)
	cfg := t.Cfg()
	if int(gp.node) == n.node.ID {
		n.node.Acct.Count(machine.CntLocalDeref, 1)
		chargeRuntime(t, cfg.LocalGPDeref)
		*gp.ptr = v
		comp := &completion{mode: modeFuture, done: true}
		comp.sv.Write(t, nil)
		return &Future{rt: rt, comp: comp}
	}
	n.node.Acct.Count(machine.CntRemoteWrite, 1)
	lockPair(t, &n.rtLock)
	chargeRuntime(t, cfg.StubLookup+gpIssueCost)
	rq := &gpReq{comp: &completion{mode: modeFuture}}
	id := n.addGP(rq)
	lockPair(t, &n.commLock)
	rt.tr.Send(t, n.node.ID, int(gp.node), rt.hGPWrite,
		[4]uint64{math.Float64bits(v), gp.h, id, 1}, nil, false)
	return &Future{rt: rt, comp: rq.comp}
}

// waitComp waits for a completion according to its mode.
func (rt *Runtime) waitComp(t *threads.Thread, n *nodeRT, comp *completion) {
	switch comp.mode {
	case modeSpin:
		rt.pollUntil(t, n.node.ID, func() bool { return comp.done })
	case modeBlock:
		comp.sv.Read(t)
	}
}
