package core

import (
	"math"
	"time"

	"repro/internal/am"
	"repro/internal/machine"
	"repro/internal/threads"
)

// GPF64 is a CC++ global pointer to a double. The front-end translates
// dereferences into RMIs; the runtime optimizes accesses to simple data
// types into small request/reply active messages with no marshalling (§6:
// "accesses to simple data types through global pointers are optimized
// using small request/reply active messages"). The receiver still services
// the access on a fresh thread (Table 4's GP 2-Word R/W row: 1 create,
// 2 switches), because a deref may touch data a local computation holds.
type GPF64 struct {
	node int32
	ptr  *float64
}

// NewGPF64 builds a global pointer to a double owned by the given node.
// Programs obtain these through data-structure setup (the translator would
// type them); only the owning node's runtime dereferences ptr.
func NewGPF64(node int, ptr *float64) GPF64 {
	return GPF64{node: int32(node), ptr: ptr}
}

// NodeID returns the owning node.
func (g GPF64) NodeID() int { return int(g.node) }

// Fixed GP-access runtime costs, calibrated to land Table 4's GP 2-Word R/W
// Runtime column near its measured 16 µs (3 µs of which is the stub lookup).
const (
	gpIssueCost    = 5 * time.Microsecond // sender-side deref bookkeeping
	gpServeCost    = 4 * time.Microsecond // receiver-side access + reply prep
	gpCompleteCost = 4 * time.Microsecond // landing the value / the ack
)

// gpReq is the envelope of a GP read/write.
type gpReq struct {
	from *nodeRT
	comp *completion
	ptr  *float64 // target location (owned by the remote node)
	dst  *float64 // local landing slot for reads
}

func (rt *Runtime) registerGPHandlers() {
	rt.hGPReadReply = rt.tr.Register("cc.gp.read.reply", func(t *threads.Thread, m am.Msg) {
		rq := m.Obj.(*gpReq)
		n := rq.from
		lockPair(t, &n.commLock)
		chargeRuntime(t, gpCompleteCost)
		*rq.dst = math.Float64frombits(m.A[0])
		rq.complete(t)
	})
	// GP accesses use the runtime's optimized wire path — "small
	// request/reply active messages" with no marshalling (§6) — but the
	// access itself still runs on a fresh thread at the owner, because a
	// deref may touch data an interrupted local computation holds (Table 4's
	// GP 2-Word R/W row: 1 create, 2 switches).
	rt.hGPRead = rt.tr.Register("cc.gp.read", func(t *threads.Thread, m am.Msg) {
		rq := m.Obj.(*gpReq)
		n := rt.nodes[m.Dst]
		lockPair(t, &n.commLock)
		src := m.Src
		t.Spawn("gp.read", func(t2 *threads.Thread) {
			chargeRuntime(t2, gpServeCost)
			bits := math.Float64bits(*rq.ptr)
			rt.tr.Send(t2, m.Dst, src, rt.hGPReadReply, [4]uint64{bits}, rq, nil, false)
		})
	})
	rt.hGPAck = rt.tr.Register("cc.gp.ack", func(t *threads.Thread, m am.Msg) {
		rq := m.Obj.(*gpReq)
		n := rq.from
		lockPair(t, &n.commLock)
		chargeRuntime(t, gpCompleteCost)
		rq.complete(t)
	})
	rt.hGPWrite = rt.tr.Register("cc.gp.write", func(t *threads.Thread, m am.Msg) {
		rq := m.Obj.(*gpReq)
		n := rt.nodes[m.Dst]
		lockPair(t, &n.commLock)
		src := m.Src
		wantAck := m.A[1] != 0
		bits := m.A[0]
		t.Spawn("gp.write", func(t2 *threads.Thread) {
			chargeRuntime(t2, gpServeCost)
			*rq.ptr = math.Float64frombits(bits)
			if wantAck {
				rt.tr.Send(t2, m.Dst, src, rt.hGPAck, [4]uint64{}, rq, nil, false)
			}
		})
	})
}

// complete lands a GP operation at its initiator according to call mode.
func (rq *gpReq) complete(t *threads.Thread) {
	rq.comp.done = true
	switch rq.comp.mode {
	case modeBlock, modeFuture:
		rq.comp.sv.Write(t, nil)
	}
}

// ReadF64 dereferences a global pointer to a double (lx = *gp). Local
// pointers pay only the locality check; remote ones perform the small
// request/reply RMI.
func (rt *Runtime) ReadF64(t *threads.Thread, gp GPF64) float64 {
	n := rt.nodeOf(t)
	cfg := t.Cfg()
	if int(gp.node) == n.node.ID {
		// Local data accessed through a global pointer still pays the
		// runtime's thread-safe locality check and indirection — the
		// em3d-base effect at low remote percentages.
		n.node.Acct.Count(machine.CntLocalDeref, 1)
		lockPair(t, &n.rtLock)
		chargeRuntime(t, cfg.LocalGPDeref)
		return *gp.ptr
	}
	n.node.Acct.Count(machine.CntRemoteRead, 1)
	lockPair(t, &n.rtLock)
	chargeRuntime(t, cfg.StubLookup+gpIssueCost)
	mode := modeBlock
	if rt.opts.SpinSenders {
		mode = modeSpin
	}
	var dst float64
	rq := &gpReq{from: n, comp: &completion{mode: mode}, ptr: gp.ptr, dst: &dst}
	lockPair(t, &n.commLock)
	rt.tr.Send(t, n.node.ID, int(gp.node), rt.hGPRead, [4]uint64{}, rq, nil, false)
	rt.waitComp(t, n, rq.comp)
	return dst
}

// WriteF64 writes through a global pointer to a double (*gp = lx), waiting
// for the remote acknowledgement.
func (rt *Runtime) WriteF64(t *threads.Thread, gp GPF64, v float64) {
	n := rt.nodeOf(t)
	cfg := t.Cfg()
	if int(gp.node) == n.node.ID {
		n.node.Acct.Count(machine.CntLocalDeref, 1)
		lockPair(t, &n.rtLock)
		chargeRuntime(t, cfg.LocalGPDeref)
		*gp.ptr = v
		return
	}
	n.node.Acct.Count(machine.CntRemoteWrite, 1)
	lockPair(t, &n.rtLock)
	chargeRuntime(t, cfg.StubLookup+gpIssueCost)
	mode := modeBlock
	if rt.opts.SpinSenders {
		mode = modeSpin
	}
	rq := &gpReq{from: n, comp: &completion{mode: mode}, ptr: gp.ptr}
	lockPair(t, &n.commLock)
	rt.tr.Send(t, n.node.ID, int(gp.node), rt.hGPWrite, [4]uint64{math.Float64bits(v), 1}, rq, nil, false)
	rt.waitComp(t, n, rq.comp)
}

// WriteF64Async writes through a global pointer without waiting; the
// returned Future joins on the remote acknowledgement.
func (rt *Runtime) WriteF64Async(t *threads.Thread, gp GPF64, v float64) *Future {
	n := rt.nodeOf(t)
	cfg := t.Cfg()
	if int(gp.node) == n.node.ID {
		n.node.Acct.Count(machine.CntLocalDeref, 1)
		chargeRuntime(t, cfg.LocalGPDeref)
		*gp.ptr = v
		comp := &completion{mode: modeFuture, done: true}
		comp.sv.Write(t, nil)
		return &Future{rt: rt, comp: comp}
	}
	n.node.Acct.Count(machine.CntRemoteWrite, 1)
	lockPair(t, &n.rtLock)
	chargeRuntime(t, cfg.StubLookup+gpIssueCost)
	rq := &gpReq{from: n, comp: &completion{mode: modeFuture}, ptr: gp.ptr}
	lockPair(t, &n.commLock)
	rt.tr.Send(t, n.node.ID, int(gp.node), rt.hGPWrite, [4]uint64{math.Float64bits(v), 1}, rq, nil, false)
	return &Future{rt: rt, comp: rq.comp}
}

// waitComp waits for a completion according to its mode.
func (rt *Runtime) waitComp(t *threads.Thread, n *nodeRT, comp *completion) {
	switch comp.mode {
	case modeSpin:
		rt.pollUntil(t, n.node.ID, func() bool { return comp.done })
	case modeBlock:
		comp.sv.Read(t)
	}
}
