package core

import (
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/threads"
)

// counterClass is a simple processor object used throughout the tests.
type counter struct {
	n   int64
	log []int64
}

func counterClass() *Class {
	return &Class{
		Name: "Counter",
		New:  func() any { return &counter{} },
		Methods: []*Method{
			{
				Name: "nop",
				Fn:   func(t *threads.Thread, self any, args []Arg, ret Arg) {},
			},
			{
				Name:     "nopThreaded",
				Threaded: true,
				Fn:       func(t *threads.Thread, self any, args []Arg, ret Arg) {},
			},
			{
				Name:     "addAtomic",
				Atomic:   true,
				Threaded: true,
				NewArgs:  func() []Arg { return []Arg{&I64{}} },
				Fn: func(t *threads.Thread, self any, args []Arg, ret Arg) {
					c := self.(*counter)
					v := args[0].(*I64).V
					c.n += v
					c.log = append(c.log, v)
				},
			},
			{
				Name:    "add",
				NewArgs: func() []Arg { return []Arg{&I64{}} },
				Fn: func(t *threads.Thread, self any, args []Arg, ret Arg) {
					self.(*counter).n += args[0].(*I64).V
				},
			},
			{
				Name:   "get",
				NewRet: func() Arg { return &I64{} },
				Fn: func(t *threads.Thread, self any, args []Arg, ret Arg) {
					ret.(*I64).V = self.(*counter).n
				},
			},
			{
				Name:    "sum",
				NewArgs: func() []Arg { return []Arg{&F64Slice{}} },
				NewRet:  func() Arg { return &F64{} },
				Fn: func(t *threads.Thread, self any, args []Arg, ret Arg) {
					s := 0.0
					for _, v := range args[0].(*F64Slice).V {
						s += v
					}
					ret.(*F64).V = s
				},
			},
			{
				// Mirrors the paper's `lA = gpObj->get(gpA)`: the source
				// "global pointer" travels as a word argument.
				Name:    "getArray",
				NewArgs: func() []Arg { return []Arg{&I64{}} },
				NewRet:  func() Arg { return &F64Slice{} },
				Fn: func(t *threads.Thread, self any, args []Arg, ret Arg) {
					n := int(args[0].(*I64).V)
					out := make([]float64, n)
					for i := range out {
						out[i] = float64(i) * 1.5
					}
					ret.(*F64Slice).V = out
				},
			},
		},
	}
}

func newRig(nodes int, opts Options) *Runtime {
	rt := NewRuntimeOpts(machine.New(machine.SP1997(), nodes), opts)
	rt.RegisterClass(counterClass())
	return rt
}

func TestNullRMISimpleLatency(t *testing.T) {
	rt := newRig(2, Options{})
	gp := rt.CreateObject(1, "Counter")
	var warm time.Duration
	rt.OnNode(0, func(th *threads.Thread) {
		rt.CallSimple(th, gp, "nop", nil, nil) // cold: resolves the stub
		start := th.Now()
		rt.CallSimple(th, gp, "nop", nil, nil)
		warm = time.Duration(th.Now() - start)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	// Paper: 0-Word Simple is 67 µs, 12 µs above the 55 µs AM round trip.
	if warm < 55*time.Microsecond || warm > 85*time.Microsecond {
		t.Fatalf("0-word simple RMI = %v, want ~67µs", warm)
	}
}

func TestColdWarmStubCache(t *testing.T) {
	rt := newRig(2, Options{})
	gp := rt.CreateObject(1, "Counter")
	var cold, warm time.Duration
	rt.OnNode(0, func(th *threads.Thread) {
		start := th.Now()
		rt.CallSimple(th, gp, "nop", nil, nil)
		cold = time.Duration(th.Now() - start)
		start = th.Now()
		rt.CallSimple(th, gp, "nop", nil, nil)
		warm = time.Duration(th.Now() - start)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if cold <= warm {
		t.Fatalf("cold %v not slower than warm %v", cold, warm)
	}
	hits, misses := rt.StubCacheStats()
	if misses != 1 || hits != 1 {
		t.Fatalf("stub cache hits=%d misses=%d, want 1/1", hits, misses)
	}
	if n := rt.m.Node(0).Acct.Counter(machine.CntRMICold); n != 1 {
		t.Fatalf("cold RMIs = %d", n)
	}
}

func TestArgsAndReturnRoundTrip(t *testing.T) {
	rt := newRig(2, Options{})
	gp := rt.CreateObject(1, "Counter")
	var got int64
	var sum float64
	rt.OnNode(0, func(th *threads.Thread) {
		rt.Call(th, gp, "add", []Arg{&I64{V: 5}}, nil)
		rt.Call(th, gp, "add", []Arg{&I64{V: 37}}, nil)
		var ret I64
		rt.Call(th, gp, "get", nil, &ret)
		got = ret.V
		var s F64
		rt.Call(th, gp, "sum", []Arg{&F64Slice{V: []float64{1, 2, 3.5}}}, &s)
		sum = s.V
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("counter = %d", got)
	}
	if sum != 6.5 {
		t.Fatalf("sum = %v", sum)
	}
	if c := rt.Object(gp).(*counter); c.n != 42 {
		t.Fatalf("object state = %d", c.n)
	}
}

func TestReturnArrayDoubleCopy(t *testing.T) {
	// A bulk read (array return) must cost more than a bulk write (array
	// argument) because return data is copied twice at the initiator.
	rt := newRig(2, Options{})
	gp := rt.CreateObject(1, "Counter")
	var writeTime, readTime time.Duration
	rt.OnNode(0, func(th *threads.Thread) {
		arr := make([]float64, 20)
		var s F64
		rt.Call(th, gp, "sum", []Arg{&F64Slice{V: arr}}, &s) // warm up both stubs
		var ret F64Slice
		rt.Call(th, gp, "getArray", []Arg{&I64{V: 20}}, &ret)

		start := th.Now()
		rt.Call(th, gp, "sum", []Arg{&F64Slice{V: arr}}, &s)
		writeTime = time.Duration(th.Now() - start)

		start = th.Now()
		rt.Call(th, gp, "getArray", []Arg{&I64{V: 20}}, &ret)
		readTime = time.Duration(th.Now() - start)

		for i, v := range ret.V {
			if v != float64(i)*1.5 {
				t.Errorf("ret[%d] = %v", i, v)
			}
		}
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if readTime <= writeTime {
		t.Fatalf("bulk read %v not slower than bulk write %v", readTime, writeTime)
	}
}

func TestAtomicMethodSerializes(t *testing.T) {
	rt := newRig(4, Options{})
	gp := rt.CreateObject(3, "Counter")
	for i := 0; i < 3; i++ {
		i := i
		rt.OnNode(i, func(th *threads.Thread) {
			for j := 0; j < 5; j++ {
				rt.Call(th, gp, "addAtomic", []Arg{&I64{V: int64(i*10 + j)}}, nil)
			}
		})
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	c := rt.Object(gp).(*counter)
	want := int64(0)
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			want += int64(i*10 + j)
		}
	}
	if c.n != want {
		t.Fatalf("atomic sum = %d, want %d", c.n, want)
	}
	if len(c.log) != 15 {
		t.Fatalf("%d atomic invocations recorded", len(c.log))
	}
}

func TestThreadedRMISpawnsThread(t *testing.T) {
	rt := newRig(2, Options{})
	gp := rt.CreateObject(1, "Counter")
	rt.OnNode(0, func(th *threads.Thread) {
		rt.Call(th, gp, "nopThreaded", nil, nil) // cold
		rt.Call(th, gp, "nopThreaded", nil, nil) // warm
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if n := rt.m.Node(1).Acct.Counter(machine.CntThreadCreate); n < 2 {
		t.Fatalf("receiver created %d threads, want >= 2", n)
	}
}

func TestNonThreadedRMICreatesNoThread(t *testing.T) {
	rt := newRig(2, Options{})
	gp := rt.CreateObject(1, "Counter")
	rt.OnNode(0, func(th *threads.Thread) {
		rt.CallSimple(th, gp, "nop", nil, nil)
		rt.CallSimple(th, gp, "nop", nil, nil)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if n := rt.m.Node(1).Acct.Counter(machine.CntThreadCreate); n != 0 {
		t.Fatalf("receiver created %d threads for non-threaded RMI", n)
	}
}

func TestOneWayAndFutures(t *testing.T) {
	rt := newRig(2, Options{})
	gp := rt.CreateObject(1, "Counter")
	var got int64
	rt.OnNode(0, func(th *threads.Thread) {
		rt.CallOneWay(th, gp, "add", []Arg{&I64{V: 7}})
		f := rt.CallAsync(th, gp, "add", []Arg{&I64{V: 8}}, nil)
		f.Wait(th)
		var ret I64
		rt.Call(th, gp, "get", nil, &ret)
		got = ret.V
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	// The one-way add may land before or after the async one, but both must
	// land before get's reply is computed only if ordering holds per pair —
	// our network is FIFO per (src,dst), so 7 then 8 then get.
	if got != 15 {
		t.Fatalf("counter = %d, want 15", got)
	}
}

func TestLocalRMIThroughGPtr(t *testing.T) {
	rt := newRig(1, Options{})
	gp := rt.CreateObject(0, "Counter")
	var got int64
	rt.OnNode(0, func(th *threads.Thread) {
		rt.Call(th, gp, "add", []Arg{&I64{V: 3}}, nil)
		var ret I64
		rt.Call(th, gp, "get", nil, &ret)
		got = ret.V
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("counter = %d", got)
	}
	if n := rt.m.Node(0).Acct.Counter(machine.CntMsgShort) + rt.m.Node(0).Acct.Counter(machine.CntMsgBulk); n != 0 {
		t.Fatalf("local RMI sent %d messages", n)
	}
	if n := rt.m.Node(0).Acct.Counter(machine.CntLocalDeref); n != 2 {
		t.Fatalf("local derefs = %d", n)
	}
}

func TestNewObjOnRemoteCreation(t *testing.T) {
	rt := newRig(3, Options{})
	var got int64
	rt.OnNode(0, func(th *threads.Thread) {
		gp := rt.NewObjOn(th, 2, "Counter")
		if gp.NodeID() != 2 {
			t.Errorf("object placed on node %d", gp.NodeID())
		}
		rt.Call(th, gp, "add", []Arg{&I64{V: 11}}, nil)
		var ret I64
		rt.Call(th, gp, "get", nil, &ret)
		got = ret.V
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 11 {
		t.Fatalf("counter = %d", got)
	}
}

func TestGPF64ReadWrite(t *testing.T) {
	rt := newRig(2, Options{})
	x := 1.25 // owned by node 1
	gp := NewGPF64(1, &x)
	var got float64
	rt.OnNode(0, func(th *threads.Thread) {
		got = rt.ReadF64(th, gp)
		rt.WriteF64(th, gp, 9.75)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 1.25 || x != 9.75 {
		t.Fatalf("got=%v x=%v", got, x)
	}
	// GP accesses run on a fresh receiver thread (Table 4 GP row: Create=1).
	if n := rt.m.Node(1).Acct.Counter(machine.CntThreadCreate); n != 2 {
		t.Fatalf("receiver threads = %d, want 2", n)
	}
}

func TestGPF64LocalDerefCheap(t *testing.T) {
	rt := newRig(1, Options{})
	x := 4.0
	gp := NewGPF64(0, &x)
	rt.OnNode(0, func(th *threads.Thread) {
		if v := rt.ReadF64(th, gp); v != 4.0 {
			t.Errorf("local read %v", v)
		}
		rt.WriteF64(th, gp, 5.0)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if x != 5.0 {
		t.Fatalf("x = %v", x)
	}
	cfg := machine.SP1997()
	// Two local derefs cost exactly the configured check, nothing more.
	if got := rt.m.Node(0).Acct.Get(machine.CatRuntime); got != 2*cfg.LocalGPDeref {
		t.Fatalf("local GP deref charged %v", got)
	}
}

func TestParJoinsAll(t *testing.T) {
	rt := newRig(1, Options{})
	var done [3]bool
	rt.OnNode(0, func(th *threads.Thread) {
		Par(th,
			func(t2 *threads.Thread) { t2.Compute(5 * time.Microsecond); done[0] = true },
			func(t2 *threads.Thread) { t2.Compute(1 * time.Microsecond); done[1] = true },
			func(t2 *threads.Thread) { done[2] = true },
		)
		if !done[0] || !done[1] || !done[2] {
			t.Error("par returned before blocks finished")
		}
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestParForPrefetchOverlap(t *testing.T) {
	// CC++ prefetch: parfor of GP reads overlaps the wire latency but pays
	// thread costs per element.
	const n = 20
	rt := newRig(2, Options{})
	remote := make([]float64, n)
	for i := range remote {
		remote[i] = float64(i)
	}
	local := make([]float64, n)
	var elapsed time.Duration
	rt.OnNode(0, func(th *threads.Thread) {
		// Warm-up read to settle any cold costs.
		_ = rt.ReadF64(th, NewGPF64(1, &remote[0]))
		start := th.Now()
		ParFor(th, n, func(t2 *threads.Thread, i int) {
			local[i] = rt.ReadF64(t2, NewGPF64(1, &remote[i]))
		})
		elapsed = time.Duration(th.Now() - start)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range local {
		if local[i] != remote[i] {
			t.Fatalf("local[%d] = %v", i, local[i])
		}
	}
	blocking := time.Duration(n) * 92 * time.Microsecond
	if elapsed >= blocking {
		t.Fatalf("parfor no faster than blocking: %v vs %v", elapsed, blocking)
	}
	// Paper: ~35 µs amortized per element (vs 12 µs for Split-C).
	per := elapsed / n
	if per < 15*time.Microsecond || per > 70*time.Microsecond {
		t.Fatalf("per-element CC++ prefetch %v outside plausible band", per)
	}
	if c := rt.m.Node(0).Acct.Counter(machine.CntThreadCreate); c < n {
		t.Fatalf("parfor created %d threads, want >= %d", c, n)
	}
}

func TestMPMDServerNodeWithoutProgram(t *testing.T) {
	// Node 1 runs no program at all — pure server kept alive by the
	// runtime's polling thread. This is the MPMD configuration SPMD systems
	// cannot express.
	rt := newRig(2, Options{})
	gp := rt.CreateObject(1, "Counter")
	var got int64
	rt.OnNode(0, func(th *threads.Thread) {
		for i := 0; i < 10; i++ {
			rt.Call(th, gp, "add", []Arg{&I64{V: 1}}, nil)
		}
		var ret I64
		rt.Call(th, gp, "get", nil, &ret)
		got = ret.V
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Fatalf("server counter = %d", got)
	}
}

func TestDisableStubCacheAblation(t *testing.T) {
	run := func(opts Options) time.Duration {
		rt := newRig(2, opts)
		gp := rt.CreateObject(1, "Counter")
		var elapsed time.Duration
		rt.OnNode(0, func(th *threads.Thread) {
			rt.CallSimple(th, gp, "nop", nil, nil) // settle
			start := th.Now()
			for i := 0; i < 10; i++ {
				rt.CallSimple(th, gp, "nop", nil, nil)
			}
			elapsed = time.Duration(th.Now()-start) / 10
		})
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	withCache := run(Options{})
	without := run(Options{DisableStubCache: true})
	if without <= withCache {
		t.Fatalf("disabling the stub cache did not slow RMIs: %v vs %v", without, withCache)
	}
}

func TestDisablePersistentBuffersAblation(t *testing.T) {
	run := func(opts Options) (allocs int64) {
		rt := newRig(2, opts)
		gp := rt.CreateObject(1, "Counter")
		rt.OnNode(0, func(th *threads.Thread) {
			for i := 0; i < 5; i++ {
				rt.Call(th, gp, "add", []Arg{&I64{V: 1}}, nil)
			}
		})
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		a, _ := rt.BufStats()
		return a
	}
	withPersist := run(Options{})
	without := run(Options{DisablePersistentBuffers: true})
	if withPersist != 1 {
		t.Fatalf("persistent buffers: %d allocations, want 1 (cold only)", withPersist)
	}
	if without != 5 {
		t.Fatalf("without persistent buffers: %d allocations, want 5", without)
	}
}

func TestRMISyncOpCountsPlausible(t *testing.T) {
	// The paper reports 10-15 sync ops per null RMI round trip; verify the
	// runtime's thread-safety tax lands in that neighbourhood (both sides).
	rt := newRig(2, Options{})
	gp := rt.CreateObject(1, "Counter")
	var syncs int64
	rt.OnNode(0, func(th *threads.Thread) {
		rt.CallSimple(th, gp, "nop", nil, nil) // cold
		s0 := rt.m.Node(0).Acct.Counter(machine.CntSyncOp) + rt.m.Node(1).Acct.Counter(machine.CntSyncOp)
		rt.CallSimple(th, gp, "nop", nil, nil) // warm
		syncs = rt.m.Node(0).Acct.Counter(machine.CntSyncOp) + rt.m.Node(1).Acct.Counter(machine.CntSyncOp) - s0
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if syncs < 6 || syncs > 20 {
		t.Fatalf("sync ops per null RMI = %d, want 6..20", syncs)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() time.Duration {
		rt := newRig(4, Options{})
		gps := []GPtr{
			rt.CreateObject(1, "Counter"),
			rt.CreateObject(2, "Counter"),
			rt.CreateObject(3, "Counter"),
		}
		var end time.Duration
		rt.OnNode(0, func(th *threads.Thread) {
			for i := 0; i < 5; i++ {
				for _, gp := range gps {
					rt.Call(th, gp, "addAtomic", []Arg{&I64{V: 1}}, nil)
				}
			}
			end = time.Duration(th.Now())
		})
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		return end
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}
