package core

import (
	"testing"

	"repro/internal/threads"
)

// Misuse guards: the runtime turns API contract violations into panics with
// actionable messages rather than silent misbehaviour. Each test captures
// the panic inside the simulated node program.

func TestUnknownMethodPanics(t *testing.T) {
	rt := newRig(2, Options{})
	gp := rt.CreateObject(1, "Counter")
	var recovered any
	rt.OnNode(0, func(th *threads.Thread) {
		defer func() { recovered = recover() }()
		rt.Call(th, gp, "noSuchMethod", nil, nil)
	})
	_ = rt.Run()
	if recovered == nil {
		t.Error("unknown method did not panic")
	}
}

func TestNilPointerCallPanics(t *testing.T) {
	rt := newRig(2, Options{})
	var recovered any
	rt.OnNode(0, func(th *threads.Thread) {
		defer func() { recovered = recover() }()
		rt.Call(th, NilGPtr, "nop", nil, nil)
	})
	_ = rt.Run()
	if recovered == nil {
		t.Error("nil global pointer did not panic")
	}
}

func TestZeroGPtrPanics(t *testing.T) {
	rt := newRig(2, Options{})
	var recovered any
	rt.OnNode(0, func(th *threads.Thread) {
		defer func() { recovered = recover() }()
		var zero GPtr
		rt.Call(th, zero, "nop", nil, nil)
	})
	_ = rt.Run()
	if recovered == nil {
		t.Error("zero-value global pointer did not panic")
	}
}

func TestRetForVoidMethodPanics(t *testing.T) {
	rt := newRig(2, Options{})
	gp := rt.CreateObject(1, "Counter")
	var recovered any
	rt.OnNode(0, func(th *threads.Thread) {
		defer func() { recovered = recover() }()
		var ret I64
		rt.Call(th, gp, "nop", nil, &ret) // nop has no return value
	})
	_ = rt.Run()
	if recovered == nil {
		t.Error("return destination for void method did not panic")
	}
}

func TestOneWayWithReturnPanics(t *testing.T) {
	rt := newRig(2, Options{})
	gp := rt.CreateObject(1, "Counter")
	var recovered any
	rt.OnNode(0, func(th *threads.Thread) {
		defer func() { recovered = recover() }()
		rt.CallOneWay(th, gp, "get", nil) // get declares a return value
	})
	_ = rt.Run()
	if recovered == nil {
		t.Error("one-way call to value-returning method did not panic")
	}
}

func TestUnknownClassPanics(t *testing.T) {
	rt := newRig(1, Options{})
	defer func() {
		if recover() == nil {
			t.Error("unknown class did not panic")
		}
	}()
	rt.CreateObject(0, "NoSuchClass")
}

func TestDuplicateClassPanics(t *testing.T) {
	rt := newRig(1, Options{})
	defer func() {
		if recover() == nil {
			t.Error("duplicate class registration did not panic")
		}
	}()
	rt.RegisterClass(counterClass())
}

func TestDuplicateNodeProgramPanics(t *testing.T) {
	rt := newRig(1, Options{})
	rt.OnNode(0, func(*threads.Thread) {})
	defer func() {
		if recover() == nil {
			t.Error("duplicate node program did not panic")
		}
	}()
	rt.OnNode(0, func(*threads.Thread) {})
}

// Local async RMIs must return joinable futures: the same-node dispatch
// short-circuit used to discard its completion, making Future.Wait panic.
func TestLocalCallAsyncJoins(t *testing.T) {
	rt := newRig(2, Options{})
	gp := rt.CreateObject(0, "Counter") // same node as the caller
	var got int64
	rt.OnNode(0, func(th *threads.Thread) {
		// Inline (non-threaded) local future.
		f := rt.CallAsync(th, gp, "add", []Arg{&I64{V: 21}}, nil)
		f.Wait(th)
		// Threaded local future.
		f = rt.CallAsync(th, gp, "nopThreaded", nil, nil)
		f.Wait(th)
		if !f.Done() {
			t.Error("threaded local future not done after Wait")
		}
		var ret I64
		f = rt.CallAsync(th, gp, "get", nil, &ret)
		f.Wait(th)
		got = ret.V
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 21 {
		t.Fatalf("counter = %d, want 21", got)
	}
}

func TestRunWithoutProgramsErrors(t *testing.T) {
	rt := newRig(1, Options{})
	if err := rt.Run(); err == nil {
		t.Error("Run without node programs did not error")
	}
}
