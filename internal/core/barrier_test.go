package core

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/threads"
)

type sink struct{ recvd int }

func sinkClass() *Class {
	return &Class{
		Name: "Sink",
		New:  func() any { return &sink{} },
		Methods: []*Method{{
			Name:     "deliver",
			Threaded: true,
			NewArgs:  func() []Arg { return []Arg{&F64Slice{}} },
			Fn: func(t *threads.Thread, self any, args []Arg, ret Arg) {
				self.(*sink).recvd += len(args[0].(*F64Slice).V)
			},
		}},
	}
}

// Regression test: one-way threaded RMIs satisfy a WaitLocal condition via
// a locally spawned thread, not a message — the waiter must yield to ready
// threads instead of parking for a message (deadlock found during EM3D bulk).
func TestBarrierWithOneWayDeliveries(t *testing.T) {
	rt := NewRuntimeOpts(machine.New(machine.SP1997(), 4), Options{})
	rt.RegisterClass(sinkClass())
	objs := make([]GPtr, 4)
	for i := range objs {
		objs[i] = rt.CreateObject(i, "Sink")
	}
	bar := rt.NewBarrier(0, 4)
	for i := 0; i < 4; i++ {
		me := i
		rt.OnNode(me, func(th *threads.Thread) {
			self := rt.Object(objs[me]).(*sink)
			expect := 0
			for k := 0; k < 3; k++ {
				for q := 0; q < 4; q++ {
					if q == me {
						continue
					}
					rt.CallOneWay(th, objs[q], "deliver", []Arg{&F64Slice{V: make([]float64, 5)}})
				}
				expect += 15
				rt.WaitLocal(th, func() bool { return self.recvd >= expect })
				bar.Arrive(th)
			}
		})
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
}
