// Package core implements the paper's primary contribution: a lean CC++
// runtime ("CC++/ThAM") layered directly on Active Messages and the
// non-preemptive threads package, providing MPMD remote method invocation
// with method-stub caching, persistent receive buffers, and a polling thread.
//
// CC++'s front-end translator is replaced by an explicit registration API
// (see Class and Method); the generated stubs it would emit correspond to
// the marshal/dispatch path in rmi.go, which is the code path the paper
// measures.
package core

import (
	"fmt"
	"math"

	"repro/internal/wire"
)

// Arg is one marshallable RMI argument or return value. Encode and Decode
// move the value through the wire representation; WireSize is the encoded
// byte count; MarshalUnits is how many serializer invocations the CC++
// compiler would emit for the value (one per scalar, one per element for
// arrays — the paper: "the compiler must invoke a method to serialize each
// argument", which is why marshalling arrays is expensive).
type Arg interface {
	WireSize() int
	MarshalUnits() int
	Encode(b []byte) int
	Decode(b []byte) int
}

// F64 is a double argument.
type F64 struct{ V float64 }

// WireSize implements Arg.
func (*F64) WireSize() int { return 8 }

// MarshalUnits implements Arg.
func (*F64) MarshalUnits() int { return 1 }

// Encode implements Arg.
func (a *F64) Encode(b []byte) int { putU64(b, math.Float64bits(a.V)); return 8 }

// Decode implements Arg.
func (a *F64) Decode(b []byte) int { a.V = math.Float64frombits(getU64(b)); return 8 }

// I64 is a word (integer) argument.
type I64 struct{ V int64 }

// WireSize implements Arg.
func (*I64) WireSize() int { return 8 }

// MarshalUnits implements Arg.
func (*I64) MarshalUnits() int { return 1 }

// Encode implements Arg.
func (a *I64) Encode(b []byte) int { putU64(b, uint64(a.V)); return 8 }

// Decode implements Arg.
func (a *I64) Decode(b []byte) int { a.V = int64(getU64(b)); return 8 }

// F64Slice is an array-of-double argument (the paper's ARRAYOFDOUBLE). Its
// length is part of the wire format, so the receiving stub can size the
// destination; each element costs one serializer invocation.
type F64Slice struct{ V []float64 }

// WireSize implements Arg.
func (a *F64Slice) WireSize() int { return 8 + 8*len(a.V) }

// MarshalUnits implements Arg.
func (a *F64Slice) MarshalUnits() int { return len(a.V) }

// Encode implements Arg.
func (a *F64Slice) Encode(b []byte) int {
	putU64(b, uint64(len(a.V)))
	off := 8
	for _, v := range a.V {
		putU64(b[off:], math.Float64bits(v))
		off += 8
	}
	return off
}

// Decode implements Arg.
//
//mpmd:coldpath grows the destination only when the payload outruns its capacity; warm decodes reuse it
func (a *F64Slice) Decode(b []byte) int {
	n := int(getU64(b))
	if cap(a.V) < n {
		a.V = make([]float64, n)
	}
	a.V = a.V[:n]
	off := 8
	for i := 0; i < n; i++ {
		a.V[i] = math.Float64frombits(getU64(b[off:]))
		off += 8
	}
	return off
}

// Bytes is a raw byte-buffer argument with a single serializer invocation
// (a user-provided shallow marshal, the cheapest possible CC++ argument).
type Bytes struct{ V []byte }

// WireSize implements Arg.
func (a *Bytes) WireSize() int { return 8 + len(a.V) }

// MarshalUnits implements Arg.
func (*Bytes) MarshalUnits() int { return 1 }

// Encode implements Arg.
func (a *Bytes) Encode(b []byte) int {
	putU64(b, uint64(len(a.V)))
	copy(b[8:], a.V)
	return 8 + len(a.V)
}

// Decode implements Arg.
//
//mpmd:coldpath grows the destination only when the payload outruns its capacity; warm decodes reuse it
func (a *Bytes) Decode(b []byte) int {
	n := int(getU64(b))
	if cap(a.V) < n {
		a.V = make([]byte, n)
	}
	a.V = a.V[:n]
	copy(a.V, b[8:8+n])
	return 8 + n
}

// Str is a string argument (used by the built-in object-creation method).
type Str struct{ V string }

// WireSize implements Arg.
func (a *Str) WireSize() int { return 8 + len(a.V) }

// MarshalUnits implements Arg.
func (*Str) MarshalUnits() int { return 1 }

// Encode implements Arg.
func (a *Str) Encode(b []byte) int {
	putU64(b, uint64(len(a.V)))
	copy(b[8:], a.V)
	return 8 + len(a.V)
}

// Decode implements Arg.
//
//mpmd:coldpath a string argument must copy out of the recycled wire buffer; strings are immutable
func (a *Str) Decode(b []byte) int {
	n := int(getU64(b))
	a.V = string(b[8 : 8+n])
	return 8 + n
}

// encodeArgs marshals args into a fresh buffer, returning it along with the
// total serializer-invocation count. (Test/reference path; the runtime's
// send path marshals into pooled buffers via marshalArgs.)
func encodeArgs(args []Arg) (buf []byte, units int) {
	total := 0
	for _, a := range args {
		total += a.WireSize()
		units += a.MarshalUnits()
	}
	buf = make([]byte, total)
	off := 0
	for _, a := range args {
		off += a.Encode(buf[off:])
	}
	if off != total {
		panic(fmt.Sprintf("core: encode size mismatch: wrote %d of %d", off, total))
	}
	return buf, units
}

// marshalArgs encodes args into a pooled wire buffer sized for the encoded
// arguments plus extra trailing bytes (the cold path appends the qualified
// method name there). It returns nil when there is nothing to send at all —
// the warm null-RMI case, which must stay a short AM. argLen is the encoded
// argument byte count (excluding extra) and units the serializer-invocation
// count; both feed the modelled marshalling charge exactly as encodeArgs
// did. Ownership of the buffer passes to the caller (typically straight
// through to the message layer).
//
//mpmd:hotpath
func marshalArgs(args []Arg, extra int) (buf *wire.Buf, argLen, units int) {
	for _, a := range args {
		argLen += a.WireSize()
		units += a.MarshalUnits()
	}
	if argLen+extra == 0 {
		return nil, 0, units
	}
	buf = wire.Get(argLen + extra)
	b := buf.Bytes()
	off := 0
	for _, a := range args {
		off += a.Encode(b[off:])
	}
	if off != argLen {
		panic(fmt.Sprintf("core: encode size mismatch: wrote %d of %d", off, argLen))
	}
	return buf, argLen, units
}

// marshalOne encodes a single return Arg into a pooled buffer — the reply
// path's allocation-free counterpart of encodeArgs([]Arg{ret}).
//
//mpmd:hotpath
func marshalOne(ret Arg) (buf *wire.Buf, n, units int) {
	n = ret.WireSize()
	units = ret.MarshalUnits()
	if n == 0 {
		return nil, 0, units
	}
	buf = wire.Get(n)
	if off := ret.Encode(buf.Bytes()); off != n {
		panic(fmt.Sprintf("core: encode size mismatch: wrote %d of %d", off, n))
	}
	return buf, n, units
}

// decodeOne decodes a single Arg from buf — the reply path's
// allocation-free counterpart of decodeArgs(buf, []Arg{ret}).
//
//mpmd:hotpath
func decodeOne(buf []byte, ret Arg) (units int) {
	off := ret.Decode(buf)
	if off != len(buf) {
		panic(fmt.Sprintf("core: decode size mismatch: read %d of %d", off, len(buf)))
	}
	return ret.MarshalUnits()
}

// decodeArgs unmarshals buf into the given argument instances, returning the
// serializer-invocation count.
//
//mpmd:hotpath
func decodeArgs(buf []byte, args []Arg) (units int) {
	off := 0
	for _, a := range args {
		off += a.Decode(buf[off:])
		units += a.MarshalUnits()
	}
	if off != len(buf) {
		panic(fmt.Sprintf("core: decode size mismatch: read %d of %d", off, len(buf)))
	}
	return units
}

func putU64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

func getU64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
