package core

import (
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/threads"
	"repro/internal/transport/live"
)

// warmBench drives b.N warm operations through a 2-node live machine and
// reports allocs/op — the -benchmem numbers CI's allocation-regression step
// checks against the pinned budget.
func warmBench(b *testing.B, body func(rt *Runtime, gp GPtr, t *threads.Thread)) {
	m := machine.NewWithBackend(machine.SP1997(), 2,
		live.New(2, live.Options{Watchdog: 5 * time.Minute}))
	rt := NewRuntime(m)
	rt.RegisterClass(allocBenchClass())
	gp := rt.CreateObject(1, "AllocBench")
	rt.OnNode(0, func(t *threads.Thread) {
		for i := 0; i < 8; i++ { // warm stubs, buffers, pools
			body(rt, gp, t)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			body(rt, gp, t)
		}
		b.StopTimer()
	})
	if err := rt.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWarmNullRMILive is the warm 0-word synchronous RMI round trip on
// the live backend. Budget: ≤ 2 allocs/op (steady state: 0).
func BenchmarkWarmNullRMILive(b *testing.B) {
	warmBench(b, func(rt *Runtime, gp GPtr, t *threads.Thread) {
		rt.Call(t, gp, "null", nil, nil)
	})
}

// BenchmarkWarmBulk1KLive is the warm 1 KiB bulk RMI on the live backend.
// Budget: ≤ 2 allocs/op (steady state: 0).
func BenchmarkWarmBulk1KLive(b *testing.B) {
	payload := make([]byte, 1024)
	arg := []Arg{&Bytes{V: payload}}
	warmBench(b, func(rt *Runtime, gp GPtr, t *threads.Thread) {
		rt.Call(t, gp, "sink", arg, nil)
	})
}
