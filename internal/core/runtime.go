package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/am"
	"repro/internal/machine"
	"repro/internal/tham"
	"repro/internal/threads"
	"repro/internal/transport"
	"repro/internal/wire"
)

// GPtr is a CC++ global pointer to a processor object. Unlike Split-C's
// global pointers, it is opaque: applications cannot see or compute with the
// address part; all access goes through RMI.
type GPtr struct {
	node int32
	obj  int32
	cls  *Class
}

// NilGPtr is the zero global pointer.
var NilGPtr = GPtr{node: -1, obj: -1}

// Nil reports whether the pointer is the nil global pointer. The zero GPtr
// value also counts as nil (it carries no class).
func (g GPtr) Nil() bool { return g.node < 0 || g.cls == nil }

// NodeID exposes the placement of the object; CC++ programs may ask an
// object where it lives (the runtime knows), they just cannot forge pointers.
func (g GPtr) NodeID() int { return int(g.node) }

// String formats the pointer for debugging.
func (g GPtr) String() string { return fmt.Sprintf("gptr{n%d:o%d}", g.node, g.obj) }

// ClassName reports the registered class of the pointed-to object ("" for a
// nil/zero pointer). The typed façade uses it to validate lifted pointers.
func (g GPtr) ClassName() string {
	if g.cls == nil {
		return ""
	}
	return g.cls.Name
}

// IsClass reports whether the pointer's class is exactly c — pointer
// identity, not name equality, so a GPtr from a different runtime (whose
// same-named class is a distinct registration) does not pass. The typed
// façade uses it to validate lifted pointers.
func (g GPtr) IsClass(c *Class) bool { return g.cls != nil && g.cls == c }

// Method describes one remotely invocable method of a Class — the
// registration-time stand-in for the stubs CC++'s translator generates.
type Method struct {
	// Name is the unqualified method name.
	Name string
	// Threaded makes the receiving node run the method on a fresh thread
	// (required whenever the method may block). Non-threaded methods run
	// inline in the handler and must not block.
	Threaded bool
	// Atomic runs the method holding the target object's lock; per the
	// paper's micro-benchmarks, atomic implies a threaded invocation.
	Atomic bool
	// NewArgs returns fresh argument instances for the receiving stub to
	// decode into; nil means the method takes no arguments.
	NewArgs func() []Arg
	// NewRet returns a fresh return-value instance; nil means no result.
	NewRet func() Arg
	// Fn is the method body. self is the target object; ret (when non-nil)
	// must be filled in before returning. The runtime recycles args and ret
	// instances across invocations of the method, so Fn must not retain
	// references to them (or to slices inside them, such as a F64Slice's V)
	// beyond the call — copy the contents out instead.
	Fn func(t *threads.Thread, self any, args []Arg, ret Arg)
}

// Class is a processor-object class: a constructor plus its remotely
// invocable methods.
type Class struct {
	Name    string
	New     func() any
	Methods []*Method
}

// boundMethod pairs a method with its class and machine-wide stub identity.
type boundMethod struct {
	class *Class
	m     *Method
	qname string
	hash  tham.NameHash
	stub  tham.StubID

	// frames recycles receiver-side decode records (argument instances plus
	// the return-value instance) across invocations of this method — the
	// in-memory counterpart of the persistent R-buffers: reflection-free,
	// allocation-free dispatch on the warm path. Methods must not retain
	// args or ret beyond the call (see Method.Fn).
	frames sync.Pool
}

// argFrame is one pooled decode record of a boundMethod.
type argFrame struct {
	args []Arg
	ret  Arg
}

// Options configure the runtime; the zero value is the paper's tuned
// configuration. The Disable* switches exist for the ablation benchmarks of
// the paper's §4 design choices.
type Options struct {
	// DisableStubCache forces every RMI down the cold name-resolution path.
	DisableStubCache bool
	// DisablePersistentBuffers forces the receiver staging copy (static
	// buffer area -> fresh R-buffer) on every invocation.
	DisablePersistentBuffers bool
	// SpinSenders makes blocking calls spin-poll instead of handing off to
	// the polling thread (the "Simple" sender mode applied globally).
	SpinSenders bool
	// InterruptDriven switches message reception from polling to software
	// interrupts, charging Config.InterruptCost per received message — the
	// alternative the paper rejects for 1997 hardware and projects as future
	// work once interrupts get cheap. Only supported on the AM transport.
	InterruptDriven bool
	// Grace is how long after the last node program finishes the runtime
	// keeps polling before shutting down (drains in-flight one-way RMIs).
	Grace time.Duration
	// Transport overrides the message layer; nil uses Active Messages.
	Transport Transport
}

// Transport abstracts the message layer under the runtime so the Nexus/TCP
// profile can be swapped in for the paper's §6 comparison.
type Transport interface {
	// Register installs a handler on every node, returning its ID.
	Register(name string, h am.Handler) am.HandlerID
	// Send transmits a message (bulk when payload is non-nil or forceBulk).
	// The payload is copied at send time; the sender keeps its buffer. A
	// message consists of the four word arguments plus the payload bytes —
	// nothing else travels, so any transport (including one crossing address
	// spaces) can carry it.
	Send(t *threads.Thread, src, dst int, h am.HandlerID, a [4]uint64, payload []byte, forceBulk bool)
	// SendBuf transmits a message whose payload is an owned pooled buffer
	// (nil for none): ownership transfers to the message layer, which hands
	// it across uncopied and recycles it after the receiving handler runs.
	// The caller must not touch buf after the call.
	SendBuf(t *threads.Thread, src, dst int, h am.HandlerID, a [4]uint64, buf *wire.Buf, forceBulk bool)
	// Poll services at most one pending message on node me.
	Poll(t *threads.Thread, me int) bool
	// WaitMessage parks until a message arrives at node me (or Stop).
	WaitMessage(t *threads.Thread, me int)
	// KickService wakes a parked waiter on node me if messages remain
	// undelivered (see am.Endpoint.KickService).
	KickService(me int)
	// Stop shuts down node me's reception, waking parked waiters.
	Stop(me int)
	// Stopped reports whether node me's reception is shut down.
	Stopped(me int) bool
	// Name identifies the transport in reports.
	Name() string
}

// AMTransport is the default message layer: the am package directly.
type AMTransport struct{ net *am.Net }

// NewAMTransport wraps an am.Net as a runtime transport.
func NewAMTransport(net *am.Net) *AMTransport { return &AMTransport{net: net} }

// Net exposes the underlying AM net (used by the runtime to attach
// schedulers to endpoints).
func (tr *AMTransport) Net() *am.Net { return tr.net }

// Name implements Transport.
func (tr *AMTransport) Name() string { return "ThAM" }

// Register implements Transport.
func (tr *AMTransport) Register(name string, h am.Handler) am.HandlerID {
	return tr.net.Register(name, h)
}

// Send implements Transport.
//
//mpmd:hotpath
func (tr *AMTransport) Send(t *threads.Thread, src, dst int, h am.HandlerID, a [4]uint64, payload []byte, forceBulk bool) {
	tr.net.Endpoint(src).Request(t, dst, h, a, payload, am.SendOpts{Bulk: forceBulk || len(payload) > 0})
}

// SendBuf implements Transport.
//
//mpmd:hotpath
func (tr *AMTransport) SendBuf(t *threads.Thread, src, dst int, h am.HandlerID, a [4]uint64, buf *wire.Buf, forceBulk bool) {
	tr.net.Endpoint(src).RequestOwned(t, dst, h, a, buf, am.SendOpts{Bulk: forceBulk || buf != nil})
}

// Poll implements Transport.
//
//mpmd:hotpath
func (tr *AMTransport) Poll(t *threads.Thread, me int) bool { return tr.net.Endpoint(me).Poll(t) }

// WaitMessage implements Transport.
func (tr *AMTransport) WaitMessage(t *threads.Thread, me int) { tr.net.Endpoint(me).WaitMessage(t) }

// KickService implements Transport.
func (tr *AMTransport) KickService(me int) { tr.net.Endpoint(me).KickService() }

// Stop implements Transport.
func (tr *AMTransport) Stop(me int) { tr.net.Endpoint(me).Stop() }

// Stopped implements Transport.
func (tr *AMTransport) Stopped(me int) bool { return tr.net.Endpoint(me).Stopped() }

// Runtime is one CC++ program instance over a machine.
type Runtime struct {
	m    *machine.Machine
	tr   Transport
	opts Options

	classes map[string]*Class
	methods []*boundMethod // indexed by StubID (identical on all nodes)

	nodes []*nodeRT
	progs []func(t *threads.Thread)

	// mainsLeft counts node programs still running. Atomic because on the
	// live backend the last mains of different nodes race to decrement it.
	mainsLeft atomic.Int32

	// started flips when Run begins; registration is setup-time only.
	started atomic.Bool

	// facade is the extension slot for layers above the untyped runtime:
	// the typed v2 API stores its derived method tables and codecs here.
	facade any

	// ext holds additional keyed extension state (the collective layer's
	// engine lives here). Like facade, entries are installed at setup time
	// and only read once the program runs.
	ext map[string]any

	hInvoke, hResolveUpdate am.HandlerID
	hReply                  am.HandlerID
	hGPRead, hGPReadReply   am.HandlerID
	hGPWrite, hGPAck        am.HandlerID
}

// nodeRT is the per-node runtime state.
type nodeRT struct {
	rt    *Runtime
	node  *machine.Node
	sched *threads.Scheduler

	reg   *tham.Registry
	cache *tham.StubCache
	bufs  *tham.BufMgr
	objs  tham.ObjTable

	// pending is the node's in-flight RMI table: replies name their call by
	// slot ID in the message words instead of carrying a pointer (rmi.go's
	// addPending/takePending). gpPending is the same table for the optimized
	// global-pointer accesses. Both are touched only from this node's
	// execution context.
	pending []*rmiMsg
	freeIDs []uint32

	gpPending []*gpReq
	gpFree    []uint32

	objLocks map[int32]*threads.Mutex

	// Runtime-internal locks. Their lock/unlock pairs are where the paper's
	// "98-99% of [sync] overhead is to ensure consistency of shared data and
	// thread-safety in the runtime and communication layers" comes from.
	rtLock   threads.Mutex // stub cache, registry, object table
	bufLock  threads.Mutex // S-/R-buffer pool
	commLock threads.Mutex // message-layer thread safety
}

// NewRuntime builds a CC++ runtime over machine m with default options.
func NewRuntime(m *machine.Machine) *Runtime { return NewRuntimeOpts(m, Options{}) }

// NewRuntimeOpts builds a CC++ runtime with explicit options.
func NewRuntimeOpts(m *machine.Machine, opts Options) *Runtime {
	if opts.Grace == 0 {
		opts.Grace = time.Millisecond
	}
	rt := &Runtime{
		m:       m,
		opts:    opts,
		classes: make(map[string]*Class),
		progs:   make([]func(*threads.Thread), m.NumNodes()),
	}
	tr := opts.Transport
	if tr == nil {
		tr = NewAMTransport(am.NewNet(m))
	}
	rt.tr = tr
	for i := 0; i < m.NumNodes(); i++ {
		n := &nodeRT{
			rt:       rt,
			node:     m.Node(i),
			sched:    threads.NewScheduler(m.Node(i)),
			reg:      tham.NewRegistry(),
			cache:    tham.NewStubCache(),
			bufs:     tham.NewBufMgr(i),
			objLocks: make(map[int32]*threads.Mutex),
		}
		rt.nodes = append(rt.nodes, n)
	}
	if amt, ok := tr.(*AMTransport); ok {
		for i := 0; i < m.NumNodes(); i++ {
			amt.net.Endpoint(i).Attach(rt.nodes[i].sched)
			if opts.InterruptDriven {
				amt.net.Endpoint(i).SetInterruptCost(m.Cfg.InterruptCost)
			}
		}
	}
	if att, ok := tr.(SchedulerAttacher); ok {
		for i := 0; i < m.NumNodes(); i++ {
			att.Attach(i, rt.nodes[i].sched)
		}
	}
	rt.registerHandlers()
	rt.RegisterClass(rt.sysClass())
	for i := range rt.nodes {
		// Object 0 on every node is the system object (object creation).
		gp := rt.CreateObject(i, sysClassName)
		if gp.obj != 0 {
			panic("core: system object must be object 0")
		}
	}
	return rt
}

// SchedulerAttacher is implemented by transports that need per-node
// scheduler attachment (the Nexus transport does).
type SchedulerAttacher interface {
	Attach(node int, s *threads.Scheduler)
}

// Machine returns the underlying machine.
func (rt *Runtime) Machine() *machine.Machine { return rt.m }

// Started reports whether Run has begun. Class registration and object
// placement are setup-time operations; the typed façade checks this to turn
// late registrations and pre-run invocations into errors.
func (rt *Runtime) Started() bool { return rt.started.Load() }

// HasClass reports whether a class name is already registered — the
// non-panicking existence check the typed façade validates against before
// calling RegisterClass.
func (rt *Runtime) HasClass(name string) bool {
	_, ok := rt.classes[name]
	return ok
}

// SetFacade stores higher-layer state (the typed API's derived tables) on
// the runtime; Facade reads it back. The core carries the value opaquely.
// Both are setup-time operations: the value must be in place before Run.
func (rt *Runtime) SetFacade(v any) { rt.facade = v }

// Facade returns the value stored by SetFacade (nil if none).
func (rt *Runtime) Facade() any { return rt.facade }

// SetExt stores keyed higher-layer state on the runtime (setup time only);
// Ext reads it back (nil if absent). The core carries the values opaquely.
func (rt *Runtime) SetExt(key string, v any) {
	if rt.ext == nil {
		rt.ext = make(map[string]any)
	}
	rt.ext[key] = v
}

// Ext returns the value stored under key by SetExt (nil if none).
func (rt *Runtime) Ext(key string) any { return rt.ext[key] }

// TransportName reports the active message layer ("ThAM" or "Nexus").
func (rt *Runtime) TransportName() string { return rt.tr.Name() }

// Scheduler returns node i's thread scheduler.
func (rt *Runtime) Scheduler(i int) *threads.Scheduler { return rt.nodes[i].sched }

// StubCacheStats sums stub-cache hits and misses across nodes.
func (rt *Runtime) StubCacheStats() (hits, misses int64) {
	for _, n := range rt.nodes {
		h, m := n.cache.Stats()
		hits += h
		misses += m
	}
	return hits, misses
}

// BufStats sums persistent-buffer allocations and reuses across nodes.
func (rt *Runtime) BufStats() (allocs, reuses int64) {
	for _, n := range rt.nodes {
		a, r := n.bufs.Stats()
		allocs += a
		reuses += r
	}
	return allocs, reuses
}

// RegisterClass makes a class invocable. Must be called before Run. Stubs
// are registered into every node's local registry (each program image
// carries its own copy of the code, as in CC++'s separately compiled
// images); stub IDs come out identical everywhere because registration
// order is identical.
func (rt *Runtime) RegisterClass(c *Class) {
	if rt.started.Load() {
		// Post-Run registration would mutate the stub tables node goroutines
		// are concurrently reading (a real data race on the live backend).
		panic("core: RegisterClass(" + c.Name + ") after Run started: register all classes before Run")
	}
	if _, dup := rt.classes[c.Name]; dup {
		panic("core: class registered twice: " + c.Name)
	}
	if c.New == nil {
		panic("core: class " + c.Name + " has no constructor")
	}
	rt.classes[c.Name] = c
	for _, m := range c.Methods {
		m := m
		qname := c.Name + "::" + m.Name
		bm := &boundMethod{class: c, m: m, qname: qname, hash: tham.HashName(qname)}
		bm.frames.New = func() any {
			f := &argFrame{}
			if m.NewArgs != nil {
				f.args = m.NewArgs()
			}
			if m.NewRet != nil {
				f.ret = m.NewRet()
			}
			return f
		}
		var stub tham.StubID
		for _, n := range rt.nodes {
			stub = n.reg.Register(qname)
		}
		bm.stub = stub
		if int(stub) != len(rt.methods) {
			panic("core: stub id mismatch across nodes")
		}
		rt.methods = append(rt.methods, bm)
	}
}

// CreateObject instantiates className's class on the given node at setup
// time (no virtual cost) and returns a global pointer to it. For creation
// from inside a running program, use NewObjOn, which performs a real RMI.
func (rt *Runtime) CreateObject(node int, className string) GPtr {
	if rt.started.Load() {
		// Mid-run creation from an arbitrary context would mutate a node's
		// object table without owning its execution context; the supported
		// mid-run path is NewObjOn (an RMI serviced by the owner).
		panic("core: CreateObject(" + className + ") after Run started: use NewObjOn from inside the program")
	}
	return rt.createObject(node, className)
}

// createObject is the unguarded creation path: used at setup, and mid-run
// only from contexts that own the target node's state (the system object's
// "create" handler runs on the owning node).
func (rt *Runtime) createObject(node int, className string) GPtr {
	c, ok := rt.classes[className]
	if !ok {
		panic("core: unknown class " + className)
	}
	n := rt.nodes[node]
	id := n.objs.Add(c.New())
	return GPtr{node: int32(node), obj: id, cls: c}
}

// Object returns the live object behind a global pointer (test/inspection
// use; programs go through RMI).
func (rt *Runtime) Object(gp GPtr) any { return rt.nodes[gp.node].objs.Get(gp.obj) }

// OnNode installs the program to run on node i. Nodes without programs run
// only the runtime's polling thread — the MPMD "server" configuration.
func (rt *Runtime) OnNode(i int, prog func(t *threads.Thread)) {
	if rt.progs[i] != nil {
		panic(fmt.Sprintf("core: node %d already has a program", i))
	}
	rt.progs[i] = prog
	rt.mainsLeft.Add(1)
}

// Run starts the polling thread on every local node plus the installed node
// programs, and drives the machine until completion. After the last
// program finishes, reception keeps draining for Options.Grace (virtual
// time on the simulator, wall time on the live backend) before the pollers
// shut down.
//
// On a sharded backend (transport.Topology), only this shard's nodes
// execute here: programs installed for remote nodes run in their own
// processes, which build the identical runtime (the SPMD launch model).
// Shutdown is machine-wide: when this shard's programs finish the backend
// is told (LocalQuiesced), and the grace-delayed endpoint shutdown begins
// only once every shard has quiesced — so a pure-server shard, with no
// programs of its own, keeps serving remote invocations until the whole
// machine is done.
func (rt *Runtime) Run() error {
	topo, sharded := rt.m.Backend().(transport.Topology)
	isLocal := func(i int) bool { return !sharded || topo.IsLocal(i) }
	localMains := int32(0)
	for i, prog := range rt.progs {
		if prog != nil && isLocal(i) {
			localMains++
		}
	}
	if rt.mainsLeft.Load() == 0 {
		// No programs anywhere: nothing would ever terminate the run.
		return fmt.Errorf("core: no node programs installed")
	}
	rt.mainsLeft.Store(localMains)
	rt.started.Store(true)
	quiesce := func() {
		// Each node's Stop must run in that node's execution context (it
		// wakes parked threads).
		stopLocal := func() {
			for j := range rt.nodes {
				if !isLocal(j) {
					continue
				}
				j := j
				rt.m.AfterNode(j, rt.opts.Grace, func() { rt.tr.Stop(j) })
			}
		}
		if sharded {
			topo.LocalQuiesced(stopLocal)
		} else {
			stopLocal()
		}
	}
	for i := range rt.nodes {
		if !isLocal(i) {
			continue
		}
		n := rt.nodes[i]
		// "In order to avoid deadlocks when there is no runnable thread, a
		// polling thread is forked at initialization." (§4)
		n.sched.Start("poller", func(t *threads.Thread) { rt.pollerLoop(t, n) })
	}
	for i := range rt.nodes {
		if rt.progs[i] == nil || !isLocal(i) {
			continue
		}
		n := rt.nodes[i]
		prog := rt.progs[i]
		n.sched.Start("main", func(t *threads.Thread) {
			prog(t)
			if rt.mainsLeft.Add(-1) == 0 {
				quiesce()
			}
		})
	}
	if localMains == 0 {
		// A pure-server shard: quiesced from the start, serving until the
		// machine-wide shutdown arrives.
		quiesce()
	}
	return rt.m.Run()
}

// pollerLoop is the per-node polling thread: service everything pending,
// then park until the next arrival. Parking hands the CPU to whichever
// thread the handlers made ready (the scheduler dispatches on block), so the
// poller never busy-yields against a spinning computation thread.
func (rt *Runtime) pollerLoop(t *threads.Thread, n *nodeRT) {
	me := n.node.ID
	for {
		for rt.tr.Poll(t, me) {
		}
		if rt.tr.Stopped(me) {
			for rt.tr.Poll(t, me) {
			}
			return
		}
		rt.tr.WaitMessage(t, me)
	}
}

// nodeOf returns the per-node state for the node t runs on.
func (rt *Runtime) nodeOf(t *threads.Thread) *nodeRT { return rt.nodes[t.Node().ID] }

// lockPair charges a lock/unlock pair on mu — the runtime's thread-safety
// tax. Contention is possible (and counted) like any other mutex.
func lockPair(t *threads.Thread, mu *threads.Mutex) {
	mu.Lock(t)
	mu.Unlock(t)
}
